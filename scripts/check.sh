#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the test suite. This is the single
# entrypoint both local development and CI use (.github/workflows/ci.yml).
#
#   scripts/check.sh           # full suite
#   scripts/check.sh --quick   # build + the engine/observability subset only
#
# Honors CC/CXX for compiler selection and uses ccache transparently when
# it is on PATH (so CI cache hits and local builds share a mechanism).
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-${repo}/build}"

quick=0
for arg in "$@"; do
  case "${arg}" in
    --quick) quick=1 ;;
    *)
      echo "usage: $0 [--quick]" >&2
      exit 2
      ;;
  esac
done

cmake_args=()
if command -v ccache >/dev/null 2>&1; then
  cmake_args+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

cmake -B "${build}" -S "${repo}" "${cmake_args[@]}"
cmake --build "${build}" -j

jobs="$(nproc 2>/dev/null || echo 2)"
if [[ "${quick}" -eq 1 ]]; then
  # The fast representative subset: round engine, simulation runner, campaign
  # engine, and the observability layer. (~10% of full-suite wall time.)
  ctest --test-dir "${build}" --output-on-failure -j "${jobs}" \
    -R '^(Network|Simulation|ThreadPool|Campaign|Counters|RoundTrace|PhaseTimers)'
else
  ctest --test-dir "${build}" --output-on-failure -j "${jobs}"
fi
