#!/usr/bin/env bash
# Tier-1 gate: configure, build, and run the full test suite.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"

cmake -B "${repo}/build" -S "${repo}"
cmake --build "${repo}/build" -j
ctest --test-dir "${repo}/build" --output-on-failure -j
