#!/usr/bin/env bash
# Race-check the concurrent machinery under ThreadSanitizer: the campaign
# thread pool (multi-worker determinism), the perfect-link / fault-injection
# transport stack, and the round synchronizer's timeout/suspect paths that
# the chaos layer leans on. Any data race aborts the run with a nonzero exit.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${repo}/build-tsan"

cmake -B "${build}" -S "${repo}" -DRADIOBCAST_SANITIZE=thread >/dev/null
cmake --build "${build}" --target \
  test_campaign test_experiment test_perfect_link test_round_sync \
  test_event_loop test_cache_concurrency -j >/dev/null

TSAN_OPTIONS="halt_on_error=1" "${build}/tests/test_campaign"
TSAN_OPTIONS="halt_on_error=1" "${build}/tests/test_experiment" \
  --gtest_filter='Aggregate.*:RunRepeated.*'
# Link + synchronizer: covers the FaultInjectionTransport drop/dup/reorder
# paths and the multi-threaded slow-node progress test (real sockets, one
# thread per node) that exercises timeout-opened barriers and suspicion.
TSAN_OPTIONS="halt_on_error=1" "${build}/tests/test_perfect_link"
TSAN_OPTIONS="halt_on_error=1" "${build}/tests/test_round_sync"
# Event-loop machinery: SwarmHub mailbox handoff across threads, epoll
# wakeups, and the shared-socket barrier soaks (many nodes, one fd).
TSAN_OPTIONS="halt_on_error=1" "${build}/tests/test_event_loop"
# Process-wide geometry caches (Adjacency::get, CenterTable::get): 8-thread
# concurrent first-access hammer on same-key and distinct-key patterns.
TSAN_OPTIONS="halt_on_error=1" "${build}/tests/test_cache_concurrency"

echo "TSan concurrency check passed"
