#!/usr/bin/env bash
# Race-check the campaign thread pool: build with -DRADIOBCAST_SANITIZE=thread
# and run the campaign test suite (which exercises multi-worker determinism)
# under ThreadSanitizer. Any data race aborts the run with a nonzero exit.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${repo}/build-tsan"

cmake -B "${build}" -S "${repo}" -DRADIOBCAST_SANITIZE=thread >/dev/null
cmake --build "${build}" --target test_campaign test_experiment -j >/dev/null

TSAN_OPTIONS="halt_on_error=1" "${build}/tests/test_campaign"
TSAN_OPTIONS="halt_on_error=1" "${build}/tests/test_experiment" \
  --gtest_filter='Aggregate.*:RunRepeated.*'

echo "TSan campaign check passed"
