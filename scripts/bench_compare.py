#!/usr/bin/env python3
"""CI perf-regression gate over google-benchmark JSON output.

Compares a freshly measured benchmark JSON against a curated baseline
(bench/artifacts/) and fails (exit 1) if any gated benchmark slowed down by
more than --max-slowdown after machine-speed normalization.

Normalization: CI runners differ in absolute speed run-to-run, so raw
nanosecond comparisons would flap. Instead the gate compares *normalized*
ratios: each benchmark's current/baseline time ratio is divided by the
median ratio across all shared benchmarks. The median tracks the overall
machine-speed difference between the two runs; a genuine regression in one
benchmark stands out against it. (A change that slows *every* benchmark by
the same factor is invisible to this gate by construction — that is the
price of running on shared runners; the interleaved pre/post numbers in
bench/artifacts/BENCH_*.json cover absolute claims.)

Baseline format: either google-benchmark JSON (context + benchmarks[]) or a
curated BENCH_prN.json artifact ({"benchmarks": [{"name", "post_ns", ...}]});
for the latter, post_ns is the baseline time.

Exit codes: 0 ok, 1 regression (or selftest failure), 2 usage/IO error.

Override: CI skips this gate when the PR carries the documented
`perf-regression-ok` label (see .github/workflows/ci.yml) — use it for
changes that knowingly trade benchmark speed for something else; the label
leaves an audit trail in the PR.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys


def load_times(path):
    """Returns {benchmark name: time in ns} from either supported format."""
    with open(path) as f:
        data = json.load(f)
    times = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        if not name:
            continue
        if bench.get("run_type") == "aggregate":
            continue  # repetitions: use the raw iterations, not mean/median rows
        if "post_ns" in bench:  # curated BENCH_prN.json artifact
            times[name] = float(bench["post_ns"])
        elif "real_time" in bench:
            unit = bench.get("time_unit", "ns")
            scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
            times[name] = float(bench["real_time"]) * scale
    return times


def gated(name, patterns):
    return any(name == p or name.startswith(p + "/") for p in patterns)


def compare(current, baseline, patterns, max_slowdown):
    """Returns (failures, report_lines). failures is a list of names."""
    shared = sorted(set(current) & set(baseline))
    if not shared:
        return None, ["no shared benchmarks between current and baseline"]
    ratios = {n: current[n] / baseline[n] for n in shared if baseline[n] > 0}
    if not ratios:
        return None, ["baseline has no positive times for shared benchmarks"]
    median = statistics.median(ratios.values())
    lines = [
        f"machine-speed normalization: median ratio {median:.3f} "
        f"over {len(ratios)} shared benchmarks"
    ]
    failures = []
    for name in shared:
        if name not in ratios:
            continue
        normalized = ratios[name] / median
        flag = ""
        if gated(name, patterns):
            if normalized > 1.0 + max_slowdown:
                failures.append(name)
                flag = "  <-- REGRESSION"
            else:
                flag = "  (gated)"
        lines.append(
            f"  {name}: {baseline[name]:.0f} ns -> {current[name]:.0f} ns"
            f"  raw x{ratios[name]:.3f}  normalized x{normalized:.3f}{flag}"
        )
    return failures, lines


def selftest(patterns, max_slowdown):
    """Feeds the gate a synthetic ~30% regression; it must fire."""
    base = {
        "BM_RoundDeliveryFanout/1": 1000.0,
        "BM_RoundDeliveryFanout/2": 5000.0,
        "BM_HeardFlood/1": 9e6,
        "BM_HeardFlood/2": 8e8,
        "BM_Determination": 2e5,
        "BM_SetPacking/8": 900.0,
    }
    # Whole-run 10% machine slowdown plus a real 30% regression in one
    # gated benchmark: only that one may fire.
    cur = {k: v * 1.10 for k, v in base.items()}
    cur["BM_HeardFlood/2"] *= 1.30
    failures, _ = compare(cur, base, patterns, max_slowdown)
    if failures != ["BM_HeardFlood/2"]:
        print(f"selftest FAILED: expected ['BM_HeardFlood/2'], got {failures}")
        return 1
    # And a clean run must pass.
    failures, _ = compare(cur := {k: v * 0.95 for k, v in base.items()}, base,
                          patterns, max_slowdown)
    if failures:
        print(f"selftest FAILED: clean run flagged {failures}")
        return 1
    print("selftest OK: synthetic 30% regression caught, clean run passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", nargs="?", help="google-benchmark JSON")
    parser.add_argument("baseline", nargs="?", help="baseline JSON")
    parser.add_argument(
        "--max-slowdown", type=float, default=0.25,
        help="allowed normalized slowdown fraction (default 0.25)")
    parser.add_argument(
        "--gate", action="append", default=None, metavar="NAME",
        help="benchmark (family) name to gate; repeatable. Default: "
             "BM_RoundDeliveryFanout, BM_HeardFlood, BM_Determination")
    parser.add_argument("--selftest", action="store_true",
                        help="verify the gate catches an injected regression")
    args = parser.parse_args()

    patterns = args.gate or [
        "BM_RoundDeliveryFanout", "BM_HeardFlood", "BM_Determination",
    ]
    if args.selftest:
        sys.exit(selftest(patterns, args.max_slowdown))
    if not args.current or not args.baseline:
        parser.error("current and baseline JSON paths are required")

    try:
        current = load_times(args.current)
        baseline = load_times(args.baseline)
    except (OSError, ValueError, KeyError) as e:
        print(f"bench_compare: cannot load inputs: {e}")
        sys.exit(2)

    failures, lines = compare(current, baseline, patterns, args.max_slowdown)
    print("\n".join(lines))
    if failures is None:
        sys.exit(2)
    if failures:
        print(f"\nFAIL: {len(failures)} gated benchmark(s) regressed more "
              f"than {args.max_slowdown:.0%} (normalized): "
              + ", ".join(failures))
        print("If the slowdown is intended, apply the 'perf-regression-ok' "
              "label to the PR (documented in scripts/bench_compare.py) and "
              "update the baseline artifact.")
        sys.exit(1)
    print(f"\nOK: no gated benchmark regressed more than "
          f"{args.max_slowdown:.0%} (normalized)")


if __name__ == "__main__":
    main()
