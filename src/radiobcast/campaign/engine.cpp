#include "radiobcast/campaign/engine.h"

#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "radiobcast/campaign/thread_pool.h"
#include "radiobcast/fault/placement.h"

namespace rbcast {

namespace {

/// Runs one trial of a cell under an explicit seed. This is the single trial
/// code path shared by run_cells, run_repeated and run_repeated_range.
/// `trace` may be null (the default: no tracing, no overhead).
TrialOutcome run_one_trial(const CampaignCell& cell, const Torus& torus,
                           std::uint64_t seed, RoundTrace* trace = nullptr) {
  SimConfig cfg = cell.sim;
  cfg.seed = seed;
  Rng rng(cfg.seed);
  const FaultSet faults = make_faults(cell.placement, torus, cfg.r, cfg.metric,
                                      cfg.t, cfg.source, rng);
  ObsOptions obs;
  obs.trace = trace;
  const SimResult result = run_simulation(cfg, faults, obs);
  return summarize_trial(
      result, static_cast<std::int64_t>(faults.size()),
      max_closed_nbd_faults(torus, faults, cfg.r, cfg.metric));
}

struct TrialRef {
  std::size_t cell = 0;
  int rep = 0;
};

/// Deterministic per-trial trace path: trial_c<cell>_r<rep>.jsonl.
std::filesystem::path trace_path(const std::string& dir, std::size_t cell,
                                 int rep) {
  char name[64];
  std::snprintf(name, sizeof(name), "trial_c%04zu_r%04d.jsonl", cell, rep);
  return std::filesystem::path(dir) / name;
}

}  // namespace

Aggregate CampaignResult::total() const {
  Aggregate out;
  for (const CellResult& cell : cells) out.merge(cell.aggregate);
  return out;
}

CampaignResult run_cells(const std::vector<CampaignCell>& cells,
                         const CampaignOptions& options) {
  CampaignResult result;
  result.workers_used =
      options.workers > 0 ? options.workers : ThreadPool::hardware_workers();

  // Flatten to a trial list and precompute every seed up front: seeds depend
  // only on (cell seed, rep index), never on scheduling.
  std::vector<TrialRef> trials;
  std::vector<Torus> tori;
  tori.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    tori.emplace_back(cells[c].sim.width, cells[c].sim.height);
    for (int rep = 0; rep < cells[c].reps; ++rep) {
      trials.push_back({c, rep});
    }
  }
  result.trial_count = trials.size();
  std::vector<TrialOutcome> outcomes(trials.size());
  std::vector<std::uint64_t> seeds(trials.size());
  for (std::size_t i = 0; i < trials.size(); ++i) {
    seeds[i] = hash_seeds(cells[trials[i].cell].sim.seed,
                          static_cast<std::uint64_t>(trials[i].rep));
  }

  const bool tracing = !options.trace_dir.empty();
  if (tracing) {
    std::filesystem::create_directories(options.trace_dir);
  }

  std::mutex mutex;  // guards done/first_error and serializes progress calls
  std::size_t done = 0;
  std::exception_ptr first_error;
  const auto run_trial = [&](std::size_t i) {
    TrialOutcome outcome;
    std::exception_ptr error;
    try {
      if (tracing) {
        // A fresh sink per trial; each worker writes its own file, so no
        // cross-thread coordination is needed and contents depend only on
        // the trial (hence on the spec), never on scheduling.
        RoundTrace trace(options.trace_capacity);
        outcome = run_one_trial(cells[trials[i].cell], tori[trials[i].cell],
                                seeds[i], &trace);
        const auto path =
            trace_path(options.trace_dir, trials[i].cell, trials[i].rep);
        std::ofstream os(path, std::ios::binary);
        if (!os) {
          throw std::runtime_error("cannot write trace file " + path.string());
        }
        trace.write_jsonl(os);
      } else {
        outcome = run_one_trial(cells[trials[i].cell], tori[trials[i].cell],
                                seeds[i]);
      }
    } catch (...) {
      error = std::current_exception();
    }
    const std::lock_guard<std::mutex> lock(mutex);
    outcomes[i] = outcome;
    if (error && !first_error) first_error = error;
    ++done;
    if (options.progress) options.progress(done, trials.size());
  };

  const auto start = std::chrono::steady_clock::now();
  if (result.workers_used <= 1) {
    for (std::size_t i = 0; i < trials.size(); ++i) run_trial(i);
  } else {
    ThreadPool pool(result.workers_used);
    for (std::size_t i = 0; i < trials.size(); ++i) {
      pool.submit([&run_trial, i] { run_trial(i); });
    }
    pool.wait_idle();
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (first_error) std::rethrow_exception(first_error);

  // Fold in trial-index order: with the integer-sum Aggregate this makes the
  // result independent of completion order, hence of the worker count.
  result.cells.resize(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    result.cells[c].cell = cells[c];
    result.cells[c].seeds.reserve(
        static_cast<std::size_t>(cells[c].reps < 0 ? 0 : cells[c].reps));
  }
  for (std::size_t i = 0; i < trials.size(); ++i) {
    CellResult& cell = result.cells[trials[i].cell];
    cell.seeds.push_back(seeds[i]);
    cell.aggregate.add(outcomes[i]);
  }
  return result;
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options) {
  return run_cells(spec.expand(), options);
}

// ---------------------------------------------------------------------------
// The serial repeated-run API of core/experiment.h, rewired onto the engine
// so there is exactly one trial runner and one aggregation code path.

Aggregate run_repeated_range(const SimConfig& base,
                             const PlacementConfig& placement, int first_rep,
                             int reps) {
  CampaignCell cell;
  cell.sim = base;
  cell.placement = placement;
  cell.reps = 0;  // trials are driven manually to honor the rep offset
  const Torus torus(base.width, base.height);
  Aggregate agg;
  for (int i = 0; i < reps; ++i) {
    const std::uint64_t seed =
        hash_seeds(base.seed, static_cast<std::uint64_t>(first_rep + i));
    agg.add(run_one_trial(cell, torus, seed));
  }
  return agg;
}

Aggregate run_repeated(const SimConfig& base,
                       const PlacementConfig& placement, int reps) {
  CampaignCell cell;
  cell.sim = base;
  cell.placement = placement;
  cell.reps = reps;
  CampaignOptions options;
  options.workers = 1;
  return run_cells({std::move(cell)}, options).cells.front().aggregate;
}

}  // namespace rbcast
