#include "radiobcast/campaign/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <ios>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <thread>
#include <utility>

#include "radiobcast/campaign/journal.h"
#include "radiobcast/campaign/thread_pool.h"
#include "radiobcast/fault/placement.h"

namespace rbcast {

namespace {

/// Runs one trial of a cell under an explicit seed. This is the single trial
/// code path shared by run_cells, run_repeated and run_repeated_range.
/// `trace` may be null (the default: no tracing, no overhead).
TrialOutcome run_one_trial(const CampaignCell& cell, const Torus& torus,
                           std::uint64_t seed, RoundTrace* trace = nullptr) {
  SimConfig cfg = cell.sim;
  cfg.seed = seed;
  Rng rng(cfg.seed);
  const FaultSet faults = make_faults(cell.placement, torus, cfg.r, cfg.metric,
                                      cfg.t, cfg.source, rng);
  ObsOptions obs;
  obs.trace = trace;
  const SimResult result = run_simulation(cfg, faults, obs);
  return summarize_trial(
      result, static_cast<std::int64_t>(faults.size()),
      max_closed_nbd_faults(torus, faults, cfg.r, cfg.metric));
}

struct TrialRef {
  std::size_t cell = 0;
  int rep = 0;
};

/// Everything the fold needs about one completed trial. Written once per
/// trial (under the engine mutex for fresh runs, or during journal replay
/// before any thread starts), read only after the pool drains.
struct TrialSlot {
  TrialOutcome outcome;
  std::uint64_t seed = 0;
  int attempts = 1;
  bool failed = false;
  bool replayed = false;
  bool skipped = false;  // cancel fired before this trial started
  FailureKind kind = FailureKind::kPermanent;
  std::string what;
  std::exception_ptr error;  // fresh failures only; null for replayed ones
};

/// Deterministic per-trial trace path: trial_c<cell>_r<rep>.jsonl.
std::filesystem::path trace_path(const std::string& dir, std::size_t cell,
                                 int rep) {
  char name[64];
  std::snprintf(name, sizeof(name), "trial_c%04zu_r%04d.jsonl", cell, rep);
  return std::filesystem::path(dir) / name;
}

std::string describe(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown error";
  }
}

/// Bounded exponential backoff before retry `attempt` (>= 1). Wall-clock
/// only: seeds and outcomes never depend on it.
void backoff_before_retry(int base_ms, int attempt) {
  if (base_ms <= 0) return;
  const int shift = std::min(attempt - 1, 6);
  const int ms = std::min(base_ms << shift, 1000);
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

const char* to_string(ErrorPolicy p) {
  switch (p) {
    case ErrorPolicy::kAbort: return "abort";
    case ErrorPolicy::kKeepGoing: return "keep-going";
  }
  return "?";
}

const char* to_string(FailureKind k) {
  switch (k) {
    case FailureKind::kTransient: return "transient";
    case FailureKind::kPermanent: return "permanent";
    case FailureKind::kTimeout: return "timeout";
  }
  return "?";
}

FailureKind failure_kind_from_string(std::string_view name) {
  for (const FailureKind k : {FailureKind::kTransient, FailureKind::kPermanent,
                              FailureKind::kTimeout}) {
    if (name == to_string(k)) return k;
  }
  return FailureKind::kPermanent;
}

FailureKind classify_failure(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const TrialTimeoutError&) {
    return FailureKind::kTimeout;
  } catch (const TraceIoError&) {
    return FailureKind::kTransient;
  } catch (const std::filesystem::filesystem_error&) {
    return FailureKind::kTransient;
  } catch (const std::ios_base::failure&) {
    return FailureKind::kTransient;
  } catch (const std::bad_alloc&) {
    return FailureKind::kTransient;
  } catch (...) {
    return FailureKind::kPermanent;
  }
}

std::uint64_t trial_seed(std::uint64_t cell_seed, int rep, int attempt) {
  return attempt == 0
             ? hash_seeds(cell_seed, static_cast<std::uint64_t>(rep))
             : hash_seeds(cell_seed, static_cast<std::uint64_t>(rep),
                          static_cast<std::uint64_t>(attempt));
}

Aggregate CampaignResult::total() const {
  Aggregate out;
  for (const CellResult& cell : cells) out.merge(cell.aggregate);
  return out;
}

std::size_t CampaignResult::failed_trials() const {
  std::size_t out = 0;
  for (const CellResult& cell : cells) out += cell.failures.size();
  return out;
}

CampaignResult run_cells(const std::vector<CampaignCell>& cells,
                         const CampaignOptions& options) {
  if (options.resume && options.journal_path.empty()) {
    throw std::invalid_argument("CampaignOptions::resume requires a journal");
  }

  CampaignResult result;
  result.workers_used =
      options.workers > 0 ? options.workers : ThreadPool::hardware_workers();

  // Flatten to a trial list and precompute every first-attempt seed up
  // front: seeds depend only on (cell seed, rep index, attempt), never on
  // scheduling.
  std::vector<TrialRef> trials;
  std::vector<Torus> tori;
  tori.reserve(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    tori.emplace_back(cells[c].sim.width, cells[c].sim.height);
    for (int rep = 0; rep < cells[c].reps; ++rep) {
      trials.push_back({c, rep});
    }
  }
  result.trial_count = trials.size();
  std::vector<TrialSlot> slots(trials.size());

  // Journal setup. The fingerprint ties the file to this exact cell list, so
  // a spec edit between run and resume is caught instead of silently mixing
  // incompatible trials.
  std::unique_ptr<JournalWriter> journal;
  if (!options.journal_path.empty()) {
    const std::uint64_t fingerprint = campaign_fingerprint(cells);
    bool fresh = !options.resume;
    if (options.resume) {
      const JournalContents contents =
          read_journal(options.journal_path, fingerprint, trials.size());
      fresh = !contents.header;  // missing/corrupt journal: start over
      for (const JournalRecord& rec : contents.records) {
        if (rec.trial >= trials.size()) continue;
        const TrialRef& ref = trials[rec.trial];
        if (rec.cell != ref.cell || rec.rep != ref.rep) continue;
        TrialSlot& slot = slots[rec.trial];
        if (slot.replayed) continue;  // duplicate record: first wins
        slot.replayed = true;
        slot.seed = rec.seed;
        slot.attempts = rec.attempts;
        slot.failed = !rec.ok;
        slot.kind = rec.kind;
        slot.what = rec.what;
        slot.outcome = rec.outcome;
        ++result.replayed_trials;
      }
    }
    journal = std::make_unique<JournalWriter>(options.journal_path, fresh);
    if (fresh) {
      journal->append_line(journal_header(fingerprint, trials.size()));
    }
  }

  const bool tracing = !options.trace_dir.empty();
  if (tracing) {
    std::filesystem::create_directories(options.trace_dir);
  }

  // Guards done/journal/journal_error and serializes progress calls.
  std::mutex mutex;
  std::size_t done = 0;
  std::exception_ptr journal_error;

  // Replayed trials report as done up front, in trial order.
  for (std::size_t i = 0; i < trials.size(); ++i) {
    if (!slots[i].replayed) continue;
    ++done;
    if (options.progress) options.progress(done, trials.size());
  }

  const auto run_trial = [&](std::size_t i) {
    const CampaignCell& cell = cells[trials[i].cell];
    if (options.cancel && options.cancel()) {
      // Skipped, not failed: the trial never ran, nothing reaches the
      // journal, and a resume executes it fresh.
      const std::lock_guard<std::mutex> lock(mutex);
      slots[i].skipped = true;
      slots[i].seed = trial_seed(cell.sim.seed, trials[i].rep, 0);
      ++done;
      if (options.progress) options.progress(done, trials.size());
      return;
    }
    TrialSlot local;
    for (int attempt = 0;; ++attempt) {
      local.seed = trial_seed(cell.sim.seed, trials[i].rep, attempt);
      local.attempts = attempt + 1;
      try {
        if (attempt > 0) backoff_before_retry(options.retry_backoff_ms,
                                              attempt);
        if (options.fault_injection) {
          options.fault_injection(trials[i].cell, trials[i].rep, attempt);
        }
        TrialOutcome outcome;
        if (!tracing) {
          outcome = run_one_trial(cell, tori[trials[i].cell], local.seed);
        } else if (options.stream_traces) {
          // Streaming export: the file is opened before the trial and every
          // event goes straight to it — resident trace memory stays O(1)
          // per trial however many deliveries the torus produces.
          const auto path =
              trace_path(options.trace_dir, trials[i].cell, trials[i].rep);
          std::ofstream os(path, std::ios::binary);
          if (!os) {
            throw TraceIoError("cannot write trace file " + path.string());
          }
          RoundTrace trace(1);  // ring unused; 1 slot keeps the ctor happy
          trace.set_stream(&os);
          outcome = run_one_trial(cell, tori[trials[i].cell], local.seed,
                                  &trace);
          if (!os.flush()) {
            throw TraceIoError("short write to trace file " + path.string());
          }
        } else {
          RoundTrace trace(options.trace_capacity);
          outcome = run_one_trial(cell, tori[trials[i].cell], local.seed,
                                  &trace);
          const auto path =
              trace_path(options.trace_dir, trials[i].cell, trials[i].rep);
          std::ofstream os(path, std::ios::binary);
          if (!os) {
            throw TraceIoError("cannot write trace file " + path.string());
          }
          trace.write_jsonl(os);
          if (!os.flush()) {
            throw TraceIoError("short write to trace file " + path.string());
          }
        }
        local.outcome = outcome;
        // Embed the retry count in the outcome's counters so the aggregate
        // (and the journal, and hence a resumed run) carries it exactly.
        local.outcome.counters.trial_retries =
            static_cast<std::uint64_t>(attempt);
        local.failed = false;
        break;
      } catch (...) {
        local.error = std::current_exception();
        local.kind = classify_failure(local.error);
        if (local.kind == FailureKind::kTransient &&
            attempt < options.max_retries) {
          continue;
        }
        local.failed = true;
        local.what = describe(local.error);
        break;
      }
    }

    const std::lock_guard<std::mutex> lock(mutex);
    slots[i] = std::move(local);
    if (journal) {
      JournalRecord rec;
      rec.trial = i;
      rec.cell = trials[i].cell;
      rec.rep = trials[i].rep;
      rec.attempts = slots[i].attempts;
      rec.seed = slots[i].seed;
      rec.ok = !slots[i].failed;
      rec.outcome = slots[i].outcome;
      rec.kind = slots[i].kind;
      rec.what = slots[i].what;
      try {
        journal->append_line(to_json(rec));
      } catch (...) {
        // A dead journal must not kill the in-memory campaign; record the
        // error once, stop journaling, and rethrow after the pool drains.
        if (!journal_error) journal_error = std::current_exception();
        journal.reset();
      }
    }
    ++done;
    if (options.progress) options.progress(done, trials.size());
  };

  const auto start = std::chrono::steady_clock::now();
  if (result.workers_used <= 1) {
    for (std::size_t i = 0; i < trials.size(); ++i) {
      if (!slots[i].replayed) run_trial(i);
    }
  } else {
    ThreadPool pool(result.workers_used);
    for (std::size_t i = 0; i < trials.size(); ++i) {
      if (slots[i].replayed) continue;
      pool.submit([&run_trial, i] { run_trial(i); });
    }
    pool.wait_idle();
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (journal_error) std::rethrow_exception(journal_error);

  // Abort policy: every trial has run (healthy work is journaled, so a
  // resume after fixing the spec's environment skips it), and the error
  // rethrown is the one of the lowest (cell, rep) — the trial list is in
  // (cell, rep) order — not whichever failing trial finished first.
  if (options.on_error == ErrorPolicy::kAbort) {
    for (std::size_t i = 0; i < trials.size(); ++i) {
      if (!slots[i].failed) continue;
      if (slots[i].error) std::rethrow_exception(slots[i].error);
      // Replayed failure: the original exception object is gone; rethrow
      // its recorded message.
      throw std::runtime_error(slots[i].what);
    }
  }

  // Fold in trial-index order: with the integer-sum Aggregate this makes the
  // result independent of completion order, hence of the worker count — and
  // of how the trials were split between a killed run and its resume.
  result.cells.resize(cells.size());
  for (std::size_t c = 0; c < cells.size(); ++c) {
    result.cells[c].cell = cells[c];
    result.cells[c].seeds.reserve(
        static_cast<std::size_t>(cells[c].reps < 0 ? 0 : cells[c].reps));
  }
  for (std::size_t i = 0; i < trials.size(); ++i) {
    CellResult& cell = result.cells[trials[i].cell];
    const TrialSlot& slot = slots[i];
    cell.seeds.push_back(slot.seed);
    if (slot.skipped) {
      ++result.skipped_trials;
    } else if (slot.failed) {
      cell.failures.push_back({trials[i].cell, trials[i].rep, slot.attempts,
                               slot.seed, slot.kind, slot.what});
      Counters& counters = cell.aggregate.counters_total;
      counters.trial_failures += 1;
      if (slot.kind == FailureKind::kTimeout) counters.trial_timeouts += 1;
      counters.trial_retries += static_cast<std::uint64_t>(slot.attempts - 1);
    } else {
      cell.aggregate.add(slot.outcome);
    }
  }
  return result;
}

CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options) {
  return run_cells(spec.expand(), options);
}

// ---------------------------------------------------------------------------
// The serial repeated-run API of core/experiment.h, rewired onto the engine
// so there is exactly one trial runner and one aggregation code path.

Aggregate run_repeated_range(const SimConfig& base,
                             const PlacementConfig& placement, int first_rep,
                             int reps) {
  CampaignCell cell;
  cell.sim = base;
  cell.placement = placement;
  cell.reps = 0;  // trials are driven manually to honor the rep offset
  const Torus torus(base.width, base.height);
  Aggregate agg;
  for (int i = 0; i < reps; ++i) {
    const std::uint64_t seed =
        hash_seeds(base.seed, static_cast<std::uint64_t>(first_rep + i));
    agg.add(run_one_trial(cell, torus, seed));
  }
  return agg;
}

Aggregate run_repeated(const SimConfig& base,
                       const PlacementConfig& placement, int reps) {
  CampaignCell cell;
  cell.sim = base;
  cell.placement = placement;
  cell.reps = reps;
  CampaignOptions options;
  options.workers = 1;
  return run_cells({std::move(cell)}, options).cells.front().aggregate;
}

}  // namespace rbcast
