#pragma once
// Declarative experiment campaigns: a CampaignSpec names the parameter axes
// to sweep (protocol, adversary, placement, radius, budget t, torus side,
// channel loss) and a repetition count; expand() takes the cartesian product
// and flattens it into a list of cells, one per parameter combination.
//
// Seeding scheme (deterministic for any worker count):
//   cell seed    = hash_seeds(base_seed, cell_index)
//   trial seed   = hash_seeds(cell_seed, rep_index)
//   retry seed   = hash_seeds(cell_seed, rep_index, attempt)   [attempt >= 1]
// with hash_seeds built on splitmix64 (util/rng.h). A cell built by hand
// (run_cells) keeps whatever seed its SimConfig carries, which is how
// run_repeated(base, placement, reps) reproduces its historical seed stream
// hash_seeds(base.seed, 0..reps-1) exactly. The retry stream (see
// engine.h's trial_seed) only engages when a transient failure is retried,
// so retry-free campaigns keep their historical seeds bit for bit.

#include <cstdint>
#include <string>
#include <vector>

#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"

namespace rbcast {

/// One campaign cell: a fully resolved (SimConfig, PlacementConfig) pair that
/// is run `reps` times under seeds hash_seeds(sim.seed, 0..reps-1).
struct CampaignCell {
  std::string label;  // free-form; spec expansion fills in a param summary
  SimConfig sim;
  PlacementConfig placement;
  int reps = 1;
};

/// A cartesian parameter grid over SimConfig/PlacementConfig. Empty axis
/// vectors mean "keep the base value"; non-empty ones are swept in order.
struct CampaignSpec {
  SimConfig base;            // values for everything not swept
  PlacementConfig placement; // placement knobs (iid_p, trim, strips, ...)

  std::vector<ProtocolKind> protocols;
  std::vector<AdversaryKind> adversaries;
  std::vector<PlacementKind> placements;
  std::vector<std::int32_t> radii;   // transmission radius r
  std::vector<std::int64_t> budgets; // local fault bound t
  std::vector<std::int32_t> sides;   // square torus side (0 = keep base w/h)
  std::vector<double> loss_ps;       // per-receiver iid loss probability

  int reps = 1;
  std::uint64_t base_seed = 1;

  /// Number of cells expand() will produce (product of axis lengths, empty
  /// axes counting as 1).
  std::size_t cell_count() const;

  /// Total trials: cell_count() * reps.
  std::size_t trial_count() const;

  /// Cartesian expansion in axis order protocol > adversary > placement >
  /// side > r > t > loss_p, slowest axis first. Cell i gets seed
  /// hash_seeds(base_seed, i) and a "key=value key=value" label naming the
  /// swept axes only.
  std::vector<CampaignCell> expand() const;
};

}  // namespace rbcast
