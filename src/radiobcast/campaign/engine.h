#pragma once
// The campaign engine: runs a flat list of campaign cells (or a declarative
// CampaignSpec) across a worker thread pool and streams per-cell aggregates.
//
// Determinism guarantee: results are a pure function of the spec. Each trial
// derives its seed from (cell seed, rep index) — never from scheduling — and
// trial outcomes are folded into per-cell aggregates in rep order after the
// queue drains, with the exactly-mergeable integer-sum Aggregate of
// core/experiment.h. A campaign therefore produces bit-identical results for
// any worker count, including 1 (which runs inline, with no threads at all).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "radiobcast/campaign/spec.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/obs/trace.h"

namespace rbcast {

struct CampaignOptions {
  /// Worker threads; <= 0 means ThreadPool::hardware_workers(). 1 runs the
  /// trials inline on the calling thread.
  int workers = 0;
  /// Called after each trial finishes, with (trials done, trials total).
  /// Invoked under the engine's bookkeeping mutex, so the callback itself
  /// need not be thread-safe; keep it cheap.
  std::function<void(std::size_t, std::size_t)> progress;
  /// When non-empty, every trial runs with a RoundTrace sink and dumps it to
  /// <trace_dir>/trial_c<cell>_r<rep>.jsonl (directory created if missing).
  /// File names and contents are pure functions of (spec, cell, rep), so a
  /// trace directory is byte-identical for any worker count.
  std::string trace_dir;
  /// Ring capacity of each per-trial trace sink (oldest events evicted
  /// beyond this; the eviction point is deterministic, so truncated traces
  /// stay byte-identical too).
  std::size_t trace_capacity = RoundTrace::kDefaultCapacity;
};

/// One cell's outcome: the resolved cell, the per-trial seeds actually used,
/// and the exact fold of all trial outcomes.
struct CellResult {
  CampaignCell cell;
  std::vector<std::uint64_t> seeds;  // seeds[i] = hash_seeds(cell seed, i)
  Aggregate aggregate;
};

struct CampaignResult {
  std::vector<CellResult> cells;
  std::size_t trial_count = 0;
  /// Wall-clock execution stats. Not part of the deterministic payload: the
  /// report writers exclude them unless asked for a summary.
  double wall_seconds = 0.0;
  int workers_used = 0;

  double trials_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(trial_count) / wall_seconds
                              : 0.0;
  }

  /// Exact merge of every cell's aggregate.
  Aggregate total() const;
};

/// Runs explicit cells. Each cell keeps the seed carried by its SimConfig
/// (trial i runs under hash_seeds(cell.sim.seed, i)). Exceptions thrown by a
/// trial (e.g. a torus too small for its radius) are rethrown on the calling
/// thread after the pool drains.
CampaignResult run_cells(const std::vector<CampaignCell>& cells,
                         const CampaignOptions& options = {});

/// Expands the spec and runs it. Equivalent to run_cells(spec.expand()).
CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options = {});

}  // namespace rbcast
