#pragma once
// The campaign engine: runs a flat list of campaign cells (or a declarative
// CampaignSpec) across a worker thread pool and streams per-cell aggregates.
//
// Determinism guarantee: results are a pure function of the spec. Each trial
// derives its seed from (cell seed, rep index) — never from scheduling — and
// trial outcomes are folded into per-cell aggregates in rep order after the
// queue drains, with the exactly-mergeable integer-sum Aggregate of
// core/experiment.h. A campaign therefore produces bit-identical results for
// any worker count, including 1 (which runs inline, with no threads at all).
//
// Fault tolerance (docs/CAMPAIGNS.md#fault-tolerance): a throwing trial no
// longer brings down the campaign. Failures are classified — transient ones
// (trace-file I/O, bad_alloc) retry under the deterministic per-attempt seed
// hash_seeds(cell seed, rep, attempt); permanent ones (invalid configs) and
// timeouts (TrialTimeoutError from the SimConfig deadline watchdog) are
// recorded as structured TrialFailure entries. Under ErrorPolicy::kAbort the
// engine still throws after the pool drains, but deterministically: the error
// of the lowest (cell, rep) failing trial, regardless of completion order.
// With a journal path set, every completed trial is appended to an fsync'd
// JSONL write-ahead journal; `resume` replays it so a killed campaign can be
// restarted and still emit byte-identical JSON/CSV exports.

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "radiobcast/campaign/spec.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/obs/trace.h"

namespace rbcast {

/// What to do when a trial fails for good (after any retries).
enum class ErrorPolicy : std::uint8_t {
  /// Finish every trial (healthy work is never discarded), then throw the
  /// error of the deterministically lowest (cell, rep) failing trial.
  kAbort,
  /// Record the failure in the cell's CellResult::failures and keep going;
  /// run_cells returns normally with every healthy trial aggregated.
  kKeepGoing,
};

const char* to_string(ErrorPolicy p);

/// Failure classification, driving the retry decision.
enum class FailureKind : std::uint8_t {
  /// Environmental (trace-file I/O, std::bad_alloc): retried up to
  /// CampaignOptions::max_retries times under fresh deterministic seeds.
  kTransient,
  /// A property of the spec (std::invalid_argument, std::logic_error, and
  /// anything unrecognized): retrying a deterministic simulation cannot
  /// help, so these fail immediately.
  kPermanent,
  /// TrialTimeoutError from the SimConfig deadline watchdog. Never retried:
  /// a rerun would burn the same budget again.
  kTimeout,
};

const char* to_string(FailureKind k);

/// Inverse of to_string(FailureKind); kPermanent for unknown names (a journal
/// written by a newer schema still resumes conservatively).
FailureKind failure_kind_from_string(std::string_view name);

/// Classifies a caught exception. Exposed for tests and the journal layer.
FailureKind classify_failure(const std::exception_ptr& error);

/// Thrown by the engine when a per-trial trace file cannot be written.
/// Transient: disk pressure and transient FS errors deserve a retry.
class TraceIoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One trial's terminal failure (after retries, if any were allowed).
struct TrialFailure {
  std::size_t cell = 0;  // index into CampaignResult::cells
  int rep = 0;
  int attempts = 1;        // attempts made in total (1 = no retries)
  std::uint64_t seed = 0;  // seed of the final attempt
  FailureKind kind = FailureKind::kPermanent;
  std::string what;

  friend bool operator==(const TrialFailure&, const TrialFailure&) = default;
};

/// The deterministic per-attempt seed schedule: attempt 0 keeps the
/// historical stream hash_seeds(cell_seed, rep) (so retry-free campaigns are
/// bit-identical to pre-retry ones), attempt k > 0 draws the independent
/// hash_seeds(cell_seed, rep, k). A pure function of its arguments — never of
/// scheduling — so retried campaigns remain pure functions of the spec.
std::uint64_t trial_seed(std::uint64_t cell_seed, int rep, int attempt);

struct CampaignOptions {
  /// Worker threads; <= 0 means ThreadPool::hardware_workers(). 1 runs the
  /// trials inline on the calling thread.
  int workers = 0;
  /// Called after each trial completes for good (success or terminal
  /// failure; retries do not report), with (trials done, trials total).
  /// Replayed journal trials report up front, in trial order. Invoked under
  /// the engine's bookkeeping mutex, so the callback itself need not be
  /// thread-safe; keep it cheap.
  std::function<void(std::size_t, std::size_t)> progress;
  /// When non-empty, every trial runs with a RoundTrace sink and dumps it to
  /// <trace_dir>/trial_c<cell>_r<rep>.jsonl (directory created if missing).
  /// File names and contents are pure functions of (spec, cell, rep), so a
  /// trace directory is byte-identical for any worker count.
  std::string trace_dir;
  /// Ring capacity of each per-trial trace sink (oldest events evicted
  /// beyond this; the eviction point is deterministic, so truncated traces
  /// stay byte-identical too).
  std::size_t trace_capacity = RoundTrace::kDefaultCapacity;
  /// Stream each trace event straight to its file as it is recorded instead
  /// of buffering in the ring: trace memory per trial drops to O(1) and no
  /// event is ever evicted, at the price of file I/O during the trial. Files
  /// and bytes are identical to the ring path whenever the ring would not
  /// have overflowed. Only meaningful with a non-empty trace_dir.
  bool stream_traces = false;

  /// Failure policy. The library default keeps the historical throwing
  /// behavior (made deterministic); the CLI's --keep-going selects
  /// kKeepGoing.
  ErrorPolicy on_error = ErrorPolicy::kAbort;
  /// Retry budget for kTransient failures (attempts beyond the first).
  int max_retries = 2;
  /// Base backoff slept before retry k (k >= 1): retry_backoff_ms << (k-1),
  /// capped at 1000 ms. Wall-clock only — seeds and results are unaffected.
  /// 0 disables sleeping (tests).
  int retry_backoff_ms = 0;
  /// When non-empty, append one fsync'd JSONL record per completed trial to
  /// this write-ahead journal (campaign/journal.h documents the format).
  std::string journal_path;
  /// Replay `journal_path` before running: completed trials are restored
  /// from the journal and skipped; the rest run fresh. The fold happens in
  /// trial order either way, so a killed-and-resumed campaign emits
  /// byte-identical JSON/CSV to an uninterrupted one. A missing or empty
  /// journal resumes as a fresh run; a journal written by a *different*
  /// campaign (fingerprint mismatch) throws std::runtime_error.
  bool resume = false;
  /// Test hook: called at the start of every attempt with
  /// (cell index, rep, attempt); a throw is handled exactly like a trial
  /// failure. Called from worker threads — must be thread-safe.
  std::function<void(std::size_t, int, int)> fault_injection;
  /// Cooperative cancellation probe (e.g. a ShutdownGuard's requested()),
  /// polled before each trial starts. Once it returns true, not-yet-started
  /// trials are skipped (recorded in CampaignResult::skipped_trials, not as
  /// failures), in-flight trials finish normally, and the journal stays
  /// sealed — so a cancelled campaign with a journal resumes exactly where
  /// it stopped. Called from worker threads — must be thread-safe.
  std::function<bool()> cancel;
};

/// One cell's outcome: the resolved cell, the per-trial seeds actually used
/// (the final attempt's seed for each rep), the exact fold of all successful
/// trial outcomes, and the structured failures of the rest.
struct CellResult {
  CampaignCell cell;
  std::vector<std::uint64_t> seeds;
  Aggregate aggregate;
  std::vector<TrialFailure> failures;  // in rep order
};

struct CampaignResult {
  std::vector<CellResult> cells;
  std::size_t trial_count = 0;
  /// Wall-clock execution stats. Not part of the deterministic payload: the
  /// report writers exclude them unless asked for a summary.
  double wall_seconds = 0.0;
  int workers_used = 0;
  /// Trials restored from the journal instead of executed (resume runs).
  /// Execution metadata like workers_used, not part of the payload.
  std::size_t replayed_trials = 0;
  /// Trials skipped because CampaignOptions::cancel fired. Nonzero means the
  /// run was interrupted: aggregates cover only the trials that completed.
  std::size_t skipped_trials = 0;

  /// True when the run was cut short by the cancel hook.
  bool interrupted() const { return skipped_trials > 0; }

  double trials_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(trial_count) / wall_seconds
                              : 0.0;
  }

  /// Exact merge of every cell's aggregate.
  Aggregate total() const;

  /// Total recorded failures across cells (0 under kAbort, which throws).
  std::size_t failed_trials() const;
};

/// Runs explicit cells. Each cell keeps the seed carried by its SimConfig
/// (trial i's first attempt runs under hash_seeds(cell.sim.seed, i)). Under
/// the default ErrorPolicy::kAbort a failing trial makes run_cells throw the
/// lowest (cell, rep) error after every trial has finished; under kKeepGoing
/// failures are returned in CellResult::failures instead.
CampaignResult run_cells(const std::vector<CampaignCell>& cells,
                         const CampaignOptions& options = {});

/// Expands the spec and runs it. Equivalent to run_cells(spec.expand()).
CampaignResult run_campaign(const CampaignSpec& spec,
                            const CampaignOptions& options = {});

}  // namespace rbcast
