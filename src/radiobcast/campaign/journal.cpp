#include "radiobcast/campaign/journal.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "radiobcast/campaign/report.h"
#include "radiobcast/util/rng.h"

namespace rbcast {

namespace {

// --- fingerprint helpers ----------------------------------------------------

std::uint64_t mix(std::uint64_t h, std::uint64_t v) { return hash_seeds(h, v); }

std::uint64_t mix_double(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return mix(h, bits);
}

std::uint64_t mix_string(std::uint64_t h, const std::string& s) {
  std::uint64_t fnv = 0xCBF29CE484222325ULL;  // FNV-1a over the bytes
  for (const char c : s) {
    fnv ^= static_cast<unsigned char>(c);
    fnv *= 0x100000001B3ULL;
  }
  return mix(mix(h, s.size()), fnv);
}

// --- strict line parsing ----------------------------------------------------
//
// The journal is machine-written with a fixed field order and no whitespace,
// so a substring scanner for "key": patterns is exact: every key occurs at
// most once per line before any free-form string field ("what" is last).

bool find_key(const std::string& s, const char* key, std::size_t* value_pos) {
  std::string pattern;
  pattern.reserve(std::strlen(key) + 3);
  pattern += '"';
  pattern += key;
  pattern += "\":";
  const std::size_t at = s.find(pattern);
  if (at == std::string::npos) return false;
  *value_pos = at + pattern.size();
  return true;
}

bool find_u64(const std::string& s, const char* key, std::uint64_t* out) {
  std::size_t pos = 0;
  if (!find_key(s, key, &pos)) return false;
  const char* begin = s.c_str() + pos;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(begin, &end, 10);
  if (end == begin) return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool find_i64(const std::string& s, const char* key, std::int64_t* out) {
  std::size_t pos = 0;
  if (!find_key(s, key, &pos)) return false;
  const char* begin = s.c_str() + pos;
  char* end = nullptr;
  const long long v = std::strtoll(begin, &end, 10);
  if (end == begin) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

bool find_double(const std::string& s, const char* key, double* out) {
  std::size_t pos = 0;
  if (!find_key(s, key, &pos)) return false;
  const char* begin = s.c_str() + pos;
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) return false;
  *out = v;
  return true;
}

bool find_bool(const std::string& s, const char* key, bool* out) {
  std::size_t pos = 0;
  if (!find_key(s, key, &pos)) return false;
  if (s.compare(pos, 4, "true") == 0) {
    *out = true;
    return true;
  }
  if (s.compare(pos, 5, "false") == 0) {
    *out = false;
    return true;
  }
  return false;
}

/// Inverse of json_escape for the escapes it emits.
bool find_string(const std::string& s, const char* key, std::string* out) {
  std::size_t pos = 0;
  if (!find_key(s, key, &pos)) return false;
  if (pos >= s.size() || s[pos] != '"') return false;
  ++pos;
  std::string value;
  while (pos < s.size()) {
    const char c = s[pos];
    if (c == '"') {
      *out = std::move(value);
      return true;
    }
    if (c != '\\') {
      value += c;
      ++pos;
      continue;
    }
    if (pos + 1 >= s.size()) return false;
    switch (s[pos + 1]) {
      case '"': value += '"'; break;
      case '\\': value += '\\'; break;
      case 'n': value += '\n'; break;
      case 'r': value += '\r'; break;
      case 't': value += '\t'; break;
      case 'u': {
        if (pos + 5 >= s.size()) return false;
        const std::string hex = s.substr(pos + 2, 4);
        char* end = nullptr;
        const long code = std::strtol(hex.c_str(), &end, 16);
        if (end != hex.c_str() + 4 || code < 0 || code > 0xFF) return false;
        value += static_cast<char>(code);
        pos += 4;
        break;
      }
      default: return false;
    }
    pos += 2;
  }
  return false;  // unterminated string: a torn line
}

bool parse_counters(const std::string& s, Counters* c) {
  return find_u64(s, "broadcasts_queued", &c->broadcasts_queued) &&
         find_u64(s, "spoofed_sends", &c->spoofed_sends) &&
         find_u64(s, "committed_queued", &c->committed_queued) &&
         find_u64(s, "heard_queued", &c->heard_queued) &&
         find_u64(s, "retransmission_copies", &c->retransmission_copies) &&
         find_u64(s, "envelopes_delivered", &c->envelopes_delivered) &&
         find_u64(s, "envelopes_dropped", &c->envelopes_dropped) &&
         find_u64(s, "commits", &c->commits) &&
         find_u64(s, "trial_retries", &c->trial_retries) &&
         find_u64(s, "trial_timeouts", &c->trial_timeouts) &&
         find_u64(s, "trial_failures", &c->trial_failures) &&
         find_u64(s, "engine_bytes_peak", &c->engine_bytes_peak) &&
         find_i64(s, "last_commit_round", &c->last_commit_round);
}

void append_outcome_json(std::string& out, const TrialOutcome& o) {
  out += "{\"honest_nodes\":" + std::to_string(o.honest_nodes);
  out += ",\"correct_commits\":" + std::to_string(o.correct_commits);
  out += ",\"wrong_commits\":" + std::to_string(o.wrong_commits);
  out += ",\"rounds\":" + std::to_string(o.rounds);
  out += ",\"transmissions\":" + std::to_string(o.transmissions);
  out += ",\"fault_count\":" + std::to_string(o.fault_count);
  out += ",\"nbd_faults\":" + std::to_string(o.nbd_faults);
  out += ",\"success\":";
  out += o.success ? "true" : "false";
  out += ",\"coverage\":" + json_number(o.coverage);
  out += ",\"counters\":" + to_json(o.counters);
  out += "}";
}

}  // namespace

std::uint64_t campaign_fingerprint(const std::vector<CampaignCell>& cells) {
  std::uint64_t h = 0x52424341u;  // "RBCA"
  h = mix(h, cells.size());
  for (const CampaignCell& cell : cells) {
    const SimConfig& sim = cell.sim;
    h = mix_string(h, cell.label);
    h = mix(h, static_cast<std::uint64_t>(cell.reps));
    h = mix(h, static_cast<std::uint64_t>(sim.width));
    h = mix(h, static_cast<std::uint64_t>(sim.height));
    h = mix(h, static_cast<std::uint64_t>(sim.r));
    h = mix(h, static_cast<std::uint64_t>(sim.metric));
    h = mix(h, static_cast<std::uint64_t>(sim.t));
    h = mix(h, static_cast<std::uint64_t>(sim.protocol));
    h = mix(h, static_cast<std::uint64_t>(sim.adversary));
    h = mix(h, static_cast<std::uint64_t>(sim.value));
    h = mix(h, static_cast<std::uint64_t>(sim.source.x));
    h = mix(h, static_cast<std::uint64_t>(sim.source.y));
    h = mix(h, static_cast<std::uint64_t>(sim.crash_round));
    h = mix(h, sim.seed);
    h = mix(h, static_cast<std::uint64_t>(sim.max_rounds));
    h = mix_double(h, sim.loss_p);
    h = mix(h, static_cast<std::uint64_t>(sim.retransmissions));
    h = mix(h, static_cast<std::uint64_t>(sim.jam_budget));
    h = mix(h, static_cast<std::uint64_t>(sim.deadline_rounds));
    h = mix(h, static_cast<std::uint64_t>(sim.deadline_ms));
    const PlacementConfig& p = cell.placement;
    h = mix(h, static_cast<std::uint64_t>(p.kind));
    h = mix(h, p.strip_positions.size());
    for (const std::int32_t x : p.strip_positions) {
      h = mix(h, static_cast<std::uint64_t>(x));
    }
    h = mix(h, static_cast<std::uint64_t>(p.strip_width));
    h = mix(h, static_cast<std::uint64_t>(p.puncture_period));
    h = mix(h, static_cast<std::uint64_t>(p.random_target));
    h = mix_double(h, p.iid_p);
    h = mix(h, static_cast<std::uint64_t>(p.trim));
  }
  return h;
}

std::string journal_header(std::uint64_t fingerprint, std::size_t trials) {
  std::string out = "{\"journal\":\"";
  out += kJournalSchema;
  out += "\",\"fingerprint\":" + std::to_string(fingerprint);
  out += ",\"trials\":" + std::to_string(trials) + "}";
  return out;
}

bool parse_journal_header(const std::string& line, std::uint64_t* fingerprint,
                          std::size_t* trials) {
  if (line.empty() || line.front() != '{' || line.back() != '}') return false;
  std::string schema;
  if (!find_string(line, "journal", &schema) || schema != kJournalSchema) {
    return false;
  }
  std::uint64_t trial_count = 0;
  if (!find_u64(line, "fingerprint", fingerprint) ||
      !find_u64(line, "trials", &trial_count)) {
    return false;
  }
  *trials = static_cast<std::size_t>(trial_count);
  return true;
}

std::string to_json(const JournalRecord& rec) {
  std::string out = "{\"trial\":" + std::to_string(rec.trial);
  out += ",\"cell\":" + std::to_string(rec.cell);
  out += ",\"rep\":" + std::to_string(rec.rep);
  out += ",\"seed\":" + std::to_string(rec.seed);
  out += ",\"status\":\"";
  out += rec.ok ? "ok" : "failed";
  out += "\",\"attempts\":" + std::to_string(rec.attempts);
  if (rec.ok) {
    out += ",\"outcome\":";
    append_outcome_json(out, rec.outcome);
  } else {
    out += ",\"kind\":\"";
    out += to_string(rec.kind);
    out += "\",\"what\":\"" + json_escape(rec.what) + "\"";
  }
  out += "}";
  return out;
}

std::optional<JournalRecord> parse_journal_record(const std::string& line) {
  if (line.empty() || line.front() != '{' || line.back() != '}') {
    return std::nullopt;
  }
  JournalRecord rec;
  std::uint64_t trial = 0, cell = 0;
  std::int64_t rep = 0, attempts = 0;
  std::string status;
  if (!find_u64(line, "trial", &trial) || !find_u64(line, "cell", &cell) ||
      !find_i64(line, "rep", &rep) || !find_u64(line, "seed", &rec.seed) ||
      !find_string(line, "status", &status) ||
      !find_i64(line, "attempts", &attempts)) {
    return std::nullopt;
  }
  rec.trial = static_cast<std::size_t>(trial);
  rec.cell = static_cast<std::size_t>(cell);
  rec.rep = static_cast<int>(rep);
  rec.attempts = static_cast<int>(attempts);
  if (status == "ok") {
    rec.ok = true;
    TrialOutcome& o = rec.outcome;
    bool success = false;
    if (!find_i64(line, "honest_nodes", &o.honest_nodes) ||
        !find_i64(line, "correct_commits", &o.correct_commits) ||
        !find_i64(line, "wrong_commits", &o.wrong_commits) ||
        !find_i64(line, "rounds", &o.rounds) ||
        !find_u64(line, "transmissions", &o.transmissions) ||
        !find_i64(line, "fault_count", &o.fault_count) ||
        !find_i64(line, "nbd_faults", &o.nbd_faults) ||
        !find_bool(line, "success", &success) ||
        !find_double(line, "coverage", &o.coverage) ||
        !parse_counters(line, &o.counters)) {
      return std::nullopt;
    }
    o.success = success;
  } else if (status == "failed") {
    rec.ok = false;
    std::string kind;
    if (!find_string(line, "kind", &kind) ||
        !find_string(line, "what", &rec.what)) {
      return std::nullopt;
    }
    rec.kind = failure_kind_from_string(kind);
  } else {
    return std::nullopt;
  }
  return rec;
}

JournalContents read_journal(const std::string& path,
                             std::uint64_t fingerprint, std::size_t trials) {
  JournalContents out;
  std::ifstream is(path, std::ios::binary);
  if (!is) return out;  // missing journal: resume degenerates to a fresh run
  std::string text((std::istreambuf_iterator<char>(is)),
                   std::istreambuf_iterator<char>());

  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      lines.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  // Anything after the last '\n' is a torn write: never trusted.

  if (lines.empty()) return out;
  std::uint64_t file_fingerprint = 0;
  std::size_t file_trials = 0;
  if (!parse_journal_header(lines[0], &file_fingerprint, &file_trials)) {
    return out;  // corrupt header: treat the journal as absent
  }
  if (file_fingerprint != fingerprint || file_trials != trials) {
    throw std::runtime_error(
        "journal " + path +
        " was written by a different campaign (fingerprint or trial-count "
        "mismatch); refusing to resume");
  }
  out.header = true;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    if (auto rec = parse_journal_record(lines[i])) {
      out.records.push_back(std::move(*rec));
    }
  }
  return out;
}

JournalWriter::JournalWriter(const std::string& path, bool truncate)
    : path_(path) {
  bool torn_tail = false;
  if (!truncate) {
    if (std::FILE* probe = std::fopen(path.c_str(), "rb")) {
      if (std::fseek(probe, -1, SEEK_END) == 0) {
        torn_tail = std::fgetc(probe) != '\n';
      }
      std::fclose(probe);
    }
  }
  file_ = std::fopen(path.c_str(), truncate ? "wb" : "ab");
  if (file_ == nullptr) {
    throw std::runtime_error("cannot open journal " + path + ": " +
                             std::strerror(errno));
  }
  if (torn_tail) append_line("");  // seal the fragment so it can't splice
}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void JournalWriter::append_line(const std::string& line) {
  std::string out = line;
  out += '\n';
  if (std::fwrite(out.data(), 1, out.size(), file_) != out.size() ||
      std::fflush(file_) != 0) {
    throw std::runtime_error("journal write failed for " + path_ + ": " +
                             std::strerror(errno));
  }
#if defined(__unix__) || defined(__APPLE__)
  if (::fsync(fileno(file_)) != 0) {
    throw std::runtime_error("journal fsync failed for " + path_ + ": " +
                             std::strerror(errno));
  }
#endif
}

}  // namespace rbcast
