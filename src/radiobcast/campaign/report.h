#pragma once
// Result sinks for campaign runs: JSON and CSV writers (no external
// dependencies) plus a human-readable run summary.
//
// The JSON/CSV payload is deliberately a pure function of the campaign's
// deterministic results — wall-clock and worker-count stats are excluded —
// so two runs of the same spec at different worker counts serialize to
// byte-identical files. The determinism test in tests/test_campaign.cpp
// asserts exactly that.

#include <iosfwd>
#include <string>

#include "radiobcast/campaign/engine.h"

namespace rbcast {

/// Writes the campaign as a JSON document:
/// {
///   "schema": "radiobcast-campaign-v4",
///   "trials": N,
///   "cells": [
///     {"label": ..., "params": {protocol, adversary, placement, width,
///      height, r, metric, t, loss_p, retransmissions, reps, seed},
///      "seeds": [...],
///      "aggregate": {runs, successes, correct_total, honest_total,
///       wrong_total, rounds_total, transmissions_total, fault_total,
///       min_coverage, max_nbd_faults, mean_coverage, mean_rounds,
///       mean_transmissions, mean_fault_count,
///       "counters": {broadcasts_queued, spoofed_sends, committed_queued,
///        heard_queued, retransmission_copies, envelopes_delivered,
///        envelopes_dropped, commits, trial_retries, trial_timeouts,
///        trial_failures, last_commit_round}},
///      "failures": [{"rep", "attempts", "seed", "kind", "what"}, ...]},
///     ...]
/// }
/// (v2 = v1 plus the per-cell summed observability counters; v3 adds the
/// structured per-cell `failures` array and the three fault-tolerance
/// counters. `aggregate.runs` counts completed trials only, so it can be
/// below `params.reps` when failures were kept. Wall-clock phase timings
/// remain excluded: they are not deterministic.)
void write_json(std::ostream& os, const CampaignResult& result);
std::string to_json(const CampaignResult& result);

/// Writes one CSV row per cell with the same params + aggregate columns.
void write_csv(std::ostream& os, const CampaignResult& result);
std::string to_csv(const CampaignResult& result);

/// One-paragraph human summary: cells, trials, workers, wall-clock,
/// throughput. This is where the non-deterministic stats go.
void write_summary(std::ostream& os, const CampaignResult& result);

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view s);

/// Deterministic number formatting: integers render without a decimal point,
/// everything else with up to 17 significant digits (round-trip exact).
std::string json_number(double value);

}  // namespace rbcast
