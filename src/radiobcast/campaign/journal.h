#pragma once
// Write-ahead journal for campaign runs: one fsync'd JSONL record per
// completed trial, so a SIGKILL'd campaign can be resumed without redoing (or
// worse, silently dropping) finished work.
//
// File format (one JSON object per line):
//
//   {"journal":"radiobcast-journal-v1","fingerprint":<u64>,"trials":<N>}
//   {"trial":0,"cell":0,"rep":0,"seed":...,"status":"ok","attempts":1,
//    "outcome":{"honest_nodes":...,...,"counters":{...}}}
//   {"trial":7,"cell":1,"rep":3,"seed":...,"status":"failed","attempts":3,
//    "kind":"transient","what":"..."}
//
// The header pins the campaign identity: `fingerprint` hashes every cell's
// trial-affecting parameters (campaign_fingerprint), `trials` the flattened
// trial count. Resume refuses a journal whose header does not match the spec
// being run — a journal is only ever replayed into the campaign that wrote
// it. Records carry everything the engine's fold consumes (TrialOutcome
// integer fields, round-trip-exact coverage, counters; wall-clock timers are
// nondeterministic and deliberately absent), which is what makes a resumed
// campaign's JSON/CSV exports byte-identical to an uninterrupted run's.
//
// Torn-write safety: each record is written as one line + '\n' in a single
// fwrite, flushed and fsync'd. The reader only trusts '\n'-terminated lines
// that parse completely; a torn tail (or any corrupt line) is skipped, and
// the trial simply runs again on resume. Appending after a torn tail first
// terminates the fragment with '\n' so it can never splice into a new record.

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "radiobcast/campaign/engine.h"

namespace rbcast {

inline constexpr const char* kJournalSchema = "radiobcast-journal-v1";

/// One journal line: a completed trial, successful or terminally failed.
struct JournalRecord {
  std::size_t trial = 0;  // index into the flattened trial list
  std::size_t cell = 0;
  int rep = 0;
  int attempts = 1;
  std::uint64_t seed = 0;  // seed of the final attempt
  bool ok = true;
  TrialOutcome outcome;  // when ok (timers zero: they are not journaled)
  FailureKind kind = FailureKind::kPermanent;  // when !ok
  std::string what;                            // when !ok
};

/// Deterministic digest of every trial-affecting cell parameter (sim config,
/// placement knobs, reps, label). Two cell lists that could produce different
/// trials have different fingerprints with overwhelming probability.
std::uint64_t campaign_fingerprint(const std::vector<CampaignCell>& cells);

std::string journal_header(std::uint64_t fingerprint, std::size_t trials);
std::string to_json(const JournalRecord& rec);

/// Strict parsers for the exact format written above. nullopt on anything
/// malformed (missing field, wrong schema string, truncated line).
std::optional<JournalRecord> parse_journal_record(const std::string& line);
bool parse_journal_header(const std::string& line, std::uint64_t* fingerprint,
                          std::size_t* trials);

struct JournalContents {
  bool header = false;  // a valid matching header line was present
  std::vector<JournalRecord> records;
};

/// Reads a journal for resumption. A missing or empty file yields
/// {header=false, {}} (resume degenerates to a fresh run). A present header
/// that does not match (fingerprint, trials) throws std::runtime_error: the
/// journal belongs to a different campaign. Unparseable lines — including a
/// torn final line — are skipped.
JournalContents read_journal(const std::string& path,
                             std::uint64_t fingerprint, std::size_t trials);

/// Append-only journal writer; every append is flushed and fsync'd before
/// returning, so a record either survives a crash whole or not at all.
/// Callers serialize appends (the engine holds its bookkeeping mutex).
class JournalWriter {
 public:
  /// truncate=true starts a fresh journal; truncate=false appends (resume),
  /// newline-terminating any torn tail left by a crash first.
  /// Throws std::runtime_error if the file cannot be opened.
  JournalWriter(const std::string& path, bool truncate);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Writes `line` + '\n' in one fwrite, then flushes and fsyncs.
  /// Throws std::runtime_error on I/O failure.
  void append_line(const std::string& line);

 private:
  std::FILE* file_ = nullptr;
  std::string path_;
};

}  // namespace rbcast
