#include "radiobcast/campaign/report.h"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <string_view>

#include "radiobcast/obs/memory.h"
#include "radiobcast/util/table.h"

namespace rbcast {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9007199254740992.0 /* 2^53 */) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
    return buf;
  }
  if (!std::isfinite(value)) return "null";  // JSON has no inf/nan
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

namespace {

void write_params(std::ostream& os, const CampaignCell& cell) {
  const SimConfig& sim = cell.sim;
  os << "{\"protocol\":\"" << to_string(sim.protocol) << "\""
     << ",\"adversary\":\"" << to_string(sim.adversary) << "\""
     << ",\"placement\":\"" << to_string(cell.placement.kind) << "\""
     << ",\"width\":" << sim.width << ",\"height\":" << sim.height
     << ",\"r\":" << sim.r << ",\"metric\":\"" << to_string(sim.metric)
     << "\",\"t\":" << sim.t << ",\"loss_p\":" << json_number(sim.loss_p)
     << ",\"retransmissions\":" << sim.retransmissions
     << ",\"reps\":" << cell.reps << ",\"seed\":" << sim.seed << "}";
}

void write_aggregate(std::ostream& os, const Aggregate& agg) {
  os << "{\"runs\":" << agg.runs << ",\"successes\":" << agg.successes
     << ",\"correct_total\":" << agg.correct_total
     << ",\"honest_total\":" << agg.honest_total
     << ",\"wrong_total\":" << agg.wrong_total
     << ",\"rounds_total\":" << agg.rounds_total
     << ",\"transmissions_total\":" << agg.transmissions_total
     << ",\"fault_total\":" << agg.fault_total
     << ",\"min_coverage\":" << json_number(agg.min_coverage)
     << ",\"max_nbd_faults\":" << agg.max_nbd_faults
     << ",\"mean_coverage\":" << json_number(agg.mean_coverage())
     << ",\"mean_rounds\":" << json_number(agg.mean_rounds())
     << ",\"mean_transmissions\":" << json_number(agg.mean_transmissions())
     << ",\"mean_fault_count\":" << json_number(agg.mean_fault_count())
     << ",\"counters\":" << to_json(agg.counters_total) << "}";
}

}  // namespace

void write_json(std::ostream& os, const CampaignResult& result) {
  os << "{\"schema\":\"radiobcast-campaign-v5\",\"trials\":"
     << result.trial_count << ",\"cells\":[";
  for (std::size_t c = 0; c < result.cells.size(); ++c) {
    const CellResult& cell = result.cells[c];
    if (c > 0) os << ",";
    os << "\n{\"label\":\"" << json_escape(cell.cell.label)
       << "\",\"params\":";
    write_params(os, cell.cell);
    os << ",\"seeds\":[";
    for (std::size_t i = 0; i < cell.seeds.size(); ++i) {
      if (i > 0) os << ",";
      os << cell.seeds[i];
    }
    os << "],\"aggregate\":";
    write_aggregate(os, cell.aggregate);
    os << ",\"failures\":[";
    for (std::size_t f = 0; f < cell.failures.size(); ++f) {
      const TrialFailure& failure = cell.failures[f];
      if (f > 0) os << ",";
      os << "{\"rep\":" << failure.rep
         << ",\"attempts\":" << failure.attempts
         << ",\"seed\":" << failure.seed << ",\"kind\":\""
         << to_string(failure.kind) << "\",\"what\":\""
         << json_escape(failure.what) << "\"}";
    }
    os << "]}";
  }
  os << "\n]}\n";
}

std::string to_json(const CampaignResult& result) {
  std::ostringstream os;
  write_json(os, result);
  return os.str();
}

void write_csv(std::ostream& os, const CampaignResult& result) {
  os << "label,protocol,adversary,placement,width,height,r,metric,t,loss_p,"
        "retransmissions,reps,seed,runs,successes,correct_total,honest_total,"
        "wrong_total,rounds_total,transmissions_total,fault_total,"
        "min_coverage,max_nbd_faults,mean_coverage,mean_rounds,"
        "mean_transmissions,mean_fault_count,broadcasts_queued,spoofed_sends,"
        "committed_queued,heard_queued,retransmission_copies,"
        "envelopes_delivered,envelopes_dropped,commits,trial_retries,"
        "trial_timeouts,trial_failures,packets_sent,packets_retransmitted,"
        "packets_acked,duplicates_dropped,barrier_timeouts,barrier_wait_us,"
        "chaos_drops,chaos_delays,chaos_duplicates,chaos_partition_drops,"
        "node_restarts,peers_suspected,degraded_rounds,engine_bytes_peak,"
        "last_commit_round\n";
  for (const CellResult& cell : result.cells) {
    const SimConfig& sim = cell.cell.sim;
    const Aggregate& agg = cell.aggregate;
    std::string label = cell.cell.label;
    for (char& c : label) {
      if (c == ',' || c == '\n') c = ' ';  // keep the CSV single-token simple
    }
    os << label << ',' << to_string(sim.protocol) << ','
       << to_string(sim.adversary) << ',' << to_string(cell.cell.placement.kind)
       << ',' << sim.width << ',' << sim.height << ',' << sim.r << ','
       << to_string(sim.metric) << ',' << sim.t << ','
       << json_number(sim.loss_p) << ',' << sim.retransmissions << ','
       << cell.cell.reps << ',' << sim.seed << ',' << agg.runs << ','
       << agg.successes << ',' << agg.correct_total << ',' << agg.honest_total
       << ',' << agg.wrong_total << ',' << agg.rounds_total << ','
       << agg.transmissions_total << ',' << agg.fault_total << ','
       << json_number(agg.min_coverage) << ',' << agg.max_nbd_faults << ','
       << json_number(agg.mean_coverage()) << ','
       << json_number(agg.mean_rounds()) << ','
       << json_number(agg.mean_transmissions()) << ','
       << json_number(agg.mean_fault_count()) << ','
       << agg.counters_total.broadcasts_queued << ','
       << agg.counters_total.spoofed_sends << ','
       << agg.counters_total.committed_queued << ','
       << agg.counters_total.heard_queued << ','
       << agg.counters_total.retransmission_copies << ','
       << agg.counters_total.envelopes_delivered << ','
       << agg.counters_total.envelopes_dropped << ','
       << agg.counters_total.commits << ','
       << agg.counters_total.trial_retries << ','
       << agg.counters_total.trial_timeouts << ','
       << agg.counters_total.trial_failures << ','
       << agg.counters_total.packets_sent << ','
       << agg.counters_total.packets_retransmitted << ','
       << agg.counters_total.packets_acked << ','
       << agg.counters_total.duplicates_dropped << ','
       << agg.counters_total.barrier_timeouts << ','
       << agg.counters_total.barrier_wait_us << ','
       << agg.counters_total.chaos_drops << ','
       << agg.counters_total.chaos_delays << ','
       << agg.counters_total.chaos_duplicates << ','
       << agg.counters_total.chaos_partition_drops << ','
       << agg.counters_total.node_restarts << ','
       << agg.counters_total.peers_suspected << ','
       << agg.counters_total.degraded_rounds << ','
       << agg.counters_total.engine_bytes_peak << ','
       << agg.counters_total.last_commit_round << '\n';
  }
}

std::string to_csv(const CampaignResult& result) {
  std::ostringstream os;
  write_csv(os, result);
  return os.str();
}

void write_summary(std::ostream& os, const CampaignResult& result) {
  os << "campaign: " << result.cells.size() << " cells, "
     << result.trial_count << " trials, " << result.workers_used
     << " worker" << (result.workers_used == 1 ? "" : "s") << ", "
     << format_double(result.wall_seconds, 3) << " s wall ("
     << format_double(result.trials_per_second(), 1) << " trials/s)\n";
  if (result.replayed_trials > 0 || result.failed_trials() > 0) {
    const Counters& counters = result.total().counters_total;
    os << "fault tolerance: " << result.replayed_trials
       << " trials replayed from journal, " << result.failed_trials()
       << " failed (" << counters.trial_timeouts << " timeouts), "
       << counters.trial_retries << " retries\n";
  }
  // Per-trial phase split (wall-clock, nondeterministic — summary only).
  const PhaseTimers& t = result.total().timers_total;
  const double cpu = t.total_seconds();
  if (cpu > 0.0 && result.trial_count > 0) {
    const double n = static_cast<double>(result.trial_count);
    os << "phases: setup " << format_double(t.setup_seconds / n * 1e3, 3)
       << " ms/trial, rounds " << format_double(t.rounds_seconds / n * 1e3, 3)
       << " ms/trial, verdict "
       << format_double(t.verdict_seconds / n * 1e3, 3) << " ms/trial\n";
  }
  // Memory: the deterministic analytical engine peak (largest single trial)
  // next to the OS's view of the whole process (nondeterministic, so like
  // wall_seconds it appears only here, never in the JSON/CSV payload).
  const std::uint64_t engine_peak =
      result.total().counters_total.engine_bytes_peak;
  if (engine_peak > 0) {
    os << "memory: engine peak "
       << format_double(static_cast<double>(engine_peak) / (1024.0 * 1024.0),
                        1)
       << " MiB/trial";
    if (const std::uint64_t rss = peak_rss_bytes(); rss > 0) {
      os << ", process peak RSS "
         << format_double(static_cast<double>(rss) / (1024.0 * 1024.0), 1)
         << " MiB";
    }
    os << '\n';
  }
}

}  // namespace rbcast
