#include "radiobcast/campaign/spec.h"

#include <sstream>

#include "radiobcast/util/rng.h"
#include "radiobcast/util/table.h"

namespace rbcast {

namespace {

template <typename T>
std::size_t axis_len(const std::vector<T>& axis) {
  return axis.empty() ? 1 : axis.size();
}

}  // namespace

std::size_t CampaignSpec::cell_count() const {
  return axis_len(protocols) * axis_len(adversaries) * axis_len(placements) *
         axis_len(sides) * axis_len(radii) * axis_len(budgets) *
         axis_len(loss_ps);
}

std::size_t CampaignSpec::trial_count() const {
  return cell_count() * static_cast<std::size_t>(reps < 0 ? 0 : reps);
}

std::vector<CampaignCell> CampaignSpec::expand() const {
  std::vector<CampaignCell> cells;
  cells.reserve(cell_count());
  std::uint64_t cell_index = 0;
  for (std::size_t pi = 0; pi < axis_len(protocols); ++pi) {
    for (std::size_t ai = 0; ai < axis_len(adversaries); ++ai) {
      for (std::size_t li = 0; li < axis_len(placements); ++li) {
        for (std::size_t si = 0; si < axis_len(sides); ++si) {
          for (std::size_t ri = 0; ri < axis_len(radii); ++ri) {
            for (std::size_t ti = 0; ti < axis_len(budgets); ++ti) {
              for (std::size_t ei = 0; ei < axis_len(loss_ps); ++ei) {
                CampaignCell cell;
                cell.sim = base;
                cell.placement = placement;
                cell.reps = reps;
                std::ostringstream label;
                const auto tag = [&label](const char* key, auto value) {
                  if (label.tellp() > 0) label << ' ';
                  label << key << '=' << value;
                };
                if (!protocols.empty()) {
                  cell.sim.protocol = protocols[pi];
                  tag("protocol", to_string(cell.sim.protocol));
                }
                if (!adversaries.empty()) {
                  cell.sim.adversary = adversaries[ai];
                  tag("adversary", to_string(cell.sim.adversary));
                }
                if (!placements.empty()) {
                  cell.placement.kind = placements[li];
                  tag("placement", to_string(cell.placement.kind));
                }
                if (!sides.empty() && sides[si] > 0) {
                  cell.sim.width = cell.sim.height = sides[si];
                  tag("side", sides[si]);
                }
                if (!radii.empty()) {
                  cell.sim.r = radii[ri];
                  tag("r", cell.sim.r);
                }
                if (!budgets.empty()) {
                  cell.sim.t = budgets[ti];
                  tag("t", cell.sim.t);
                }
                if (!loss_ps.empty()) {
                  cell.sim.loss_p = loss_ps[ei];
                  tag("loss_p", format_double(loss_ps[ei], 6));
                }
                cell.sim.seed = hash_seeds(base_seed, cell_index);
                cell.label = label.str();
                cells.push_back(std::move(cell));
                ++cell_index;
              }
            }
          }
        }
      }
    }
  }
  return cells;
}

}  // namespace rbcast
