#pragma once
// A small fixed-size thread pool with a FIFO work queue, used by the campaign
// engine to fan simulation trials out across cores.
//
// Determinism note: the pool makes no ordering promises — jobs may complete
// in any order. Campaign determinism is achieved one level up, by giving each
// trial a seed derived from its index (never from scheduling) and by folding
// trial outcomes into aggregates in index order after the queue drains.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rbcast {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(int workers);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job. Jobs must not throw (wrap work that can throw and stash
  /// the exception; the campaign engine does exactly that).
  void submit(std::function<void()> job);

  /// Blocks until every submitted job has finished executing (not merely been
  /// dequeued). More jobs may be submitted afterwards.
  void wait_idle();

  int workers() const { return static_cast<int>(threads_.size()); }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard allows
  /// it to return 0 when unknown).
  static int hardware_workers();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::size_t in_flight_ = 0;  // dequeued but not yet finished
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace rbcast
