#include "radiobcast/campaign/thread_pool.h"

#include <algorithm>
#include <utility>

namespace rbcast {

ThreadPool::ThreadPool(int workers) {
  const int n = std::max(1, workers);
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  work_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

int ThreadPool::hardware_workers() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and nothing left to run
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    job();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace rbcast
