#pragma once
// Exact maximum node-disjoint packing of evidence reports.
//
// A decider in the Byzantine protocol (Section VI) holds a set of reported
// paths for a given (origin, value) and must decide whether t+1 of them are
// pairwise node-disjoint (sharing only the origin/decider endpoints). Reports
// are atomic units of trust — a path is sound iff *all* of its relayers are
// honest — so disjointness must be evaluated over whole reports, never by
// recombining hops of different reports. That makes this a set-packing
// (equivalently, max independent set in the conflict graph) problem. The
// instances are tiny (reports confined to one neighborhood, interiors of
// size <= 3), so an exact branch-and-bound with an early exit at the target
// is both correct and fast.

#include <array>
#include <bitset>
#include <cstdint>
#include <span>
#include <vector>

namespace rbcast {

/// Node-id bitmask of a report's interior. Relayers of accepted reports lie
/// within 2r of the committer, so a (4r+1)^2 id space suffices; 1024 bits
/// cover r <= 7.
using NodeMask = std::bitset<1024>;

/// Compact interior of a single report: up to four opaque 32-bit node ids,
/// kept sorted. The incremental determination engine packs origin-relative
/// relayer deltas into the ids; the solver only needs id equality. Chains
/// are bounded at three relayers (+1 slack, mirroring RelayerChain), so the
/// inline array replaces a 1024-bit mask per report — disjointness is a
/// handful of integer compares instead of a wide AND.
class Interior {
 public:
  static constexpr std::size_t kCapacity = 4;

  std::size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Inserts an id, keeping ids_ sorted. Ids within one report are distinct
  /// (relayer chains never repeat a node).
  void add(std::uint32_t id) {
    std::size_t i = n_++;
    while (i > 0 && ids_[i - 1] > id) {
      ids_[i] = ids_[i - 1];
      --i;
    }
    ids_[i] = id;
  }

  /// True iff the two interiors share any node id (merge scan over the
  /// sorted arrays).
  bool intersects(const Interior& o) const {
    std::size_t i = 0, j = 0;
    while (i < n_ && j < o.n_) {
      if (ids_[i] == o.ids_[j]) return true;
      if (ids_[i] < o.ids_[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    return false;
  }

 private:
  std::array<std::uint32_t, kCapacity> ids_{};
  std::uint8_t n_ = 0;
};

struct PackingResult {
  int count = 0;             // size of the best packing found
  std::vector<int> chosen;   // indices into the input vector
};

/// Maximum subfamily of pairwise-disjoint masks (empty masks are always
/// compatible and are all taken). If target > 0, returns as soon as a packing
/// of size >= target is found (count may then understate the true maximum,
/// but chosen is still a valid packing).
///
/// The branch-and-bound explores at most `node_budget` search nodes; on
/// exhaustion it returns the best packing found so far (seeded with a greedy
/// solution). A truncated search can only *under*-count — callers treating
/// the result as a disjointness certificate stay sound; an adversary flooding
/// a decider with junk reports can at worst delay determination, never forge
/// one.
PackingResult max_disjoint_packing(const std::vector<NodeMask>& masks,
                                   int target = 0,
                                   std::int64_t node_budget = 20000);

/// Interior-based variant: identical search (same heuristic order, greedy
/// seed, budget accounting, and early exit), so for inputs describing the
/// same conflict structure it returns the same count and chosen indices as
/// the NodeMask overload — the determination engine's hot path relies on
/// that equivalence to keep results byte-identical.
PackingResult max_disjoint_packing(std::span<const Interior> interiors,
                                   int target = 0,
                                   std::int64_t node_budget = 20000);

}  // namespace rbcast
