#pragma once
// Exact maximum node-disjoint packing of evidence reports.
//
// A decider in the Byzantine protocol (Section VI) holds a set of reported
// paths for a given (origin, value) and must decide whether t+1 of them are
// pairwise node-disjoint (sharing only the origin/decider endpoints). Reports
// are atomic units of trust — a path is sound iff *all* of its relayers are
// honest — so disjointness must be evaluated over whole reports, never by
// recombining hops of different reports. That makes this a set-packing
// (equivalently, max independent set in the conflict graph) problem. The
// instances are tiny (reports confined to one neighborhood, interiors of
// size <= 3), so an exact branch-and-bound with an early exit at the target
// is both correct and fast.

#include <bitset>
#include <cstdint>
#include <vector>

namespace rbcast {

/// Node-id bitmask of a report's interior. Relayers of accepted reports lie
/// within 2r of the committer, so a (4r+1)^2 id space suffices; 1024 bits
/// cover r <= 7.
using NodeMask = std::bitset<1024>;

struct PackingResult {
  int count = 0;             // size of the best packing found
  std::vector<int> chosen;   // indices into the input vector
};

/// Maximum subfamily of pairwise-disjoint masks (empty masks are always
/// compatible and are all taken). If target > 0, returns as soon as a packing
/// of size >= target is found (count may then understate the true maximum,
/// but chosen is still a valid packing).
///
/// The branch-and-bound explores at most `node_budget` search nodes; on
/// exhaustion it returns the best packing found so far (seeded with a greedy
/// solution). A truncated search can only *under*-count — callers treating
/// the result as a disjointness certificate stay sound; an adversary flooding
/// a decider with junk reports can at worst delay determination, never forge
/// one.
PackingResult max_disjoint_packing(const std::vector<NodeMask>& masks,
                                   int target = 0,
                                   std::int64_t node_budget = 20000);

}  // namespace rbcast
