#include "radiobcast/paths/disjoint.h"

#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "radiobcast/grid/neighborhood.h"
#include "radiobcast/paths/flow.h"

namespace rbcast {

bool is_radio_path(const GridPath& path, std::int32_t r, Metric m) {
  if (path.nodes.size() < 2) return false;
  for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
    if (!within_radius(path.nodes[i + 1] - path.nodes[i], r, m)) return false;
  }
  return true;
}

bool validate(const DisjointPathSet& set, std::int32_t r, Metric m) {
  std::unordered_set<Coord> interior_seen;
  for (const GridPath& p : set.paths) {
    if (p.nodes.empty() || p.nodes.front() != set.origin ||
        p.nodes.back() != set.dest) {
      return false;
    }
    if (!is_radio_path(p, r, m)) return false;
    for (const Coord c : p.nodes) {
      if (!within_radius(c - set.center, r, m)) return false;
    }
    for (std::size_t i = 1; i + 1 < p.nodes.size(); ++i) {
      const Coord c = p.nodes[i];
      if (c == set.origin || c == set.dest) return false;
      if (!interior_seen.insert(c).second) return false;  // shared interior
    }
  }
  return true;
}

DisjointPathSet max_disjoint_paths_in_nbd(Coord origin, Coord dest,
                                          Coord center, std::int32_t r,
                                          Metric m) {
  if (!within_radius(origin - center, r, m) ||
      !within_radius(dest - center, r, m)) {
    throw std::invalid_argument(
        "max_disjoint_paths_in_nbd: endpoints must lie in nbd(center)");
  }
  DisjointPathSet result{origin, dest, center, {}};
  if (origin == dest) return result;

  // Collect the patch: all nodes within r of center.
  std::vector<Coord> patch;
  for (std::int32_t dy = -r; dy <= r; ++dy) {
    for (std::int32_t dx = -r; dx <= r; ++dx) {
      const Offset o{dx, dy};
      if (within_radius(o, r, m)) patch.push_back(center + o);
    }
  }
  std::unordered_map<Coord, int> id;
  id.reserve(patch.size());
  for (const Coord c : patch) id.emplace(c, static_cast<int>(id.size()));

  // Vertex split: node k -> in=2k, out=2k+1. Interior capacity 1; endpoints
  // effectively unbounded.
  const int n = static_cast<int>(patch.size());
  MaxFlow flow(2 * n);
  const std::int64_t big = 4LL * n;
  for (int k = 0; k < n; ++k) {
    const Coord c = patch[static_cast<std::size_t>(k)];
    const std::int64_t cap = (c == origin || c == dest) ? big : 1;
    flow.add_edge(2 * k, 2 * k + 1, cap);
  }
  for (int a = 0; a < n; ++a) {
    for (int b = 0; b < n; ++b) {
      if (a == b) continue;
      if (within_radius(patch[static_cast<std::size_t>(b)] -
                            patch[static_cast<std::size_t>(a)],
                        r, m)) {
        flow.add_edge(2 * a + 1, 2 * b, 1);
      }
    }
  }
  const int s = 2 * id.at(origin) + 1;  // origin_out
  const int t = 2 * id.at(dest);        // dest_in
  flow.solve(s, t);

  for (const auto& vertex_path : flow.decompose_unit_paths(s, t)) {
    GridPath gp;
    gp.nodes.push_back(origin);
    for (const int v : vertex_path) {
      if (v == s || v == t) continue;
      if (v % 2 == 0) {  // "in" copy marks arrival at a grid node
        gp.nodes.push_back(patch[static_cast<std::size_t>(v / 2)]);
      }
    }
    gp.nodes.push_back(dest);
    result.paths.push_back(std::move(gp));
  }
  return result;
}

std::optional<DisjointPathSet> best_disjoint_paths(Coord origin, Coord dest,
                                                   std::int32_t r, Metric m) {
  std::optional<DisjointPathSet> best;
  // c must satisfy dist(c, origin) <= r and dist(c, dest) <= r; scan the
  // bounding box of the two balls.
  for (std::int32_t cy = origin.y - r; cy <= origin.y + r; ++cy) {
    for (std::int32_t cx = origin.x - r; cx <= origin.x + r; ++cx) {
      const Coord c{cx, cy};
      if (!within_radius(origin - c, r, m) || !within_radius(dest - c, r, m)) {
        continue;
      }
      auto candidate = max_disjoint_paths_in_nbd(origin, dest, c, r, m);
      if (!best || candidate.paths.size() > best->paths.size()) {
        best = std::move(candidate);
      }
    }
  }
  return best;
}

GridPath shortcut(const GridPath& path, std::int32_t r, Metric m) {
  GridPath out;
  if (path.nodes.empty()) return out;
  std::size_t i = 0;
  out.nodes.push_back(path.nodes[0]);
  while (i + 1 < path.nodes.size()) {
    std::size_t next = i + 1;
    for (std::size_t j = path.nodes.size() - 1; j > i; --j) {
      if (within_radius(path.nodes[j] - path.nodes[i], r, m)) {
        next = j;
        break;
      }
    }
    out.nodes.push_back(path.nodes[next]);
    i = next;
  }
  return out;
}

}  // namespace rbcast
