#pragma once
// Node-disjoint radio paths between two grid nodes, confined to a single
// neighborhood.
//
// The protocols and proofs of the paper hinge on the existence of many
// node-disjoint paths between a committed node N and a deciding node P such
// that every node of every path lies in one neighborhood nbd(c) (Theorem 3).
// This module computes maximum families of such paths by max-flow with vertex
// splitting (Menger), working in plain (unwrapped) grid coordinates: callers
// on a torus pass displacement-relative coordinates.

#include <cstdint>
#include <optional>
#include <vector>

#include "radiobcast/grid/coord.h"
#include "radiobcast/grid/metric.h"

namespace rbcast {

/// A radio path: consecutive nodes are within transmission radius of each
/// other. Stored committer-first, decider-last, endpoints included.
struct GridPath {
  std::vector<Coord> nodes;

  std::size_t intermediates() const {
    return nodes.size() >= 2 ? nodes.size() - 2 : 0;
  }
};

/// True iff consecutive nodes of `path` are within radius r under metric m.
bool is_radio_path(const GridPath& path, std::int32_t r, Metric m);

/// A family of paths from origin to dest whose nodes all lie in the closed
/// L∞/L2 ball of radius r around `center`, pairwise node-disjoint except for
/// the shared endpoints.
struct DisjointPathSet {
  Coord origin;
  Coord dest;
  Coord center;
  std::vector<GridPath> paths;
};

/// Verifies the DisjointPathSet invariants (radio hops, containment in
/// nbd(center) including endpoints, pairwise interior disjointness).
bool validate(const DisjointPathSet& set, std::int32_t r, Metric m);

/// Maximum family of node-disjoint origin->dest radio paths with every node
/// within distance r of `center`. Precondition: origin and dest are within r
/// of center. Runs Dinic on the vertex-split patch graph.
DisjointPathSet max_disjoint_paths_in_nbd(Coord origin, Coord dest,
                                          Coord center, std::int32_t r,
                                          Metric m);

/// Tries every candidate center c (with origin, dest in nbd(c)) and returns
/// the family with the most paths; ties broken by row-major center order.
/// Returns nullopt when no common neighborhood exists.
std::optional<DisjointPathSet> best_disjoint_paths(Coord origin, Coord dest,
                                                   std::int32_t r, Metric m);

/// Greedy shortcut of a radio path: repeatedly jump to the farthest
/// downstream node within radius. The result uses a subset of the input's
/// nodes (so disjointness of a family is preserved) and is never longer.
GridPath shortcut(const GridPath& path, std::int32_t r, Metric m);

}  // namespace rbcast
