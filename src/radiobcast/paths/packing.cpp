#include "radiobcast/paths/packing.h"

#include <algorithm>

namespace rbcast {

namespace {

struct Searcher {
  const std::vector<NodeMask>* masks;
  const std::vector<int>* order;  // indices of non-empty masks, sorted
  int target;                     // stop once best >= target (0 = exact)
  std::int64_t budget;            // remaining search nodes
  int best = 0;
  std::vector<int> best_chosen;
  std::vector<int> current;

  bool done() const {
    return (target > 0 && best >= target) || budget <= 0;
  }

  void record_current() {
    if (static_cast<int>(current.size()) > best) {
      best = static_cast<int>(current.size());
      best_chosen = current;
    }
  }

  void search(std::size_t pos, const NodeMask& used) {
    if (done()) return;
    --budget;
    const int remaining = static_cast<int>(order->size() - pos);
    if (static_cast<int>(current.size()) + remaining <= best) return;  // bound
    if (pos == order->size()) {
      record_current();
      return;
    }
    const int idx = (*order)[pos];
    const NodeMask& m = (*masks)[static_cast<std::size_t>(idx)];
    // Branch 1: take it if compatible.
    if ((m & used).none()) {
      current.push_back(idx);
      record_current();  // keep partial results in case the budget runs out
      search(pos + 1, used | m);
      current.pop_back();
      if (done()) return;
    }
    // Branch 2: skip it.
    search(pos + 1, used);
  }
};

// Interior-based twin of Searcher. The recursion structure, bound, budget
// accounting, and recording order are kept identical so both overloads
// explore the same tree and return the same result for inputs with the same
// conflict structure; only the compatibility primitive differs (pairwise
// merge scans against the chosen set instead of a wide-mask AND).
struct InteriorSearcher {
  std::span<const Interior> items;
  const std::vector<int>* order;  // indices of non-empty interiors, sorted
  int target;                     // stop once best >= target (0 = exact)
  std::int64_t budget;            // remaining search nodes
  int best = 0;
  std::vector<int> best_chosen;
  std::vector<int> current;

  bool done() const {
    return (target > 0 && best >= target) || budget <= 0;
  }

  void record_current() {
    if (static_cast<int>(current.size()) > best) {
      best = static_cast<int>(current.size());
      best_chosen = current;
    }
  }

  bool compatible(int idx) const {
    for (const int c : current) {
      if (items[static_cast<std::size_t>(c)].intersects(
              items[static_cast<std::size_t>(idx)])) {
        return false;
      }
    }
    return true;
  }

  void search(std::size_t pos) {
    if (done()) return;
    --budget;
    const int remaining = static_cast<int>(order->size() - pos);
    if (static_cast<int>(current.size()) + remaining <= best) return;  // bound
    if (pos == order->size()) {
      record_current();
      return;
    }
    const int idx = (*order)[pos];
    // Branch 1: take it if compatible.
    if (compatible(idx)) {
      current.push_back(idx);
      record_current();  // keep partial results in case the budget runs out
      search(pos + 1);
      current.pop_back();
      if (done()) return;
    }
    // Branch 2: skip it.
    search(pos + 1);
  }
};

}  // namespace

PackingResult max_disjoint_packing(const std::vector<NodeMask>& masks,
                                   int target, std::int64_t node_budget) {
  PackingResult result;
  // Empty interiors (e.g. direct single-hop chains with no intermediate)
  // conflict with nothing; take them all unconditionally.
  std::vector<int> order;
  for (std::size_t i = 0; i < masks.size(); ++i) {
    if (masks[i].none()) {
      result.chosen.push_back(static_cast<int>(i));
    } else {
      order.push_back(static_cast<int>(i));
    }
  }
  result.count = static_cast<int>(result.chosen.size());
  if (target > 0 && result.count >= target) return result;

  // Heuristic order: fewer interior nodes first (more likely to pack).
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto ca = masks[static_cast<std::size_t>(a)].count();
    const auto cb = masks[static_cast<std::size_t>(b)].count();
    return ca != cb ? ca < cb : a < b;
  });

  Searcher searcher;
  searcher.masks = &masks;
  searcher.order = &order;
  searcher.target = target > 0 ? target - result.count : 0;
  searcher.budget = node_budget;

  // Seed with the greedy packing along the heuristic order so that a
  // truncated search still returns a sensible answer.
  {
    NodeMask used;
    std::vector<int> greedy;
    for (const int idx : order) {
      const NodeMask& m = masks[static_cast<std::size_t>(idx)];
      if ((m & used).none()) {
        greedy.push_back(idx);
        used |= m;
      }
    }
    searcher.best = static_cast<int>(greedy.size());
    searcher.best_chosen = std::move(greedy);
  }

  if (searcher.target == 0 || searcher.best < searcher.target) {
    searcher.search(0, NodeMask{});
  }

  result.count += searcher.best;
  for (const int i : searcher.best_chosen) result.chosen.push_back(i);
  return result;
}

PackingResult max_disjoint_packing(std::span<const Interior> interiors,
                                   int target, std::int64_t node_budget) {
  PackingResult result;
  // Empty interiors conflict with nothing; take them all unconditionally.
  std::vector<int> order;
  for (std::size_t i = 0; i < interiors.size(); ++i) {
    if (interiors[i].empty()) {
      result.chosen.push_back(static_cast<int>(i));
    } else {
      order.push_back(static_cast<int>(i));
    }
  }
  result.count = static_cast<int>(result.chosen.size());
  if (target > 0 && result.count >= target) return result;

  // Heuristic order: fewer interior nodes first (more likely to pack).
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const auto ca = interiors[static_cast<std::size_t>(a)].size();
    const auto cb = interiors[static_cast<std::size_t>(b)].size();
    return ca != cb ? ca < cb : a < b;
  });

  InteriorSearcher searcher;
  searcher.items = interiors;
  searcher.order = &order;
  searcher.target = target > 0 ? target - result.count : 0;
  searcher.budget = node_budget;

  // Seed with the greedy packing along the heuristic order so that a
  // truncated search still returns a sensible answer.
  {
    std::vector<int> greedy;
    for (const int idx : order) {
      bool compat = true;
      for (const int g : greedy) {
        if (interiors[static_cast<std::size_t>(g)].intersects(
                interiors[static_cast<std::size_t>(idx)])) {
          compat = false;
          break;
        }
      }
      if (compat) greedy.push_back(idx);
    }
    searcher.best = static_cast<int>(greedy.size());
    searcher.best_chosen = std::move(greedy);
  }

  if (searcher.target == 0 || searcher.best < searcher.target) {
    searcher.search(0);
  }

  result.count += searcher.best;
  for (const int i : searcher.best_chosen) result.chosen.push_back(i);
  return result;
}

}  // namespace rbcast
