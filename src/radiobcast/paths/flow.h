#pragma once
// Dinic max-flow on small integer-capacity graphs.
//
// Used to (a) count node-disjoint paths between two grid nodes inside a
// single neighborhood (Menger's theorem via vertex splitting) and (b)
// evaluate the protocols' commit rules on evidence graphs. Graphs here have
// at most a few hundred vertices, so the implementation favors clarity; Dinic
// is nonetheless O(E sqrt(V)) on unit-capacity graphs, which is what we run.

#include <cstdint>
#include <vector>

namespace rbcast {

class MaxFlow {
 public:
  explicit MaxFlow(int vertex_count);

  int vertex_count() const { return static_cast<int>(adj_.size()); }

  /// Adds a directed edge u -> v with the given capacity. Returns an edge id
  /// usable with flow_on(). A reverse edge of capacity 0 is added internally.
  int add_edge(int u, int v, std::int64_t capacity);

  /// Computes the max flow from s to t. May be called once per instance.
  std::int64_t solve(int s, int t);

  /// Flow pushed across edge `edge_id` (as returned by add_edge); valid after
  /// solve().
  std::int64_t flow_on(int edge_id) const;

  /// For unit-capacity flows: decomposes the computed flow into s->t vertex
  /// sequences by walking saturated edges. Each edge is consumed at most
  /// once; the number of returned paths equals the flow value when all edge
  /// capacities are 1 on the paths' edges.
  std::vector<std::vector<int>> decompose_unit_paths(int s, int t) const;

 private:
  struct Edge {
    int to;
    std::int64_t cap;   // residual capacity
    std::int64_t orig;  // original capacity
  };

  bool bfs(int s, int t);
  std::int64_t dfs(int v, int t, std::int64_t pushed);

  std::vector<Edge> edges_;
  std::vector<std::vector<int>> adj_;  // vertex -> edge ids
  std::vector<int> level_;
  std::vector<std::size_t> iter_;
};

}  // namespace rbcast
