#include "radiobcast/paths/flow.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <stdexcept>

namespace rbcast {

MaxFlow::MaxFlow(int vertex_count) : adj_(static_cast<std::size_t>(vertex_count)) {
  if (vertex_count < 0) throw std::invalid_argument("negative vertex count");
}

int MaxFlow::add_edge(int u, int v, std::int64_t capacity) {
  const int id = static_cast<int>(edges_.size());
  edges_.push_back({v, capacity, capacity});
  edges_.push_back({u, 0, 0});
  adj_[static_cast<std::size_t>(u)].push_back(id);
  adj_[static_cast<std::size_t>(v)].push_back(id + 1);
  return id;
}

bool MaxFlow::bfs(int s, int t) {
  level_.assign(adj_.size(), -1);
  std::deque<int> queue{s};
  level_[static_cast<std::size_t>(s)] = 0;
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    for (const int id : adj_[static_cast<std::size_t>(v)]) {
      const Edge& e = edges_[static_cast<std::size_t>(id)];
      if (e.cap > 0 && level_[static_cast<std::size_t>(e.to)] < 0) {
        level_[static_cast<std::size_t>(e.to)] =
            level_[static_cast<std::size_t>(v)] + 1;
        queue.push_back(e.to);
      }
    }
  }
  return level_[static_cast<std::size_t>(t)] >= 0;
}

std::int64_t MaxFlow::dfs(int v, int t, std::int64_t pushed) {
  if (v == t) return pushed;
  auto& it = iter_[static_cast<std::size_t>(v)];
  for (; it < adj_[static_cast<std::size_t>(v)].size(); ++it) {
    const int id = adj_[static_cast<std::size_t>(v)][it];
    Edge& e = edges_[static_cast<std::size_t>(id)];
    if (e.cap <= 0 ||
        level_[static_cast<std::size_t>(e.to)] !=
            level_[static_cast<std::size_t>(v)] + 1) {
      continue;
    }
    const std::int64_t got = dfs(e.to, t, std::min(pushed, e.cap));
    if (got > 0) {
      e.cap -= got;
      edges_[static_cast<std::size_t>(id ^ 1)].cap += got;
      return got;
    }
  }
  return 0;
}

std::int64_t MaxFlow::solve(int s, int t) {
  if (s == t) return 0;
  std::int64_t total = 0;
  while (bfs(s, t)) {
    iter_.assign(adj_.size(), 0);
    while (true) {
      const std::int64_t got =
          dfs(s, t, std::numeric_limits<std::int64_t>::max());
      if (got == 0) break;
      total += got;
    }
  }
  return total;
}

std::int64_t MaxFlow::flow_on(int edge_id) const {
  const Edge& e = edges_[static_cast<std::size_t>(edge_id)];
  return e.orig - e.cap;
}

std::vector<std::vector<int>> MaxFlow::decompose_unit_paths(int s, int t) const {
  // Remaining unconsumed flow per forward edge.
  std::vector<std::int64_t> remaining(edges_.size() / 2);
  for (std::size_t i = 0; i < remaining.size(); ++i) {
    remaining[i] = flow_on(static_cast<int>(2 * i));
  }
  std::vector<std::vector<int>> paths;
  // Walks cannot exceed the number of forward edges; the cap guards against
  // pathological flow cycles (which Dinic does not produce, but cheap to be
  // safe).
  const std::size_t max_steps = remaining.size() + 2;
  while (true) {
    std::vector<int> path{s};
    int v = s;
    bool advanced = true;
    while (v != t && advanced && path.size() <= max_steps) {
      advanced = false;
      for (const int id : adj_[static_cast<std::size_t>(v)]) {
        if (id % 2 != 0) continue;  // reverse edge
        if (remaining[static_cast<std::size_t>(id / 2)] <= 0) continue;
        remaining[static_cast<std::size_t>(id / 2)] -= 1;
        v = edges_[static_cast<std::size_t>(id)].to;
        path.push_back(v);
        advanced = true;
        break;
      }
    }
    if (v != t) break;  // no more s->t flow to consume
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace rbcast
