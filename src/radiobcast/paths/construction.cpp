#include "radiobcast/paths/construction.h"

#include <array>
#include <stdexcept>
#include <string>
#include <unordered_set>

namespace rbcast {

namespace {

void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

/// One of the 8 grid symmetries (the dihedral group of the square), as an
/// orthogonal integer matrix [[a b],[c d]].
struct Sym {
  std::int32_t a, b, c, d;

  constexpr Offset apply(Offset o) const {
    return {a * o.dx + b * o.dy, c * o.dx + d * o.dy};
  }
  /// Inverse of an orthogonal matrix is its transpose.
  constexpr Sym inverse() const { return {a, c, b, d}; }
};

constexpr std::array<Sym, 8> kSymmetries = {{
    {1, 0, 0, 1},
    {-1, 0, 0, 1},
    {1, 0, 0, -1},
    {-1, 0, 0, -1},
    {0, 1, 1, 0},
    {0, -1, 1, 0},
    {0, 1, -1, 0},
    {0, -1, -1, 0},
}};

std::int32_t l1_norm(Offset o) {
  return (o.dx < 0 ? -o.dx : o.dx) + (o.dy < 0 ? -o.dy : o.dy);
}

/// Appends path {n, mid..., p} for every cell of `via` (single-intermediate
/// family N -> via -> P).
void add_one_hop_family(DisjointPathSet& out, const Rect& via) {
  for (const Coord m : via.cells()) {
    out.paths.push_back(GridPath{{out.origin, m, out.dest}});
  }
}

/// Two-intermediate family N -> r1 -> r1+shift -> P (the paper's translation
/// pairing between corresponding cells).
void add_two_hop_family(DisjointPathSet& out, const Rect& first,
                        Offset shift) {
  for (const Coord m : first.cells()) {
    out.paths.push_back(GridPath{{out.origin, m, m + shift, out.dest}});
  }
}

}  // namespace

const char* to_string(FamilyKind k) {
  switch (k) {
    case FamilyKind::kDirect: return "direct";
    case FamilyKind::kU: return "U";
    case FamilyKind::kS1: return "S1";
    case FamilyKind::kS2: return "S2";
  }
  return "?";
}

Table1Regions table1_regions(std::int32_t r, std::int32_t p, std::int32_t q) {
  require(r >= 1, "table1_regions: r >= 1");
  require(q > p && p >= 1 && q <= r, "table1_regions: need r >= q > p >= 1");
  Table1Regions t;
  t.A = {p - r, 0, 1, q + r};
  t.B1 = {1, p - 1, 1, q + r};
  t.B2 = t.B1.translate({-r, 0});
  t.C1 = {p + 1, r, q + 1, r + 1};
  t.C2 = t.C1.translate({-r, r});
  t.D1 = {p, p + r - q, r + q - p + 1, r + q};
  t.D2 = {1, p, 1 + r + q, 1 + 2 * r};
  t.D3 = t.D2.translate({-r, 0});
  return t;
}

std::vector<Coord> region_M(std::int32_t r) {
  std::vector<Coord> out;
  for (std::int32_t q = 1; q <= 2 * r; ++q) {
    for (std::int32_t p = 0; p < q; ++p) {
      out.push_back({-r + p, -r + q});
    }
  }
  return out;
}

S1Regions s1_regions(std::int32_t r, std::int32_t p) {
  require(r >= 1, "s1_regions: r >= 1");
  require(p >= 0 && p <= r - 1, "s1_regions: need 0 <= p <= r-1");
  S1Regions s;
  s.J = {-2 * r, 0, 1, r - p};
  s.K1 = {-2 * r, 0, -p + 1, 0};
  s.K2 = s.K1.translate({0, r});
  return s;
}

DisjointPathSet family_for_U(std::int32_t r, std::int32_t p, std::int32_t q) {
  const Table1Regions t = table1_regions(r, p, q);
  DisjointPathSet out{{p, q}, corner_P(r), center_for_U(r), {}};
  add_one_hop_family(out, t.A);
  add_two_hop_family(out, t.B1, {-r, 0});
  add_two_hop_family(out, t.C1, {-r, r});
  // D family: three intermediates. D1 and D2 are fully cross-adjacent (every
  // D2 node neighbors every D1 node), so the row-major pairing is valid;
  // D2 -> D3 is the translation by (-r, 0).
  const auto d1 = t.D1.cells();
  const auto d2 = t.D2.cells();
  require(d1.size() == d2.size(), "family_for_U: |D1| == |D2|");
  for (std::size_t i = 0; i < d1.size(); ++i) {
    out.paths.push_back(
        GridPath{{out.origin, d1[i], d2[i], d2[i] + Offset{-r, 0}, out.dest}});
  }
  return out;
}

DisjointPathSet family_for_S1(std::int32_t r, std::int32_t p) {
  const S1Regions s = s1_regions(r, p);
  DisjointPathSet out{{-r, -p}, corner_P(r), center_for_S1(r), {}};
  add_one_hop_family(out, s.J);
  add_two_hop_family(out, s.K1, {0, r});
  return out;
}

DisjointPathSet family_for_S2(std::int32_t r, std::int32_t q, std::int32_t p) {
  require(q > p && p >= 0 && q <= r - 1, "family_for_S2: need r-1 >= q > p >= 0");
  // σ(x,y) = (1-y, 1-x): the reflection about the axis OO' through P that
  // maps U onto S2 (and fixes P). Apply it to the U-family of (p+1, q+1).
  const DisjointPathSet u = family_for_U(r, p + 1, q + 1);
  auto sigma = [](Coord c) { return Coord{1 - c.y, 1 - c.x}; };
  DisjointPathSet out{sigma(u.origin), sigma(u.dest), sigma(u.center), {}};
  for (const GridPath& path : u.paths) {
    GridPath mapped;
    mapped.nodes.reserve(path.nodes.size());
    for (const Coord c : path.nodes) mapped.nodes.push_back(sigma(c));
    out.paths.push_back(std::move(mapped));
  }
  return out;
}

FamilyKind classify_canonical(std::int32_t r, Offset d) {
  require(d.dx <= 0 && d.dy >= 1, "classify_canonical: displacement not canonical");
  require(l1_norm(d) <= 2 * r, "classify_canonical: |d|_1 > 2r");
  if (d.dx >= -r && d.dy <= r) return FamilyKind::kDirect;
  if (d.dy >= r + 1) return d.dx == 0 ? FamilyKind::kS1 : FamilyKind::kS2;
  return FamilyKind::kU;
}

DisjointPathSet construction_paths(std::int32_t r, Coord origin, Coord dest) {
  const Offset d = dest - origin;
  const std::int32_t l1 = l1_norm(d);
  require(l1 >= 1 && l1 <= 2 * r,
          "construction_paths: need 1 <= |dest-origin|_1 <= 2r");

  // Map the displacement onto the canonical class (dx <= 0, dy >= 1).
  const Sym* sym = nullptr;
  Offset dc{};
  for (const Sym& s : kSymmetries) {
    const Offset cand = s.apply(d);
    if (cand.dx <= 0 && cand.dy >= 1) {
      sym = &s;
      dc = cand;
      break;
    }
  }
  require(sym != nullptr, "construction_paths: no canonicalizing symmetry");

  const FamilyKind kind = classify_canonical(r, dc);
  DisjointPathSet canonical;
  switch (kind) {
    case FamilyKind::kDirect: {
      const Coord n = corner_P(r) - dc;
      canonical = DisjointPathSet{n, corner_P(r), corner_P(r), {}};
      canonical.paths.push_back(GridPath{{n, corner_P(r)}});
      break;
    }
    case FamilyKind::kU:
      canonical = family_for_U(r, -r - dc.dx, r + 1 - dc.dy);
      break;
    case FamilyKind::kS1:
      canonical = family_for_S1(r, dc.dy - r - 1);
      break;
    case FamilyKind::kS2:
      canonical = family_for_S2(r, dc.dx + r, dc.dy - r - 1);
      break;
  }

  // Pull back: actual = origin + sym^{-1}(z - N_canonical).
  const Sym inv = sym->inverse();
  auto pull = [&](Coord z) {
    return origin + inv.apply(z - canonical.origin);
  };
  DisjointPathSet out{pull(canonical.origin), pull(canonical.dest),
                      pull(canonical.center), {}};
  for (const GridPath& path : canonical.paths) {
    GridPath mapped;
    mapped.nodes.reserve(path.nodes.size());
    for (const Coord c : path.nodes) mapped.nodes.push_back(pull(c));
    out.paths.push_back(std::move(mapped));
  }
  return out;
}

std::int64_t arbitrary_p_connected_count(std::int32_t r, std::int32_t l) {
  require(r >= 1 && l >= 0 && l <= r, "arbitrary_p_connected_count: 0 <= l <= r");
  // P = (-r+l, r+1). Collect, inside nbd(0,0) (the closed L∞ ball minus the
  // center), the direct region of P plus the translated U, S1, S2 regions.
  std::unordered_set<Coord> connected;
  const Coord p_node{-r + l, r + 1};
  const Rect nbd = linf_ball({0, 0}, r);
  auto add_if_in_nbd = [&](Coord c) {
    if (nbd.contains(c) && !(c == Coord{0, 0})) connected.insert(c);
  };
  // Direct region: nodes of nbd(0,0) within r of P.
  for (const Coord c : nbd.cells()) {
    if (linf_norm(c - p_node) <= r) add_if_in_nbd(c);
  }
  // Translated constructive regions.
  const Offset shift{l, 0};
  for (std::int32_t q = 1; q <= r; ++q) {
    for (std::int32_t p = 1; p < q; ++p) add_if_in_nbd(Coord{p, q} + shift);  // U
  }
  for (std::int32_t p = 0; p <= r - 1; ++p) add_if_in_nbd(Coord{-r, -p} + shift);  // S1
  for (std::int32_t q = 1; q <= r - 1; ++q) {
    for (std::int32_t p = 0; p < q; ++p) add_if_in_nbd(Coord{-q, -p} + shift);  // S2
  }
  return static_cast<std::int64_t>(connected.size());
}

}  // namespace rbcast
