#pragma once
// The paper's explicit node-disjoint path construction (Section VI, Theorem 3,
// Figs 1-7, Table I) for the L∞ metric.
//
// Canonical frame: the neighborhood under consideration is nbd(0,0) (the
// paper's nbd(a,b) with a=b=0) and the deciding node P sits at the worst-case
// pnbd corner (-r, r+1). The proof shows P can reliably determine the values
// committed by the r(2r+1) nodes of region
//
//   M = { (-r+p, -r+q) | 2r >= q > p >= 0 }          (Fig 1)
//
// by splitting M into:
//   R  = [-r,0] x [1,r]            — heard directly            (Fig 2)
//   U  = { (p,q) | r >= q > p >= 1 }                           (Fig 3)
//   S1 = { (-r,-p) | 0 <= p <= r-1 }
//   S2 = { (-q,-p) | r-1 >= q > p >= 0 }
//
// and exhibiting, for each N in U/S1/S2, exactly r(2r+1) node-disjoint radio
// paths N -> ... -> P with <= 3 intermediates, all lying inside one single
// neighborhood (center (0, r+1) for U, (-r, 1) for S1/S2). The intermediate
// regions are those of Table I; S2 is obtained from U by the reflection
// σ(x,y) = (1-y, 1-x) about the axis OO' through P (Section VI, Fig 7).
//
// Everything here is exact integer geometry; the test-suite and the
// bench_table1_regions harness verify all counts, disjointness, containment
// and adjacency claims computationally.

#include <cstdint>
#include <vector>

#include "radiobcast/grid/coord.h"
#include "radiobcast/grid/region.h"
#include "radiobcast/paths/disjoint.h"

namespace rbcast {

/// Decider position in the canonical frame.
constexpr Coord corner_P(std::int32_t r) { return {-r, r + 1}; }

/// Center of the single neighborhood containing the U-family paths.
constexpr Coord center_for_U(std::int32_t r) { return {0, r + 1}; }

/// Center of the single neighborhood containing the S1/S2-family paths.
constexpr Coord center_for_S1(std::int32_t r) { return {-r, 1}; }

/// The Table I intermediate regions for N = (p,q) in U (canonical frame,
/// a = b = 0). Paths: N->A->P, N->B1->B2->P, N->C1->C2->P, N->D1->D2->D3->P.
struct Table1Regions {
  Rect A;
  Rect B1, B2;
  Rect C1, C2;
  Rect D1, D2, D3;
};

/// Computes the Table I regions. Preconditions: r >= 1, r >= q > p >= 1.
Table1Regions table1_regions(std::int32_t r, std::int32_t p, std::int32_t q);

/// Region R of Fig 2 — the nodes P hears directly.
constexpr Rect region_R(std::int32_t r) { return {-r, 0, 1, r}; }

/// Region M of Fig 1 — the r(2r+1) nodes of nbd(0,0) whose committed values
/// P can reliably determine (the half-square strictly above the diagonal).
std::vector<Coord> region_M(std::int32_t r);

/// Regions J/K1/K2 of Fig 6 for N = (-r, -p) in S1. Paths: N->J->P and
/// N->K1->K2->P, all within nbd(center_for_S1(r)).
struct S1Regions {
  Rect J;
  Rect K1, K2;
};
S1Regions s1_regions(std::int32_t r, std::int32_t p);

/// The full path family for N = (p,q) in U. Exactly r(2r+1) node-disjoint
/// paths with <= 3 intermediates inside nbd(center_for_U(r)).
DisjointPathSet family_for_U(std::int32_t r, std::int32_t p, std::int32_t q);

/// The full path family for N = (-r, -p) in S1 (0 <= p <= r-1).
DisjointPathSet family_for_S1(std::int32_t r, std::int32_t p);

/// The full path family for N = (-q, -p) in S2 (r-1 >= q > p >= 0); obtained
/// from family_for_U(r, p+1, q+1) by the reflection σ(x,y) = (1-y, 1-x).
DisjointPathSet family_for_S2(std::int32_t r, std::int32_t q, std::int32_t p);

/// Which of the four cases of the construction a canonical displacement
/// d = P - N falls into.
enum class FamilyKind : std::uint8_t { kDirect, kU, kS1, kS2 };

const char* to_string(FamilyKind k);

/// Classifies a canonical displacement (dx <= 0, dy >= 1, 1 <= |d|_1 <= 2r).
FamilyKind classify_canonical(std::int32_t r, Offset d);

/// General entry point: the construction's path family from `origin` (the
/// committed node N) to `dest` (the decider P) for arbitrary positions with
/// 1 <= |dest-origin|_1 <= 2r, obtained by mapping the displacement onto the
/// canonical frame with one of the 8 grid symmetries. For kDirect
/// displacements the family is the single trivial path {origin, dest}.
/// Throws std::invalid_argument outside the covered displacement class.
DisjointPathSet construction_paths(std::int32_t r, Coord origin, Coord dest);

/// Section VI-A ("Arbitrary position of P"): number of nodes of nbd(0,0) to
/// which P = (-r+l, r+1) is connected directly or via the (translated)
/// construction, i.e. |R_l| + |nbd ∩ (U+l)| + |nbd ∩ (S1+l)| + |nbd ∩ (S2+l)|.
/// The paper claims this is >= r(2r+1) for 0 <= l <= r.
std::int64_t arbitrary_p_connected_count(std::int32_t r, std::int32_t l);

}  // namespace rbcast
