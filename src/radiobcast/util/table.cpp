#include "radiobcast/util/table.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

namespace rbcast {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i == s.size()) return false;
  bool digit_seen = false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '%' && c != 'e' && c != '-' && c != '+') {
      return false;
    }
  }
  return digit_seen;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << value;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::cell(std::string value) {
  if (rows_.empty()) rows_.emplace_back();
  rows_.back().push_back(std::move(value));
  return *this;
}

Table& Table::cell(const char* value) { return cell(std::string(value)); }
Table& Table::cell(std::int64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(std::uint64_t value) { return cell(std::to_string(value)); }
Table& Table::cell(int value) { return cell(std::to_string(value)); }
Table& Table::cell(double value, int precision) {
  return cell(format_double(value, precision));
}
Table& Table::cell(bool value) { return cell(std::string(value ? "yes" : "no")); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], r[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& r, bool align) {
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < r.size() ? r[c] : std::string();
      const std::size_t pad = widths[c] - s.size();
      const bool right = align && looks_numeric(s);
      os << ' ';
      if (right) os << std::string(pad, ' ') << s;
      else os << s << std::string(pad, ' ');
      os << " |";
    }
    os << '\n';
  };
  print_row(header_, false);
  os << "|";
  for (const std::size_t w : widths) os << std::string(w + 2, '-') << "|";
  os << '\n';
  for (const auto& r : rows_) print_row(r, true);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(r[c]);
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& r : rows_) print_row(r);
}

}  // namespace rbcast
