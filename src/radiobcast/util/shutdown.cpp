#include "radiobcast/util/shutdown.h"

#include <atomic>
#include <stdexcept>

namespace rbcast {

namespace {

// Handler state must be process-global and async-signal-safe: plain
// volatile sig_atomic_t for the flag read in handlers, and an atomic guard
// count so double construction fails loudly instead of silently clobbering
// handler state.
volatile std::sig_atomic_t g_signal = 0;
std::atomic<int> g_guards{0};
struct sigaction g_prev_int;
struct sigaction g_prev_term;

void handle(int signo) { g_signal = signo; }

}  // namespace

ShutdownGuard::ShutdownGuard() {
  if (g_guards.fetch_add(1) != 0) {
    g_guards.fetch_sub(1);
    throw std::logic_error("only one ShutdownGuard may be live at a time");
  }
  g_signal = 0;
  struct sigaction action {};
  action.sa_handler = handle;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt blocking syscalls too
  sigaction(SIGINT, &action, &g_prev_int);
  sigaction(SIGTERM, &action, &g_prev_term);
}

ShutdownGuard::~ShutdownGuard() {
  sigaction(SIGINT, &g_prev_int, nullptr);
  sigaction(SIGTERM, &g_prev_term, nullptr);
  g_guards.fetch_sub(1);
}

bool ShutdownGuard::requested() const { return g_signal != 0; }

int ShutdownGuard::signal_number() const { return static_cast<int>(g_signal); }

}  // namespace rbcast
