#pragma once
// Deterministic pseudo-random number generation for reproducible simulations.
//
// All experiments in this library are seeded; given the same seed the entire
// simulation (fault placement, adversary choices, tie-breaking) is bit-for-bit
// reproducible. We use xoshiro256** (Blackman & Vigna), which is fast, has a
// 256-bit state, and passes BigCrush.

#include <array>
#include <cstdint>
#include <limits>

namespace rbcast {

/// xoshiro256** generator. Satisfies std::uniform_random_bit_generator so it
/// can be plugged into <random> distributions, though the member helpers below
/// are preferred (they are deterministic across standard-library versions).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the state from a single 64-bit seed via splitmix64 so that
  /// low-entropy seeds (0, 1, 2, ...) still yield well-mixed states.
  explicit Rng(std::uint64_t seed = 0xB7E151628AED2A6BULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double unit();

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool chance(double p);

  /// Deterministic Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    for (std::size_t i = c.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

  /// Derives an independent child generator (for per-node adversary state)
  /// without correlating with this generator's future outputs.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> state_;
};

/// splitmix64 step; exposed because it is handy for hashing seeds together.
std::uint64_t splitmix64(std::uint64_t& x);

/// Combines two seeds into one (order-sensitive), for deriving per-run seeds
/// from (experiment seed, parameter index) pairs.
std::uint64_t hash_seeds(std::uint64_t a, std::uint64_t b);

/// Three-way combination hash_seeds(hash_seeds(a, b), c), for deriving
/// per-attempt seeds from (cell seed, rep index, retry attempt) triples. The
/// campaign engine's retry schedule is built on this, so a retried trial's
/// randomness is a pure function of the spec, never of scheduling.
std::uint64_t hash_seeds(std::uint64_t a, std::uint64_t b, std::uint64_t c);

}  // namespace rbcast
