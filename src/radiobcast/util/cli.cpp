#include "radiobcast/util/cli.h"

#include <algorithm>
#include <cstdlib>

namespace rbcast {

CliArgs::CliArgs(int argc, const char* const* argv,
                 const std::vector<std::string>& known_flags) {
  auto known = [&](const std::string& name) {
    return std::find(known_flags.begin(), known_flags.end(), name) !=
           known_flags.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else {
      value = "true";
    }
    if (!known(name)) {
      error_ = "unknown flag: --" + name;
      return;
    }
    values_[name] = std::move(value);
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string CliArgs::get(const std::string& name,
                         const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace rbcast
