#pragma once
// A tiny command-line flag parser for the example programs and benchmark
// harnesses. Flags look like --name=value or --name value; bare --name sets a
// boolean. Unknown flags are reported as errors so typos do not silently run
// a default experiment.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rbcast {

class CliArgs {
 public:
  /// Parses argv. On error (unknown flag, missing value) records a message
  /// retrievable via error().
  CliArgs(int argc, const char* const* argv,
          const std::vector<std::string>& known_flags);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  bool has(const std::string& name) const;
  std::string get(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace rbcast
