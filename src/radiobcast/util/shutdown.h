#pragma once
// Graceful SIGINT/SIGTERM handling for long-running binaries.
//
// ShutdownGuard installs async-signal-safe handlers that only set a flag;
// the binary's main loop polls requested() at safe points, flushes whatever
// it owns (journals, trace sinks, verdict files), and exits with the
// conventional 128+signal code (130 for SIGINT, 143 for SIGTERM) so callers
// can tell an interrupted run from a failed one.
//
// Process-global by necessity (signal disposition is process state); only
// one guard may be live at a time, and the constructor enforces that.

#include <csignal>

namespace rbcast {

class ShutdownGuard {
 public:
  /// Installs handlers for SIGINT and SIGTERM. Throws std::logic_error if
  /// another guard is alive.
  ShutdownGuard();
  /// Restores the previous handlers.
  ~ShutdownGuard();

  ShutdownGuard(const ShutdownGuard&) = delete;
  ShutdownGuard& operator=(const ShutdownGuard&) = delete;

  /// True once either signal arrived.
  bool requested() const;

  /// The signal number that arrived (0 if none yet; if both arrived, the
  /// most recent one).
  int signal_number() const;

  /// Conventional exit code for the received signal: 128 + signo
  /// (130 = SIGINT, 143 = SIGTERM). Unspecified if requested() is false.
  int exit_code() const { return 128 + signal_number(); }
};

}  // namespace rbcast
