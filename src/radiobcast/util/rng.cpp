#include "radiobcast/util/rng.h"

namespace rbcast {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t hash_seeds(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a ^ (0x9E3779B97F4A7C15ULL + (b << 6) + (b >> 2));
  std::uint64_t h = splitmix64(x);
  x ^= b;
  return h ^ splitmix64(x);
}

std::uint64_t hash_seeds(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  return hash_seeds(hash_seeds(a, b), c);
}

Rng::Rng(std::uint64_t seed) {
  for (auto& word : state_) word = splitmix64(seed);
  // A zero state would be a fixed point; splitmix64 cannot produce four zero
  // outputs in a row, so no extra check is needed, but be defensive anyway.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's method: multiply-shift with rejection of the biased low zone.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::unit() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return unit() < p;
}

Rng Rng::fork() {
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(hash_seeds(a, b));
}

}  // namespace rbcast
