#pragma once
// Minimal console table rendering used by the benchmark harnesses to print
// paper-style result tables ("paper claims X, we measured Y").

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace rbcast {

/// A simple left/right-aligned text table. Cells are strings; numeric
/// convenience overloads format with a fixed precision.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row. Subsequent cell() calls append to it.
  Table& row();

  Table& cell(std::string value);
  Table& cell(const char* value);
  Table& cell(std::int64_t value);
  Table& cell(std::uint64_t value);
  Table& cell(int value);
  Table& cell(double value, int precision = 3);
  Table& cell(bool value);  // renders "yes"/"no"

  /// Number of data rows added so far.
  std::size_t rows() const { return rows_.size(); }

  /// Renders with column widths fitted to content. Numeric-looking cells are
  /// right-aligned, text cells left-aligned.
  void print(std::ostream& os) const;

  /// Renders as CSV (no alignment, comma-separated, minimal quoting).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given precision, trimming trailing zeros.
std::string format_double(double value, int precision = 3);

}  // namespace rbcast
