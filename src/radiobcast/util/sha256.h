#pragma once
// Minimal SHA-256 (FIPS 180-4), dependency-free. Used by the golden
// determinism tests to pin campaign JSON/CSV/trace bytes: a 64-hex-digit
// digest embeds compactly in a test file where the multi-kilobyte payloads
// themselves would not.
//
// This is not a security boundary — it fingerprints test vectors — but the
// implementation is the standard one and matches `sha256sum` output, so
// recorded goldens can be re-derived from the command line.

#include <cstdint>
#include <string>
#include <string_view>

namespace rbcast {

/// Hex-encoded (lowercase) SHA-256 digest of `data`.
std::string sha256_hex(std::string_view data);

/// Incremental variant for hashing multiple buffers without concatenating.
class Sha256 {
 public:
  Sha256();

  void update(std::string_view data);

  /// Finalizes and returns the lowercase hex digest. The object must not be
  /// updated afterwards.
  std::string hex_digest();

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t state_[8];
  std::uint8_t buffer_[64];
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace rbcast
