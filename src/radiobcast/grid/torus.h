#pragma once
// Finite toroidal grid (Section II: "The results also hold for a finite
// toroidal network, as boundary anomalies are eliminated").
//
// The torus canonicalizes coordinates into [0,width) x [0,height) and defines
// the displacement between two nodes as the *minimal* wrap-around
// displacement. For that displacement to be unique for every pair of nodes
// that a protocol ever compares (distances up to a few multiples of r), the
// simulation layer enforces width,height >= 8r+4; the Torus itself only
// requires positive dimensions.

#include <cstdint>
#include <vector>

#include "radiobcast/grid/coord.h"
#include "radiobcast/grid/metric.h"

namespace rbcast {

class Torus {
 public:
  Torus(std::int32_t width, std::int32_t height);

  std::int32_t width() const { return width_; }
  std::int32_t height() const { return height_; }
  std::int64_t node_count() const {
    return static_cast<std::int64_t>(width_) * height_;
  }

  /// Canonical representative of a (possibly negative / out-of-range) coord.
  Coord wrap(Coord c) const;

  /// Dense index of a canonical coordinate, in [0, node_count()).
  std::int32_t index(Coord c) const;

  /// Inverse of index().
  Coord coord(std::int32_t idx) const;

  /// Minimal wrap-around displacement taking `from` to `to`; each component
  /// is in (-dim/2, dim/2].
  Offset delta(Coord from, Coord to) const;

  /// Distance-r containment test under the torus metric.
  bool within(Coord a, Coord b, std::int32_t r, Metric m) const {
    return within_radius(delta(a, b), r, m);
  }

  /// All canonical coordinates, row-major (y outer, x inner), matching
  /// index() order.
  std::vector<Coord> all_coords() const;

 private:
  std::int32_t width_;
  std::int32_t height_;
};

}  // namespace rbcast
