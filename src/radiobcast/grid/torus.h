#pragma once
// Finite toroidal grid (Section II: "The results also hold for a finite
// toroidal network, as boundary anomalies are eliminated").
//
// The torus canonicalizes coordinates into [0,width) x [0,height) and defines
// the displacement between two nodes as the *minimal* wrap-around
// displacement. For that displacement to be unique for every pair of nodes
// that a protocol ever compares (distances up to a few multiples of r), the
// simulation layer enforces width,height >= 8r+4; the Torus itself only
// requires positive dimensions.

#include <cstdint>
#include <vector>

#include "radiobcast/grid/coord.h"
#include "radiobcast/grid/metric.h"

namespace rbcast {

class Torus {
 public:
  Torus(std::int32_t width, std::int32_t height);

  std::int32_t width() const { return width_; }
  std::int32_t height() const { return height_; }
  std::int64_t node_count() const {
    return static_cast<std::int64_t>(width_) * height_;
  }

  /// Canonical representative of a (possibly negative / out-of-range) coord.
  /// Inline: this and delta() sit on the per-delivery hot path (hundreds of
  /// millions of calls per flood trial — see docs/PERF.md).
  Coord wrap(Coord c) const {
    return {mod_floor(c.x, width_), mod_floor(c.y, height_)};
  }

  /// Dense index of a canonical coordinate, in [0, node_count()).
  std::int32_t index(Coord c) const {
    const Coord w = wrap(c);
    return w.y * width_ + w.x;
  }

  /// Inverse of index().
  Coord coord(std::int32_t idx) const {
    return {idx % width_, idx / width_};
  }

  /// Minimal wrap-around displacement taking `from` to `to`; each component
  /// is in (-dim/2, dim/2].
  Offset delta(Coord from, Coord to) const {
    const Coord a = wrap(from);
    const Coord b = wrap(to);
    std::int32_t dx = b.x - a.x;
    std::int32_t dy = b.y - a.y;
    // Fold into (-dim/2, dim/2].
    if (2 * dx > width_) dx -= width_;
    if (2 * dx <= -width_) dx += width_;
    if (2 * dy > height_) dy -= height_;
    if (2 * dy <= -height_) dy += height_;
    return {dx, dy};
  }

  /// Distance-r containment test under the torus metric.
  bool within(Coord a, Coord b, std::int32_t r, Metric m) const {
    return within_radius(delta(a, b), r, m);
  }

  /// All canonical coordinates, row-major (y outer, x inner), matching
  /// index() order.
  std::vector<Coord> all_coords() const;

 private:
  // Mathematical modulus (result in [0, m)).
  static std::int32_t mod_floor(std::int32_t v, std::int32_t m) {
    const std::int32_t r = v % m;
    return r < 0 ? r + m : r;
  }

  std::int32_t width_;
  std::int32_t height_;
};

}  // namespace rbcast
