#include "radiobcast/grid/torus.h"

#include <stdexcept>
#include <string>

namespace rbcast {

namespace {

// Mathematical modulus (result in [0, m)).
std::int32_t mod_floor(std::int32_t v, std::int32_t m) {
  const std::int32_t r = v % m;
  return r < 0 ? r + m : r;
}

}  // namespace

Torus::Torus(std::int32_t width, std::int32_t height)
    : width_(width), height_(height) {
  if (width < 1 || height < 1) {
    throw std::invalid_argument("Torus dimensions must be positive, got " +
                                std::to_string(width) + "x" +
                                std::to_string(height));
  }
}

Coord Torus::wrap(Coord c) const {
  return {mod_floor(c.x, width_), mod_floor(c.y, height_)};
}

std::int32_t Torus::index(Coord c) const {
  const Coord w = wrap(c);
  return w.y * width_ + w.x;
}

Coord Torus::coord(std::int32_t idx) const {
  return {idx % width_, idx / width_};
}

Offset Torus::delta(Coord from, Coord to) const {
  const Coord a = wrap(from);
  const Coord b = wrap(to);
  std::int32_t dx = b.x - a.x;
  std::int32_t dy = b.y - a.y;
  // Fold into (-dim/2, dim/2].
  if (2 * dx > width_) dx -= width_;
  if (2 * dx <= -width_) dx += width_;
  if (2 * dy > height_) dy -= height_;
  if (2 * dy <= -height_) dy += height_;
  return {dx, dy};
}

std::vector<Coord> Torus::all_coords() const {
  std::vector<Coord> out;
  out.reserve(static_cast<std::size_t>(node_count()));
  for (std::int32_t y = 0; y < height_; ++y) {
    for (std::int32_t x = 0; x < width_; ++x) out.push_back({x, y});
  }
  return out;
}

}  // namespace rbcast
