#include "radiobcast/grid/torus.h"

#include <stdexcept>
#include <string>

namespace rbcast {

Torus::Torus(std::int32_t width, std::int32_t height)
    : width_(width), height_(height) {
  if (width < 1 || height < 1) {
    throw std::invalid_argument("Torus dimensions must be positive, got " +
                                std::to_string(width) + "x" +
                                std::to_string(height));
  }
}

std::vector<Coord> Torus::all_coords() const {
  std::vector<Coord> out;
  out.reserve(static_cast<std::size_t>(node_count()));
  for (std::int32_t y = 0; y < height_; ++y) {
    for (std::int32_t x = 0; x < width_; ++x) out.push_back({x, y});
  }
  return out;
}

}  // namespace rbcast
