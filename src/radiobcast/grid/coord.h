#pragma once
// Grid coordinates and displacement vectors.
//
// The paper places nodes on the integer grid and identifies a node by its
// location (x, y). We keep that identification: a Coord *is* a node identity.
// On the torus (see torus.h) coordinates are canonicalized to
// [0, width) x [0, height); Offset is a displacement between two coordinates
// and is what all distance computations operate on.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace rbcast {

struct Offset {
  std::int32_t dx = 0;
  std::int32_t dy = 0;

  friend constexpr bool operator==(Offset, Offset) = default;
  constexpr Offset operator-() const { return {-dx, -dy}; }
  constexpr Offset operator+(Offset o) const { return {dx + o.dx, dy + o.dy}; }
  constexpr Offset operator-(Offset o) const { return {dx - o.dx, dy - o.dy}; }
};

struct Coord {
  std::int32_t x = 0;
  std::int32_t y = 0;

  friend constexpr bool operator==(Coord, Coord) = default;
  friend constexpr auto operator<=>(Coord, Coord) = default;

  constexpr Coord operator+(Offset o) const { return {x + o.dx, y + o.dy}; }
  constexpr Coord operator-(Offset o) const { return {x - o.dx, y - o.dy}; }
  /// Plain (non-torus) displacement from other to *this.
  constexpr Offset operator-(Coord o) const { return {x - o.x, y - o.y}; }
};

std::string to_string(Coord c);
std::string to_string(Offset o);
std::ostream& operator<<(std::ostream& os, Coord c);
std::ostream& operator<<(std::ostream& os, Offset o);

}  // namespace rbcast

template <>
struct std::hash<rbcast::Coord> {
  std::size_t operator()(rbcast::Coord c) const noexcept {
    // Coordinates are small; pack and mix.
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.x)) << 32) |
        static_cast<std::uint32_t>(c.y);
    std::uint64_t z = packed + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
