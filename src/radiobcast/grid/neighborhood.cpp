#include "radiobcast/grid/neighborhood.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace rbcast {

NeighborhoodTable::NeighborhoodTable(std::int32_t r, Metric m) : r_(r), m_(m) {
  for (std::int32_t dy = -r; dy <= r; ++dy) {
    for (std::int32_t dx = -r; dx <= r; ++dx) {
      const Offset o{dx, dy};
      if (o == Offset{0, 0}) continue;
      if (within_radius(o, r, m)) offsets_.push_back(o);
    }
  }
}

const NeighborhoodTable& NeighborhoodTable::get(std::int32_t r, Metric m) {
  // Keyed cache; entries are immutable once constructed. unique_ptr keeps
  // addresses stable across map growth. The mutex covers the lookup/insert:
  // campaign worker threads hit this cache concurrently.
  static std::mutex mutex;
  static std::map<std::pair<std::int32_t, int>,
                  std::unique_ptr<NeighborhoodTable>>
      cache;
  const std::lock_guard<std::mutex> lock(mutex);
  const auto key = std::make_pair(r, static_cast<int>(m));
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::unique_ptr<NeighborhoodTable>(
                                new NeighborhoodTable(r, m)))
             .first;
  }
  return *it->second;
}

std::vector<Coord> NeighborhoodTable::neighbors(const Torus& torus,
                                                Coord center) const {
  std::vector<Coord> out;
  out.reserve(offsets_.size());
  for (const Offset o : offsets_) out.push_back(torus.wrap(center + o));
  return out;
}

std::vector<Coord> NeighborhoodTable::closed_neighbors(const Torus& torus,
                                                       Coord center) const {
  std::vector<Coord> out = neighbors(torus, center);
  out.push_back(torus.wrap(center));
  return out;
}

namespace {

/// Cached, deduplicated offset union of the four shifted neighborhoods —
/// center-independent, so one sorted offset list per (r, m) replaces the
/// four materialize-and-merge passes per call.
const std::vector<Offset>& perturbed_offsets(std::int32_t r, Metric m) {
  static std::mutex mutex;
  static std::map<std::pair<std::int32_t, int>,
                  std::unique_ptr<std::vector<Offset>>>
      cache;
  const std::lock_guard<std::mutex> lock(mutex);
  const auto key = std::make_pair(r, static_cast<int>(m));
  auto it = cache.find(key);
  if (it == cache.end()) {
    auto united = std::make_unique<std::vector<Offset>>();
    const auto& table = NeighborhoodTable::get(r, m);
    const Offset shifts[4] = {{-1, 0}, {1, 0}, {0, -1}, {0, 1}};
    for (const Offset s : shifts) {
      for (const Offset o : table.offsets()) united->push_back(s + o);
    }
    const auto less = [](Offset a, Offset b) {
      return a.dy != b.dy ? a.dy < b.dy : a.dx < b.dx;
    };
    std::sort(united->begin(), united->end(), less);
    united->erase(std::unique(united->begin(), united->end()), united->end());
    it = cache.emplace(key, std::move(united)).first;
  }
  return *it->second;
}

}  // namespace

std::vector<Coord> perturbed_neighborhood(const Torus& torus, Coord center,
                                          std::int32_t r, Metric m) {
  const std::vector<Offset>& offsets = perturbed_offsets(r, m);
  std::vector<Coord> out;
  out.reserve(offsets.size());
  for (const Offset o : offsets) out.push_back(torus.wrap(center + o));
  // Wrapping can re-merge distinct offsets on small tori, and canonical
  // coordinate order differs from offset order — the sort stays, but over
  // one deduplicated list instead of four overlapping neighborhoods.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace rbcast
