#pragma once
// Neighborhood offset tables.
//
// nbd(c) is the set of nodes within distance r of c (Section II). Protocols
// consult neighborhoods constantly, so we precompute, per (metric, r), the
// sorted list of offsets with 0 < |o| <= r. Tables are cached process-wide.

#include <cstdint>
#include <span>
#include <vector>

#include "radiobcast/grid/coord.h"
#include "radiobcast/grid/metric.h"
#include "radiobcast/grid/torus.h"

namespace rbcast {

class NeighborhoodTable {
 public:
  /// Returns the cached table for (r, m). Thread-compatible (construct-once,
  /// read-many); the cache itself is populated lazily and is not synchronized,
  /// matching the single-threaded simulator.
  static const NeighborhoodTable& get(std::int32_t r, Metric m);

  std::int32_t radius() const { return r_; }
  Metric metric() const { return m_; }

  /// Offsets o with 0 < dist(o) <= r, in deterministic (row-major) order.
  std::span<const Offset> offsets() const { return offsets_; }

  /// |nbd| — number of neighbors of any node.
  std::int64_t size() const { return static_cast<std::int64_t>(offsets_.size()); }

  /// Materializes nbd(center) on a torus (canonical coords).
  std::vector<Coord> neighbors(const Torus& torus, Coord center) const;

  /// Materializes nbd(center) ∪ {center} on a torus.
  std::vector<Coord> closed_neighbors(const Torus& torus, Coord center) const;

 private:
  NeighborhoodTable(std::int32_t r, Metric m);

  std::int32_t r_;
  Metric m_;
  std::vector<Offset> offsets_;
};

/// pnbd(c) = nbd(c-1,·) ∪ nbd(c+1,·) ∪ nbd(·,c-1) ∪ nbd(·,c+1) (Section IV):
/// the union of the four neighborhoods whose centers are grid-adjacent to c.
/// Returned as canonical torus coordinates, deduplicated, sorted.
std::vector<Coord> perturbed_neighborhood(const Torus& torus, Coord center,
                                          std::int32_t r, Metric m);

}  // namespace rbcast
