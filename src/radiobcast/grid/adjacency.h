#pragma once
// Precomputed CSR delivery fan-out.
//
// On a torus every node has the same neighborhood shape, so the adjacency of
// the radio graph is a dense |V| x |nbd| table: row i lists the node indices
// within distance r of node i, in the NeighborhoodTable's row-major offset
// order. RadioNetwork precomputes this once at construction and run_round
// then delivers by dense index — no per-delivery wrap(), index(), or
// neighborhood-cache lookups, and receivers stream through one flat
// std::int32_t array in exactly the order the per-offset loop used to visit
// them (the bit-identical determinism contract, docs/PERF.md).
//
// The uniform degree makes the "row offsets" of a general CSR implicit:
// row i starts at i * degree().

#include <cstdint>
#include <span>
#include <vector>

#include "radiobcast/grid/neighborhood.h"
#include "radiobcast/grid/torus.h"

namespace rbcast {

class Adjacency {
 public:
  Adjacency(const Torus& torus, const NeighborhoodTable& table);

  /// Process-wide cached table for (torus dims, table radius, table metric).
  /// The CSR depends only on geometry, so every same-shaped RadioNetwork in a
  /// campaign shares one build — per-trial setup cost drops to a map lookup.
  static const Adjacency& get(const Torus& torus,
                              const NeighborhoodTable& table);

  /// |nbd| — receivers per transmission.
  std::int32_t degree() const { return degree_; }

  /// Node indices hearing a transmission by `sender` (a dense node index),
  /// in the neighborhood table's offset order.
  std::span<const std::int32_t> receivers(std::int32_t sender) const {
    return {receiver_index_.data() +
                static_cast<std::size_t>(sender) * static_cast<std::size_t>(degree_),
            static_cast<std::size_t>(degree_)};
  }

 private:
  std::int32_t degree_;
  std::vector<std::int32_t> receiver_index_;  // node_count * degree entries
};

}  // namespace rbcast
