#include "radiobcast/grid/region.h"

namespace rbcast {

std::vector<Coord> Rect::cells() const {
  std::vector<Coord> out;
  if (empty()) return out;
  out.reserve(static_cast<std::size_t>(count()));
  for (std::int32_t y = y_lo; y <= y_hi; ++y) {
    for (std::int32_t x = x_lo; x <= x_hi; ++x) out.push_back({x, y});
  }
  return out;
}

bool contained_in(const Rect& a, const Rect& b) {
  if (a.empty()) return true;
  return a.x_lo >= b.x_lo && a.x_hi <= b.x_hi && a.y_lo >= b.y_lo &&
         a.y_hi <= b.y_hi;
}

}  // namespace rbcast
