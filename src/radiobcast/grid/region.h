#pragma once
// Axis-aligned inclusive rectangles on the (unwrapped) integer grid.
//
// The proofs of Theorems 3, 5 and 6 reason about rectangular regions of grid
// nodes (Table I, regions A, B1, B2, ..., K2, strips, half-squares). Rect is
// the exact-arithmetic counterpart used by paths/construction.h and by fault
// placement. Rectangles live in infinite-grid coordinates; callers wrap onto
// a torus at the boundary of the geometry layer.

#include <cstdint>
#include <vector>

#include "radiobcast/grid/coord.h"

namespace rbcast {

/// Inclusive rectangle [x_lo, x_hi] x [y_lo, y_hi]. An empty rectangle has
/// x_lo > x_hi or y_lo > y_hi.
struct Rect {
  std::int32_t x_lo = 0;
  std::int32_t x_hi = -1;
  std::int32_t y_lo = 0;
  std::int32_t y_hi = -1;

  friend constexpr bool operator==(const Rect&, const Rect&) = default;

  constexpr bool empty() const { return x_lo > x_hi || y_lo > y_hi; }

  /// Number of lattice points contained (0 if empty).
  constexpr std::int64_t count() const {
    if (empty()) return 0;
    return static_cast<std::int64_t>(x_hi - x_lo + 1) *
           static_cast<std::int64_t>(y_hi - y_lo + 1);
  }

  constexpr bool contains(Coord c) const {
    return !empty() && c.x >= x_lo && c.x <= x_hi && c.y >= y_lo && c.y <= y_hi;
  }

  /// Intersection (possibly empty).
  constexpr Rect intersect(const Rect& o) const {
    return {x_lo > o.x_lo ? x_lo : o.x_lo, x_hi < o.x_hi ? x_hi : o.x_hi,
            y_lo > o.y_lo ? y_lo : o.y_lo, y_hi < o.y_hi ? y_hi : o.y_hi};
  }

  /// Translation by an offset.
  constexpr Rect translate(Offset o) const {
    if (empty()) return *this;
    return {x_lo + o.dx, x_hi + o.dx, y_lo + o.dy, y_hi + o.dy};
  }

  /// All contained lattice points, row-major.
  std::vector<Coord> cells() const;
};

/// Closed L∞ ball of radius r around c as a Rect (nbd(c) ∪ {c} in the L∞
/// metric).
constexpr Rect linf_ball(Coord c, std::int32_t r) {
  return {c.x - r, c.x + r, c.y - r, c.y + r};
}

/// True iff rectangles a and b are disjoint.
constexpr bool disjoint(const Rect& a, const Rect& b) {
  return a.intersect(b).empty();
}

/// True iff every point of a lies in b.
bool contained_in(const Rect& a, const Rect& b);

}  // namespace rbcast
