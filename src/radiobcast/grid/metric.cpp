#include "radiobcast/grid/metric.h"

#include <ostream>
#include <sstream>

namespace rbcast {

const char* to_string(Metric m) {
  return m == Metric::kLInf ? "Linf" : "L2";
}

std::optional<Metric> metric_from_string(std::string_view name) {
  if (name == "Linf" || name == "linf") return Metric::kLInf;
  if (name == "L2" || name == "l2") return Metric::kL2;
  return std::nullopt;
}

std::int64_t neighborhood_size(std::int32_t r, Metric m) {
  if (r < 0) return 0;
  if (m == Metric::kLInf) {
    const std::int64_t side = 2 * static_cast<std::int64_t>(r) + 1;
    return side * side - 1;
  }
  // Gauss circle: count lattice points with dx^2 + dy^2 <= r^2, minus center.
  const std::int64_t r2 = static_cast<std::int64_t>(r) * r;
  std::int64_t count = 0;
  for (std::int32_t dx = -r; dx <= r; ++dx) {
    for (std::int32_t dy = -r; dy <= r; ++dy) {
      if (static_cast<std::int64_t>(dx) * dx +
              static_cast<std::int64_t>(dy) * dy <=
          r2) {
        ++count;
      }
    }
  }
  return count - 1;
}

std::string to_string(Coord c) {
  std::ostringstream os;
  os << '(' << c.x << ',' << c.y << ')';
  return os.str();
}

std::string to_string(Offset o) {
  std::ostringstream os;
  os << '<' << o.dx << ',' << o.dy << '>';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, Coord c) {
  return os << to_string(c);
}

std::ostream& operator<<(std::ostream& os, Offset o) {
  return os << to_string(o);
}

}  // namespace rbcast
