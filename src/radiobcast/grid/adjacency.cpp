#include "radiobcast/grid/adjacency.h"

#include <map>
#include <memory>
#include <mutex>
#include <tuple>

namespace rbcast {

Adjacency::Adjacency(const Torus& torus, const NeighborhoodTable& table)
    : degree_(static_cast<std::int32_t>(table.size())) {
  const std::int64_t n = torus.node_count();
  receiver_index_.reserve(static_cast<std::size_t>(n) *
                          static_cast<std::size_t>(degree_));
  for (std::int64_t i = 0; i < n; ++i) {
    const Coord c = torus.coord(static_cast<std::int32_t>(i));
    for (const Offset o : table.offsets()) {
      receiver_index_.push_back(torus.index(c + o));
    }
  }
}

const Adjacency& Adjacency::get(const Torus& torus,
                                const NeighborhoodTable& table) {
  // Keyed cache with a per-key once_flag: the global mutex covers only the
  // map lookup/insert (std::map nodes are address-stable), and the CSR table
  // is built inside call_once OUTSIDE that lock — so campaign workers
  // hitting different keys construct concurrently instead of queueing behind
  // one potentially-100MB build, while racers on the same key still get
  // exactly one construction. tests/test_cache_concurrency.cpp hammers this
  // under TSan (scripts/check_tsan.sh).
  struct Slot {
    std::once_flag once;
    std::unique_ptr<Adjacency> value;
  };
  static std::mutex mutex;
  static std::map<std::tuple<std::int32_t, std::int32_t, std::int32_t, int>,
                  Slot>
      cache;
  const auto key = std::make_tuple(torus.width(), torus.height(),
                                   table.radius(),
                                   static_cast<int>(table.metric()));
  Slot* slot;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    slot = &cache[key];
  }
  std::call_once(slot->once, [&] {
    slot->value.reset(new Adjacency(torus, table));
  });
  return *slot->value;
}

}  // namespace rbcast
