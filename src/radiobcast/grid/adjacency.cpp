#include "radiobcast/grid/adjacency.h"

#include <map>
#include <memory>
#include <mutex>
#include <tuple>

namespace rbcast {

Adjacency::Adjacency(const Torus& torus, const NeighborhoodTable& table)
    : degree_(static_cast<std::int32_t>(table.size())) {
  const std::int64_t n = torus.node_count();
  receiver_index_.reserve(static_cast<std::size_t>(n) *
                          static_cast<std::size_t>(degree_));
  for (std::int64_t i = 0; i < n; ++i) {
    const Coord c = torus.coord(static_cast<std::int32_t>(i));
    for (const Offset o : table.offsets()) {
      receiver_index_.push_back(torus.index(c + o));
    }
  }
}

const Adjacency& Adjacency::get(const Torus& torus,
                                const NeighborhoodTable& table) {
  // Same shape as NeighborhoodTable::get: mutex-guarded keyed cache with
  // unique_ptr for address stability. Campaign workers construct networks
  // concurrently, so the lock covers lookup and insert.
  static std::mutex mutex;
  static std::map<std::tuple<std::int32_t, std::int32_t, std::int32_t, int>,
                  std::unique_ptr<Adjacency>>
      cache;
  const std::lock_guard<std::mutex> lock(mutex);
  const auto key = std::make_tuple(torus.width(), torus.height(),
                                   table.radius(),
                                   static_cast<int>(table.metric()));
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key,
                      std::unique_ptr<Adjacency>(new Adjacency(torus, table)))
             .first;
  }
  return *it->second;
}

}  // namespace rbcast
