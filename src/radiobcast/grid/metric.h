#pragma once
// The two distance metrics of the paper (Section II).
//
//   L∞ : dist((x1,y1),(x2,y2)) = max(|x1-x2|, |y1-y2|); nbd is a (2r+1)^2
//        square minus the center, i.e. (2r+1)^2 - 1 = 4r^2 + 4r nodes.
//   L2 : Euclidean distance; nbd is the set of lattice points inside (or on)
//        the circle of radius r, minus the center (Gauss circle count - 1).
//
// All comparisons against the radius use exact integer arithmetic: for L2 we
// compare squared distances, so no floating point enters any reachability or
// containment decision.

#include <cstdint>
#include <optional>
#include <string_view>

#include "radiobcast/grid/coord.h"

namespace rbcast {

enum class Metric : std::uint8_t { kLInf, kL2 };

const char* to_string(Metric m);

/// Inverse of to_string(Metric), case-insensitive on the common spellings
/// ("Linf"/"linf", "L2"/"l2"). Returns nullopt for unknown names.
std::optional<Metric> metric_from_string(std::string_view name);

/// Chebyshev length of a displacement (the L∞ norm).
constexpr std::int32_t linf_norm(Offset o) {
  const std::int32_t ax = o.dx < 0 ? -o.dx : o.dx;
  const std::int32_t ay = o.dy < 0 ? -o.dy : o.dy;
  return ax > ay ? ax : ay;
}

/// Squared Euclidean length of a displacement.
constexpr std::int64_t l2_norm_sq(Offset o) {
  return static_cast<std::int64_t>(o.dx) * o.dx +
         static_cast<std::int64_t>(o.dy) * o.dy;
}

/// True iff a displacement of this size is within transmission radius r
/// under the given metric. Distance exactly r counts as within (the paper's
/// "within distance r").
constexpr bool within_radius(Offset o, std::int32_t r, Metric m) {
  if (m == Metric::kLInf) return linf_norm(o) <= r;
  return l2_norm_sq(o) <= static_cast<std::int64_t>(r) * r;
}

/// Number of nodes in a neighborhood (excluding the center) under metric m.
/// For L∞ this is (2r+1)^2 - 1 in closed form; for L2 it is the Gauss circle
/// lattice count minus one, computed exactly.
std::int64_t neighborhood_size(std::int32_t r, Metric m);

}  // namespace rbcast
