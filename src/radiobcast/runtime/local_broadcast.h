#pragma once
// Local broadcast over perfect links.
//
// The paper's primitive is a radio broadcast heard by every node within
// distance r. The runtime realizes it as a unicast fan-out: one PerfectLink
// send per neighbor, with the neighbor set taken from the same process-wide
// cached CSR Adjacency the simulator delivers from — so both backends agree
// exactly on who hears whom.

#include <cstdint>

#include "radiobcast/grid/adjacency.h"
#include "radiobcast/runtime/perfect_link.h"

namespace rbcast {

class LocalBroadcast {
 public:
  /// `link` and `adjacency` are borrowed and must outlive this object.
  /// `self_index` is this node's dense torus index.
  LocalBroadcast(PerfectLink& link, const Adjacency& adjacency,
                 std::int32_t self_index)
      : link_(&link), adjacency_(&adjacency), self_index_(self_index) {}

  /// Queues `msg` to every neighbor of this node (not to itself — offsets
  /// exclude distance 0, matching the simulator's delivery rule).
  void broadcast(const WireMessage& msg) {
    for (const std::int32_t receiver : adjacency_->receivers(self_index_)) {
      link_->send(static_cast<std::uint32_t>(receiver), msg);
    }
  }

  /// Sends `msg` to a single neighbor (used for barrier markers, which must
  /// reach every neighbor too — provided for symmetry and tests).
  void send_to(std::uint32_t receiver, const WireMessage& msg) {
    link_->send(receiver, msg);
  }

  std::int32_t degree() const { return adjacency_->degree(); }

 private:
  PerfectLink* link_;
  const Adjacency* adjacency_;
  std::int32_t self_index_;
};

}  // namespace rbcast
