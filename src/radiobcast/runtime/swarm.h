#pragma once
// Shared-socket multiplexed transport for in-process swarms.
//
// A 256-node in-process deployment with per-node UDP sockets needs 256 fds
// and funnels every datagram through kernel receive buffers sized for a
// handful of flows — at swarm burst rates the buffers overflow and the link
// layer spends its time retransmitting. SwarmHub collapses the swarm onto
// one socket: traffic between members is routed in memory through per-node
// mailboxes (mutex + condvar, so the epoll backend's wait() becomes a
// condvar wait), and only traffic to nodes *outside* the hub touches the
// shared socket, prefixed with an 8-byte (from, to) mux header.
//
// Identity: in-memory delivery stamps the sender index directly (same
// address space — the no-spoofing assumption is trivially preserved).
// Datagrams arriving on the shared socket are validated against the peer
// table: the mux header's `from` must resolve to the datagram's source port,
// which is the same source-address authority UdpTransport enforces, at hub
// granularity.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "radiobcast/runtime/transport.h"

namespace rbcast {

class SwarmHub {
 public:
  /// Binds the swarm's one shared socket on 127.0.0.1:`port` (0 =
  /// ephemeral). `node_count` is the deployment size; every node whose peer
  /// port equals this hub's port is a member (all of them, until set_peers
  /// says otherwise). Throws std::system_error on socket failures.
  explicit SwarmHub(std::uint32_t node_count, std::uint16_t port = 0);
  ~SwarmHub();

  SwarmHub(const SwarmHub&) = delete;
  SwarmHub& operator=(const SwarmHub&) = delete;

  std::uint16_t local_port() const { return local_port_; }
  std::uint32_t node_count() const {
    return static_cast<std::uint32_t>(mail_.size());
  }

  /// Installs the deployment-wide peer table: ports[i] is node i's port.
  /// Indices whose port equals local_port() are members of this hub (their
  /// traffic never leaves the process); the rest are reached through the
  /// shared socket. Not calling this at all means a fully local swarm.
  void set_peers(std::vector<std::uint16_t> ports);

  /// A Transport view for member `index`. Each node thread owns its view;
  /// views are safe to use concurrently with each other.
  std::unique_ptr<Transport> transport(std::uint32_t index);

 private:
  friend class SwarmTransport;

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Datagram> queue;
  };

  void send_from(std::uint32_t from, std::uint32_t to,
                 std::vector<std::uint8_t> bytes);
  bool try_receive_for(std::uint32_t index, Datagram& out);
  void wait_for(std::uint32_t index,
                std::chrono::steady_clock::time_point deadline);
  void deliver_local(std::uint32_t from, std::uint32_t to,
                     std::vector<std::uint8_t> bytes);
  /// Drains the shared socket, routing validated datagrams to member
  /// mailboxes. Serialized on socket_mutex_; any member may pump.
  void pump_socket();
  bool is_member(std::uint32_t index) const {
    return peer_ports_.empty() || peer_ports_[index] == local_port_;
  }

  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::vector<std::uint16_t> peer_ports_;
  bool any_remote_ = false;
  std::vector<std::unique_ptr<Mailbox>> mail_;
  std::mutex socket_mutex_;
};

/// One member's Transport view of its hub. send() routes through the hub
/// (in-memory to members, shared socket outward); try_receive() pops this
/// member's mailbox; wait() blocks on the mailbox condvar, so a swarm node
/// sleeps with zero fds of its own.
class SwarmTransport final : public Transport {
 public:
  SwarmTransport(SwarmHub& hub, std::uint32_t index)
      : hub_(&hub), index_(index) {}

  void send(std::uint32_t to, const std::vector<std::uint8_t>& bytes) override {
    hub_->send_from(index_, to, bytes);
  }
  void send(std::uint32_t to, std::vector<std::uint8_t>&& bytes) override {
    hub_->send_from(index_, to, std::move(bytes));
  }
  bool try_receive(Datagram& out) override {
    return hub_->try_receive_for(index_, out);
  }
  void wait(std::chrono::steady_clock::time_point deadline) override {
    hub_->wait_for(index_, deadline);
  }

 private:
  SwarmHub* hub_;
  std::uint32_t index_;
};

}  // namespace rbcast
