#pragma once
// Crash/restart state snapshots for runtime nodes.
//
// A restarted radiobcast-node must rejoin the ROUND_DONE barrier without
// violating the PerfectLink invariants: reusing an outgoing sequence number
// would get its fresh traffic dedup-dropped by peers, and rewinding an
// inbound sequence number would re-deliver consumed messages (a no-dup
// violation upstream). The snapshot is therefore exactly the link's
// sequence-number state plus the protocol-visible facts (committed value,
// last finished round, per-pair loss-stream positions), written with the
// fsync + rename discipline of the campaign journal: a crash mid-write
// leaves the previous snapshot intact, never a torn file.
//
// The snapshot is deliberately tiny (per-peer integers, not message
// payloads). Traffic a crashed node had received but not yet consumed is
// lost by design; recovery relies on peers' stubborn retransmissions of
// everything unacked, and anything acked-then-lost surfaces as a degraded
// (timeout-opened) round, never as a wrong verdict.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "radiobcast/runtime/perfect_link.h"

namespace rbcast {

struct NodeSnapshot {
  /// Last round this node fully finished (outbox + marker flushed).
  std::int64_t round = -1;
  std::optional<std::uint8_t> committed;
  std::int64_t commit_round = -1;
  /// Crash/restart cycles completed before this snapshot was taken.
  std::uint64_t restarts = 0;
  /// PerfectLink sequence-number state (see LinkState).
  LinkState link;
  /// (receiver, Bernoulli draws consumed) per pairwise loss stream, so a
  /// restarted node resumes the deterministic loss schedule at the right
  /// offset instead of replaying it from zero. Sorted by receiver.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> loss_draws;

  friend bool operator==(const NodeSnapshot&, const NodeSnapshot&) = default;
};

/// Atomically replaces `path` with the serialized snapshot: write to
/// `path.tmp`, fsync, rename over `path`. Throws std::runtime_error on I/O
/// failure.
void write_snapshot(const std::string& path, const NodeSnapshot& snapshot);

/// Loads a snapshot; nullopt when `path` does not exist (fresh start).
/// Throws std::invalid_argument on a malformed file (never silently ignores
/// corruption — the rename discipline means a readable file is complete).
std::optional<NodeSnapshot> load_snapshot(const std::string& path);

}  // namespace rbcast
