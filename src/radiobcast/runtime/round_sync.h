#pragma once
// Round synchronizer: maps TDMA rounds onto real time.
//
// The simulator advances rounds by fiat; the runtime has no global clock, so
// each node ends its round k by broadcasting a ROUND_DONE(k, n) marker to its
// neighbors, where n is the number of protocol messages it transmitted in
// round k. Perfect links deliver per-sender FIFO, so when a neighbor's
// marker arrives, all n of its round-k messages have arrived too. A node's
// barrier for round k opens when every expected neighbor's marker is in — or
// when the optional timeout expires, which lets correct nodes outrun a dead
// or wedged process (counted in `timeouts`).
//
// take() releases the round's messages sorted by sender index ascending with
// per-sender arrival (FIFO) order preserved — exactly the TDMA slot order the
// simulator delivers in, which is the ordering half of the sim/runtime
// verdict-equivalence argument (docs/RUNTIME.md).

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "radiobcast/runtime/wire.h"

namespace rbcast {

/// A round-k protocol message attributed to its authenticated transmitter.
struct RoundMessage {
  std::uint32_t sender = 0;
  Message msg;
};

class RoundSynchronizer {
 public:
  struct Options {
    /// Max wait for one round's barrier; zero means wait forever.
    std::chrono::milliseconds timeout{0};
    /// Graceful degradation: after this many *consecutive* timed-out rounds
    /// missing the same peer, that peer is suspected and no longer gates the
    /// barrier (0 = never suspect). A marker from a suspected peer clears the
    /// suspicion immediately — the mechanism that lets a restarted process
    /// rejoin the round structure it fell out of.
    int suspect_after = 0;
    /// Adaptive backoff: every timed-out barrier doubles the effective
    /// timeout (transient congestion should not cascade into a spurious
    /// suspicion storm), every fully complete barrier resets it. The
    /// multiplier is capped at this value.
    int max_backoff = 8;
  };

  /// `expected` lists the node indices whose ROUND_DONE markers gate every
  /// round (this node's neighbors).
  RoundSynchronizer(std::vector<std::uint32_t> expected, Options opts);

  /// Starts the barrier clock for round k.
  void begin_round(std::int64_t round,
                   std::chrono::steady_clock::time_point now);

  /// Feeds one in-order message from the link (protocol or ROUND_DONE).
  void on_message(std::uint32_t from, const WireMessage& msg);

  /// True when every expected neighbor's round-k marker (and therefore, by
  /// FIFO, all its round-k messages) has arrived.
  bool complete(std::int64_t round) const;

  /// True when the barrier should open despite missing markers. Never true
  /// with a zero timeout.
  bool timed_out(std::int64_t round,
                 std::chrono::steady_clock::time_point now) const;

  /// The instant timed_out(round) will flip true, or nullopt when the round's
  /// clock is not running or the timeout is zero — the synchronizer's
  /// contribution to the epoll backend's wait bound.
  std::optional<std::chrono::steady_clock::time_point> deadline(
      std::int64_t round) const;

  /// Releases round k's messages in TDMA order (sender index ascending,
  /// per-sender FIFO) and drops the round's bookkeeping. Call once per round,
  /// after complete() or timed_out().
  std::vector<RoundMessage> take(std::int64_t round);

  /// Barriers opened by timeout rather than completion.
  std::uint64_t timeouts() const { return timeouts_; }

  /// Peers currently on the suspect list (not gating barriers).
  std::size_t suspected_count() const { return suspected_.size(); }
  bool is_suspected(std::uint32_t peer) const {
    return suspected_.count(peer) > 0;
  }

  /// Total suspicion *transitions* (a peer suspected, cleared, and suspected
  /// again counts twice) — feeds the peers_suspected obs counter.
  std::uint64_t suspect_transitions() const { return suspect_transitions_; }

  /// Rounds released with at least one expected peer's traffic missing
  /// (opened by timeout, or complete only because suspects were skipped).
  std::uint64_t degraded_rounds() const { return degraded_rounds_; }

  /// Current adaptive timeout multiplier (1 = no backoff), for tests.
  int backoff() const { return backoff_; }

 private:
  struct PeerRound {
    std::vector<Message> msgs;  // arrival order == per-sender FIFO order
    std::optional<std::uint32_t> done_count;
  };
  struct RoundState {
    /// Keyed by sender index; std::map so take() walks senders ascending.
    std::map<std::uint32_t, PeerRound> peers;
    std::chrono::steady_clock::time_point started{};
    bool clock_running = false;
  };

  std::vector<std::uint32_t> expected_;
  Options opts_;
  std::unordered_map<std::int64_t, RoundState> rounds_;
  std::uint64_t timeouts_ = 0;
  /// Consecutive timed-out rounds each peer's marker was missing from.
  std::unordered_map<std::uint32_t, int> miss_streak_;
  std::unordered_set<std::uint32_t> suspected_;
  std::uint64_t suspect_transitions_ = 0;
  std::uint64_t degraded_rounds_ = 0;
  int backoff_ = 1;
};

}  // namespace rbcast
