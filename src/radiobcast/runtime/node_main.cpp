// radiobcast-node: one node of a networked deployment.
//
// Reads the shared scenario file, binds loopback port base_port + index,
// runs its RuntimeNode event loop, and reports its verdict — to stdout and,
// with --out, to <out>/verdict-<index>.txt for the orchestrator to collect.
//
// Chaos and recovery: when the scenario has a chaos section, the UDP socket
// is wrapped in a seeded ChaosTransport (datagram drop/dup/delay/partition).
// --crash-at-round k makes the node exit right after finishing round k with
// exit code 9 and a crashed verdict; --restart-after-ms m instead restarts
// it in-process from its fsync'd snapshot after m milliseconds (the socket
// is closed and rebound across the gap, so in-flight datagrams die with the
// old incarnation). --resume starts directly from the snapshot — the flag
// the orchestrator's --respawn passes to a relaunched process.
//
// Exit codes: 0 success, 9 crash injection (stayed dead), 130/143 on
// SIGINT/SIGTERM (after flushing the verdict and trace), 2 on bad usage,
// 1 on runtime errors.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "radiobcast/runtime/harness.h"
#include "radiobcast/runtime/node.h"
#include "radiobcast/runtime/scenario.h"
#include "radiobcast/runtime/transport.h"
#include "radiobcast/util/cli.h"
#include "radiobcast/util/shutdown.h"

namespace {

int run(int argc, char** argv) {
  using namespace rbcast;
  const CliArgs args(argc, argv,
                     {"scenario", "index", "out", "trace", "quiet", "help",
                      "state-dir", "crash-at-round", "restart-after-ms",
                      "resume", "backend"});
  if (!args.ok()) {
    std::cerr << "radiobcast-node: " << args.error() << "\n";
    return 2;
  }
  if (args.get_bool("help", false)) {
    std::cout
        << "usage: radiobcast-node --scenario <file> --index <i> "
           "[--out <dir>] [--trace <file.jsonl>] [--quiet]\n"
           "       [--state-dir <dir>] [--crash-at-round <k>] "
           "[--restart-after-ms <m>] [--resume]\n"
           "       [--backend poll|epoll]\n"
           "Runs node <i> of the scenario over UDP loopback (port "
           "base_port+i)\nand prints its verdict.\n";
    return 0;
  }
  const std::string scenario_path = args.get("scenario", "");
  const std::int64_t index = args.get_int("index", -1);
  if (scenario_path.empty() || index < 0) {
    std::cerr << "radiobcast-node: --scenario and --index are required "
                 "(--help for usage)\n";
    return 2;
  }

  const Scenario scenario = load_scenario(scenario_path);
  const Torus torus(scenario.sim.width, scenario.sim.height);
  if (index >= torus.node_count()) {
    std::cerr << "radiobcast-node: index " << index << " out of range for a "
              << scenario.sim.width << "x" << scenario.sim.height
              << " torus\n";
    return 2;
  }

  ShutdownGuard shutdown;
  RoundTrace trace;
  const std::string trace_path = args.get("trace", "");
  const std::string out_dir = args.get("out", "");

  RuntimeNode::Options opts =
      node_options(scenario, static_cast<std::int32_t>(index));
  opts.stop_requested = [&shutdown] { return shutdown.requested(); };
  if (!trace_path.empty()) {
    trace.set_enabled(true);
    opts.trace = &trace;
  }
  // Snapshot location: --state-dir beats the scenario's state_dir beats the
  // verdict directory (so process-mode crash tests work with just --out).
  std::string state_dir = args.get("state-dir", scenario.state_dir);
  if (state_dir.empty()) state_dir = out_dir;
  if (!state_dir.empty()) {
    std::filesystem::create_directories(state_dir);
    opts.snapshot_path =
        state_dir + "/state-" + std::to_string(index) + ".txt";
  }
  const std::int64_t crash_at = args.get_int("crash-at-round", -1);
  if (crash_at >= 0) opts.crash_at_round = crash_at;
  // --backend beats the scenario's backend key (deploy-time override).
  if (args.has("backend")) {
    const std::string name = args.get("backend", "");
    const auto b = backend_from_string(name);
    if (!b) {
      std::cerr << "radiobcast-node: unknown backend '" << name << "'\n";
      return 2;
    }
    opts.backend = *b;
  }
  const std::int64_t restart_after_ms =
      args.get_int("restart-after-ms", scenario.restart_after_ms);
  opts.resume = args.get_bool("resume", false);

  const auto port = static_cast<std::uint16_t>(scenario.base_port + index);
  std::vector<std::uint16_t> peers;
  peers.reserve(static_cast<std::size_t>(torus.node_count()));
  for (std::int64_t i = 0; i < torus.node_count(); ++i) {
    peers.push_back(static_cast<std::uint16_t>(scenario.base_port + i));
  }

  RuntimeVerdict verdict;
  for (;;) {
    {
      UdpTransport udp(port);
      udp.set_peers(peers);
      std::unique_ptr<ChaosTransport> chaos;
      Transport* transport = &udp;
      if (scenario.chaos.enabled()) {
        chaos = std::make_unique<ChaosTransport>(
            static_cast<std::uint32_t>(index), udp,
            make_chaos_options(scenario, static_cast<std::int32_t>(index)));
        transport = chaos.get();
      }
      RuntimeNode node(opts, *transport);
      verdict = node.run();
      if (chaos) {
        const ChaosStats& st = chaos->stats();
        verdict.counters.chaos_drops = st.drops;
        verdict.counters.chaos_duplicates = st.duplicates;
        verdict.counters.chaos_delays = st.delays;
        verdict.counters.chaos_partition_drops = st.partition_drops;
      }
    }  // socket closed here — a dead incarnation loses its in-flight traffic
    if (!verdict.crashed || restart_after_ms < 0 || shutdown.requested()) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(restart_after_ms));
    opts.resume = true;
    opts.crash_at_round = -1;
  }

  // Flush everything before deciding the exit code: an interrupted or
  // crashed node still reports what it saw.
  if (!out_dir.empty()) {
    std::filesystem::create_directories(out_dir);
    const std::string path =
        out_dir + "/verdict-" + std::to_string(index) + ".txt";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "radiobcast-node: cannot write " << path << "\n";
      return 1;
    }
    write_verdict(out, verdict);
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (out) trace.write_jsonl(out);
  }
  if (!args.get_bool("quiet", false)) {
    write_verdict(std::cout, verdict);
  }
  if (verdict.interrupted) return shutdown.exit_code();
  if (verdict.crashed) return 9;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "radiobcast-node: " << e.what() << "\n";
    return 1;
  }
}
