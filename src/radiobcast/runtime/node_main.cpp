// radiobcast-node: one node of a networked deployment.
//
// Reads the shared scenario file, binds loopback port base_port + index,
// runs its RuntimeNode event loop, and reports its verdict — to stdout and,
// with --out, to <out>/verdict-<index>.txt for the orchestrator to collect.
//
// Exit codes: 0 success, 130/143 on SIGINT/SIGTERM (after flushing the
// verdict and trace), 2 on bad usage, 1 on runtime errors.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

#include "radiobcast/runtime/harness.h"
#include "radiobcast/runtime/node.h"
#include "radiobcast/runtime/scenario.h"
#include "radiobcast/runtime/transport.h"
#include "radiobcast/util/cli.h"
#include "radiobcast/util/shutdown.h"

namespace {

int run(int argc, char** argv) {
  using namespace rbcast;
  const CliArgs args(argc, argv,
                     {"scenario", "index", "out", "trace", "quiet", "help"});
  if (!args.ok()) {
    std::cerr << "radiobcast-node: " << args.error() << "\n";
    return 2;
  }
  if (args.get_bool("help", false)) {
    std::cout
        << "usage: radiobcast-node --scenario <file> --index <i> "
           "[--out <dir>] [--trace <file.jsonl>] [--quiet]\n"
           "Runs node <i> of the scenario over UDP loopback (port "
           "base_port+i)\nand prints its verdict.\n";
    return 0;
  }
  const std::string scenario_path = args.get("scenario", "");
  const std::int64_t index = args.get_int("index", -1);
  if (scenario_path.empty() || index < 0) {
    std::cerr << "radiobcast-node: --scenario and --index are required "
                 "(--help for usage)\n";
    return 2;
  }

  const Scenario scenario = load_scenario(scenario_path);
  const Torus torus(scenario.sim.width, scenario.sim.height);
  if (index >= torus.node_count()) {
    std::cerr << "radiobcast-node: index " << index << " out of range for a "
              << scenario.sim.width << "x" << scenario.sim.height
              << " torus\n";
    return 2;
  }

  ShutdownGuard shutdown;
  RoundTrace trace;
  const std::string trace_path = args.get("trace", "");

  UdpTransport transport(
      static_cast<std::uint16_t>(scenario.base_port + index));
  std::vector<std::uint16_t> peers;
  peers.reserve(static_cast<std::size_t>(torus.node_count()));
  for (std::int64_t i = 0; i < torus.node_count(); ++i) {
    peers.push_back(static_cast<std::uint16_t>(scenario.base_port + i));
  }
  transport.set_peers(std::move(peers));

  RuntimeNode::Options opts =
      node_options(scenario, static_cast<std::int32_t>(index));
  opts.stop_requested = [&shutdown] { return shutdown.requested(); };
  if (!trace_path.empty()) {
    trace.set_enabled(true);
    opts.trace = &trace;
  }

  RuntimeNode node(std::move(opts), transport);
  const RuntimeVerdict verdict = node.run();

  // Flush everything before deciding the exit code: an interrupted node
  // still reports what it saw.
  const std::string out_dir = args.get("out", "");
  if (!out_dir.empty()) {
    std::filesystem::create_directories(out_dir);
    const std::string path =
        out_dir + "/verdict-" + std::to_string(index) + ".txt";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "radiobcast-node: cannot write " << path << "\n";
      return 1;
    }
    write_verdict(out, verdict);
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (out) trace.write_jsonl(out);
  }
  if (!args.get_bool("quiet", false)) {
    write_verdict(std::cout, verdict);
  }
  if (verdict.interrupted) return shutdown.exit_code();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "radiobcast-node: " << e.what() << "\n";
    return 1;
  }
}
