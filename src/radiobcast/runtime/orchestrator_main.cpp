// radiobcast-runtime: orchestrates a full networked deployment on loopback.
//
// Launches one radiobcast-node process per torus node from a shared scenario
// file (or runs them as in-process threads with --in-process), supervises
// the children (per-node exit ledger, optional --respawn of crashed or
// killed nodes from their snapshots), collects every per-node verdict —
// synthesizing a crashed placeholder from the node's snapshot when a process
// died before writing one — scores the outcome like run_simulation would,
// and prints a summary plus <out>/deployment.txt.
//
// Exit codes: 0 success, 3 when --expect-all-commit or
// --expect-degraded-correct fails, 130/143 on SIGINT/SIGTERM (children are
// forwarded SIGTERM and reaped first), 2 on bad usage, 1 on runtime errors
// (including a node binary that failed to exec).

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "radiobcast/obs/memory.h"
#include "radiobcast/runtime/harness.h"
#include "radiobcast/runtime/scenario.h"
#include "radiobcast/runtime/snapshot.h"
#include "radiobcast/util/cli.h"
#include "radiobcast/util/shutdown.h"

namespace {

using namespace rbcast;

std::string sibling_binary(const char* argv0, const std::string& name) {
  std::string path(argv0);
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return name;  // rely on PATH
  return path.substr(0, slash + 1) + name;
}

/// Per-child supervision record — the deployment's fault ledger.
struct ChildState {
  pid_t pid = -1;
  bool running = false;
  int restarts = 0;
  int exit_code = -1;  // last exit status when the child exited
  int signal = 0;      // termination signal when it was killed
};

pid_t spawn_node(const std::string& node_bin, const std::string& scenario_path,
                 const std::string& out_dir, std::int64_t index, bool resume,
                 const std::string& backend) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  const std::string idx = std::to_string(index);
  std::vector<std::string> argv_s = {node_bin,  "--scenario", scenario_path,
                                     "--index", idx,          "--out",
                                     out_dir,   "--quiet"};
  if (resume) argv_s.push_back("--resume");
  if (!backend.empty()) {
    argv_s.push_back("--backend");
    argv_s.push_back(backend);
  }
  std::vector<char*> argv_c;
  argv_c.reserve(argv_s.size() + 1);
  for (std::string& a : argv_s) argv_c.push_back(a.data());
  argv_c.push_back(nullptr);
  ::execv(node_bin.c_str(), argv_c.data());
  // Only reached when exec fails.
  std::cerr << "radiobcast-runtime: exec " << node_bin << ": "
            << std::strerror(errno) << "\n";
  ::_exit(127);
}

void print_ledger(std::ostream& os, const std::vector<ChildState>& ledger) {
  for (std::size_t i = 0; i < ledger.size(); ++i) {
    const ChildState& c = ledger[i];
    const bool noteworthy = c.signal != 0 || c.restarts > 0 ||
                            (c.exit_code != 0 && c.exit_code != -1);
    if (!noteworthy) continue;
    os << "node " << i << ": ";
    if (c.signal != 0) {
      os << "killed by signal " << c.signal;
    } else {
      os << "exit " << c.exit_code;
      if (c.exit_code == 9) os << " (crash injection)";
    }
    if (c.restarts > 0) os << ", respawned x" << c.restarts;
    os << "\n";
  }
}

void print_summary(std::ostream& os, const Scenario& scenario,
                   const RuntimeResult& result) {
  os << "runtime: " << scenario.sim.width << "x" << scenario.sim.height
     << " torus, protocol " << to_string(scenario.sim.protocol)
     << ", adversary " << to_string(scenario.sim.adversary) << ", "
     << scenario.faults.size() << " faults\n"
     << "rounds " << result.rounds << ", honest " << result.honest_nodes
     << ", correct " << result.correct_commits << ", wrong "
     << result.wrong_commits << ", undecided " << result.undecided << "\n"
     << "packets sent " << result.counters.packets_sent << " (retransmitted "
     << result.counters.packets_retransmitted << "), acked "
     << result.counters.packets_acked << ", duplicates dropped "
     << result.counters.duplicates_dropped << ", barrier timeouts "
     << result.counters.barrier_timeouts << "\n";
  if (result.round_latency.count() > 0) {
    os << "round latency us: p50 " << result.round_latency.quantile_us(0.50)
       << ", p95 " << result.round_latency.quantile_us(0.95) << ", p99 "
       << result.round_latency.quantile_us(0.99) << ", max "
       << result.round_latency.max_us() << "\n";
  }
  if (result.commit_latency.count() > 0) {
    os << "commit latency us: p50 " << result.commit_latency.quantile_us(0.50)
       << ", p95 " << result.commit_latency.quantile_us(0.95) << ", p99 "
       << result.commit_latency.quantile_us(0.99) << ", max "
       << result.commit_latency.max_us() << "\n";
  }
  if (scenario.chaos.enabled()) {
    os << "chaos: drops " << result.counters.chaos_drops << ", duplicates "
       << result.counters.chaos_duplicates << ", delays "
       << result.counters.chaos_delays << ", partition drops "
       << result.counters.chaos_partition_drops << "\n";
  }
  if (result.degraded()) {
    os << "degraded: crashed " << result.crashed_nodes << ", restarts "
       << result.counters.node_restarts << ", peers suspected "
       << result.counters.peers_suspected << ", degraded rounds "
       << result.counters.degraded_rounds << "\n";
  }
  // Process-wide peak RSS (kernel-reported, nondeterministic — summary
  // only, same contract as the campaign summary's memory line).
  if (const std::uint64_t rss = peak_rss_bytes(); rss > 0) {
    os << "memory: orchestrator peak RSS "
       << rss / (1024 * 1024) << " MiB\n";
  }
  if (result.success()) {
    os << "RELIABLE BROADCAST ACHIEVED\n";
  } else if (result.degraded() && result.degraded_correct()) {
    os << "DEGRADED BUT CORRECT\n";
  } else {
    os << "reliable broadcast NOT achieved\n";
  }
}

int run_processes(const Scenario& scenario, const std::string& scenario_path,
                  const std::string& node_bin, const std::string& out_dir,
                  bool respawn, const std::string& backend,
                  ShutdownGuard& shutdown, RuntimeResult& result,
                  std::vector<ChildState>& ledger) {
  const Torus torus(scenario.sim.width, scenario.sim.height);
  const std::int64_t n = torus.node_count();
  ledger.assign(static_cast<std::size_t>(n), ChildState{});
  for (std::int64_t i = 0; i < n; ++i) {
    const pid_t pid =
        spawn_node(node_bin, scenario_path, out_dir, i, false, backend);
    if (pid < 0) {
      std::cerr << "radiobcast-runtime: fork: " << std::strerror(errno)
                << "\n";
      for (const ChildState& c : ledger) {
        if (c.running) ::kill(c.pid, SIGTERM);
      }
      for (const ChildState& c : ledger) {
        if (c.running) ::waitpid(c.pid, nullptr, 0);
      }
      return 1;
    }
    ledger[static_cast<std::size_t>(i)].pid = pid;
    ledger[static_cast<std::size_t>(i)].running = true;
  }

  bool forwarded = false;
  bool exec_failed = false;
  std::size_t live = static_cast<std::size_t>(n);
  while (live > 0) {
    if (shutdown.requested() && !forwarded) {
      for (const ChildState& c : ledger) {
        if (c.running) ::kill(c.pid, SIGTERM);
      }
      forwarded = true;
    }
    int status = 0;
    const pid_t done = ::waitpid(-1, &status, WNOHANG);
    if (done == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (done < 0) break;  // no children left
    for (std::size_t i = 0; i < ledger.size(); ++i) {
      ChildState& c = ledger[i];
      if (c.pid != done || !c.running) continue;
      c.running = false;
      --live;
      bool died = false;
      if (WIFEXITED(status)) {
        c.exit_code = WEXITSTATUS(status);
        if (c.exit_code == 127) exec_failed = true;
        died = c.exit_code == 9;
      } else if (WIFSIGNALED(status)) {
        c.signal = WTERMSIG(status);
        died = true;
      }
      // Supervision: relaunch a crashed or killed node from its snapshot,
      // at most once — a node that dies twice stays dead (no crash loops).
      if (died && respawn && !forwarded && c.restarts < 1) {
        if (scenario.restart_after_ms > 0) {
          std::this_thread::sleep_for(
              std::chrono::milliseconds(scenario.restart_after_ms));
        }
        const pid_t np =
            spawn_node(node_bin, scenario_path, out_dir,
                       static_cast<std::int64_t>(i), true, backend);
        if (np > 0) {
          c.pid = np;
          c.running = true;
          c.signal = 0;
          c.exit_code = -1;
          ++c.restarts;
          ++live;
        }
      }
      break;
    }
  }
  if (shutdown.requested()) return shutdown.exit_code();
  if (exec_failed) {
    std::cerr << "radiobcast-runtime: node binary failed to exec\n";
    return 1;
  }

  // Collect verdicts. A node that died before writing one gets a crashed
  // placeholder, enriched from its snapshot when the crash left one — this
  // is what turns a SIGKILLed node into a degraded verdict instead of a
  // missing-file error.
  std::vector<RuntimeVerdict> verdicts;
  verdicts.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::string path =
        out_dir + "/verdict-" + std::to_string(i) + ".txt";
    std::ifstream in(path);
    if (in) {
      verdicts.push_back(parse_verdict(in));
      continue;
    }
    RuntimeVerdict v;
    const RuntimeNode::Options o =
        node_options(scenario, static_cast<std::int32_t>(i));
    v.index = static_cast<std::int32_t>(i);
    v.self = o.self;
    v.role = o.role;
    v.crashed = true;
    const std::string snap_path =
        (scenario.state_dir.empty() ? out_dir : scenario.state_dir) +
        "/state-" + std::to_string(i) + ".txt";
    try {
      if (const auto snap = load_snapshot(snap_path)) {
        v.committed = snap->committed;
        v.commit_round = snap->commit_round;
        v.rounds = std::max<std::int64_t>(snap->round, 0);
        v.counters.node_restarts = snap->restarts;
      }
    } catch (const std::exception&) {
      // A torn snapshot cannot make the placeholder worse than bare.
    }
    verdicts.push_back(v);
  }
  result = score_verdicts(scenario, std::move(verdicts));
  return 0;
}

int run(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"scenario", "node-bin", "out", "in-process",
                      "expect-all-commit", "expect-degraded-correct",
                      "respawn", "quiet", "help", "backend"});
  if (!args.ok()) {
    std::cerr << "radiobcast-runtime: " << args.error() << "\n";
    return 2;
  }
  if (args.get_bool("help", false)) {
    std::cout
        << "usage: radiobcast-runtime --scenario <file> [options]\n"
           "  --node-bin <path>    radiobcast-node binary (default: sibling "
           "of this binary)\n"
           "  --out <dir>          verdict directory (default: scenario "
           "dir)\n"
           "  --in-process         run nodes as threads instead of "
           "processes\n"
           "  --respawn            relaunch a crashed/killed node from its "
           "snapshot (once)\n"
           "  --backend poll|epoll override the scenario's node idle "
           "strategy\n"
           "  --expect-all-commit  exit 3 unless every honest node committed "
           "the source value\n"
           "  --expect-degraded-correct\n"
           "                       exit 3 if any node committed a wrong "
           "value or a surviving\n"
           "                       honest node failed to commit\n"
           "  --quiet              suppress the summary\n";
    return 0;
  }
  const std::string scenario_path = args.get("scenario", "");
  if (scenario_path.empty()) {
    std::cerr
        << "radiobcast-runtime: --scenario is required (--help for usage)\n";
    return 2;
  }
  Scenario scenario = load_scenario(scenario_path);
  const std::string backend_override = args.get("backend", "");
  if (!backend_override.empty()) {
    const auto b = backend_from_string(backend_override);
    if (!b) {
      std::cerr << "radiobcast-runtime: unknown backend '" << backend_override
                << "'\n";
      return 2;
    }
    scenario.backend = *b;  // in-process path; children get --backend instead
  }

  ShutdownGuard shutdown;
  RuntimeResult result;
  std::vector<ChildState> ledger;
  std::string deployment_path;
  if (args.get_bool("in-process", false)) {
    result = run_scenario_threads(scenario);
    if (result.any_interrupted || shutdown.requested()) {
      return shutdown.exit_code();
    }
  } else {
    std::string out_dir = args.get("out", "");
    if (out_dir.empty()) {
      const auto slash = scenario_path.find_last_of('/');
      out_dir = slash == std::string::npos ? "."
                                           : scenario_path.substr(0, slash);
    }
    std::filesystem::create_directories(out_dir);
    const std::string node_bin =
        args.get("node-bin", sibling_binary(argv[0], "radiobcast-node"));
    const int rc =
        run_processes(scenario, scenario_path, node_bin, out_dir,
                      args.get_bool("respawn", false), backend_override,
                      shutdown, result, ledger);
    if (rc != 0) return rc;
    deployment_path = out_dir + "/deployment.txt";
  }

  if (!deployment_path.empty()) {
    std::ofstream out(deployment_path);
    if (out) {
      print_summary(out, scenario, result);
      print_ledger(out, ledger);
    }
  }
  if (!args.get_bool("quiet", false)) {
    print_summary(std::cout, scenario, result);
    print_ledger(std::cout, ledger);
  }
  if (args.get_bool("expect-all-commit", false) && !result.success()) {
    std::cerr << "radiobcast-runtime: expected every honest node to commit "
                 "the source value\n";
    return 3;
  }
  if (args.get_bool("expect-degraded-correct", false) &&
      !result.degraded_correct()) {
    std::cerr << "radiobcast-runtime: expected a degraded-but-correct "
                 "deployment (no wrong commits, every surviving honest node "
                 "committed)\n";
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "radiobcast-runtime: " << e.what() << "\n";
    return 1;
  }
}
