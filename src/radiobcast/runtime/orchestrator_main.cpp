// radiobcast-runtime: orchestrates a full networked deployment on loopback.
//
// Launches one radiobcast-node process per torus node from a shared scenario
// file (or runs them as in-process threads with --in-process), collects every
// per-node verdict, scores the outcome like run_simulation would, and prints
// a summary.
//
// Exit codes: 0 success, 3 when --expect-all-commit fails, 130/143 on
// SIGINT/SIGTERM (children are forwarded SIGTERM and reaped first), 2 on bad
// usage, 1 on runtime errors.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "radiobcast/runtime/harness.h"
#include "radiobcast/runtime/scenario.h"
#include "radiobcast/util/cli.h"
#include "radiobcast/util/shutdown.h"

namespace {

using namespace rbcast;

std::string sibling_binary(const char* argv0, const std::string& name) {
  std::string path(argv0);
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return name;  // rely on PATH
  return path.substr(0, slash + 1) + name;
}

void print_summary(std::ostream& os, const Scenario& scenario,
                   const RuntimeResult& result) {
  os << "runtime: " << scenario.sim.width << "x" << scenario.sim.height
     << " torus, protocol " << to_string(scenario.sim.protocol)
     << ", adversary " << to_string(scenario.sim.adversary) << ", "
     << scenario.faults.size() << " faults\n"
     << "rounds " << result.rounds << ", honest " << result.honest_nodes
     << ", correct " << result.correct_commits << ", wrong "
     << result.wrong_commits << ", undecided " << result.undecided << "\n"
     << "packets sent " << result.counters.packets_sent << " (retransmitted "
     << result.counters.packets_retransmitted << "), acked "
     << result.counters.packets_acked << ", duplicates dropped "
     << result.counters.duplicates_dropped << ", barrier timeouts "
     << result.counters.barrier_timeouts << "\n"
     << (result.success() ? "RELIABLE BROADCAST ACHIEVED"
                          : "reliable broadcast NOT achieved")
     << "\n";
}

int run_processes(const Scenario& scenario, const std::string& scenario_path,
                  const std::string& node_bin, const std::string& out_dir,
                  ShutdownGuard& shutdown, RuntimeResult& result) {
  const Torus torus(scenario.sim.width, scenario.sim.height);
  const std::int64_t n = torus.node_count();
  std::vector<pid_t> children;
  children.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::cerr << "radiobcast-runtime: fork: " << std::strerror(errno)
                << "\n";
      for (const pid_t child : children) ::kill(child, SIGTERM);
      for (const pid_t child : children) ::waitpid(child, nullptr, 0);
      return 1;
    }
    if (pid == 0) {
      const std::string index = std::to_string(i);
      ::execl(node_bin.c_str(), node_bin.c_str(), "--scenario",
              scenario_path.c_str(), "--index", index.c_str(), "--out",
              out_dir.c_str(), "--quiet", static_cast<char*>(nullptr));
      // Only reached when exec fails.
      std::cerr << "radiobcast-runtime: exec " << node_bin << ": "
                << std::strerror(errno) << "\n";
      ::_exit(127);
    }
    children.push_back(pid);
  }

  bool forwarded = false;
  int failures = 0;
  std::vector<bool> reaped(children.size(), false);
  std::size_t live = children.size();
  while (live > 0) {
    if (shutdown.requested() && !forwarded) {
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (!reaped[i]) ::kill(children[i], SIGTERM);
      }
      forwarded = true;
    }
    int status = 0;
    const pid_t done = ::waitpid(-1, &status, WNOHANG);
    if (done == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    if (done < 0) break;  // no children left
    for (std::size_t i = 0; i < children.size(); ++i) {
      if (children[i] == done && !reaped[i]) {
        reaped[i] = true;
        --live;
        const bool clean =
            WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (!clean && !forwarded) ++failures;
        break;
      }
    }
  }
  if (shutdown.requested()) return shutdown.exit_code();
  if (failures > 0) {
    std::cerr << "radiobcast-runtime: " << failures
              << " node process(es) exited abnormally\n";
    return 1;
  }

  std::vector<RuntimeVerdict> verdicts;
  verdicts.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const std::string path =
        out_dir + "/verdict-" + std::to_string(i) + ".txt";
    std::ifstream in(path);
    if (!in) {
      std::cerr << "radiobcast-runtime: missing verdict file " << path
                << "\n";
      return 1;
    }
    verdicts.push_back(parse_verdict(in));
  }
  result = score_verdicts(scenario, std::move(verdicts));
  return 0;
}

int run(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"scenario", "node-bin", "out", "in-process",
                      "expect-all-commit", "quiet", "help"});
  if (!args.ok()) {
    std::cerr << "radiobcast-runtime: " << args.error() << "\n";
    return 2;
  }
  if (args.get_bool("help", false)) {
    std::cout
        << "usage: radiobcast-runtime --scenario <file> [options]\n"
           "  --node-bin <path>    radiobcast-node binary (default: sibling "
           "of this binary)\n"
           "  --out <dir>          verdict directory (default: scenario "
           "dir)\n"
           "  --in-process         run nodes as threads instead of "
           "processes\n"
           "  --expect-all-commit  exit 3 unless every honest node committed "
           "the source value\n"
           "  --quiet              suppress the summary\n";
    return 0;
  }
  const std::string scenario_path = args.get("scenario", "");
  if (scenario_path.empty()) {
    std::cerr
        << "radiobcast-runtime: --scenario is required (--help for usage)\n";
    return 2;
  }
  const Scenario scenario = load_scenario(scenario_path);

  ShutdownGuard shutdown;
  RuntimeResult result;
  if (args.get_bool("in-process", false)) {
    result = run_scenario_threads(scenario);
    if (result.any_interrupted || shutdown.requested()) {
      return shutdown.exit_code();
    }
  } else {
    std::string out_dir = args.get("out", "");
    if (out_dir.empty()) {
      const auto slash = scenario_path.find_last_of('/');
      out_dir = slash == std::string::npos ? "."
                                           : scenario_path.substr(0, slash);
    }
    std::filesystem::create_directories(out_dir);
    const std::string node_bin =
        args.get("node-bin", sibling_binary(argv[0], "radiobcast-node"));
    const int rc = run_processes(scenario, scenario_path, node_bin, out_dir,
                                 shutdown, result);
    if (rc != 0) return rc;
  }

  if (!args.get_bool("quiet", false)) {
    print_summary(std::cout, scenario, result);
  }
  if (args.get_bool("expect-all-commit", false) && !result.success()) {
    std::cerr << "radiobcast-runtime: expected every honest node to commit "
                 "the source value\n";
    return 3;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "radiobcast-runtime: " << e.what() << "\n";
    return 1;
  }
}
