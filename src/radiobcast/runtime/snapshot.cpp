#include "radiobcast/runtime/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace rbcast {

namespace {

[[noreturn]] void io_fail(const std::string& path, const char* what) {
  throw std::runtime_error("snapshot " + path + ": " + what + ": " +
                           std::strerror(errno));
}

}  // namespace

void write_snapshot(const std::string& path, const NodeSnapshot& s) {
  std::ostringstream body;
  body << "round " << s.round << '\n'
       << "committed " << (s.committed ? static_cast<int>(*s.committed) : -1)
       << '\n'
       << "commit_round " << s.commit_round << '\n'
       << "restarts " << s.restarts << '\n';
  for (const auto& [peer, seq] : s.link.out_next_seq) {
    body << "out_seq " << peer << ' ' << seq << '\n';
  }
  for (const auto& [peer, seq] : s.link.in_next_seq) {
    body << "in_seq " << peer << ' ' << seq << '\n';
  }
  for (const auto& [peer, draws] : s.loss_draws) {
    body << "loss_draws " << peer << ' ' << draws << '\n';
  }
  const std::string bytes = body.str();

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) io_fail(tmp, "open");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      errno = saved;
      io_fail(tmp, "write");
    }
    off += static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must never land ahead of the data, or a
  // crash could leave a named-but-empty snapshot.
  if (::fsync(fd) < 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    io_fail(tmp, "fsync");
  }
  if (::close(fd) < 0) io_fail(tmp, "close");
  if (::rename(tmp.c_str(), path.c_str()) < 0) io_fail(path, "rename");
}

std::optional<NodeSnapshot> load_snapshot(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  NodeSnapshot s;
  std::string line;
  bool saw_round = false;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    const auto want_i64 = [&](std::int64_t& out) {
      if (!(ls >> out)) {
        throw std::invalid_argument("snapshot: bad value for '" + key + "'");
      }
    };
    std::int64_t a = 0;
    std::int64_t b = 0;
    if (key == "round") {
      want_i64(s.round);
      saw_round = true;
    } else if (key == "committed") {
      want_i64(a);
      if (a >= 0) s.committed = static_cast<std::uint8_t>(a);
    } else if (key == "commit_round") {
      want_i64(s.commit_round);
    } else if (key == "restarts") {
      want_i64(a);
      s.restarts = static_cast<std::uint64_t>(a);
    } else if (key == "out_seq") {
      want_i64(a);
      want_i64(b);
      s.link.out_next_seq.emplace_back(static_cast<std::uint32_t>(a),
                                       static_cast<std::uint32_t>(b));
    } else if (key == "in_seq") {
      want_i64(a);
      want_i64(b);
      s.link.in_next_seq.emplace_back(static_cast<std::uint32_t>(a),
                                      static_cast<std::uint32_t>(b));
    } else if (key == "loss_draws") {
      want_i64(a);
      want_i64(b);
      s.loss_draws.emplace_back(static_cast<std::uint32_t>(a),
                                static_cast<std::uint64_t>(b));
    } else {
      throw std::invalid_argument("snapshot: unknown key '" + key + "'");
    }
  }
  if (!saw_round) throw std::invalid_argument("snapshot: missing round");
  return s;
}

}  // namespace rbcast
