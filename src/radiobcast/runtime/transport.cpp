#include "radiobcast/runtime/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <thread>
#include <utility>

#include "radiobcast/runtime/wire.h"

namespace rbcast {

void Transport::wait(std::chrono::steady_clock::time_point deadline) {
  // The poll backend's cadence: a bounded nap, then the caller re-polls.
  const auto now = std::chrono::steady_clock::now();
  if (deadline <= now) return;
  std::this_thread::sleep_for(
      std::min<std::chrono::steady_clock::duration>(
          deadline - now, std::chrono::microseconds(50)));
}

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

UdpTransport::UdpTransport(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    const int saved = errno;
    ::close(fd_);
    errno = saved;
    throw_errno("fcntl(O_NONBLOCK)");
  }
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(fd_);
    errno = saved;
    throw_errno("bind");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int saved = errno;
    ::close(fd_);
    errno = saved;
    throw_errno("getsockname");
  }
  local_port_ = ntohs(bound.sin_port);
}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::set_peers(std::vector<std::uint16_t> ports) {
  peer_ports_ = std::move(ports);
}

void UdpTransport::send(std::uint32_t to,
                        const std::vector<std::uint8_t>& bytes) {
  if (to >= peer_ports_.size()) {
    throw std::out_of_range("UdpTransport::send: unknown peer index");
  }
  const sockaddr_in addr = loopback_addr(peer_ports_[to]);
  // Best-effort by contract: EWOULDBLOCK / transient buffer exhaustion is a
  // drop, exactly the failure PerfectLink's retransmission recovers from.
  (void)::sendto(fd_, bytes.data(), bytes.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
}

bool UdpTransport::try_receive(Datagram& out) {
  std::uint8_t buf[kMaxDatagram];
  sockaddr_in src{};
  socklen_t src_len = sizeof(src);
  const ssize_t n = ::recvfrom(fd_, buf, sizeof(buf), 0,
                               reinterpret_cast<sockaddr*>(&src), &src_len);
  if (n < 0) return false;  // EWOULDBLOCK and friends: nothing pending
  const std::uint16_t src_port = ntohs(src.sin_port);
  // Resolve the transmitter from the source port. The peer table is the
  // runtime's identity authority; datagrams from unknown ports are dropped,
  // which enforces the no-spoofing model at the transport seam.
  for (std::uint32_t i = 0; i < peer_ports_.size(); ++i) {
    if (peer_ports_[i] == src_port) {
      out.from = i;
      out.bytes.assign(buf, buf + n);
      return true;
    }
  }
  return false;
}

void UdpTransport::wait(std::chrono::steady_clock::time_point deadline) {
  if (!loop_) {
    loop_ = std::make_unique<EventLoop>();
    loop_->add(fd_);
  }
  (void)loop_->wait_until(deadline);
}

FaultInjectionTransport::FaultInjectionTransport(std::uint32_t self,
                                                 Options opts)
    : self_(self), opts_(opts), rng_(hash_seeds(opts.seed, self)) {}

void FaultInjectionTransport::set_peers(
    std::vector<FaultInjectionTransport*> peers) {
  peers_ = std::move(peers);
  held_.clear();
  held_.resize(peers_.size());
}

void FaultInjectionTransport::enqueue_at(std::uint32_t to, Datagram d) {
  peers_.at(to)->inbox_.push_back(std::move(d));
}

void FaultInjectionTransport::send(std::uint32_t to,
                                   const std::vector<std::uint8_t>& bytes) {
  if (rng_.chance(opts_.drop_p)) return;
  Datagram d{self_, bytes};
  const bool duplicate = rng_.chance(opts_.duplicate_p);
  if (rng_.chance(opts_.reorder_p) && held_[to] == nullptr) {
    // Hold this datagram back; it is released behind the next send to `to`.
    held_[to] = std::make_unique<Datagram>(std::move(d));
    return;
  }
  enqueue_at(to, d);
  if (duplicate) enqueue_at(to, std::move(d));
  if (held_[to] != nullptr) {
    enqueue_at(to, std::move(*held_[to]));
    held_[to].reset();
  }
}

bool FaultInjectionTransport::try_receive(Datagram& out) {
  if (inbox_.empty()) return false;
  out = std::move(inbox_.front());
  inbox_.pop_front();
  return true;
}

void FaultInjectionTransport::wait(
    std::chrono::steady_clock::time_point deadline) {
  if (!inbox_.empty()) return;
  Transport::wait(deadline);
}

ChaosTransport::ChaosTransport(std::uint32_t self, Transport& inner,
                               ChaosOptions opts)
    : self_(self), inner_(&inner), opts_(std::move(opts)) {
  start_ = now();
}

bool ChaosTransport::partitioned(
    std::uint32_t to, std::chrono::steady_clock::time_point now) const {
  const std::int64_t age_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - start_)
          .count();
  for (const ChaosOptions::Partition& p : opts_.partitions) {
    if (p.from != self_ || p.to != to) continue;
    if (age_ms < p.start_ms) continue;
    if (p.end_ms >= 0 && age_ms >= p.end_ms) continue;
    return true;
  }
  return false;
}

void ChaosTransport::release_due(std::chrono::steady_clock::time_point now) {
  // Insertion order is release order for a single delay value; scanning the
  // front suffices and keeps this O(due) per call.
  while (!delayed_.empty() && delayed_.front().release <= now) {
    Delayed d = std::move(delayed_.front());
    delayed_.pop_front();
    inner_->send(d.to, d.bytes);
  }
}

void ChaosTransport::send(std::uint32_t to,
                          const std::vector<std::uint8_t>& bytes) {
  const auto now = this->now();
  release_due(now);
  if (partitioned(to, now)) {
    ++stats_.partition_drops;
    return;
  }
  // One private Rng per datagram, seeded from (seed, sender->receiver pair,
  // per-pair sequence): the fate of the k-th datagram on a link is a pure
  // function of the scenario, never of cross-link interleaving.
  const std::uint64_t pair_key =
      (static_cast<std::uint64_t>(self_) << 32) | to;
  Rng rng(hash_seeds(hash_seeds(opts_.seed, pair_key), pair_seq_[to]++));
  if (rng.chance(opts_.drop_p)) {
    ++stats_.drops;
    return;
  }
  const bool duplicate = rng.chance(opts_.duplicate_p);
  if (rng.chance(opts_.delay_p) && opts_.delay.count() > 0) {
    ++stats_.delays;
    delayed_.push_back(Delayed{now + opts_.delay, to, bytes});
  } else {
    inner_->send(to, bytes);
  }
  if (duplicate) {
    ++stats_.duplicates;
    inner_->send(to, bytes);
  }
}

bool ChaosTransport::try_receive(Datagram& out) {
  release_due(now());
  return inner_->try_receive(out);
}

void ChaosTransport::wait(std::chrono::steady_clock::time_point deadline) {
  // A held datagram's release must not wait for the receiver's own deadline:
  // waking at the release time lets the next try_receive inject it, which is
  // what keeps delay chaos from turning into artificial barrier stalls.
  if (!delayed_.empty()) {
    deadline = std::min(deadline, delayed_.front().release);
  }
  inner_->wait(deadline);
}

}  // namespace rbcast
