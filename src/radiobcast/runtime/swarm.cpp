#include "radiobcast/runtime/swarm.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "radiobcast/runtime/wire.h"

namespace rbcast {

namespace {

constexpr std::size_t kMuxHeader = 8;  // [from u32 LE][to u32 LE]

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

void put_u32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

SwarmHub::SwarmHub(std::uint32_t node_count, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    const int saved = errno;
    ::close(fd_);
    errno = saved;
    throw_errno("fcntl(O_NONBLOCK)");
  }
  sockaddr_in addr = loopback_addr(port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(fd_);
    errno = saved;
    throw_errno("bind");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int saved = errno;
    ::close(fd_);
    errno = saved;
    throw_errno("getsockname");
  }
  local_port_ = ntohs(bound.sin_port);
  mail_.reserve(node_count);
  for (std::uint32_t i = 0; i < node_count; ++i) {
    mail_.push_back(std::make_unique<Mailbox>());
  }
}

SwarmHub::~SwarmHub() {
  if (fd_ >= 0) ::close(fd_);
}

void SwarmHub::set_peers(std::vector<std::uint16_t> ports) {
  if (ports.size() != mail_.size()) {
    throw std::invalid_argument("SwarmHub::set_peers: size mismatch");
  }
  peer_ports_ = std::move(ports);
  any_remote_ = false;
  for (const std::uint16_t p : peer_ports_) {
    if (p != local_port_) any_remote_ = true;
  }
}

std::unique_ptr<Transport> SwarmHub::transport(std::uint32_t index) {
  if (index >= mail_.size() || !is_member(index)) {
    throw std::out_of_range("SwarmHub::transport: not a member index");
  }
  return std::make_unique<SwarmTransport>(*this, index);
}

void SwarmHub::deliver_local(std::uint32_t from, std::uint32_t to,
                             std::vector<std::uint8_t> bytes) {
  // Every delivery notifies, acks included. (Suppressing ack wake-ups was
  // tried and measured ~3x *slower* on a single core: a node blocked with
  // only silent acks pending stalls until its 10 ms stop probe, and those
  // stalls — at round edges and in the linger phase — dwarf the context
  // switches saved. notify_one on an already-runnable receiver is nearly
  // free, so the simple rule wins.)
  Mailbox& box = *mail_[to];
  {
    const std::lock_guard<std::mutex> lock(box.mutex);
    box.queue.push_back(Datagram{from, std::move(bytes)});
  }
  box.cv.notify_one();
}

void SwarmHub::send_from(std::uint32_t from, std::uint32_t to,
                         std::vector<std::uint8_t> bytes) {
  if (to >= mail_.size()) {
    throw std::out_of_range("SwarmHub::send_from: unknown peer index");
  }
  if (is_member(to)) {
    deliver_local(from, to, std::move(bytes));
    return;
  }
  // Outbound through the shared socket, (from, to) mux header prefixed so
  // the receiving hub can route and validate. sendto on a UDP socket is
  // atomic per datagram; no lock needed on the send path.
  std::uint8_t buf[kMuxHeader + kMaxDatagram];
  put_u32(buf, from);
  put_u32(buf + 4, to);
  std::memcpy(buf + kMuxHeader, bytes.data(), bytes.size());
  const sockaddr_in addr = loopback_addr(peer_ports_[to]);
  (void)::sendto(fd_, buf, kMuxHeader + bytes.size(), 0,
                 reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
}

void SwarmHub::pump_socket() {
  const std::lock_guard<std::mutex> lock(socket_mutex_);
  std::uint8_t buf[kMuxHeader + kMaxDatagram];
  for (;;) {
    sockaddr_in src{};
    socklen_t src_len = sizeof(src);
    const ssize_t n = ::recvfrom(fd_, buf, sizeof(buf), 0,
                                 reinterpret_cast<sockaddr*>(&src), &src_len);
    if (n < 0) return;  // EWOULDBLOCK and friends: drained
    if (static_cast<std::size_t>(n) < kMuxHeader) continue;
    const std::uint32_t from = get_u32(buf);
    const std::uint32_t to = get_u32(buf + 4);
    if (from >= mail_.size() || to >= mail_.size() || !is_member(to)) {
      continue;
    }
    // Source-address authority, hub granularity: the claimed sender must
    // live at the port this datagram actually came from. A spoofed `from`
    // naming a node of a different hub is dropped here.
    if (peer_ports_.empty() ||
        peer_ports_[from] != ntohs(src.sin_port)) {
      continue;
    }
    deliver_local(from, to,
                  std::vector<std::uint8_t>(buf + kMuxHeader, buf + n));
  }
}

bool SwarmHub::try_receive_for(std::uint32_t index, Datagram& out) {
  Mailbox& box = *mail_[index];
  {
    const std::lock_guard<std::mutex> lock(box.mutex);
    if (!box.queue.empty()) {
      out = std::move(box.queue.front());
      box.queue.pop_front();
      return true;
    }
  }
  if (!any_remote_) return false;
  pump_socket();
  const std::lock_guard<std::mutex> lock(box.mutex);
  if (box.queue.empty()) return false;
  out = std::move(box.queue.front());
  box.queue.pop_front();
  return true;
}

void SwarmHub::wait_for(std::uint32_t index,
                        std::chrono::steady_clock::time_point deadline) {
  Mailbox& box = *mail_[index];
  if (!any_remote_) {
    // Fully local swarm: every delivery notifies the mailbox condvar, so a
    // plain wait is lossless (no fd, no polling).
    std::unique_lock<std::mutex> lock(box.mutex);
    box.cv.wait_until(lock, deadline, [&] { return !box.queue.empty(); });
    return;
  }
  // With remote peers the shared socket can fill while every member sleeps
  // on its condvar, so waits are sliced: nap on the condvar, pump, repeat.
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::unique_lock<std::mutex> lock(box.mutex);
      const auto slice = std::min(
          deadline, std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(1));
      if (box.cv.wait_until(lock, slice,
                            [&] { return !box.queue.empty(); })) {
        return;
      }
    }
    pump_socket();
    {
      const std::lock_guard<std::mutex> lock(box.mutex);
      if (!box.queue.empty()) return;
    }
  }
}

}  // namespace rbcast
