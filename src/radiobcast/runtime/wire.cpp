#include "radiobcast/runtime/wire.h"

#include <stdexcept>

namespace rbcast {
namespace {

// Datagram layout (all integers little-endian):
//   magic 'R' | version | kind | count | sender u32
//   DATA entries: id u64 | wire-kind u8 | round i64 | payload
//     kProtocol payload: type u8 | value u8 | origin i32 i32 |
//                        nrelay u8 | (relayer i32 i32) * nrelay
//     kRoundDone payload: done_count u32
//   ACK entries: id u64
constexpr std::uint8_t kMagic = 'R';
constexpr std::uint8_t kVersion = 1;

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_i32(std::vector<std::uint8_t>& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

// Cursor-based reader; every get_* checks remaining length.
struct Reader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;

  bool get_u8(std::uint8_t& v) {
    if (pos + 1 > data.size()) return false;
    v = data[pos++];
    return true;
  }
  bool get_u32(std::uint32_t& v) {
    if (pos + 4 > data.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
    return true;
  }
  bool get_u64(std::uint64_t& v) {
    if (pos + 8 > data.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data[pos++]) << (8 * i);
    return true;
  }
  bool get_i32(std::int32_t& v) {
    std::uint32_t u = 0;
    if (!get_u32(u)) return false;
    v = static_cast<std::int32_t>(u);
    return true;
  }
  bool get_i64(std::int64_t& v) {
    std::uint64_t u = 0;
    if (!get_u64(u)) return false;
    v = static_cast<std::int64_t>(u);
    return true;
  }
};

void encode_message(std::vector<std::uint8_t>& out, const Message& msg) {
  put_u8(out, static_cast<std::uint8_t>(msg.type));
  put_u8(out, msg.value);
  put_i32(out, msg.origin.x);
  put_i32(out, msg.origin.y);
  put_u8(out, static_cast<std::uint8_t>(msg.relayers.size()));
  for (const Coord hop : msg.relayers) {
    put_i32(out, hop.x);
    put_i32(out, hop.y);
  }
}

bool decode_message(Reader& r, Message& msg) {
  std::uint8_t type = 0;
  if (!r.get_u8(type)) return false;
  if (type > static_cast<std::uint8_t>(MsgType::kHeard)) return false;
  msg.type = static_cast<MsgType>(type);
  if (!r.get_u8(msg.value)) return false;
  if (!r.get_i32(msg.origin.x) || !r.get_i32(msg.origin.y)) return false;
  std::uint8_t nrelay = 0;
  if (!r.get_u8(nrelay)) return false;
  if (nrelay > RelayerChain::kCapacity) return false;
  msg.relayers = RelayerChain{};
  for (std::uint8_t i = 0; i < nrelay; ++i) {
    Coord hop{};
    if (!r.get_i32(hop.x) || !r.get_i32(hop.y)) return false;
    msg.relayers.push_back(hop);
  }
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_packet(const Packet& packet) {
  if (packet.kind == PacketKind::kData && packet.entries.size() > kMaxBatch) {
    throw std::length_error("DATA packet exceeds kMaxBatch entries");
  }
  if (packet.kind == PacketKind::kAck &&
      packet.acks.size() > kMaxAcksPerPacket) {
    throw std::length_error("ACK packet exceeds kMaxAcksPerPacket ids");
  }
  std::vector<std::uint8_t> out;
  out.reserve(64);
  put_u8(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(packet.kind));
  put_u8(out, static_cast<std::uint8_t>(packet.kind == PacketKind::kData
                                            ? packet.entries.size()
                                            : packet.acks.size()));
  put_u32(out, packet.sender);
  if (packet.kind == PacketKind::kData) {
    for (const WireEntry& entry : packet.entries) {
      put_u64(out, entry.id);
      put_u8(out, static_cast<std::uint8_t>(entry.payload.kind));
      put_i64(out, entry.payload.round);
      if (entry.payload.kind == WireKind::kProtocol) {
        encode_message(out, entry.payload.msg);
      } else {
        put_u32(out, entry.payload.done_count);
      }
    }
  } else {
    for (const std::uint64_t id : packet.acks) put_u64(out, id);
  }
  if (out.size() > kMaxDatagram) {
    throw std::length_error("encoded packet exceeds kMaxDatagram");
  }
  return out;
}

bool decode_packet(std::span<const std::uint8_t> datagram, Packet& out) {
  Reader r{datagram};
  std::uint8_t magic = 0, version = 0, kind = 0, count = 0;
  if (!r.get_u8(magic) || magic != kMagic) return false;
  if (!r.get_u8(version) || version != kVersion) return false;
  if (!r.get_u8(kind) || kind > static_cast<std::uint8_t>(PacketKind::kAck)) {
    return false;
  }
  if (!r.get_u8(count)) return false;
  out.kind = static_cast<PacketKind>(kind);
  if (!r.get_u32(out.sender)) return false;
  out.entries.clear();
  out.acks.clear();
  if (out.kind == PacketKind::kData) {
    if (count > kMaxBatch) return false;
    out.entries.reserve(count);
    for (std::uint8_t i = 0; i < count; ++i) {
      WireEntry entry;
      if (!r.get_u64(entry.id)) return false;
      std::uint8_t wkind = 0;
      if (!r.get_u8(wkind) ||
          wkind > static_cast<std::uint8_t>(WireKind::kRoundDone)) {
        return false;
      }
      entry.payload.kind = static_cast<WireKind>(wkind);
      if (!r.get_i64(entry.payload.round)) return false;
      if (entry.payload.kind == WireKind::kProtocol) {
        if (!decode_message(r, entry.payload.msg)) return false;
      } else {
        if (!r.get_u32(entry.payload.done_count)) return false;
      }
      out.entries.push_back(entry);
    }
  } else {
    if (count > kMaxAcksPerPacket) return false;
    out.acks.reserve(count);
    for (std::uint8_t i = 0; i < count; ++i) {
      std::uint64_t id = 0;
      if (!r.get_u64(id)) return false;
      out.acks.push_back(id);
    }
  }
  return r.pos == datagram.size();
}

}  // namespace rbcast
