#include "radiobcast/runtime/round_sync.h"

#include <algorithm>
#include <utility>

namespace rbcast {

RoundSynchronizer::RoundSynchronizer(std::vector<std::uint32_t> expected,
                                     Options opts)
    : expected_(std::move(expected)), opts_(opts) {}

void RoundSynchronizer::begin_round(
    std::int64_t round, std::chrono::steady_clock::time_point now) {
  RoundState& state = rounds_[round];
  if (!state.clock_running) {
    state.started = now;
    state.clock_running = true;
  }
}

void RoundSynchronizer::on_message(std::uint32_t from,
                                   const WireMessage& msg) {
  PeerRound& peer = rounds_[msg.round].peers[from];
  if (msg.kind == WireKind::kRoundDone) {
    peer.done_count = msg.done_count;
    // Any marker is proof of life: a suspected peer that speaks again (a
    // restarted process catching up) rejoins the barrier immediately.
    if (suspected_.erase(from) > 0) miss_streak_[from] = 0;
  } else {
    peer.msgs.push_back(msg.msg);
  }
}

bool RoundSynchronizer::complete(std::int64_t round) const {
  const auto it = rounds_.find(round);
  for (const std::uint32_t peer : expected_) {
    if (suspected_.count(peer) > 0) continue;  // suspects don't gate rounds
    if (it == rounds_.end()) return false;
    const auto pit = it->second.peers.find(peer);
    if (pit == it->second.peers.end() || !pit->second.done_count.has_value()) {
      return false;
    }
    // FIFO makes this an invariant rather than a wait condition, but check
    // defensively: the marker counts the peer's round transmissions.
    if (pit->second.msgs.size() < *pit->second.done_count) return false;
  }
  return true;
}

bool RoundSynchronizer::timed_out(
    std::int64_t round, std::chrono::steady_clock::time_point now) const {
  if (opts_.timeout.count() == 0) return false;
  const auto it = rounds_.find(round);
  if (it == rounds_.end() || !it->second.clock_running) return false;
  return now - it->second.started >= opts_.timeout * backoff_;
}

std::optional<std::chrono::steady_clock::time_point>
RoundSynchronizer::deadline(std::int64_t round) const {
  if (opts_.timeout.count() == 0) return std::nullopt;
  const auto it = rounds_.find(round);
  if (it == rounds_.end() || !it->second.clock_running) return std::nullopt;
  return it->second.started + opts_.timeout * backoff_;
}

std::vector<RoundMessage> RoundSynchronizer::take(std::int64_t round) {
  std::vector<RoundMessage> out;
  const auto it = rounds_.find(round);
  // Which expected peers' round traffic is missing (no marker, or fewer
  // messages than the marker promises)?
  std::vector<std::uint32_t> missing;
  bool timeout_open = false;  // missing a peer we were actually waiting on
  for (const std::uint32_t peer : expected_) {
    bool has = false;
    if (it != rounds_.end()) {
      const auto pit = it->second.peers.find(peer);
      has = pit != it->second.peers.end() &&
            pit->second.done_count.has_value() &&
            pit->second.msgs.size() >= *pit->second.done_count;
    }
    if (has) {
      miss_streak_[peer] = 0;
    } else {
      missing.push_back(peer);
      if (suspected_.count(peer) == 0) timeout_open = true;
    }
  }
  if (!missing.empty()) ++degraded_rounds_;
  if (timeout_open) {
    ++timeouts_;
    // Back off: transient congestion should not snowball into suspecting
    // half the neighborhood. A fully complete round resets this below.
    backoff_ = std::min(backoff_ * 2, std::max(opts_.max_backoff, 1));
    for (const std::uint32_t peer : missing) {
      if (suspected_.count(peer) > 0) continue;
      const int streak = ++miss_streak_[peer];
      if (opts_.suspect_after > 0 && streak >= opts_.suspect_after) {
        suspected_.insert(peer);
        ++suspect_transitions_;
      }
    }
  } else if (missing.empty()) {
    backoff_ = 1;
  }
  if (it == rounds_.end()) return out;
  for (auto& [sender, peer] : it->second.peers) {
    // Under a timeout a peer may have sent messages without its marker; only
    // marker-covered messages are released so a late burst from a wedged
    // process cannot straddle the barrier.
    const std::size_t n = peer.done_count.has_value()
                              ? std::min<std::size_t>(peer.msgs.size(),
                                                      *peer.done_count)
                              : 0;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(RoundMessage{sender, std::move(peer.msgs[i])});
    }
  }
  rounds_.erase(it);
  return out;
}

}  // namespace rbcast
