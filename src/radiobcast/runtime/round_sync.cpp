#include "radiobcast/runtime/round_sync.h"

#include <utility>

namespace rbcast {

RoundSynchronizer::RoundSynchronizer(std::vector<std::uint32_t> expected,
                                     Options opts)
    : expected_(std::move(expected)), opts_(opts) {}

void RoundSynchronizer::begin_round(
    std::int64_t round, std::chrono::steady_clock::time_point now) {
  RoundState& state = rounds_[round];
  if (!state.clock_running) {
    state.started = now;
    state.clock_running = true;
  }
}

void RoundSynchronizer::on_message(std::uint32_t from,
                                   const WireMessage& msg) {
  PeerRound& peer = rounds_[msg.round].peers[from];
  if (msg.kind == WireKind::kRoundDone) {
    peer.done_count = msg.done_count;
  } else {
    peer.msgs.push_back(msg.msg);
  }
}

bool RoundSynchronizer::complete(std::int64_t round) const {
  const auto it = rounds_.find(round);
  for (const std::uint32_t peer : expected_) {
    if (it == rounds_.end()) return expected_.empty();
    const auto pit = it->second.peers.find(peer);
    if (pit == it->second.peers.end() || !pit->second.done_count.has_value()) {
      return false;
    }
    // FIFO makes this an invariant rather than a wait condition, but check
    // defensively: the marker counts the peer's round transmissions.
    if (pit->second.msgs.size() < *pit->second.done_count) return false;
  }
  return true;
}

bool RoundSynchronizer::timed_out(
    std::int64_t round, std::chrono::steady_clock::time_point now) const {
  if (opts_.timeout.count() == 0) return false;
  const auto it = rounds_.find(round);
  if (it == rounds_.end() || !it->second.clock_running) return false;
  return now - it->second.started >= opts_.timeout;
}

std::vector<RoundMessage> RoundSynchronizer::take(std::int64_t round) {
  std::vector<RoundMessage> out;
  const auto it = rounds_.find(round);
  if (it == rounds_.end()) return out;
  if (!complete(round)) ++timeouts_;
  for (auto& [sender, peer] : it->second.peers) {
    // Under a timeout a peer may have sent messages without its marker; only
    // marker-covered messages are released so a late burst from a wedged
    // process cannot straddle the barrier.
    const std::size_t n = peer.done_count.has_value()
                              ? std::min<std::size_t>(peer.msgs.size(),
                                                      *peer.done_count)
                              : 0;
    for (std::size_t i = 0; i < n; ++i) {
      out.push_back(RoundMessage{sender, std::move(peer.msgs[i])});
    }
  }
  rounds_.erase(it);
  return out;
}

}  // namespace rbcast
