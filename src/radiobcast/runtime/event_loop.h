#pragma once
// Edge-triggered epoll event loop and hashed timer wheel.
//
// The original runtime paced every node with a fixed 50 us sleep: cheap to
// reason about, but it caps the whole-deployment round rate (BENCH_pr6) and
// burns a core per idle node. The epoll backend replaces the cadence with
// readiness: a node sleeps in epoll_wait until a datagram arrives or its
// earliest timer (link retransmission, barrier timeout, linger deadline)
// is due.
//
// Edge-triggered contract: the kernel reports an fd once per readability
// *edge*, so the caller must drain the socket to EWOULDBLOCK before the next
// wait — which PerfectLink::poll already does (its receive loop runs until
// try_receive returns false). Edges that arrive while the fd is armed but
// the caller is outside epoll_wait are remembered by the kernel and reported
// by the next wait, so the drain-then-wait loop never loses a wakeup.
//
// The TimerWheel is the other half: instead of scanning every unacked batch
// each tick (O(batches) at 20 kHz), deadlines hash into coarse slots and
// advance() touches only the slots the clock passed. All methods take
// explicit time points, so tests drive the wheel with a fake clock — no
// sleeps, deterministic under sanitizer load.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace rbcast {

/// Which runtime pacing strategy a node uses. kPoll is the 50 us sleep loop,
/// retained as the reference implementation; kEpoll is readiness-driven.
enum class RuntimeBackend { kPoll, kEpoll };

const char* to_string(RuntimeBackend backend);
std::optional<RuntimeBackend> backend_from_string(const std::string& name);

/// Hashed timer wheel keyed by caller-chosen 64-bit ids. schedule() upserts
/// (rescheduling an armed id moves its deadline), cancel() disarms, and
/// advance(now) fires everything due, in deadline order. Not thread-safe —
/// each node owns its own wheel, like its link and synchronizer.
class TimerWheel {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit TimerWheel(
      std::chrono::microseconds tick = std::chrono::microseconds(1000),
      std::size_t slots = 256);

  /// Arms (or re-arms) timer `id` for `deadline`.
  void schedule(std::uint64_t id, TimePoint deadline);

  /// Disarms timer `id`; returns false when it was not armed.
  bool cancel(std::uint64_t id);

  /// Appends every armed id whose deadline is <= now to `fired` (sorted by
  /// deadline then id, for deterministic tests) and disarms them.
  void advance(TimePoint now, std::vector<std::uint64_t>& fired);

  /// Earliest armed deadline, or nullopt when nothing is armed. This is what
  /// bounds the epoll backend's sleep.
  std::optional<TimePoint> next_deadline() const;

  std::size_t armed() const { return armed_.size(); }

 private:
  std::size_t slot_of(TimePoint t) const;

  std::chrono::microseconds tick_;
  /// slot -> (id, deadline) entries. An entry is live iff armed_ still maps
  /// its id to exactly its deadline; rescheduling leaves a stale entry behind
  /// that advance() discards when it sweeps past.
  std::vector<std::vector<std::pair<std::uint64_t, TimePoint>>> slots_;
  /// Authoritative id -> deadline map (cancel and next_deadline need it).
  std::unordered_map<std::uint64_t, TimePoint> armed_;
  TimePoint last_now_{};
  bool has_last_ = false;
};

/// Thin epoll wrapper: register datagram sockets, block until one is
/// readable or a deadline passes. One instance per node-owning thread.
class EventLoop {
 public:
  /// Throws std::system_error when epoll_create1 fails.
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for edge-triggered readability (EPOLLIN | EPOLLET).
  void add(int fd);
  void remove(int fd);

  /// Blocks until a registered fd has a readability edge or `deadline`
  /// passes (nullopt = no deadline). Returns true when woken by readiness.
  /// May wake spuriously; callers re-check their conditions.
  bool wait_until(std::optional<std::chrono::steady_clock::time_point>
                      deadline);

 private:
  int epfd_ = -1;
};

}  // namespace rbcast
