#include "radiobcast/runtime/perfect_link.h"

#include <algorithm>
#include <utility>

namespace rbcast {

PerfectLink::PerfectLink(std::uint32_t self, Transport& transport)
    : PerfectLink(self, transport, Options()) {}

PerfectLink::PerfectLink(std::uint32_t self, Transport& transport,
                         Options opts)
    : self_(self), transport_(&transport), opts_(opts) {}

void PerfectLink::send(std::uint32_t to, const WireMessage& msg) {
  // Sequence numbers are per-destination so the receiver's contiguity check
  // (PeerIn::next_seq) sees no gaps from traffic addressed elsewhere.
  auto& pending = pending_[to];
  pending.push_back(WireEntry{pack_message_id(self_, out_seq_[to]++), msg});
  ++pending_total_;
  if (pending.size() >= kMaxBatch) flush_pending(to);
}

void PerfectLink::flush() {
  // Collect keys first: flush_pending mutates pending_.
  std::vector<std::uint32_t> peers;
  peers.reserve(pending_.size());
  for (const auto& [to, entries] : pending_) {
    if (!entries.empty()) peers.push_back(to);
  }
  for (const std::uint32_t to : peers) flush_pending(to);
}

void PerfectLink::flush_pending(std::uint32_t to) {
  auto& pending = pending_[to];
  const auto now = std::chrono::steady_clock::now();
  while (!pending.empty()) {
    const std::size_t n = std::min(pending.size(), kMaxBatch);
    OutgoingBatch batch;
    batch.to = to;
    batch.entries.assign(pending.begin(),
                         pending.begin() + static_cast<std::ptrdiff_t>(n));
    pending.erase(pending.begin(),
                  pending.begin() + static_cast<std::ptrdiff_t>(n));
    pending_total_ -= n;
    batch.rto = opts_.initial_rto;
    const std::uint64_t key =
        dest_key(to, message_id_seq(batch.entries.front().id));
    for (const WireEntry& entry : batch.entries) {
      ack_index_[dest_key(to, message_id_seq(entry.id))] = key;
    }
    transmit(key, batch, /*is_retransmit=*/false, now);
    unacked_.emplace(key, std::move(batch));
  }
}

void PerfectLink::transmit(std::uint64_t key, OutgoingBatch& batch,
                           bool is_retransmit,
                           std::chrono::steady_clock::time_point now) {
  Packet packet;
  packet.kind = PacketKind::kData;
  packet.sender = self_;
  packet.entries = batch.entries;
  transport_->send(batch.to, encode_packet(packet));
  ++stats_.packets_sent;
  if (is_retransmit) ++stats_.packets_retransmitted;
  wheel_.schedule(key, now + batch.rto);
}

void PerfectLink::tick(std::chrono::steady_clock::time_point now) {
  fired_.clear();
  wheel_.advance(now, fired_);
  for (const std::uint64_t key : fired_) {
    auto it = unacked_.find(key);
    if (it == unacked_.end()) continue;  // retired between schedule and fire
    OutgoingBatch& batch = it->second;
    batch.rto = std::min(batch.rto * 2, opts_.max_rto);
    transmit(key, batch, /*is_retransmit=*/true, now);
  }
}

void PerfectLink::poll(std::vector<ReceivedMessage>& out) {
  Datagram datagram;
  Packet packet;
  while (transport_->try_receive(datagram)) {
    if (!decode_packet(datagram.bytes, packet)) continue;
    // The authenticated transmitter is datagram.from (resolved by the
    // transport from the socket source address); the header's sender field is
    // advisory and ignored when they disagree.
    const std::uint32_t from = datagram.from;
    if (packet.kind == PacketKind::kAck) {
      for (const std::uint64_t id : packet.acks) {
        // Acks only retire traffic this link actually sent to `from`;
        // dest_key routes straight to the owning batch (duplicate acks miss
        // the index and fall through harmlessly).
        const auto idx = ack_index_.find(dest_key(from, message_id_seq(id)));
        if (idx == ack_index_.end()) continue;
        const std::uint64_t batch_key = idx->second;
        auto bit = unacked_.find(batch_key);
        if (bit == unacked_.end()) continue;
        OutgoingBatch& batch = bit->second;
        auto it = std::find_if(batch.entries.begin(), batch.entries.end(),
                               [id](const WireEntry& e) { return e.id == id; });
        if (it == batch.entries.end()) continue;
        batch.entries.erase(it);
        ack_index_.erase(idx);
        ++stats_.packets_acked;
        if (batch.entries.empty()) {
          wheel_.cancel(batch_key);
          unacked_.erase(bit);
        }
      }
      continue;
    }
    PeerIn& in = inbound_[from];
    auto& owed = acks_owed_[from];
    for (const WireEntry& entry : packet.entries) {
      // Ack every copy, including duplicates: the ack for the first copy may
      // itself have been lost, and only a fresh ack stops the retransmits.
      owed.push_back(entry.id);
      const std::uint32_t seq = message_id_seq(entry.id);
      if (seq < in.next_seq || in.seen_ahead.contains(seq)) {
        ++stats_.duplicates_dropped;
        continue;
      }
      in.seen_ahead.insert(seq);
      in.reorder.emplace(seq, entry.payload);
    }
    // Release the contiguous prefix in per-sender FIFO order.
    while (true) {
      auto it = in.reorder.find(in.next_seq);
      if (it == in.reorder.end()) break;
      out.push_back(ReceivedMessage{from, std::move(it->second)});
      in.seen_ahead.erase(in.next_seq);
      in.reorder.erase(it);
      ++in.next_seq;
    }
  }
  send_acks();
}

LinkState PerfectLink::export_state() const {
  LinkState state;
  state.out_next_seq.assign(out_seq_.begin(), out_seq_.end());
  std::sort(state.out_next_seq.begin(), state.out_next_seq.end());
  state.in_next_seq.reserve(inbound_.size());
  for (const auto& [peer, in] : inbound_) {
    state.in_next_seq.emplace_back(peer, in.next_seq);
  }
  std::sort(state.in_next_seq.begin(), state.in_next_seq.end());
  return state;
}

void PerfectLink::restore_state(const LinkState& state) {
  for (const auto& [peer, seq] : state.out_next_seq) out_seq_[peer] = seq;
  for (const auto& [peer, seq] : state.in_next_seq) {
    inbound_[peer].next_seq = seq;
  }
}

void PerfectLink::send_acks() {
  for (auto& [to, ids] : acks_owed_) {
    std::size_t i = 0;
    while (i < ids.size()) {
      Packet packet;
      packet.kind = PacketKind::kAck;
      packet.sender = self_;
      const std::size_t n = std::min(ids.size() - i, kMaxAcksPerPacket);
      packet.acks.assign(ids.begin() + static_cast<std::ptrdiff_t>(i),
                         ids.begin() + static_cast<std::ptrdiff_t>(i + n));
      transport_->send(to, encode_packet(packet));
      i += n;
    }
    ids.clear();
  }
}

}  // namespace rbcast
