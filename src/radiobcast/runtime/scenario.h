#pragma once
// Scenario files: the shared ground truth a runtime deployment launches from.
//
// The orchestrator and every radiobcast-node process read the same scenario
// file, so they agree on topology, protocol, fault placement, and timing
// without any runtime negotiation. The format is a line-based `key value`
// text file (order-insensitive, `#` comments, one `fault x y` line per
// faulty node), chosen over JSON so a scenario can be written by hand in a
// CI yaml block or a shell heredoc.
//
//   protocol bv-2hop          adversary silent
//   width 8                   height 8
//   r 1                       metric linf
//   t 1                       value 1
//   source 0 0                seed 42
//   crash_round 1             max_rounds 0
//   round_timeout_ms 5000     linger_timeout_ms 2000
//   base_port 47000
//   fault 3 3
//   fault 6 1

#include <iosfwd>
#include <string>
#include <vector>

#include "radiobcast/core/simulation.h"
#include "radiobcast/fault/fault_set.h"

namespace rbcast {

struct Scenario {
  SimConfig sim;
  /// Faulty node coordinates (canonicalized at parse time).
  std::vector<Coord> faults;
  /// Node i binds loopback port base_port + i (process mode). The in-process
  /// harness ignores this and uses ephemeral ports.
  std::uint16_t base_port = 47000;
  std::int64_t round_timeout_ms = 5000;
  std::int64_t linger_timeout_ms = 2000;

  /// Rebuilds the FaultSet on the scenario's torus.
  FaultSet fault_set() const;
};

/// Parses a scenario from text. Throws std::invalid_argument with a
/// line-numbered message on unknown keys or malformed values.
Scenario parse_scenario(std::istream& in);
Scenario parse_scenario_string(const std::string& text);

/// Loads from a file. Throws std::runtime_error if unreadable.
Scenario load_scenario(const std::string& path);

/// Serializes a scenario in the format parse_scenario reads
/// (round-tripping: parse(write(s)) == s for every representable field).
void write_scenario(std::ostream& out, const Scenario& scenario);

}  // namespace rbcast
