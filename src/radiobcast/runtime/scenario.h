#pragma once
// Scenario files: the shared ground truth a runtime deployment launches from.
//
// The orchestrator and every radiobcast-node process read the same scenario
// file, so they agree on topology, protocol, fault placement, and timing
// without any runtime negotiation. The format is a line-based `key value`
// text file (order-insensitive, `#` comments, one `fault x y` line per
// faulty node), chosen over JSON so a scenario can be written by hand in a
// CI yaml block or a shell heredoc.
//
//   protocol bv-2hop          adversary silent
//   width 8                   height 8
//   r 1                       metric linf
//   t 1                       value 1
//   source 0 0                seed 42
//   crash_round 1             max_rounds 0
//   round_timeout_ms 5000     linger_timeout_ms 2000
//   base_port 47000           suspect_after 2
//   fault 3 3
//   fault 6 1
//
// Chaos section (all optional; datagram-level fault injection, applied by
// ChaosTransport on every node's outgoing traffic — docs/RUNTIME.md):
//
//   loss_p 0.1                # message-level loss, the simulator's knob
//   chaos_drop_p 0.05         # datagram drop (masked by retransmission)
//   chaos_dup_p 0.05          # datagram duplication
//   chaos_delay_p 0.1         # datagram delay probability ...
//   chaos_delay_ms 20         # ... and duration
//   chaos_seed 7              # 0 / absent = derived from seed
//   partition 0 0 1 0 0 500   # from x y, to x y, [start_ms end_ms)
//   crash_node 2 2            # this node crashes after finishing ...
//   crash_at_round 3          # ... round 3, and
//   restart_after_ms 100      # restarts from its snapshot (-1 = stays dead)
//   state_dir out             # snapshot directory (process mode default: out)
//   backend epoll             # node idle strategy: poll (default) or epoll
//   shared_socket 1           # in-process: one SwarmHub socket for all nodes
//
// Every scalar key may appear at most once; `fault` and `partition` repeat.

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "radiobcast/core/simulation.h"
#include "radiobcast/fault/fault_set.h"
#include "radiobcast/runtime/transport.h"

namespace rbcast {

/// The scenario's datagram-level chaos section (coordinates canonicalized at
/// parse time; converted to per-node ChaosOptions by make_chaos_options).
struct ScenarioChaos {
  double drop_p = 0.0;
  double duplicate_p = 0.0;
  double delay_p = 0.0;
  std::int64_t delay_ms = 0;
  /// 0 = derive from sim.seed (hash-split so chaos and protocol streams
  /// never correlate).
  std::uint64_t seed = 0;
  struct Partition {
    Coord from{};
    Coord to{};
    std::int64_t start_ms = 0;
    std::int64_t end_ms = -1;  // -1 = forever
  };
  std::vector<Partition> partitions;

  bool enabled() const {
    return drop_p > 0.0 || duplicate_p > 0.0 || delay_p > 0.0 ||
           !partitions.empty();
  }
};

struct Scenario {
  SimConfig sim;
  /// Faulty node coordinates (canonicalized at parse time).
  std::vector<Coord> faults;
  /// Node i binds loopback port base_port + i (process mode). The in-process
  /// harness ignores this and uses ephemeral ports.
  std::uint16_t base_port = 47000;
  std::int64_t round_timeout_ms = 5000;
  std::int64_t linger_timeout_ms = 2000;
  /// Consecutive timed-out rounds before a silent peer is suspected
  /// (RoundSynchronizer::Options::suspect_after); 0 disables suspicion.
  std::int64_t suspect_after = 2;
  /// Datagram-level fault injection (ChaosTransport).
  ScenarioChaos chaos;
  /// Process-crash injection: the node at crash_node _exits right after
  /// finishing round crash_at_round; restart_after_ms >= 0 relaunches it
  /// from its snapshot after that many milliseconds (-1 = stays dead).
  std::optional<Coord> crash_node;
  std::int64_t crash_at_round = 0;
  std::int64_t restart_after_ms = -1;
  /// Where per-node state snapshots live ("" = no snapshots in thread mode;
  /// process mode defaults to the verdict directory).
  std::string state_dir;
  /// How nodes idle between barrier checks: kPoll (fixed 50 us cadence, the
  /// reference backend) or kEpoll (readiness-driven, runtime/event_loop.h).
  RuntimeBackend backend = RuntimeBackend::kPoll;
  /// In-process deployments only: multiplex every node onto one SwarmHub
  /// socket (runtime/swarm.h) instead of one UDP socket per node, so a
  /// 256-node swarm costs one fd. Ignored in process mode.
  bool shared_socket = false;

  /// Rebuilds the FaultSet on the scenario's torus.
  FaultSet fault_set() const;

  /// The effective chaos seed (chaos.seed, or a hash-split of sim.seed).
  std::uint64_t chaos_seed() const;
};

/// Converts the scenario's chaos section into node `index`'s ChaosOptions
/// (partition coords resolved to indices). Returns disabled options when the
/// scenario has no chaos section.
ChaosOptions make_chaos_options(const Scenario& scenario, std::int32_t index);

/// Parses a scenario from text. Throws std::invalid_argument with a
/// line-numbered message on unknown keys or malformed values.
Scenario parse_scenario(std::istream& in);
Scenario parse_scenario_string(const std::string& text);

/// Loads from a file. Throws std::runtime_error if unreadable.
Scenario load_scenario(const std::string& path);

/// Serializes a scenario in the format parse_scenario reads
/// (round-tripping: parse(write(s)) == s for every representable field).
void write_scenario(std::ostream& out, const Scenario& scenario);

}  // namespace rbcast
