#include "radiobcast/runtime/harness.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "radiobcast/runtime/swarm.h"

namespace rbcast {

RuntimeNode::Options node_options(const Scenario& scenario,
                                  std::int32_t index) {
  const Torus torus(scenario.sim.width, scenario.sim.height);
  const Coord self = torus.coord(index);
  const Coord source = torus.wrap(scenario.sim.source);
  const FaultSet faults = scenario.fault_set();
  RuntimeNode::Options opts;
  opts.sim = scenario.sim;
  opts.self = self;
  opts.role = self == source          ? NodeRole::kSource
              : faults.contains(self) ? NodeRole::kFaulty
                                      : NodeRole::kHonest;
  opts.max_rounds = scenario.sim.max_rounds;
  opts.backend = scenario.backend;
  opts.round_timeout = std::chrono::milliseconds(scenario.round_timeout_ms);
  opts.linger_timeout = std::chrono::milliseconds(scenario.linger_timeout_ms);
  opts.suspect_after = static_cast<int>(scenario.suspect_after);
  if (scenario.sim.adversary == AdversaryKind::kJamming) {
    opts.jammers = scenario.faults;
  }
  if (scenario.crash_node && *scenario.crash_node == self) {
    opts.crash_at_round = scenario.crash_at_round;
  }
  if (!scenario.state_dir.empty()) {
    opts.snapshot_path =
        scenario.state_dir + "/state-" + std::to_string(index) + ".txt";
  }
  return opts;
}

RuntimeResult score_verdicts(const Scenario& scenario,
                             std::vector<RuntimeVerdict> verdicts) {
  const Torus torus(scenario.sim.width, scenario.sim.height);
  const std::int64_t n = torus.node_count();
  if (static_cast<std::int64_t>(verdicts.size()) != n) {
    throw std::invalid_argument("score_verdicts: expected " +
                                std::to_string(n) + " verdicts, got " +
                                std::to_string(verdicts.size()));
  }
  std::sort(verdicts.begin(), verdicts.end(),
            [](const RuntimeVerdict& a, const RuntimeVerdict& b) {
              return a.index < b.index;
            });
  for (std::int64_t i = 0; i < n; ++i) {
    if (verdicts[static_cast<std::size_t>(i)].index != i) {
      throw std::invalid_argument(
          "score_verdicts: missing or duplicate verdict for node " +
          std::to_string(i));
    }
  }
  RuntimeResult result;
  for (const RuntimeVerdict& v : verdicts) {
    result.rounds = std::max(result.rounds, v.rounds);
    result.any_interrupted = result.any_interrupted || v.interrupted;
    result.crashed_nodes += v.crashed ? 1 : 0;
    result.counters.merge(v.counters);
    if (v.role != NodeRole::kHonest) continue;
    result.honest_nodes += 1;
    if (!v.committed.has_value()) {
      result.undecided += 1;
      if (v.crashed) result.crashed_undecided += 1;
    } else if (*v.committed == scenario.sim.value) {
      result.correct_commits += 1;
    } else {
      result.wrong_commits += 1;
    }
  }
  for (const RuntimeVerdict& v : verdicts) {
    result.round_latency.merge(v.round_latency);
    result.commit_latency.merge(v.commit_latency);
  }
  result.verdicts = std::move(verdicts);
  return result;
}

RuntimeResult run_scenario_threads(
    const Scenario& scenario,
    const std::function<void(RuntimeNode::Options&)>& tweak) {
  const Torus torus(scenario.sim.width, scenario.sim.height);
  const std::int64_t n = torus.node_count();
  // Pre-warm the process-wide geometry caches on this thread: the
  // NeighborhoodTable cache is populated lazily without synchronization, so
  // it must be resolved before node threads race into it.
  const NeighborhoodTable& table =
      NeighborhoodTable::get(scenario.sim.r, scenario.sim.metric);
  (void)Adjacency::get(torus, table);

  // Bind every socket first (ephemeral ports), then tell everyone about
  // everyone: the peer table must be complete before any node transmits.
  // shared_socket collapses the whole deployment onto one SwarmHub socket
  // (runtime/swarm.h) so a swarm-sized n costs one fd instead of n.
  std::unique_ptr<SwarmHub> hub;
  std::vector<std::unique_ptr<Transport>> transports;
  transports.reserve(static_cast<std::size_t>(n));
  if (scenario.shared_socket) {
    hub = std::make_unique<SwarmHub>(static_cast<std::uint32_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      transports.push_back(hub->transport(static_cast<std::uint32_t>(i)));
    }
  } else {
    std::vector<UdpTransport*> udp;
    std::vector<std::uint16_t> ports;
    udp.reserve(static_cast<std::size_t>(n));
    ports.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      auto t = std::make_unique<UdpTransport>(0);
      udp.push_back(t.get());
      ports.push_back(t->local_port());
      transports.push_back(std::move(t));
    }
    for (UdpTransport* t : udp) t->set_peers(ports);
  }

  // Chaos wrappers are per-node and live outside the restart loop, so a
  // restarted node keeps the same datagram-fate stream and cumulative stats.
  std::vector<std::unique_ptr<ChaosTransport>> chaos;
  if (scenario.chaos.enabled()) {
    chaos.reserve(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      chaos.push_back(std::make_unique<ChaosTransport>(
          static_cast<std::uint32_t>(i), *transports[static_cast<std::size_t>(i)],
          make_chaos_options(scenario, static_cast<std::int32_t>(i))));
    }
  }

  std::vector<RuntimeVerdict> verdicts(static_cast<std::size_t>(n));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  std::mutex error_mutex;
  std::exception_ptr first_error;
  for (std::int64_t i = 0; i < n; ++i) {
    threads.emplace_back([&, i] {
      const auto idx = static_cast<std::size_t>(i);
      try {
        RuntimeNode::Options opts =
            node_options(scenario, static_cast<std::int32_t>(i));
        if (tweak) tweak(opts);
        Transport& transport =
            chaos.empty() ? static_cast<Transport&>(*transports[idx])
                          : static_cast<Transport&>(*chaos[idx]);
        const bool can_restart =
            scenario.restart_after_ms >= 0 && !opts.snapshot_path.empty();
        for (;;) {
          RuntimeNode node(opts, transport);
          verdicts[idx] = node.run();
          if (!verdicts[idx].crashed || !can_restart) break;
          // Crash/restart recovery: relaunch this node from its snapshot.
          // The UDP socket stays bound, so peers keep retransmitting into it
          // while the node is "down" — strictly more benign than process
          // mode, which is fine for a convergence test.
          std::this_thread::sleep_for(
              std::chrono::milliseconds(scenario.restart_after_ms));
          opts.resume = true;
          opts.crash_at_round = -1;
        }
        if (!chaos.empty()) {
          const ChaosStats& st = chaos[idx]->stats();
          verdicts[idx].counters.chaos_drops = st.drops;
          verdicts[idx].counters.chaos_duplicates = st.duplicates;
          verdicts[idx].counters.chaos_delays = st.delays;
          verdicts[idx].counters.chaos_partition_drops = st.partition_drops;
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return score_verdicts(scenario, std::move(verdicts));
}

namespace {

const char* role_name(NodeRole role) {
  switch (role) {
    case NodeRole::kSource: return "source";
    case NodeRole::kHonest: return "honest";
    case NodeRole::kFaulty: return "faulty";
  }
  return "?";
}

}  // namespace

void write_verdict(std::ostream& out, const RuntimeVerdict& v) {
  out << "index " << v.index << '\n'
      << "self " << v.self.x << ' ' << v.self.y << '\n'
      << "role " << role_name(v.role) << '\n'
      << "committed " << (v.committed ? static_cast<int>(*v.committed) : -1)
      << '\n'
      << "commit_round " << v.commit_round << '\n'
      << "rounds " << v.rounds << '\n'
      << "lingered_clean " << (v.lingered_clean ? 1 : 0) << '\n'
      << "interrupted " << (v.interrupted ? 1 : 0) << '\n'
      << "crashed " << (v.crashed ? 1 : 0) << '\n'
      << "commits " << v.counters.commits << '\n'
      << "broadcasts_queued " << v.counters.broadcasts_queued << '\n'
      << "envelopes_delivered " << v.counters.envelopes_delivered << '\n'
      << "envelopes_dropped " << v.counters.envelopes_dropped << '\n'
      << "packets_sent " << v.counters.packets_sent << '\n'
      << "packets_retransmitted " << v.counters.packets_retransmitted << '\n'
      << "packets_acked " << v.counters.packets_acked << '\n'
      << "duplicates_dropped " << v.counters.duplicates_dropped << '\n'
      << "barrier_timeouts " << v.counters.barrier_timeouts << '\n'
      << "barrier_wait_us " << v.counters.barrier_wait_us << '\n'
      << "chaos_drops " << v.counters.chaos_drops << '\n'
      << "chaos_delays " << v.counters.chaos_delays << '\n'
      << "chaos_duplicates " << v.counters.chaos_duplicates << '\n'
      << "chaos_partition_drops " << v.counters.chaos_partition_drops << '\n'
      << "node_restarts " << v.counters.node_restarts << '\n'
      << "peers_suspected " << v.counters.peers_suspected << '\n'
      << "degraded_rounds " << v.counters.degraded_rounds << '\n'
      << "last_commit_round " << v.counters.last_commit_round << '\n'
      << "round_latency_hist " << v.round_latency.serialize() << '\n'
      << "commit_latency_hist " << v.commit_latency.serialize() << '\n';
}

void write_verdict_core(std::ostream& out, const RuntimeVerdict& v) {
  out << "index " << v.index << '\n'
      << "self " << v.self.x << ' ' << v.self.y << '\n'
      << "role " << role_name(v.role) << '\n'
      << "committed " << (v.committed ? static_cast<int>(*v.committed) : -1)
      << '\n'
      << "commit_round " << v.commit_round << '\n'
      << "rounds " << v.rounds << '\n'
      << "crashed " << (v.crashed ? 1 : 0) << '\n'
      << "commits " << v.counters.commits << '\n'
      << "broadcasts_queued " << v.counters.broadcasts_queued << '\n'
      << "committed_queued " << v.counters.committed_queued << '\n'
      << "heard_queued " << v.counters.heard_queued << '\n'
      << "envelopes_delivered " << v.counters.envelopes_delivered << '\n'
      << "envelopes_dropped " << v.counters.envelopes_dropped << '\n'
      << "last_commit_round " << v.counters.last_commit_round << '\n';
}

RuntimeVerdict parse_verdict(std::istream& in) {
  RuntimeVerdict v;
  std::string line;
  bool saw_index = false;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    const auto want_i64 = [&](std::int64_t& out) {
      if (!(ls >> out)) {
        throw std::invalid_argument("verdict: bad value for '" + key + "'");
      }
    };
    std::int64_t x = 0;
    if (key == "index") {
      want_i64(x);
      v.index = static_cast<std::int32_t>(x);
      saw_index = true;
    } else if (key == "self") {
      want_i64(x);
      v.self.x = static_cast<std::int32_t>(x);
      want_i64(x);
      v.self.y = static_cast<std::int32_t>(x);
    } else if (key == "role") {
      std::string name;
      ls >> name;
      if (name == "source") {
        v.role = NodeRole::kSource;
      } else if (name == "honest") {
        v.role = NodeRole::kHonest;
      } else if (name == "faulty") {
        v.role = NodeRole::kFaulty;
      } else {
        throw std::invalid_argument("verdict: unknown role '" + name + "'");
      }
    } else if (key == "committed") {
      want_i64(x);
      if (x >= 0) v.committed = static_cast<std::uint8_t>(x);
    } else if (key == "commit_round") {
      want_i64(v.commit_round);
    } else if (key == "rounds") {
      want_i64(v.rounds);
    } else if (key == "lingered_clean") {
      want_i64(x);
      v.lingered_clean = x != 0;
    } else if (key == "interrupted") {
      want_i64(x);
      v.interrupted = x != 0;
    } else if (key == "crashed") {
      want_i64(x);
      v.crashed = x != 0;
    } else if (key == "commits") {
      want_i64(x);
      v.counters.commits = static_cast<std::uint64_t>(x);
    } else if (key == "broadcasts_queued") {
      want_i64(x);
      v.counters.broadcasts_queued = static_cast<std::uint64_t>(x);
    } else if (key == "envelopes_delivered") {
      want_i64(x);
      v.counters.envelopes_delivered = static_cast<std::uint64_t>(x);
    } else if (key == "envelopes_dropped") {
      want_i64(x);
      v.counters.envelopes_dropped = static_cast<std::uint64_t>(x);
    } else if (key == "packets_sent") {
      want_i64(x);
      v.counters.packets_sent = static_cast<std::uint64_t>(x);
    } else if (key == "packets_retransmitted") {
      want_i64(x);
      v.counters.packets_retransmitted = static_cast<std::uint64_t>(x);
    } else if (key == "packets_acked") {
      want_i64(x);
      v.counters.packets_acked = static_cast<std::uint64_t>(x);
    } else if (key == "duplicates_dropped") {
      want_i64(x);
      v.counters.duplicates_dropped = static_cast<std::uint64_t>(x);
    } else if (key == "barrier_timeouts") {
      want_i64(x);
      v.counters.barrier_timeouts = static_cast<std::uint64_t>(x);
    } else if (key == "barrier_wait_us") {
      want_i64(x);
      v.counters.barrier_wait_us = static_cast<std::uint64_t>(x);
    } else if (key == "chaos_drops") {
      want_i64(x);
      v.counters.chaos_drops = static_cast<std::uint64_t>(x);
    } else if (key == "chaos_delays") {
      want_i64(x);
      v.counters.chaos_delays = static_cast<std::uint64_t>(x);
    } else if (key == "chaos_duplicates") {
      want_i64(x);
      v.counters.chaos_duplicates = static_cast<std::uint64_t>(x);
    } else if (key == "chaos_partition_drops") {
      want_i64(x);
      v.counters.chaos_partition_drops = static_cast<std::uint64_t>(x);
    } else if (key == "node_restarts") {
      want_i64(x);
      v.counters.node_restarts = static_cast<std::uint64_t>(x);
    } else if (key == "peers_suspected") {
      want_i64(x);
      v.counters.peers_suspected = static_cast<std::uint64_t>(x);
    } else if (key == "degraded_rounds") {
      want_i64(x);
      v.counters.degraded_rounds = static_cast<std::uint64_t>(x);
    } else if (key == "last_commit_round") {
      want_i64(v.counters.last_commit_round);
    } else if (key == "round_latency_hist" || key == "commit_latency_hist") {
      std::string rest;
      std::getline(ls, rest);
      LatencyHistogram& h = key[0] == 'r' ? v.round_latency : v.commit_latency;
      try {
        h = LatencyHistogram::deserialize(rest);
      } catch (const std::invalid_argument& e) {
        throw std::invalid_argument("verdict: bad value for '" + key +
                                    "': " + e.what());
      }
    } else {
      throw std::invalid_argument("verdict: unknown key '" + key + "'");
    }
  }
  if (!saw_index) throw std::invalid_argument("verdict: missing index");
  return v;
}

}  // namespace rbcast
