#include "radiobcast/runtime/node.h"

#include <stdexcept>
#include <thread>
#include <utility>

namespace rbcast {

namespace {

std::vector<std::uint32_t> neighbor_indices(const Adjacency& adjacency,
                                            std::int32_t self_index) {
  std::vector<std::uint32_t> out;
  const auto receivers = adjacency.receivers(self_index);
  out.reserve(receivers.size());
  // On a torus the radio graph is symmetric: the nodes hearing me are the
  // nodes I hear, so my barrier peers are exactly my CSR receivers.
  for (const std::int32_t r : receivers) {
    out.push_back(static_cast<std::uint32_t>(r));
  }
  return out;
}

const Adjacency& adjacency_for(const Torus& torus, const SimConfig& sim) {
  return Adjacency::get(torus, NeighborhoodTable::get(sim.r, sim.metric));
}

void validate(const RuntimeNode::Options& opts) {
  if (opts.sim.loss_p != 0.0) {
    throw std::invalid_argument("runtime: loss_p must be 0 (perfect links)");
  }
  if (opts.sim.retransmissions != 1) {
    throw std::invalid_argument(
        "runtime: retransmissions are a link-layer concern here; set 1");
  }
  if (opts.sim.adversary == AdversaryKind::kSpoofing ||
      opts.sim.adversary == AdversaryKind::kJamming) {
    throw std::invalid_argument(
        "runtime: spoofing/jamming adversaries live in the simulated "
        "channel and have no socket analogue");
  }
}

}  // namespace

RuntimeNode::RuntimeNode(Options opts, Transport& transport)
    : opts_((validate(opts), std::move(opts))),
      torus_(opts_.sim.width, opts_.sim.height),
      self_index_(torus_.index(torus_.wrap(opts_.self))),
      // Per-node generator: the simulator's single shared stream cannot be
      // replicated across processes, and no shipped behavior draws from it;
      // hash_seeds keeps distinct nodes decorrelated.
      rng_(hash_seeds(opts_.sim.seed,
                      static_cast<std::uint64_t>(self_index_))),
      link_(static_cast<std::uint32_t>(self_index_), transport, opts_.link),
      broadcast_(link_, adjacency_for(torus_, opts_.sim), self_index_),
      sync_(neighbor_indices(adjacency_for(torus_, opts_.sim), self_index_),
            RoundSynchronizer::Options{opts_.round_timeout}) {
  opts_.self = torus_.wrap(opts_.self);
}

void RuntimeNode::record_commit(Coord node, std::uint8_t value) {
  counters_.commits += 1;
  if (round_ > counters_.last_commit_round) {
    counters_.last_commit_round = round_;
  }
  if (opts_.trace != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kNodeCommitted;
    e.round = round_;
    e.node = torus_.wrap(node);
    e.value = value;
    opts_.trace->record(e);
  }
}

void RuntimeNode::queue_broadcast(Coord sender, Message msg) {
  (void)sender;  // always this node; identity is enforced by the socket layer
  counters_.broadcasts_queued += 1;
  if (msg.type == MsgType::kCommitted) {
    counters_.committed_queued += 1;
  } else {
    counters_.heard_queued += 1;
  }
  outbox_.push_back(std::move(msg));
}

void RuntimeNode::queue_spoofed_broadcast(Coord, Coord, Message) {
  throw std::logic_error(
      "address spoofing is impossible in the networked runtime: datagram "
      "origin is resolved from the socket source address");
}

void RuntimeNode::pump() {
  rx_buffer_.clear();
  link_.poll(rx_buffer_);
  for (const ReceivedMessage& rm : rx_buffer_) {
    sync_.on_message(rm.from, rm.msg);
  }
  link_.tick(std::chrono::steady_clock::now());
}

void RuntimeNode::finish_round(std::int64_t k) {
  for (const Message& msg : outbox_) {
    WireMessage wm;
    wm.kind = WireKind::kProtocol;
    wm.round = k;
    wm.msg = msg;
    broadcast_.broadcast(wm);
  }
  WireMessage marker;
  marker.kind = WireKind::kRoundDone;
  marker.round = k;
  marker.done_count = static_cast<std::uint32_t>(outbox_.size());
  broadcast_.broadcast(marker);
  outbox_.clear();
  link_.flush();
}

RuntimeVerdict RuntimeNode::run() {
  using clock = std::chrono::steady_clock;
  behavior_ = opts_.behavior_factory
                  ? opts_.behavior_factory(opts_.sim, torus_, opts_.role)
                  : make_node_behavior(opts_.sim, torus_, opts_.role);
  RuntimeVerdict verdict;
  verdict.index = self_index_;
  verdict.self = opts_.self;
  verdict.role = opts_.role;

  NodeContext ctx(*this, opts_.self);
  round_ = 0;
  behavior_->on_start(ctx);
  finish_round(0);

  const std::int64_t bound = opts_.max_rounds > 0
                                 ? opts_.max_rounds
                                 : default_round_bound(opts_.sim);
  std::int64_t rounds_run = 0;
  for (std::int64_t k = 1; k <= bound; ++k) {
    // Barrier: wait until every neighbor's round-(k-1) traffic is in.
    const auto wait_start = clock::now();
    sync_.begin_round(k - 1, wait_start);
    while (!sync_.complete(k - 1)) {
      if (stop_requested()) {
        verdict.interrupted = true;
        break;
      }
      pump();
      if (sync_.timed_out(k - 1, clock::now())) break;
      // The poll cadence bounds added latency per round; 50us keeps a
      // loopback torus running thousands of rounds per second while staying
      // polite to the scheduler.
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    counters_.barrier_wait_us += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                              wait_start)
            .count());
    if (verdict.interrupted) break;

    round_ = k;
    if (opts_.trace != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kRoundStarted;
      e.round = k;
      opts_.trace->record(e);
    }
    // Deliver round k-1's traffic in the simulator's TDMA order.
    for (const RoundMessage& rm : sync_.take(k - 1)) {
      const Coord sender =
          torus_.coord(static_cast<std::int32_t>(rm.sender));
      counters_.envelopes_delivered += 1;
      if (opts_.trace != nullptr) {
        TraceEvent e;
        e.kind = TraceEventKind::kMessageDelivered;
        e.round = k;
        e.node = opts_.self;
        e.sender = sender;
        e.origin = torus_.wrap(rm.msg.origin);
        e.value = rm.msg.value;
        e.msg_type = rm.msg.type == MsgType::kCommitted ? 0 : 1;
        opts_.trace->record(e);
      }
      behavior_->on_receive(ctx, Envelope{sender, rm.msg});
    }
    behavior_->on_round_end(ctx);
    finish_round(k);
    rounds_run = k;
  }

  // Linger: our last DATA batches may still be unacked, and peers may still
  // be retransmitting at us. Keep the link alive until everything we sent
  // landed (or the deadline passes), so no peer barrier-waits on a ghost.
  const auto linger_deadline = clock::now() + opts_.linger_timeout;
  while (!link_.all_acked() && clock::now() < linger_deadline &&
         !stop_requested()) {
    pump();
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  verdict.lingered_clean = link_.all_acked();

  verdict.rounds = rounds_run;
  if (const auto v = behavior_->committed_value(); v.has_value()) {
    verdict.committed = v;
    verdict.commit_round = behavior_->commit_round().value_or(-1);
  }
  counters_.packets_sent = link_.stats().packets_sent;
  counters_.packets_retransmitted = link_.stats().packets_retransmitted;
  counters_.packets_acked = link_.stats().packets_acked;
  counters_.duplicates_dropped = link_.stats().duplicates_dropped;
  counters_.barrier_timeouts = sync_.timeouts();
  verdict.counters = counters_;
  return verdict;
}

}  // namespace rbcast
