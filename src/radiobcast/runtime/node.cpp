#include "radiobcast/runtime/node.h"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "radiobcast/net/channel.h"

namespace rbcast {

namespace {

std::vector<std::uint32_t> neighbor_indices(const Adjacency& adjacency,
                                            std::int32_t self_index) {
  std::vector<std::uint32_t> out;
  const auto receivers = adjacency.receivers(self_index);
  out.reserve(receivers.size());
  // On a torus the radio graph is symmetric: the nodes hearing me are the
  // nodes I hear, so my barrier peers are exactly my CSR receivers.
  for (const std::int32_t r : receivers) {
    out.push_back(static_cast<std::uint32_t>(r));
  }
  return out;
}

const Adjacency& adjacency_for(const Torus& torus, const SimConfig& sim) {
  return Adjacency::get(torus, NeighborhoodTable::get(sim.r, sim.metric));
}

void validate(const RuntimeNode::Options& opts) {
  if (!(opts.sim.loss_p >= 0.0 && opts.sim.loss_p <= 1.0)) {
    throw std::invalid_argument("runtime: loss_p must be in [0,1]");
  }
  if (opts.sim.retransmissions != 1) {
    throw std::invalid_argument(
        "runtime: retransmissions are a link-layer concern here; set 1");
  }
  if (opts.sim.adversary == AdversaryKind::kSpoofing) {
    throw std::invalid_argument(
        "runtime: the spoofing adversary lives in the simulated channel "
        "and has no socket analogue (source-port identity)");
  }
  if (opts.sim.adversary == AdversaryKind::kJamming &&
      opts.sim.jam_budget > 0) {
    throw std::invalid_argument(
        "runtime: a bounded jamming budget is a globally ordered ledger no "
        "distributed node can replicate; use jam_budget -1 (unbounded) or 0");
  }
}

}  // namespace

RuntimeNode::RuntimeNode(Options opts, Transport& transport)
    : opts_((validate(opts), std::move(opts))),
      torus_(opts_.sim.width, opts_.sim.height),
      self_index_(torus_.index(torus_.wrap(opts_.self))),
      // Per-node generator: the simulator's single shared stream cannot be
      // replicated across processes, and no shipped behavior draws from it;
      // hash_seeds keeps distinct nodes decorrelated.
      rng_(hash_seeds(opts_.sim.seed,
                      static_cast<std::uint64_t>(self_index_))),
      transport_(&transport),
      link_(static_cast<std::uint32_t>(self_index_), transport, opts_.link),
      broadcast_(link_, adjacency_for(torus_, opts_.sim), self_index_),
      sync_(neighbor_indices(adjacency_for(torus_, opts_.sim), self_index_),
            RoundSynchronizer::Options{opts_.round_timeout,
                                       opts_.suspect_after}),
      adjacency_(&adjacency_for(torus_, opts_.sim)) {
  opts_.self = torus_.wrap(opts_.self);
  if (opts_.sim.adversary == AdversaryKind::kJamming) {
    // Unbounded jamming is a static geometric blackout: every receiver
    // within r of a jammer loses honest traffic (faulty transmissions are
    // never jammed — the adversary coordinates). A zero budget jams nothing,
    // exactly like the simulator's JammingChannel with budget 0.
    jam_active_ = opts_.sim.jam_budget < 0 &&
                  opts_.role != NodeRole::kFaulty && !opts_.jammers.empty();
    if (jam_active_) {
      jammed_receiver_.assign(
          static_cast<std::size_t>(torus_.node_count()), false);
      for (const std::int32_t receiver : adjacency_->receivers(self_index_)) {
        const Coord rc = torus_.coord(receiver);
        for (const Coord jammer : opts_.jammers) {
          if (torus_.within(torus_.wrap(jammer), rc, opts_.sim.r,
                            opts_.sim.metric)) {
            jammed_receiver_[static_cast<std::size_t>(receiver)] = true;
            break;
          }
        }
      }
    }
  } else if (opts_.sim.loss_p > 0.0) {
    // The runtime's loss channel: the simulator's PairwiseLossChannel
    // schedule, computed sender-side. Per-pair streams mean this node can
    // reproduce the simulator's exact per-(transmission, receiver) drop
    // decisions with no shared state — the equivalence argument of
    // docs/RUNTIME.md extended to lossy channels.
    loss_active_ = true;
    for (const std::int32_t receiver : adjacency_->receivers(self_index_)) {
      loss_.emplace(
          static_cast<std::uint32_t>(receiver),
          LossStream{Rng(pairwise_loss_seed(opts_.sim.seed, opts_.self,
                                            torus_.coord(receiver))),
                     0});
    }
  }
}

void RuntimeNode::record_commit(Coord node, std::uint8_t value) {
  counters_.commits += 1;
  commit_hist_.record_us(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - run_start_)
          .count()));
  if (round_ > counters_.last_commit_round) {
    counters_.last_commit_round = round_;
  }
  if (opts_.trace != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kNodeCommitted;
    e.round = round_;
    e.node = torus_.wrap(node);
    e.value = value;
    opts_.trace->record(e);
  }
}

void RuntimeNode::queue_broadcast(Coord sender, Message msg) {
  (void)sender;  // always this node; identity is enforced by the socket layer
  counters_.broadcasts_queued += 1;
  if (msg.type == MsgType::kCommitted) {
    counters_.committed_queued += 1;
  } else {
    counters_.heard_queued += 1;
  }
  outbox_.push_back(std::move(msg));
}

void RuntimeNode::queue_spoofed_broadcast(Coord, Coord, Message) {
  throw std::logic_error(
      "address spoofing is impossible in the networked runtime: datagram "
      "origin is resolved from the socket source address");
}

void RuntimeNode::pump() {
  rx_buffer_.clear();
  link_.poll(rx_buffer_);
  for (const ReceivedMessage& rm : rx_buffer_) {
    sync_.on_message(rm.from, rm.msg);
  }
  link_.tick(std::chrono::steady_clock::now());
}

void RuntimeNode::wait_for_traffic(
    std::chrono::steady_clock::time_point cap) {
  if (opts_.backend == RuntimeBackend::kPoll) {
    // The poll cadence bounds added latency per round; 50us keeps a loopback
    // torus running thousands of rounds per second while staying polite to
    // the scheduler.
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    return;
  }
  // Epoll backend: sleep until the socket has a readability edge or the
  // earliest deadline that demands action — a pending retransmission, or the
  // caller's cap (barrier timeout / stop probe / linger deadline).
  if (const auto d = link_.next_deadline(); d.has_value() && *d < cap) {
    cap = *d;
  }
  transport_->wait(cap);
}

bool RuntimeNode::suppressed(std::uint32_t receiver) {
  if (jam_active_) return jammed_receiver_[receiver];
  if (loss_active_) {
    LossStream& stream = loss_.find(receiver)->second;
    ++stream.draws;
    return stream.rng.chance(opts_.sim.loss_p);
  }
  return false;
}

void RuntimeNode::finish_round(std::int64_t k, std::int64_t bound) {
  // Final-round traffic is consumed by nobody: the highest barrier any node
  // runs is bound-1, so round-`bound` messages and markers would only sit
  // unacked while peers (whose own sends completed) exit and stop acking —
  // the one systematic way a clean deployment could burn its whole linger
  // timeout. Skip the transmissions (the simulator equally never delivers
  // round-`bound` broadcasts) but still run the loss/jam draws below: the
  // drop counters and the snapshot's loss-stream positions must keep
  // matching the simulator schedule draw-for-draw.
  const bool transmit = k < bound;
  if (!loss_active_ && !jam_active_) {
    if (!transmit) {
      outbox_.clear();
      if (!opts_.snapshot_path.empty()) write_state(k);
      return;
    }
    // Perfect channel: identical traffic to every receiver, one shared
    // marker count.
    for (const Message& msg : outbox_) {
      WireMessage wm;
      wm.kind = WireKind::kProtocol;
      wm.round = k;
      wm.msg = msg;
      broadcast_.broadcast(wm);
    }
    WireMessage marker;
    marker.kind = WireKind::kRoundDone;
    marker.round = k;
    marker.done_count = static_cast<std::uint32_t>(outbox_.size());
    broadcast_.broadcast(marker);
  } else {
    // Lossy/jammed channel: different receivers hear different subsets, so
    // each receiver gets its own marker counting exactly the messages it was
    // sent — FIFO then still guarantees marker ⇒ all counted messages in.
    // Suppression happens *above* the link (the link would mask socket-level
    // drops by retransmitting), which is what makes the schedule match the
    // simulator's channel semantics message-for-message. Markers themselves
    // are never suppressed: they are barrier scaffolding with no simulator
    // analogue.
    for (const std::int32_t r : adjacency_->receivers(self_index_)) {
      const std::uint32_t receiver = static_cast<std::uint32_t>(r);
      std::uint32_t sent = 0;
      for (const Message& msg : outbox_) {
        if (suppressed(receiver)) {
          ++counters_.envelopes_dropped;
          continue;
        }
        if (!transmit) continue;  // final round: draw, count, never send
        WireMessage wm;
        wm.kind = WireKind::kProtocol;
        wm.round = k;
        wm.msg = msg;
        link_.send(receiver, wm);
        ++sent;
      }
      if (!transmit) continue;
      WireMessage marker;
      marker.kind = WireKind::kRoundDone;
      marker.round = k;
      marker.done_count = sent;
      link_.send(receiver, marker);
    }
  }
  outbox_.clear();
  link_.flush();
  // Snapshot after flush: every sequence number the snapshot records has
  // been handed to the transport, so a restart never reuses a live id.
  if (!opts_.snapshot_path.empty()) write_state(k);
}

void RuntimeNode::write_state(std::int64_t k) {
  NodeSnapshot snap;
  snap.round = k;
  if (const auto v = behavior_->committed_value(); v.has_value()) {
    snap.committed = v;
    snap.commit_round = behavior_->commit_round().value_or(-1);
  } else if (restored_committed_.has_value()) {
    snap.committed = restored_committed_;
    snap.commit_round = restored_commit_round_;
  }
  snap.restarts = counters_.node_restarts;
  snap.link = link_.export_state();
  snap.loss_draws.reserve(loss_.size());
  for (const auto& [peer, stream] : loss_) {
    snap.loss_draws.emplace_back(peer, stream.draws);
  }
  std::sort(snap.loss_draws.begin(), snap.loss_draws.end());
  write_snapshot(opts_.snapshot_path, snap);
}

std::int64_t RuntimeNode::restore_state() {
  if (opts_.snapshot_path.empty()) return -1;
  const auto snap = load_snapshot(opts_.snapshot_path);
  if (!snap.has_value()) return -1;  // died before the first snapshot
  link_.restore_state(snap->link);
  // Fast-forward each pairwise loss stream to its recorded position so the
  // deterministic loss schedule continues where the crashed process left it.
  for (const auto& [peer, draws] : snap->loss_draws) {
    const auto it = loss_.find(peer);
    if (it == loss_.end()) continue;
    for (std::uint64_t i = 0; i < draws; ++i) {
      (void)it->second.rng.chance(opts_.sim.loss_p);
    }
    it->second.draws = draws;
  }
  restored_committed_ = snap->committed;
  restored_commit_round_ = snap->commit_round;
  counters_.node_restarts = snap->restarts + 1;
  return snap->round;
}

RuntimeVerdict RuntimeNode::run() {
  using clock = std::chrono::steady_clock;
  // Stop-probe cadence for the epoll backend: the longest a blocked node
  // goes without re-checking stop_requested() when nothing else wakes it.
  constexpr std::chrono::milliseconds kStopProbe(10);
  run_start_ = clock::now();
  behavior_ = opts_.behavior_factory
                  ? opts_.behavior_factory(opts_.sim, torus_, opts_.role)
                  : make_node_behavior(opts_.sim, torus_, opts_.role);
  RuntimeVerdict verdict;
  verdict.index = self_index_;
  verdict.self = opts_.self;
  verdict.role = opts_.role;

  NodeContext ctx(*this, opts_.self);
  // Crash recovery: a resumed node skips on_start (its round-0 traffic is
  // already out in the world under already-consumed sequence numbers) and
  // rejoins at the round after its last snapshot; peers' stubborn
  // retransmissions replay everything it missed while dead.
  const std::int64_t bound = opts_.max_rounds > 0
                                 ? opts_.max_rounds
                                 : default_round_bound(opts_.sim);
  const std::int64_t resumed_round = opts_.resume ? restore_state() : -1;
  std::int64_t first_round = 1;
  if (resumed_round < 0) {
    round_ = 0;
    behavior_->on_start(ctx);
    finish_round(0, bound);
    if (opts_.crash_at_round == 0) verdict.crashed = true;
  } else {
    round_ = resumed_round;
    first_round = resumed_round + 1;
  }
  std::int64_t rounds_run = std::max<std::int64_t>(resumed_round, 0);
  for (std::int64_t k = first_round; k <= bound && !verdict.crashed; ++k) {
    // Barrier: wait until every neighbor's round-(k-1) traffic is in.
    const auto wait_start = clock::now();
    sync_.begin_round(k - 1, wait_start);
    while (!sync_.complete(k - 1)) {
      if (stop_requested()) {
        verdict.interrupted = true;
        break;
      }
      pump();
      if (sync_.timed_out(k - 1, clock::now())) break;
      if (sync_.complete(k - 1)) break;
      auto cap = clock::now() + kStopProbe;
      if (const auto d = sync_.deadline(k - 1); d.has_value() && *d < cap) {
        cap = *d;
      }
      wait_for_traffic(cap);
    }
    counters_.barrier_wait_us += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                              wait_start)
            .count());
    if (verdict.interrupted) break;

    round_ = k;
    if (opts_.trace != nullptr) {
      TraceEvent e;
      e.kind = TraceEventKind::kRoundStarted;
      e.round = k;
      opts_.trace->record(e);
    }
    // Deliver round k-1's traffic in the simulator's TDMA order.
    for (const RoundMessage& rm : sync_.take(k - 1)) {
      const Coord sender =
          torus_.coord(static_cast<std::int32_t>(rm.sender));
      counters_.envelopes_delivered += 1;
      if (opts_.trace != nullptr) {
        TraceEvent e;
        e.kind = TraceEventKind::kMessageDelivered;
        e.round = k;
        e.node = opts_.self;
        e.sender = sender;
        e.origin = torus_.wrap(rm.msg.origin);
        e.value = rm.msg.value;
        e.msg_type = rm.msg.type == MsgType::kCommitted ? 0 : 1;
        opts_.trace->record(e);
      }
      behavior_->on_receive(ctx, Envelope{sender, rm.msg});
    }
    behavior_->on_round_end(ctx);
    finish_round(k, bound);
    round_hist_.record_us(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(clock::now() -
                                                              wait_start)
            .count()));
    rounds_run = k;
    // Crash injection fires right after the snapshot — the cleanest possible
    // crash point, so the test matrix exercises recovery rather than torn
    // state (torn-write recovery is snapshot_cpp's rename discipline).
    if (opts_.crash_at_round == k) verdict.crashed = true;
  }

  // Linger: our last DATA batches may still be unacked, and peers may still
  // be retransmitting at us. Keep the link alive until everything we sent
  // landed (or the deadline passes), so no peer barrier-waits on a ghost.
  // A crashed node does not linger — that is the point of the crash.
  if (!verdict.crashed) {
    const auto linger_deadline = clock::now() + opts_.linger_timeout;
    while (!link_.all_acked() && clock::now() < linger_deadline &&
           !stop_requested()) {
      pump();
      if (link_.all_acked()) break;
      wait_for_traffic(std::min(linger_deadline, clock::now() + kStopProbe));
    }
    verdict.lingered_clean = link_.all_acked();
  }

  verdict.rounds = rounds_run;
  if (const auto v = behavior_->committed_value(); v.has_value()) {
    verdict.committed = v;
    verdict.commit_round = behavior_->commit_round().value_or(-1);
  } else if (restored_committed_.has_value()) {
    // The pre-crash process had committed; the value survives via snapshot.
    verdict.committed = restored_committed_;
    verdict.commit_round = restored_commit_round_;
  }
  counters_.packets_sent = link_.stats().packets_sent;
  counters_.packets_retransmitted = link_.stats().packets_retransmitted;
  counters_.packets_acked = link_.stats().packets_acked;
  counters_.duplicates_dropped = link_.stats().duplicates_dropped;
  counters_.barrier_timeouts = sync_.timeouts();
  counters_.peers_suspected = sync_.suspect_transitions();
  counters_.degraded_rounds = sync_.degraded_rounds();
  verdict.counters = counters_;
  verdict.round_latency = round_hist_;
  verdict.commit_latency = commit_hist_;
  return verdict;
}

}  // namespace rbcast
