#pragma once
// Perfect point-to-point links over an unreliable datagram transport.
//
// Classic stubborn-link + dedup construction: every WireMessage gets a packed
// 64-bit id (sender index << 32 | per-link sequence number) and is
// retransmitted with exponential backoff until acked; receivers ack every
// copy, drop duplicates by id, and release messages to the application in
// per-sender FIFO order (a reorder buffer holds out-of-order arrivals until
// the sequence gap closes). Up to kMaxBatch messages ride in one DATA
// datagram and acks are batched likewise, so steady-state traffic is a small
// multiple of the application rate.
//
// Guarantees (proved under fault injection in tests/test_perfect_link.cpp):
// no loss (every sent message is eventually delivered while both ends keep
// polling), no duplication, per-sender FIFO delivery.

#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "radiobcast/runtime/event_loop.h"
#include "radiobcast/runtime/transport.h"
#include "radiobcast/runtime/wire.h"

namespace rbcast {

/// A message released by the link in per-sender FIFO order.
struct ReceivedMessage {
  std::uint32_t from = 0;
  WireMessage msg;
};

/// Link-level traffic statistics, mirrored into obs/ Counters by the runtime
/// node. Timing-dependent (unlike the simulator's counters): two identical
/// runs may retransmit differently.
struct LinkStats {
  std::uint64_t packets_sent = 0;            // DATA datagrams transmitted
  std::uint64_t packets_retransmitted = 0;   // of which were retransmissions
  std::uint64_t packets_acked = 0;           // message ids acked by peers
  std::uint64_t duplicates_dropped = 0;      // received copies already seen
};

/// The link's sequence-number state: everything a restarted process needs so
/// its fresh PerfectLink neither reuses an outgoing sequence number (which a
/// peer would dedup-drop as a stale id) nor re-accepts traffic it already
/// consumed (which would violate no-dup upstream). Captured at a quiescent
/// point — after flush(), with no batches in flight from this side — by the
/// crash-snapshot machinery (runtime/snapshot.h).
struct LinkState {
  /// (peer, next outgoing sequence number), sorted by peer.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> out_next_seq;
  /// (peer, next inbound sequence number not yet consumed), sorted by peer.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> in_next_seq;

  friend bool operator==(const LinkState&, const LinkState&) = default;
};

class PerfectLink {
 public:
  struct Options {
    std::chrono::milliseconds initial_rto = std::chrono::milliseconds(20);
    std::chrono::milliseconds max_rto = std::chrono::milliseconds(500);
  };

  /// `transport` is borrowed and must outlive the link. The two-argument
  /// overload uses default Options (a separate overload, not a default
  /// argument: GCC requires nested-class NSDMIs before the enclosing class
  /// is complete when spelled as a default argument).
  PerfectLink(std::uint32_t self, Transport& transport);
  PerfectLink(std::uint32_t self, Transport& transport, Options opts);

  std::uint32_t self() const { return self_; }

  /// Queues `msg` for reliable delivery to node `to`. Batches of kMaxBatch
  /// are flushed eagerly; call flush() to push out a partial batch.
  void send(std::uint32_t to, const WireMessage& msg);

  /// Transmits all partially filled outgoing batches.
  void flush();

  /// Drains the transport: acks and dedups inbound DATA, applies inbound
  /// ACKs, and appends newly in-order messages to `out`. Call frequently.
  void poll(std::vector<ReceivedMessage>& out);

  /// Retransmits every unacked batch whose backoff deadline has passed.
  /// Driven by a timer wheel: O(due batches), not O(unacked batches).
  void tick(std::chrono::steady_clock::time_point now);

  /// Earliest retransmission deadline across unacked batches, or nullopt
  /// when everything is acked — the link's contribution to the epoll
  /// backend's wait bound.
  std::optional<std::chrono::steady_clock::time_point> next_deadline() const {
    return wheel_.next_deadline();
  }

  /// True when every message ever sent has been acked (used by the runtime's
  /// linger phase: a node may only exit once its last transmissions landed).
  bool all_acked() const { return unacked_.empty() && pending_total_ == 0; }

  const LinkStats& stats() const { return stats_; }

  /// Captures the sequence-number state (see LinkState). Deterministic
  /// (sorted by peer) so snapshots serialize reproducibly.
  LinkState export_state() const;

  /// Restores sequence numbers on a freshly constructed link (restart path).
  /// Must be called before any send/poll traffic.
  void restore_state(const LinkState& state);

 private:
  struct OutgoingBatch {
    std::uint32_t to = 0;
    std::vector<WireEntry> entries;
    std::chrono::milliseconds rto{};
  };

  /// Sequence numbers are per-destination, so ids alone collide across
  /// destinations; (destination << 32 | seq) is the globally unique key the
  /// batch map, ack index, and timer wheel all share.
  static std::uint64_t dest_key(std::uint32_t to, std::uint32_t seq) {
    return (static_cast<std::uint64_t>(to) << 32) | seq;
  }

  struct PeerIn {
    /// Next sequence number the application has not yet consumed.
    std::uint32_t next_seq = 0;
    /// Out-of-order arrivals waiting for the gap to close (ordered by seq).
    std::map<std::uint32_t, WireMessage> reorder;
    /// Ids seen (acked + delivered-or-buffered); entries below next_seq are
    /// implicitly seen, so the set only tracks the sparse out-of-order tail.
    std::unordered_set<std::uint32_t> seen_ahead;
  };

  void transmit(std::uint64_t key, OutgoingBatch& batch, bool is_retransmit,
                std::chrono::steady_clock::time_point now);
  void flush_pending(std::uint32_t to);
  void send_acks();

  std::uint32_t self_;
  Transport* transport_;
  Options opts_;
  LinkStats stats_;
  /// Next outgoing sequence number per destination (per-destination so the
  /// receiver's contiguity check never sees gaps from third-party traffic).
  std::unordered_map<std::uint32_t, std::uint32_t> out_seq_;
  /// Messages queued but not yet wrapped into a transmitted batch, per peer.
  std::unordered_map<std::uint32_t, std::vector<WireEntry>> pending_;
  std::size_t pending_total_ = 0;
  /// Transmitted batches awaiting acks, keyed by dest_key of their first
  /// entry. Acks arrive per-message; a batch is retired (and its wheel timer
  /// cancelled) when all its entries are acked.
  std::unordered_map<std::uint64_t, OutgoingBatch> unacked_;
  /// dest_key of every in-flight entry -> its batch's key, so an inbound ack
  /// finds its batch in O(1) instead of scanning all unacked batches.
  std::unordered_map<std::uint64_t, std::uint64_t> ack_index_;
  /// Retransmission deadlines, one armed timer per unacked batch.
  TimerWheel wheel_;
  std::vector<std::uint64_t> fired_;  // tick() scratch
  /// Ack ids owed to each peer, flushed at the end of every poll().
  std::unordered_map<std::uint32_t, std::vector<std::uint64_t>> acks_owed_;
  std::unordered_map<std::uint32_t, PeerIn> inbound_;
};

}  // namespace rbcast
