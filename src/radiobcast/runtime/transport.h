#pragma once
// Datagram transports for the networked runtime.
//
// Transport is the narrow seam beneath PerfectLink: an unreliable,
// unordered, possibly-duplicating datagram service addressed by node index.
// UdpTransport is the real thing (nonblocking UDP sockets on loopback or any
// configured peer table); FaultInjectionTransport wraps another transport and
// deterministically drops / reorders / duplicates datagrams so the
// perfect-link tests can prove no-loss / no-dup / FIFO under adversarial
// conditions without flaky timing.

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "radiobcast/runtime/event_loop.h"
#include "radiobcast/util/rng.h"

namespace rbcast {

/// A received datagram plus the node index of its transmitter.
struct Datagram {
  std::uint32_t from = 0;
  std::vector<std::uint8_t> bytes;
};

/// Unreliable datagram service addressed by node index.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Best-effort send to node `to`. May silently drop.
  virtual void send(std::uint32_t to, const std::vector<std::uint8_t>& bytes) = 0;

  /// Rvalue overload: transports that buffer in-process (SwarmHub mailboxes)
  /// take ownership of the datagram instead of copying it — PerfectLink's
  /// hot path hands freshly encoded packets through here. Defaults to the
  /// copying path; kernel-backed transports never need to override it.
  virtual void send(std::uint32_t to, std::vector<std::uint8_t>&& bytes) {
    send(to, bytes);
  }

  /// Non-blocking receive; returns false when nothing is pending.
  virtual bool try_receive(Datagram& out) = 0;

  /// Blocks until a datagram is plausibly receivable or `deadline` passes.
  /// May wake spuriously; callers re-check their conditions. The caller must
  /// have drained try_receive to false first (the epoll implementations are
  /// edge-triggered). The base implementation sleeps one poll cadence
  /// (50 us, capped by the deadline) — exactly the poll backend's pacing, so
  /// transports without a readiness mechanism degrade to polling.
  virtual void wait(std::chrono::steady_clock::time_point deadline);
};

/// UDP/IPv4 transport. Each node owns one nonblocking socket; peers are
/// addressed through a (host, port) table indexed by node index. Datagram
/// origin is resolved by matching the source address against the peer table,
/// which is what makes sender identity unspoofable in the runtime model
/// (Section II's no-spoofing assumption, realized by the socket layer).
class UdpTransport final : public Transport {
 public:
  /// Binds a nonblocking UDP socket on 127.0.0.1:`port` (0 = ephemeral).
  /// Throws std::system_error on socket failures.
  explicit UdpTransport(std::uint16_t port);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// The locally bound port (resolved after an ephemeral bind).
  std::uint16_t local_port() const { return local_port_; }

  /// Installs the peer table: peers[i] is the loopback port of node i.
  /// Must be called before send/try_receive resolve anything.
  void set_peers(std::vector<std::uint16_t> ports);

  using Transport::send;
  void send(std::uint32_t to, const std::vector<std::uint8_t>& bytes) override;
  bool try_receive(Datagram& out) override;

  /// Epoll-backed wait: sleeps until the socket has a readability edge or
  /// the deadline passes. The EventLoop is created lazily on first use, so
  /// poll-backend deployments never pay the extra epoll fd.
  void wait(std::chrono::steady_clock::time_point deadline) override;

  /// The underlying socket (tests register it with an external EventLoop).
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::vector<std::uint16_t> peer_ports_;
  std::unique_ptr<EventLoop> loop_;
};

/// Deterministic failure shim for tests: wraps delivery queues per
/// destination and applies seeded drop / duplicate / reorder decisions on
/// send. All traffic stays in-process; `deliver_to` hands a queue's datagrams
/// to the destination's FaultInjectionTransport, so a test wires N of these
/// together as a lossy in-memory fabric.
class FaultInjectionTransport final : public Transport {
 public:
  struct Options {
    double drop_p = 0.0;       // per-datagram drop probability
    double duplicate_p = 0.0;  // per-datagram duplication probability
    /// With this probability a sent datagram is held back and released after
    /// the next send to the same destination (pairwise reorder).
    double reorder_p = 0.0;
    std::uint64_t seed = 1;
  };

  explicit FaultInjectionTransport(std::uint32_t self, Options opts);

  /// Connects this transport to its peers; index i must be peer i's shim.
  /// Peers are not owned and must outlive this object.
  void set_peers(std::vector<FaultInjectionTransport*> peers);

  using Transport::send;
  void send(std::uint32_t to, const std::vector<std::uint8_t>& bytes) override;
  bool try_receive(Datagram& out) override;

  /// Returns immediately when the inbox is non-empty; otherwise the base
  /// poll-cadence sleep (in-memory fabrics have no readiness mechanism).
  void wait(std::chrono::steady_clock::time_point deadline) override;

 private:
  void enqueue_at(std::uint32_t to, Datagram d);

  std::uint32_t self_;
  Options opts_;
  Rng rng_;
  std::vector<FaultInjectionTransport*> peers_;
  std::deque<Datagram> inbox_;
  /// Held-back datagram per destination awaiting the reorder release.
  std::vector<std::unique_ptr<Datagram>> held_;
};

/// Chaos knobs for one node's outgoing traffic (the scenario file's `chaos`
/// section, runtime/scenario.h). All probabilities are per-datagram.
struct ChaosOptions {
  double drop_p = 0.0;       // destroy the datagram
  double duplicate_p = 0.0;  // inject a second copy
  double delay_p = 0.0;      // hold the datagram back for `delay`
  std::chrono::milliseconds delay{0};
  std::uint64_t seed = 1;
  /// Test seam: overrides the clock the delay/partition machinery reads
  /// (null = steady_clock). Lets the delay tests advance time explicitly
  /// instead of sleeping — deterministic under sanitizer load.
  std::function<std::chrono::steady_clock::time_point()> clock;
  /// A directed link blackout: datagrams from node `from` to node `to` are
  /// destroyed while the deployment age is in [start_ms, end_ms) — end_ms < 0
  /// means forever. Modeled after iptables-style one-way partitions.
  struct Partition {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    std::int64_t start_ms = 0;
    std::int64_t end_ms = -1;
  };
  std::vector<Partition> partitions;

  bool enabled() const {
    return drop_p > 0.0 || duplicate_p > 0.0 || delay_p > 0.0 ||
           !partitions.empty();
  }
};

/// What the chaos layer did to this node's traffic; mirrored into the obs
/// counter pipeline (chaos_* fields) by the harness / node binary.
struct ChaosStats {
  std::uint64_t drops = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t delays = 0;
  std::uint64_t partition_drops = 0;
};

/// Seeded fault injection for the *real* transport path: wraps any Transport
/// (UdpTransport in deployments) and decides each outgoing datagram's fate —
/// drop, duplicate, delay, or partition suppression — deterministically from
/// (seed, sender, receiver, per-pair datagram sequence). Two runs of the same
/// scenario inject the exact same faults, regardless of scheduling; only the
/// recovery timing (retransmissions) differs. Delayed datagrams are released
/// by later send/try_receive calls once their deadline passes, so no extra
/// thread is involved.
class ChaosTransport final : public Transport {
 public:
  /// `inner` is borrowed and must outlive this object. `self` is this node's
  /// index (partitions are filtered to `from == self`).
  ChaosTransport(std::uint32_t self, Transport& inner, ChaosOptions opts);

  using Transport::send;
  void send(std::uint32_t to, const std::vector<std::uint8_t>& bytes) override;
  bool try_receive(Datagram& out) override;

  /// Forwards to the inner transport, bounded by the next delayed-datagram
  /// release so held traffic is injected on time even while the receiver
  /// sleeps. (Assumes the real clock; the ChaosOptions::clock test seam is
  /// for single-threaded delay tests that never wait.)
  void wait(std::chrono::steady_clock::time_point deadline) override;

  const ChaosStats& stats() const { return stats_; }

 private:
  struct Delayed {
    std::chrono::steady_clock::time_point release{};
    std::uint32_t to = 0;
    std::vector<std::uint8_t> bytes;
  };

  /// True when the (self -> to) link is inside a partition window at `now`.
  bool partitioned(std::uint32_t to,
                   std::chrono::steady_clock::time_point now) const;
  void release_due(std::chrono::steady_clock::time_point now);
  std::chrono::steady_clock::time_point now() const {
    return opts_.clock ? opts_.clock() : std::chrono::steady_clock::now();
  }

  std::uint32_t self_;
  Transport* inner_;
  ChaosOptions opts_;
  ChaosStats stats_;
  std::chrono::steady_clock::time_point start_;
  /// Per-destination datagram sequence: the chaos fate of datagram k to peer
  /// p is Rng(hash_seeds(hash_seeds(seed, pair_key(self, p)), k)) — stable
  /// under any interleaving with traffic to other peers.
  std::unordered_map<std::uint32_t, std::uint64_t> pair_seq_;
  std::deque<Delayed> delayed_;  // sorted by insertion; released when due
};

}  // namespace rbcast
