#pragma once
// Datagram transports for the networked runtime.
//
// Transport is the narrow seam beneath PerfectLink: an unreliable,
// unordered, possibly-duplicating datagram service addressed by node index.
// UdpTransport is the real thing (nonblocking UDP sockets on loopback or any
// configured peer table); FaultInjectionTransport wraps another transport and
// deterministically drops / reorders / duplicates datagrams so the
// perfect-link tests can prove no-loss / no-dup / FIFO under adversarial
// conditions without flaky timing.

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "radiobcast/util/rng.h"

namespace rbcast {

/// A received datagram plus the node index of its transmitter.
struct Datagram {
  std::uint32_t from = 0;
  std::vector<std::uint8_t> bytes;
};

/// Unreliable datagram service addressed by node index.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Best-effort send to node `to`. May silently drop.
  virtual void send(std::uint32_t to, const std::vector<std::uint8_t>& bytes) = 0;

  /// Non-blocking receive; returns false when nothing is pending.
  virtual bool try_receive(Datagram& out) = 0;
};

/// UDP/IPv4 transport. Each node owns one nonblocking socket; peers are
/// addressed through a (host, port) table indexed by node index. Datagram
/// origin is resolved by matching the source address against the peer table,
/// which is what makes sender identity unspoofable in the runtime model
/// (Section II's no-spoofing assumption, realized by the socket layer).
class UdpTransport final : public Transport {
 public:
  /// Binds a nonblocking UDP socket on 127.0.0.1:`port` (0 = ephemeral).
  /// Throws std::system_error on socket failures.
  explicit UdpTransport(std::uint16_t port);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  /// The locally bound port (resolved after an ephemeral bind).
  std::uint16_t local_port() const { return local_port_; }

  /// Installs the peer table: peers[i] is the loopback port of node i.
  /// Must be called before send/try_receive resolve anything.
  void set_peers(std::vector<std::uint16_t> ports);

  void send(std::uint32_t to, const std::vector<std::uint8_t>& bytes) override;
  bool try_receive(Datagram& out) override;

 private:
  int fd_ = -1;
  std::uint16_t local_port_ = 0;
  std::vector<std::uint16_t> peer_ports_;
};

/// Deterministic failure shim for tests: wraps delivery queues per
/// destination and applies seeded drop / duplicate / reorder decisions on
/// send. All traffic stays in-process; `deliver_to` hands a queue's datagrams
/// to the destination's FaultInjectionTransport, so a test wires N of these
/// together as a lossy in-memory fabric.
class FaultInjectionTransport final : public Transport {
 public:
  struct Options {
    double drop_p = 0.0;       // per-datagram drop probability
    double duplicate_p = 0.0;  // per-datagram duplication probability
    /// With this probability a sent datagram is held back and released after
    /// the next send to the same destination (pairwise reorder).
    double reorder_p = 0.0;
    std::uint64_t seed = 1;
  };

  explicit FaultInjectionTransport(std::uint32_t self, Options opts);

  /// Connects this transport to its peers; index i must be peer i's shim.
  /// Peers are not owned and must outlive this object.
  void set_peers(std::vector<FaultInjectionTransport*> peers);

  void send(std::uint32_t to, const std::vector<std::uint8_t>& bytes) override;
  bool try_receive(Datagram& out) override;

 private:
  void enqueue_at(std::uint32_t to, Datagram d);

  std::uint32_t self_;
  Options opts_;
  Rng rng_;
  std::vector<FaultInjectionTransport*> peers_;
  std::deque<Datagram> inbox_;
  /// Held-back datagram per destination awaiting the reorder release.
  std::vector<std::unique_ptr<Datagram>> held_;
};

}  // namespace rbcast
