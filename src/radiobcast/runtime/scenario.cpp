#include "radiobcast/runtime/scenario.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace rbcast {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::invalid_argument("scenario line " + std::to_string(line) + ": " +
                              what);
}

}  // namespace

FaultSet Scenario::fault_set() const {
  const Torus torus(sim.width, sim.height);
  return FaultSet(torus, faults);
}

Scenario parse_scenario(std::istream& in) {
  Scenario s;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank / comment-only line

    const auto want_i64 = [&](std::int64_t& out) {
      if (!(ls >> out)) fail(lineno, "expected an integer after '" + key + "'");
    };
    const auto want_i32 = [&](std::int32_t& out) {
      std::int64_t v = 0;
      want_i64(v);
      out = static_cast<std::int32_t>(v);
    };

    if (key == "protocol") {
      std::string name;
      ls >> name;
      const auto p = protocol_from_string(name);
      if (!p) fail(lineno, "unknown protocol '" + name + "'");
      s.sim.protocol = *p;
    } else if (key == "adversary") {
      std::string name;
      ls >> name;
      const auto a = adversary_from_string(name);
      if (!a) fail(lineno, "unknown adversary '" + name + "'");
      s.sim.adversary = *a;
    } else if (key == "metric") {
      std::string name;
      ls >> name;
      const auto m = metric_from_string(name);
      if (!m) fail(lineno, "unknown metric '" + name + "'");
      s.sim.metric = *m;
    } else if (key == "width") {
      want_i32(s.sim.width);
    } else if (key == "height") {
      want_i32(s.sim.height);
    } else if (key == "r") {
      want_i32(s.sim.r);
    } else if (key == "t") {
      want_i64(s.sim.t);
    } else if (key == "value") {
      std::int64_t v = 0;
      want_i64(v);
      if (v != 0 && v != 1) fail(lineno, "value must be 0 or 1");
      s.sim.value = static_cast<std::uint8_t>(v);
    } else if (key == "source") {
      want_i32(s.sim.source.x);
      want_i32(s.sim.source.y);
    } else if (key == "seed") {
      std::int64_t v = 0;
      want_i64(v);
      s.sim.seed = static_cast<std::uint64_t>(v);
    } else if (key == "crash_round") {
      want_i64(s.sim.crash_round);
    } else if (key == "max_rounds") {
      want_i64(s.sim.max_rounds);
    } else if (key == "round_timeout_ms") {
      want_i64(s.round_timeout_ms);
    } else if (key == "linger_timeout_ms") {
      want_i64(s.linger_timeout_ms);
    } else if (key == "base_port") {
      std::int64_t v = 0;
      want_i64(v);
      if (v < 1024 || v > 65535) fail(lineno, "base_port out of range");
      s.base_port = static_cast<std::uint16_t>(v);
    } else if (key == "fault") {
      Coord c{};
      want_i32(c.x);
      want_i32(c.y);
      s.faults.push_back(c);
    } else {
      fail(lineno, "unknown key '" + key + "'");
    }
    std::string trailing;
    if (ls >> trailing) fail(lineno, "trailing tokens after '" + key + "'");
  }
  if (s.sim.width < 1 || s.sim.height < 1) {
    throw std::invalid_argument("scenario: torus dimensions must be positive");
  }
  const Torus torus(s.sim.width, s.sim.height);
  for (Coord& c : s.faults) c = torus.wrap(c);
  s.sim.source = torus.wrap(s.sim.source);
  return s;
}

Scenario parse_scenario_string(const std::string& text) {
  std::istringstream in(text);
  return parse_scenario(in);
}

Scenario load_scenario(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open scenario file: " + path);
  return parse_scenario(in);
}

void write_scenario(std::ostream& out, const Scenario& s) {
  out << "protocol " << to_string(s.sim.protocol) << '\n'
      << "adversary " << to_string(s.sim.adversary) << '\n'
      << "width " << s.sim.width << '\n'
      << "height " << s.sim.height << '\n'
      << "r " << s.sim.r << '\n'
      << "metric " << to_string(s.sim.metric) << '\n'
      << "t " << s.sim.t << '\n'
      << "value " << static_cast<int>(s.sim.value) << '\n'
      << "source " << s.sim.source.x << ' ' << s.sim.source.y << '\n'
      << "seed " << s.sim.seed << '\n'
      << "crash_round " << s.sim.crash_round << '\n'
      << "max_rounds " << s.sim.max_rounds << '\n'
      << "round_timeout_ms " << s.round_timeout_ms << '\n'
      << "linger_timeout_ms " << s.linger_timeout_ms << '\n'
      << "base_port " << s.base_port << '\n';
  for (const Coord& c : s.faults) {
    out << "fault " << c.x << ' ' << c.y << '\n';
  }
}

}  // namespace rbcast
