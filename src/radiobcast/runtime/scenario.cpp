#include "radiobcast/runtime/scenario.h"

#include <fstream>
#include <iomanip>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "radiobcast/util/rng.h"

namespace rbcast {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::invalid_argument("scenario line " + std::to_string(line) + ": " +
                              what);
}

}  // namespace

FaultSet Scenario::fault_set() const {
  const Torus torus(sim.width, sim.height);
  return FaultSet(torus, faults);
}

std::uint64_t Scenario::chaos_seed() const {
  // Split the chaos stream off the protocol seed with a fixed tag so the two
  // never correlate, while keeping one-seed scenarios fully reproducible.
  return chaos.seed != 0 ? chaos.seed
                         : hash_seeds(sim.seed, 0x9e3779b97f4a7c15ULL);
}

ChaosOptions make_chaos_options(const Scenario& scenario, std::int32_t index) {
  ChaosOptions opts;
  opts.drop_p = scenario.chaos.drop_p;
  opts.duplicate_p = scenario.chaos.duplicate_p;
  opts.delay_p = scenario.chaos.delay_p;
  opts.delay = std::chrono::milliseconds(scenario.chaos.delay_ms);
  opts.seed = scenario.chaos_seed();
  const Torus torus(scenario.sim.width, scenario.sim.height);
  for (const ScenarioChaos::Partition& p : scenario.chaos.partitions) {
    ChaosOptions::Partition cp;
    cp.from = static_cast<std::uint32_t>(torus.index(torus.wrap(p.from)));
    cp.to = static_cast<std::uint32_t>(torus.index(torus.wrap(p.to)));
    cp.start_ms = p.start_ms;
    cp.end_ms = p.end_ms;
    opts.partitions.push_back(cp);
  }
  (void)index;  // ChaosTransport filters partitions by its own index
  return opts;
}

Scenario parse_scenario(std::istream& in) {
  Scenario s;
  std::string line;
  int lineno = 0;
  // Scalar keys may appear once; a silent second assignment is almost always
  // a hand-edited scenario gone wrong, so report both lines.
  std::map<std::string, int> first_seen;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank / comment-only line

    if (key != "fault" && key != "partition") {
      const auto [it, inserted] = first_seen.emplace(key, lineno);
      if (!inserted) {
        fail(lineno, "duplicate key '" + key + "' (first on line " +
                         std::to_string(it->second) + ")");
      }
    }

    const auto want_i64 = [&](std::int64_t& out) {
      if (!(ls >> out)) fail(lineno, "expected an integer after '" + key + "'");
    };
    const auto want_i32 = [&](std::int32_t& out) {
      std::int64_t v = 0;
      want_i64(v);
      out = static_cast<std::int32_t>(v);
    };
    const auto want_f64 = [&](double& out) {
      if (!(ls >> out)) fail(lineno, "expected a number after '" + key + "'");
    };
    const auto want_p = [&](double& out) {
      want_f64(out);
      if (!(out >= 0.0 && out <= 1.0)) {
        fail(lineno, "'" + key + "' must be in [0,1]");
      }
    };

    if (key == "protocol") {
      std::string name;
      ls >> name;
      const auto p = protocol_from_string(name);
      if (!p) fail(lineno, "unknown protocol '" + name + "'");
      s.sim.protocol = *p;
    } else if (key == "adversary") {
      std::string name;
      ls >> name;
      const auto a = adversary_from_string(name);
      if (!a) fail(lineno, "unknown adversary '" + name + "'");
      s.sim.adversary = *a;
    } else if (key == "metric") {
      std::string name;
      ls >> name;
      const auto m = metric_from_string(name);
      if (!m) fail(lineno, "unknown metric '" + name + "'");
      s.sim.metric = *m;
    } else if (key == "width") {
      want_i32(s.sim.width);
    } else if (key == "height") {
      want_i32(s.sim.height);
    } else if (key == "r") {
      want_i32(s.sim.r);
    } else if (key == "t") {
      want_i64(s.sim.t);
    } else if (key == "value") {
      std::int64_t v = 0;
      want_i64(v);
      if (v != 0 && v != 1) fail(lineno, "value must be 0 or 1");
      s.sim.value = static_cast<std::uint8_t>(v);
    } else if (key == "source") {
      want_i32(s.sim.source.x);
      want_i32(s.sim.source.y);
    } else if (key == "seed") {
      std::int64_t v = 0;
      want_i64(v);
      s.sim.seed = static_cast<std::uint64_t>(v);
    } else if (key == "crash_round") {
      want_i64(s.sim.crash_round);
    } else if (key == "max_rounds") {
      want_i64(s.sim.max_rounds);
    } else if (key == "loss_p") {
      want_p(s.sim.loss_p);
    } else if (key == "jam_budget") {
      want_i64(s.sim.jam_budget);
    } else if (key == "round_timeout_ms") {
      want_i64(s.round_timeout_ms);
    } else if (key == "linger_timeout_ms") {
      want_i64(s.linger_timeout_ms);
    } else if (key == "suspect_after") {
      want_i64(s.suspect_after);
      if (s.suspect_after < 0) fail(lineno, "suspect_after must be >= 0");
    } else if (key == "base_port") {
      std::int64_t v = 0;
      want_i64(v);
      if (v < 1024 || v > 65535) fail(lineno, "base_port out of range");
      s.base_port = static_cast<std::uint16_t>(v);
    } else if (key == "chaos_drop_p") {
      want_p(s.chaos.drop_p);
    } else if (key == "chaos_dup_p") {
      want_p(s.chaos.duplicate_p);
    } else if (key == "chaos_delay_p") {
      want_p(s.chaos.delay_p);
    } else if (key == "chaos_delay_ms") {
      want_i64(s.chaos.delay_ms);
      if (s.chaos.delay_ms < 0) fail(lineno, "chaos_delay_ms must be >= 0");
    } else if (key == "chaos_seed") {
      std::int64_t v = 0;
      want_i64(v);
      s.chaos.seed = static_cast<std::uint64_t>(v);
    } else if (key == "partition") {
      ScenarioChaos::Partition p;
      want_i32(p.from.x);
      want_i32(p.from.y);
      want_i32(p.to.x);
      want_i32(p.to.y);
      // Optional window; default is a permanent blackout.
      if (ls >> p.start_ms) {
        if (!(ls >> p.end_ms)) {
          fail(lineno, "partition window needs both start_ms and end_ms");
        }
      }
      s.chaos.partitions.push_back(p);
    } else if (key == "crash_node") {
      Coord c{};
      want_i32(c.x);
      want_i32(c.y);
      s.crash_node = c;
    } else if (key == "crash_at_round") {
      want_i64(s.crash_at_round);
      if (s.crash_at_round < 0) fail(lineno, "crash_at_round must be >= 0");
    } else if (key == "restart_after_ms") {
      want_i64(s.restart_after_ms);
    } else if (key == "state_dir") {
      if (!(ls >> s.state_dir)) {
        fail(lineno, "expected a path after 'state_dir'");
      }
    } else if (key == "backend") {
      std::string name;
      ls >> name;
      const auto b = backend_from_string(name);
      if (!b) fail(lineno, "unknown backend '" + name + "'");
      s.backend = *b;
    } else if (key == "shared_socket") {
      std::int64_t v = 0;
      want_i64(v);
      if (v != 0 && v != 1) fail(lineno, "shared_socket must be 0 or 1");
      s.shared_socket = v != 0;
    } else if (key == "fault") {
      Coord c{};
      want_i32(c.x);
      want_i32(c.y);
      s.faults.push_back(c);
    } else {
      fail(lineno, "unknown key '" + key + "'");
    }
    std::string trailing;
    if (ls >> trailing) fail(lineno, "trailing tokens after '" + key + "'");
  }
  if (s.sim.width < 1 || s.sim.height < 1) {
    throw std::invalid_argument("scenario: torus dimensions must be positive");
  }
  const Torus torus(s.sim.width, s.sim.height);
  for (Coord& c : s.faults) c = torus.wrap(c);
  for (ScenarioChaos::Partition& p : s.chaos.partitions) {
    p.from = torus.wrap(p.from);
    p.to = torus.wrap(p.to);
  }
  if (s.crash_node) s.crash_node = torus.wrap(*s.crash_node);
  s.sim.source = torus.wrap(s.sim.source);
  return s;
}

Scenario parse_scenario_string(const std::string& text) {
  std::istringstream in(text);
  return parse_scenario(in);
}

Scenario load_scenario(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open scenario file: " + path);
  return parse_scenario(in);
}

void write_scenario(std::ostream& out, const Scenario& s) {
  // max_digits10 makes the probability fields round-trip bit-exactly.
  out << std::setprecision(std::numeric_limits<double>::max_digits10)
      << "protocol " << to_string(s.sim.protocol) << '\n'
      << "adversary " << to_string(s.sim.adversary) << '\n'
      << "width " << s.sim.width << '\n'
      << "height " << s.sim.height << '\n'
      << "r " << s.sim.r << '\n'
      << "metric " << to_string(s.sim.metric) << '\n'
      << "t " << s.sim.t << '\n'
      << "value " << static_cast<int>(s.sim.value) << '\n'
      << "source " << s.sim.source.x << ' ' << s.sim.source.y << '\n'
      << "seed " << s.sim.seed << '\n'
      << "crash_round " << s.sim.crash_round << '\n'
      << "max_rounds " << s.sim.max_rounds << '\n'
      << "loss_p " << s.sim.loss_p << '\n'
      << "jam_budget " << s.sim.jam_budget << '\n'
      << "round_timeout_ms " << s.round_timeout_ms << '\n'
      << "linger_timeout_ms " << s.linger_timeout_ms << '\n'
      << "suspect_after " << s.suspect_after << '\n'
      << "base_port " << s.base_port << '\n'
      << "chaos_drop_p " << s.chaos.drop_p << '\n'
      << "chaos_dup_p " << s.chaos.duplicate_p << '\n'
      << "chaos_delay_p " << s.chaos.delay_p << '\n'
      << "chaos_delay_ms " << s.chaos.delay_ms << '\n'
      << "chaos_seed " << s.chaos.seed << '\n'
      << "crash_at_round " << s.crash_at_round << '\n'
      << "restart_after_ms " << s.restart_after_ms << '\n'
      << "backend " << to_string(s.backend) << '\n'
      << "shared_socket " << (s.shared_socket ? 1 : 0) << '\n';
  if (s.crash_node) {
    out << "crash_node " << s.crash_node->x << ' ' << s.crash_node->y << '\n';
  }
  if (!s.state_dir.empty()) out << "state_dir " << s.state_dir << '\n';
  for (const ScenarioChaos::Partition& p : s.chaos.partitions) {
    out << "partition " << p.from.x << ' ' << p.from.y << ' ' << p.to.x << ' '
        << p.to.y << ' ' << p.start_ms << ' ' << p.end_ms << '\n';
  }
  for (const Coord& c : s.faults) {
    out << "fault " << c.x << ' ' << c.y << '\n';
  }
}

}  // namespace rbcast
