#include "radiobcast/runtime/event_loop.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <limits>
#include <system_error>

namespace rbcast {

const char* to_string(RuntimeBackend backend) {
  switch (backend) {
    case RuntimeBackend::kPoll: return "poll";
    case RuntimeBackend::kEpoll: return "epoll";
  }
  return "?";
}

std::optional<RuntimeBackend> backend_from_string(const std::string& name) {
  if (name == "poll") return RuntimeBackend::kPoll;
  if (name == "epoll") return RuntimeBackend::kEpoll;
  return std::nullopt;
}

TimerWheel::TimerWheel(std::chrono::microseconds tick, std::size_t slots)
    : tick_(tick.count() > 0 ? tick : std::chrono::microseconds(1)),
      slots_(slots > 0 ? slots : 1) {}

std::size_t TimerWheel::slot_of(TimePoint t) const {
  const auto ticks = std::chrono::duration_cast<std::chrono::microseconds>(
                         t.time_since_epoch())
                         .count() /
                     tick_.count();
  return static_cast<std::size_t>(ticks) % slots_.size();
}

void TimerWheel::schedule(std::uint64_t id, TimePoint deadline) {
  armed_[id] = deadline;
  // A deadline already in the past is placed at the wheel's current position
  // so the very next advance() visits it — a past deadline must not wait a
  // full lap (the zero-RTO eager links in tests rely on this).
  const TimePoint place =
      has_last_ ? std::max(deadline, last_now_) : deadline;
  slots_[slot_of(place)].emplace_back(id, deadline);
}

bool TimerWheel::cancel(std::uint64_t id) {
  // The slot entry stays behind as a stale pair; advance() discards it when
  // its sweep reaches the slot (live iff armed_ agrees on the deadline).
  return armed_.erase(id) > 0;
}

void TimerWheel::advance(TimePoint now, std::vector<std::uint64_t>& fired) {
  if (has_last_ && now < last_now_) return;  // monotone clock only
  std::vector<std::pair<TimePoint, std::uint64_t>> due;
  const std::size_t n = slots_.size();
  // Slots the clock swept over since the last advance; a gap of a full lap
  // (or the first advance ever) degenerates to scanning every slot, which
  // is the wheel's worst case and still O(armed).
  std::size_t first = 0;
  std::size_t count = n;
  if (has_last_) {
    const auto elapsed = now - last_now_;
    if (elapsed < tick_ * static_cast<std::int64_t>(n)) {
      first = slot_of(last_now_);
      count = (slot_of(now) + n - first) % n + 1;
    }
  }
  for (std::size_t i = 0; i < count; ++i) {
    auto& slot = slots_[(first + i) % n];
    std::size_t kept = 0;
    for (auto& entry : slot) {
      const auto it = armed_.find(entry.first);
      const bool live = it != armed_.end() && it->second == entry.second;
      if (!live) continue;  // cancelled or rescheduled: drop the stale pair
      if (entry.second <= now) {
        due.emplace_back(entry.second, entry.first);
        armed_.erase(it);
      } else {
        slot[kept++] = entry;  // not due yet (possibly a future lap)
      }
    }
    slot.resize(kept);
  }
  last_now_ = now;
  has_last_ = true;
  std::sort(due.begin(), due.end());
  fired.reserve(fired.size() + due.size());
  for (const auto& [deadline, id] : due) fired.push_back(id);
}

std::optional<TimerWheel::TimePoint> TimerWheel::next_deadline() const {
  std::optional<TimePoint> next;
  for (const auto& [id, deadline] : armed_) {
    if (!next || deadline < *next) next = deadline;
  }
  return next;
}

namespace {

[[noreturn]] void throw_errno(const char* what) {
  throw std::system_error(errno, std::generic_category(), what);
}

}  // namespace

EventLoop::EventLoop() {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epfd_ < 0) throw_errno("epoll_create1");
}

EventLoop::~EventLoop() {
  if (epfd_ >= 0) ::close(epfd_);
}

void EventLoop::add(int fd) {
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.fd = fd;
  if (::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    throw_errno("epoll_ctl(ADD)");
  }
}

void EventLoop::remove(int fd) {
  epoll_event ev{};
  (void)::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, &ev);
}

bool EventLoop::wait_until(
    std::optional<std::chrono::steady_clock::time_point> deadline) {
  int timeout_ms = -1;
  if (deadline.has_value()) {
    const auto now = std::chrono::steady_clock::now();
    if (*deadline <= now) {
      timeout_ms = 0;
    } else {
      // Round up: sleeping 1 ms past a retransmission deadline is harmless;
      // returning early and spinning sub-millisecond is not.
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          *deadline - now)
                          .count();
      const auto ms = (us + 999) / 1000;
      timeout_ms = static_cast<int>(
          std::min<std::int64_t>(ms, std::numeric_limits<int>::max()));
    }
  }
  epoll_event events[8];
  const int n = ::epoll_wait(epfd_, events, 8, timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return false;  // signal: caller re-checks and loops
    throw_errno("epoll_wait");
  }
  return n > 0;
}

}  // namespace rbcast
