#pragma once
// One node of the networked runtime.
//
// RuntimeNode is the UDP-backed sibling of RadioNetwork: it implements the
// BroadcastBackend interface (net/backend.h), so the very same protocol
// objects the simulator hosts run here unmodified. The stack underneath is
//
//   NodeBehavior (protocols/*)      — unchanged protocol logic
//   RuntimeNode                      — event loop, round mapping, verdicts
//   RoundSynchronizer                — TDMA rounds on real time
//   LocalBroadcast                   — CSR-neighbor fan-out
//   PerfectLink                      — ack/retransmit, dedup, FIFO
//   Transport (UDP or fault shim)    — unreliable datagrams
//
// Round mapping mirrors the simulator exactly: everything a behavior
// broadcasts while round() == k is tagged round k and delivered to every
// neighbor at round k+1, after the barrier confirms all round-k traffic is
// in; deliveries are replayed in the simulator's TDMA order (sender index
// ascending, per-sender FIFO). That, plus a shared node-population recipe
// (core/simulation.h's make_node_behavior), is what makes sim and runtime
// verdicts comparable bit-for-bit (tests/test_runtime_equivalence.cpp).

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "radiobcast/core/simulation.h"
#include "radiobcast/net/backend.h"
#include "radiobcast/obs/counters.h"
#include "radiobcast/obs/trace.h"
#include "radiobcast/runtime/local_broadcast.h"
#include "radiobcast/runtime/perfect_link.h"
#include "radiobcast/runtime/round_sync.h"
#include "radiobcast/runtime/transport.h"

namespace rbcast {

/// The outcome one runtime node reports when its event loop exits.
struct RuntimeVerdict {
  std::int32_t index = 0;
  Coord self{};
  NodeRole role = NodeRole::kHonest;
  std::optional<std::uint8_t> committed;
  std::int64_t commit_round = -1;
  std::int64_t rounds = 0;
  /// All of this node's transmissions were acked before the linger deadline.
  bool lingered_clean = false;
  /// The loop exited early on a shutdown request (SIGINT/SIGTERM).
  bool interrupted = false;
  Counters counters;
};

class RuntimeNode final : public BroadcastBackend {
 public:
  struct Options {
    /// Protocol / topology configuration, interpreted exactly as
    /// run_simulation does. The runtime realizes the paper's perfect TDMA
    /// model only: loss_p must be 0, retransmissions 1, and the adversary
    /// must not be kSpoofing or kJamming (those live in the simulated
    /// channel, which has no socket analogue).
    SimConfig sim;
    Coord self{};
    NodeRole role = NodeRole::kHonest;
    /// Rounds to run; 0 = default_round_bound(sim), the simulator's horizon.
    std::int64_t max_rounds = 0;
    PerfectLink::Options link{};
    /// Barrier timeout per round (0 = wait forever). Equivalence runs use 0;
    /// deployments set a generous bound so one dead process cannot wedge the
    /// whole torus.
    std::chrono::milliseconds round_timeout{0};
    /// After the last round, keep acking/retransmitting until every peer got
    /// our traffic, at most this long.
    std::chrono::milliseconds linger_timeout{2000};
    /// Optional event sink (round_started / message_delivered /
    /// node_committed, same schema as the simulator's). Not owned.
    RoundTrace* trace = nullptr;
    /// Cooperative shutdown probe, polled once per pump. Null = never stop.
    std::function<bool()> stop_requested;
    /// Test hook: overrides make_node_behavior (e.g. to wrap a behavior with
    /// an artificial delay for the slow-node test). Null = the shared recipe.
    std::function<std::unique_ptr<NodeBehavior>(const SimConfig&,
                                                const Torus&, NodeRole)>
        behavior_factory;
  };

  /// `transport` is borrowed and must outlive the node. Throws
  /// std::invalid_argument on configurations the runtime cannot realize.
  RuntimeNode(Options opts, Transport& transport);

  /// Runs the event loop to completion and reports the verdict. Blocking;
  /// call from the thread that owns the transport.
  RuntimeVerdict run();

  // BroadcastBackend:
  const Torus& torus() const override { return torus_; }
  std::int32_t radius() const override { return opts_.sim.r; }
  Metric metric() const override { return opts_.sim.metric; }
  std::int64_t round() const override { return round_; }
  Rng& rng() override { return rng_; }
  void record_commit(Coord node, std::uint8_t value) override;

 private:
  void queue_broadcast(Coord sender, Message msg) override;
  void queue_spoofed_broadcast(Coord actual_sender, Coord claimed_sender,
                               Message msg) override;

  /// Drains the link (feeding the synchronizer) and runs retransmissions.
  void pump();
  /// Sends round k's queued broadcasts plus the ROUND_DONE(k) marker.
  void finish_round(std::int64_t k);
  bool stop_requested() const {
    return opts_.stop_requested && opts_.stop_requested();
  }

  Options opts_;
  Torus torus_;
  std::int32_t self_index_;
  Rng rng_;
  PerfectLink link_;
  LocalBroadcast broadcast_;
  RoundSynchronizer sync_;
  std::unique_ptr<NodeBehavior> behavior_;
  std::int64_t round_ = 0;
  std::vector<Message> outbox_;
  std::vector<ReceivedMessage> rx_buffer_;
  Counters counters_;
};

}  // namespace rbcast
