#pragma once
// One node of the networked runtime.
//
// RuntimeNode is the UDP-backed sibling of RadioNetwork: it implements the
// BroadcastBackend interface (net/backend.h), so the very same protocol
// objects the simulator hosts run here unmodified. The stack underneath is
//
//   NodeBehavior (protocols/*)      — unchanged protocol logic
//   RuntimeNode                      — event loop, round mapping, verdicts
//   RoundSynchronizer                — TDMA rounds on real time
//   LocalBroadcast                   — CSR-neighbor fan-out
//   PerfectLink                      — ack/retransmit, dedup, FIFO
//   Transport (UDP or fault shim)    — unreliable datagrams
//
// Round mapping mirrors the simulator exactly: everything a behavior
// broadcasts while round() == k is tagged round k and delivered to every
// neighbor at round k+1, after the barrier confirms all round-k traffic is
// in; deliveries are replayed in the simulator's TDMA order (sender index
// ascending, per-sender FIFO). That, plus a shared node-population recipe
// (core/simulation.h's make_node_behavior), is what makes sim and runtime
// verdicts comparable bit-for-bit (tests/test_runtime_equivalence.cpp).

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "radiobcast/core/simulation.h"
#include "radiobcast/net/backend.h"
#include "radiobcast/obs/counters.h"
#include "radiobcast/obs/latency.h"
#include "radiobcast/obs/trace.h"
#include "radiobcast/runtime/event_loop.h"
#include "radiobcast/runtime/local_broadcast.h"
#include "radiobcast/runtime/perfect_link.h"
#include "radiobcast/runtime/round_sync.h"
#include "radiobcast/runtime/snapshot.h"
#include "radiobcast/runtime/transport.h"
#include "radiobcast/util/rng.h"

namespace rbcast {

/// The outcome one runtime node reports when its event loop exits.
struct RuntimeVerdict {
  std::int32_t index = 0;
  Coord self{};
  NodeRole role = NodeRole::kHonest;
  std::optional<std::uint8_t> committed;
  std::int64_t commit_round = -1;
  std::int64_t rounds = 0;
  /// All of this node's transmissions were acked before the linger deadline.
  bool lingered_clean = false;
  /// The loop exited early on a shutdown request (SIGINT/SIGTERM).
  bool interrupted = false;
  /// The loop exited via crash injection (Options::crash_at_round) or — in a
  /// placeholder verdict synthesized by the orchestrator — the process died
  /// before writing a real verdict. A crashed verdict makes the deployment
  /// degraded, never successful.
  bool crashed = false;
  Counters counters;
  /// Wall-clock duration of each finished round (barrier opened to round
  /// traffic flushed), microseconds. Timing-dependent: excluded from the
  /// deterministic verdict core (runtime/harness.h).
  LatencyHistogram round_latency;
  /// Wall-clock from run() start to each commit this node recorded.
  LatencyHistogram commit_latency;
};

class RuntimeNode final : public BroadcastBackend {
 public:
  struct Options {
    /// Protocol / topology configuration, interpreted exactly as
    /// run_simulation does. loss_p > 0 is realized as deterministic
    /// message-level suppression above the link (the PairwiseLossChannel
    /// schedule — see finish_round); retransmissions must be 1 (the link
    /// layer owns retransmission here); kSpoofing is rejected (socket
    /// identity makes it impossible) and kJamming is realized geometrically
    /// for jam_budget <= 0 only (a bounded budget is a globally ordered
    /// ledger no distributed node can replicate).
    SimConfig sim;
    Coord self{};
    NodeRole role = NodeRole::kHonest;
    /// Rounds to run; 0 = default_round_bound(sim), the simulator's horizon.
    std::int64_t max_rounds = 0;
    /// How the node idles between barrier checks: kPoll naps a fixed 50 us
    /// cadence (the reference backend); kEpoll blocks on Transport::wait
    /// until socket readiness or the earliest of the retransmission /
    /// barrier-timeout deadlines (runtime/event_loop.h).
    RuntimeBackend backend = RuntimeBackend::kPoll;
    PerfectLink::Options link{};
    /// Barrier timeout per round (0 = wait forever). Equivalence runs use 0;
    /// deployments set a generous bound so one dead process cannot wedge the
    /// whole torus.
    std::chrono::milliseconds round_timeout{0};
    /// After the last round, keep acking/retransmitting until every peer got
    /// our traffic, at most this long.
    std::chrono::milliseconds linger_timeout{2000};
    /// Consecutive timed-out barriers before a missing peer stops gating
    /// rounds (RoundSynchronizer suspicion; 0 = never suspect).
    int suspect_after = 0;
    /// kJamming only: the jammers' canonical coordinates (the scenario's
    /// fault set) — the geometric blackout is computed from these.
    std::vector<Coord> jammers;
    /// Crash injection: _exit the event loop right after finishing this
    /// round (-1 = never). The verdict comes back with crashed = true; the
    /// caller decides whether to restart (see resume).
    std::int64_t crash_at_round = -1;
    /// When set, an fsync'd NodeSnapshot is written after every finished
    /// round, and `resume = true` restores from it instead of running
    /// on_start — the crash/restart recovery path (runtime/snapshot.h).
    std::string snapshot_path;
    bool resume = false;
    /// Optional event sink (round_started / message_delivered /
    /// node_committed, same schema as the simulator's). Not owned.
    RoundTrace* trace = nullptr;
    /// Cooperative shutdown probe, polled once per pump. Null = never stop.
    std::function<bool()> stop_requested;
    /// Test hook: overrides make_node_behavior (e.g. to wrap a behavior with
    /// an artificial delay for the slow-node test). Null = the shared recipe.
    std::function<std::unique_ptr<NodeBehavior>(const SimConfig&,
                                                const Torus&, NodeRole)>
        behavior_factory;
  };

  /// `transport` is borrowed and must outlive the node. Throws
  /// std::invalid_argument on configurations the runtime cannot realize.
  RuntimeNode(Options opts, Transport& transport);

  /// Runs the event loop to completion and reports the verdict. Blocking;
  /// call from the thread that owns the transport.
  RuntimeVerdict run();

  // BroadcastBackend:
  const Torus& torus() const override { return torus_; }
  std::int32_t radius() const override { return opts_.sim.r; }
  Metric metric() const override { return opts_.sim.metric; }
  std::int64_t round() const override { return round_; }
  Rng& rng() override { return rng_; }
  void record_commit(Coord node, std::uint8_t value) override;

 private:
  void queue_broadcast(Coord sender, Message msg) override;
  void queue_spoofed_broadcast(Coord actual_sender, Coord claimed_sender,
                               Message msg) override;

  /// Drains the link (feeding the synchronizer) and runs retransmissions.
  void pump();
  /// Idles until new traffic is plausible or `cap` passes. Poll backend: a
  /// fixed 50 us nap. Epoll backend: blocks on the transport's readiness
  /// mechanism, bounded by the link's next retransmission deadline.
  void wait_for_traffic(std::chrono::steady_clock::time_point cap);
  /// Sends round k's queued broadcasts plus the ROUND_DONE(k) marker — with
  /// the channel policy (loss / jamming) applied per receiver, so each
  /// marker's done_count is the number of messages that receiver was
  /// actually sent. Writes the state snapshot afterwards when configured.
  void finish_round(std::int64_t k, std::int64_t bound);
  /// True iff the channel policy suppresses this transmission to `receiver`
  /// (consumes one loss draw when the loss schedule is active).
  bool suppressed(std::uint32_t receiver);
  void write_state(std::int64_t k);
  /// Restores link / loss / verdict state from the snapshot; returns the
  /// last finished round, or -1 when no snapshot exists (fresh start).
  std::int64_t restore_state();
  bool stop_requested() const {
    return opts_.stop_requested && opts_.stop_requested();
  }

  Options opts_;
  Torus torus_;
  std::int32_t self_index_;
  Rng rng_;
  Transport* transport_;
  PerfectLink link_;
  LocalBroadcast broadcast_;
  RoundSynchronizer sync_;
  const Adjacency* adjacency_;
  std::unique_ptr<NodeBehavior> behavior_;
  std::int64_t round_ = 0;
  std::vector<Message> outbox_;
  std::vector<ReceivedMessage> rx_buffer_;
  Counters counters_;
  /// Per-receiver deterministic loss schedule (loss_p > 0): the same
  /// pairwise streams PairwiseLossChannel draws from, plus the draw counts
  /// that let a restart fast-forward to the right stream position.
  struct LossStream {
    Rng rng;
    std::uint64_t draws = 0;
  };
  std::unordered_map<std::uint32_t, LossStream> loss_;
  bool loss_active_ = false;
  /// Receivers blacked out by unbounded jamming (static geometry).
  std::vector<bool> jammed_receiver_;
  bool jam_active_ = false;
  /// Verdict floor restored from a pre-crash snapshot.
  std::optional<std::uint8_t> restored_committed_;
  std::int64_t restored_commit_round_ = -1;
  std::chrono::steady_clock::time_point run_start_{};
  LatencyHistogram round_hist_;
  LatencyHistogram commit_hist_;
};

}  // namespace rbcast
