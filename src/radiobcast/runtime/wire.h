#pragma once
// Wire format of the networked runtime (docs/RUNTIME.md).
//
// One UDP datagram carries one Packet: either a DATA batch of up to
// kMaxBatch link messages, or an ACK batch of up to kMaxAcksPerPacket packed
// 64-bit message ids. A link message id packs (sender node index, per-link
// sequence number) into one uint64 — the same packed-key idiom as the PR 5
// HEARD dedup keys — so duplicate suppression and ack bookkeeping are flat
// integer-set operations.
//
// Payloads are either a protocol Message (COMMITTED / HEARD, tagged with the
// TDMA round it belongs to) or a ROUND_DONE barrier marker announcing how
// many protocol messages its sender broadcast in that round; the round
// synchronizer (runtime/round_sync.h) consumes both.
//
// Encoding is explicit little-endian byte packing: no struct casts, no
// padding leaks, malformed datagrams decode to false instead of UB.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "radiobcast/net/message.h"

namespace rbcast {

/// Datagram kinds.
enum class PacketKind : std::uint8_t { kData = 0, kAck = 1 };

/// Link-message payload kinds.
enum class WireKind : std::uint8_t { kProtocol = 0, kRoundDone = 1 };

/// At most this many link messages are batched into one DATA datagram
/// (mirroring the classic perfect-link stacks this layer is modeled on).
inline constexpr std::size_t kMaxBatch = 8;
/// At most this many message ids per ACK datagram.
inline constexpr std::size_t kMaxAcksPerPacket = 64;
/// Upper bound on an encoded datagram; comfortably under every MTU.
inline constexpr std::size_t kMaxDatagram = 1280;

/// Packs (sender node index, per-link sequence number) into a message id.
constexpr std::uint64_t pack_message_id(std::uint32_t sender,
                                        std::uint32_t seq) {
  return (static_cast<std::uint64_t>(sender) << 32) | seq;
}
constexpr std::uint32_t message_id_sender(std::uint64_t id) {
  return static_cast<std::uint32_t>(id >> 32);
}
constexpr std::uint32_t message_id_seq(std::uint64_t id) {
  return static_cast<std::uint32_t>(id);
}

/// One link message: a round-tagged protocol Message or a barrier marker.
struct WireMessage {
  WireKind kind = WireKind::kProtocol;
  /// TDMA round this payload belongs to (the sender's round when queued).
  std::int64_t round = 0;
  /// kProtocol: the protocol message being broadcast.
  Message msg{};
  /// kRoundDone: protocol messages the sender broadcast in `round`.
  std::uint32_t done_count = 0;

  friend bool operator==(const WireMessage&, const WireMessage&) = default;
};

/// A message plus its link-level identity.
struct WireEntry {
  std::uint64_t id = 0;
  WireMessage payload;

  friend bool operator==(const WireEntry&, const WireEntry&) = default;
};

/// One datagram's worth of traffic.
struct Packet {
  PacketKind kind = PacketKind::kData;
  /// Node index of the transmitter (the runtime's unspoofable identity: the
  /// orchestrator binds each index to one socket, so a datagram's origin is
  /// authenticated by the socket layer rather than by this field alone).
  std::uint32_t sender = 0;
  std::vector<WireEntry> entries;     // kData
  std::vector<std::uint64_t> acks;    // kAck

  friend bool operator==(const Packet&, const Packet&) = default;
};

/// Encodes into a flat datagram. Throws std::length_error if the packet
/// exceeds the batch bounds above.
std::vector<std::uint8_t> encode_packet(const Packet& packet);

/// Decodes a received datagram. Returns false (leaving `out` unspecified) on
/// any malformed input: wrong magic, truncation, oversized counts.
bool decode_packet(std::span<const std::uint8_t> datagram, Packet& out);

}  // namespace rbcast
