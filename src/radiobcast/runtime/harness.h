#pragma once
// Runtime harnesses: launch every node of a scenario and score the verdicts.
//
// Two launch modes share all scoring code:
//
//  * run_scenario_threads — one std::thread per node, ephemeral UDP ports
//    discovered after binding, caches pre-warmed before any thread starts
//    (NeighborhoodTable's lazy cache is not synchronized). This is what the
//    tests and benchmarks use: no subprocess machinery, real sockets.
//  * process mode — the radiobcast-runtime orchestrator fork/execs one
//    radiobcast-node per node on fixed ports (scenario base_port + index);
//    each child serializes its RuntimeVerdict into a per-node file that the
//    orchestrator collects and scores with the same score_verdicts().

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "radiobcast/runtime/node.h"
#include "radiobcast/runtime/scenario.h"

namespace rbcast {

/// Scenario-wide outcome, scored exactly like SimResult's verdict section so
/// the equivalence test can compare field-for-field.
struct RuntimeResult {
  std::vector<RuntimeVerdict> verdicts;  // by node index
  std::int64_t honest_nodes = 0;         // excluding the source
  std::int64_t correct_commits = 0;
  std::int64_t wrong_commits = 0;
  std::int64_t undecided = 0;
  std::int64_t rounds = 0;  // max over nodes
  bool any_interrupted = false;
  /// Verdicts that ended in a crash (injected or synthesized for a dead
  /// process), any role.
  std::int64_t crashed_nodes = 0;
  /// Honest nodes whose final verdict is a crash without a commit — excused
  /// from the degraded-correct bar (they died, they were not wrong).
  std::int64_t crashed_undecided = 0;
  Counters counters;  // merged over nodes
  /// Deployment-wide latency distributions, merged over nodes (log-bucketed,
  /// so merging loses nothing — obs/latency.h). Quantiles via quantile_us.
  LatencyHistogram round_latency;
  LatencyHistogram commit_latency;

  bool success() const {
    return wrong_commits == 0 && correct_commits == honest_nodes;
  }

  /// The deployment hit faults (crashes, restarts, timed-out or incomplete
  /// barriers) even if the protocol outcome is intact.
  bool degraded() const {
    return crashed_nodes > 0 || counters.node_restarts > 0 ||
           counters.barrier_timeouts > 0 || counters.degraded_rounds > 0;
  }

  /// Degraded-but-correct: nobody committed a wrong value and every honest
  /// node that survived to the end committed correctly. This is the bar a
  /// chaos deployment must clear — weaker than success() only in excusing
  /// nodes that died.
  bool degraded_correct() const {
    return wrong_commits == 0 &&
           correct_commits + crashed_undecided == honest_nodes;
  }
};

/// Scores collected per-node verdicts against the scenario's ground truth.
/// Throws std::invalid_argument if verdicts are missing or duplicated.
RuntimeResult score_verdicts(const Scenario& scenario,
                             std::vector<RuntimeVerdict> verdicts);

/// Runs every node of the scenario as a thread in this process over real
/// loopback UDP sockets (ephemeral ports). `tweak`, when set, may adjust
/// each node's options before construction (test hook: behavior factories,
/// timeouts, trace sinks). Propagates the first node exception, if any.
/// When the scenario has a chaos section, every node's transport is wrapped
/// in a seeded ChaosTransport; when it has crash_node + restart_after_ms and
/// a state_dir, the crashed node's thread relaunches it from its snapshot.
RuntimeResult run_scenario_threads(
    const Scenario& scenario,
    const std::function<void(RuntimeNode::Options&)>& tweak = nullptr);

/// Serializes a verdict as line-based `key value` text (the per-node file of
/// process mode).
void write_verdict(std::ostream& out, const RuntimeVerdict& verdict);

/// Serializes only the deterministic subset of a verdict: the fields that are
/// a pure function of the scenario (protocol outcome and message-count
/// counters), excluding everything timing-dependent (link traffic, barrier
/// waits, chaos stats, latency histograms). Two runs of one scenario on
/// different backends must produce byte-identical cores — the cross-backend
/// equivalence bar (tests/test_runtime_equivalence.cpp).
void write_verdict_core(std::ostream& out, const RuntimeVerdict& verdict);

/// Inverse of write_verdict. Throws std::invalid_argument on malformed input.
RuntimeVerdict parse_verdict(std::istream& in);

/// Builds the RuntimeNode options a given node index runs with — the single
/// recipe shared by the thread harness and the radiobcast-node binary, so
/// both modes configure nodes identically.
RuntimeNode::Options node_options(const Scenario& scenario,
                                  std::int32_t index);

}  // namespace rbcast
