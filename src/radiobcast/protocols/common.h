#pragma once
// Shared protocol state machinery.
//
// Both Byzantine protocols (Section VI and Section VI-B) commit through the
// same final rule: a node commits to v once it has *reliably determined* that
// at least t+1 nodes lying in some single neighborhood committed to v. The
// NeighborhoodCommitCounter implements that rule incrementally: every new
// determination (origin, v) bumps a counter for every center c with origin in
// nbd(c); the first (c, v) counter to reach t+1 triggers the commit.

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "radiobcast/grid/coord.h"
#include "radiobcast/grid/metric.h"
#include "radiobcast/grid/neighborhood.h"
#include "radiobcast/grid/torus.h"

namespace rbcast {

/// Parameters shared by all protocol behaviors.
struct ProtocolParams {
  std::int64_t t = 0;   // local fault bound the protocol is configured for
  Coord source{0, 0};   // the designated dealer (known to every node)
  /// Keep accumulating evidence and determinations after committing. The
  /// paper's protocol never stops; operationally the post-commit bookkeeping
  /// is dead state (a node's only outward signal is its COMMITTED broadcast,
  /// already sent), so the default skips it for speed. The Fig 1 fidelity
  /// tests turn it on to observe the full determination set.
  bool track_after_commit = false;
};

/// Incremental evaluation of the "t+1 determined committers within one
/// neighborhood" commit rule. Single value domain {0,1}.
class NeighborhoodCommitCounter {
 public:
  NeighborhoodCommitCounter(const Torus& torus, std::int32_t r, Metric m,
                            std::int64_t t);

  /// Records a reliable determination that `origin` committed `value`.
  /// Idempotent per (origin, value). Returns the value to commit to when the
  /// rule first fires (and keeps firing state so callers may stop consulting
  /// it afterwards).
  std::optional<std::uint8_t> record(Coord origin, std::uint8_t value);

  bool is_determined(Coord origin, std::uint8_t value) const;

  std::int64_t determined_count() const {
    return static_cast<std::int64_t>(determined_.size());
  }

 private:
  Torus torus_;  // by value: tiny, and avoids lifetime coupling to callers
  std::int32_t r_;
  Metric m_;
  std::int64_t t_;
  // Hoisted out of record(): tables are process-lifetime, so one lookup at
  // construction replaces a mutex-guarded cache hit per determination.
  const NeighborhoodTable* table_;
  // (origin, value) pairs already recorded; value packed in the low bit.
  std::unordered_set<std::uint64_t> determined_;
  // Per-center counts of determined committers, one slot per value.
  std::unordered_map<Coord, std::array<std::int32_t, 2>> center_counts_;
};

/// Packs an (origin, value) pair into a hashable key (coordinates are
/// canonical torus coords, so 21 bits per component is ample).
std::uint64_t origin_value_key(Coord origin, std::uint8_t value);

}  // namespace rbcast
