#pragma once
// The simplified Bhandari–Vaidya protocol (Section VI-B, and the companion
// report [10]): only the *immediate neighbors* of a node that sent a
// COMMITTED message send a HEARD message reporting it, so information about
// a commit travels at most two hops. This achieves the same exact threshold
// t < r(2r+1)/2 as the full protocol in L∞, with far less traffic.
//
// Commit rule implemented (a localized instance of Section V's sufficient
// condition):
//  * reliable determination of (i, v):
//      - heard COMMITTED(i, v) from i directly (first value per sender), or
//      - heard HEARD(k, i, v) from t+1 distinct reporters k such that, for
//        some single center c, i and all t+1 reporters lie in nbd(c). Since
//        each such evidence chain has exactly one intermediate and the
//        reporters are distinct, the chains are automatically node-disjoint;
//        at most t of them can be faulty, so one is honest and truthful.
//  * commit to v once t+1 determined committers of v lie in one neighborhood
//    (NeighborhoodCommitCounter).

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "radiobcast/grid/neighborhood.h"
#include "radiobcast/net/network.h"
#include "radiobcast/protocols/common.h"
#include "radiobcast/protocols/determination.h"

namespace rbcast {

class BvTwoHopBehavior final : public NodeBehavior {
 public:
  BvTwoHopBehavior(const ProtocolParams& params, const Torus& torus,
                   std::int32_t r, Metric m);

  void on_receive(NodeContext& ctx, const Envelope& env) override;

  std::optional<std::uint8_t> committed_value() const override {
    return committed_;
  }

  std::optional<std::int64_t> commit_round() const override {
    return commit_round_;
  }

  /// Number of (origin, value) pairs this node has reliably determined
  /// (exposed for tests and the overhead experiments).
  std::int64_t determinations() const { return counter_.determined_count(); }

  /// True iff this node has reliably determined that `origin` committed
  /// `value`.
  bool has_determined(Coord origin, std::uint8_t value) const {
    return counter_.is_determined(origin, value);
  }

 private:
  void handle_committed(NodeContext& ctx, const Envelope& env);
  void handle_heard(NodeContext& ctx, const Envelope& env);
  void determine(NodeContext& ctx, Coord origin, std::uint8_t value);
  void commit(NodeContext& ctx, std::uint8_t value);

  ProtocolParams params_;
  std::int32_t r_;
  Metric m_;
  // Hoisted per-message lookup (no mutex-guarded cache hit per HEARD).
  const NeighborhoodTable& table_;
  // Incremental engine (protocols/determination.h): one precomputed bitset
  // walk per HEARD instead of K geometry tests. Non-null iff
  // CenterTable::supported(r, m) and the torus is wide enough (> 2r per
  // side) that distinct center offsets never wrap to one coordinate — the
  // fold is baked into the table, so this also covers tori in (2r, 4r) that
  // the raw-arithmetic path below cannot.
  const CenterTable* center_table_;
  // True when the torus is large enough (width, height >= 4r) that offset
  // arithmetic up to 2r never wraps ambiguously; the reporter counting then
  // runs entirely in offset space with flat per-offset-index count arrays.
  const bool offset_exact_;
  std::optional<std::uint8_t> committed_;
  std::optional<std::int64_t> commit_round_;
  NeighborhoodCommitCounter counter_;
  // First COMMITTED value per sender (no-duplicity rule).
  std::unordered_map<Coord, std::uint8_t> first_committed_;
  // (reporter, origin) pairs whose first HEARD has been consumed.
  std::unordered_set<std::uint64_t> heard_consumed_;
  // Per (origin, value): count of accepted reporters per candidate center,
  // indexed by the center's position in the neighborhood offset table
  // (offset_exact_ path; candidate centers are exactly origin + offset).
  std::unordered_map<std::uint64_t, std::vector<std::int32_t>>
      reporter_counts_;
  // Coord-keyed fallback for tiny tori where distinct offsets can wrap to
  // the same canonical center and counts must merge.
  std::unordered_map<std::uint64_t, std::unordered_map<Coord, std::int32_t>>
      reporter_counts_legacy_;
};

}  // namespace rbcast
