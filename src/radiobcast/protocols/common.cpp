#include "radiobcast/protocols/common.h"

namespace rbcast {

std::uint64_t origin_value_key(Coord origin, std::uint8_t value) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(origin.x))
          << 33) ^
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(origin.y))
          << 1) ^
         (value & 1);
}

NeighborhoodCommitCounter::NeighborhoodCommitCounter(const Torus& torus,
                                                     std::int32_t r, Metric m,
                                                     std::int64_t t)
    : torus_(torus),
      r_(r),
      m_(m),
      t_(t),
      table_(&NeighborhoodTable::get(r, m)) {}

bool NeighborhoodCommitCounter::is_determined(Coord origin,
                                              std::uint8_t value) const {
  return determined_.count(origin_value_key(torus_.wrap(origin), value)) > 0;
}

std::optional<std::uint8_t> NeighborhoodCommitCounter::record(
    Coord origin, std::uint8_t value) {
  const Coord o = torus_.wrap(origin);
  if (!determined_.insert(origin_value_key(o, value)).second) {
    return std::nullopt;
  }
  // origin lies in nbd(c) exactly for the centers c within distance r of it
  // (centers are nodes; origin itself is not a center of a neighborhood that
  // contains it, since nbd(c) excludes c).
  std::optional<std::uint8_t> fired;
  for (const Offset off : table_->offsets()) {
    const Coord c = torus_.wrap(o + off);
    auto& counts = center_counts_[c];
    counts[value & 1] += 1;
    if (counts[value & 1] >= t_ + 1 && !fired) fired = value;
  }
  return fired;
}

}  // namespace rbcast
