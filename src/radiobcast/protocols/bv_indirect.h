#pragma once
// The full Bhandari–Vaidya Byzantine broadcast protocol (Section VI):
// COMMITTED announcements plus HEARD reports relayed through up to three
// intermediate nodes (four hops from the committer). Achieves the exact
// threshold t < r(2r+1)/2 in L∞ (Theorems 1-3).
//
// Reliable determination of (origin, v):
//   - heard COMMITTED(origin, v) from origin directly (first value per
//     sender), or
//   - holds t+1 *node-disjoint* reported paths origin -> relayers... whose
//     nodes (origin and every relayer) all lie in nbd(c) for a single center
//     c. Reports are atomic trust units (a report is truthful iff all its
//     relayers are honest), so disjointness is computed by exact set packing
//     over whole reports (paths/packing.h), never by recombining hops.
//
// Commit rule: t+1 determined committers of v within one neighborhood
// (NeighborhoodCommitCounter), as in the two-hop variant.
//
// Relay modes:
//   kFlood     — faithful protocol: relay every plausible, potentially useful
//                HEARD (the chain plus the relayer must still fit in a single
//                neighborhood with the committer, otherwise no decider could
//                ever accept an extension of it).
//   kEarmarked — relay only along the constructive path families of Theorem 3
//                (protocols/earmark.h); same commit outcomes, far less
//                traffic. L∞ only.

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "radiobcast/grid/neighborhood.h"
#include "radiobcast/net/network.h"
#include "radiobcast/paths/packing.h"
#include "radiobcast/protocols/common.h"
#include "radiobcast/protocols/determination.h"

namespace rbcast {

class EarmarkPlan;

enum class RelayMode : std::uint8_t { kFlood, kEarmarked };

class BvIndirectBehavior final : public NodeBehavior {
 public:
  /// Largest radius for which the packed uint64 HEARD dedup key
  /// (pack_report_key) is injective: chain components are bounded by 3r and
  /// encoded in 8-bit two's complement, so 3r <= 126. The constructor
  /// rejects larger radii loudly — silent key collisions could merge
  /// distinct reports and delay (never forge) determinations, but only
  /// nondeterministically enough to be worth forbidding outright.
  static constexpr std::int32_t kMaxReportKeyRadius = 42;

  /// Throws std::invalid_argument unless 1 <= r <= kMaxReportKeyRadius.
  BvIndirectBehavior(const ProtocolParams& params, const Torus& torus,
                     std::int32_t r, Metric m, RelayMode mode);

  void on_receive(NodeContext& ctx, const Envelope& env) override;
  void on_round_end(NodeContext& ctx) override;

  std::optional<std::uint8_t> committed_value() const override {
    return committed_;
  }

  std::optional<std::int64_t> commit_round() const override {
    return commit_round_;
  }

  std::int64_t determinations() const { return counter_.determined_count(); }

  /// True iff this node has reliably determined that `origin` committed
  /// `value` (exposed for the Fig 1 region-M fidelity tests).
  bool has_determined(Coord origin, std::uint8_t value) const {
    return counter_.is_determined(origin, value);
  }

 private:
  /// Evidence about one (origin, value) pair.
  ///
  /// Growth is bounded against report-flooding adversaries: at most
  /// kReportsPerFirstRelayer reports are kept per first relayer (the first
  /// relayer must be a plausible direct neighbor of the committer, so there
  /// are at most |nbd| of them). Honest constructive families use distinct
  /// first relayers, so the cap never starves an honest determination; junk
  /// beyond the cap is dropped, which can only delay liveness, never break
  /// safety.
  struct Evidence {
    Coord origin{};  // cached (keys are one-way hashes of the pair)
    // Bit index per relayer coordinate seen in reports for this key.
    std::unordered_map<Coord, int> node_bits;
    std::vector<Coord> bit_coords;  // inverse of node_bits
    struct Report {
      RelayerChain relayers;
      // Origin-relative torus deltas of the relayers (rel[i] = delta(origin,
      // relayers[i])): the geometry tests below run in offset space with no
      // per-node wrap calls, and the packed dedup key is built from these.
      std::array<Offset, RelayerChain::kCapacity> rel{};
      NodeMask mask;
    };
    std::vector<Report> reports;
    // Deduplicated by the packed origin-relative encoding of the chain (a
    // uint64; see pack_report_key in the .cpp) — no per-HEARD string builds.
    std::unordered_set<std::uint64_t> dedup;
    std::unordered_map<Coord, int> per_first_relayer;
    // Re-evaluation memo: reports.size() at the last on_round_end check.
    std::size_t evaluated_at = 0;
  };

  static constexpr int kReportsPerFirstRelayer = 8;

  /// Incremental-engine evidence for one (origin, value) pair (used when
  /// CenterTable supports (r, m) — every r <= 7; Evidence above is the
  /// legacy fallback for larger radii).
  struct FastEvidence {
    Coord origin{};
    IncrementalDetermination det;
  };

  void handle_committed(NodeContext& ctx, const Envelope& env);
  void handle_heard(NodeContext& ctx, const Envelope& env);
  void handle_heard_legacy(NodeContext& ctx, const Envelope& env);
  void accept_report_legacy(
      std::uint64_t key, Coord origin, const RelayerChain& chain,
      const std::array<Offset, RelayerChain::kCapacity>& rel);
  void determine(NodeContext& ctx, Coord origin, std::uint8_t value);
  void commit(NodeContext& ctx, std::uint8_t value);
  bool try_determine_from_reports(const Torus& torus, Coord origin,
                                  const Evidence& ev) const;

  ProtocolParams params_;
  std::int32_t r_;
  Metric m_;
  RelayMode mode_;
  // Hoisted per-message lookups: the neighborhood table and (for kEarmarked)
  // the relay plan are resolved once at construction instead of through a
  // mutex-guarded cache on every HEARD.
  const NeighborhoodTable& table_;
  const EarmarkPlan* earmarks_;  // non-null iff mode == kEarmarked
  // Incremental determination engine (protocols/determination.h): non-null
  // iff CenterTable::supported(r, m). When set, evidence lives in
  // fast_evidence_ and relay-usefulness tests are single bitset ANDs; the
  // legacy evidence_ path below only serves 8 <= r <= kMaxReportKeyRadius.
  const CenterTable* center_table_;
  std::uint64_t digest_seed_;
  // True when the torus is large enough (width, height >= 8r) that offset
  // arithmetic up to 4r never wraps ambiguously, so containment tests can
  // run on origin-relative deltas; tiny tori fall back to coord-space tests.
  const bool offset_exact_;
  std::optional<std::uint8_t> committed_;
  std::optional<std::int64_t> commit_round_;
  NeighborhoodCommitCounter counter_;
  std::unordered_map<Coord, std::uint8_t> first_committed_;
  std::unordered_map<std::uint64_t, Evidence> evidence_;  // by (origin,value)
  std::unordered_map<std::uint64_t, FastEvidence> fast_evidence_;
  std::unordered_set<std::uint64_t> dirty_;               // keys to re-check
  // Reusable scratch for try_determine_from_reports / on_round_end; cleared
  // per use, capacity retained (no per-candidate-center allocations).
  mutable std::vector<NodeMask> scratch_masks_;
  mutable std::vector<std::uint32_t> scratch_first_;  // packed first relayers
  std::vector<std::uint64_t> scratch_keys_;
};

}  // namespace rbcast
