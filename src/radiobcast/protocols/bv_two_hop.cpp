#include "radiobcast/protocols/bv_two_hop.h"

#include "radiobcast/grid/neighborhood.h"

namespace rbcast {

namespace {

std::uint64_t pair_key(std::int32_t a, std::int32_t b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

}  // namespace

BvTwoHopBehavior::BvTwoHopBehavior(const ProtocolParams& params,
                                   const Torus& torus, std::int32_t r,
                                   Metric m)
    : params_(params),
      r_(r),
      m_(m),
      table_(NeighborhoodTable::get(r, m)),
      center_table_(CenterTable::supported(r, m) && torus.width() > 2 * r &&
                            torus.height() > 2 * r
                        ? &CenterTable::get(r, m, torus.width(),
                                            torus.height())
                        : nullptr),
      offset_exact_(torus.width() >= 4 * r && torus.height() >= 4 * r),
      counter_(torus, r, m, params.t) {}

void BvTwoHopBehavior::commit(NodeContext& ctx, std::uint8_t value) {
  if (committed_.has_value()) return;
  committed_ = value;
  commit_round_ = ctx.round();
  ctx.note_commit(value);
  ctx.broadcast(make_committed(ctx.self(), value));
}

void BvTwoHopBehavior::determine(NodeContext& ctx, Coord origin,
                                 std::uint8_t value) {
  if (const auto fired = counter_.record(origin, value)) commit(ctx, *fired);
}

void BvTwoHopBehavior::on_receive(NodeContext& ctx, const Envelope& env) {
  switch (env.msg.type) {
    case MsgType::kCommitted:
      handle_committed(ctx, env);
      break;
    case MsgType::kHeard:
      handle_heard(ctx, env);
      break;
  }
}

void BvTwoHopBehavior::handle_committed(NodeContext& ctx,
                                        const Envelope& env) {
  const Torus& torus = ctx.torus();
  // A COMMITTED's origin must be the transmitter itself.
  if (torus.wrap(env.msg.origin) != env.sender) return;
  const auto [it, inserted] = first_committed_.emplace(env.sender, env.msg.value);
  if (!inserted) return;  // no-duplicity: only the first message counts
  const std::uint8_t v = it->second;

  // Relay duty: immediate neighbors of a committer report the commit once.
  ctx.broadcast(make_heard({ctx.self()}, env.sender, v));

  // Direct reliable determination; neighbors of the source commit instantly.
  if (env.sender == torus.wrap(params_.source)) commit(ctx, v);
  // Post-commit, further determinations are dead state (unless tracked).
  if (!committed_.has_value() || params_.track_after_commit) {
    determine(ctx, env.sender, v);
  }
}

void BvTwoHopBehavior::handle_heard(NodeContext& ctx, const Envelope& env) {
  // The two-hop protocol has no relay duty for HEARD messages, and evidence
  // only feeds our own commit decision: once committed, skip everything
  // (unless full tracking is requested).
  if (committed_.has_value() && !params_.track_after_commit) return;
  const Torus& torus = ctx.torus();
  const Message& msg = env.msg;
  // Two-hop protocol: exactly one relayer, and it must be the transmitter.
  if (msg.relayers.size() != 1) return;
  const Coord reporter = env.sender;
  if (torus.wrap(msg.relayers[0]) != reporter) return;
  const Coord origin = torus.wrap(msg.origin);
  // The reporter must plausibly have heard the committer directly.
  if (origin == reporter || !torus.within(origin, reporter, r_, m_)) return;
  if (origin == ctx.self()) return;  // reports about myself carry no news
  // First HEARD per (reporter, origin) only.
  if (!heard_consumed_
           .insert(pair_key(torus.index(reporter), torus.index(origin)))
           .second) {
    return;
  }
  const std::uint8_t v = msg.value & 1;
  if (counter_.is_determined(origin, v)) return;

  // Count this reporter toward every candidate center c whose neighborhood
  // contains both the committer and the reporter (c itself excluded from
  // nbd(c)). t+1 distinct reporters under one center are t+1 node-disjoint
  // evidence chains confined to that neighborhood.
  bool determined = false;
  if (center_table_ != nullptr) {
    // Incremental engine: the centers whose neighborhood contains both the
    // origin and the reporter at delta d are precomputed — walk the bitset
    // instead of testing all K offsets. Identical counts to the loops below
    // (the table bakes in this torus's fold).
    auto& counts = reporter_counts_[origin_value_key(origin, v)];
    if (counts.empty()) counts.assign(static_cast<std::size_t>(table_.size()), 0);
    const Offset d = torus.delta(origin, reporter);
    const std::int64_t threshold = params_.t + 1;
    center_table_->containing(d).for_each([&](int k) {
      auto& count = counts[static_cast<std::size_t>(k)];
      count += 1;
      if (count >= threshold) determined = true;
    });
  } else if (offset_exact_) {
    // Offset-space counting: center k is origin + off_k, the reporter sits at
    // d = delta(origin, reporter) with |d| <= r, so "reporter in nbd(c)" is
    // within_radius(d - off_k) and "c == reporter" is off_k == d — all raw
    // arithmetic (|components| <= 2r), exact because the torus spans >= 4r.
    auto& counts = reporter_counts_[origin_value_key(origin, v)];
    if (counts.empty()) counts.assign(static_cast<std::size_t>(table_.size()), 0);
    const Offset d = torus.delta(origin, reporter);
    const std::span<const Offset> offs = table_.offsets();
    for (std::size_t k = 0; k < offs.size(); ++k) {
      const Offset off = offs[k];
      if (off == d) continue;             // reporter must lie in nbd(c)
      if (!within_radius(d - off, r_, m_)) continue;
      counts[k] += 1;
      if (counts[k] >= params_.t + 1) determined = true;
    }
  } else {
    auto& centers = reporter_counts_legacy_[origin_value_key(origin, v)];
    for (const Offset off : table_.offsets()) {
      const Coord c = torus.wrap(origin + off);
      if (c == reporter) continue;         // reporter must lie in nbd(c)
      if (!torus.within(c, reporter, r_, m_)) continue;
      auto& count = centers[c];
      count += 1;
      if (count >= params_.t + 1) determined = true;
    }
  }
  if (determined) determine(ctx, origin, v);
}

}  // namespace rbcast
