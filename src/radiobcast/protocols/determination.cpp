#include "radiobcast/protocols/determination.h"

#include <cassert>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>

#include "radiobcast/grid/neighborhood.h"

namespace rbcast {

namespace {

/// Torus-style per-component fold into (-dim/2, dim/2]; dim == 0 disables
/// folding (the torus is too large for any compared difference to wrap).
/// Mirrors Torus::delta exactly.
std::int32_t fold(std::int32_t v, std::int32_t dim) {
  if (dim == 0) return v;
  v %= dim;
  if (2 * v > dim) v -= dim;
  if (2 * v <= -dim) v += dim;
  return v;
}

/// Second, independent mixing stream for the 128-bit digest.
constexpr std::uint64_t det_mix64_alt(std::uint64_t z) {
  return det_mix64(z ^ 0xC3A5C85C97CB3127ULL);
}

}  // namespace

const CenterSet CenterTable::kEmptySet{};

CenterTable::CenterTable(std::int32_t r, Metric m, std::int32_t fold_w,
                         std::int32_t fold_h)
    : r_(r), m_(m) {
  const NeighborhoodTable& nbd = NeighborhoodTable::get(r, m);
  num_centers_ = static_cast<int>(nbd.size());
  assert(num_centers_ <= CenterSet::kBits);

  // Canonical deltas of nodes within three hops of the origin span
  // [-min(3r, dim/2), min(3r, dim/2)] per component.
  bx_ = fold_w == 0 ? 3 * r : std::min(3 * r, fold_w / 2);
  by_ = fold_h == 0 ? 3 * r : std::min(3 * r, fold_h / 2);

  table_.assign(static_cast<std::size_t>(2 * bx_ + 1) *
                    static_cast<std::size_t>(2 * by_ + 1),
                CenterSet{});
  const std::span<const Offset> offs = nbd.offsets();
  for (std::int32_t dx = -bx_; dx <= bx_; ++dx) {
    for (std::int32_t dy = -by_; dy <= by_; ++dy) {
      const Offset d{dx, dy};
      CenterSet& set = table_[delta_index(d)];
      for (std::size_t k = 0; k < offs.size(); ++k) {
        const Offset e{fold(d.dx - offs[k].dx, fold_w),
                       fold(d.dy - offs[k].dy, fold_h)};
        // The node must lie in nbd(center): within radius and not the
        // center itself.
        if (e == Offset{0, 0}) continue;
        if (!within_radius(e, r, m)) continue;
        set.set(static_cast<int>(k));
      }
    }
  }

  offset_index_.assign(static_cast<std::size_t>(2 * r + 1) *
                           static_cast<std::size_t>(2 * r + 1),
                       -1);
  for (std::size_t k = 0; k < offs.size(); ++k) {
    const Offset o = offs[k];
    offset_index_[static_cast<std::size_t>((o.dx + r) * (2 * r + 1) +
                                           (o.dy + r))] =
        static_cast<std::int16_t>(k);
  }
}

const CenterTable& CenterTable::get(std::int32_t r, Metric m,
                                    std::int32_t width, std::int32_t height) {
  // A torus strictly larger than 8r per side never folds any compared
  // difference (|d - off| <= 4r < dim/2), so all such tori share one table.
  const std::int32_t fold_w = width > 8 * r ? 0 : width;
  const std::int32_t fold_h = height > 8 * r ? 0 : height;
  // Per-key once_flag slots, same scheme as Adjacency::get: the mutex covers
  // only the map access, table construction runs in call_once outside it, so
  // concurrent first accesses on different (r, metric, fold) keys no longer
  // serialize (tests/test_cache_concurrency.cpp, scripts/check_tsan.sh).
  struct Slot {
    std::once_flag once;
    std::unique_ptr<CenterTable> value;
  };
  static std::mutex mutex;
  static std::map<std::tuple<std::int32_t, int, std::int32_t, std::int32_t>,
                  Slot>
      cache;
  const auto key = std::make_tuple(r, static_cast<int>(m), fold_w, fold_h);
  Slot* slot;
  {
    const std::lock_guard<std::mutex> lock(mutex);
    slot = &cache[key];
  }
  std::call_once(slot->once, [&] {
    slot->value.reset(new CenterTable(r, m, fold_w, fold_h));
  });
  return *slot->value;
}

bool CenterTable::supported(std::int32_t r, Metric m) {
  if (r < 1) return false;
  // L-inf has the larger neighborhood: (2r+1)^2 - 1 <= 256 iff r <= 7; the
  // L2 count is smaller still, so one exact check covers both.
  return neighborhood_size(r, m) <= CenterSet::kBits;
}

PackingMemo& PackingMemo::thread_instance() {
  thread_local PackingMemo memo;
  return memo;
}

IncrementalDetermination::IncrementalDetermination(const CenterTable& table,
                                                   std::int64_t t,
                                                   int first_cap,
                                                   std::uint64_t digest_seed)
    : table_(table),
      target_(t + 1),
      first_cap_(first_cap),
      seed_(digest_seed),
      per_first_(static_cast<std::size_t>(table.num_centers()), 0),
      centers_(static_cast<std::size_t>(table.num_centers())),
      first_bits_((static_cast<std::size_t>(table.num_centers()) *
                       static_cast<std::size_t>(table.num_centers()) +
                   63) /
                  64) {}

void IncrementalDetermination::contained_push(CenterState& cs,
                                              std::uint32_t idx) {
  if (cs.len == cs.cap) {
    const std::uint32_t new_cap = cs.cap == 0 ? 4 : cs.cap * 2;
    const auto new_off = static_cast<std::uint32_t>(contained_arena_.size());
    contained_arena_.resize(contained_arena_.size() + new_cap);
    for (std::uint32_t i = 0; i < cs.len; ++i) {
      contained_arena_[new_off + i] = contained_arena_[cs.off + i];
    }
    cs.off = new_off;
    cs.cap = new_cap;
  }
  contained_arena_[cs.off + cs.len] = idx;
  ++cs.len;
}

bool IncrementalDetermination::add_report(std::span<const Offset> rel,
                                          std::uint64_t key) {
  const int first = table_.offset_index(rel[0]);
  assert(first >= 0);  // the first relayer is a direct neighbor of the origin
  // Same short-circuit order as the legacy engine: the dedup set only learns
  // chains considered while the first-relayer cap still had room.
  std::uint8_t& per_first = per_first_[static_cast<std::size_t>(first)];
  if (per_first >= first_cap_) return false;
  if (!dedup_.insert(key).second) return false;
  ++per_first;

  // The report's admissible centers: the AND of its relayers' center sets.
  CenterSet centers = table_.containing(rel[0]);
  Interior interior;
  interior.add(pack_delta_id(rel[0]));
  for (std::size_t i = 1; i < rel.size(); ++i) {
    centers &= table_.containing(rel[i]);
    interior.add(pack_delta_id(rel[i]));
  }
  const std::uint32_t idx = static_cast<std::uint32_t>(interiors_.size());
  interiors_.push_back(interior);

  const std::uint64_t m0 = det_mix64(key);
  const std::uint64_t m1 = det_mix64_alt(key);
  const std::size_t num_centers = static_cast<std::size_t>(table_.num_centers());
  centers.for_each([&](int k) {
    CenterState& cs = centers_[static_cast<std::size_t>(k)];
    contained_push(cs, idx);
    cs.acc0 += m0;
    cs.acc1 += m1;
    const std::size_t bit =
        static_cast<std::size_t>(k) * num_centers + static_cast<std::size_t>(first);
    std::uint64_t& word = first_bits_[bit >> 6];
    const std::uint64_t mask = 1ULL << (bit & 63);
    if ((word & mask) == 0) {
      word |= mask;
      ++cs.distinct_first;
    }
    dirty_.set(k);
  });
  return true;
}

bool IncrementalDetermination::evaluate(PackingMemo& memo) {
  bool certified = false;
  dirty_.for_each([&](int k) {
    if (certified) return;
    CenterState& cs = centers_[static_cast<std::size_t>(k)];
    const std::int64_t contained = static_cast<std::int64_t>(cs.len);
    // Cheap bounds first: not enough reports, or not enough distinct first
    // relayers (disjoint reports need distinct first hops), or nothing new
    // since the last exact check of this center.
    if (contained < target_) return;
    if (static_cast<std::int64_t>(cs.distinct_first) < target_) return;
    if (cs.len == cs.evaluated) return;
    cs.evaluated = cs.len;

    const std::uint64_t d0 =
        det_mix64(seed_ ^ cs.acc0 ^ (static_cast<std::uint64_t>(contained)
                                     << 32));
    const std::uint64_t d1 =
        det_mix64_alt(seed_ + cs.acc1 + static_cast<std::uint64_t>(contained));
    if (const bool* cached = memo.lookup(d0, d1)) {
      memo.note_hit();
      certified = *cached;
      return;
    }
    memo.note_miss();
    scratch_.clear();
    for (std::uint32_t i = 0; i < cs.len; ++i) {
      scratch_.push_back(interiors_[contained_arena_[cs.off + i]]);
    }
    const PackingResult packing = max_disjoint_packing(
        std::span<const Interior>(scratch_), static_cast<int>(target_));
    const bool verdict = packing.count >= target_;
    memo.store(d0, d1, verdict);
    certified = verdict;
  });
  dirty_.clear();
  return certified;
}

}  // namespace rbcast
