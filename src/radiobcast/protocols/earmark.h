#pragma once
// Earmarked relay plans (Section VI: "This state may be reduced further by
// earmarking exact messages that a node should lookout for, and this shall
// become clear from our constructive proof").
//
// With known topology, the only HEARD reports a decider ever *needs* are the
// ones traveling along the constructive node-disjoint path families of
// Theorem 3 (Table I / Figs 4-6). The plan therefore designates, for every
// committer→decider displacement with 1 <= |d|_1 <= 2r that is not a direct
// neighbor pair, the full r(2r+1)-path family of construction_paths(); a
// relayer forwards a HEARD only if the relayer chain (relative to the
// committer, including itself) is a prefix of some designated path. This
// collapses the O(|nbd|^3) flood to a constant number of relays per commit
// while preserving the completeness proof verbatim. L∞ metric only.

#include <cstdint>
#include <initializer_list>
#include <span>
#include <unordered_set>

#include "radiobcast/grid/coord.h"

namespace rbcast {

class EarmarkPlan {
 public:
  /// Process-wide cached plan for radius r (L∞).
  static const EarmarkPlan& get(std::int32_t r);

  /// True iff a chain of relayers at the given offsets from the committer
  /// (in forwarding order, the candidate relayer last) is a prefix of some
  /// designated path. Allocation-free: the lookup hashes a packed uint64.
  bool allows(std::span<const Offset> relayers_from_origin) const;
  bool allows(std::initializer_list<Offset> relayers_from_origin) const {
    return allows(
        std::span<const Offset>(relayers_from_origin.begin(),
                                relayers_from_origin.size()));
  }

  std::size_t prefix_count() const { return prefixes_.size(); }

 private:
  explicit EarmarkPlan(std::int32_t r);

  static std::uint64_t encode(std::span<const Offset> offsets);

  std::unordered_set<std::uint64_t> prefixes_;
};

}  // namespace rbcast
