#pragma once
// Structure-of-arrays protocol pools (docs/PERF.md, "Memory model").
//
// Per-trial protocol state used to be one heap object per node, full of
// std::map / std::set members — at a million nodes the resident set and the
// cache misses of that layout, not the algorithm, capped practical torus
// sizes. The pools below keep the SAME protocol logic (statement for
// statement — the golden SHA-256 suite proves byte-identical output) but lay
// the state out flat:
//
//   * dense std::vector arrays indexed by the CSR node index for per-node
//     phase state (committed value, commit round, claim tallies);
//   * one bit per node for commit flags (DenseBits);
//   * packed-key open-addressing hash tables (PackedKeySet / PackedU32Map)
//     for the relations the per-node maps/sets used to hold — keys pack
//     (node, peer, value) into one uint64, and the tables are only ever
//     probed, never iterated, so their layout cannot leak into results;
//   * a shared arena for the per-(node, origin, value) reporter-count blocks
//     of the two-hop protocol (one contiguous K-slot block per active pair).
//
// A pool manages the honest nodes of one trial; the source and faulty nodes
// keep their per-node behaviors (net/pool.h documents the dispatch split).

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "radiobcast/grid/neighborhood.h"
#include "radiobcast/grid/torus.h"
#include "radiobcast/net/message.h"
#include "radiobcast/net/pool.h"
#include "radiobcast/protocols/common.h"
#include "radiobcast/protocols/determination.h"

namespace rbcast {

/// Process-wide switch for the SoA pools (default on). run_simulation builds
/// pools only while enabled; turning it off forces the per-node behavior
/// path. Exists for the interleaved before/after benchmarks and for the
/// equivalence tests that prove both paths produce identical results.
void set_soa_pools_enabled(bool enabled);
bool soa_pools_enabled();

/// One bit per node.
class DenseBits {
 public:
  explicit DenseBits(std::int64_t n)
      : words_(static_cast<std::size_t>((n + 63) / 64), 0) {}

  bool test(std::int32_t i) const {
    return (words_[static_cast<std::size_t>(i) >> 6] >> (i & 63)) & 1;
  }
  void set(std::int32_t i) {
    words_[static_cast<std::size_t>(i) >> 6] |= 1ULL << (i & 63);
  }

  std::uint64_t bytes() const { return words_.size() * sizeof(std::uint64_t); }

 private:
  std::vector<std::uint64_t> words_;
};

/// Open-addressing set of packed uint64 keys (linear probing, power-of-two
/// capacity, grown at ~0.7 load). Keys must never equal ~0ull (the empty
/// sentinel) — every packing below keeps key bits well under 64. The growth
/// schedule is a pure function of the insertion sequence, so bytes() is
/// deterministic across platforms.
class PackedKeySet {
 public:
  PackedKeySet() : keys_(kInitialCapacity, kEmpty) {}

  /// Inserts `key`; returns true iff it was not already present.
  bool insert(std::uint64_t key) {
    std::size_t i = slot_of(key);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) return false;
      i = (i + 1) & (keys_.size() - 1);
    }
    keys_[i] = key;
    ++size_;
    if (size_ * 10 >= keys_.size() * 7) grow();
    return true;
  }

  bool contains(std::uint64_t key) const {
    std::size_t i = slot_of(key);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) return true;
      i = (i + 1) & (keys_.size() - 1);
    }
    return false;
  }

  std::size_t size() const { return size_; }
  std::uint64_t bytes() const { return keys_.size() * sizeof(std::uint64_t); }

 private:
  static constexpr std::uint64_t kEmpty = ~0ULL;
  static constexpr std::size_t kInitialCapacity = 16;

  std::size_t slot_of(std::uint64_t key) const {
    return static_cast<std::size_t>(det_mix64(key)) & (keys_.size() - 1);
  }

  void grow() {
    std::vector<std::uint64_t> old = std::move(keys_);
    keys_.assign(old.size() * 2, kEmpty);
    for (const std::uint64_t key : old) {
      if (key == kEmpty) continue;
      std::size_t i = slot_of(key);
      while (keys_[i] != kEmpty) i = (i + 1) & (keys_.size() - 1);
      keys_[i] = key;
    }
  }

  std::vector<std::uint64_t> keys_;
  std::size_t size_ = 0;
};

/// Open-addressing map from packed uint64 keys to uint32 values, same scheme
/// as PackedKeySet. slot() inserts a zero-initialized value on first access
/// (the only mutation the protocols need).
class PackedU32Map {
 public:
  PackedU32Map()
      : keys_(kInitialCapacity, kEmpty), values_(kInitialCapacity, 0) {}

  /// Value slot for `key`, default-inserting 0. The reference is invalidated
  /// by the next slot() call (a grow may rehash).
  std::uint32_t& slot(std::uint64_t key) {
    std::size_t i = slot_of(key);
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) return values_[i];
      i = (i + 1) & (keys_.size() - 1);
    }
    keys_[i] = key;
    values_[i] = 0;
    ++size_;
    if (size_ * 10 >= keys_.size() * 7) {
      grow();
      return *find_existing(key);
    }
    return values_[i];
  }

  std::size_t size() const { return size_; }
  std::uint64_t bytes() const {
    return keys_.size() * (sizeof(std::uint64_t) + sizeof(std::uint32_t));
  }

 private:
  static constexpr std::uint64_t kEmpty = ~0ULL;
  static constexpr std::size_t kInitialCapacity = 16;

  std::size_t slot_of(std::uint64_t key) const {
    return static_cast<std::size_t>(det_mix64(key)) & (keys_.size() - 1);
  }

  std::uint32_t* find_existing(std::uint64_t key) {
    std::size_t i = slot_of(key);
    while (keys_[i] != key) i = (i + 1) & (keys_.size() - 1);
    return &values_[i];
  }

  void grow() {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<std::uint32_t> old_values = std::move(values_);
    keys_.assign(old_keys.size() * 2, kEmpty);
    values_.assign(old_keys.size() * 2, 0);
    for (std::size_t j = 0; j < old_keys.size(); ++j) {
      if (old_keys[j] == kEmpty) continue;
      std::size_t i = slot_of(old_keys[j]);
      while (keys_[i] != kEmpty) i = (i + 1) & (keys_.size() - 1);
      keys_[i] = old_keys[j];
      values_[i] = old_values[j];
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint32_t> values_;
  std::size_t size_ = 0;
};

/// Shared dense commit state (committed bit, value, round) — the per-node
/// fields every protocol pool carries.
class CommitArrays {
 public:
  explicit CommitArrays(std::int64_t n)
      : committed_(n),
        value_(static_cast<std::size_t>(n), 0),
        round_(static_cast<std::size_t>(n), -1) {}

  bool committed(std::int32_t node) const { return committed_.test(node); }
  std::uint8_t value(std::int32_t node) const {
    return value_[static_cast<std::size_t>(node)];
  }

  void set(std::int32_t node, std::uint8_t value, std::int64_t round) {
    committed_.set(node);
    value_[static_cast<std::size_t>(node)] = value;
    round_[static_cast<std::size_t>(node)] =
        static_cast<std::int32_t>(round);
  }

  std::optional<std::uint8_t> committed_value(std::int32_t node) const {
    if (!committed_.test(node)) return std::nullopt;
    return value_[static_cast<std::size_t>(node)];
  }
  std::optional<std::int64_t> commit_round(std::int32_t node) const {
    if (!committed_.test(node)) return std::nullopt;
    return round_[static_cast<std::size_t>(node)];
  }

  std::uint64_t bytes() const {
    return committed_.bytes() + value_.size() +
           round_.size() * sizeof(std::int32_t);
  }

 private:
  DenseBits committed_;
  std::vector<std::uint8_t> value_;  // valid iff the committed bit is set
  std::vector<std::int32_t> round_;
};

/// SoA twin of CrashFloodBehavior (protocols/crash_flood.h). Per-node state:
/// one commit bit + value byte + round — ~6 bytes/node.
class CrashFloodPool final : public NodePool {
 public:
  CrashFloodPool(const ProtocolParams& params, const Torus& torus)
      : state_(torus.node_count()) {
    (void)params;  // crash-flood ignores t/source; kept for factory symmetry
  }

  void on_receive(NodeContext& ctx, std::int32_t node,
                  const Envelope& env) override;

  std::optional<std::uint8_t> committed_value(std::int32_t node) const override {
    return state_.committed_value(node);
  }
  std::optional<std::int64_t> commit_round(std::int32_t node) const override {
    return state_.commit_round(node);
  }
  std::uint64_t state_bytes() const override { return state_.bytes(); }

 private:
  CommitArrays state_;
};

/// SoA twin of CpaBehavior (protocols/cpa.h): dense claim tallies per value
/// plus a packed (node, sender) first-claim set.
class CpaPool final : public NodePool {
 public:
  CpaPool(const ProtocolParams& params, const Torus& torus)
      : t_(params.t),
        source_(torus.wrap(params.source)),
        state_(torus.node_count()),
        claims_(static_cast<std::size_t>(torus.node_count()) * 2, 0) {}

  void on_receive(NodeContext& ctx, std::int32_t node,
                  const Envelope& env) override;

  std::optional<std::uint8_t> committed_value(std::int32_t node) const override {
    return state_.committed_value(node);
  }
  std::optional<std::int64_t> commit_round(std::int32_t node) const override {
    return state_.commit_round(node);
  }
  std::uint64_t state_bytes() const override {
    return state_.bytes() + claims_.size() * sizeof(std::int32_t) +
           first_claim_.bytes();
  }

 private:
  void commit(NodeContext& ctx, std::int32_t node, std::uint8_t value);

  std::int64_t t_;
  Coord source_;
  CommitArrays state_;
  std::vector<std::int32_t> claims_;  // 2 per node: [2*node + value]
  PackedKeySet first_claim_;          // (node << 32) | sender index
};

/// SoA twin of BvTwoHopBehavior on its incremental (CenterTable) path. The
/// per-node maps/sets become packed tables keyed by (node, peer[, value]),
/// and the per-(origin, value) reporter-count vectors become K-slot blocks in
/// one shared arena. Only instantiated when supported() holds — the legacy
/// and offset-exact fallback paths for tiny tori stay in the behavior class.
class BvTwoHopPool final : public NodePool {
 public:
  /// The pool requires the CenterTable engine (same condition as the
  /// behavior's fast path) and 21-bit node indices for its packed keys.
  static bool supported(const Torus& torus, std::int32_t r, Metric m) {
    return CenterTable::supported(r, m) && torus.width() > 2 * r &&
           torus.height() > 2 * r && torus.node_count() < (1 << 21);
  }

  BvTwoHopPool(const ProtocolParams& params, const Torus& torus,
               std::int32_t r, Metric m);

  void on_receive(NodeContext& ctx, std::int32_t node,
                  const Envelope& env) override;

  std::optional<std::uint8_t> committed_value(std::int32_t node) const override {
    return state_.committed_value(node);
  }
  std::optional<std::int64_t> commit_round(std::int32_t node) const override {
    return state_.commit_round(node);
  }
  std::uint64_t state_bytes() const override;

 private:
  void handle_committed(NodeContext& ctx, std::int32_t node,
                        const Envelope& env);
  void handle_heard(NodeContext& ctx, std::int32_t node, const Envelope& env);
  void determine(NodeContext& ctx, std::int32_t node, Coord origin,
                 std::uint8_t value);
  void commit(NodeContext& ctx, std::int32_t node, std::uint8_t value);

  // (node, origin index, value bit) — 21 + 21 + 1 bits.
  static std::uint64_t nov_key(std::int32_t node, std::int32_t origin,
                               std::uint8_t value) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node))
            << 22) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(origin))
            << 1) |
           (value & 1);
  }

  std::int64_t t_;
  bool track_after_commit_;
  Coord source_;
  std::int32_t r_;
  Metric m_;
  const NeighborhoodTable& table_;
  const CenterTable& center_table_;
  CommitArrays state_;
  PackedKeySet first_committed_;  // (node << 32) | sender index
  PackedKeySet heard_consumed_;   // (node << 42) | (reporter << 21) | origin
  PackedKeySet determined_;       // nov_key(node, origin, value)
  PackedU32Map center_counts_;    // nov_key(node, center, value) -> count
  PackedU32Map reporter_blocks_;  // nov_key(node, origin, value) -> block + 1
  std::vector<std::int32_t> reporter_arena_;  // blocks of K counts
  std::size_t arena_blocks_ = 0;
};

}  // namespace rbcast
