#include "radiobcast/protocols/earmark.h"

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "radiobcast/grid/metric.h"
#include "radiobcast/paths/construction.h"

namespace rbcast {

std::uint64_t EarmarkPlan::encode(std::span<const Offset> offsets) {
  // Chain length plus 8-bit two's-complement components per offset. Chains
  // hold at most 3 relayers, each within 2r of the committer along a
  // designated path, so the packing is injective for r <= 63.
  std::uint64_t key = offsets.size();
  for (const Offset o : offsets) {
    key = (key << 16) |
          (static_cast<std::uint64_t>(static_cast<std::uint8_t>(o.dx)) << 8) |
          static_cast<std::uint64_t>(static_cast<std::uint8_t>(o.dy));
  }
  return key;
}

EarmarkPlan::EarmarkPlan(std::int32_t r) {
  const Coord origin{0, 0};
  for (std::int32_t dx = -2 * r; dx <= 2 * r; ++dx) {
    for (std::int32_t dy = -2 * r; dy <= 2 * r; ++dy) {
      const Offset d{dx, dy};
      const std::int32_t l1 = (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
      if (l1 < 1 || l1 > 2 * r) continue;
      if (linf_norm(d) <= r) continue;  // direct neighbors: no relays needed
      const DisjointPathSet family = construction_paths(r, origin, origin + d);
      for (const GridPath& path : family.paths) {
        // path.nodes = {committer, m1, ..., mk, decider}; designate every
        // non-empty prefix of the intermediate chain.
        std::vector<Offset> prefix;
        for (std::size_t i = 1; i + 1 < path.nodes.size(); ++i) {
          prefix.push_back(path.nodes[i] - origin);
          prefixes_.insert(encode(prefix));
        }
      }
    }
  }
}

const EarmarkPlan& EarmarkPlan::get(std::int32_t r) {
  // Guarded: campaign worker threads may instantiate plans concurrently.
  static std::mutex mutex;
  static std::map<std::int32_t, std::unique_ptr<EarmarkPlan>> cache;
  const std::lock_guard<std::mutex> lock(mutex);
  auto it = cache.find(r);
  if (it == cache.end()) {
    it = cache.emplace(r, std::unique_ptr<EarmarkPlan>(new EarmarkPlan(r)))
             .first;
  }
  return *it->second;
}

bool EarmarkPlan::allows(std::span<const Offset> relayers_from_origin) const {
  return prefixes_.count(encode(relayers_from_origin)) > 0;
}

}  // namespace rbcast
