#pragma once
// Incremental evidence / determination engine for the Byzantine protocols.
//
// A decider accumulates HEARD reports about an (origin, value) pair and must
// notice, as early as possible, when t+1 pairwise node-disjoint reports are
// confined (together with the origin) to a single neighborhood nbd(c). The
// pre-PR-7 engines recomputed that from scratch every round: for every
// candidate center, re-filter every report for containment, then re-run the
// set-packing solver. At r >= 2 that recomputation — not delivery — was the
// simulator's bottleneck (BM_HeardFlood/2 moved only 1.08x in PR 5).
//
// This engine turns the per-round sweep into per-report increments:
//
//   * CenterTable — a process-wide table, per (r, metric, torus fold), that
//     maps a relayer's canonical origin-relative delta to the *bitset of
//     candidate centers* whose neighborhood contains it (CenterSet, one bit
//     per offset in the NeighborhoodTable order). A report's admissible
//     centers are the AND of its relayers' bitsets; a chain extension is
//     "potentially useful" iff that AND is non-empty. Torus wrap-around on
//     small tori is baked into the table (the fold), so one lookup replaces
//     the per-offset wrap-and-compare loops in both relay filtering and
//     evidence containment.
//
//   * IncrementalDetermination — per (origin, value) state. Each accepted
//     report updates only the centers that contain it: a contained-report
//     list, a distinct-first-relayer bitset (the cheap t+1 upper bound), and
//     a commutative evidence-set digest. Only centers whose contained set
//     actually changed are re-examined at round end.
//
//   * PackingMemo — a thread-local verdict cache for the exact set-packing
//     solver, keyed by a 128-bit (evidence-set digest, target) signature.
//     Report digests are built from the packed uint64 report keys (canonical
//     origin-relative chain encodings), so identical subproblems recur with
//     identical digests across rounds, origins, *and* nodes — and are solved
//     once per worker thread. Verdicts are pure functions of the digested
//     set, so cache hits can never change simulation results, only skip
//     recomputation (the golden determinism suite pins this).
//
// Domain: the fast engine requires the candidate-center count |nbd| to fit
// CenterSet (256 bits — every r <= 7 under both metrics). Larger radii fall
// back to the legacy per-round path in the protocol implementations.

#include <array>
#include <bit>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "radiobcast/grid/coord.h"
#include "radiobcast/grid/metric.h"
#include "radiobcast/paths/packing.h"

namespace rbcast {

/// Fixed-width bitset over candidate-center indices (positions in the
/// NeighborhoodTable offset order). 256 bits cover |nbd| for every r <= 7
/// under L-inf ((2r+1)^2 - 1 = 224) and L2.
class CenterSet {
 public:
  static constexpr int kBits = 256;

  void set(int i) { words_[i >> 6] |= 1ULL << (i & 63); }
  bool test(int i) const { return (words_[i >> 6] >> (i & 63)) & 1; }

  CenterSet& operator&=(const CenterSet& o) {
    for (int i = 0; i < 4; ++i) words_[i] &= o.words_[i];
    return *this;
  }

  bool any() const {
    return (words_[0] | words_[1] | words_[2] | words_[3]) != 0;
  }

  void clear() { words_ = {}; }

  /// Calls f(bit_index) for every set bit, in ascending order — the same
  /// order as the per-offset loops this engine replaces, so anything keyed
  /// on "first center found" is unchanged.
  template <typename F>
  void for_each(F&& f) const {
    for (int w = 0; w < 4; ++w) {
      std::uint64_t bits = words_[w];
      while (bits != 0) {
        const int b = std::countr_zero(bits);
        f(w * 64 + b);
        bits &= bits - 1;
      }
    }
  }

 private:
  std::array<std::uint64_t, 4> words_{};
};

/// Process-wide candidate-center containment table, cached per
/// (r, metric, torus-fold). See the header comment.
class CenterTable {
 public:
  /// Cached lookup. `width`/`height` are the torus dimensions; tori too
  /// large to fold (strictly greater than 8r per side) share one fold-free
  /// table per (r, m).
  static const CenterTable& get(std::int32_t r, Metric m, std::int32_t width,
                                std::int32_t height);

  /// True iff the fast engine handles this (r, m): the candidate-center
  /// count fits CenterSet.
  static bool supported(std::int32_t r, Metric m);

  std::int32_t radius() const { return r_; }
  Metric metric() const { return m_; }

  /// Number of candidate centers == |nbd| == NeighborhoodTable size.
  int num_centers() const { return num_centers_; }

  /// Centers c = origin + off_k whose neighborhood contains the node at
  /// canonical origin-relative delta `d` (i.e. fold(d - off_k) != 0 and
  /// within radius r). `d` must be a canonical torus delta of a node within
  /// three hops of the origin (|components| <= min(3r, dim/2)).
  const CenterSet& containing(Offset d) const {
    return table_[delta_index(d)];
  }

  /// containing() for an arbitrary canonical delta (e.g. the receiver's own
  /// position when the claimed chain came from a spoofed sender): a node
  /// beyond the table span is beyond 3r > 2r, so no candidate center's
  /// neighborhood can contain it together with the origin — empty set.
  const CenterSet& containing_or_empty(Offset d) const {
    if (d.dx < -bx_ || d.dx > bx_ || d.dy < -by_ || d.dy > by_) {
      return kEmptySet;
    }
    return table_[delta_index(d)];
  }

  /// Index of a canonical delta with 0 < |d| <= r in the NeighborhoodTable
  /// offset order; -1 outside the neighborhood.
  int offset_index(Offset d) const {
    if (d.dx < -r_ || d.dx > r_ || d.dy < -r_ || d.dy > r_) return -1;
    return offset_index_[static_cast<std::size_t>((d.dx + r_) * (2 * r_ + 1) +
                                                  (d.dy + r_))];
  }

 private:
  static const CenterSet kEmptySet;

  CenterTable(std::int32_t r, Metric m, std::int32_t fold_w,
              std::int32_t fold_h);

  std::size_t delta_index(Offset d) const {
    return static_cast<std::size_t>((d.dx + bx_) * (2 * by_ + 1) +
                                    (d.dy + by_));
  }

  std::int32_t r_;
  Metric m_;
  std::int32_t bx_, by_;  // table spans [-bx, bx] x [-by, by]
  int num_centers_;
  std::vector<CenterSet> table_;        // by delta_index
  std::vector<std::int16_t> offset_index_;  // (2r+1)^2, -1 for non-neighbors
};

/// Thread-local memoization of set-packing verdicts, keyed by a 128-bit
/// evidence-set signature. Fixed-capacity direct-mapped cache: collisions
/// overwrite, misses recompute — verdict values are pure, so the cache can
/// only save work, never change an outcome.
class PackingMemo {
 public:
  static PackingMemo& thread_instance();

  /// Returns the cached verdict for signature (d0, d1), or nullptr.
  const bool* lookup(std::uint64_t d0, std::uint64_t d1) const {
    const Entry& e = slots_[static_cast<std::size_t>(d0) & kMask];
    if (e.valid && e.d0 == d0 && e.d1 == d1) return &e.verdict;
    return nullptr;
  }

  void store(std::uint64_t d0, std::uint64_t d1, bool verdict) {
    Entry& e = slots_[static_cast<std::size_t>(d0) & kMask];
    e.d0 = d0;
    e.d1 = d1;
    e.verdict = verdict;
    e.valid = true;
  }

  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }
  void note_hit() { ++hits_; }
  void note_miss() { ++misses_; }

 private:
  struct Entry {
    std::uint64_t d0 = 0, d1 = 0;
    bool verdict = false;
    bool valid = false;
  };

  static constexpr std::size_t kCapacity = 1 << 16;
  static constexpr std::size_t kMask = kCapacity - 1;

  PackingMemo() : slots_(kCapacity) {}

  std::vector<Entry> slots_;
  std::int64_t hits_ = 0;
  std::int64_t misses_ = 0;
};

/// Incremental determination state for one (origin, value) pair.
///
/// Acceptance policy (identical to the pre-incremental engine): reports are
/// deduplicated by their packed uint64 chain key, and at most `first_cap`
/// reports are kept per first relayer — honest constructive families use
/// distinct first relayers, so the cap bounds adversarial flooding without
/// ever starving an honest determination.
class IncrementalDetermination {
 public:
  /// `t` is the local fault bound (certification target t+1); `digest_seed`
  /// folds (r, metric, t) into every evidence-set signature so memo entries
  /// from different configurations cannot alias.
  IncrementalDetermination(const CenterTable& table, std::int64_t t,
                           int first_cap, std::uint64_t digest_seed);

  /// Offers a plausibility-checked report: `rel` holds the canonical
  /// origin-relative deltas of its relayer chain (front first), `key` its
  /// packed uint64 chain encoding. Returns true iff the report was accepted
  /// (new under dedup, first-relayer cap not exhausted); acceptance updates
  /// exactly the candidate centers containing the whole chain.
  bool add_report(std::span<const Offset> rel, std::uint64_t key);

  /// Re-examines only the centers whose contained set changed since the
  /// last call. Returns true iff some center now holds >= t+1 pairwise
  /// node-disjoint reports (the caller then owns discarding this state).
  bool evaluate(PackingMemo& memo);

  std::size_t report_count() const { return interiors_.size(); }

 private:
  /// Per-center report list, stored as a (offset, size, capacity) span into
  /// the shared contained_arena_ below instead of one heap vector per center:
  /// a determination state allocates O(1) blocks however many of its K
  /// centers activate, and each center's indices stay contiguous (in arrival
  /// order) for the packing sweep.
  struct CenterState {
    std::uint32_t off = 0, len = 0, cap = 0;  // span into contained_arena_
    std::uint64_t acc0 = 0, acc1 = 0;         // commutative evidence digest
    std::uint32_t distinct_first = 0;
    std::uint32_t evaluated = 0;  // len at last packing check
  };

  /// Appends a report index to a center's span, relocating the span to the
  /// arena tail with doubled capacity when full (retired blocks are reclaimed
  /// only when the whole state is discarded — bounded by the 2x growth).
  void contained_push(CenterState& cs, std::uint32_t idx);

  const CenterTable& table_;
  std::int64_t target_;  // t + 1
  int first_cap_;
  std::uint64_t seed_;
  std::vector<Interior> interiors_;         // accepted reports
  std::unordered_set<std::uint64_t> dedup_;  // packed chain keys considered
  std::vector<std::uint8_t> per_first_;      // per first-relayer accept count
  std::vector<CenterState> centers_;
  std::vector<std::uint32_t> contained_arena_;  // all centers' report spans
  std::vector<std::uint64_t> first_bits_;  // K x K (center, first) seen bits
  CenterSet dirty_;
  std::vector<Interior> scratch_;  // packing input, capacity retained
};

/// Injective 32-bit node id of a canonical origin-relative delta (16-bit
/// two's-complement components) — the Interior id space.
constexpr std::uint32_t pack_delta_id(Offset o) {
  return (static_cast<std::uint32_t>(static_cast<std::uint16_t>(o.dx))
          << 16) |
         static_cast<std::uint16_t>(o.dy);
}

/// splitmix64 finalizer — the digest mixer (also used by the seeds).
constexpr std::uint64_t det_mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Digest seed folding the protocol configuration (see the ctor docs).
constexpr std::uint64_t det_digest_seed(std::int32_t r, Metric m,
                                        std::int64_t t) {
  return det_mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(r))
                    << 40) ^
                   (static_cast<std::uint64_t>(m) << 32) ^
                   static_cast<std::uint64_t>(t));
}

}  // namespace rbcast
