#include "radiobcast/protocols/crash_flood.h"

namespace rbcast {

void CrashFloodBehavior::on_receive(NodeContext& ctx, const Envelope& env) {
  if (committed_.has_value()) return;  // terminated
  if (env.msg.type != MsgType::kCommitted) return;
  committed_ = env.msg.value;
  commit_round_ = ctx.round();
  ctx.note_commit(env.msg.value);
  ctx.broadcast(make_committed(ctx.self(), env.msg.value));
}

}  // namespace rbcast
