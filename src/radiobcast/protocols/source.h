#pragma once
// The designated source (dealer). Assumed correct and located at the origin
// (Section II). It commits to its own value and announces it once with a
// COMMITTED broadcast; every protocol's first inductive step starts from the
// source's direct neighbors hearing this transmission.

#include <optional>

#include "radiobcast/net/network.h"

namespace rbcast {

class SourceBehavior final : public NodeBehavior {
 public:
  explicit SourceBehavior(std::uint8_t value) : value_(value) {}

  void on_start(NodeContext& ctx) override {
    ctx.note_commit(value_);  // the source is committed from round 0
    ctx.broadcast(make_committed(ctx.self(), value_));
  }

  void on_receive(NodeContext&, const Envelope&) override {}

  std::optional<std::uint8_t> committed_value() const override {
    return value_;
  }

  std::optional<std::int64_t> commit_round() const override { return 0; }

 private:
  std::uint8_t value_;
};

}  // namespace rbcast
