#include "radiobcast/protocols/cpa.h"

namespace rbcast {

void CpaBehavior::commit(NodeContext& ctx, std::uint8_t value) {
  committed_ = value;
  commit_round_ = ctx.round();
  ctx.note_commit(value);
  ctx.broadcast(make_committed(ctx.self(), value));
}

void CpaBehavior::on_receive(NodeContext& ctx, const Envelope& env) {
  if (committed_.has_value()) return;  // terminated
  if (env.msg.type != MsgType::kCommitted) return;
  // A COMMITTED's origin must be its transmitter; anything else is a faulty
  // fabrication and is discarded (no spoofing, Section II).
  if (ctx.torus().wrap(env.msg.origin) != env.sender) return;

  if (env.sender == ctx.torus().wrap(params_.source)) {
    commit(ctx, env.msg.value);  // direct neighbors trust the source
    return;
  }
  const auto [it, inserted] = first_claim_.emplace(env.sender, env.msg.value);
  if (!inserted) return;  // only the first claim per neighbor counts
  claims_[env.msg.value & 1] += 1;
  if (claims_[env.msg.value & 1] >= params_.t + 1) {
    commit(ctx, env.msg.value);
  }
}

}  // namespace rbcast
