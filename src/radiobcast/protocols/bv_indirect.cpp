#include "radiobcast/protocols/bv_indirect.h"

#include <algorithm>
#include <span>

#include "radiobcast/protocols/earmark.h"

namespace rbcast {

namespace {

constexpr std::size_t kMaxRelayers = 3;  // "up to three intermediate nodes"

/// Packed dedup key of a report: chain length plus 8-bit two's-complement
/// components of each origin-relative delta. Plausible chains keep every
/// component within 3r (each hop moves at most r), so the encoding is
/// injective for r <= 42 — far beyond the r <= 7 the mask id space supports.
std::uint64_t pack_report_key(
    const std::array<Offset, RelayerChain::kCapacity>& rel, std::size_t n) {
  std::uint64_t key = n;
  for (std::size_t i = 0; i < n; ++i) {
    key = (key << 16) |
          (static_cast<std::uint64_t>(static_cast<std::uint8_t>(rel[i].dx))
           << 8) |
          static_cast<std::uint64_t>(static_cast<std::uint8_t>(rel[i].dy));
  }
  return key;
}

/// Injective 32-bit packing of a small offset (16-bit components).
std::uint32_t pack_offset32(Offset o) {
  return (static_cast<std::uint32_t>(static_cast<std::uint16_t>(o.dx))
          << 16) |
         static_cast<std::uint16_t>(o.dy);
}

}  // namespace

BvIndirectBehavior::BvIndirectBehavior(const ProtocolParams& params,
                                       const Torus& torus, std::int32_t r,
                                       Metric m, RelayMode mode)
    : params_(params),
      r_(r),
      m_(m),
      mode_(mode),
      table_(NeighborhoodTable::get(r, m)),
      earmarks_(mode == RelayMode::kEarmarked ? &EarmarkPlan::get(r)
                                              : nullptr),
      offset_exact_(torus.width() >= 8 * r && torus.height() >= 8 * r),
      counter_(torus, r, m, params.t) {}

void BvIndirectBehavior::commit(NodeContext& ctx, std::uint8_t value) {
  if (committed_.has_value()) return;
  committed_ = value;
  commit_round_ = ctx.round();
  ctx.note_commit(value);
  ctx.broadcast(make_committed(ctx.self(), value));
}

void BvIndirectBehavior::determine(NodeContext& ctx, Coord origin,
                                   std::uint8_t value) {
  if (const auto fired = counter_.record(origin, value)) commit(ctx, *fired);
  // Evidence for a determined pair is no longer needed.
  evidence_.erase(origin_value_key(ctx.torus().wrap(origin), value));
}

void BvIndirectBehavior::on_receive(NodeContext& ctx, const Envelope& env) {
  switch (env.msg.type) {
    case MsgType::kCommitted:
      handle_committed(ctx, env);
      break;
    case MsgType::kHeard:
      handle_heard(ctx, env);
      break;
  }
}

void BvIndirectBehavior::handle_committed(NodeContext& ctx,
                                          const Envelope& env) {
  const Torus& torus = ctx.torus();
  if (torus.wrap(env.msg.origin) != env.sender) return;
  const auto [it, inserted] =
      first_committed_.emplace(env.sender, env.msg.value);
  if (!inserted) return;
  const std::uint8_t v = it->second;

  // First-hop relay duty: report the commit to our own neighborhood.
  ctx.broadcast(make_heard({ctx.self()}, env.sender, v));

  if (env.sender == torus.wrap(params_.source)) commit(ctx, v);
  determine(ctx, env.sender, v);
}

void BvIndirectBehavior::handle_heard(NodeContext& ctx, const Envelope& env) {
  const Torus& torus = ctx.torus();
  const Message& msg = env.msg;
  if (msg.relayers.empty() || msg.relayers.size() > kMaxRelayers) return;
  // The outermost relayer must be the actual transmitter (no spoofing).
  if (torus.wrap(msg.relayers.back()) != env.sender) return;

  const Coord origin = torus.wrap(msg.origin);
  const Coord self = ctx.self();
  if (origin == self) return;

  // Plausibility of the claimed chain: consecutive hops within radius,
  // all nodes distinct, and the chain does not pass through us. The
  // origin-relative deltas are captured alongside for the dedup key, the
  // earmark lookup, and the offset-space geometry below.
  RelayerChain chain;
  std::array<Offset, RelayerChain::kCapacity> rel{};
  Coord prev = origin;
  for (const Coord raw : msg.relayers) {
    const Coord c = torus.wrap(raw);
    if (c == origin || c == self) return;
    if (std::find(chain.begin(), chain.end(), c) != chain.end()) return;
    if (!torus.within(prev, c, r_, m_)) return;
    rel[chain.size()] = torus.delta(origin, c);
    chain.push_back(c);
    prev = c;
  }

  const std::uint8_t v = msg.value & 1;
  const std::uint64_t key = origin_value_key(origin, v);
  // Evidence only feeds our own commit decision; relay duty (below) is what
  // others rely on, so post-commit we stop recording but keep relaying
  // (unless full tracking is requested).
  if ((!committed_.has_value() || params_.track_after_commit) &&
      !counter_.is_determined(origin, v)) {
    Evidence& ev = evidence_[key];
    ev.origin = origin;
    auto& per_first = ev.per_first_relayer[chain.front()];
    if (per_first < kReportsPerFirstRelayer &&
        ev.dedup.insert(pack_report_key(rel, chain.size())).second) {
      ++per_first;
      Evidence::Report report;
      report.relayers = chain;
      report.rel = rel;
      bool mask_ok = true;
      for (const Coord c : chain) {
        auto bit = ev.node_bits.find(c);
        if (bit == ev.node_bits.end()) {
          bit = ev.node_bits.emplace(c, static_cast<int>(ev.bit_coords.size()))
                    .first;
          ev.bit_coords.push_back(c);
        }
        if (bit->second >= static_cast<int>(report.mask.size())) {
          // Id space exhausted (cannot happen for r <= 7). Dropping the
          // report is conservative: it can only delay determination, never
          // let conflicting reports pass as disjoint.
          mask_ok = false;
          break;
        }
        report.mask.set(static_cast<std::size_t>(bit->second));
      }
      if (mask_ok) {
        ev.reports.push_back(report);
        dirty_.insert(key);
      }
    }
  }

  // Relay with ourselves appended, if depth allows and the extended chain is
  // still potentially useful.
  if (chain.size() >= kMaxRelayers) return;
  RelayerChain extended = chain;
  extended.push_back(self);
  rel[chain.size()] = torus.delta(origin, self);
  const std::size_t n = extended.size();
  if (mode_ == RelayMode::kEarmarked) {
    if (!earmarks_->allows(std::span<const Offset>(rel.data(), n))) return;
  } else {
    // Usefulness filter: a decider only ever accepts a chain whose nodes plus
    // the committer fit in one neighborhood, so drop extensions that already
    // cannot.
    bool fits = false;
    if (offset_exact_) {
      for (const Offset off : table_.offsets()) {
        bool all_in = true;
        for (std::size_t i = 0; i < n; ++i) {
          if (rel[i] == off || !within_radius(rel[i] - off, r_, m_)) {
            all_in = false;
            break;
          }
        }
        if (all_in) {
          fits = true;
          break;
        }
      }
    } else {
      for (const Offset off : table_.offsets()) {
        const Coord c = torus.wrap(origin + off);
        bool all_in = true;
        for (const Coord node : extended) {
          if (node == c || !torus.within(c, node, r_, m_)) {
            all_in = false;
            break;
          }
        }
        if (all_in) {
          fits = true;
          break;
        }
      }
    }
    if (!fits) return;
  }
  ctx.broadcast(make_heard(extended, origin, v));
}

bool BvIndirectBehavior::try_determine_from_reports(const Torus& torus,
                                                    Coord origin,
                                                    const Evidence& ev) const {
  if (static_cast<std::int64_t>(ev.reports.size()) < params_.t + 1) {
    return false;
  }
  for (const Offset off : table_.offsets()) {
    // Candidate center c = origin + off (so origin lies in nbd(c)). Collect
    // masks of the reports fully contained in nbd(c) into reusable scratch.
    scratch_masks_.clear();
    scratch_first_.clear();
    if (offset_exact_) {
      for (const auto& report : ev.reports) {
        bool inside = true;
        const std::size_t n = report.relayers.size();
        for (std::size_t i = 0; i < n; ++i) {
          if (report.rel[i] == off ||
              !within_radius(report.rel[i] - off, r_, m_)) {
            inside = false;
            break;
          }
        }
        if (inside) {
          scratch_masks_.push_back(report.mask);
          scratch_first_.push_back(pack_offset32(report.rel[0]));
        }
      }
    } else {
      const Coord c = torus.wrap(origin + off);
      for (const auto& report : ev.reports) {
        bool inside = true;
        for (const Coord node : report.relayers) {
          if (node == c || !torus.within(c, node, r_, m_)) {
            inside = false;
            break;
          }
        }
        if (inside) {
          scratch_masks_.push_back(report.mask);
          scratch_first_.push_back(pack_offset32(report.rel[0]));
        }
      }
    }
    // Disjoint reports need distinct first relayers: a cheap upper bound
    // that skips hopeless (and potentially expensive) packing calls.
    std::sort(scratch_first_.begin(), scratch_first_.end());
    const auto distinct_first = std::distance(
        scratch_first_.begin(),
        std::unique(scratch_first_.begin(), scratch_first_.end()));
    if (static_cast<std::int64_t>(distinct_first) < params_.t + 1) {
      continue;
    }
    const PackingResult packing = max_disjoint_packing(
        scratch_masks_, static_cast<int>(params_.t + 1));
    if (packing.count >= params_.t + 1) return true;
  }
  return false;
}

void BvIndirectBehavior::on_round_end(NodeContext& ctx) {
  if (committed_.has_value() && !params_.track_after_commit) {
    // Dead state after committing; reclaim it.
    dirty_.clear();
    evidence_.clear();
    return;
  }
  if (dirty_.empty()) return;
  const Torus& torus = ctx.torus();
  // Move out: determine() mutates evidence_ and new dirt belongs to the next
  // round anyway.
  scratch_keys_.clear();
  scratch_keys_.insert(scratch_keys_.end(), dirty_.begin(), dirty_.end());
  std::sort(scratch_keys_.begin(), scratch_keys_.end());  // deterministic
  dirty_.clear();
  for (const std::uint64_t key : scratch_keys_) {
    const auto it = evidence_.find(key);
    if (it == evidence_.end()) continue;  // already determined
    const std::uint8_t v = static_cast<std::uint8_t>(key & 1);
    Evidence& ev = it->second;
    if (ev.reports.empty() || ev.reports.size() == ev.evaluated_at) continue;
    ev.evaluated_at = ev.reports.size();
    if (try_determine_from_reports(torus, ev.origin, ev)) {
      determine(ctx, ev.origin, v);
    }
  }
}

}  // namespace rbcast
