#include "radiobcast/protocols/bv_indirect.h"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <string>

#include "radiobcast/protocols/earmark.h"

namespace rbcast {

namespace {

constexpr std::size_t kMaxRelayers = 3;  // "up to three intermediate nodes"

std::int32_t checked_radius(std::int32_t r) {
  if (r < 1 || r > BvIndirectBehavior::kMaxReportKeyRadius) {
    throw std::invalid_argument(
        "BvIndirectBehavior: radius " + std::to_string(r) +
        " outside [1, " +
        std::to_string(BvIndirectBehavior::kMaxReportKeyRadius) +
        "] (packed report keys would collide)");
  }
  return r;
}

/// Packed dedup key of a report: chain length plus 8-bit two's-complement
/// components of each origin-relative delta. Plausible chains keep every
/// component within 3r (each hop moves at most r), so the encoding is
/// injective for r <= 42 — far beyond the r <= 7 the mask id space supports.
std::uint64_t pack_report_key(
    const std::array<Offset, RelayerChain::kCapacity>& rel, std::size_t n) {
  std::uint64_t key = n;
  for (std::size_t i = 0; i < n; ++i) {
    key = (key << 16) |
          (static_cast<std::uint64_t>(static_cast<std::uint8_t>(rel[i].dx))
           << 8) |
          static_cast<std::uint64_t>(static_cast<std::uint8_t>(rel[i].dy));
  }
  return key;
}

/// Injective 32-bit packing of a small offset (16-bit components).
std::uint32_t pack_offset32(Offset o) {
  return (static_cast<std::uint32_t>(static_cast<std::uint16_t>(o.dx))
          << 16) |
         static_cast<std::uint16_t>(o.dy);
}

/// Receiver-independent validation of one HEARD transmission, cached
/// per-thread across the ~|nbd| consecutive deliveries of the same
/// broadcast. The chain's plausibility (no spoofing, hops within radius,
/// nodes distinct), its wrapped coords, origin-relative deltas, packed
/// dedup key, and admissible-center set depend only on (torus, r, metric,
/// sender, message) — not on the receiver — so the CSR fan-out pays for
/// them once instead of |nbd| times. Receiver-specific checks (origin ==
/// self, self on the chain) stay in handle_heard. All cached fields are
/// pure functions of the key, so reuse cannot change any output.
struct HeardValidation {
  // Key (raw, unwrapped fields — wrapping is deterministic).
  std::int32_t width = -1, height = -1, r = -1;
  Metric m{};
  Coord sender{};
  Coord raw_origin{};
  RelayerChain raw_relayers;
  // Cached results (valid iff the key matches).
  bool plausible = false;
  Coord origin{};
  RelayerChain chain;                                // wrapped
  std::array<Offset, RelayerChain::kCapacity> rel{};  // origin-relative
  std::uint64_t report_key = 0;
  CenterSet chain_centers;  // AND of containing(rel[i]) over the chain

  bool matches(const Torus& torus, std::int32_t r_in, Metric m_in,
               Coord sender_in, const Message& msg) const {
    return width == torus.width() && height == torus.height() && r == r_in &&
           m == m_in && sender == sender_in && raw_origin == msg.origin &&
           raw_relayers == msg.relayers;
  }

  void fill(const Torus& torus, std::int32_t r_in, Metric m_in,
            const CenterTable& table, Coord sender_in, const Message& msg) {
    width = torus.width();
    height = torus.height();
    r = r_in;
    m = m_in;
    sender = sender_in;
    raw_origin = msg.origin;
    raw_relayers = msg.relayers;
    plausible = false;
    // The outermost relayer must be the actual transmitter (no spoofing).
    if (torus.wrap(msg.relayers.back()) != sender_in) return;
    origin = torus.wrap(msg.origin);
    chain = RelayerChain{};
    Coord prev = origin;
    for (const Coord raw : msg.relayers) {
      const Coord c = torus.wrap(raw);
      if (c == origin) return;
      if (std::find(chain.begin(), chain.end(), c) != chain.end()) return;
      if (!torus.within(prev, c, r_in, m_in)) return;
      rel[chain.size()] = torus.delta(origin, c);
      chain.push_back(c);
      prev = c;
    }
    report_key = pack_report_key(rel, chain.size());
    CenterSet centers = table.containing(rel[0]);
    for (std::size_t i = 1; i < chain.size(); ++i) {
      centers &= table.containing(rel[i]);
    }
    chain_centers = centers;
    plausible = true;
  }
};

thread_local HeardValidation g_heard_validation;

}  // namespace

BvIndirectBehavior::BvIndirectBehavior(const ProtocolParams& params,
                                       const Torus& torus, std::int32_t r,
                                       Metric m, RelayMode mode)
    : params_(params),
      r_(checked_radius(r)),
      m_(m),
      mode_(mode),
      table_(NeighborhoodTable::get(r, m)),
      earmarks_(mode == RelayMode::kEarmarked ? &EarmarkPlan::get(r)
                                              : nullptr),
      center_table_(CenterTable::supported(r, m)
                        ? &CenterTable::get(r, m, torus.width(),
                                            torus.height())
                        : nullptr),
      digest_seed_(det_digest_seed(r, m, params.t)),
      offset_exact_(torus.width() >= 8 * r && torus.height() >= 8 * r),
      counter_(torus, r, m, params.t) {}

void BvIndirectBehavior::commit(NodeContext& ctx, std::uint8_t value) {
  if (committed_.has_value()) return;
  committed_ = value;
  commit_round_ = ctx.round();
  ctx.note_commit(value);
  ctx.broadcast(make_committed(ctx.self(), value));
}

void BvIndirectBehavior::determine(NodeContext& ctx, Coord origin,
                                   std::uint8_t value) {
  if (const auto fired = counter_.record(origin, value)) commit(ctx, *fired);
  // Evidence for a determined pair is no longer needed.
  const std::uint64_t key = origin_value_key(ctx.torus().wrap(origin), value);
  if (center_table_ != nullptr) {
    fast_evidence_.erase(key);
  } else {
    evidence_.erase(key);
  }
}

void BvIndirectBehavior::on_receive(NodeContext& ctx, const Envelope& env) {
  switch (env.msg.type) {
    case MsgType::kCommitted:
      handle_committed(ctx, env);
      break;
    case MsgType::kHeard:
      handle_heard(ctx, env);
      break;
  }
}

void BvIndirectBehavior::handle_committed(NodeContext& ctx,
                                          const Envelope& env) {
  const Torus& torus = ctx.torus();
  if (torus.wrap(env.msg.origin) != env.sender) return;
  const auto [it, inserted] =
      first_committed_.emplace(env.sender, env.msg.value);
  if (!inserted) return;
  const std::uint8_t v = it->second;

  // First-hop relay duty: report the commit to our own neighborhood.
  ctx.broadcast(make_heard({ctx.self()}, env.sender, v));

  if (env.sender == torus.wrap(params_.source)) commit(ctx, v);
  determine(ctx, env.sender, v);
}

void BvIndirectBehavior::handle_heard(NodeContext& ctx, const Envelope& env) {
  if (center_table_ == nullptr) {
    handle_heard_legacy(ctx, env);
    return;
  }
  const Torus& torus = ctx.torus();
  const Message& msg = env.msg;
  if (msg.relayers.empty() || msg.relayers.size() > kMaxRelayers) return;
  // Evidence only feeds our own commit decision; relay duty is what others
  // rely on, so post-commit we stop recording but keep relaying (unless
  // full tracking is requested).
  const bool recording =
      !committed_.has_value() || params_.track_after_commit;
  // A full-length chain cannot be extended, so once this node stops
  // recording evidence such a delivery is a complete no-op — skip even the
  // cached validation. Committed nodes receiving depth-3 floods are the
  // dominant late-trial delivery, so this branch carries most of them.
  if (!recording && msg.relayers.size() >= kMaxRelayers) return;

  // Receiver-independent validation, computed once per transmission and
  // reused across its ~|nbd| deliveries (see HeardValidation above).
  HeardValidation& val = g_heard_validation;
  if (!val.matches(torus, r_, m_, env.sender, msg)) {
    val.fill(torus, r_, m_, *center_table_, env.sender, msg);
  }
  if (!val.plausible) return;

  const Coord self = ctx.self();
  if (val.origin == self) return;
  // The chain must not pass through us.
  for (const Coord c : val.chain) {
    if (c == self) return;
  }

  const std::uint8_t v = msg.value & 1;
  if (recording && !counter_.is_determined(val.origin, v)) {
    const std::uint64_t key = origin_value_key(val.origin, v);
    auto it = fast_evidence_.find(key);
    if (it == fast_evidence_.end()) {
      it = fast_evidence_
               .emplace(key, FastEvidence{val.origin,
                                          IncrementalDetermination(
                                              *center_table_, params_.t,
                                              kReportsPerFirstRelayer,
                                              digest_seed_)})
               .first;
    }
    if (it->second.det.add_report(
            std::span<const Offset>(val.rel.data(), val.chain.size()),
            val.report_key)) {
      dirty_.insert(key);
    }
  }

  // Relay with ourselves appended, if depth allows and the extended chain is
  // still potentially useful.
  if (val.chain.size() >= kMaxRelayers) return;
  RelayerChain extended = val.chain;
  extended.push_back(self);
  const Offset self_rel = torus.delta(val.origin, self);
  if (mode_ == RelayMode::kEarmarked) {
    std::array<Offset, RelayerChain::kCapacity> rel = val.rel;
    rel[val.chain.size()] = self_rel;
    if (!earmarks_->allows(
            std::span<const Offset>(rel.data(), extended.size()))) {
      return;
    }
  } else {
    // Usefulness filter: a decider only ever accepts a chain whose nodes
    // plus the committer fit in one neighborhood, so drop extensions that
    // already cannot. A spoofed sender can place us arbitrarily far from
    // the claimed origin, so the self delta may fall outside the table
    // span — containing_or_empty maps that (correctly) to "no center".
    CenterSet admissible = val.chain_centers;
    admissible &= center_table_->containing_or_empty(self_rel);
    if (!admissible.any()) return;
  }
  ctx.broadcast(make_heard(extended, val.origin, v));
}

/// Fallback for radii the fast engine does not support (r > 7): the original
/// fully per-receiver path.
void BvIndirectBehavior::handle_heard_legacy(NodeContext& ctx,
                                             const Envelope& env) {
  const Torus& torus = ctx.torus();
  const Message& msg = env.msg;
  if (msg.relayers.empty() || msg.relayers.size() > kMaxRelayers) return;
  // The outermost relayer must be the actual transmitter (no spoofing).
  if (torus.wrap(msg.relayers.back()) != env.sender) return;

  const Coord origin = torus.wrap(msg.origin);
  const Coord self = ctx.self();
  if (origin == self) return;

  // Plausibility of the claimed chain: consecutive hops within radius,
  // all nodes distinct, and the chain does not pass through us. The
  // origin-relative deltas are captured alongside for the dedup key, the
  // earmark lookup, and the offset-space geometry below.
  RelayerChain chain;
  std::array<Offset, RelayerChain::kCapacity> rel{};
  Coord prev = origin;
  for (const Coord raw : msg.relayers) {
    const Coord c = torus.wrap(raw);
    if (c == origin || c == self) return;
    if (std::find(chain.begin(), chain.end(), c) != chain.end()) return;
    if (!torus.within(prev, c, r_, m_)) return;
    rel[chain.size()] = torus.delta(origin, c);
    chain.push_back(c);
    prev = c;
  }

  const std::uint8_t v = msg.value & 1;
  const std::uint64_t key = origin_value_key(origin, v);
  // Evidence only feeds our own commit decision; relay duty (below) is what
  // others rely on, so post-commit we stop recording but keep relaying
  // (unless full tracking is requested).
  if ((!committed_.has_value() || params_.track_after_commit) &&
      !counter_.is_determined(origin, v)) {
    accept_report_legacy(key, origin, chain, rel);
  }

  // Relay with ourselves appended, if depth allows and the extended chain is
  // still potentially useful.
  if (chain.size() >= kMaxRelayers) return;
  RelayerChain extended = chain;
  extended.push_back(self);
  rel[chain.size()] = torus.delta(origin, self);
  const std::size_t n = extended.size();
  if (mode_ == RelayMode::kEarmarked) {
    if (!earmarks_->allows(std::span<const Offset>(rel.data(), n))) return;
  } else {
    // Usefulness filter: a decider only ever accepts a chain whose nodes plus
    // the committer fit in one neighborhood, so drop extensions that already
    // cannot.
    bool fits = false;
    if (offset_exact_) {
      for (const Offset off : table_.offsets()) {
        bool all_in = true;
        for (std::size_t i = 0; i < n; ++i) {
          if (rel[i] == off || !within_radius(rel[i] - off, r_, m_)) {
            all_in = false;
            break;
          }
        }
        if (all_in) {
          fits = true;
          break;
        }
      }
    } else {
      for (const Offset off : table_.offsets()) {
        const Coord c = torus.wrap(origin + off);
        bool all_in = true;
        for (const Coord node : extended) {
          if (node == c || !torus.within(c, node, r_, m_)) {
            all_in = false;
            break;
          }
        }
        if (all_in) {
          fits = true;
          break;
        }
      }
    }
    if (!fits) return;
  }
  ctx.broadcast(make_heard(extended, origin, v));
}

void BvIndirectBehavior::accept_report_legacy(
    std::uint64_t key, Coord origin, const RelayerChain& chain,
    const std::array<Offset, RelayerChain::kCapacity>& rel) {
  Evidence& ev = evidence_[key];
  ev.origin = origin;
  auto& per_first = ev.per_first_relayer[chain.front()];
  if (per_first < kReportsPerFirstRelayer &&
      ev.dedup.insert(pack_report_key(rel, chain.size())).second) {
    ++per_first;
    Evidence::Report report;
    report.relayers = chain;
    report.rel = rel;
    bool mask_ok = true;
    for (const Coord c : chain) {
      auto bit = ev.node_bits.find(c);
      if (bit == ev.node_bits.end()) {
        bit = ev.node_bits.emplace(c, static_cast<int>(ev.bit_coords.size()))
                  .first;
        ev.bit_coords.push_back(c);
      }
      if (bit->second >= static_cast<int>(report.mask.size())) {
        // Id space exhausted (cannot happen for r <= 7). Dropping the
        // report is conservative: it can only delay determination, never
        // let conflicting reports pass as disjoint.
        mask_ok = false;
        break;
      }
      report.mask.set(static_cast<std::size_t>(bit->second));
    }
    if (mask_ok) {
      ev.reports.push_back(report);
      dirty_.insert(key);
    }
  }
}

bool BvIndirectBehavior::try_determine_from_reports(const Torus& torus,
                                                    Coord origin,
                                                    const Evidence& ev) const {
  if (static_cast<std::int64_t>(ev.reports.size()) < params_.t + 1) {
    return false;
  }
  for (const Offset off : table_.offsets()) {
    // Candidate center c = origin + off (so origin lies in nbd(c)). Collect
    // masks of the reports fully contained in nbd(c) into reusable scratch.
    scratch_masks_.clear();
    scratch_first_.clear();
    if (offset_exact_) {
      for (const auto& report : ev.reports) {
        bool inside = true;
        const std::size_t n = report.relayers.size();
        for (std::size_t i = 0; i < n; ++i) {
          if (report.rel[i] == off ||
              !within_radius(report.rel[i] - off, r_, m_)) {
            inside = false;
            break;
          }
        }
        if (inside) {
          scratch_masks_.push_back(report.mask);
          scratch_first_.push_back(pack_offset32(report.rel[0]));
        }
      }
    } else {
      const Coord c = torus.wrap(origin + off);
      for (const auto& report : ev.reports) {
        bool inside = true;
        for (const Coord node : report.relayers) {
          if (node == c || !torus.within(c, node, r_, m_)) {
            inside = false;
            break;
          }
        }
        if (inside) {
          scratch_masks_.push_back(report.mask);
          scratch_first_.push_back(pack_offset32(report.rel[0]));
        }
      }
    }
    // Disjoint reports need distinct first relayers: a cheap upper bound
    // that skips hopeless (and potentially expensive) packing calls.
    std::sort(scratch_first_.begin(), scratch_first_.end());
    const auto distinct_first = std::distance(
        scratch_first_.begin(),
        std::unique(scratch_first_.begin(), scratch_first_.end()));
    if (static_cast<std::int64_t>(distinct_first) < params_.t + 1) {
      continue;
    }
    const PackingResult packing = max_disjoint_packing(
        scratch_masks_, static_cast<int>(params_.t + 1));
    if (packing.count >= params_.t + 1) return true;
  }
  return false;
}

void BvIndirectBehavior::on_round_end(NodeContext& ctx) {
  if (committed_.has_value() && !params_.track_after_commit) {
    // Dead state after committing; reclaim it.
    dirty_.clear();
    evidence_.clear();
    fast_evidence_.clear();
    return;
  }
  if (dirty_.empty()) return;
  const Torus& torus = ctx.torus();
  // Move out: determine() mutates the evidence maps and new dirt belongs to
  // the next round anyway.
  scratch_keys_.clear();
  scratch_keys_.insert(scratch_keys_.end(), dirty_.begin(), dirty_.end());
  std::sort(scratch_keys_.begin(), scratch_keys_.end());  // deterministic
  dirty_.clear();
  if (center_table_ != nullptr) {
    PackingMemo& memo = PackingMemo::thread_instance();
    for (const std::uint64_t key : scratch_keys_) {
      const auto it = fast_evidence_.find(key);
      if (it == fast_evidence_.end()) continue;  // already determined
      if (it->second.det.evaluate(memo)) {
        determine(ctx, it->second.origin,
                  static_cast<std::uint8_t>(key & 1));
      }
    }
    return;
  }
  for (const std::uint64_t key : scratch_keys_) {
    const auto it = evidence_.find(key);
    if (it == evidence_.end()) continue;  // already determined
    const std::uint8_t v = static_cast<std::uint8_t>(key & 1);
    Evidence& ev = it->second;
    if (ev.reports.empty() || ev.reports.size() == ev.evaluated_at) continue;
    ev.evaluated_at = ev.reports.size();
    if (try_determine_from_reports(torus, ev.origin, ev)) {
      determine(ctx, ev.origin, v);
    }
  }
}

}  // namespace rbcast
