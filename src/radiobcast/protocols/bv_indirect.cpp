#include "radiobcast/protocols/bv_indirect.h"

#include <algorithm>

#include "radiobcast/grid/neighborhood.h"
#include "radiobcast/protocols/earmark.h"

namespace rbcast {

namespace {

/// Binary encoding of a report (relayer chain) for deduplication.
std::string encode_report(const std::vector<Coord>& relayers) {
  std::string out;
  out.reserve(relayers.size() * 8);
  for (const Coord c : relayers) {
    for (int shift = 0; shift < 32; shift += 8) {
      out.push_back(static_cast<char>(
          (static_cast<std::uint32_t>(c.x) >> shift) & 0xFF));
    }
    for (int shift = 0; shift < 32; shift += 8) {
      out.push_back(static_cast<char>(
          (static_cast<std::uint32_t>(c.y) >> shift) & 0xFF));
    }
  }
  return out;
}

constexpr std::size_t kMaxRelayers = 3;  // "up to three intermediate nodes"

}  // namespace

BvIndirectBehavior::BvIndirectBehavior(const ProtocolParams& params,
                                       const Torus& torus, std::int32_t r,
                                       Metric m, RelayMode mode)
    : params_(params),
      r_(r),
      m_(m),
      mode_(mode),
      counter_(torus, r, m, params.t) {}

void BvIndirectBehavior::commit(NodeContext& ctx, std::uint8_t value) {
  if (committed_.has_value()) return;
  committed_ = value;
  commit_round_ = ctx.round();
  ctx.note_commit(value);
  ctx.broadcast(make_committed(ctx.self(), value));
}

void BvIndirectBehavior::determine(NodeContext& ctx, Coord origin,
                                   std::uint8_t value) {
  if (const auto fired = counter_.record(origin, value)) commit(ctx, *fired);
  // Evidence for a determined pair is no longer needed.
  evidence_.erase(origin_value_key(ctx.torus().wrap(origin), value));
}

void BvIndirectBehavior::on_receive(NodeContext& ctx, const Envelope& env) {
  switch (env.msg.type) {
    case MsgType::kCommitted:
      handle_committed(ctx, env);
      break;
    case MsgType::kHeard:
      handle_heard(ctx, env);
      break;
  }
}

void BvIndirectBehavior::handle_committed(NodeContext& ctx,
                                          const Envelope& env) {
  const Torus& torus = ctx.torus();
  if (torus.wrap(env.msg.origin) != env.sender) return;
  const auto [it, inserted] =
      first_committed_.emplace(env.sender, env.msg.value);
  if (!inserted) return;
  const std::uint8_t v = it->second;

  // First-hop relay duty: report the commit to our own neighborhood.
  ctx.broadcast(make_heard({ctx.self()}, env.sender, v));

  if (env.sender == torus.wrap(params_.source)) commit(ctx, v);
  determine(ctx, env.sender, v);
}

void BvIndirectBehavior::handle_heard(NodeContext& ctx, const Envelope& env) {
  const Torus& torus = ctx.torus();
  const Message& msg = env.msg;
  if (msg.relayers.empty() || msg.relayers.size() > kMaxRelayers) return;
  // The outermost relayer must be the actual transmitter (no spoofing).
  if (torus.wrap(msg.relayers.back()) != env.sender) return;

  const Coord origin = torus.wrap(msg.origin);
  const Coord self = ctx.self();
  if (origin == self) return;

  // Plausibility of the claimed chain: consecutive hops within radius,
  // all nodes distinct, and the chain does not pass through us.
  std::vector<Coord> chain;
  chain.reserve(msg.relayers.size());
  Coord prev = origin;
  for (const Coord raw : msg.relayers) {
    const Coord c = torus.wrap(raw);
    if (c == origin || c == self) return;
    if (std::find(chain.begin(), chain.end(), c) != chain.end()) return;
    if (!torus.within(prev, c, r_, m_)) return;
    chain.push_back(c);
    prev = c;
  }

  const std::uint8_t v = msg.value & 1;
  const std::uint64_t key = origin_value_key(origin, v);
  // Evidence only feeds our own commit decision; relay duty (below) is what
  // others rely on, so post-commit we stop recording but keep relaying
  // (unless full tracking is requested).
  if ((!committed_.has_value() || params_.track_after_commit) &&
      !counter_.is_determined(origin, v)) {
    Evidence& ev = evidence_[key];
    ev.origin = origin;
    auto& per_first = ev.per_first_relayer[chain.front()];
    if (per_first < kReportsPerFirstRelayer &&
        ev.dedup.insert(encode_report(chain)).second) {
      ++per_first;
      Evidence::Report report;
      report.relayers = chain;
      bool mask_ok = true;
      for (const Coord c : chain) {
        auto bit = ev.node_bits.find(c);
        if (bit == ev.node_bits.end()) {
          bit = ev.node_bits.emplace(c, static_cast<int>(ev.bit_coords.size()))
                    .first;
          ev.bit_coords.push_back(c);
        }
        if (bit->second >= static_cast<int>(report.mask.size())) {
          // Id space exhausted (cannot happen for r <= 7). Dropping the
          // report is conservative: it can only delay determination, never
          // let conflicting reports pass as disjoint.
          mask_ok = false;
          break;
        }
        report.mask.set(static_cast<std::size_t>(bit->second));
      }
      if (mask_ok) {
        ev.reports.push_back(std::move(report));
        dirty_.insert(key);
      }
    }
  }

  // Relay with ourselves appended, if depth allows and the extended chain is
  // still potentially useful.
  if (chain.size() >= kMaxRelayers) return;
  std::vector<Coord> extended = chain;
  extended.push_back(self);
  if (mode_ == RelayMode::kEarmarked) {
    std::vector<Offset> rel;
    rel.reserve(extended.size());
    for (const Coord c : extended) rel.push_back(torus.delta(origin, c));
    if (!EarmarkPlan::get(r_).allows(rel)) return;
  } else {
    // Usefulness filter: a decider only ever accepts a chain whose nodes plus
    // the committer fit in one neighborhood, so drop extensions that already
    // cannot.
    bool fits = false;
    const auto& table = NeighborhoodTable::get(r_, m_);
    for (const Offset off : table.offsets()) {
      const Coord c = torus.wrap(origin + off);
      bool all_in = true;
      for (const Coord node : extended) {
        if (node == c || !torus.within(c, node, r_, m_)) {
          all_in = false;
          break;
        }
      }
      if (all_in) {
        fits = true;
        break;
      }
    }
    if (!fits) return;
  }
  ctx.broadcast(make_heard(std::move(extended), origin, v));
}

bool BvIndirectBehavior::try_determine_from_reports(const Torus& torus,
                                                    Coord origin,
                                                    const Evidence& ev) const {
  if (static_cast<std::int64_t>(ev.reports.size()) < params_.t + 1) {
    return false;
  }
  const auto& table = NeighborhoodTable::get(r_, m_);
  for (const Offset off : table.offsets()) {
    const Coord c = torus.wrap(origin + off);  // candidate center: origin in nbd(c)
    // Masks of the reports fully contained in nbd(c).
    std::vector<NodeMask> masks;
    masks.reserve(ev.reports.size());
    std::unordered_set<Coord> first_relayers;
    for (const auto& report : ev.reports) {
      bool inside = true;
      for (const Coord node : report.relayers) {
        if (node == c || !torus.within(c, node, r_, m_)) {
          inside = false;
          break;
        }
      }
      if (inside) {
        masks.push_back(report.mask);
        first_relayers.insert(report.relayers.front());
      }
    }
    // Disjoint reports need distinct first relayers: a cheap upper bound
    // that skips hopeless (and potentially expensive) packing calls.
    if (static_cast<std::int64_t>(first_relayers.size()) < params_.t + 1) {
      continue;
    }
    const PackingResult packing = max_disjoint_packing(
        masks, static_cast<int>(params_.t + 1));
    if (packing.count >= params_.t + 1) return true;
  }
  return false;
}

void BvIndirectBehavior::on_round_end(NodeContext& ctx) {
  if (committed_.has_value() && !params_.track_after_commit) {
    // Dead state after committing; reclaim it.
    dirty_.clear();
    evidence_.clear();
    return;
  }
  if (dirty_.empty()) return;
  const Torus& torus = ctx.torus();
  // Move out: determine() mutates evidence_ and new dirt belongs to the next
  // round anyway.
  std::vector<std::uint64_t> keys(dirty_.begin(), dirty_.end());
  std::sort(keys.begin(), keys.end());  // deterministic evaluation order
  dirty_.clear();
  for (const std::uint64_t key : keys) {
    const auto it = evidence_.find(key);
    if (it == evidence_.end()) continue;  // already determined
    const std::uint8_t v = static_cast<std::uint8_t>(key & 1);
    Evidence& ev = it->second;
    if (ev.reports.empty() || ev.reports.size() == ev.evaluated_at) continue;
    ev.evaluated_at = ev.reports.size();
    if (try_determine_from_reports(torus, ev.origin, ev)) {
      determine(ctx, ev.origin, v);
    }
  }
}

}  // namespace rbcast
