#pragma once
// The Certified Propagation Algorithm — the "extremely simple protocol" of
// [Koo04], analyzed in Section IX.
//
// The source's direct neighbors commit on hearing the source. Every other
// node commits once it has heard the same value in COMMITTED broadcasts from
// t+1 distinct neighbors, then re-broadcasts the committed value once and
// terminates. No node ever commits wrongly (at most t of the t+1 reporters
// can be faulty); liveness holds for t <= 2r^2/3 in L∞ (Theorem 6).

#include <optional>
#include <unordered_map>

#include "radiobcast/net/network.h"
#include "radiobcast/protocols/common.h"

namespace rbcast {

class CpaBehavior final : public NodeBehavior {
 public:
  explicit CpaBehavior(const ProtocolParams& params) : params_(params) {}

  void on_receive(NodeContext& ctx, const Envelope& env) override;

  std::optional<std::uint8_t> committed_value() const override {
    return committed_;
  }

  std::optional<std::int64_t> commit_round() const override {
    return commit_round_;
  }

 private:
  void commit(NodeContext& ctx, std::uint8_t value);

  ProtocolParams params_;
  std::optional<std::uint8_t> committed_;
  std::optional<std::int64_t> commit_round_;
  // First COMMITTED value heard per neighbor (later contradictions from the
  // same node are ignored, per the no-duplicity rule of Section V).
  std::unordered_map<Coord, std::uint8_t> first_claim_;
  std::int64_t claims_[2] = {0, 0};
};

}  // namespace rbcast
