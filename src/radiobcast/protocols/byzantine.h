#pragma once
// Adversarial node behaviors.
//
// The model (Section II) rules out address spoofing and collisions, so a
// Byzantine node's power is limited to sending wrong/fabricated message
// *content* (and staying silent). Note that the shared channel already makes
// duplicity impossible (Section V): whatever a faulty node sends is heard
// identically by all of its neighbors.
//
//  * SilentBehavior   — never transmits. Models crash-from-start faults and
//                       the liveness-critical corner of Byzantine behavior
//                       (a barrier of silent nodes starves deciders of
//                       evidence).
//  * LyingBehavior    — commits to and propagates the wrong value, relays
//                       every report with its value flipped, and claims that
//                       every committer it hears committed the wrong value.
//                       The safety-critical corner: Theorem 2 predicts it can
//                       never cause an honest wrong commit.
//  * CrashAtRound     — behaves honestly (delegating to an inner behavior)
//                       until a given round, then goes permanently silent:
//                       crash-stop mid-protocol.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>

#include "radiobcast/net/network.h"

namespace rbcast {

class SilentBehavior final : public NodeBehavior {
 public:
  void on_receive(NodeContext&, const Envelope&) override {}
};

class LyingBehavior final : public NodeBehavior {
 public:
  /// `wrong_value` is the value the adversary pushes (the complement of the
  /// source's value in the experiments).
  explicit LyingBehavior(std::uint8_t wrong_value)
      : wrong_value_(wrong_value) {}

  void on_start(NodeContext& ctx) override;
  void on_receive(NodeContext& ctx, const Envelope& env) override;

 private:
  std::uint8_t wrong_value_;
  std::unordered_set<std::string> sent_;  // volume bound, not honesty
};

/// Address-spoofing liar (Section X's negative control): impersonates its
/// honest neighbors, broadcasting COMMITTED claims in their names with the
/// wrong value. Requires RadioNetwork::allow_spoofing(true). With spoofing
/// the no-spoofing assumption of Section II is void and honest nodes CAN be
/// driven to wrong commits — which is exactly what the experiment shows.
class SpoofingBehavior final : public NodeBehavior {
 public:
  SpoofingBehavior(std::uint8_t wrong_value, std::int32_t r, Metric m)
      : wrong_value_(wrong_value), r_(r), m_(m) {}

  void on_start(NodeContext& ctx) override;
  void on_receive(NodeContext& ctx, const Envelope& env) override;

 private:
  std::uint8_t wrong_value_;
  std::int32_t r_;
  Metric m_;
};

class CrashAtRoundBehavior final : public NodeBehavior {
 public:
  CrashAtRoundBehavior(std::unique_ptr<NodeBehavior> inner,
                       std::int64_t crash_round)
      : inner_(std::move(inner)), crash_round_(crash_round) {}

  void on_start(NodeContext& ctx) override;
  void on_receive(NodeContext& ctx, const Envelope& env) override;
  void on_round_end(NodeContext& ctx) override;

  std::optional<std::uint8_t> committed_value() const override {
    // A crashed node is faulty; it is never scored.
    return std::nullopt;
  }

 private:
  bool alive(const NodeContext& ctx) const;

  std::unique_ptr<NodeBehavior> inner_;
  std::int64_t crash_round_;
};

}  // namespace rbcast
