#include "radiobcast/protocols/pool.h"

#include <atomic>

namespace rbcast {

namespace {
std::atomic<bool> g_soa_pools_enabled{true};
}  // namespace

void set_soa_pools_enabled(bool enabled) {
  g_soa_pools_enabled.store(enabled, std::memory_order_relaxed);
}

bool soa_pools_enabled() {
  return g_soa_pools_enabled.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// CrashFloodPool — mirrors CrashFloodBehavior::on_receive exactly.

void CrashFloodPool::on_receive(NodeContext& ctx, std::int32_t node,
                                const Envelope& env) {
  if (state_.committed(node)) return;  // terminated
  if (env.msg.type != MsgType::kCommitted) return;
  state_.set(node, env.msg.value, ctx.round());
  ctx.note_commit(env.msg.value);
  ctx.broadcast(make_committed(ctx.self(), env.msg.value));
}

// ---------------------------------------------------------------------------
// CpaPool — mirrors CpaBehavior.

void CpaPool::commit(NodeContext& ctx, std::int32_t node, std::uint8_t value) {
  state_.set(node, value, ctx.round());
  ctx.note_commit(value);
  ctx.broadcast(make_committed(ctx.self(), value));
}

void CpaPool::on_receive(NodeContext& ctx, std::int32_t node,
                         const Envelope& env) {
  if (state_.committed(node)) return;  // terminated
  if (env.msg.type != MsgType::kCommitted) return;
  // A COMMITTED's origin must be its transmitter; anything else is a faulty
  // fabrication and is discarded (no spoofing, Section II).
  if (ctx.torus().wrap(env.msg.origin) != env.sender) return;

  if (env.sender == source_) {
    commit(ctx, node, env.msg.value);  // direct neighbors trust the source
    return;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) << 32) |
      static_cast<std::uint32_t>(ctx.torus().index(env.sender));
  if (!first_claim_.insert(key)) return;  // first claim per neighbor only
  std::int32_t& tally =
      claims_[static_cast<std::size_t>(node) * 2 + (env.msg.value & 1)];
  tally += 1;
  if (tally >= t_ + 1) commit(ctx, node, env.msg.value);
}

// ---------------------------------------------------------------------------
// BvTwoHopPool — mirrors BvTwoHopBehavior on the CenterTable path, including
// the inlined NeighborhoodCommitCounter (protocols/common.cpp).

BvTwoHopPool::BvTwoHopPool(const ProtocolParams& params, const Torus& torus,
                           std::int32_t r, Metric m)
    : t_(params.t),
      track_after_commit_(params.track_after_commit),
      source_(torus.wrap(params.source)),
      r_(r),
      m_(m),
      table_(NeighborhoodTable::get(r, m)),
      center_table_(CenterTable::get(r, m, torus.width(), torus.height())),
      state_(torus.node_count()) {}

void BvTwoHopPool::commit(NodeContext& ctx, std::int32_t node,
                          std::uint8_t value) {
  if (state_.committed(node)) return;
  state_.set(node, value, ctx.round());
  ctx.note_commit(value);
  ctx.broadcast(make_committed(ctx.self(), value));
}

void BvTwoHopPool::determine(NodeContext& ctx, std::int32_t node, Coord origin,
                             const std::uint8_t value) {
  // NeighborhoodCommitCounter::record, SoA form: idempotence via the packed
  // determined set, then one count bump per candidate center in offset-table
  // order, firing at t+1 (same first-firing semantics — the fired value does
  // not depend on which center fires).
  const Torus& torus = ctx.torus();
  const Coord o = torus.wrap(origin);
  if (!determined_.insert(nov_key(node, torus.index(o), value))) return;
  std::optional<std::uint8_t> fired;
  for (const Offset off : table_.offsets()) {
    const Coord c = torus.wrap(o + off);
    std::uint32_t& count = center_counts_.slot(nov_key(node, torus.index(c),
                                                       value));
    count += 1;
    if (count >= static_cast<std::uint32_t>(t_ + 1) && !fired) fired = value;
  }
  if (fired) commit(ctx, node, *fired);
}

void BvTwoHopPool::on_receive(NodeContext& ctx, std::int32_t node,
                              const Envelope& env) {
  switch (env.msg.type) {
    case MsgType::kCommitted:
      handle_committed(ctx, node, env);
      break;
    case MsgType::kHeard:
      handle_heard(ctx, node, env);
      break;
  }
}

void BvTwoHopPool::handle_committed(NodeContext& ctx, std::int32_t node,
                                    const Envelope& env) {
  const Torus& torus = ctx.torus();
  // A COMMITTED's origin must be the transmitter itself.
  if (torus.wrap(env.msg.origin) != env.sender) return;
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) << 32) |
      static_cast<std::uint32_t>(torus.index(env.sender));
  if (!first_committed_.insert(key)) return;  // no-duplicity
  const std::uint8_t v = env.msg.value;

  // Relay duty: immediate neighbors of a committer report the commit once.
  ctx.broadcast(make_heard({ctx.self()}, env.sender, v));

  // Direct reliable determination; neighbors of the source commit instantly.
  if (env.sender == source_) commit(ctx, node, v);
  // Post-commit, further determinations are dead state (unless tracked).
  if (!state_.committed(node) || track_after_commit_) {
    determine(ctx, node, env.sender, v);
  }
}

void BvTwoHopPool::handle_heard(NodeContext& ctx, std::int32_t node,
                                const Envelope& env) {
  if (state_.committed(node) && !track_after_commit_) return;
  const Torus& torus = ctx.torus();
  const Message& msg = env.msg;
  // Two-hop protocol: exactly one relayer, and it must be the transmitter.
  if (msg.relayers.size() != 1) return;
  const Coord reporter = env.sender;
  if (torus.wrap(msg.relayers[0]) != reporter) return;
  const Coord origin = torus.wrap(msg.origin);
  // The reporter must plausibly have heard the committer directly.
  if (origin == reporter || !torus.within(origin, reporter, r_, m_)) return;
  if (origin == ctx.self()) return;  // reports about myself carry no news
  const std::int32_t reporter_idx = torus.index(reporter);
  const std::int32_t origin_idx = torus.index(origin);
  // First HEARD per (reporter, origin) only.
  const std::uint64_t consumed_key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(node)) << 42) |
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(reporter_idx))
       << 21) |
      static_cast<std::uint32_t>(origin_idx);
  if (!heard_consumed_.insert(consumed_key)) return;
  const std::uint8_t v = msg.value & 1;
  if (determined_.contains(nov_key(node, origin_idx, v))) return;

  // Count this reporter toward every candidate center whose neighborhood
  // contains both committer and reporter — the CenterTable bitset walk of
  // BvTwoHopBehavior::handle_heard, with the counts block arena-allocated.
  std::uint32_t& block = reporter_blocks_.slot(nov_key(node, origin_idx, v));
  if (block == 0) {
    block = static_cast<std::uint32_t>(++arena_blocks_);
    reporter_arena_.resize(arena_blocks_ * static_cast<std::size_t>(
                                               table_.size()),
                           0);
  }
  std::int32_t* counts =
      reporter_arena_.data() +
      (static_cast<std::size_t>(block) - 1) *
          static_cast<std::size_t>(table_.size());
  const Offset d = torus.delta(origin, reporter);
  const std::int64_t threshold = t_ + 1;
  bool determined = false;
  center_table_.containing(d).for_each([&](int k) {
    std::int32_t& count = counts[k];
    count += 1;
    if (count >= threshold) determined = true;
  });
  if (determined) determine(ctx, node, origin, v);
}

std::uint64_t BvTwoHopPool::state_bytes() const {
  return state_.bytes() + first_committed_.bytes() + heard_consumed_.bytes() +
         determined_.bytes() + center_counts_.bytes() +
         reporter_blocks_.bytes() +
         reporter_arena_.size() * sizeof(std::int32_t);
}

}  // namespace rbcast
