#include "radiobcast/protocols/byzantine.h"

#include "radiobcast/grid/neighborhood.h"

#include <utility>
#include <vector>

namespace rbcast {

namespace {

std::string fingerprint(const Message& m) {
  std::string out;
  out.push_back(static_cast<char>(m.type));
  out.push_back(static_cast<char>(m.value));
  auto push_coord = [&out](Coord c) {
    for (int shift = 0; shift < 32; shift += 8) {
      out.push_back(static_cast<char>(
          (static_cast<std::uint32_t>(c.x) >> shift) & 0xFF));
      out.push_back(static_cast<char>(
          (static_cast<std::uint32_t>(c.y) >> shift) & 0xFF));
    }
  };
  push_coord(m.origin);
  for (const Coord c : m.relayers) push_coord(c);
  return out;
}

}  // namespace

void LyingBehavior::on_start(NodeContext& ctx) {
  ctx.broadcast(make_committed(ctx.self(), wrong_value_));
}

void LyingBehavior::on_receive(NodeContext& ctx, const Envelope& env) {
  const std::uint8_t flipped = wrong_value_;
  Message lie;
  if (env.msg.type == MsgType::kCommitted) {
    // Claim the committer committed the wrong value.
    lie = make_heard({ctx.self()}, env.sender, flipped);
  } else {
    if (env.msg.relayers.size() >= 3) return;  // depth cap keeps volume finite
    RelayerChain chain = env.msg.relayers;
    chain.push_back(ctx.self());
    lie = make_heard(chain, env.msg.origin, flipped);
  }
  if (sent_.insert(fingerprint(lie)).second) ctx.broadcast(std::move(lie));
}

void SpoofingBehavior::on_start(NodeContext& ctx) {
  ctx.broadcast(make_committed(ctx.self(), wrong_value_));
  // Immediately impersonate every neighbor, claiming each committed to the
  // wrong value. The forged claims land before the honest wave arrives and,
  // absent authentication, are indistinguishable from genuine COMMITTED
  // broadcasts — the first-value rule then locks the lies in.
  const auto& table = NeighborhoodTable::get(r_, m_);
  for (const Offset o : table.offsets()) {
    const Coord victim = ctx.torus().wrap(ctx.self() + o);
    ctx.broadcast_as(victim, make_committed(victim, wrong_value_));
  }
}

void SpoofingBehavior::on_receive(NodeContext&, const Envelope&) {}

bool CrashAtRoundBehavior::alive(const NodeContext& ctx) const {
  return ctx.round() < crash_round_;
}

void CrashAtRoundBehavior::on_start(NodeContext& ctx) {
  if (crash_round_ > 0) inner_->on_start(ctx);
}

void CrashAtRoundBehavior::on_receive(NodeContext& ctx, const Envelope& env) {
  if (alive(ctx)) inner_->on_receive(ctx, env);
}

void CrashAtRoundBehavior::on_round_end(NodeContext& ctx) {
  if (alive(ctx)) inner_->on_round_end(ctx);
}

}  // namespace rbcast
