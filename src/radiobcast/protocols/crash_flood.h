#pragma once
// Crash-stop broadcast (Section VII).
//
// "When only crash-stop failures are admissible, no special protocol is
// required. Each node that receives a value commits to it, re-broadcasts it
// once for the benefit of others, and then may terminate." Achievability is
// pure reachability; Theorems 4 and 5 pin the threshold at t = r(2r+1) in L∞.

#include <optional>

#include "radiobcast/net/network.h"
#include "radiobcast/protocols/common.h"

namespace rbcast {

class CrashFloodBehavior final : public NodeBehavior {
 public:
  explicit CrashFloodBehavior(const ProtocolParams& params) : params_(params) {}

  void on_receive(NodeContext& ctx, const Envelope& env) override;

  std::optional<std::uint8_t> committed_value() const override {
    return committed_;
  }

  std::optional<std::int64_t> commit_round() const override {
    return commit_round_;
  }

 private:
  ProtocolParams params_;
  std::optional<std::uint8_t> committed_;
  std::optional<std::int64_t> commit_round_;
};

}  // namespace rbcast
