#pragma once
// Mergeable log-bucketed latency histograms for the networked runtime.
//
// The runtime measures wall-clock latencies (per-round duration, time to
// commit) whose exact values are timing-dependent and therefore must stay
// out of the deterministic Counters JSON (golden campaign digests pin those
// bytes). LatencyHistogram is the side channel: power-of-two microsecond
// buckets whose integer counts merge exactly across nodes and processes, so
// the orchestrator can report deployment-wide p50/p95/p99 from per-node
// verdict files without ever shipping raw samples. Quantiles are computed at
// report time from the merged buckets (resolution: one power of two, which
// is plenty for "did epoll beat the 50 us poll loop by 5x").

#include <array>
#include <cstdint>
#include <string>

namespace rbcast {

class LatencyHistogram {
 public:
  /// Bucket 0 holds exact-zero samples; bucket b >= 1 holds samples in
  /// [2^(b-1), 2^b) microseconds. 40 buckets cover ~6.4 days.
  static constexpr int kBuckets = 40;

  void record_us(std::uint64_t us);

  /// Exact merge: bucket-wise integer sums (count/sum/max likewise).
  void merge(const LatencyHistogram& other);

  std::uint64_t count() const { return count_; }
  std::uint64_t sum_us() const { return sum_us_; }
  std::uint64_t max_us() const { return max_us_; }
  std::uint64_t bucket(int b) const {
    return buckets_[static_cast<std::size_t>(b)];
  }

  /// Upper edge of the bucket containing the q-quantile sample (q in [0,1]),
  /// clamped to the largest sample seen; 0 when empty. Monotone in q.
  std::uint64_t quantile_us(double q) const;

  /// Sparse text form for verdict files: "<sum_us> <max_us> [b:count]...".
  std::string serialize() const;
  /// Inverse of serialize. Throws std::invalid_argument on malformed input.
  static LatencyHistogram deserialize(const std::string& text);

  friend bool operator==(const LatencyHistogram&,
                         const LatencyHistogram&) = default;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_us_ = 0;
  std::uint64_t max_us_ = 0;
};

}  // namespace rbcast
