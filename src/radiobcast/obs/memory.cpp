#include "radiobcast/obs/memory.h"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace rbcast {

namespace {

/// VmHWM ("high water mark" RSS) from /proc/self/status, in bytes; 0 when
/// the file or the field is unavailable (non-Linux).
std::uint64_t vm_hwm_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long v = 0;
      if (std::sscanf(line + 6, "%llu", &v) == 1) kib = v;
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
}

}  // namespace

std::uint64_t peak_rss_bytes() {
  if (const std::uint64_t hwm = vm_hwm_bytes(); hwm != 0) return hwm;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
    // Linux reports ru_maxrss in KiB, macOS in bytes.
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
  }
#endif
  return 0;
}

}  // namespace rbcast
