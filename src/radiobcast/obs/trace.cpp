#include "radiobcast/obs/trace.h"

#include <ostream>
#include <stdexcept>

namespace rbcast {

const char* to_string(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kRoundStarted: return "round_started";
    case TraceEventKind::kMessageDelivered: return "message_delivered";
    case TraceEventKind::kNodeCommitted: return "node_committed";
  }
  return "?";
}

namespace {

void append_coord(std::string& out, const char* name, Coord c) {
  out += ",\"";
  out += name;
  out += "\":[";
  out += std::to_string(c.x);
  out += ',';
  out += std::to_string(c.y);
  out += ']';
}

}  // namespace

void append_jsonl(std::string& out, const TraceEvent& e) {
  out.clear();
  out += "{\"event\":\"";
  out += to_string(e.kind);
  out += "\",\"round\":";
  out += std::to_string(e.round);
  switch (e.kind) {
    case TraceEventKind::kRoundStarted:
      break;
    case TraceEventKind::kMessageDelivered:
      append_coord(out, "sender", e.sender);
      append_coord(out, "receiver", e.node);
      out += ",\"type\":\"";
      out += e.msg_type == 0 ? "COMMITTED" : "HEARD";
      out += '"';
      append_coord(out, "origin", e.origin);
      out += ",\"value\":";
      out += std::to_string(e.value);
      break;
    case TraceEventKind::kNodeCommitted:
      append_coord(out, "node", e.node);
      out += ",\"value\":";
      out += std::to_string(e.value);
      break;
  }
  out += '}';
}

std::string to_jsonl(const TraceEvent& e) {
  std::string out;
  append_jsonl(out, e);
  return out;
}

RoundTrace::RoundTrace(std::size_t capacity) : buffer_(capacity) {
  if (capacity == 0) throw std::invalid_argument("trace capacity must be > 0");
}

void RoundTrace::record(const TraceEvent& e) {
  if (!enabled_) return;
  if (stream_ != nullptr) {
    // Streaming path: format into the reusable scratch line and write now.
    // Nothing enters the ring, so resident trace memory stays O(1) per trial
    // and no event is ever evicted.
    append_jsonl(line_, e);
    line_ += '\n';
    stream_->write(line_.data(),
                   static_cast<std::streamsize>(line_.size()));
    ++recorded_;
    return;
  }
  if (size_ < buffer_.size()) {
    buffer_[(head_ + size_) % buffer_.size()] = e;
    ++size_;
  } else {
    buffer_[head_] = e;  // evict the oldest
    head_ = (head_ + 1) % buffer_.size();
  }
  ++recorded_;
}

void RoundTrace::clear() {
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
}

std::vector<TraceEvent> RoundTrace::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(buffer_[(head_ + i) % buffer_.size()]);
  }
  return out;
}

void RoundTrace::write_jsonl(std::ostream& os) const {
  for (std::size_t i = 0; i < size_; ++i) {
    os << to_jsonl(buffer_[(head_ + i) % buffer_.size()]) << '\n';
  }
}

}  // namespace rbcast
