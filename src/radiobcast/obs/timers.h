#pragma once
// Coarse per-trial phase timing: how long one simulation spent building the
// network (setup), running rounds (rounds), and scoring the outcome
// (verdict). Three steady_clock reads per trial — cheap enough to stay
// always-on — but wall-clock is inherently nondeterministic, so timings are
// excluded from every byte-identical payload (campaign JSON/CSV); they
// surface only through human-facing summaries.

#include <chrono>

namespace rbcast {

struct PhaseTimers {
  double setup_seconds = 0.0;
  double rounds_seconds = 0.0;
  double verdict_seconds = 0.0;

  double total_seconds() const {
    return setup_seconds + rounds_seconds + verdict_seconds;
  }

  /// Sums phase by phase (for aggregating trials).
  void merge(const PhaseTimers& other) {
    setup_seconds += other.setup_seconds;
    rounds_seconds += other.rounds_seconds;
    verdict_seconds += other.verdict_seconds;
  }
};

/// Restartable stopwatch: lap() returns seconds since construction or the
/// previous lap().
class PhaseStopwatch {
 public:
  PhaseStopwatch() : last_(std::chrono::steady_clock::now()) {}

  double lap() {
    const auto now = std::chrono::steady_clock::now();
    const double s = std::chrono::duration<double>(now - last_).count();
    last_ = now;
    return s;
  }

 private:
  std::chrono::steady_clock::time_point last_;
};

}  // namespace rbcast
