#pragma once
// Process peak-RSS probe (docs/OBSERVABILITY.md, "Memory").
//
// Two memory figures live in this codebase and they are deliberately kept
// apart:
//
//  * Counters::engine_bytes_peak — the engine's ANALYTICAL footprint,
//    computed from logical array sizes and deterministic table growth.
//    Identical across platforms, so it belongs in the deterministic campaign
//    JSON/CSV next to the other counters.
//  * peak_rss_bytes() below — what the OS actually charged the process.
//    Includes the allocator's slack, code, every other trial that ran in
//    this process, and the high-water mark never resets. Useful as a sanity
//    bound ("did the 1024x1024 trial really stay under N MB?"), useless as a
//    deterministic artifact — so it is surfaced ONLY through the
//    human-facing campaign summary, like wall_seconds.

#include <cstdint>

namespace rbcast {

/// Peak resident set size of this process in bytes: VmHWM from
/// /proc/self/status where available, getrusage(ru_maxrss) otherwise,
/// 0 if neither source works.
std::uint64_t peak_rss_bytes();

}  // namespace rbcast
