#include "radiobcast/obs/latency.h"

#include <algorithm>
#include <bit>
#include <sstream>
#include <stdexcept>

namespace rbcast {

namespace {

int bucket_of(std::uint64_t us) {
  if (us == 0) return 0;
  // floor(log2(us)) + 1: value v lands in [2^(b-1), 2^b).
  const int b = 64 - std::countl_zero(us);
  return std::min(b, LatencyHistogram::kBuckets - 1);
}

std::uint64_t bucket_upper_us(int b) {
  if (b == 0) return 0;
  return (std::uint64_t{1} << b) - 1;
}

}  // namespace

void LatencyHistogram::record_us(std::uint64_t us) {
  buckets_[static_cast<std::size_t>(bucket_of(us))] += 1;
  count_ += 1;
  sum_us_ += us;
  max_us_ = std::max(max_us_, us);
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[static_cast<std::size_t>(b)] +=
        other.buckets_[static_cast<std::size_t>(b)];
  }
  count_ += other.count_;
  sum_us_ += other.sum_us_;
  max_us_ = std::max(max_us_, other.max_us_);
}

std::uint64_t LatencyHistogram::quantile_us(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the quantile sample, 1-based; ceil without float drift.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (seen >= rank) return std::min(bucket_upper_us(b), max_us_);
  }
  return max_us_;
}

std::string LatencyHistogram::serialize() const {
  std::ostringstream out;
  out << sum_us_ << ' ' << max_us_;
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t c = buckets_[static_cast<std::size_t>(b)];
    if (c != 0) out << ' ' << b << ':' << c;
  }
  return out.str();
}

LatencyHistogram LatencyHistogram::deserialize(const std::string& text) {
  LatencyHistogram h;
  std::istringstream in(text);
  if (!(in >> h.sum_us_ >> h.max_us_)) {
    throw std::invalid_argument("latency histogram: missing sum/max");
  }
  std::string token;
  while (in >> token) {
    const auto colon = token.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("latency histogram: bad bucket '" + token +
                                  "'");
    }
    int b = 0;
    std::uint64_t c = 0;
    try {
      b = std::stoi(token.substr(0, colon));
      c = std::stoull(token.substr(colon + 1));
    } catch (const std::exception&) {
      throw std::invalid_argument("latency histogram: bad bucket '" + token +
                                  "'");
    }
    if (b < 0 || b >= kBuckets) {
      throw std::invalid_argument("latency histogram: bucket out of range");
    }
    h.buckets_[static_cast<std::size_t>(b)] = c;
    h.count_ += c;
  }
  return h;
}

}  // namespace rbcast
