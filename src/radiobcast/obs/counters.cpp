#include "radiobcast/obs/counters.h"

#include <algorithm>

namespace rbcast {

void Counters::merge(const Counters& other) {
  broadcasts_queued += other.broadcasts_queued;
  spoofed_sends += other.spoofed_sends;
  committed_queued += other.committed_queued;
  heard_queued += other.heard_queued;
  retransmission_copies += other.retransmission_copies;
  envelopes_delivered += other.envelopes_delivered;
  envelopes_dropped += other.envelopes_dropped;
  commits += other.commits;
  trial_retries += other.trial_retries;
  trial_timeouts += other.trial_timeouts;
  trial_failures += other.trial_failures;
  packets_sent += other.packets_sent;
  packets_retransmitted += other.packets_retransmitted;
  packets_acked += other.packets_acked;
  duplicates_dropped += other.duplicates_dropped;
  barrier_timeouts += other.barrier_timeouts;
  barrier_wait_us += other.barrier_wait_us;
  chaos_drops += other.chaos_drops;
  chaos_delays += other.chaos_delays;
  chaos_duplicates += other.chaos_duplicates;
  chaos_partition_drops += other.chaos_partition_drops;
  node_restarts += other.node_restarts;
  peers_suspected += other.peers_suspected;
  degraded_rounds += other.degraded_rounds;
  engine_bytes_peak = std::max(engine_bytes_peak, other.engine_bytes_peak);
  last_commit_round = std::max(last_commit_round, other.last_commit_round);
}

std::string to_json(const Counters& c) {
  std::string out = "{";
  const auto field = [&out](const char* name, std::uint64_t v, bool first) {
    if (!first) out += ',';
    out += '"';
    out += name;
    out += "\":";
    out += std::to_string(v);
  };
  field("broadcasts_queued", c.broadcasts_queued, true);
  field("spoofed_sends", c.spoofed_sends, false);
  field("committed_queued", c.committed_queued, false);
  field("heard_queued", c.heard_queued, false);
  field("retransmission_copies", c.retransmission_copies, false);
  field("envelopes_delivered", c.envelopes_delivered, false);
  field("envelopes_dropped", c.envelopes_dropped, false);
  field("commits", c.commits, false);
  field("trial_retries", c.trial_retries, false);
  field("trial_timeouts", c.trial_timeouts, false);
  field("trial_failures", c.trial_failures, false);
  field("packets_sent", c.packets_sent, false);
  field("packets_retransmitted", c.packets_retransmitted, false);
  field("packets_acked", c.packets_acked, false);
  field("duplicates_dropped", c.duplicates_dropped, false);
  field("barrier_timeouts", c.barrier_timeouts, false);
  field("barrier_wait_us", c.barrier_wait_us, false);
  field("chaos_drops", c.chaos_drops, false);
  field("chaos_delays", c.chaos_delays, false);
  field("chaos_duplicates", c.chaos_duplicates, false);
  field("chaos_partition_drops", c.chaos_partition_drops, false);
  field("node_restarts", c.node_restarts, false);
  field("peers_suspected", c.peers_suspected, false);
  field("degraded_rounds", c.degraded_rounds, false);
  field("engine_bytes_peak", c.engine_bytes_peak, false);
  out += ",\"last_commit_round\":";
  out += std::to_string(c.last_commit_round);
  out += '}';
  return out;
}

}  // namespace rbcast
