#pragma once
// Structured round traces: an optional event sink the radio network feeds as
// a trial executes — round boundaries, per-receiver deliveries, protocol
// commits — dumped as JSONL for offline analysis.
//
// Design constraints (and how they are met):
//
//  * Zero overhead when absent: the network holds a nullable RoundTrace* and
//    every emission site is a single pointer test. No trace, no work.
//  * Zero allocations in the sink: events are fixed-size PODs written into a
//    ring buffer preallocated at construction. A disabled sink records
//    nothing; an enabled one overwrites the oldest event once full (dropped()
//    reports how many were evicted). tests/test_obs.cpp instruments global
//    operator new to pin the no-allocation property.
//  * Deterministic output: events are recorded in simulation order, which is
//    itself a pure function of the trial seed, so the JSONL rendering of a
//    trial's trace is byte-identical regardless of campaign worker count or
//    scheduling. The campaign engine relies on this for --trace-dir.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "radiobcast/grid/coord.h"

namespace rbcast {

enum class TraceEventKind : std::uint8_t {
  kRoundStarted,      // round = the round now beginning
  kMessageDelivered,  // sender -> node, message (type, origin, value)
  kNodeCommitted,     // node committed value in round
};

const char* to_string(TraceEventKind k);

/// One trace record. Fixed-size on purpose: the ring buffer must never
/// allocate per event. Fields not meaningful for a kind are left default
/// (and omitted from its JSONL rendering).
struct TraceEvent {
  TraceEventKind kind = TraceEventKind::kRoundStarted;
  std::int64_t round = 0;
  Coord node{};         // committer / receiver
  Coord sender{};       // kMessageDelivered: envelope sender (claimed)
  Coord origin{};       // kMessageDelivered: the committer the msg is about
  std::uint8_t value = 0;
  std::uint8_t msg_type = 0;  // 0 = COMMITTED, 1 = HEARD (mirrors MsgType)

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// The event as one JSONL line (no trailing newline), e.g.
/// {"event":"node_committed","round":4,"node":[3,0],"value":1}
std::string to_jsonl(const TraceEvent& e);

/// Appends the same rendering to `out` (after clearing it) — the
/// allocation-reusing form the streaming exporter formats into.
void append_jsonl(std::string& out, const TraceEvent& e);

/// Ring-buffer event sink. Construction preallocates `capacity` slots; after
/// that, record() never allocates. Starts disabled: a sink that is attached
/// but disabled drops every event at the pointer-test tier.
///
/// Streaming mode (set_stream): each event is rendered to JSONL and written
/// to the attached stream the moment it is recorded, bypassing the ring — so
/// a trial's trace memory stays O(1) however many deliveries it produces
/// (the ring path is O(capacity) resident and drops the oldest beyond that).
/// The bytes written are identical to a ring dump whenever the ring would
/// not have overflowed; past that point streaming keeps everything the ring
/// would have evicted. tests/test_trace_stream.cpp pins both properties.
class RoundTrace {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit RoundTrace(std::size_t capacity = kDefaultCapacity);

  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Attaches (or with nullptr detaches) a stream to write events to as they
  /// are recorded. Not owned; must outlive recording.
  void set_stream(std::ostream* os) { stream_ = os; }
  std::ostream* stream() const { return stream_; }

  /// Appends an event (overwriting the oldest if full). No-op when disabled.
  void record(const TraceEvent& e);

  std::size_t capacity() const { return buffer_.size(); }
  /// Events currently held (<= capacity).
  std::size_t size() const { return size_; }
  /// Total events recorded, including any evicted by wrap-around.
  std::uint64_t recorded() const { return recorded_; }
  /// Events evicted because the ring was full.
  std::uint64_t dropped() const { return recorded_ - size_; }

  /// Discards all held events (capacity and enabled state unchanged).
  void clear();

  /// Held events, oldest first. Allocates; intended for tests and dumps.
  std::vector<TraceEvent> events() const;

  /// Writes every held event as one JSON object per line, oldest first.
  void write_jsonl(std::ostream& os) const;

 private:
  bool enabled_ = false;
  std::ostream* stream_ = nullptr;  // streaming sink, not owned
  std::vector<TraceEvent> buffer_;
  std::string line_;      // streaming scratch; capacity retained across events
  std::size_t head_ = 0;  // index of the oldest event
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
};

}  // namespace rbcast
