#pragma once
// Per-trial simulation counters (the observability layer's cheapest tier).
//
// A Counters instance is owned by the object running one trial (RadioNetwork,
// and by copy SimResult/TrialOutcome) and is incremented inline at the
// simulator's queue/deliver/drop/commit points. All fields are plain
// unsigned integers incremented from a single thread — no atomics — so the
// always-on cost is a handful of register adds per event, and merging two
// instances (for campaign aggregation) is an exact, associative integer sum:
// the same merge-safety contract as core/experiment.h's Aggregate.
//
// Counter semantics are documented field by field below and in
// docs/OBSERVABILITY.md; tests/test_obs.cpp pins them.

#include <cstdint>
#include <string>

namespace rbcast {

struct Counters {
  /// NodeContext::broadcast / broadcast_as calls, i.e. distinct transmissions
  /// queued by behaviors (spoofed ones included; retransmission copies not —
  /// they are scheduled by the network, see retransmission_copies).
  std::uint64_t broadcasts_queued = 0;
  /// Subset of broadcasts_queued sent through broadcast_as (Section X's
  /// address-spoofing adversary). Zero in the paper's model.
  std::uint64_t spoofed_sends = 0;
  /// COMMITTED / HEARD breakdown of broadcasts_queued. The HEARD count is the
  /// message-complexity quantity Section VI-B compares protocols on.
  std::uint64_t committed_queued = 0;
  std::uint64_t heard_queued = 0;
  /// Extra transmission copies scheduled by the retransmission knob
  /// (RadioNetwork::set_retransmissions): copies beyond each first send.
  std::uint64_t retransmission_copies = 0;
  /// Per-receiver envelope deliveries that reached on_receive.
  std::uint64_t envelopes_delivered = 0;
  /// Per-receiver deliveries suppressed by the channel model (loss, jamming).
  std::uint64_t envelopes_dropped = 0;
  /// Protocol commit events signalled via NodeContext::note_commit: the
  /// source's initial commit plus every behavior running the protocol commit
  /// rule (including crash-at-round nodes before they crash). Adversarial
  /// behaviors fabricate COMMITTED messages without committing, so they never
  /// count here.
  std::uint64_t commits = 0;
  /// Campaign fault-tolerance tier (set by campaign/engine.cpp, always zero
  /// inside a single run_simulation): retry attempts consumed beyond each
  /// trial's first attempt, trials that ended in a recorded timeout failure,
  /// and trials that ended in any recorded failure. Integer sums like every
  /// other field, so they stay merge-exact across cells and worker counts.
  std::uint64_t trial_retries = 0;
  std::uint64_t trial_timeouts = 0;
  std::uint64_t trial_failures = 0;
  /// Networked-runtime tier (runtime/, docs/RUNTIME.md): always zero inside
  /// the synchronous simulator. Unlike the simulator counters these are NOT
  /// deterministic — retransmissions and barrier waits depend on real packet
  /// timing — but they remain merge-exact integer sums.
  /// UDP datagrams handed to the transport (data + ack packets alike).
  std::uint64_t packets_sent = 0;
  /// Datagrams that carried at least one retransmitted (timed-out) message.
  std::uint64_t packets_retransmitted = 0;
  /// Link messages confirmed by an incoming ack.
  std::uint64_t packets_acked = 0;
  /// Received link messages dropped as duplicates (already delivered or held).
  std::uint64_t duplicates_dropped = 0;
  /// Round barriers that advanced on timeout instead of full traffic.
  std::uint64_t barrier_timeouts = 0;
  /// Microseconds spent waiting at round barriers, cumulative.
  std::uint64_t barrier_wait_us = 0;
  /// Chaos/fault-injection tier (runtime/transport.h's ChaosTransport and the
  /// crash/restart machinery, docs/RUNTIME.md): always zero in the simulator
  /// and in deployments without a chaos section.
  /// Datagrams destroyed outright by the chaos layer.
  std::uint64_t chaos_drops = 0;
  /// Datagrams held back and delivered late by the chaos layer.
  std::uint64_t chaos_delays = 0;
  /// Extra datagram copies injected by the chaos layer.
  std::uint64_t chaos_duplicates = 0;
  /// Datagrams suppressed by a directed partition window.
  std::uint64_t chaos_partition_drops = 0;
  /// Crash/restart cycles this node (or deployment) survived.
  std::uint64_t node_restarts = 0;
  /// Peers moved onto the round synchronizer's suspect list (transitions, so
  /// a peer suspected, cleared, and re-suspected counts twice).
  std::uint64_t peers_suspected = 0;
  /// Rounds that opened with at least one expected peer's traffic missing
  /// (timeout or suspect-skip) — the degraded-mode breadcrumb trail.
  std::uint64_t degraded_rounds = 0;
  /// Memory tier: high-water mark of the engine's resident protocol+transport
  /// state, in bytes, as tracked analytically by RadioNetwork after start()
  /// and after every round — dense per-node arrays, CSR fan-out share,
  /// in-flight transmission buffers (logical element counts, never vector
  /// capacities), and the installed NodePool's state_bytes(). Deterministic
  /// across platforms and standard libraries, unlike an RSS probe
  /// (obs/memory.h — which is why RSS stays summary-only). Merges by max:
  /// "the largest single trial footprint seen", matching last_commit_round's
  /// aggregation style.
  std::uint64_t engine_bytes_peak = 0;
  /// Round in which the last note_commit fired (0 = none beyond the source's
  /// round-0 commit). "In which round did the last node commit?" — this one.
  std::int64_t last_commit_round = 0;

  /// Exact, associative merge (integer sums; engine_bytes_peak and
  /// last_commit_round take the max).
  void merge(const Counters& other);

  friend bool operator==(const Counters&, const Counters&) = default;
};

/// The counters as a JSON object fragment, e.g.
/// {"broadcasts_queued":12,...,"last_commit_round":7} — field order fixed,
/// so serialization is deterministic. Used by the campaign report writers.
std::string to_json(const Counters& c);

}  // namespace rbcast
