#pragma once
// Protocol messages (Section VI).
//
//   COMMITTED(i, v)         — node i announces it committed to value v.
//   HEARD(j, ..., i, v)     — relayer chain: the *last* listed relayer is the
//                             node transmitting this copy; relayers[0] claims
//                             to have heard COMMITTED(i, v) from i directly.
//
// The radio channel (net/network.h) attaches the true transmitter identity to
// every delivery; honest nodes verify that a HEARD's outermost relayer equals
// the transmitter, which is what makes fabricated "sent by someone else"
// reports detectable (no address spoofing, Section II).

#include <array>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include "radiobcast/grid/coord.h"

namespace rbcast {

enum class MsgType : std::uint8_t { kCommitted, kHeard };

/// Inline fixed-capacity relayer chain. The protocol bounds chains at three
/// intermediate relayers ("up to three intermediate nodes", Section VI), and
/// validators must be able to hold a rejected chain one longer than the
/// longest legal one, so capacity is 4. Keeping the storage inline makes a
/// Message trivially copyable: every queued / retransmitted / repeated copy
/// on the hot delivery path is a flat memcpy with zero heap traffic.
class RelayerChain {
 public:
  static constexpr std::size_t kCapacity = 4;

  constexpr RelayerChain() = default;
  RelayerChain(std::initializer_list<Coord> init) {
    if (init.size() > kCapacity) {
      throw std::length_error("RelayerChain: too many relayers");
    }
    for (const Coord c : init) nodes_[size_++] = c;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void push_back(Coord c) {
    if (size_ == kCapacity) {
      throw std::length_error("RelayerChain: capacity exceeded");
    }
    nodes_[size_++] = c;
  }

  Coord& operator[](std::size_t i) { return nodes_[i]; }
  Coord operator[](std::size_t i) const { return nodes_[i]; }
  Coord front() const { return nodes_[0]; }
  Coord back() const { return nodes_[size_ - 1]; }

  Coord* begin() { return nodes_.data(); }
  Coord* end() { return nodes_.data() + size_; }
  const Coord* begin() const { return nodes_.data(); }
  const Coord* end() const { return nodes_.data() + size_; }

  /// Escape hatch for callers that need a real vector (tests, analyses).
  std::vector<Coord> to_vector() const { return {begin(), end()}; }

  friend bool operator==(const RelayerChain& a, const RelayerChain& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a.nodes_[i] != b.nodes_[i]) return false;
    }
    return true;
  }

 private:
  std::array<Coord, kCapacity> nodes_{};
  std::uint8_t size_ = 0;
};

struct Message {
  MsgType type = MsgType::kCommitted;
  std::uint8_t value = 0;  // the binary broadcast value (0 or 1)
  Coord origin{};          // the committer the message is about
  // Relayer chain for kHeard, in forwarding order: relayers.front() heard the
  // COMMITTED directly; relayers.back() is the current transmitter. Empty for
  // kCommitted.
  RelayerChain relayers;

  friend bool operator==(const Message&, const Message&) = default;
};

Message make_committed(Coord origin, std::uint8_t value);
Message make_heard(RelayerChain relayers, Coord origin, std::uint8_t value);

/// Human-readable rendering for logs and test failures.
std::string to_string(const Message& m);

}  // namespace rbcast
