#pragma once
// Protocol messages (Section VI).
//
//   COMMITTED(i, v)         — node i announces it committed to value v.
//   HEARD(j, ..., i, v)     — relayer chain: the *last* listed relayer is the
//                             node transmitting this copy; relayers[0] claims
//                             to have heard COMMITTED(i, v) from i directly.
//
// The radio channel (net/network.h) attaches the true transmitter identity to
// every delivery; honest nodes verify that a HEARD's outermost relayer equals
// the transmitter, which is what makes fabricated "sent by someone else"
// reports detectable (no address spoofing, Section II).

#include <cstdint>
#include <string>
#include <vector>

#include "radiobcast/grid/coord.h"

namespace rbcast {

enum class MsgType : std::uint8_t { kCommitted, kHeard };

struct Message {
  MsgType type = MsgType::kCommitted;
  std::uint8_t value = 0;  // the binary broadcast value (0 or 1)
  Coord origin{};          // the committer the message is about
  // Relayer chain for kHeard, in forwarding order: relayers.front() heard the
  // COMMITTED directly; relayers.back() is the current transmitter. Empty for
  // kCommitted.
  std::vector<Coord> relayers;

  friend bool operator==(const Message&, const Message&) = default;
};

Message make_committed(Coord origin, std::uint8_t value);
Message make_heard(std::vector<Coord> relayers, Coord origin,
                   std::uint8_t value);

/// Human-readable rendering for logs and test failures.
std::string to_string(const Message& m);

}  // namespace rbcast
