#pragma once
// Backend-agnostic broadcast channel interface.
//
// Protocol behaviors (protocols/*) are written against NodeContext, which
// used to be welded to the synchronous simulator. This header splits the
// node-facing API — Envelope, NodeContext, NodeBehavior — from any concrete
// channel, behind the BroadcastBackend interface:
//
//   * net/network.h's RadioNetwork implements it as the paper's synchronous
//     reliable-local-broadcast model (in-memory, rounds advance by fiat);
//   * runtime/node.h's RuntimeNode implements it over real UDP sockets with
//     perfect links and a round synchronizer (docs/RUNTIME.md).
//
// The same protocol object therefore runs unmodified in simulation and in
// the networked runtime; sim/runtime verdict equivalence is pinned by
// tests/test_runtime_equivalence.cpp.

#include <cstdint>
#include <optional>

#include "radiobcast/grid/coord.h"
#include "radiobcast/grid/metric.h"
#include "radiobcast/grid/torus.h"
#include "radiobcast/net/message.h"
#include "radiobcast/util/rng.h"

namespace rbcast {

/// A delivered transmission: `sender` is the true transmitter (unspoofable).
struct Envelope {
  Coord sender;
  Message msg;
};

/// What a channel implementation must provide to host node behaviors. All
/// methods are invoked from the single thread driving the node's callbacks.
class BroadcastBackend {
 public:
  virtual ~BroadcastBackend() = default;

  virtual const Torus& torus() const = 0;
  virtual std::int32_t radius() const = 0;
  virtual Metric metric() const = 0;
  /// Current round under the backend's round structure. The simulator
  /// advances it per run_round; the runtime's synchronizer maps it onto real
  /// time (same numbering, so commit rounds are comparable across backends).
  virtual std::int64_t round() const = 0;
  virtual Rng& rng() = 0;

  /// Queues a local broadcast from `sender` (the node driving the context);
  /// every neighbor of `sender` receives it in the next round.
  virtual void queue_broadcast(Coord sender, Message msg) = 0;

  /// Queues a broadcast whose Envelope::sender claims `claimed_sender` —
  /// address spoofing (Section X). Simulator-only negative control; backends
  /// without spoofing support throw std::logic_error.
  virtual void queue_spoofed_broadcast(Coord actual_sender,
                                       Coord claimed_sender, Message msg) = 0;

  /// Observability hook backing NodeContext::note_commit.
  virtual void record_commit(Coord node, std::uint8_t value) = 0;
};

/// Capabilities handed to a behavior during its callbacks.
class NodeContext {
 public:
  NodeContext(BroadcastBackend& net, Coord self) : net_(&net), self_(self) {}

  Coord self() const { return self_; }
  const Torus& torus() const { return net_->torus(); }
  std::int32_t radius() const { return net_->radius(); }
  Metric metric() const { return net_->metric(); }
  std::int64_t round() const { return net_->round(); }
  Rng& rng() { return net_->rng(); }

  /// Queues a local broadcast; every neighbor receives it next round.
  void broadcast(Message msg) { net_->queue_broadcast(self_, std::move(msg)); }

  /// Queues a broadcast whose Envelope::sender claims to be
  /// `claimed_sender` — address spoofing (Section X). Only legal on backends
  /// that allow it (RadioNetwork::allow_spoofing); honest behaviors never
  /// call this.
  void broadcast_as(Coord claimed_sender, Message msg) {
    net_->queue_spoofed_broadcast(self_, claimed_sender, std::move(msg));
  }

  /// Observability hook: protocols call this exactly when their commit rule
  /// fires (see protocols/*::commit). Bumps the backend's commit counter and
  /// emits a node_committed trace event; has no effect on the protocol.
  void note_commit(std::uint8_t value) { net_->record_commit(self_, value); }

 private:
  BroadcastBackend* net_;
  Coord self_;
};

/// A node's protocol logic (honest or adversarial). Behaviors are
/// message-driven; all callbacks receive a context bound to this node.
class NodeBehavior {
 public:
  virtual ~NodeBehavior() = default;

  /// Called once before the first round.
  virtual void on_start(NodeContext& /*ctx*/) {}

  /// Called for each transmission heard (deliveries of the previous round).
  virtual void on_receive(NodeContext& ctx, const Envelope& env) = 0;

  /// Called once per round after all of this round's deliveries.
  virtual void on_round_end(NodeContext& /*ctx*/) {}

  /// The value this node has committed to, if any. Adversarial behaviors may
  /// return anything; the simulation scores only honest nodes.
  virtual std::optional<std::uint8_t> committed_value() const {
    return std::nullopt;
  }

  /// The round in which committed_value() became set (for propagation-stage
  /// analyses, Figs 9-10 and 14-19). Unset iff committed_value() is unset.
  virtual std::optional<std::int64_t> commit_round() const {
    return std::nullopt;
  }
};

}  // namespace rbcast
