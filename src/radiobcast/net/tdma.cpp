#include "radiobcast/net/tdma.h"

namespace rbcast {

std::optional<TdmaViolation> find_tdma_violation(const Torus& torus,
                                                 std::int32_t r, Metric m) {
  // Two transmitters conflict iff within 2r (some node could be within r of
  // both). Scan every node against same-slot nodes in its 2r-ball.
  for (const Coord a : torus.all_coords()) {
    const std::int32_t slot = tdma_slot(a, r);
    for (std::int32_t dy = -2 * r; dy <= 2 * r; ++dy) {
      for (std::int32_t dx = -2 * r; dx <= 2 * r; ++dx) {
        if (dx == 0 && dy == 0) continue;
        if (!within_radius({dx, dy}, 2 * r, m)) continue;
        const Coord b = torus.wrap(a + Offset{dx, dy});
        if (b == a) continue;
        if (tdma_slot(b, r) == slot) return TdmaViolation{a, b};
      }
    }
  }
  return std::nullopt;
}

}  // namespace rbcast
