#pragma once
// Adversarial collisions with a bounded budget (Section X).
//
// "Reliable broadcast is rendered impossible if the adversary can cause an
// unbounded number of collisions, since a faulty node can cause collision
// with any transmission made by a good node in its vicinity. When the number
// of collisions is bounded, it may be possible to come up with protocols
// that achieve reliable broadcast. If the adversary uses collisions to
// merely disrupt communication, the problem is trivially solved by
// re-transmitting messages a sufficient number of times."
//
// JammingChannel models exactly that disruption adversary: every faulty
// "jammer" can destroy deliveries to receivers in its vicinity (within the
// transmission radius), consuming one unit of its collision budget per
// destroyed delivery, greedily (it jams everything it can until exhausted —
// the most disruptive schedule for a front-loaded broadcast). An unbounded
// budget blacks out every jammer's vicinity; a bounded budget loses to
// sufficiently many retransmissions (bench_jamming).

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "radiobcast/grid/metric.h"
#include "radiobcast/grid/torus.h"
#include "radiobcast/net/channel.h"

namespace rbcast {

class JammingChannel final : public ChannelModel {
 public:
  /// `jammers` are the faulty nodes' positions; each starts with
  /// `budget_per_jammer` destroyable deliveries (negative = unbounded).
  JammingChannel(const Torus& torus, std::int32_t r, Metric m,
                 std::vector<Coord> jammers, std::int64_t budget_per_jammer);

  bool delivers(Coord sender, Coord receiver, Rng& rng) override;

  /// Total deliveries destroyed so far.
  std::int64_t jammed_count() const { return jammed_; }

 private:
  Torus torus_;  // by value: avoids lifetime coupling to the caller
  std::int32_t r_;
  Metric m_;
  std::vector<Coord> jammers_;                    // canonical coords
  std::unordered_map<Coord, std::int64_t> budget_;  // remaining per jammer
  bool unbounded_;
  std::int64_t jammed_ = 0;
};

}  // namespace rbcast
