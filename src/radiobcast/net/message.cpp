#include "radiobcast/net/message.h"

#include <sstream>

namespace rbcast {

Message make_committed(Coord origin, std::uint8_t value) {
  Message m;
  m.type = MsgType::kCommitted;
  m.value = value;
  m.origin = origin;
  return m;
}

Message make_heard(RelayerChain relayers, Coord origin, std::uint8_t value) {
  Message m;
  m.type = MsgType::kHeard;
  m.value = value;
  m.origin = origin;
  m.relayers = relayers;
  return m;
}

std::string to_string(const Message& m) {
  std::ostringstream os;
  if (m.type == MsgType::kCommitted) {
    os << "COMMITTED(" << to_string(m.origin) << ", " << int(m.value) << ")";
  } else {
    os << "HEARD(";
    for (std::size_t i = m.relayers.size(); i > 0; --i) {
      os << to_string(m.relayers[i - 1]) << ", ";
    }
    os << to_string(m.origin) << ", " << int(m.value) << ")";
  }
  return os.str();
}

}  // namespace rbcast
