#pragma once
// Structure-of-arrays node dispatch (docs/PERF.md, "Memory model").
//
// A NodePool hosts the protocol state of MANY nodes in dense arrays indexed
// by the CSR node index, replacing one heap-allocated NodeBehavior per node.
// The simulator delivers to pool-managed nodes through the pool (one object,
// flat state) and to everything else — the source, adversaries, bespoke test
// behaviors — through per-node NodeBehavior objects exactly as before. The
// pool receives the same callbacks in the same order with the same
// NodeContext, so a pool-backed trial is byte-identical to a behavior-backed
// one; tests/test_pool_equivalence.cpp and the golden SHA-256 suite pin that.
//
// Concrete pools live in protocols/pool.h (they depend on protocol
// machinery); this header is the net-layer contract only.

#include <cstdint>
#include <optional>

#include "radiobcast/net/backend.h"

namespace rbcast {

/// Flat multi-node protocol state. All callbacks mirror NodeBehavior's, with
/// the dense node index added so implementations address plain arrays.
class NodePool {
 public:
  virtual ~NodePool() = default;

  /// Called once per managed node before the first round (node-index order).
  virtual void on_start(NodeContext& /*ctx*/, std::int32_t /*node*/) {}

  /// Called for each transmission heard by a managed node.
  virtual void on_receive(NodeContext& ctx, std::int32_t node,
                          const Envelope& env) = 0;

  /// Called once per round per managed node — but only when
  /// wants_round_end() is true: pools with no round-end work opt out and the
  /// network skips the whole O(nodes)-per-round sweep for them.
  virtual void on_round_end(NodeContext& /*ctx*/, std::int32_t /*node*/) {}
  virtual bool wants_round_end() const { return false; }

  virtual std::optional<std::uint8_t> committed_value(
      std::int32_t node) const = 0;
  virtual std::optional<std::int64_t> commit_round(std::int32_t node) const = 0;

  /// Bytes of protocol state currently held, counted from logical sizes and
  /// the pool's own (deterministic) table growth schedule — never from
  /// std::vector capacities, so the figure is identical across standard
  /// libraries. Feeds Counters::engine_bytes_peak.
  virtual std::uint64_t state_bytes() const { return 0; }
};

}  // namespace rbcast
