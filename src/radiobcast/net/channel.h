#pragma once
// Channel models.
//
// The paper's results assume the reliable local broadcast primitive
// (Section II) but note that it "does not hold per se in real wireless
// networks" and might be implemented as a *probabilistic* primitive on top
// of lossy transmissions; accidental collisions "may be handled to some
// extent ... as they can be treated akin to transmission errors". This
// module provides that lossy substrate: a ChannelModel decides, per
// (transmission, receiver), whether the receiver hears it. Combined with the
// network-level retransmission knob (RadioNetwork::set_retransmissions) it
// yields the probabilistic local-broadcast primitive the paper gestures at.
//
// Note the semantics under loss: different neighbors may hear different
// subsets of a node's transmissions, so the no-duplicity property of
// Section V is no longer automatic. The protocols' safety argument survives
// regardless (commits still require t+1 node-disjoint confirmations within a
// t-bounded neighborhood); only liveness degrades, which retransmissions
// repair with high probability — exactly the trade the paper sketches.

#include <cstdint>
#include <map>
#include <stdexcept>
#include <utility>

#include "radiobcast/grid/coord.h"
#include "radiobcast/util/rng.h"

namespace rbcast {

class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  /// True iff `receiver` hears this transmission from `sender`. Called once
  /// per (transmission, receiver); implementations may consume randomness.
  virtual bool delivers(Coord sender, Coord receiver, Rng& rng) = 0;

  /// True iff delivers() returns true unconditionally AND consumes no
  /// randomness. Lets the network skip the per-receiver channel call entirely
  /// on the hot delivery path — byte-identical because a channel honoring
  /// this contract draws nothing from the rng stream.
  virtual bool always_delivers() const { return false; }
};

/// The paper's idealized reliable channel: every neighbor hears everything.
class PerfectChannel final : public ChannelModel {
 public:
  bool delivers(Coord, Coord, Rng&) override { return true; }
  bool always_delivers() const override { return true; }
};

/// Independent per-receiver loss with probability p_loss — transmission
/// errors / accidental collisions as in the Section II remark.
class IidLossChannel final : public ChannelModel {
 public:
  /// Throws std::invalid_argument unless p_loss is a number in [0, 1].
  /// (Rng::chance would silently clamp out-of-range values and treat NaN as
  /// "never", masking misconfigured sweeps; the negated comparison below is
  /// NaN-safe because every comparison with NaN is false.)
  explicit IidLossChannel(double p_loss) : p_loss_(p_loss) {
    if (!(p_loss >= 0.0 && p_loss <= 1.0)) {
      throw std::invalid_argument("IidLossChannel: p_loss must be in [0,1]");
    }
  }

  bool delivers(Coord, Coord, Rng& rng) override {
    return !rng.chance(p_loss_);
  }

  double loss_probability() const { return p_loss_; }

 private:
  double p_loss_;
};

/// Packs a canonical coordinate into the 64-bit key the pairwise loss
/// streams are seeded from. Shared with the runtime's loss policy
/// (runtime/node.cpp) — both sides must derive identical seeds.
constexpr std::uint64_t pack_coord_key(Coord c) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(c.x)) << 32) |
         static_cast<std::uint32_t>(c.y);
}

/// Seed of the loss stream dedicated to the ordered pair (sender, receiver).
inline std::uint64_t pairwise_loss_seed(std::uint64_t seed, Coord sender,
                                        Coord receiver) {
  return hash_seeds(hash_seeds(seed, pack_coord_key(sender)),
                    pack_coord_key(receiver));
}

/// Iid loss like IidLossChannel, but each ordered (sender, receiver) pair
/// draws from its own seeded stream instead of the network's single shared
/// one. Statistically identical (every draw is an independent Bernoulli(p));
/// the difference is that a pair's k-th decision depends only on
/// (seed, sender, receiver, k) — not on the global delivery order — so a
/// distributed deployment can reproduce the simulator's exact drop pattern
/// with no shared state. This is the channel the runtime's loss_p mapping is
/// equivalence-tested against (tests/test_runtime_chaos.cpp).
class PairwiseLossChannel final : public ChannelModel {
 public:
  /// Throws std::invalid_argument unless p_loss is a number in [0, 1]
  /// (same NaN-safe guard as IidLossChannel).
  PairwiseLossChannel(double p_loss, std::uint64_t seed)
      : p_loss_(p_loss), seed_(seed) {
    if (!(p_loss >= 0.0 && p_loss <= 1.0)) {
      throw std::invalid_argument(
          "PairwiseLossChannel: p_loss must be in [0,1]");
    }
  }

  bool delivers(Coord sender, Coord receiver, Rng&) override {
    // Coordinates arrive canonical from the delivery loop; the shared rng is
    // deliberately untouched (pairwise streams replace it).
    const auto key = std::pair(pack_coord_key(sender), pack_coord_key(receiver));
    auto it = streams_.find(key);
    if (it == streams_.end()) {
      it = streams_.emplace(key, Rng(pairwise_loss_seed(seed_, sender, receiver)))
               .first;
    }
    return !it->second.chance(p_loss_);
  }

  double loss_probability() const { return p_loss_; }

 private:
  double p_loss_;
  std::uint64_t seed_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, Rng> streams_;
};

}  // namespace rbcast
