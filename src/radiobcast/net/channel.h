#pragma once
// Channel models.
//
// The paper's results assume the reliable local broadcast primitive
// (Section II) but note that it "does not hold per se in real wireless
// networks" and might be implemented as a *probabilistic* primitive on top
// of lossy transmissions; accidental collisions "may be handled to some
// extent ... as they can be treated akin to transmission errors". This
// module provides that lossy substrate: a ChannelModel decides, per
// (transmission, receiver), whether the receiver hears it. Combined with the
// network-level retransmission knob (RadioNetwork::set_retransmissions) it
// yields the probabilistic local-broadcast primitive the paper gestures at.
//
// Note the semantics under loss: different neighbors may hear different
// subsets of a node's transmissions, so the no-duplicity property of
// Section V is no longer automatic. The protocols' safety argument survives
// regardless (commits still require t+1 node-disjoint confirmations within a
// t-bounded neighborhood); only liveness degrades, which retransmissions
// repair with high probability — exactly the trade the paper sketches.

#include <stdexcept>

#include "radiobcast/grid/coord.h"
#include "radiobcast/util/rng.h"

namespace rbcast {

class ChannelModel {
 public:
  virtual ~ChannelModel() = default;

  /// True iff `receiver` hears this transmission from `sender`. Called once
  /// per (transmission, receiver); implementations may consume randomness.
  virtual bool delivers(Coord sender, Coord receiver, Rng& rng) = 0;

  /// True iff delivers() returns true unconditionally AND consumes no
  /// randomness. Lets the network skip the per-receiver channel call entirely
  /// on the hot delivery path — byte-identical because a channel honoring
  /// this contract draws nothing from the rng stream.
  virtual bool always_delivers() const { return false; }
};

/// The paper's idealized reliable channel: every neighbor hears everything.
class PerfectChannel final : public ChannelModel {
 public:
  bool delivers(Coord, Coord, Rng&) override { return true; }
  bool always_delivers() const override { return true; }
};

/// Independent per-receiver loss with probability p_loss — transmission
/// errors / accidental collisions as in the Section II remark.
class IidLossChannel final : public ChannelModel {
 public:
  /// Throws std::invalid_argument unless p_loss is a number in [0, 1].
  /// (Rng::chance would silently clamp out-of-range values and treat NaN as
  /// "never", masking misconfigured sweeps; the negated comparison below is
  /// NaN-safe because every comparison with NaN is false.)
  explicit IidLossChannel(double p_loss) : p_loss_(p_loss) {
    if (!(p_loss >= 0.0 && p_loss <= 1.0)) {
      throw std::invalid_argument("IidLossChannel: p_loss must be in [0,1]");
    }
  }

  bool delivers(Coord, Coord, Rng& rng) override {
    return !rng.chance(p_loss_);
  }

  double loss_probability() const { return p_loss_; }

 private:
  double p_loss_;
};

}  // namespace rbcast
