#pragma once
// Synchronous radio network simulator implementing the paper's "reliable
// local broadcast" assumption (Section II):
//
//  * a message broadcast by a node is heard by *all* nodes within distance r
//    (no loss, no collisions — the model assumes a TDMA schedule);
//  * receivers learn the true transmitter identity (no address spoofing);
//  * per-sender FIFO order is preserved for all receivers alike.
//
// Time advances in rounds: everything broadcast during round k is delivered
// to every neighbor at round k+1. Within a round, deliveries are processed
// sender-by-sender in node-index order and, per sender, in send order — a
// deterministic serialization of the TDMA schedule. The simulation is fully
// deterministic given the seed.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "radiobcast/grid/adjacency.h"
#include "radiobcast/grid/metric.h"
#include "radiobcast/grid/neighborhood.h"
#include "radiobcast/grid/torus.h"
#include "radiobcast/net/backend.h"
#include "radiobcast/net/channel.h"
#include "radiobcast/net/message.h"
#include "radiobcast/net/pool.h"
#include "radiobcast/obs/counters.h"
#include "radiobcast/obs/trace.h"
#include "radiobcast/util/rng.h"

namespace rbcast {

/// Per-network traffic statistics.
struct TrafficStats {
  std::uint64_t transmissions = 0;  // broadcast() calls that were delivered
  std::uint64_t deliveries = 0;     // per-receiver envelope deliveries
  std::uint64_t drops = 0;          // deliveries suppressed by the channel
  /// Total payload transmitted, in coordinate-sized units: a COMMITTED costs
  /// 2 (origin + value rounded up), a HEARD costs 2 + |relayers|. Captures
  /// the fact that indirect reports carry whole paths, so "communication
  /// overhead" differs from the raw message count (Section VI-B).
  std::uint64_t payload_units = 0;
};

/// The synchronous simulator backend (see net/backend.h for the interface
/// contract and runtime/node.h for the networked sibling).
class RadioNetwork final : public BroadcastBackend {
 public:
  RadioNetwork(Torus torus, std::int32_t r, Metric metric, std::uint64_t seed);

  const Torus& torus() const override { return torus_; }
  std::int32_t radius() const override { return r_; }
  Metric metric() const override { return metric_; }
  std::int64_t round() const override { return round_; }
  Rng& rng() override { return rng_; }

  /// Installs the behavior for a node (replacing any previous one). All nodes
  /// must have behaviors before run() is called.
  void set_behavior(Coord c, std::unique_ptr<NodeBehavior> behavior);

  /// Installs a structure-of-arrays pool (net/pool.h). Nodes join it via
  /// assign_to_pool; everything else keeps per-node behaviors. Must be set
  /// before start().
  void set_pool(std::unique_ptr<NodePool> pool);
  NodePool* pool() { return pool_.get(); }
  const NodePool* pool() const { return pool_.get(); }

  /// Marks a node as pool-managed (clearing any behavior). Requires a pool.
  void assign_to_pool(Coord c);

  /// Replaces the channel model (default: PerfectChannel). See net/channel.h.
  void set_channel(std::unique_ptr<ChannelModel> channel);

  /// Every broadcast is transmitted `count` times, in consecutive rounds,
  /// each with independent channel draws — the retransmission-based
  /// probabilistic local-broadcast primitive of the Section II remark.
  /// Precondition: count >= 1. Default 1 (the paper's model).
  void set_retransmissions(int count);

  /// Observability hook backing NodeContext::note_commit.
  void record_commit(Coord node, std::uint8_t value) override;

  /// Permits NodeContext::broadcast_as (Section X's address-spoofing
  /// adversary). Off by default: the paper's model has no spoofing, and the
  /// spoofing experiments are a negative control showing safety genuinely
  /// depends on this assumption.
  void allow_spoofing(bool allowed) { spoofing_allowed_ = allowed; }

  NodeBehavior* behavior(Coord c);
  const NodeBehavior* behavior(Coord c) const;

  /// Verdict accessors dispatching to the pool or the node's behavior —
  /// the one query path that works for both kinds of nodes.
  std::optional<std::uint8_t> committed_value_of(Coord c) const;
  std::optional<std::int64_t> commit_round_of(Coord c) const;

  /// Calls on_start on every node (node-index order). Must be called exactly
  /// once, before the first run_round().
  void start();

  /// Delivers everything sent in the previous round, then runs on_round_end
  /// for every node.
  void run_round();

  /// True when no transmissions are waiting for delivery.
  bool quiescent() const { return pending_.empty(); }

  /// Runs rounds until quiescent or max_rounds is hit; returns rounds run.
  std::int64_t run_until_quiescent(std::int64_t max_rounds);

  const TrafficStats& stats() const { return stats_; }

  /// Observability counters (always maintained; see obs/counters.h for the
  /// field-by-field semantics and the single-thread/no-atomics contract).
  const Counters& counters() const { return counters_; }

  /// Attaches an event sink (not owned; pass nullptr to detach). The network
  /// emits round_started / message_delivered / node_committed events into it;
  /// with no sink — the default — every emission site is one pointer test.
  void set_trace(RoundTrace* trace) { trace_ = trace; }
  RoundTrace* trace() const { return trace_; }

  /// Transmission count of one node (for the overhead experiments).
  std::uint64_t transmissions_of(Coord c) const;

 private:
  /// Folds the current engine-state footprint into
  /// counters_.engine_bytes_peak (obs/counters.h documents what is counted).
  void update_engine_bytes();
  // BroadcastBackend send hooks: reachable only through a NodeContext (or the
  // base interface), mirroring the historical friend-only access.
  void queue_broadcast(Coord sender, Message msg) override;
  void queue_spoofed_broadcast(Coord actual_sender, Coord claimed_sender,
                               Message msg) override;
  void count_queued(const Message& msg);

  /// A transmission awaiting delivery; `repeats_left` further copies will be
  /// scheduled in subsequent rounds. `actual_sender` determines who hears it
  /// (it differs from envelope.sender only for spoofed transmissions);
  /// `sender_index` is its dense node index, precomputed at queue time so the
  /// delivery loop never touches coordinate arithmetic.
  struct Pending {
    Envelope envelope;
    Coord actual_sender;
    std::int32_t sender_index;
    int repeats_left;
  };

  Torus torus_;
  std::int32_t r_;
  Metric metric_;
  Rng rng_;
  std::int64_t round_ = 0;
  bool started_ = false;
  int retransmissions_ = 1;
  bool spoofing_allowed_ = false;
  std::unique_ptr<ChannelModel> channel_;
  bool channel_always_delivers_ = true;  // cached channel_->always_delivers()

  // Hot-path precomputation (docs/PERF.md): the neighborhood table is
  // resolved once (no per-transmission mutex/map lookup), the CSR fan-out
  // maps sender index -> receiver indices, and node_coords_ inverts dense
  // indices back to canonical coordinates with one array read.
  const NeighborhoodTable& table_;
  const Adjacency& adjacency_;
  std::vector<Coord> node_coords_;

  std::vector<std::unique_ptr<NodeBehavior>> behaviors_;  // by node index
  std::unique_ptr<NodePool> pool_;      // optional SoA state (net/pool.h)
  std::vector<std::uint8_t> in_pool_;   // by node index; 1 = pool-managed
  std::vector<std::int32_t> behavior_nodes_;  // non-pool indices (at start())
  std::uint64_t fixed_state_bytes_ = 0;       // computed at start()
  std::vector<std::uint64_t> tx_count_;                   // by node index
  std::vector<Pending> pending_;  // sent last round, deliver this round
  std::vector<Pending> outbox_;   // sent this round
  std::vector<Pending> repeats_;  // per-round retransmission scratch
  TrafficStats stats_;
  Counters counters_;
  RoundTrace* trace_ = nullptr;  // optional event sink, not owned
};

}  // namespace rbcast
