#include "radiobcast/net/network.h"

#include <stdexcept>
#include <utility>

namespace rbcast {

namespace {

std::int32_t checked_radius(std::int32_t r) {
  if (r < 1) throw std::invalid_argument("radius must be >= 1");
  return r;
}

}  // namespace

RadioNetwork::RadioNetwork(Torus torus, std::int32_t r, Metric metric,
                           std::uint64_t seed)
    : torus_(std::move(torus)),
      r_(checked_radius(r)),
      metric_(metric),
      rng_(seed),
      channel_(std::make_unique<PerfectChannel>()),
      table_(NeighborhoodTable::get(r, metric)),
      adjacency_(Adjacency::get(torus_, table_)),
      node_coords_(torus_.all_coords()),
      behaviors_(static_cast<std::size_t>(torus_.node_count())),
      in_pool_(static_cast<std::size_t>(torus_.node_count()), 0),
      tx_count_(static_cast<std::size_t>(torus_.node_count()), 0) {
  // Reserving up to one fresh broadcast per node keeps the steady-state
  // delivery loop allocation-free (every flood protocol queues at most one
  // broadcast per node per round; heavier traffic grows the buffers once and
  // the round-to-round swap below then reuses their capacity).
  pending_.reserve(static_cast<std::size_t>(torus_.node_count()));
  outbox_.reserve(static_cast<std::size_t>(torus_.node_count()));
}

void RadioNetwork::set_channel(std::unique_ptr<ChannelModel> channel) {
  if (channel == nullptr) throw std::invalid_argument("null channel");
  channel_ = std::move(channel);
  channel_always_delivers_ = channel_->always_delivers();
}

void RadioNetwork::set_retransmissions(int count) {
  if (count < 1) throw std::invalid_argument("retransmissions must be >= 1");
  retransmissions_ = count;
}

void RadioNetwork::set_behavior(Coord c, std::unique_ptr<NodeBehavior> b) {
  const auto idx = static_cast<std::size_t>(torus_.index(c));
  behaviors_[idx] = std::move(b);
  in_pool_[idx] = 0;
}

void RadioNetwork::set_pool(std::unique_ptr<NodePool> pool) {
  if (started_) throw std::logic_error("set_pool after start");
  pool_ = std::move(pool);
}

void RadioNetwork::assign_to_pool(Coord c) {
  if (pool_ == nullptr) throw std::logic_error("assign_to_pool without a pool");
  const auto idx = static_cast<std::size_t>(torus_.index(c));
  behaviors_[idx].reset();
  in_pool_[idx] = 1;
}

NodeBehavior* RadioNetwork::behavior(Coord c) {
  return behaviors_[static_cast<std::size_t>(torus_.index(c))].get();
}

const NodeBehavior* RadioNetwork::behavior(Coord c) const {
  return behaviors_[static_cast<std::size_t>(torus_.index(c))].get();
}

std::optional<std::uint8_t> RadioNetwork::committed_value_of(Coord c) const {
  const std::int32_t i = torus_.index(c);
  if (in_pool_[static_cast<std::size_t>(i)]) {
    return pool_->committed_value(i);
  }
  const NodeBehavior* b = behaviors_[static_cast<std::size_t>(i)].get();
  return b != nullptr ? b->committed_value() : std::nullopt;
}

std::optional<std::int64_t> RadioNetwork::commit_round_of(Coord c) const {
  const std::int32_t i = torus_.index(c);
  if (in_pool_[static_cast<std::size_t>(i)]) {
    return pool_->commit_round(i);
  }
  const NodeBehavior* b = behaviors_[static_cast<std::size_t>(i)].get();
  return b != nullptr ? b->commit_round() : std::nullopt;
}

void RadioNetwork::count_queued(const Message& msg) {
  counters_.broadcasts_queued += 1;
  if (msg.type == MsgType::kCommitted) {
    counters_.committed_queued += 1;
  } else {
    counters_.heard_queued += 1;
  }
  counters_.retransmission_copies +=
      static_cast<std::uint64_t>(retransmissions_ - 1);
}

void RadioNetwork::record_commit(Coord node, std::uint8_t value) {
  counters_.commits += 1;
  if (round_ > counters_.last_commit_round) {
    counters_.last_commit_round = round_;
  }
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kNodeCommitted;
    e.round = round_;
    e.node = torus_.wrap(node);
    e.value = value;
    trace_->record(e);
  }
}

void RadioNetwork::queue_broadcast(Coord sender, Message msg) {
  const Coord canon = torus_.wrap(sender);
  count_queued(msg);
  outbox_.push_back(Pending{Envelope{canon, std::move(msg)}, canon,
                            torus_.index(canon), retransmissions_ - 1});
}

void RadioNetwork::queue_spoofed_broadcast(Coord actual_sender,
                                           Coord claimed_sender,
                                           Message msg) {
  if (!spoofing_allowed_) {
    throw std::logic_error(
        "address spoofing is disabled (the paper's model); call "
        "allow_spoofing(true) to run the Section X negative control");
  }
  count_queued(msg);
  counters_.spoofed_sends += 1;
  const Coord actual = torus_.wrap(actual_sender);
  outbox_.push_back(Pending{Envelope{torus_.wrap(claimed_sender),
                                     std::move(msg)},
                            actual, torus_.index(actual),
                            retransmissions_ - 1});
}

void RadioNetwork::start() {
  if (started_) throw std::logic_error("RadioNetwork::start called twice");
  behavior_nodes_.clear();
  for (std::int64_t i = 0; i < torus_.node_count(); ++i) {
    if (in_pool_[static_cast<std::size_t>(i)]) {
      NodeContext ctx(*this, node_coords_[static_cast<std::size_t>(i)]);
      pool_->on_start(ctx, static_cast<std::int32_t>(i));
      continue;
    }
    NodeBehavior* b = behaviors_[static_cast<std::size_t>(i)].get();
    if (b == nullptr) {
      throw std::logic_error("node " + to_string(torus_.coord(
                                 static_cast<std::int32_t>(i))) +
                             " has no behavior");
    }
    behavior_nodes_.push_back(static_cast<std::int32_t>(i));
    NodeContext ctx(*this, node_coords_[static_cast<std::size_t>(i)]);
    b->on_start(ctx);
  }
  started_ = true;
  std::swap(pending_, outbox_);  // outbox_ keeps its capacity for round 1
  // Fixed dense per-node arrays plus this network's share of the CSR
  // fan-out; pool/in-flight bytes are folded in per round.
  const auto n = static_cast<std::uint64_t>(torus_.node_count());
  fixed_state_bytes_ =
      n * (sizeof(Coord) + sizeof(std::uint64_t) +
           sizeof(std::unique_ptr<NodeBehavior>) + sizeof(std::uint8_t)) +
      n * static_cast<std::uint64_t>(adjacency_.degree()) *
          sizeof(std::int32_t) +
      behavior_nodes_.size() * sizeof(std::int32_t);
  update_engine_bytes();
}

void RadioNetwork::run_round() {
  if (!started_) throw std::logic_error("RadioNetwork::run_round before start");
  ++round_;
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kRoundStarted;
    e.round = round_;
    trace_->record(e);
  }
  // Deliver last round's transmissions. pending_ preserves sender order
  // (node-index-major, send-order-minor) because behaviors run in index
  // order, which gives every receiver the same deterministic TDMA order.
  // Receivers come from the precomputed CSR fan-out, whose per-row order is
  // the neighborhood table's offset order — the exact sequence the old
  // per-offset wrap loop visited, so results are bit-identical.
  repeats_.clear();
  const bool fast_path = channel_always_delivers_ && trace_ == nullptr;
  for (const Pending& p : pending_) {
    const Envelope& env = p.envelope;
    tx_count_[static_cast<std::size_t>(p.sender_index)] += 1;
    stats_.transmissions += 1;
    stats_.payload_units += 2 + env.msg.relayers.size();
    const std::span<const std::int32_t> receivers =
        adjacency_.receivers(p.sender_index);
    if (fast_path) {
      // A channel honoring always_delivers() consumes no randomness and a
      // null trace emits nothing, so the per-receiver checks collapse to
      // bulk counter updates plus the behavior dispatch.
      stats_.deliveries += receivers.size();
      counters_.envelopes_delivered += receivers.size();
      for (const std::int32_t ri : receivers) {
        NodeContext ctx(*this, node_coords_[static_cast<std::size_t>(ri)]);
        if (in_pool_[static_cast<std::size_t>(ri)]) {
          pool_->on_receive(ctx, ri, env);
        } else {
          behaviors_[static_cast<std::size_t>(ri)]->on_receive(ctx, env);
        }
      }
    } else {
      for (const std::int32_t ri : receivers) {
        // Receivers are the ACTUAL transmitter's neighbors, even when the
        // envelope claims a spoofed identity.
        const Coord receiver = node_coords_[static_cast<std::size_t>(ri)];
        if (!channel_->delivers(p.actual_sender, receiver, rng_)) {
          stats_.drops += 1;
          counters_.envelopes_dropped += 1;
          continue;
        }
        stats_.deliveries += 1;
        counters_.envelopes_delivered += 1;
        if (trace_ != nullptr) {
          TraceEvent e;
          e.kind = TraceEventKind::kMessageDelivered;
          e.round = round_;
          e.node = receiver;
          e.sender = env.sender;
          e.origin = torus_.wrap(env.msg.origin);
          e.value = env.msg.value;
          e.msg_type = env.msg.type == MsgType::kCommitted ? 0 : 1;
          trace_->record(e);
        }
        NodeContext ctx(*this, receiver);
        if (in_pool_[static_cast<std::size_t>(ri)]) {
          pool_->on_receive(ctx, ri, env);
        } else {
          behaviors_[static_cast<std::size_t>(ri)]->on_receive(ctx, env);
        }
      }
    }
    if (p.repeats_left > 0) {
      repeats_.push_back(
          Pending{env, p.actual_sender, p.sender_index, p.repeats_left - 1});
    }
  }
  pending_.clear();
  if (pool_ == nullptr) {
    for (std::int64_t i = 0; i < torus_.node_count(); ++i) {
      NodeContext ctx(*this, node_coords_[static_cast<std::size_t>(i)]);
      behaviors_[static_cast<std::size_t>(i)]->on_round_end(ctx);
    }
  } else if (!pool_->wants_round_end()) {
    // Pool nodes have no round-end work: sweep only the behavior nodes
    // (node-index order preserved), turning the O(nodes)-per-round loop into
    // O(non-pool nodes) — on a million-node torus, just the source + faults.
    for (const std::int32_t i : behavior_nodes_) {
      NodeContext ctx(*this, node_coords_[static_cast<std::size_t>(i)]);
      behaviors_[static_cast<std::size_t>(i)]->on_round_end(ctx);
    }
  } else {
    for (std::int64_t i = 0; i < torus_.node_count(); ++i) {
      NodeContext ctx(*this, node_coords_[static_cast<std::size_t>(i)]);
      if (in_pool_[static_cast<std::size_t>(i)]) {
        pool_->on_round_end(ctx, static_cast<std::int32_t>(i));
      } else {
        behaviors_[static_cast<std::size_t>(i)]->on_round_end(ctx);
      }
    }
  }
  // Swap instead of move-assign so both buffers keep their capacity across
  // rounds (the steady-state allocation-free contract).
  std::swap(pending_, outbox_);
  // Retransmission copies go after this round's fresh sends.
  for (const Pending& p : repeats_) pending_.push_back(p);
  update_engine_bytes();
}

void RadioNetwork::update_engine_bytes() {
  // Logical sizes only (never std::vector capacities), so the figure cannot
  // depend on a standard library's growth factor; the pool's own tables
  // report their deterministic open-addressing capacity.
  const std::uint64_t bytes =
      fixed_state_bytes_ +
      (pending_.size() + outbox_.size() + repeats_.size()) * sizeof(Pending) +
      (pool_ != nullptr ? pool_->state_bytes() : 0);
  if (bytes > counters_.engine_bytes_peak) {
    counters_.engine_bytes_peak = bytes;
  }
}

std::int64_t RadioNetwork::run_until_quiescent(std::int64_t max_rounds) {
  std::int64_t rounds = 0;
  while (!quiescent() && rounds < max_rounds) {
    run_round();
    ++rounds;
  }
  return rounds;
}

std::uint64_t RadioNetwork::transmissions_of(Coord c) const {
  return tx_count_[static_cast<std::size_t>(torus_.index(c))];
}

}  // namespace rbcast
