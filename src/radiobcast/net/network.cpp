#include "radiobcast/net/network.h"

#include <stdexcept>
#include <utility>

namespace rbcast {

const Torus& NodeContext::torus() const { return net_->torus(); }
std::int32_t NodeContext::radius() const { return net_->radius(); }
Metric NodeContext::metric() const { return net_->metric(); }
std::int64_t NodeContext::round() const { return net_->round(); }
Rng& NodeContext::rng() { return net_->rng(); }

void NodeContext::broadcast(Message msg) {
  net_->queue_broadcast(self_, std::move(msg));
}

void NodeContext::broadcast_as(Coord claimed_sender, Message msg) {
  net_->queue_spoofed_broadcast(self_, claimed_sender, std::move(msg));
}

void NodeContext::note_commit(std::uint8_t value) {
  net_->record_commit(self_, value);
}

RadioNetwork::RadioNetwork(Torus torus, std::int32_t r, Metric metric,
                           std::uint64_t seed)
    : torus_(std::move(torus)),
      r_(r),
      metric_(metric),
      rng_(seed),
      channel_(std::make_unique<PerfectChannel>()),
      behaviors_(static_cast<std::size_t>(torus_.node_count())),
      tx_count_(static_cast<std::size_t>(torus_.node_count()), 0) {
  if (r < 1) throw std::invalid_argument("radius must be >= 1");
}

void RadioNetwork::set_channel(std::unique_ptr<ChannelModel> channel) {
  if (channel == nullptr) throw std::invalid_argument("null channel");
  channel_ = std::move(channel);
}

void RadioNetwork::set_retransmissions(int count) {
  if (count < 1) throw std::invalid_argument("retransmissions must be >= 1");
  retransmissions_ = count;
}

void RadioNetwork::set_behavior(Coord c, std::unique_ptr<NodeBehavior> b) {
  behaviors_[static_cast<std::size_t>(torus_.index(c))] = std::move(b);
}

NodeBehavior* RadioNetwork::behavior(Coord c) {
  return behaviors_[static_cast<std::size_t>(torus_.index(c))].get();
}

const NodeBehavior* RadioNetwork::behavior(Coord c) const {
  return behaviors_[static_cast<std::size_t>(torus_.index(c))].get();
}

void RadioNetwork::count_queued(const Message& msg) {
  counters_.broadcasts_queued += 1;
  if (msg.type == MsgType::kCommitted) {
    counters_.committed_queued += 1;
  } else {
    counters_.heard_queued += 1;
  }
  counters_.retransmission_copies +=
      static_cast<std::uint64_t>(retransmissions_ - 1);
}

void RadioNetwork::record_commit(Coord node, std::uint8_t value) {
  counters_.commits += 1;
  if (round_ > counters_.last_commit_round) {
    counters_.last_commit_round = round_;
  }
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kNodeCommitted;
    e.round = round_;
    e.node = torus_.wrap(node);
    e.value = value;
    trace_->record(e);
  }
}

void RadioNetwork::queue_broadcast(Coord sender, Message msg) {
  const Coord canon = torus_.wrap(sender);
  count_queued(msg);
  outbox_.push_back(Pending{Envelope{canon, std::move(msg)}, canon,
                            retransmissions_ - 1});
}

void RadioNetwork::queue_spoofed_broadcast(Coord actual_sender,
                                           Coord claimed_sender,
                                           Message msg) {
  if (!spoofing_allowed_) {
    throw std::logic_error(
        "address spoofing is disabled (the paper's model); call "
        "allow_spoofing(true) to run the Section X negative control");
  }
  count_queued(msg);
  counters_.spoofed_sends += 1;
  outbox_.push_back(Pending{Envelope{torus_.wrap(claimed_sender),
                                     std::move(msg)},
                            torus_.wrap(actual_sender),
                            retransmissions_ - 1});
}

void RadioNetwork::start() {
  if (started_) throw std::logic_error("RadioNetwork::start called twice");
  for (std::int64_t i = 0; i < torus_.node_count(); ++i) {
    NodeBehavior* b = behaviors_[static_cast<std::size_t>(i)].get();
    if (b == nullptr) {
      throw std::logic_error("node " + to_string(torus_.coord(
                                 static_cast<std::int32_t>(i))) +
                             " has no behavior");
    }
    NodeContext ctx(*this, torus_.coord(static_cast<std::int32_t>(i)));
    b->on_start(ctx);
  }
  started_ = true;
  pending_ = std::move(outbox_);
  outbox_.clear();
}

void RadioNetwork::run_round() {
  if (!started_) throw std::logic_error("RadioNetwork::run_round before start");
  ++round_;
  if (trace_ != nullptr) {
    TraceEvent e;
    e.kind = TraceEventKind::kRoundStarted;
    e.round = round_;
    trace_->record(e);
  }
  // Deliver last round's transmissions. pending_ preserves sender order
  // (node-index-major, send-order-minor) because behaviors run in index
  // order, which gives every receiver the same deterministic TDMA order.
  std::vector<Pending> repeats;
  for (const Pending& p : pending_) {
    const Envelope& env = p.envelope;
    const std::size_t sender_idx =
        static_cast<std::size_t>(torus_.index(p.actual_sender));
    tx_count_[sender_idx] += 1;
    stats_.transmissions += 1;
    stats_.payload_units += 2 + env.msg.relayers.size();
    const auto& table = NeighborhoodTable::get(r_, metric_);
    for (const Offset o : table.offsets()) {
      // Receivers are the ACTUAL transmitter's neighbors, even when the
      // envelope claims a spoofed identity.
      const Coord receiver = torus_.wrap(p.actual_sender + o);
      if (!channel_->delivers(p.actual_sender, receiver, rng_)) {
        stats_.drops += 1;
        counters_.envelopes_dropped += 1;
        continue;
      }
      NodeBehavior* b =
          behaviors_[static_cast<std::size_t>(torus_.index(receiver))].get();
      stats_.deliveries += 1;
      counters_.envelopes_delivered += 1;
      if (trace_ != nullptr) {
        TraceEvent e;
        e.kind = TraceEventKind::kMessageDelivered;
        e.round = round_;
        e.node = receiver;
        e.sender = env.sender;
        e.origin = torus_.wrap(env.msg.origin);
        e.value = env.msg.value;
        e.msg_type = env.msg.type == MsgType::kCommitted ? 0 : 1;
        trace_->record(e);
      }
      NodeContext ctx(*this, receiver);
      b->on_receive(ctx, env);
    }
    if (p.repeats_left > 0) {
      repeats.push_back(Pending{env, p.actual_sender, p.repeats_left - 1});
    }
  }
  pending_.clear();
  for (std::int64_t i = 0; i < torus_.node_count(); ++i) {
    NodeContext ctx(*this, torus_.coord(static_cast<std::int32_t>(i)));
    behaviors_[static_cast<std::size_t>(i)]->on_round_end(ctx);
  }
  pending_ = std::move(outbox_);
  outbox_.clear();
  // Retransmission copies go after this round's fresh sends.
  for (Pending& p : repeats) pending_.push_back(std::move(p));
}

std::int64_t RadioNetwork::run_until_quiescent(std::int64_t max_rounds) {
  std::int64_t rounds = 0;
  while (!quiescent() && rounds < max_rounds) {
    run_round();
    ++rounds;
  }
  return rounds;
}

std::uint64_t RadioNetwork::transmissions_of(Coord c) const {
  return tx_count_[static_cast<std::size_t>(torus_.index(c))];
}

}  // namespace rbcast
