#pragma once
// TDMA schedules for the grid (Section II).
//
// "We assume ... there exists a pre-determined TDMA schedule that all nodes
// follow. Such schedules are easily determined for the grid network under
// consideration (so long as time-optimality is not a concern)."
//
// This module constructs that schedule explicitly and proves (in the tests)
// that it is collision-free. Two transmitters conflict iff some node is
// within radius r of both, i.e. iff they are within distance 2r of each
// other; coloring grid points by (x mod 2r+1, y mod 2r+1) separates any two
// same-slot nodes by at least 2r+1 in x or y, so the (2r+1)^2-slot schedule
// is always valid on the infinite grid, and valid on a torus whose sides are
// multiples of 2r+1.

#include <cstdint>
#include <optional>

#include "radiobcast/grid/coord.h"
#include "radiobcast/grid/metric.h"
#include "radiobcast/grid/torus.h"

namespace rbcast {

/// Number of slots in the canonical grid schedule: (2r+1)^2.
constexpr std::int32_t tdma_slot_count(std::int32_t r) {
  return (2 * r + 1) * (2 * r + 1);
}

/// Slot of a node in the canonical schedule.
constexpr std::int32_t tdma_slot(Coord c, std::int32_t r) {
  const std::int32_t period = 2 * r + 1;
  const std::int32_t sx = ((c.x % period) + period) % period;
  const std::int32_t sy = ((c.y % period) + period) % period;
  return sy * period + sx;
}

/// True iff the torus dimensions make the canonical schedule seam-safe
/// (both sides multiples of 2r+1).
inline bool tdma_compatible(const Torus& torus, std::int32_t r) {
  const std::int32_t period = 2 * r + 1;
  return torus.width() % period == 0 && torus.height() % period == 0;
}

/// Exhaustively verifies that no two distinct same-slot nodes of the torus
/// share a potential receiver (i.e. are within 2r of each other) under the
/// given metric. Returns a violating pair if any.
struct TdmaViolation {
  Coord a;
  Coord b;
};
std::optional<TdmaViolation> find_tdma_violation(const Torus& torus,
                                                 std::int32_t r, Metric m);

}  // namespace rbcast
