#include "radiobcast/net/jamming.h"

#include <algorithm>

namespace rbcast {

JammingChannel::JammingChannel(const Torus& torus, std::int32_t r, Metric m,
                               std::vector<Coord> jammers,
                               std::int64_t budget_per_jammer)
    : torus_(torus), r_(r), m_(m), unbounded_(budget_per_jammer < 0) {
  jammers_.reserve(jammers.size());
  for (const Coord j : jammers) {
    const Coord canon = torus.wrap(j);
    jammers_.push_back(canon);
    budget_[canon] = budget_per_jammer;
  }
  std::sort(jammers_.begin(), jammers_.end());
  jammers_.erase(std::unique(jammers_.begin(), jammers_.end()),
                 jammers_.end());
}

bool JammingChannel::delivers(Coord sender, Coord receiver, Rng&) {
  // Jammers never destroy their own (i.e., any faulty) transmissions; the
  // adversary coordinates.
  if (budget_.count(torus_.wrap(sender)) > 0) return true;
  for (const Coord jammer : jammers_) {
    if (!torus_.within(jammer, receiver, r_, m_)) continue;
    if (unbounded_) {
      ++jammed_;
      return false;
    }
    auto& remaining = budget_[jammer];
    if (remaining > 0) {
      --remaining;
      ++jammed_;
      return false;
    }
  }
  return true;
}

}  // namespace rbcast
