#pragma once
// Umbrella header: the full public API of the radiobcast library.
//
// For finer-grained includes, pull in the individual headers; they are laid
// out one subsystem per directory (see README.md / DESIGN.md).

// Substrate: geometry and randomness.
#include "radiobcast/grid/coord.h"          // IWYU pragma: export
#include "radiobcast/grid/metric.h"         // IWYU pragma: export
#include "radiobcast/grid/neighborhood.h"   // IWYU pragma: export
#include "radiobcast/grid/region.h"         // IWYU pragma: export
#include "radiobcast/grid/torus.h"          // IWYU pragma: export
#include "radiobcast/util/cli.h"            // IWYU pragma: export
#include "radiobcast/util/rng.h"            // IWYU pragma: export
#include "radiobcast/util/table.h"          // IWYU pragma: export

// Node-disjoint path machinery and the paper's constructions.
#include "radiobcast/paths/construction.h"  // IWYU pragma: export
#include "radiobcast/paths/disjoint.h"      // IWYU pragma: export
#include "radiobcast/paths/flow.h"          // IWYU pragma: export
#include "radiobcast/paths/packing.h"       // IWYU pragma: export

// The locally bounded adversary.
#include "radiobcast/fault/fault_set.h"     // IWYU pragma: export
#include "radiobcast/fault/placement.h"     // IWYU pragma: export

// Observability: counters, round traces, phase timers.
#include "radiobcast/obs/counters.h"        // IWYU pragma: export
#include "radiobcast/obs/timers.h"          // IWYU pragma: export
#include "radiobcast/obs/trace.h"           // IWYU pragma: export

// The radio network and its extensions.
#include "radiobcast/net/channel.h"         // IWYU pragma: export
#include "radiobcast/net/jamming.h"         // IWYU pragma: export
#include "radiobcast/net/message.h"         // IWYU pragma: export
#include "radiobcast/net/network.h"         // IWYU pragma: export
#include "radiobcast/net/tdma.h"            // IWYU pragma: export

// Protocols.
#include "radiobcast/protocols/bv_indirect.h"  // IWYU pragma: export
#include "radiobcast/protocols/bv_two_hop.h"   // IWYU pragma: export
#include "radiobcast/protocols/byzantine.h"    // IWYU pragma: export
#include "radiobcast/protocols/common.h"       // IWYU pragma: export
#include "radiobcast/protocols/cpa.h"          // IWYU pragma: export
#include "radiobcast/protocols/crash_flood.h"  // IWYU pragma: export
#include "radiobcast/protocols/earmark.h"      // IWYU pragma: export
#include "radiobcast/protocols/source.h"       // IWYU pragma: export

// Arbitrary radio graphs (Sections III and V).
#include "radiobcast/graph/graph.h"            // IWYU pragma: export
#include "radiobcast/graph/graph_net.h"        // IWYU pragma: export
#include "radiobcast/graph/graph_protocols.h"  // IWYU pragma: export

// Experiment drivers and analysis.
#include "radiobcast/core/analysis.h"      // IWYU pragma: export
#include "radiobcast/core/ascii_viz.h"     // IWYU pragma: export
#include "radiobcast/core/experiment.h"    // IWYU pragma: export
#include "radiobcast/core/reachability.h"  // IWYU pragma: export
#include "radiobcast/core/simulation.h"    // IWYU pragma: export
