#pragma once
// Adversarial and randomized fault placement strategies.
//
// The theorems quantify over *all* placements respecting the local bound t,
// so the benchmarks exercise the extremal constructions from the proofs:
//
//  * full_strip        — Theorem 4 / Fig 8: a width-r vertical strip of faults
//                        has exactly r(2r+1) faults in the worst closed
//                        neighborhood and partitions the torus for crash-stop.
//  * punctured_strip   — the same strip with one node removed every `period`
//                        rows: the densest legal barrier at t = r(2r+1) - 1.
//  * checkerboard_strip— Koo's Byzantine impossibility arrangement (Fig 13
//                        adapted to L∞): half-density strip; the worst closed
//                        neighborhood contains exactly ceil(r(2r+1)/2) faults,
//                        which is precisely the impossibility budget.
//  * random_bounded    — repeatedly draws uniform nodes and keeps those that
//                        do not violate the bound (the "generic" adversary).
//  * iid_faults        — each node fails independently with probability p_f
//                        (Section XI's percolation-style model; not bound-
//                        constrained).
//  * trim_to_budget    — greedy repair: removes faults until the bound holds;
//                        turns any over-budget pattern into the densest legal
//                        sub-pattern our greedy finds.

#include <cstdint>

#include "radiobcast/fault/fault_set.h"
#include "radiobcast/util/rng.h"

namespace rbcast {

/// All nodes with x_lo <= x <= x_lo + width - 1 (all rows). Never includes
/// `exclude` (the source).
FaultSet full_strip(const Torus& torus, std::int32_t x_lo, std::int32_t width,
                    Coord exclude);

/// full_strip minus the nodes (x_lo, y) with y % period == 0.
FaultSet punctured_strip(const Torus& torus, std::int32_t x_lo,
                         std::int32_t width, std::int32_t period,
                         Coord exclude);

/// Strip cells with (x + y) % 2 == parity.
FaultSet checkerboard_strip(const Torus& torus, std::int32_t x_lo,
                            std::int32_t width, std::int32_t parity,
                            Coord exclude);

/// Draws uniform random nodes, keeping each draw only if the local bound t
/// still holds; stops after `target` accepted faults or when `attempts` draws
/// are exhausted.
FaultSet random_bounded(const Torus& torus, std::int32_t r, Metric m,
                        std::int64_t t, std::int64_t target,
                        std::int64_t attempts, Rng& rng, Coord exclude);

/// Independent failures with probability p_f (no local-bound enforcement).
FaultSet iid_faults(const Torus& torus, double p_f, Rng& rng, Coord exclude);

/// Greedily removes faults (each time from the currently worst closed
/// neighborhood, in row-major order within it) until the local bound t holds.
void trim_to_budget(FaultSet& faults, const Torus& torus, std::int32_t r,
                    Metric m, std::int64_t t);

}  // namespace rbcast
