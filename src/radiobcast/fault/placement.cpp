#include "radiobcast/fault/placement.h"

#include <algorithm>
#include <stdexcept>

#include "radiobcast/grid/neighborhood.h"

namespace rbcast {

namespace {

void check_strip(const Torus& torus, std::int32_t width) {
  if (width < 1 || width >= torus.width()) {
    throw std::invalid_argument("strip width must be in [1, torus width)");
  }
}

}  // namespace

FaultSet full_strip(const Torus& torus, std::int32_t x_lo, std::int32_t width,
                    Coord exclude) {
  check_strip(torus, width);
  FaultSet out;
  const Coord excl = torus.wrap(exclude);
  for (std::int32_t dx = 0; dx < width; ++dx) {
    for (std::int32_t y = 0; y < torus.height(); ++y) {
      const Coord c = torus.wrap({x_lo + dx, y});
      if (c == excl) continue;
      out.add(torus, c);
    }
  }
  return out;
}

FaultSet punctured_strip(const Torus& torus, std::int32_t x_lo,
                         std::int32_t width, std::int32_t period,
                         Coord exclude) {
  if (period < 1) throw std::invalid_argument("puncture period must be >= 1");
  FaultSet out = full_strip(torus, x_lo, width, exclude);
  for (std::int32_t y = 0; y < torus.height(); y += period) {
    out.remove(torus, {x_lo, y});
  }
  return out;
}

FaultSet checkerboard_strip(const Torus& torus, std::int32_t x_lo,
                            std::int32_t width, std::int32_t parity,
                            Coord exclude) {
  check_strip(torus, width);
  FaultSet out;
  const Coord excl = torus.wrap(exclude);
  for (std::int32_t dx = 0; dx < width; ++dx) {
    for (std::int32_t y = 0; y < torus.height(); ++y) {
      const Coord c = torus.wrap({x_lo + dx, y});
      if (c == excl) continue;
      if (((c.x + c.y) % 2 + 2) % 2 != parity) continue;
      out.add(torus, c);
    }
  }
  return out;
}

FaultSet random_bounded(const Torus& torus, std::int32_t r, Metric m,
                        std::int64_t t, std::int64_t target,
                        std::int64_t attempts, Rng& rng, Coord exclude) {
  FaultSet out;
  const Coord excl = torus.wrap(exclude);
  const auto& table = NeighborhoodTable::get(r, m);
  // Incremental closed-neighborhood counts: counts[c] = number of faults in
  // nbd(c) ∪ {c}.
  std::vector<std::int64_t> counts(
      static_cast<std::size_t>(torus.node_count()), 0);
  auto can_add = [&](Coord f) {
    if (counts[static_cast<std::size_t>(torus.index(f))] + 1 > t) return false;
    for (const Offset o : table.offsets()) {
      const Coord c = torus.wrap(f + o);
      if (counts[static_cast<std::size_t>(torus.index(c))] + 1 > t) {
        return false;
      }
    }
    return true;
  };
  auto apply_add = [&](Coord f) {
    counts[static_cast<std::size_t>(torus.index(f))] += 1;
    for (const Offset o : table.offsets()) {
      counts[static_cast<std::size_t>(torus.index(torus.wrap(f + o)))] += 1;
    }
  };
  for (std::int64_t i = 0;
       i < attempts && static_cast<std::int64_t>(out.size()) < target; ++i) {
    const auto idx =
        static_cast<std::int32_t>(rng.below(
            static_cast<std::uint64_t>(torus.node_count())));
    const Coord c = torus.coord(idx);
    if (c == excl || out.contains(c)) continue;
    if (!can_add(c)) continue;
    out.add(torus, c);
    apply_add(c);
  }
  return out;
}

FaultSet iid_faults(const Torus& torus, double p_f, Rng& rng, Coord exclude) {
  FaultSet out;
  const Coord excl = torus.wrap(exclude);
  for (const Coord c : torus.all_coords()) {
    if (c == excl) continue;
    if (rng.chance(p_f)) out.add(torus, c);
  }
  return out;
}

void trim_to_budget(FaultSet& faults, const Torus& torus, std::int32_t r,
                    Metric m, std::int64_t t) {
  const auto& table = NeighborhoodTable::get(r, m);
  while (true) {
    // Find the worst closed neighborhood (first center in row-major order).
    std::int64_t worst_count = t;
    Coord worst_center{};
    bool found = false;
    for (const Coord c : torus.all_coords()) {
      std::int64_t count = faults.contains(c) ? 1 : 0;
      for (const Offset o : table.offsets()) {
        if (faults.contains(torus.wrap(c + o))) ++count;
      }
      if (count > worst_count) {
        worst_count = count;
        worst_center = c;
        found = true;
      }
    }
    if (!found) return;
    // Remove the first fault (row-major) from that neighborhood.
    Coord victim{};
    bool have_victim = false;
    if (faults.contains(worst_center)) {
      victim = worst_center;
      have_victim = true;
    } else {
      std::vector<Coord> members;
      for (const Offset o : table.offsets()) {
        const Coord c = torus.wrap(worst_center + o);
        if (faults.contains(c)) members.push_back(c);
      }
      std::sort(members.begin(), members.end());
      if (!members.empty()) {
        victim = members.front();
        have_victim = true;
      }
    }
    if (!have_victim) return;  // defensive; cannot happen
    faults.remove(torus, victim);
  }
}

}  // namespace rbcast
