#include "radiobcast/fault/fault_set.h"

#include <algorithm>

#include "radiobcast/grid/neighborhood.h"

namespace rbcast {

FaultSet::FaultSet(const Torus& torus, std::vector<Coord> faults) {
  for (const Coord c : faults) add(torus, c);
}

bool FaultSet::add(const Torus& torus, Coord c) {
  return set_.insert(torus.wrap(c)).second;
}

bool FaultSet::remove(const Torus& torus, Coord c) {
  return set_.erase(torus.wrap(c)) > 0;
}

std::vector<Coord> FaultSet::sorted() const {
  std::vector<Coord> out(set_.begin(), set_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::int64_t max_closed_nbd_faults(const Torus& torus, const FaultSet& faults,
                                   std::int32_t r, Metric m) {
  // Only centers within r of some fault can have a non-zero count, so scan
  // the union of balls around faults rather than the whole torus.
  const auto& table = NeighborhoodTable::get(r, m);
  std::unordered_set<Coord> candidate_centers;
  for (const Coord f : faults.sorted()) {
    candidate_centers.insert(f);
    for (const Offset o : table.offsets()) {
      candidate_centers.insert(torus.wrap(f + o));
    }
  }
  std::int64_t best = 0;
  for (const Coord c : candidate_centers) {
    std::int64_t count = faults.contains(c) ? 1 : 0;
    for (const Offset o : table.offsets()) {
      if (faults.contains(torus.wrap(c + o))) ++count;
    }
    best = std::max(best, count);
  }
  return best;
}

bool satisfies_local_bound(const Torus& torus, const FaultSet& faults,
                           std::int32_t r, Metric m, std::int64_t t) {
  return max_closed_nbd_faults(torus, faults, r, m) <= t;
}

}  // namespace rbcast
