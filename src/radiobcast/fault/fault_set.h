#pragma once
// Fault sets under the paper's locally bounded adversary (Section II).
//
// The adversary may choose any set of faulty nodes subject to: no single
// neighborhood contains more than t faults. Because "a correct node may have
// up to t faulty neighbors, while a faulty node may have up to (t-1) faulty
// neighbors", the constraint is equivalently: for every node c, the *closed*
// neighborhood nbd(c) ∪ {c} contains at most t faults. That closed-ball
// formulation is what the validator checks.

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "radiobcast/grid/coord.h"
#include "radiobcast/grid/metric.h"
#include "radiobcast/grid/torus.h"

namespace rbcast {

/// A set of faulty node positions (canonical torus coordinates).
class FaultSet {
 public:
  FaultSet() = default;
  explicit FaultSet(const Torus& torus, std::vector<Coord> faults);

  /// Inserts (canonicalizing); returns false if already present.
  bool add(const Torus& torus, Coord c);

  /// Removes (canonicalizing); returns false if absent.
  bool remove(const Torus& torus, Coord c);

  bool contains(Coord canonical) const { return set_.count(canonical) > 0; }

  std::size_t size() const { return set_.size(); }
  bool empty() const { return set_.empty(); }

  /// Faulty coordinates in deterministic (sorted) order.
  std::vector<Coord> sorted() const;

 private:
  std::unordered_set<Coord> set_;
};

/// Largest number of faults in any closed neighborhood nbd(c) ∪ {c}, over all
/// centers c of the torus.
std::int64_t max_closed_nbd_faults(const Torus& torus, const FaultSet& faults,
                                   std::int32_t r, Metric m);

/// True iff `faults` is a legal placement for local bound t.
bool satisfies_local_bound(const Torus& torus, const FaultSet& faults,
                           std::int32_t r, Metric m, std::int64_t t);

}  // namespace rbcast
