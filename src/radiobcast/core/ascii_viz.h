#pragma once
// ASCII rendering of simulation outcomes, used by the example programs.
//
//   S  source        +  committed to the correct value
//   #  faulty        X  committed to the WRONG value (Theorem 2: never)
//   .  undecided

#include <string>

#include "radiobcast/core/simulation.h"
#include "radiobcast/grid/torus.h"

namespace rbcast {

/// Renders outcomes as height lines of width characters (row y printed
/// top-to-bottom from y = height-1 so the picture matches the usual axes).
std::string render_outcomes(const Torus& torus, const SimResult& result,
                            std::uint8_t correct_value);

}  // namespace rbcast
