#pragma once
// Reachability analysis (Section VII).
//
// "Thus the sole criterion for achievability [under crash-stop failures] is
// reachability." This module computes the set of honest nodes reachable
// from the source through honest nodes only — the graph-theoretic quantity
// that crash-stop flooding must match exactly (property-tested), and the
// site-percolation quantity the conclusion (Section XI) relates to.

#include <cstdint>
#include <vector>

#include "radiobcast/fault/fault_set.h"
#include "radiobcast/grid/metric.h"
#include "radiobcast/grid/torus.h"

namespace rbcast {

/// Per-node reachability flags, indexed by torus node index. The source is
/// reachable by definition (if honest); faulty nodes are never reachable.
struct ReachabilityResult {
  std::vector<bool> reachable;
  std::int64_t reachable_honest = 0;  // excluding the source
  std::int64_t total_honest = 0;      // excluding the source

  /// Fraction of honest non-source nodes reachable from the source.
  double fraction() const {
    return total_honest == 0 ? 1.0
                             : static_cast<double>(reachable_honest) /
                                   static_cast<double>(total_honest);
  }
};

/// BFS from `source` over honest nodes under radio adjacency (radius r,
/// metric m). Faulty nodes block propagation entirely (crash-stop semantics:
/// a node that never transmits relays nothing).
ReachabilityResult honest_reachability(const Torus& torus,
                                       const FaultSet& faults, Coord source,
                                       std::int32_t r, Metric m);

/// Bisection estimate of the iid crash-fault probability at which the
/// source-reachable fraction first drops below `target_fraction`
/// (Section XI's percolation-style knee). Deterministic given the seed;
/// `trials` independent placements are averaged per probe.
double estimate_percolation_knee(std::int32_t width, std::int32_t height,
                                 std::int32_t r, Metric m, Coord source,
                                 double target_fraction, int trials,
                                 std::uint64_t seed);

}  // namespace rbcast
