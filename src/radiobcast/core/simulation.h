#pragma once
// End-to-end simulation runner: builds a torus radio network, installs the
// chosen protocol on honest nodes and the chosen adversary on faulty nodes,
// runs to quiescence, and scores the outcome.
//
// Scoring: reliable broadcast succeeds when every honest node commits to the
// source's value. `wrong_commits` counts honest nodes committing any other
// value — Theorem 2 (and the trivial safety of the crash/CPA rules) predicts
// this is zero in every run, and the test-suite enforces it.

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "radiobcast/fault/fault_set.h"
#include "radiobcast/grid/metric.h"
#include "radiobcast/grid/torus.h"
#include "radiobcast/obs/counters.h"
#include "radiobcast/obs/timers.h"
#include "radiobcast/obs/trace.h"

namespace rbcast {

enum class ProtocolKind : std::uint8_t {
  kCrashFlood,           // Section VII
  kCpa,                  // Section IX ([Koo04]'s simple protocol)
  kBvTwoHop,             // Section VI-B
  kBvIndirectFlood,      // Section VI, faithful flooding relays
  kBvIndirectEarmarked,  // Section VI, constructive-path relays (L∞ only)
};

const char* to_string(ProtocolKind k);

/// Inverse of to_string(ProtocolKind). Returns nullopt for unknown names.
std::optional<ProtocolKind> protocol_from_string(std::string_view name);

enum class AdversaryKind : std::uint8_t {
  kSilent,        // crash-from-start / silent Byzantine
  kLying,         // pushes the complement value, forges reports
  kCrashAtRound,  // honest until crash_round, then silent (crash-stop)
  kSpoofing,      // Section X negative control: impersonates honest nodes
                  // (enables address spoofing in the network!)
  kJamming,       // Section X: silent faults + bounded collision budget
};

const char* to_string(AdversaryKind k);

/// Inverse of to_string(AdversaryKind). Returns nullopt for unknown names.
std::optional<AdversaryKind> adversary_from_string(std::string_view name);

/// How loss_p randomness is drawn. kSharedStream is the historical default
/// (one network-wide rng consumed in global delivery order — cheapest, and
/// what every recorded campaign digest pins). kPairwise gives each ordered
/// (sender, receiver) pair its own seeded stream, which is the only layout a
/// distributed deployment can replicate; the networked runtime maps loss_p
/// onto it (net/channel.h's PairwiseLossChannel).
enum class LossModel : std::uint8_t { kSharedStream, kPairwise };

struct SimConfig {
  std::int32_t width = 20;
  std::int32_t height = 20;
  std::int32_t r = 2;
  Metric metric = Metric::kLInf;
  std::int64_t t = 0;  // the local fault bound the protocol assumes
  ProtocolKind protocol = ProtocolKind::kBvTwoHop;
  AdversaryKind adversary = AdversaryKind::kSilent;
  std::uint8_t value = 1;  // the source's value (the adversary pushes 1-value)
  Coord source{0, 0};
  std::int64_t crash_round = 1;  // for kCrashAtRound
  std::uint64_t seed = 1;
  std::int64_t max_rounds = 0;  // 0 = automatic bound
  /// Channel-error extension (Section II remark): per-receiver iid loss
  /// probability, and how many times each broadcast is transmitted. The
  /// paper's model is loss_p = 0, retransmissions = 1.
  double loss_p = 0.0;
  int retransmissions = 1;
  LossModel loss_model = LossModel::kSharedStream;
  /// For kJamming: deliveries each faulty node may destroy (-1 = unbounded).
  std::int64_t jam_budget = 0;
  /// Per-trial deadline watchdog (0 = off). `deadline_rounds` is a
  /// cooperative round budget: a run still non-quiescent after this many
  /// rounds throws TrialTimeoutError instead of continuing toward max_rounds.
  /// `deadline_ms` is a wall-clock budget measured from run_simulation entry
  /// (setup included) and checked between rounds, so a runaway trial turns
  /// into a thrown timeout rather than a hung worker. The campaign engine
  /// classifies TrialTimeoutError as a non-retried `timeout` failure. Note
  /// that a wall-clock deadline makes the *set of completed trials* depend on
  /// machine speed; the outcome of any trial that completes is still
  /// deterministic.
  std::int64_t deadline_rounds = 0;
  std::int64_t deadline_ms = 0;
};

/// Thrown by run_simulation when a SimConfig deadline is exceeded. Derives
/// from std::runtime_error (not invalid_argument): the configuration is
/// legal, the trial just ran past its budget.
class TrialTimeoutError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Per-node outcome for visualization: the source and honest committed nodes
/// carry their value; faulty and undecided nodes are flagged.
enum class NodeOutcome : std::int8_t {
  kUndecided,
  kCommitted0,
  kCommitted1,
  kFaulty,
  kSource,
};

struct SimResult {
  std::int64_t honest_nodes = 0;  // excluding the source
  std::int64_t correct_commits = 0;
  std::int64_t wrong_commits = 0;
  std::int64_t undecided = 0;
  std::int64_t rounds = 0;
  bool reached_quiescence = false;
  std::uint64_t transmissions = 0;
  std::uint64_t deliveries = 0;
  std::uint64_t payload_units = 0;  // see TrafficStats::payload_units
  /// Observability counters of the run (deterministic given the seed).
  Counters counters;
  /// Wall-clock phase split of the run (nondeterministic; never serialized
  /// into byte-identical payloads).
  PhaseTimers timers;
  std::vector<NodeOutcome> outcomes;  // by torus node index
  /// Round in which each node committed (-1 = never / faulty). The source
  /// has round 0. Feeds the propagation-stage analyses (Figs 9-10, 14-19).
  std::vector<std::int64_t> commit_rounds;

  /// Number of honest nodes (plus the source) committed by the end of each
  /// round: commits_by_round()[k] counts nodes with commit round <= k.
  std::vector<std::int64_t> commits_by_round() const;

  /// Fraction of honest non-source nodes that committed to the correct value.
  double coverage() const {
    return honest_nodes == 0
               ? 1.0
               : static_cast<double>(correct_commits) /
                     static_cast<double>(honest_nodes);
  }

  /// Reliable broadcast achieved: full coverage and no wrong commits.
  bool success() const {
    return wrong_commits == 0 && correct_commits == honest_nodes;
  }
};

/// Optional observability attachments for one run. Everything here is
/// off/null by default and adds nothing to the hot path when absent.
struct ObsOptions {
  /// Event sink for round/delivery/commit events (not owned; may be null).
  /// The sink is enabled for the duration of the run.
  RoundTrace* trace = nullptr;
};

/// The role a node plays in a trial, used to pick its behavior.
enum class NodeRole : std::uint8_t { kSource, kHonest, kFaulty };

/// Builds the behavior a node of the given role runs under `config`. This is
/// the single node-population recipe shared by the simulator and the
/// networked runtime (runtime/node.h), which is what makes their verdicts
/// comparable: same config + same roles = same protocol objects.
/// Forward-declared NodeBehavior lives in net/backend.h.
class NodeBehavior;
std::unique_ptr<NodeBehavior> make_node_behavior(const SimConfig& config,
                                                 const Torus& torus,
                                                 NodeRole role);

/// The automatic round budget used when SimConfig::max_rounds is 0: generous
/// diameter-in-hops times slack for multi-round evidence accumulation. The
/// runtime harness uses the same bound so both backends observe the same
/// horizon.
std::int64_t default_round_bound(const SimConfig& config);

/// Runs one simulation. Throws std::invalid_argument if the fault set
/// contains the source, or if the torus is too small for unambiguous
/// wrap-around geometry (min side 4r+2; protocols reasoning across 2r-balls
/// get sides of at least 8r+4 in the provided experiment configs).
SimResult run_simulation(const SimConfig& config, const FaultSet& faults);

/// As above, with observability attachments (e.g. a RoundTrace sink).
SimResult run_simulation(const SimConfig& config, const FaultSet& faults,
                         const ObsOptions& obs);

}  // namespace rbcast
