#include "radiobcast/core/ascii_viz.h"

namespace rbcast {

std::string render_outcomes(const Torus& torus, const SimResult& result,
                            std::uint8_t correct_value) {
  std::string out;
  out.reserve(static_cast<std::size_t>((torus.width() + 1) * torus.height()));
  for (std::int32_t y = torus.height() - 1; y >= 0; --y) {
    for (std::int32_t x = 0; x < torus.width(); ++x) {
      const NodeOutcome o =
          result.outcomes[static_cast<std::size_t>(torus.index({x, y}))];
      char c = '?';
      switch (o) {
        case NodeOutcome::kUndecided: c = '.'; break;
        case NodeOutcome::kFaulty: c = '#'; break;
        case NodeOutcome::kSource: c = 'S'; break;
        case NodeOutcome::kCommitted0:
          c = (correct_value == 0) ? '+' : 'X';
          break;
        case NodeOutcome::kCommitted1:
          c = (correct_value == 1) ? '+' : 'X';
          break;
      }
      out.push_back(c);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace rbcast
