#include "radiobcast/core/simulation.h"

#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>

#include "radiobcast/net/jamming.h"
#include "radiobcast/net/network.h"
#include "radiobcast/protocols/bv_indirect.h"
#include "radiobcast/protocols/bv_two_hop.h"
#include "radiobcast/protocols/byzantine.h"
#include "radiobcast/protocols/common.h"
#include "radiobcast/protocols/cpa.h"
#include "radiobcast/protocols/crash_flood.h"
#include "radiobcast/protocols/pool.h"
#include "radiobcast/protocols/source.h"

namespace rbcast {

std::vector<std::int64_t> SimResult::commits_by_round() const {
  std::vector<std::int64_t> cumulative(static_cast<std::size_t>(rounds) + 1,
                                       0);
  for (const std::int64_t round : commit_rounds) {
    if (round < 0) continue;
    const auto idx = static_cast<std::size_t>(
        round <= rounds ? round : rounds);
    cumulative[idx] += 1;
  }
  for (std::size_t k = 1; k < cumulative.size(); ++k) {
    cumulative[k] += cumulative[k - 1];
  }
  return cumulative;
}

const char* to_string(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kCrashFlood: return "crash-flood";
    case ProtocolKind::kCpa: return "cpa";
    case ProtocolKind::kBvTwoHop: return "bv-2hop";
    case ProtocolKind::kBvIndirectFlood: return "bv-4hop-flood";
    case ProtocolKind::kBvIndirectEarmarked: return "bv-4hop-earmarked";
  }
  return "?";
}

const char* to_string(AdversaryKind k) {
  switch (k) {
    case AdversaryKind::kSilent: return "silent";
    case AdversaryKind::kLying: return "lying";
    case AdversaryKind::kCrashAtRound: return "crash-at-round";
    case AdversaryKind::kSpoofing: return "spoofing";
    case AdversaryKind::kJamming: return "jamming";
  }
  return "?";
}

std::optional<ProtocolKind> protocol_from_string(std::string_view name) {
  for (const ProtocolKind k :
       {ProtocolKind::kCrashFlood, ProtocolKind::kCpa, ProtocolKind::kBvTwoHop,
        ProtocolKind::kBvIndirectFlood, ProtocolKind::kBvIndirectEarmarked}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

std::optional<AdversaryKind> adversary_from_string(std::string_view name) {
  for (const AdversaryKind k :
       {AdversaryKind::kSilent, AdversaryKind::kLying,
        AdversaryKind::kCrashAtRound, AdversaryKind::kSpoofing,
        AdversaryKind::kJamming}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

namespace {

std::unique_ptr<NodeBehavior> make_honest(const SimConfig& cfg,
                                          const Torus& torus) {
  const ProtocolParams params{cfg.t, cfg.source};
  switch (cfg.protocol) {
    case ProtocolKind::kCrashFlood:
      return std::make_unique<CrashFloodBehavior>(params);
    case ProtocolKind::kCpa:
      return std::make_unique<CpaBehavior>(params);
    case ProtocolKind::kBvTwoHop:
      return std::make_unique<BvTwoHopBehavior>(params, torus, cfg.r,
                                                cfg.metric);
    case ProtocolKind::kBvIndirectFlood:
      return std::make_unique<BvIndirectBehavior>(params, torus, cfg.r,
                                                  cfg.metric,
                                                  RelayMode::kFlood);
    case ProtocolKind::kBvIndirectEarmarked:
      if (cfg.metric != Metric::kLInf) {
        throw std::invalid_argument(
            "earmarked relays require the L-infinity metric");
      }
      return std::make_unique<BvIndirectBehavior>(params, torus, cfg.r,
                                                  cfg.metric,
                                                  RelayMode::kEarmarked);
  }
  throw std::logic_error("unknown protocol");
}

std::unique_ptr<NodeBehavior> make_faulty(const SimConfig& cfg,
                                          const Torus& torus) {
  switch (cfg.adversary) {
    case AdversaryKind::kSilent:
      return std::make_unique<SilentBehavior>();
    case AdversaryKind::kLying:
      return std::make_unique<LyingBehavior>(
          static_cast<std::uint8_t>(1 - (cfg.value & 1)));
    case AdversaryKind::kCrashAtRound:
      return std::make_unique<CrashAtRoundBehavior>(make_honest(cfg, torus),
                                                    cfg.crash_round);
    case AdversaryKind::kSpoofing:
      return std::make_unique<SpoofingBehavior>(
          static_cast<std::uint8_t>(1 - (cfg.value & 1)), cfg.r, cfg.metric);
    case AdversaryKind::kJamming:
      // Jammers are silent nodes; their power lives in the channel (set up
      // by run_simulation).
      return std::make_unique<SilentBehavior>();
  }
  throw std::logic_error("unknown adversary");
}

/// Structure-of-arrays pool for the honest nodes of this configuration, or
/// nullptr for protocols (or parameter corners) the pools do not cover —
/// those fall back to per-node behaviors, same results either way
/// (tests/test_pool_equivalence.cpp). Lives here, not in protocols/, because
/// it is the one place SimConfig meets the pool classes.
std::unique_ptr<NodePool> make_honest_pool(const SimConfig& cfg,
                                           const Torus& torus) {
  if (!soa_pools_enabled()) return nullptr;
  const ProtocolParams params{cfg.t, cfg.source};
  switch (cfg.protocol) {
    case ProtocolKind::kCrashFlood:
      return std::make_unique<CrashFloodPool>(params, torus);
    case ProtocolKind::kCpa:
      return std::make_unique<CpaPool>(params, torus);
    case ProtocolKind::kBvTwoHop:
      if (BvTwoHopPool::supported(torus, cfg.r, cfg.metric)) {
        return std::make_unique<BvTwoHopPool>(params, torus, cfg.r,
                                              cfg.metric);
      }
      return nullptr;  // tiny-torus / offset-exact paths stay per-node
    case ProtocolKind::kBvIndirectFlood:
    case ProtocolKind::kBvIndirectEarmarked:
      return nullptr;  // evidence pools are arena-backed inside the behavior
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<NodeBehavior> make_node_behavior(const SimConfig& cfg,
                                                 const Torus& torus,
                                                 NodeRole role) {
  switch (role) {
    case NodeRole::kSource:
      return std::make_unique<SourceBehavior>(cfg.value);
    case NodeRole::kHonest:
      return make_honest(cfg, torus);
    case NodeRole::kFaulty:
      return make_faulty(cfg, torus);
  }
  throw std::logic_error("unknown node role");
}

std::int64_t default_round_bound(const SimConfig& cfg) {
  // Generous: diameter in hops times slack for the multi-round evidence
  // accumulation of the BV protocols.
  const std::int64_t diameter_hops =
      (cfg.width + cfg.height) / (2 * cfg.r) + 2;
  // Retransmission copies stretch every hop by up to `retransmissions`
  // rounds.
  return (8 * diameter_hops + 40) * cfg.retransmissions;
}

SimResult run_simulation(const SimConfig& cfg, const FaultSet& faults) {
  return run_simulation(cfg, faults, ObsOptions{});
}

SimResult run_simulation(const SimConfig& cfg, const FaultSet& faults,
                         const ObsOptions& obs) {
  if (cfg.width < 4 * cfg.r + 2 || cfg.height < 4 * cfg.r + 2) {
    throw std::invalid_argument("torus sides must be at least 4r+2");
  }
  // Wall-clock watchdog: measured from entry so a pathological setup phase
  // counts against the budget too. Checked cooperatively between rounds.
  const bool wall_deadline_on = cfg.deadline_ms > 0;
  const auto wall_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(cfg.deadline_ms);
  const auto check_wall_deadline = [&] {
    if (wall_deadline_on && std::chrono::steady_clock::now() >= wall_deadline) {
      throw TrialTimeoutError("trial exceeded wall-clock deadline of " +
                              std::to_string(cfg.deadline_ms) + " ms");
    }
  };
  PhaseStopwatch stopwatch;
  SimResult result;
  Torus torus(cfg.width, cfg.height);
  const Coord source = torus.wrap(cfg.source);
  if (faults.contains(source)) {
    throw std::invalid_argument("the designated source must be correct");
  }

  RadioNetwork net(torus, cfg.r, cfg.metric, cfg.seed);
  if (obs.trace != nullptr) {
    obs.trace->set_enabled(true);
    net.set_trace(obs.trace);
  }
  if (cfg.adversary == AdversaryKind::kSpoofing) net.allow_spoofing(true);
  if (cfg.adversary == AdversaryKind::kJamming) {
    net.set_channel(std::make_unique<JammingChannel>(
        torus, cfg.r, cfg.metric, faults.sorted(), cfg.jam_budget));
  } else if (cfg.loss_p > 0.0) {
    if (cfg.loss_model == LossModel::kPairwise) {
      net.set_channel(
          std::make_unique<PairwiseLossChannel>(cfg.loss_p, cfg.seed));
    } else {
      net.set_channel(std::make_unique<IidLossChannel>(cfg.loss_p));
    }
  }
  if (cfg.retransmissions != 1) {
    net.set_retransmissions(cfg.retransmissions);
  }
  if (auto pool = make_honest_pool(cfg, torus)) net.set_pool(std::move(pool));
  for (const Coord c : torus.all_coords()) {
    const NodeRole role = c == source         ? NodeRole::kSource
                          : faults.contains(c) ? NodeRole::kFaulty
                                               : NodeRole::kHonest;
    if (role == NodeRole::kHonest && net.pool() != nullptr) {
      net.assign_to_pool(c);
    } else {
      net.set_behavior(c, make_node_behavior(cfg, torus, role));
    }
  }

  result.timers.setup_seconds = stopwatch.lap();

  net.start();
  check_wall_deadline();
  const std::int64_t bound =
      cfg.max_rounds > 0 ? cfg.max_rounds : default_round_bound(cfg);
  // The round loop of RadioNetwork::run_until_quiescent, inlined so the
  // deadline watchdog runs between rounds (cooperatively — a single round is
  // never interrupted, keeping every completed trial deterministic).
  std::int64_t rounds = 0;
  while (!net.quiescent() && rounds < bound) {
    if (cfg.deadline_rounds > 0 && rounds >= cfg.deadline_rounds) {
      throw TrialTimeoutError("trial exceeded round budget of " +
                              std::to_string(cfg.deadline_rounds) + " rounds");
    }
    net.run_round();
    ++rounds;
    check_wall_deadline();
  }
  result.rounds = rounds;
  result.timers.rounds_seconds = stopwatch.lap();
  result.reached_quiescence = net.quiescent();
  result.transmissions = net.stats().transmissions;
  result.deliveries = net.stats().deliveries;
  result.payload_units = net.stats().payload_units;
  result.counters = net.counters();

  result.outcomes.resize(static_cast<std::size_t>(torus.node_count()),
                         NodeOutcome::kUndecided);
  result.commit_rounds.assign(static_cast<std::size_t>(torus.node_count()),
                              -1);
  for (const Coord c : torus.all_coords()) {
    const auto idx = static_cast<std::size_t>(torus.index(c));
    if (c == source) {
      result.outcomes[idx] = NodeOutcome::kSource;
      result.commit_rounds[idx] = 0;
      continue;
    }
    if (faults.contains(c)) {
      result.outcomes[idx] = NodeOutcome::kFaulty;
      continue;
    }
    result.honest_nodes += 1;
    const auto committed = net.committed_value_of(c);
    if (!committed.has_value()) {
      result.undecided += 1;
      continue;
    }
    result.commit_rounds[idx] = net.commit_round_of(c).value_or(-1);
    result.outcomes[idx] = (*committed & 1) ? NodeOutcome::kCommitted1
                                            : NodeOutcome::kCommitted0;
    if (*committed == cfg.value) {
      result.correct_commits += 1;
    } else {
      result.wrong_commits += 1;
    }
  }
  result.timers.verdict_seconds = stopwatch.lap();
  return result;
}

}  // namespace rbcast
