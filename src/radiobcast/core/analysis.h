#pragma once
// Closed-form thresholds and bounds from the paper, used by the tests and
// the benchmark harnesses to print "paper claims" next to measured values.

#include <cstdint>

#include "radiobcast/grid/metric.h"

namespace rbcast {

/// |nbd| in the L∞ metric: (2r+1)^2 - 1.
std::int64_t linf_nbd_size(std::int32_t r);

/// r(2r+1) — the pivotal quantity of the paper: crash-stop threshold, and
/// twice (plus rounding) the Byzantine threshold.
std::int64_t r_2r_plus_1(std::int32_t r);

/// Byzantine, L∞ (Theorem 1 + [Koo04]): largest t for which reliable
/// broadcast is achievable, i.e. the largest t with t < r(2r+1)/2.
std::int64_t byz_linf_achievable_max(std::int32_t r);

/// Byzantine, L∞ ([Koo04]): smallest t rendering broadcast impossible,
/// ceil(r(2r+1)/2). Exactly byz_linf_achievable_max + 1 (exact threshold).
std::int64_t byz_linf_impossible_min(std::int32_t r);

/// Crash-stop, L∞ (Theorem 5): largest achievable t = r(2r+1) - 1.
std::int64_t crash_linf_achievable_max(std::int32_t r);

/// Crash-stop, L∞ (Theorem 4): smallest impossible t = r(2r+1).
std::int64_t crash_linf_impossible_min(std::int32_t r);

/// CPA achievability in L∞ (Theorem 6): t <= 2r^2/3, i.e. floor(2r^2/3).
std::int64_t cpa_linf_achievable_max(std::int32_t r);

/// [Koo04]'s own CPA achievability bound: t < (r(r + sqrt(r/2) + 1))/2.
/// Theorem 6 dominates this for all sufficiently large r.
double koo_cpa_linf_bound(std::int32_t r);

/// [Koo04]'s CPA achievability bound for L2: t < (r(r+sqrt(r/2)+1))/4 - 2.
double koo_cpa_l2_bound(std::int32_t r);

/// Section VIII approximate L2 thresholds (valid for large r, ±O(r)).
double l2_byz_achievable_approx(std::int32_t r);   // 0.23 * pi * r^2
double l2_byz_impossible_approx(std::int32_t r);   // 0.30 * pi * r^2
double l2_crash_achievable_approx(std::int32_t r); // 0.46 * pi * r^2
double l2_crash_impossible_approx(std::int32_t r); // 0.60 * pi * r^2

// ---------------------------------------------------------------------------
// Theorem 6 internals (Figs 14-19): the staged-propagation counting lemmas of
// the CPA achievability proof, as exact integer functions. The proof needs
// each quantity to dominate 2t+1 = (4/3)r^2 + 1 at the appropriate stage.
// ---------------------------------------------------------------------------

/// Committed neighbors of the 2*ceil(r/2)+1 first-stage nodes along each
/// edge of the central square (Fig 14): (r + 1 + ceil(r/2)) * r.
std::int64_t cpa_stage1_committed_neighbors(std::int32_t r);

/// Committed neighbors available to row i of the growing stack (Fig 15-16):
/// (ceil(3r/2)+1)(r+1-i) + (i-1)(2*ceil(r/2)+1) + (i-1)(ceil(r/2)-i+1).
std::int64_t cpa_row_committed_neighbors(std::int32_t r, std::int32_t i);

/// The stack depth the proof guarantees: floor(r / sqrt(6)) rows, which is
/// at least floor(r/3) since sqrt(6) < 3.
std::int32_t cpa_guaranteed_stack_rows(std::int32_t r);

/// Committed neighbors of the 8 second-stage corner nodes (Fig 17):
/// (r + 1 + ceil(r/2)) * r + 2*ceil(r/2)*floor(r/3).
std::int64_t cpa_stage2_committed_neighbors(std::int32_t r);

/// The Theorem 6 requirement both stages must dominate: 2t+1 with
/// t = 2r^2/3, i.e. (4/3)r^2 + 1 (kept exact as a rational comparison:
/// use 3*value >= 4r^2 + 3).
bool cpa_count_sufficient(std::int64_t committed_neighbors, std::int32_t r);

}  // namespace rbcast
