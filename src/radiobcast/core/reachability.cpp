#include "radiobcast/core/reachability.h"

#include <deque>

#include "radiobcast/fault/placement.h"
#include "radiobcast/grid/neighborhood.h"

namespace rbcast {

ReachabilityResult honest_reachability(const Torus& torus,
                                       const FaultSet& faults, Coord source,
                                       std::int32_t r, Metric m) {
  ReachabilityResult result;
  result.reachable.assign(static_cast<std::size_t>(torus.node_count()), false);
  const Coord src = torus.wrap(source);
  const auto& table = NeighborhoodTable::get(r, m);

  if (!faults.contains(src)) {
    result.reachable[static_cast<std::size_t>(torus.index(src))] = true;
    std::deque<Coord> queue{src};
    while (!queue.empty()) {
      const Coord v = queue.front();
      queue.pop_front();
      for (const Offset o : table.offsets()) {
        const Coord w = torus.wrap(v + o);
        const auto idx = static_cast<std::size_t>(torus.index(w));
        if (result.reachable[idx] || faults.contains(w)) continue;
        result.reachable[idx] = true;
        queue.push_back(w);
      }
    }
  }

  for (const Coord c : torus.all_coords()) {
    if (c == src || faults.contains(c)) continue;
    result.total_honest += 1;
    if (result.reachable[static_cast<std::size_t>(torus.index(c))]) {
      result.reachable_honest += 1;
    }
  }
  return result;
}

double estimate_percolation_knee(std::int32_t width, std::int32_t height,
                                 std::int32_t r, Metric m, Coord source,
                                 double target_fraction, int trials,
                                 std::uint64_t seed) {
  const Torus torus(width, height);
  auto mean_fraction = [&](double p_f) {
    double sum = 0.0;
    for (int i = 0; i < trials; ++i) {
      Rng rng(hash_seeds(seed, static_cast<std::uint64_t>(i) ^
                                   static_cast<std::uint64_t>(p_f * 1e9)));
      const FaultSet faults = iid_faults(torus, p_f, rng, source);
      sum += honest_reachability(torus, faults, source, r, m).fraction();
    }
    return sum / trials;
  };
  double lo = 0.0, hi = 1.0;
  for (int iter = 0; iter < 20; ++iter) {
    const double mid = (lo + hi) / 2;
    if (mean_fraction(mid) >= target_fraction) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2;
}

}  // namespace rbcast
