#include "radiobcast/core/experiment.h"

#include <algorithm>

#include "radiobcast/fault/placement.h"

namespace rbcast {

const char* to_string(PlacementKind k) {
  switch (k) {
    case PlacementKind::kNone: return "none";
    case PlacementKind::kFullStrip: return "full-strip";
    case PlacementKind::kPuncturedStrip: return "punctured-strip";
    case PlacementKind::kCheckerboardStrip: return "checkerboard-strip";
    case PlacementKind::kRandomBounded: return "random-bounded";
    case PlacementKind::kIid: return "iid";
  }
  return "?";
}

std::optional<PlacementKind> placement_from_string(std::string_view name) {
  for (const PlacementKind k :
       {PlacementKind::kNone, PlacementKind::kFullStrip,
        PlacementKind::kPuncturedStrip, PlacementKind::kCheckerboardStrip,
        PlacementKind::kRandomBounded, PlacementKind::kIid}) {
    if (name == to_string(k)) return k;
  }
  return std::nullopt;
}

namespace {

void merge_faults(FaultSet& into, const Torus& torus, const FaultSet& from) {
  for (const Coord c : from.sorted()) into.add(torus, c);
}

}  // namespace

FaultSet make_faults(const PlacementConfig& placement, const Torus& torus,
                     std::int32_t r, Metric m, std::int64_t t, Coord source,
                     Rng& rng) {
  const std::int32_t width =
      placement.strip_width > 0 ? placement.strip_width : r;
  const std::int32_t period =
      placement.puncture_period > 0 ? placement.puncture_period : 2 * r + 1;
  std::vector<std::int32_t> positions = placement.strip_positions;
  if (positions.empty()) {
    positions = {torus.width() / 4, 3 * torus.width() / 4};
  }

  FaultSet out;
  switch (placement.kind) {
    case PlacementKind::kNone:
      break;
    case PlacementKind::kFullStrip:
      for (const std::int32_t x : positions) {
        merge_faults(out, torus, full_strip(torus, x, width, source));
      }
      break;
    case PlacementKind::kPuncturedStrip:
      for (const std::int32_t x : positions) {
        merge_faults(out, torus,
                     punctured_strip(torus, x, width, period, source));
      }
      break;
    case PlacementKind::kCheckerboardStrip:
      for (const std::int32_t x : positions) {
        merge_faults(out, torus, checkerboard_strip(torus, x, width,
                                                    /*parity=*/0, source));
      }
      break;
    case PlacementKind::kRandomBounded: {
      const std::int64_t target = placement.random_target >= 0
                                      ? placement.random_target
                                      : torus.node_count();
      out = random_bounded(torus, r, m, t, target,
                           /*attempts=*/torus.node_count() * 20, rng, source);
      break;
    }
    case PlacementKind::kIid:
      out = iid_faults(torus, placement.iid_p, rng, source);
      break;
  }
  if (placement.trim && placement.kind != PlacementKind::kIid &&
      placement.kind != PlacementKind::kRandomBounded) {
    trim_to_budget(out, torus, r, m, t);
  }
  return out;
}

TrialOutcome summarize_trial(const SimResult& result, std::int64_t fault_count,
                             std::int64_t nbd_faults) {
  TrialOutcome out;
  out.honest_nodes = result.honest_nodes;
  out.correct_commits = result.correct_commits;
  out.wrong_commits = result.wrong_commits;
  out.rounds = result.rounds;
  out.transmissions = result.transmissions;
  out.fault_count = fault_count;
  out.nbd_faults = nbd_faults;
  out.success = result.success();
  out.coverage = result.coverage();
  out.counters = result.counters;
  out.timers = result.timers;
  return out;
}

void Aggregate::add(const TrialOutcome& trial) {
  runs += 1;
  successes += trial.success ? 1 : 0;
  correct_total += trial.correct_commits;
  honest_total += trial.honest_nodes;
  wrong_total += trial.wrong_commits;
  rounds_total += trial.rounds;
  transmissions_total += trial.transmissions;
  fault_total += trial.fault_count;
  min_coverage = std::min(min_coverage, trial.coverage);
  max_nbd_faults = std::max(max_nbd_faults, trial.nbd_faults);
  counters_total.merge(trial.counters);
  timers_total.merge(trial.timers);
}

void Aggregate::merge(const Aggregate& other) {
  runs += other.runs;
  successes += other.successes;
  correct_total += other.correct_total;
  honest_total += other.honest_total;
  wrong_total += other.wrong_total;
  rounds_total += other.rounds_total;
  transmissions_total += other.transmissions_total;
  fault_total += other.fault_total;
  min_coverage = std::min(min_coverage, other.min_coverage);
  max_nbd_faults = std::max(max_nbd_faults, other.max_nbd_faults);
  counters_total.merge(other.counters_total);
  timers_total.merge(other.timers_total);
}

double Aggregate::mean_coverage() const {
  return honest_total == 0 ? 1.0
                           : static_cast<double>(correct_total) /
                                 static_cast<double>(honest_total);
}

double Aggregate::mean_rounds() const {
  return runs == 0 ? 0.0
                   : static_cast<double>(rounds_total) /
                         static_cast<double>(runs);
}

double Aggregate::mean_transmissions() const {
  return runs == 0 ? 0.0
                   : static_cast<double>(transmissions_total) /
                         static_cast<double>(runs);
}

double Aggregate::mean_fault_count() const {
  return runs == 0 ? 0.0
                   : static_cast<double>(fault_total) /
                         static_cast<double>(runs);
}

// run_repeated / run_repeated_range are defined in campaign/engine.cpp on top
// of the campaign engine so the serial and parallel sweeps share one trial
// runner and one aggregation code path.

}  // namespace rbcast
