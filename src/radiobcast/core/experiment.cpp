#include "radiobcast/core/experiment.h"

#include <algorithm>

#include "radiobcast/fault/placement.h"

namespace rbcast {

const char* to_string(PlacementKind k) {
  switch (k) {
    case PlacementKind::kNone: return "none";
    case PlacementKind::kFullStrip: return "full-strip";
    case PlacementKind::kPuncturedStrip: return "punctured-strip";
    case PlacementKind::kCheckerboardStrip: return "checkerboard-strip";
    case PlacementKind::kRandomBounded: return "random-bounded";
    case PlacementKind::kIid: return "iid";
  }
  return "?";
}

namespace {

void merge(FaultSet& into, const Torus& torus, const FaultSet& from) {
  for (const Coord c : from.sorted()) into.add(torus, c);
}

}  // namespace

FaultSet make_faults(const PlacementConfig& placement, const Torus& torus,
                     std::int32_t r, Metric m, std::int64_t t, Coord source,
                     Rng& rng) {
  const std::int32_t width =
      placement.strip_width > 0 ? placement.strip_width : r;
  const std::int32_t period =
      placement.puncture_period > 0 ? placement.puncture_period : 2 * r + 1;
  std::vector<std::int32_t> positions = placement.strip_positions;
  if (positions.empty()) {
    positions = {torus.width() / 4, 3 * torus.width() / 4};
  }

  FaultSet out;
  switch (placement.kind) {
    case PlacementKind::kNone:
      break;
    case PlacementKind::kFullStrip:
      for (const std::int32_t x : positions) {
        merge(out, torus, full_strip(torus, x, width, source));
      }
      break;
    case PlacementKind::kPuncturedStrip:
      for (const std::int32_t x : positions) {
        merge(out, torus, punctured_strip(torus, x, width, period, source));
      }
      break;
    case PlacementKind::kCheckerboardStrip:
      for (const std::int32_t x : positions) {
        merge(out, torus, checkerboard_strip(torus, x, width, /*parity=*/0,
                                             source));
      }
      break;
    case PlacementKind::kRandomBounded: {
      const std::int64_t target = placement.random_target >= 0
                                      ? placement.random_target
                                      : torus.node_count();
      out = random_bounded(torus, r, m, t, target,
                           /*attempts=*/torus.node_count() * 20, rng, source);
      break;
    }
    case PlacementKind::kIid:
      out = iid_faults(torus, placement.iid_p, rng, source);
      break;
  }
  if (placement.trim && placement.kind != PlacementKind::kIid &&
      placement.kind != PlacementKind::kRandomBounded) {
    trim_to_budget(out, torus, r, m, t);
  }
  return out;
}

Aggregate run_repeated(const SimConfig& base,
                       const PlacementConfig& placement, int reps) {
  Aggregate agg;
  Torus torus(base.width, base.height);
  for (int i = 0; i < reps; ++i) {
    SimConfig cfg = base;
    cfg.seed = hash_seeds(base.seed, static_cast<std::uint64_t>(i));
    Rng rng(cfg.seed);
    const FaultSet faults = make_faults(placement, torus, cfg.r, cfg.metric,
                                        cfg.t, cfg.source, rng);
    const SimResult result = run_simulation(cfg, faults);
    agg.runs += 1;
    agg.successes += result.success() ? 1 : 0;
    agg.mean_coverage += result.coverage();
    agg.min_coverage = std::min(agg.min_coverage, result.coverage());
    agg.wrong_total += result.wrong_commits;
    agg.mean_rounds += static_cast<double>(result.rounds);
    agg.mean_transmissions += static_cast<double>(result.transmissions);
    agg.mean_fault_count += static_cast<double>(faults.size());
    agg.max_nbd_faults =
        std::max(agg.max_nbd_faults,
                 max_closed_nbd_faults(torus, faults, cfg.r, cfg.metric));
  }
  if (agg.runs > 0) {
    agg.mean_coverage /= agg.runs;
    agg.mean_rounds /= agg.runs;
    agg.mean_transmissions /= agg.runs;
    agg.mean_fault_count /= agg.runs;
  }
  return agg;
}

}  // namespace rbcast
