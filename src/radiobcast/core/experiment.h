#pragma once
// Experiment driver: fault-placement recipes plus repeated-run aggregation.
//
// A note on strips and the torus: on the infinite grid one width-r vertical
// strip of faults separates a half-plane from the source (Theorem 4, Fig 8).
// On a torus the x-axis wraps, so the same cut requires *two* strips; placing
// them half a torus apart keeps every closed neighborhood inside at most one
// strip, leaving the per-neighborhood fault count identical to the single-
// strip construction. All strip placements here therefore instantiate the
// pattern at each of the configured strip columns (default: width/4 and
// 3*width/4, enclosing the region opposite the source).

#include <cstdint>
#include <vector>

#include "radiobcast/core/simulation.h"
#include "radiobcast/fault/fault_set.h"
#include "radiobcast/util/rng.h"

namespace rbcast {

enum class PlacementKind : std::uint8_t {
  kNone,               // no faults
  kFullStrip,          // width-r strips, all rows (Theorem 4 construction)
  kPuncturedStrip,     // strips with one node removed per `period` rows
  kCheckerboardStrip,  // half-density strips (Koo's Fig 13 arrangement)
  kRandomBounded,      // uniform random respecting the local bound t
  kIid,                // each node faulty with probability iid_p
};

const char* to_string(PlacementKind k);

struct PlacementConfig {
  PlacementKind kind = PlacementKind::kNone;
  /// Strip x-positions; empty means {width/4, 3*width/4}.
  std::vector<std::int32_t> strip_positions;
  std::int32_t strip_width = 0;      // 0 = r
  std::int32_t puncture_period = 0;  // 0 = 2r+1
  std::int64_t random_target = -1;   // -1 = as many as fit (bounded attempts)
  double iid_p = 0.0;
  /// Greedily remove faults until the local bound t holds. Lets over-budget
  /// patterns (e.g. a checkerboard at t below its density) act as "densest
  /// legal barrier" adversaries.
  bool trim = true;
};

/// Materializes a fault set for one run.
FaultSet make_faults(const PlacementConfig& placement, const Torus& torus,
                     std::int32_t r, Metric m, std::int64_t t, Coord source,
                     Rng& rng);

/// Aggregated outcome of `runs` simulations that differ only in seed.
struct Aggregate {
  int runs = 0;
  int successes = 0;              // full coverage, no wrong commits
  double mean_coverage = 0.0;
  double min_coverage = 1.0;
  std::int64_t wrong_total = 0;   // honest wrong commits across all runs
  double mean_rounds = 0.0;
  double mean_transmissions = 0.0;
  double mean_fault_count = 0.0;
  std::int64_t max_nbd_faults = 0;  // worst closed-neighborhood fault count

  bool all_success() const { return successes == runs; }
};

/// Runs `reps` simulations with seeds base.seed, base.seed+1, ... and fresh
/// fault placements, and aggregates.
Aggregate run_repeated(const SimConfig& base, const PlacementConfig& placement,
                       int reps);

}  // namespace rbcast
