#pragma once
// Experiment driver: fault-placement recipes plus repeated-run aggregation.
//
// A note on strips and the torus: on the infinite grid one width-r vertical
// strip of faults separates a half-plane from the source (Theorem 4, Fig 8).
// On a torus the x-axis wraps, so the same cut requires *two* strips; placing
// them half a torus apart keeps every closed neighborhood inside at most one
// strip, leaving the per-neighborhood fault count identical to the single-
// strip construction. All strip placements here therefore instantiate the
// pattern at each of the configured strip columns (default: width/4 and
// 3*width/4, enclosing the region opposite the source).

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "radiobcast/core/simulation.h"
#include "radiobcast/fault/fault_set.h"
#include "radiobcast/util/rng.h"

namespace rbcast {

enum class PlacementKind : std::uint8_t {
  kNone,               // no faults
  kFullStrip,          // width-r strips, all rows (Theorem 4 construction)
  kPuncturedStrip,     // strips with one node removed per `period` rows
  kCheckerboardStrip,  // half-density strips (Koo's Fig 13 arrangement)
  kRandomBounded,      // uniform random respecting the local bound t
  kIid,                // each node faulty with probability iid_p
};

const char* to_string(PlacementKind k);

/// Inverse of to_string(PlacementKind). Returns nullopt for unknown names.
std::optional<PlacementKind> placement_from_string(std::string_view name);

struct PlacementConfig {
  PlacementKind kind = PlacementKind::kNone;
  /// Strip x-positions; empty means {width/4, 3*width/4}.
  std::vector<std::int32_t> strip_positions;
  std::int32_t strip_width = 0;      // 0 = r
  std::int32_t puncture_period = 0;  // 0 = 2r+1
  std::int64_t random_target = -1;   // -1 = as many as fit (bounded attempts)
  double iid_p = 0.0;
  /// Greedily remove faults until the local bound t holds. Lets over-budget
  /// patterns (e.g. a checkerboard at t below its density) act as "densest
  /// legal barrier" adversaries.
  bool trim = true;
};

/// Materializes a fault set for one run.
FaultSet make_faults(const PlacementConfig& placement, const Torus& torus,
                     std::int32_t r, Metric m, std::int64_t t, Coord source,
                     Rng& rng);

/// Compact summary of one simulation trial — everything the aggregator needs,
/// without retaining the per-node vectors of SimResult. The campaign engine
/// stores one of these per trial so aggregates can be folded in trial order
/// regardless of which worker thread finished first. The campaign journal
/// (campaign/journal.h) serializes exactly the deterministic fields below —
/// timers excluded — which is what lets a killed-and-resumed campaign fold to
/// byte-identical exports.
struct TrialOutcome {
  std::int64_t honest_nodes = 0;
  std::int64_t correct_commits = 0;
  std::int64_t wrong_commits = 0;
  std::int64_t rounds = 0;
  std::uint64_t transmissions = 0;
  std::int64_t fault_count = 0;
  std::int64_t nbd_faults = 0;  // worst closed-neighborhood fault count
  bool success = false;
  double coverage = 1.0;
  /// Observability counters of the trial (deterministic given the seed).
  Counters counters;
  /// Wall-clock phase split (nondeterministic; excluded from byte-identical
  /// payloads — see campaign/report.h).
  PhaseTimers timers;
};

/// Summarizes one SimResult (plus the fault-set statistics of the run it was
/// scored against) into the aggregation record.
TrialOutcome summarize_trial(const SimResult& result, std::int64_t fault_count,
                             std::int64_t nbd_faults);

/// Aggregated outcome of `runs` simulations that differ only in seed.
///
/// All accumulated quantities are *sums of integers* (coverage is pooled:
/// total correct commits over total honest nodes), so merging two aggregates
/// is exact and associative: run_repeated(reps=a) ⊕ run_repeated(reps=b over
/// the continuation seeds) equals run_repeated(reps=a+b) bit for bit. This is
/// what lets the parallel campaign engine combine per-trial partials in any
/// grouping and still produce results identical to a serial run.
struct Aggregate {
  int runs = 0;
  int successes = 0;              // full coverage, no wrong commits
  std::int64_t correct_total = 0;  // honest correct commits across all runs
  std::int64_t honest_total = 0;   // honest (non-source) nodes across all runs
  std::int64_t wrong_total = 0;    // honest wrong commits across all runs
  std::int64_t rounds_total = 0;
  std::uint64_t transmissions_total = 0;
  std::int64_t fault_total = 0;     // faults placed across all runs
  double min_coverage = 1.0;        // worst single-run coverage
  std::int64_t max_nbd_faults = 0;  // worst closed-neighborhood fault count
  /// Summed observability counters (integer sums — merge-exact like every
  /// other accumulated field; last_commit_round keeps the max).
  Counters counters_total;
  /// Summed wall-clock phase timings. Nondeterministic: the fold order is
  /// fixed (trial order), so merging stays reproducible within a run, but the
  /// values differ run to run and are excluded from deterministic payloads.
  PhaseTimers timers_total;

  /// Folds one trial into the aggregate.
  void add(const TrialOutcome& trial);

  /// Exact, associative combination of two aggregates (disjoint run sets).
  void merge(const Aggregate& other);

  /// Pooled coverage: correct commits / honest-node slots over all runs.
  double mean_coverage() const;
  double mean_rounds() const;
  double mean_transmissions() const;
  double mean_fault_count() const;

  bool all_success() const { return successes == runs; }
};

/// Runs `reps` simulations with seeds hash_seeds(base.seed, 0.. reps-1) and
/// fresh fault placements, and aggregates. Defined in campaign/engine.cpp:
/// this is a one-cell campaign on the serial path, so the repeated-run and
/// campaign code paths share one trial runner and one aggregation routine.
Aggregate run_repeated(const SimConfig& base, const PlacementConfig& placement,
                       int reps);

/// As run_repeated, but over the rep window [first_rep, first_rep + reps):
/// trial i uses seed hash_seeds(base.seed, first_rep + i). Splitting a run
/// into ranges and merging the aggregates reproduces the unsplit run exactly.
Aggregate run_repeated_range(const SimConfig& base,
                             const PlacementConfig& placement, int first_rep,
                             int reps);

}  // namespace rbcast
