#include "radiobcast/core/analysis.h"

#include <cmath>

namespace rbcast {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

std::int64_t linf_nbd_size(std::int32_t r) {
  const std::int64_t side = 2 * static_cast<std::int64_t>(r) + 1;
  return side * side - 1;
}

std::int64_t r_2r_plus_1(std::int32_t r) {
  return static_cast<std::int64_t>(r) * (2 * static_cast<std::int64_t>(r) + 1);
}

std::int64_t byz_linf_achievable_max(std::int32_t r) {
  // Largest integer strictly below n/2 is ceil(n/2) - 1.
  const std::int64_t n = r_2r_plus_1(r);
  return (n + 1) / 2 - 1;
}

std::int64_t byz_linf_impossible_min(std::int32_t r) {
  const std::int64_t n = r_2r_plus_1(r);
  return (n + 1) / 2;  // ceil(n/2)
}

std::int64_t crash_linf_achievable_max(std::int32_t r) {
  return r_2r_plus_1(r) - 1;
}

std::int64_t crash_linf_impossible_min(std::int32_t r) {
  return r_2r_plus_1(r);
}

std::int64_t cpa_linf_achievable_max(std::int32_t r) {
  return 2 * static_cast<std::int64_t>(r) * r / 3;
}

double koo_cpa_linf_bound(std::int32_t r) {
  return 0.5 * r * (r + std::sqrt(r / 2.0) + 1.0);
}

double koo_cpa_l2_bound(std::int32_t r) {
  return 0.25 * r * (r + std::sqrt(r / 2.0) + 1.0) - 2.0;
}

double l2_byz_achievable_approx(std::int32_t r) { return 0.23 * kPi * r * r; }
double l2_byz_impossible_approx(std::int32_t r) { return 0.30 * kPi * r * r; }
double l2_crash_achievable_approx(std::int32_t r) { return 0.46 * kPi * r * r; }
double l2_crash_impossible_approx(std::int32_t r) { return 0.60 * kPi * r * r; }

namespace {
std::int64_t ceil_half(std::int32_t r) { return (r + 1) / 2; }
}  // namespace

std::int64_t cpa_stage1_committed_neighbors(std::int32_t r) {
  return (r + 1 + ceil_half(r)) * static_cast<std::int64_t>(r);
}

std::int64_t cpa_row_committed_neighbors(std::int32_t r, std::int32_t i) {
  const std::int64_t ceil_3r_2 = (3 * static_cast<std::int64_t>(r) + 1) / 2;
  return (ceil_3r_2 + 1) * (r + 1 - i) +
         static_cast<std::int64_t>(i - 1) * (2 * ceil_half(r) + 1) +
         static_cast<std::int64_t>(i - 1) * (ceil_half(r) - i + 1);
}

std::int32_t cpa_guaranteed_stack_rows(std::int32_t r) {
  // floor(r / sqrt(6)) computed exactly: largest k with 6k^2 <= r^2.
  std::int32_t k = 0;
  while (6 * static_cast<std::int64_t>(k + 1) * (k + 1) <=
         static_cast<std::int64_t>(r) * r) {
    ++k;
  }
  return k;
}

std::int64_t cpa_stage2_committed_neighbors(std::int32_t r) {
  return cpa_stage1_committed_neighbors(r) +
         2 * ceil_half(r) * static_cast<std::int64_t>(r / 3);
}

bool cpa_count_sufficient(std::int64_t committed_neighbors, std::int32_t r) {
  // committed >= (4/3) r^2 + 1  <=>  3*committed >= 4 r^2 + 3.
  return 3 * committed_neighbors >=
         4 * static_cast<std::int64_t>(r) * r + 3;
}

}  // namespace rbcast
