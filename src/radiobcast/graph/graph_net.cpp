#include "radiobcast/graph/graph_net.h"

#include <stdexcept>
#include <string>
#include <utility>

namespace rbcast {

const RadioGraph& GraphNodeContext::graph() const { return net_->graph(); }
std::int64_t GraphNodeContext::round() const { return net_->round(); }

void GraphNodeContext::broadcast(GraphMessage msg) {
  net_->queue_broadcast(self_, std::move(msg));
}

GraphNetwork::GraphNetwork(RadioGraph graph)
    : graph_(std::move(graph)),
      behaviors_(static_cast<std::size_t>(graph_.node_count())) {}

void GraphNetwork::set_behavior(NodeId v,
                                std::unique_ptr<GraphBehavior> behavior) {
  behaviors_[static_cast<std::size_t>(v)] = std::move(behavior);
}

GraphBehavior* GraphNetwork::behavior(NodeId v) {
  return behaviors_[static_cast<std::size_t>(v)].get();
}

const GraphBehavior* GraphNetwork::behavior(NodeId v) const {
  return behaviors_[static_cast<std::size_t>(v)].get();
}

void GraphNetwork::queue_broadcast(NodeId sender, GraphMessage msg) {
  outbox_.push_back(GraphEnvelope{sender, std::move(msg)});
}

void GraphNetwork::start() {
  if (started_) throw std::logic_error("GraphNetwork::start called twice");
  for (NodeId v = 0; v < graph_.node_count(); ++v) {
    if (behaviors_[static_cast<std::size_t>(v)] == nullptr) {
      throw std::logic_error("node " + std::to_string(v) + " has no behavior");
    }
    GraphNodeContext ctx(*this, v);
    behaviors_[static_cast<std::size_t>(v)]->on_start(ctx);
  }
  started_ = true;
  pending_ = std::move(outbox_);
  outbox_.clear();
}

void GraphNetwork::run_round() {
  if (!started_) throw std::logic_error("GraphNetwork::run_round before start");
  ++round_;
  for (const GraphEnvelope& env : pending_) {
    transmissions_ += 1;
    for (const NodeId receiver : graph_.neighbors(env.sender)) {
      GraphNodeContext ctx(*this, receiver);
      behaviors_[static_cast<std::size_t>(receiver)]->on_receive(ctx, env);
    }
  }
  pending_.clear();
  for (NodeId v = 0; v < graph_.node_count(); ++v) {
    GraphNodeContext ctx(*this, v);
    behaviors_[static_cast<std::size_t>(v)]->on_round_end(ctx);
  }
  pending_ = std::move(outbox_);
  outbox_.clear();
}

std::int64_t GraphNetwork::run_until_quiescent(std::int64_t max_rounds) {
  std::int64_t rounds = 0;
  while (!quiescent() && rounds < max_rounds) {
    run_round();
    ++rounds;
  }
  return rounds;
}

}  // namespace rbcast
