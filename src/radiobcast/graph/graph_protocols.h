#pragma once
// Broadcast protocols on arbitrary radio graphs (Sections III and V).
//
//  * GraphCpa — the Certified Propagation Algorithm: source neighbors commit
//    directly; everyone else commits on hearing the same value from t+1
//    distinct neighbors; one re-broadcast. (The simple protocol of [Koo04],
//    called CPA by [Pelc-Peleg05].)
//
//  * GraphRpa — the Relaxed Propagation Algorithm: additionally circulates
//    HEARD reports (up to a configurable relay depth) and applies the
//    Section V sufficient condition with full topology knowledge: a decider
//    reliably determines (origin, v) once it holds a node-disjoint family of
//    k reported paths whose relayer union S admits at most f(S) <= k-1 legal
//    faults (max_legal_faults_within), so that at least one report is relayed
//    by honest nodes only. Commits once t+1 determined committers of v lie
//    in one neighborhood.
//
// [Pelc-Peleg05] show RPA is strictly more powerful than CPA on some graphs;
// bench_cpa_rpa_separation verifies that on make_separation_graph(): CPA
// stalls even fault-free while RPA completes under EVERY legal placement.

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "radiobcast/graph/graph_net.h"

namespace rbcast {

/// The designated (correct) source.
class GraphSourceBehavior final : public GraphBehavior {
 public:
  explicit GraphSourceBehavior(std::uint8_t value) : value_(value) {}
  void on_start(GraphNodeContext& ctx) override;
  void on_receive(GraphNodeContext&, const GraphEnvelope&) override {}
  std::optional<std::uint8_t> committed_value() const override {
    return value_;
  }

 private:
  std::uint8_t value_;
};

class GraphCpaBehavior final : public GraphBehavior {
 public:
  GraphCpaBehavior(std::int64_t t, NodeId source) : t_(t), source_(source) {}
  void on_receive(GraphNodeContext& ctx, const GraphEnvelope& env) override;
  std::optional<std::uint8_t> committed_value() const override {
    return committed_;
  }

 private:
  void commit(GraphNodeContext& ctx, std::uint8_t value);

  std::int64_t t_;
  NodeId source_;
  std::optional<std::uint8_t> committed_;
  std::map<NodeId, std::uint8_t> first_claim_;
  std::int64_t claims_[2] = {0, 0};
};

class GraphRpaBehavior final : public GraphBehavior {
 public:
  GraphRpaBehavior(std::int64_t t, NodeId source, int max_relay_depth = 3);

  void on_receive(GraphNodeContext& ctx, const GraphEnvelope& env) override;
  void on_round_end(GraphNodeContext& ctx) override;
  std::optional<std::uint8_t> committed_value() const override {
    return committed_;
  }

  std::int64_t determinations() const {
    return static_cast<std::int64_t>(determined_.size());
  }

 private:
  struct Evidence {
    std::vector<std::vector<NodeId>> reports;  // relayer chains, deduped
    std::set<std::vector<NodeId>> dedup;
    std::size_t evaluated_at = 0;
  };

  void handle_committed(GraphNodeContext& ctx, const GraphEnvelope& env);
  void handle_heard(GraphNodeContext& ctx, const GraphEnvelope& env);
  void determine(GraphNodeContext& ctx, NodeId origin, std::uint8_t value);
  void commit(GraphNodeContext& ctx, std::uint8_t value);
  bool satisfies_section_v(const RadioGraph& graph,
                           const Evidence& evidence) const;

  std::int64_t t_;
  NodeId source_;
  int max_relay_depth_;
  /// Evidence kept per (origin, value); bounded to keep the exponential
  /// disjoint-subfamily search tiny (sound: dropping reports only delays).
  static constexpr std::size_t kMaxReports = 12;
  std::optional<std::uint8_t> committed_;
  std::map<NodeId, std::uint8_t> first_committed_;
  std::set<std::pair<NodeId, std::uint8_t>> determined_;
  std::map<std::pair<NodeId, std::uint8_t>, Evidence> evidence_;
  std::set<std::pair<NodeId, std::uint8_t>> dirty_;
  std::map<std::pair<NodeId, std::uint8_t>, std::int64_t> center_counts_;
};

/// Silent (crashed-from-start) faulty node.
class GraphSilentBehavior final : public GraphBehavior {
 public:
  void on_receive(GraphNodeContext&, const GraphEnvelope&) override {}
};

/// Byzantine liar: announces the wrong value and flips every report.
class GraphLyingBehavior final : public GraphBehavior {
 public:
  explicit GraphLyingBehavior(std::uint8_t wrong_value, int max_relay_depth = 3)
      : wrong_value_(wrong_value), max_relay_depth_(max_relay_depth) {}
  void on_start(GraphNodeContext& ctx) override;
  void on_receive(GraphNodeContext& ctx, const GraphEnvelope& env) override;

 private:
  std::uint8_t wrong_value_;
  int max_relay_depth_;
  std::set<std::pair<NodeId, std::vector<NodeId>>> sent_;
};

// ---------------------------------------------------------------------------
// Whole-run driver
// ---------------------------------------------------------------------------

enum class GraphProtocol : std::uint8_t { kCpa, kRpa };
enum class GraphAdversary : std::uint8_t { kSilent, kLying };

struct GraphSimResult {
  std::int64_t honest_nodes = 0;
  std::int64_t correct_commits = 0;
  std::int64_t wrong_commits = 0;
  std::int64_t undecided = 0;
  std::int64_t rounds = 0;
  std::uint64_t transmissions = 0;

  bool success() const {
    return wrong_commits == 0 && correct_commits == honest_nodes;
  }
};

/// Runs one broadcast on `graph` from `source` with the given protocol and
/// fault placement. Throws if the source is faulty.
GraphSimResult run_graph_simulation(const RadioGraph& graph, NodeId source,
                                    std::int64_t t, GraphProtocol protocol,
                                    GraphAdversary adversary,
                                    const GraphFaultSet& faults,
                                    std::uint8_t value = 1,
                                    std::int64_t max_rounds = 200);

}  // namespace rbcast
