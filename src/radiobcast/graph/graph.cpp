#include "radiobcast/graph/graph.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <stdexcept>

#include "radiobcast/grid/neighborhood.h"
#include "radiobcast/grid/torus.h"

namespace rbcast {

RadioGraph::RadioGraph(std::int32_t node_count)
    : adjacency_(static_cast<std::size_t>(node_count)) {
  if (node_count < 1) throw std::invalid_argument("graph needs >= 1 node");
}

void RadioGraph::add_edge(NodeId a, NodeId b) {
  if (a == b) throw std::invalid_argument("self-loops are not allowed");
  if (a < 0 || b < 0 || a >= node_count() || b >= node_count()) {
    throw std::invalid_argument("edge endpoint out of range");
  }
  auto& na = adjacency_[static_cast<std::size_t>(a)];
  if (std::find(na.begin(), na.end(), b) != na.end()) return;  // idempotent
  na.insert(std::upper_bound(na.begin(), na.end(), b), b);
  auto& nb = adjacency_[static_cast<std::size_t>(b)];
  nb.insert(std::upper_bound(nb.begin(), nb.end(), a), a);
}

bool RadioGraph::adjacent(NodeId a, NodeId b) const {
  const auto& na = adjacency_[static_cast<std::size_t>(a)];
  return std::binary_search(na.begin(), na.end(), b);
}

const std::vector<NodeId>& RadioGraph::neighbors(NodeId v) const {
  return adjacency_[static_cast<std::size_t>(v)];
}

std::int64_t RadioGraph::edge_count() const {
  std::int64_t twice = 0;
  for (const auto& adj : adjacency_) {
    twice += static_cast<std::int64_t>(adj.size());
  }
  return twice / 2;
}

bool RadioGraph::connected() const {
  std::vector<bool> seen(static_cast<std::size_t>(node_count()), false);
  std::deque<NodeId> queue{0};
  seen[0] = true;
  std::int32_t reached = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (const NodeId w : neighbors(v)) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        ++reached;
        queue.push_back(w);
      }
    }
  }
  return reached == node_count();
}

std::int64_t closed_nbd_faults(const RadioGraph& graph,
                               const GraphFaultSet& faults, NodeId v) {
  std::int64_t count = faults[static_cast<std::size_t>(v)] ? 1 : 0;
  for (const NodeId w : graph.neighbors(v)) {
    if (faults[static_cast<std::size_t>(w)]) ++count;
  }
  return count;
}

bool satisfies_local_bound(const RadioGraph& graph, const GraphFaultSet& faults,
                           std::int64_t t) {
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    if (closed_nbd_faults(graph, faults, v) > t) return false;
  }
  return true;
}

std::vector<GraphFaultSet> enumerate_legal_placements(const RadioGraph& graph,
                                                      std::int64_t t,
                                                      NodeId protected_node) {
  const std::int32_t n = graph.node_count();
  if (n > 24) {
    throw std::invalid_argument(
        "enumerate_legal_placements is exponential; use graphs with <= 24 "
        "nodes");
  }
  std::vector<GraphFaultSet> out;
  // Depth-first inclusion/exclusion with incremental bound checking prunes
  // most of the 2^n space for small t.
  GraphFaultSet current(static_cast<std::size_t>(n), false);
  std::vector<NodeId> order;
  for (NodeId v = 0; v < n; ++v) {
    if (v != protected_node) order.push_back(v);
  }
  auto can_add = [&](NodeId v) {
    if (closed_nbd_faults(graph, current, v) + 1 > t) return false;
    for (const NodeId w : graph.neighbors(v)) {
      if (closed_nbd_faults(graph, current, w) + 1 > t) return false;
    }
    return true;
  };
  // Iterative stack of (position, include?) decisions via recursion.
  std::function<void(std::size_t)> recurse = [&](std::size_t pos) {
    if (pos == order.size()) {
      out.push_back(current);
      return;
    }
    const NodeId v = order[pos];
    recurse(pos + 1);  // exclude
    if (can_add(v)) {
      current[static_cast<std::size_t>(v)] = true;
      recurse(pos + 1);  // include
      current[static_cast<std::size_t>(v)] = false;
    }
  };
  recurse(0);
  return out;
}

std::int64_t max_legal_faults_within(const RadioGraph& graph,
                                     const std::vector<NodeId>& subset,
                                     std::int64_t t) {
  GraphFaultSet current(static_cast<std::size_t>(graph.node_count()), false);
  auto can_add = [&](NodeId v) {
    if (closed_nbd_faults(graph, current, v) + 1 > t) return false;
    for (const NodeId w : graph.neighbors(v)) {
      if (closed_nbd_faults(graph, current, w) + 1 > t) return false;
    }
    return true;
  };
  std::int64_t best = 0;
  std::function<void(std::size_t, std::int64_t)> recurse =
      [&](std::size_t pos, std::int64_t placed) {
        best = std::max(best, placed);
        if (pos == subset.size()) return;
        if (placed + static_cast<std::int64_t>(subset.size() - pos) <= best) {
          return;  // bound
        }
        const NodeId v = subset[pos];
        if (can_add(v)) {
          current[static_cast<std::size_t>(v)] = true;
          recurse(pos + 1, placed + 1);
          current[static_cast<std::size_t>(v)] = false;
        }
        recurse(pos + 1, placed);
      };
  recurse(0, 0);
  return best;
}

RadioGraph make_torus_graph(std::int32_t width, std::int32_t height,
                            std::int32_t r, bool l2_metric) {
  const Torus torus(width, height);
  const Metric metric = l2_metric ? Metric::kL2 : Metric::kLInf;
  const auto& table = NeighborhoodTable::get(r, metric);
  RadioGraph graph(static_cast<std::int32_t>(torus.node_count()));
  for (const Coord c : torus.all_coords()) {
    for (const Offset o : table.offsets()) {
      const Coord d = torus.wrap(c + o);
      if (torus.index(c) < torus.index(d)) {
        graph.add_edge(torus.index(c), torus.index(d));
      }
    }
  }
  return graph;
}

RadioGraph make_separation_graph() {
  RadioGraph g(14);
  const NodeId s = 0;
  const NodeId a[3] = {1, 2, 3};
  const NodeId u = 13;
  auto w = [](int branch, int j) { return static_cast<NodeId>(4 + 3 * branch + j); };
  for (int i = 0; i < 3; ++i) {
    g.add_edge(s, a[i]);
    for (int j = 0; j < 3; ++j) {
      g.add_edge(a[i], w(i, j));
      g.add_edge(u, w(i, j));
    }
  }
  // Cross edges between branches: two disjoint routes (avoiding u) from each
  // middleman to each far branch's a.
  for (int i = 0; i < 3; ++i) {
    for (int k = i + 1; k < 3; ++k) {
      for (int j = 0; j < 3; ++j) {
        g.add_edge(w(i, j), w(k, j));
        g.add_edge(w(i, j), w(k, (j + 1) % 3));
      }
    }
  }
  return g;
}

std::string separation_node_name(NodeId v) {
  if (v == 0) return "s";
  if (v >= 1 && v <= 3) return "a" + std::to_string(v);
  if (v >= 4 && v <= 12) {
    const int branch = (v - 4) / 3 + 1;
    const int j = (v - 4) % 3 + 1;
    return "w" + std::to_string(branch) + std::to_string(j);
  }
  if (v == 13) return "u";
  return "n" + std::to_string(v);
}

}  // namespace rbcast
