#pragma once
// Arbitrary radio graphs (Sections III and V).
//
// The paper's Section V states a general sufficient condition for reliable
// broadcast on an arbitrary graph G = (V, E) under the locally bounded fault
// model: for each pair (v1, v2), either they are adjacent, or there is a
// subset S ⊆ V in which the adversary can place at most f faults without
// violating the per-neighborhood bound t, with v1 and v2 connected by 2f+1
// node-disjoint paths inside S. Section III contrasts CPA (the simple
// protocol) with RPA (indirect reports) on arbitrary graphs, citing
// [Pelc-Peleg05]'s result that RPA is strictly more powerful.
//
// This module provides the graph substrate: an undirected graph with radio
// (local broadcast) semantics, the locally bounded fault machinery (legal
// placement validation and enumeration, and the "maximum legal faults inside
// S" quantity f(S) from the sufficient condition), plus builders for the
// graphs the experiments use.

#include <cstdint>
#include <string>
#include <vector>

namespace rbcast {

/// Node ids are dense indices 0..node_count()-1.
using NodeId = std::int32_t;

class RadioGraph {
 public:
  explicit RadioGraph(std::int32_t node_count);

  std::int32_t node_count() const {
    return static_cast<std::int32_t>(adjacency_.size());
  }

  /// Adds an undirected edge (idempotent; self-loops rejected).
  void add_edge(NodeId a, NodeId b);

  bool adjacent(NodeId a, NodeId b) const;

  /// Sorted neighbor ids.
  const std::vector<NodeId>& neighbors(NodeId v) const;

  std::int64_t edge_count() const;

  /// True iff every node can reach every other.
  bool connected() const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
};

/// A fault placement on a graph: characteristic vector by node id.
using GraphFaultSet = std::vector<bool>;

/// Number of faults in the closed neighborhood N(v) ∪ {v}.
std::int64_t closed_nbd_faults(const RadioGraph& graph,
                               const GraphFaultSet& faults, NodeId v);

/// True iff every closed neighborhood contains at most t faults (the locally
/// bounded constraint, in the same closed-ball form as the grid validator).
bool satisfies_local_bound(const RadioGraph& graph, const GraphFaultSet& faults,
                           std::int64_t t);

/// All legal fault placements that avoid `protected_node` (the source),
/// enumerated exhaustively — exponential, intended for the small analysis
/// graphs (node_count <= ~20). Includes the empty placement.
std::vector<GraphFaultSet> enumerate_legal_placements(const RadioGraph& graph,
                                                      std::int64_t t,
                                                      NodeId protected_node);

/// f(S) from the Section V sufficient condition: the maximum number of
/// faults the adversary can place inside S without violating the bound t
/// anywhere in the graph. Exhaustive branch-and-bound over subsets of S
/// (|S| is small in every use).
std::int64_t max_legal_faults_within(const RadioGraph& graph,
                                     const std::vector<NodeId>& subset,
                                     std::int64_t t);

// ---------------------------------------------------------------------------
// Builders
// ---------------------------------------------------------------------------

/// The grid/torus as a RadioGraph (for cross-checking graph protocols
/// against the native grid implementation). Node id = torus index.
RadioGraph make_torus_graph(std::int32_t width, std::int32_t height,
                            std::int32_t r, bool l2_metric);

/// The CPA ⊊ RPA separation graph (t = 1), in the spirit of [Pelc-Peleg05]:
///
///   node 0        — the source s (degree 3: 2t+1 disjoint outward routes)
///   nodes 1..3    — a1..a3: adjacent to s only among themselves' layer
///                   (they commit directly; NOT adjacent to each other)
///   nodes 4..12   — w_ij (i,j in 1..3): middleman j of branch i, adjacent
///                   to a_i and to u
///   node 13       — u: adjacent to all nine middlemen, not to the a's or s
///   cross edges   — w_ij ~ w_kj and w_ij ~ w_k((j+1) mod 3) for every pair
///                   of branches i != k: two disjoint indirect routes from
///                   every middleman to each far a_k, avoiding u.
///
/// Fault-free, CPA with t=1 stalls at every middleman (exactly one committed
/// neighbor each) and hence at u, while RPA completes; and RPA completes
/// under EVERY legal placement (all of which are singletons — any two nodes
/// here share a closed neighborhood), verified exhaustively in the
/// tests/bench.
RadioGraph make_separation_graph();

/// Names for the separation graph's nodes (diagnostics).
std::string separation_node_name(NodeId v);

constexpr NodeId kSeparationSource = 0;
constexpr std::int64_t kSeparationT = 1;

}  // namespace rbcast
