#pragma once
// Synchronous radio round engine over an arbitrary RadioGraph — the same
// reliable-local-broadcast semantics as net/network.h (every graph neighbor
// hears every transmission, true transmitter identity, per-sender FIFO),
// with node ids instead of grid coordinates.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "radiobcast/graph/graph.h"

namespace rbcast {

/// A protocol message on a graph: COMMITTED(origin, v) when relayers is
/// empty, otherwise HEARD(relayers..., origin, v) with the last relayer
/// being the transmitter.
struct GraphMessage {
  std::uint8_t value = 0;
  NodeId origin = 0;
  std::vector<NodeId> relayers;

  friend bool operator==(const GraphMessage&, const GraphMessage&) = default;
};

struct GraphEnvelope {
  NodeId sender = 0;
  GraphMessage msg;
};

class GraphNetwork;

class GraphNodeContext {
 public:
  GraphNodeContext(GraphNetwork& net, NodeId self) : net_(&net), self_(self) {}

  NodeId self() const { return self_; }
  const RadioGraph& graph() const;
  std::int64_t round() const;
  void broadcast(GraphMessage msg);

 private:
  GraphNetwork* net_;
  NodeId self_;
};

class GraphBehavior {
 public:
  virtual ~GraphBehavior() = default;
  virtual void on_start(GraphNodeContext& /*ctx*/) {}
  virtual void on_receive(GraphNodeContext& ctx, const GraphEnvelope& env) = 0;
  virtual void on_round_end(GraphNodeContext& /*ctx*/) {}
  virtual std::optional<std::uint8_t> committed_value() const {
    return std::nullopt;
  }
};

class GraphNetwork {
 public:
  explicit GraphNetwork(RadioGraph graph);

  const RadioGraph& graph() const { return graph_; }
  std::int64_t round() const { return round_; }

  void set_behavior(NodeId v, std::unique_ptr<GraphBehavior> behavior);
  GraphBehavior* behavior(NodeId v);
  const GraphBehavior* behavior(NodeId v) const;

  void start();
  void run_round();
  bool quiescent() const { return pending_.empty(); }
  std::int64_t run_until_quiescent(std::int64_t max_rounds);

  std::uint64_t transmissions() const { return transmissions_; }

 private:
  friend class GraphNodeContext;
  void queue_broadcast(NodeId sender, GraphMessage msg);

  RadioGraph graph_;
  std::int64_t round_ = 0;
  bool started_ = false;
  std::vector<std::unique_ptr<GraphBehavior>> behaviors_;
  std::vector<GraphEnvelope> pending_;
  std::vector<GraphEnvelope> outbox_;
  std::uint64_t transmissions_ = 0;
};

}  // namespace rbcast
