#include "radiobcast/graph/graph_protocols.h"

#include <algorithm>
#include <stdexcept>

namespace rbcast {

// ---------------------------------------------------------------------------
// Source
// ---------------------------------------------------------------------------

void GraphSourceBehavior::on_start(GraphNodeContext& ctx) {
  ctx.broadcast(GraphMessage{value_, ctx.self(), {}});
}

// ---------------------------------------------------------------------------
// CPA
// ---------------------------------------------------------------------------

void GraphCpaBehavior::commit(GraphNodeContext& ctx, std::uint8_t value) {
  committed_ = value;
  ctx.broadcast(GraphMessage{value, ctx.self(), {}});
}

void GraphCpaBehavior::on_receive(GraphNodeContext& ctx,
                                  const GraphEnvelope& env) {
  if (committed_.has_value()) return;
  if (!env.msg.relayers.empty()) return;  // CPA ignores HEARD traffic
  if (env.msg.origin != env.sender) return;  // no spoofing
  if (env.sender == source_) {
    commit(ctx, env.msg.value);
    return;
  }
  const auto [it, inserted] = first_claim_.emplace(env.sender, env.msg.value);
  if (!inserted) return;
  claims_[env.msg.value & 1] += 1;
  if (claims_[env.msg.value & 1] >= t_ + 1) commit(ctx, env.msg.value);
}

// ---------------------------------------------------------------------------
// RPA
// ---------------------------------------------------------------------------

GraphRpaBehavior::GraphRpaBehavior(std::int64_t t, NodeId source,
                                   int max_relay_depth)
    : t_(t), source_(source), max_relay_depth_(max_relay_depth) {}

void GraphRpaBehavior::commit(GraphNodeContext& ctx, std::uint8_t value) {
  if (committed_.has_value()) return;
  committed_ = value;
  ctx.broadcast(GraphMessage{value, ctx.self(), {}});
}

void GraphRpaBehavior::determine(GraphNodeContext& ctx, NodeId origin,
                                 std::uint8_t value) {
  if (!determined_.insert({origin, value}).second) return;
  evidence_.erase({origin, value});
  // Commit once t+1 determined committers of one value share a neighborhood:
  // bump the counter of every node whose neighborhood contains `origin`.
  const RadioGraph& graph = ctx.graph();
  for (const NodeId c : graph.neighbors(origin)) {
    auto& count = center_counts_[{c, value}];
    count += 1;
    if (count >= t_ + 1) commit(ctx, value);
  }
}

void GraphRpaBehavior::on_receive(GraphNodeContext& ctx,
                                  const GraphEnvelope& env) {
  if (env.msg.relayers.empty()) {
    handle_committed(ctx, env);
  } else {
    handle_heard(ctx, env);
  }
}

void GraphRpaBehavior::handle_committed(GraphNodeContext& ctx,
                                        const GraphEnvelope& env) {
  if (env.msg.origin != env.sender) return;  // no spoofing
  const auto [it, inserted] = first_committed_.emplace(env.sender,
                                                       env.msg.value);
  if (!inserted) return;
  const std::uint8_t v = it->second;
  ctx.broadcast(GraphMessage{v, env.sender, {ctx.self()}});
  if (env.sender == source_) commit(ctx, v);
  determine(ctx, env.sender, v);
}

void GraphRpaBehavior::handle_heard(GraphNodeContext& ctx,
                                    const GraphEnvelope& env) {
  const RadioGraph& graph = ctx.graph();
  const GraphMessage& msg = env.msg;
  if (static_cast<int>(msg.relayers.size()) > max_relay_depth_) return;
  if (msg.relayers.back() != env.sender) return;  // no spoofing
  const NodeId self = ctx.self();
  const NodeId origin = msg.origin;
  if (origin == self) return;
  // Chain plausibility: consecutive adjacency, all distinct, avoids us.
  NodeId prev = origin;
  for (const NodeId relayer : msg.relayers) {
    if (relayer == origin || relayer == self) return;
    if (std::count(msg.relayers.begin(), msg.relayers.end(), relayer) != 1) {
      return;
    }
    if (!graph.adjacent(prev, relayer)) return;
    prev = relayer;
  }

  const std::uint8_t v = msg.value & 1;
  if (!determined_.count({origin, v})) {
    Evidence& ev = evidence_[{origin, v}];
    if (ev.reports.size() < kMaxReports &&
        ev.dedup.insert(msg.relayers).second) {
      ev.reports.push_back(msg.relayers);
      dirty_.insert({origin, v});
    }
  }

  if (static_cast<int>(msg.relayers.size()) < max_relay_depth_) {
    std::vector<NodeId> extended = msg.relayers;
    extended.push_back(self);
    ctx.broadcast(GraphMessage{v, origin, std::move(extended)});
  }
}

bool GraphRpaBehavior::satisfies_section_v(const RadioGraph& graph,
                                           const Evidence& evidence) const {
  const auto& reports = evidence.reports;
  const auto n = reports.size();
  if (n == 0) return false;
  // Pairwise conflicts (shared relayers).
  std::vector<std::uint32_t> conflicts(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      bool share = false;
      for (const NodeId a : reports[i]) {
        if (std::find(reports[j].begin(), reports[j].end(), a) !=
            reports[j].end()) {
          share = true;
          break;
        }
      }
      if (share) {
        conflicts[i] |= (1u << j);
        conflicts[j] |= (1u << i);
      }
    }
  }
  // Enumerate disjoint subfamilies; accept if some family of k reports has a
  // relayer union S with max_legal_faults_within(S) <= k-1.
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    bool disjoint_family = true;
    int k = 0;
    for (std::size_t i = 0; i < n && disjoint_family; ++i) {
      if (!(mask & (1u << i))) continue;
      ++k;
      if (conflicts[i] & mask) disjoint_family = false;
    }
    if (!disjoint_family) continue;
    std::vector<NodeId> union_s;
    for (std::size_t i = 0; i < n; ++i) {
      if (!(mask & (1u << i))) continue;
      union_s.insert(union_s.end(), reports[i].begin(), reports[i].end());
    }
    std::sort(union_s.begin(), union_s.end());
    union_s.erase(std::unique(union_s.begin(), union_s.end()), union_s.end());
    // Keep the exponential f(S) search tiny; a union this large would need
    // an equally large disjoint family to pass anyway.
    if (union_s.size() > 14) continue;
    if (max_legal_faults_within(graph, union_s, t_) + 1 <= k) return true;
  }
  return false;
}

void GraphRpaBehavior::on_round_end(GraphNodeContext& ctx) {
  if (dirty_.empty()) return;
  const auto keys = std::vector<std::pair<NodeId, std::uint8_t>>(
      dirty_.begin(), dirty_.end());
  dirty_.clear();
  for (const auto& key : keys) {
    const auto it = evidence_.find(key);
    if (it == evidence_.end()) continue;
    Evidence& ev = it->second;
    if (ev.reports.size() == ev.evaluated_at) continue;
    ev.evaluated_at = ev.reports.size();
    if (satisfies_section_v(ctx.graph(), ev)) {
      determine(ctx, key.first, key.second);
    }
  }
}

// ---------------------------------------------------------------------------
// Adversaries
// ---------------------------------------------------------------------------

void GraphLyingBehavior::on_start(GraphNodeContext& ctx) {
  ctx.broadcast(GraphMessage{wrong_value_, ctx.self(), {}});
}

void GraphLyingBehavior::on_receive(GraphNodeContext& ctx,
                                    const GraphEnvelope& env) {
  GraphMessage lie;
  if (env.msg.relayers.empty()) {
    lie = GraphMessage{wrong_value_, env.sender, {ctx.self()}};
  } else {
    if (static_cast<int>(env.msg.relayers.size()) >= max_relay_depth_) return;
    std::vector<NodeId> chain = env.msg.relayers;
    chain.push_back(ctx.self());
    lie = GraphMessage{wrong_value_, env.msg.origin, std::move(chain)};
  }
  if (sent_.insert({lie.origin, lie.relayers}).second) {
    ctx.broadcast(std::move(lie));
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

GraphSimResult run_graph_simulation(const RadioGraph& graph, NodeId source,
                                    std::int64_t t, GraphProtocol protocol,
                                    GraphAdversary adversary,
                                    const GraphFaultSet& faults,
                                    std::uint8_t value,
                                    std::int64_t max_rounds) {
  if (faults[static_cast<std::size_t>(source)]) {
    throw std::invalid_argument("the designated source must be correct");
  }
  GraphNetwork net(graph);
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    if (v == source) {
      net.set_behavior(v, std::make_unique<GraphSourceBehavior>(value));
    } else if (faults[static_cast<std::size_t>(v)]) {
      if (adversary == GraphAdversary::kSilent) {
        net.set_behavior(v, std::make_unique<GraphSilentBehavior>());
      } else {
        net.set_behavior(v, std::make_unique<GraphLyingBehavior>(
                                static_cast<std::uint8_t>(1 - (value & 1))));
      }
    } else if (protocol == GraphProtocol::kCpa) {
      net.set_behavior(v, std::make_unique<GraphCpaBehavior>(t, source));
    } else {
      net.set_behavior(v, std::make_unique<GraphRpaBehavior>(t, source));
    }
  }
  net.start();
  GraphSimResult result;
  result.rounds = net.run_until_quiescent(max_rounds);
  result.transmissions = net.transmissions();
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    if (v == source || faults[static_cast<std::size_t>(v)]) continue;
    result.honest_nodes += 1;
    const auto committed = net.behavior(v)->committed_value();
    if (!committed.has_value()) {
      result.undecided += 1;
    } else if (*committed == value) {
      result.correct_commits += 1;
    } else {
      result.wrong_commits += 1;
    }
  }
  return result;
}

}  // namespace rbcast
