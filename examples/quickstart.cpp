// Quickstart: run the Bhandari–Vaidya Byzantine broadcast protocol on a
// 20x20 torus with radius 2, a fault budget at the exact threshold
// t = ceil(r(2r+1)/2) - 1 = 4, and a lying adversary placed at random.
//
//   $ ./quickstart [--r=2] [--t=-1] [--seed=1] [--size=0]
//
// Prints the outcome map and the headline numbers. With the default budget
// the broadcast must reach every honest node and nobody may commit wrongly
// (Theorems 1-3).

#include <cstdlib>
#include <iostream>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/ascii_viz.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/util/cli.h"

int main(int argc, char** argv) {
  using namespace rbcast;
  const CliArgs args(argc, argv, {"r", "t", "seed", "size"});
  if (!args.ok()) {
    std::cerr << args.error() << "\n";
    return EXIT_FAILURE;
  }
  const auto r = static_cast<std::int32_t>(args.get_int("r", 2));
  const std::int64_t t_arg = args.get_int("t", -1);

  SimConfig cfg;
  cfg.r = r;
  const auto size = static_cast<std::int32_t>(args.get_int("size", 0));
  cfg.width = cfg.height = size > 0 ? size : 8 * r + 4;
  cfg.metric = Metric::kLInf;
  cfg.t = t_arg >= 0 ? t_arg : byz_linf_achievable_max(r);
  cfg.protocol = ProtocolKind::kBvTwoHop;
  cfg.adversary = AdversaryKind::kLying;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::cout << "radiobcast quickstart\n"
            << "  torus " << cfg.width << "x" << cfg.height << ", r=" << cfg.r
            << " (" << to_string(cfg.metric) << "), |nbd|=" << linf_nbd_size(r)
            << "\n"
            << "  protocol " << to_string(cfg.protocol) << ", adversary "
            << to_string(cfg.adversary) << "\n"
            << "  fault budget t=" << cfg.t
            << "  (paper threshold: achievable up to "
            << byz_linf_achievable_max(r) << ", impossible from "
            << byz_linf_impossible_min(r) << ")\n\n";

  Torus torus(cfg.width, cfg.height);
  Rng rng(cfg.seed);
  PlacementConfig placement;
  placement.kind = PlacementKind::kRandomBounded;
  const FaultSet faults = make_faults(placement, torus, cfg.r, cfg.metric,
                                      cfg.t, cfg.source, rng);
  std::cout << "placed " << faults.size()
            << " Byzantine nodes (worst neighborhood holds "
            << max_closed_nbd_faults(torus, faults, cfg.r, cfg.metric)
            << " of budget " << cfg.t << ")\n\n";

  const SimResult result = run_simulation(cfg, faults);

  std::cout << render_outcomes(torus, result, cfg.value) << "\n"
            << "legend: S source, # faulty, + committed correct, X committed "
               "wrong, . undecided\n\n"
            << "rounds: " << result.rounds
            << "  transmissions: " << result.transmissions << "\n"
            << "honest nodes: " << result.honest_nodes
            << "  correct: " << result.correct_commits
            << "  wrong: " << result.wrong_commits
            << "  undecided: " << result.undecided << "\n"
            << "reliable broadcast "
            << (result.success() ? "ACHIEVED" : "FAILED") << "\n";
  return result.success() ? EXIT_SUCCESS : EXIT_FAILURE;
}
