// Adversary lab: a configurable command-line harness over the full public
// API. Pick the protocol, the metric, the adversary, the placement, the
// budget t and the number of repetitions, and get an aggregate verdict — the
// tool the paper's tables would have been produced with, had it been an
// experimental paper.
//
//   $ ./adversary_lab --protocol=bv2 --adversary=lying --placement=checkerboard --r=2 --t=4 --reps=5
//
// Protocols:  crash | cpa | bv2 | bv4 | bv4e
// Adversaries: silent | lying | crash-at-round | spoofing | jamming
// Placements: none | strip | punctured | checkerboard | random | iid

#include <cstdlib>
#include <iostream>
#include <string>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/util/cli.h"
#include "radiobcast/util/table.h"

namespace {

using namespace rbcast;

// Short aliases layered over the canonical library parsers; the canonical
// names (to_string spellings, e.g. "bv-2hop", "checkerboard-strip") are
// always accepted too.
bool parse_protocol(const std::string& s, ProtocolKind& out) {
  const std::string canon = s == "crash"  ? "crash-flood"
                            : s == "bv2"  ? "bv-2hop"
                            : s == "bv4"  ? "bv-4hop-flood"
                            : s == "bv4e" ? "bv-4hop-earmarked"
                                          : s;
  const auto parsed = protocol_from_string(canon);
  if (parsed) out = *parsed;
  return parsed.has_value();
}

bool parse_adversary(const std::string& s, AdversaryKind& out) {
  const auto parsed = adversary_from_string(s);
  if (parsed) out = *parsed;
  return parsed.has_value();
}

bool parse_placement(const std::string& s, PlacementKind& out) {
  const std::string canon = s == "strip"          ? "full-strip"
                            : s == "punctured"    ? "punctured-strip"
                            : s == "checkerboard" ? "checkerboard-strip"
                            : s == "random"       ? "random-bounded"
                                                  : s;
  const auto parsed = placement_from_string(canon);
  if (parsed) out = *parsed;
  return parsed.has_value();
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"protocol", "adversary", "placement", "r", "t", "reps",
                      "seed", "metric", "size", "iid-p", "trim", "value",
                      "crash-round", "jam-budget", "loss-p", "retx"});
  if (!args.ok()) {
    std::cerr << args.error() << "\n";
    return EXIT_FAILURE;
  }

  SimConfig cfg;
  cfg.r = static_cast<std::int32_t>(args.get_int("r", 2));
  const auto size = static_cast<std::int32_t>(args.get_int("size", 0));
  cfg.width = cfg.height = size > 0 ? size : 8 * cfg.r + 4;
  if (const auto metric = metric_from_string(args.get("metric", "linf"))) {
    cfg.metric = *metric;
  } else {
    std::cerr << "bad --metric (want linf or l2)\n";
    return EXIT_FAILURE;
  }
  const std::int64_t t_arg = args.get_int("t", -1);
  cfg.t = t_arg >= 0 ? t_arg : byz_linf_achievable_max(cfg.r);
  cfg.value = static_cast<std::uint8_t>(args.get_int("value", 1) & 1);
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.crash_round = args.get_int("crash-round", 1);
  cfg.jam_budget = args.get_int("jam-budget", 0);
  cfg.loss_p = args.get_double("loss-p", 0.0);
  cfg.retransmissions = static_cast<int>(args.get_int("retx", 1));

  if (!parse_protocol(args.get("protocol", "bv2"), cfg.protocol) ||
      !parse_adversary(args.get("adversary", "silent"), cfg.adversary)) {
    std::cerr << "bad --protocol or --adversary\n";
    return EXIT_FAILURE;
  }
  PlacementConfig placement;
  if (!parse_placement(args.get("placement", "random"), placement.kind)) {
    std::cerr << "bad --placement\n";
    return EXIT_FAILURE;
  }
  placement.iid_p = args.get_double("iid-p", 0.1);
  placement.trim = args.get_bool("trim", true);
  const int reps = static_cast<int>(args.get_int("reps", 3));

  std::cout << "adversary_lab: " << to_string(cfg.protocol) << " vs "
            << to_string(cfg.adversary) << " faults ("
            << to_string(placement.kind) << " placement), " << cfg.width << "x"
            << cfg.height << " torus, r=" << cfg.r << " "
            << to_string(cfg.metric) << ", t=" << cfg.t << ", " << reps
            << " reps\n\n";

  const Aggregate agg = run_repeated(cfg, placement, reps);

  Table table({"quantity", "value"});
  table.row().cell("runs").cell(agg.runs);
  table.row().cell("successes").cell(agg.successes);
  table.row().cell("mean coverage").cell(agg.mean_coverage(), 4);
  table.row().cell("min coverage").cell(agg.min_coverage, 4);
  table.row().cell("wrong commits (total)").cell(agg.wrong_total);
  table.row().cell("mean rounds").cell(agg.mean_rounds(), 2);
  table.row().cell("mean transmissions").cell(agg.mean_transmissions(), 1);
  table.row().cell("mean faults placed").cell(agg.mean_fault_count(), 1);
  table.row().cell("worst nbd fault count").cell(agg.max_nbd_faults);
  table.print(std::cout);

  std::cout << "\npaper reference points for r=" << cfg.r << " ("
            << to_string(cfg.metric) << "):\n";
  Table ref({"bound", "t"});
  if (cfg.metric == Metric::kLInf) {
    ref.row().cell("Byzantine achievable (Thm 1)").cell(
        byz_linf_achievable_max(cfg.r));
    ref.row().cell("Byzantine impossible ([Koo04])").cell(
        byz_linf_impossible_min(cfg.r));
    ref.row().cell("CPA achievable (Thm 6)").cell(
        cpa_linf_achievable_max(cfg.r));
    ref.row().cell("crash achievable (Thm 5)").cell(
        crash_linf_achievable_max(cfg.r));
    ref.row().cell("crash impossible (Thm 4)").cell(
        crash_linf_impossible_min(cfg.r));
  } else {
    ref.row().cell("Byzantine achievable approx (§VIII)").cell(
        l2_byz_achievable_approx(cfg.r), 1);
    ref.row().cell("Byzantine impossible approx (§VIII)").cell(
        l2_byz_impossible_approx(cfg.r), 1);
    ref.row().cell("crash achievable approx (§VIII)").cell(
        l2_crash_achievable_approx(cfg.r), 1);
    ref.row().cell("crash impossible approx (§VIII)").cell(
        l2_crash_impossible_approx(cfg.r), 1);
  }
  ref.print(std::cout);
  return agg.all_success() ? EXIT_SUCCESS : EXIT_FAILURE;
}
