// Barrier demo: visualizes the exact crash-stop threshold of Theorems 4/5.
//
// Runs the plain flooding protocol twice on the same torus:
//   1. against two full width-r fault strips  (t = r(2r+1))  -> partition;
//   2. against the densest *legal* barrier at t = r(2r+1)-1  -> full coverage.
//
//   $ ./barrier_demo [--r=2] [--seed=1]

#include <cstdlib>
#include <iostream>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/ascii_viz.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/util/cli.h"

namespace {

void run_case(const char* title, rbcast::SimConfig cfg,
              rbcast::PlacementKind kind, bool trim) {
  using namespace rbcast;
  Torus torus(cfg.width, cfg.height);
  Rng rng(cfg.seed);
  PlacementConfig placement;
  placement.kind = kind;
  placement.trim = trim;
  const FaultSet faults = make_faults(placement, torus, cfg.r, cfg.metric,
                                      cfg.t, cfg.source, rng);
  const SimResult result = run_simulation(cfg, faults);
  std::cout << "--- " << title << " ---\n"
            << "t = " << cfg.t << ", faults placed = " << faults.size()
            << ", worst neighborhood = "
            << max_closed_nbd_faults(torus, faults, cfg.r, cfg.metric) << "\n"
            << render_outcomes(torus, result, cfg.value)
            << "coverage " << result.correct_commits << "/"
            << result.honest_nodes << " -> reliable broadcast "
            << (result.success() ? "ACHIEVED" : "FAILED") << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rbcast;
  const CliArgs args(argc, argv, {"r", "seed"});
  if (!args.ok()) {
    std::cerr << args.error() << "\n";
    return EXIT_FAILURE;
  }
  const auto r = static_cast<std::int32_t>(args.get_int("r", 2));

  SimConfig cfg;
  cfg.r = r;
  cfg.width = 8 * r + 4;
  cfg.height = (2 * r + 1) * 4;
  cfg.metric = Metric::kLInf;
  cfg.protocol = ProtocolKind::kCrashFlood;
  cfg.adversary = AdversaryKind::kSilent;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::cout << "Crash-stop threshold demo (Theorems 4 & 5): r=" << r
            << ", r(2r+1)=" << r_2r_plus_1(r) << "\n"
            << "On the torus the half-plane cut of Fig 8 needs two strips;\n"
            << "each is the paper's construction.\n\n";

  cfg.t = crash_linf_impossible_min(r);
  run_case("t = r(2r+1): full strips partition the torus (Theorem 4 / Fig 8)",
           cfg, PlacementKind::kFullStrip, /*trim=*/false);

  cfg.t = crash_linf_achievable_max(r);
  run_case("t = r(2r+1)-1: punctured strips leak; flooding wins (Theorem 5)",
           cfg, PlacementKind::kPuncturedStrip, /*trim=*/true);
  return EXIT_SUCCESS;
}
