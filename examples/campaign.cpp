// radiobcast-campaign: the command-line front end of the parallel campaign
// engine. Declares a cartesian parameter sweep with flags, fans the trials
// out over a worker pool, prints a per-cell table, and optionally exports the
// results as JSON and/or CSV (docs/CAMPAIGNS.md documents the schema).
//
//   $ radiobcast-campaign --protocols=bv-2hop --adversaries=silent,lying \
//       --placements=checkerboard-strip --r=2 --t=3:6 --reps=5 \
//       --workers=8 --json=sweep.json --csv=sweep.csv
//
// List-valued flags take comma-separated canonical names (the to_string
// spellings); --t and --r also accept lo:hi ranges. Results are bit-identical
// for every --workers value, including 1.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "radiobcast/campaign/engine.h"
#include "radiobcast/campaign/report.h"
#include "radiobcast/campaign/spec.h"
#include "radiobcast/campaign/thread_pool.h"
#include "radiobcast/core/analysis.h"
#include "radiobcast/util/cli.h"
#include "radiobcast/util/shutdown.h"
#include "radiobcast/util/table.h"

namespace {

using namespace rbcast;

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string item;
  while (std::getline(is, item, sep)) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Parses "3", "1,2,5" or "0:6" (inclusive range) into integers.
bool parse_int_list(const std::string& s, std::vector<std::int64_t>& out) {
  if (s.empty()) return true;
  const auto colon = s.find(':');
  if (colon != std::string::npos) {
    const std::int64_t lo = std::strtoll(s.substr(0, colon).c_str(), nullptr, 10);
    const std::int64_t hi = std::strtoll(s.substr(colon + 1).c_str(), nullptr, 10);
    if (hi < lo) return false;
    for (std::int64_t v = lo; v <= hi; ++v) out.push_back(v);
    return true;
  }
  for (const std::string& item : split(s, ',')) out.push_back(std::strtoll(item.c_str(), nullptr, 10));
  return !out.empty();
}

int usage(const char* msg) {
  std::cerr
      << msg << "\n\n"
      << "usage: radiobcast-campaign [flags]\n"
      << "  --protocols=LIST    crash-flood|cpa|bv-2hop|bv-4hop-flood|"
         "bv-4hop-earmarked\n"
      << "  --adversaries=LIST  silent|lying|crash-at-round|spoofing|jamming\n"
      << "  --placements=LIST   none|full-strip|punctured-strip|"
         "checkerboard-strip|random-bounded|iid\n"
      << "  --r=LIST|LO:HI      transmission radii (default 2)\n"
      << "  --t=LIST|LO:HI      local fault budgets (default: threshold sweep\n"
      << "                      t*-2 .. t*+1 around the Byzantine threshold)\n"
      << "  --size=LIST         square torus sides (default 8r+4 per cell)\n"
      << "  --loss=LIST         channel loss probabilities\n"
      << "  --metric=linf|l2    distance metric (default linf)\n"
      << "  --iid-p=P --trim=B  placement knobs\n"
      << "  --reps=N --seed=S   repetitions per cell / campaign base seed\n"
      << "  --workers=N         worker threads (default: hardware)\n"
      << "  --counters          add observability-counter columns to the "
         "table\n"
      << "  --trace-dir=DIR     write one JSONL round trace per trial "
         "(docs/OBSERVABILITY.md)\n"
      << "  --stream-traces     stream trace events to disk as they happen: "
         "O(1) trace\n"
         "                      memory per trial, nothing evicted (needs "
         "--trace-dir)\n"
      << "  --journal=FILE      fsync'd JSONL write-ahead journal, one record "
         "per trial\n"
      << "  --resume            replay --journal, skip completed trials "
         "(byte-identical exports)\n"
      << "  --keep-going        record trial failures and continue (default: "
         "abort with the\n"
         "                      deterministically lowest failing trial's "
         "error)\n"
      << "  --max-retries=N     retries for transient failures (default 2), "
         "seeded\n"
         "                      hash_seeds(cell, rep, attempt)\n"
      << "  --trial-deadline-ms=N  per-trial wall-clock watchdog; a runaway "
         "trial becomes\n"
         "                      a recorded timeout failure\n"
      << "  --json=FILE --csv=FILE --quiet\n";
  return EXIT_FAILURE;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"protocols", "adversaries", "placements", "r", "t",
                      "size", "loss", "metric", "iid-p", "trim", "reps",
                      "seed", "workers", "json", "csv", "quiet", "help",
                      "counters", "trace-dir", "stream-traces", "journal",
                      "resume", "keep-going", "max-retries",
                      "trial-deadline-ms"});
  if (!args.ok()) return usage(args.error().c_str());
  if (args.get_bool("help", false)) return usage("radiobcast-campaign");

  CampaignSpec spec;
  for (const std::string& name : split(args.get("protocols", "bv-2hop"), ',')) {
    const auto k = protocol_from_string(name);
    if (!k) return usage(("bad protocol: " + name).c_str());
    spec.protocols.push_back(*k);
  }
  for (const std::string& name : split(args.get("adversaries", "silent"), ',')) {
    const auto k = adversary_from_string(name);
    if (!k) return usage(("bad adversary: " + name).c_str());
    spec.adversaries.push_back(*k);
  }
  for (const std::string& name :
       split(args.get("placements", "random-bounded"), ',')) {
    const auto k = placement_from_string(name);
    if (!k) return usage(("bad placement: " + name).c_str());
    spec.placements.push_back(*k);
  }
  const auto metric = metric_from_string(args.get("metric", "linf"));
  if (!metric) return usage("bad --metric (want linf or l2)");
  spec.base.metric = *metric;

  std::vector<std::int64_t> radii, budgets, sides;
  if (!parse_int_list(args.get("r", "2"), radii)) return usage("bad --r");
  if (!parse_int_list(args.get("t", ""), budgets)) return usage("bad --t");
  if (!parse_int_list(args.get("size", ""), sides)) return usage("bad --size");
  for (const std::int64_t r : radii) {
    spec.radii.push_back(static_cast<std::int32_t>(r));
  }
  if (!budgets.empty()) {
    spec.budgets = budgets;
  } else {
    // Default: a threshold sweep straddling the Byzantine L∞ threshold of
    // the largest requested radius.
    const std::int32_t r_max = *std::max_element(spec.radii.begin(),
                                                 spec.radii.end());
    const std::int64_t t_star = byz_linf_achievable_max(r_max);
    for (std::int64_t t = std::max<std::int64_t>(0, t_star - 2);
         t <= t_star + 2; ++t) {
      spec.budgets.push_back(t);
    }
  }
  for (const std::int64_t side : sides) {
    spec.sides.push_back(static_cast<std::int32_t>(side));
  }
  for (const std::string& p : split(args.get("loss", ""), ',')) {
    spec.loss_ps.push_back(std::strtod(p.c_str(), nullptr));
  }

  spec.placement.iid_p = args.get_double("iid-p", 0.1);
  spec.placement.trim = args.get_bool("trim", true);
  spec.reps = static_cast<int>(args.get_int("reps", 3));
  spec.base_seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  // Cells whose torus was not pinned with --size get the per-radius default
  // side 8r+4 (the geometry floor run_simulation enforces). With several
  // radii and no explicit size, expansion handles it via sides={0} markers —
  // resolve those here so every cell is explicit.
  const std::int64_t trial_deadline_ms = args.get_int("trial-deadline-ms", 0);
  std::vector<CampaignCell> cells = spec.expand();
  for (CampaignCell& cell : cells) {
    if (spec.sides.empty()) {
      cell.sim.width = cell.sim.height = 8 * cell.sim.r + 4;
    }
    if (trial_deadline_ms > 0) cell.sim.deadline_ms = trial_deadline_ms;
  }

  CampaignOptions options;
  options.workers = static_cast<int>(args.get_int("workers", 0));
  options.trace_dir = args.get("trace-dir", "");
  options.stream_traces = args.get_bool("stream-traces", false);
  if (options.stream_traces && options.trace_dir.empty()) {
    return usage("--stream-traces requires --trace-dir");
  }
  options.journal_path = args.get("journal", "");
  options.resume = args.get_bool("resume", false);
  if (options.resume && options.journal_path.empty()) {
    return usage("--resume requires --journal");
  }
  options.on_error = args.get_bool("keep-going", false)
                         ? ErrorPolicy::kKeepGoing
                         : ErrorPolicy::kAbort;
  options.max_retries = static_cast<int>(args.get_int("max-retries", 2));
  if (options.max_retries < 0) return usage("bad --max-retries");
  const bool show_counters = args.get_bool("counters", false);
  const bool quiet = args.get_bool("quiet", false);
  std::size_t last_percent = 0;
  if (!quiet) {
    options.progress = [&last_percent](std::size_t done, std::size_t total) {
      const std::size_t percent = total == 0 ? 100 : done * 100 / total;
      if (percent / 10 > last_percent / 10) {
        std::cerr << "  " << percent << "% (" << done << "/" << total
                  << " trials)\n";
      }
      last_percent = percent;
    };
  }

  if (!quiet) {
    std::cerr << "radiobcast-campaign: " << cells.size() << " cells x "
              << spec.reps << " reps = " << cells.size() * static_cast<std::size_t>(spec.reps)
              << " trials, "
              << (options.workers > 0 ? options.workers
                                      : ThreadPool::hardware_workers())
              << " workers\n";
  }

  // Graceful shutdown: on SIGINT/SIGTERM the engine stops scheduling new
  // trials, in-flight trials finish (keeping the journal sealed), and the
  // partial results are still tabulated and exported below before exiting
  // with the conventional 128+signal code.
  ShutdownGuard shutdown;
  options.cancel = [&shutdown] { return shutdown.requested(); };

  CampaignResult result;
  try {
    result = run_cells(cells, options);
  } catch (const std::exception& e) {
    std::cerr << "campaign failed: " << e.what() << "\n";
    return EXIT_FAILURE;
  }

  std::vector<std::string> headers = {"cell", "protocol", "adversary",
                                      "placement", "r", "t", "success",
                                      "mean coverage", "wrong", "mean faults"};
  if (show_counters) {
    // Per-trial means of the summed observability counters (exact sums live
    // in the JSON/CSV exports; the table shows per-trial rates).
    for (const char* h : {"committed/trial", "heard/trial", "delivered/trial",
                          "dropped/trial", "commits/trial", "last commit"}) {
      headers.push_back(h);
    }
  }
  Table table(headers);
  for (const CellResult& cell : result.cells) {
    const Aggregate& agg = cell.aggregate;
    Table& row = table.row();
    row.cell(cell.cell.label.empty() ? "-" : cell.cell.label)
        .cell(to_string(cell.cell.sim.protocol))
        .cell(to_string(cell.cell.sim.adversary))
        .cell(to_string(cell.cell.placement.kind))
        .cell(cell.cell.sim.r)
        .cell(cell.cell.sim.t)
        .cell(std::to_string(agg.successes) + "/" + std::to_string(agg.runs))
        .cell(agg.mean_coverage(), 4)
        .cell(agg.wrong_total)
        .cell(agg.mean_fault_count(), 1);
    if (show_counters) {
      const Counters& c = agg.counters_total;
      const double n = agg.runs > 0 ? static_cast<double>(agg.runs) : 1.0;
      row.cell(static_cast<double>(c.committed_queued) / n, 1)
          .cell(static_cast<double>(c.heard_queued) / n, 1)
          .cell(static_cast<double>(c.envelopes_delivered) / n, 1)
          .cell(static_cast<double>(c.envelopes_dropped) / n, 1)
          .cell(static_cast<double>(c.commits) / n, 1)
          .cell(c.last_commit_round);
    }
  }
  table.print(std::cout);
  write_summary(std::cout, result);

  // Under --keep-going, failed trials are recorded (not fatal): list them on
  // stderr so they are visible even when only the exports are kept. Exit
  // status stays zero — only the abort policy makes failures fatal.
  for (const CellResult& cell : result.cells) {
    for (const TrialFailure& failure : cell.failures) {
      std::cerr << "trial failure: cell " << failure.cell
                << (cell.cell.label.empty() ? "" : " (" + cell.cell.label + ")")
                << " rep " << failure.rep << " [" << to_string(failure.kind)
                << ", " << failure.attempts << " attempt"
                << (failure.attempts == 1 ? "" : "s") << "]: " << failure.what
                << "\n";
    }
  }

  if (args.has("json")) {
    std::ofstream os(args.get("json", ""));
    if (!os) {
      std::cerr << "cannot open --json path\n";
      return EXIT_FAILURE;
    }
    write_json(os, result);
  }
  if (args.has("csv")) {
    std::ofstream os(args.get("csv", ""));
    if (!os) {
      std::cerr << "cannot open --csv path\n";
      return EXIT_FAILURE;
    }
    write_csv(os, result);
  }
  if (result.interrupted()) {
    std::cerr << "campaign interrupted: " << result.skipped_trials
              << " trial(s) skipped"
              << (options.journal_path.empty()
                      ? ""
                      : "; resume with --resume --journal=" +
                            options.journal_path)
              << "\n";
    return shutdown.exit_code();
  }
  return EXIT_SUCCESS;
}
