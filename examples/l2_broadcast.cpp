// Euclidean-metric broadcast (Section VIII): runs the two-hop Byzantine
// protocol under the L2 metric at a configurable fraction of pi*r^2 faults
// and reports where the run lands relative to the paper's informal 0.23/0.30
// estimates.
//
//   $ ./l2_broadcast [--r=3] [--frac=0.15] [--seed=1] [--reps=3]

#include <cmath>
#include <cstdlib>
#include <iostream>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/grid/metric.h"
#include "radiobcast/util/cli.h"

int main(int argc, char** argv) {
  using namespace rbcast;
  const CliArgs args(argc, argv, {"r", "frac", "seed", "reps"});
  if (!args.ok()) {
    std::cerr << args.error() << "\n";
    return EXIT_FAILURE;
  }
  const auto r = static_cast<std::int32_t>(args.get_int("r", 3));
  const double frac = args.get_double("frac", 0.15);
  const int reps = static_cast<int>(args.get_int("reps", 3));

  SimConfig cfg;
  cfg.r = r;
  cfg.width = cfg.height = 8 * r + 4;
  cfg.metric = Metric::kL2;
  cfg.protocol = ProtocolKind::kBvTwoHop;
  cfg.adversary = AdversaryKind::kLying;
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  cfg.t = static_cast<std::int64_t>(
      std::floor(frac * 3.14159265358979 * r * r));

  const std::int64_t nbd = neighborhood_size(r, Metric::kL2);
  std::cout << "L2 broadcast (Section VIII): r=" << r << ", |nbd|=" << nbd
            << " (pi r^2 = " << 3.14159 * r * r << ")\n"
            << "fault budget t=" << cfg.t << " = " << frac
            << " * pi r^2; paper estimates: achievable below ~"
            << l2_byz_achievable_approx(r) << ", impossible above ~"
            << l2_byz_impossible_approx(r) << "\n\n";

  PlacementConfig placement;
  placement.kind = PlacementKind::kRandomBounded;
  const Aggregate agg = run_repeated(cfg, placement, reps);

  std::cout << "runs " << agg.runs << ", successes " << agg.successes
            << ", mean coverage " << agg.mean_coverage() << ", wrong commits "
            << agg.wrong_total << "\n";
  std::cout << "(the 0.23*pi*r^2 estimate assumes large r; small radii are "
               "dominated by the O(r) lattice correction)\n";
  return EXIT_SUCCESS;
}
