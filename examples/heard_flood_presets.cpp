// HEARD-flood campaign presets at r = 3..5: the faithful flooding relay mode
// (bv-4hop-flood) at the radii beyond the paper's worked examples, where
// report traffic — every plausible HEARD chain relayed by every node — is at
// its heaviest and the SoA/incremental engine work actually pays off. Each
// preset is a ready-made CampaignSpec: silent + lying adversaries, a perfect
// and a lossy channel cell, t at the Theorem 1 threshold, on the smallest
// legal torus (4r+2 per side) so a laptop can finish the r = 5 sweep.
//
//   $ ./heard_flood_presets              # r = 3 preset (the quick one)
//   $ ./heard_flood_presets --r=4        # one preset
//   $ ./heard_flood_presets --r=3:5     # the full ladder (r = 5 is slow)
//
// Flags: --r=N|LO:HI, --reps=N, --workers=N, --json=FILE, --csv=FILE

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "radiobcast/campaign/engine.h"
#include "radiobcast/campaign/report.h"
#include "radiobcast/campaign/spec.h"
#include "radiobcast/core/analysis.h"
#include "radiobcast/util/cli.h"

namespace {

using namespace rbcast;

/// The r = 3..5 HEARD-flood preset: one campaign per radius, geometry and
/// budget derived from r alone so the ladder stays comparable across radii.
CampaignSpec heard_flood_preset(std::int32_t r, int reps,
                                std::uint64_t seed) {
  CampaignSpec spec;
  spec.base.r = r;
  // Smallest legal torus (the 4r+2 floor): flood-mode relay traffic grows
  // superlinearly in the node count, and the evidence path dominates already
  // at this size (see BM_HeardFlood in bench/bench_engine_perf.cpp).
  spec.base.width = spec.base.height = 4 * r + 2;
  spec.base.protocol = ProtocolKind::kBvIndirectFlood;
  spec.base.t = byz_linf_achievable_max(r);  // Theorem 1 threshold
  spec.base.retransmissions = 2;
  spec.adversaries = {AdversaryKind::kSilent, AdversaryKind::kLying};
  spec.placements = {PlacementKind::kRandomBounded};
  spec.loss_ps = {0.0, 0.25};
  spec.reps = reps;
  spec.base_seed = seed;
  return spec;
}

/// Non-throwing radius parse: anything that is not a clean integer maps to
/// 0, which the 3..5 range check below rejects with the usage message.
std::int32_t parse_radius(const std::string& s) {
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0') return 0;
  return static_cast<std::int32_t>(v);
}

bool write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out << bytes;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"r", "reps", "workers", "seed", "json", "csv"});
  if (!args.ok()) {
    std::cerr << args.error() << "\n";
    return EXIT_FAILURE;
  }

  std::int32_t r_lo = 3;
  std::int32_t r_hi = 3;
  const std::string r_arg = args.get("r", "3");
  if (const auto colon = r_arg.find(':'); colon != std::string::npos) {
    r_lo = parse_radius(r_arg.substr(0, colon));
    r_hi = parse_radius(r_arg.substr(colon + 1));
  } else {
    r_lo = r_hi = parse_radius(r_arg);
  }
  if (r_lo < 3 || r_hi > 5 || r_lo > r_hi) {
    std::cerr << "heard_flood_presets: --r must lie in 3..5\n";
    return EXIT_FAILURE;
  }
  const int reps = static_cast<int>(args.get_int("reps", 1));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 20260809));

  CampaignOptions options;
  options.workers = static_cast<int>(args.get_int("workers", 0));

  bool all_success = true;
  for (std::int32_t r = r_lo; r <= r_hi; ++r) {
    const CampaignSpec spec = heard_flood_preset(r, reps, seed + r);
    std::cout << "heard-flood preset r=" << r << ": "
              << spec.base.width << "x" << spec.base.height
              << " torus, t=" << spec.base.t << " (Thm 1 threshold), "
              << spec.cell_count() << " cells x " << reps << " reps\n";
    const CampaignResult result = run_campaign(spec, options);
    write_summary(std::cout, result);
    std::cout << "\n";
    for (const auto& cell : result.cells) {
      all_success = all_success && cell.aggregate.all_success();
    }
    const std::string suffix = "_r" + std::to_string(r);
    if (const std::string path = args.get("json", ""); !path.empty()) {
      if (!write_file(path + suffix, to_json(result))) {
        std::cerr << "cannot write " << path << suffix << "\n";
        return EXIT_FAILURE;
      }
    }
    if (const std::string path = args.get("csv", ""); !path.empty()) {
      if (!write_file(path + suffix, to_csv(result))) {
        std::cerr << "cannot write " << path << suffix << "\n";
        return EXIT_FAILURE;
      }
    }
  }
  return all_success ? EXIT_SUCCESS : EXIT_FAILURE;
}
