// Custom-graph example: build your own radio network topology and compare
// CPA against RPA (indirect reports + the Section V sufficient condition)
// under the locally bounded fault model.
//
//   $ ./custom_graph                 # the built-in separation graph, t=1
//   $ ./custom_graph --faulty=w11 --adversary=lying
//
// Nodes of the built-in graph: s (source), a1..a3, w11..w33 (middlemen),
// u (the far sink).

#include <cstdlib>
#include <iostream>
#include <string>

#include "radiobcast/graph/graph_protocols.h"
#include "radiobcast/util/cli.h"
#include "radiobcast/util/table.h"

int main(int argc, char** argv) {
  using namespace rbcast;
  const CliArgs args(argc, argv, {"faulty", "adversary", "t"});
  if (!args.ok()) {
    std::cerr << args.error() << "\n";
    return EXIT_FAILURE;
  }

  const RadioGraph g = make_separation_graph();
  const std::int64_t t = args.get_int("t", kSeparationT);
  const GraphAdversary adversary = args.get("adversary", "silent") == "lying"
                                       ? GraphAdversary::kLying
                                       : GraphAdversary::kSilent;

  GraphFaultSet faults(static_cast<std::size_t>(g.node_count()), false);
  const std::string faulty_name = args.get("faulty", "");
  if (!faulty_name.empty()) {
    bool found = false;
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (separation_node_name(v) == faulty_name) {
        faults[static_cast<std::size_t>(v)] = true;
        found = true;
      }
    }
    if (!found) {
      std::cerr << "unknown node name: " << faulty_name << "\n";
      return EXIT_FAILURE;
    }
  }
  if (!satisfies_local_bound(g, faults, t)) {
    std::cerr << "that placement violates the local bound t=" << t << "\n";
    return EXIT_FAILURE;
  }

  std::cout << "custom_graph: " << g.node_count() << " nodes, "
            << g.edge_count() << " edges, t=" << t << ", faulty={"
            << (faulty_name.empty() ? "none" : faulty_name) << "}\n\n";

  Table table({"protocol", "committed", "undecided", "wrong", "rounds",
               "transmissions", "reliable broadcast"});
  for (const GraphProtocol protocol :
       {GraphProtocol::kCpa, GraphProtocol::kRpa}) {
    const auto res = run_graph_simulation(g, kSeparationSource, t, protocol,
                                          adversary, faults);
    table.row()
        .cell(protocol == GraphProtocol::kCpa ? "CPA" : "RPA")
        .cell(res.correct_commits)
        .cell(res.undecided)
        .cell(res.wrong_commits)
        .cell(res.rounds)
        .cell(res.transmissions)
        .cell(res.success());
  }
  table.print(std::cout);
  std::cout << "\nRPA verifies indirect reports with the Section V "
               "condition: k node-disjoint reported paths whose relayer set "
               "admits at most k-1 legal faults.\n";
  return EXIT_SUCCESS;
}
