// E11 — The CPA ⊊ RPA separation on arbitrary graphs (Section III, citing
// [Pelc-Peleg05]): "It is shown that RPA is a more powerful algorithm, as
// there exist graphs for which RPA succeeds but CPA does not."
//
// This harness exhibits such a graph (graph/graph.h: make_separation_graph,
// t = 1) and verifies the full quantifier structure of the claim:
//   * CPA fails to achieve reliable broadcast even with ZERO faults placed
//     (a legal placement), so CPA does not achieve reliable broadcast on
//     this graph;
//   * RPA — indirect reports evaluated through the Section V sufficient
//     condition (k node-disjoint verified paths whose relayer union S admits
//     at most k-1 legal faults) — achieves reliable broadcast under EVERY
//     legal placement, for both silent and lying adversaries, enumerated
//     exhaustively.
//
// The grid experiments (E5) show the flip side: on the torus itself CPA
// empirically matches the exact threshold, so the separation is genuinely a
// non-grid phenomenon.

#include <iostream>
#include <string>

#include "radiobcast/graph/graph_protocols.h"
#include "radiobcast/util/table.h"

int main() {
  using namespace rbcast;
  std::cout << "E11: CPA vs RPA on the separation graph "
               "([Pelc-Peleg05] via Section III), t = " << kSeparationT
            << "\n\n";

  const RadioGraph g = make_separation_graph();
  std::cout << "graph: " << g.node_count() << " nodes, " << g.edge_count()
            << " edges; source s with 2t+1 = 3 disjoint outward branches; "
               "9 middlemen; sink u\n\n";

  bool shape_ok = true;

  // CPA fault-free.
  const GraphFaultSet empty(static_cast<std::size_t>(g.node_count()), false);
  const auto cpa = run_graph_simulation(g, kSeparationSource, kSeparationT,
                                        GraphProtocol::kCpa,
                                        GraphAdversary::kSilent, empty);
  Table head({"protocol", "placement", "committed", "undecided", "wrong",
              "reliable broadcast"});
  head.row()
      .cell("CPA")
      .cell("none (fault-free)")
      .cell(cpa.correct_commits)
      .cell(cpa.undecided)
      .cell(cpa.wrong_commits)
      .cell(cpa.success());
  if (cpa.success()) shape_ok = false;

  const auto rpa = run_graph_simulation(g, kSeparationSource, kSeparationT,
                                        GraphProtocol::kRpa,
                                        GraphAdversary::kSilent, empty);
  head.row()
      .cell("RPA")
      .cell("none (fault-free)")
      .cell(rpa.correct_commits)
      .cell(rpa.undecided)
      .cell(rpa.wrong_commits)
      .cell(rpa.success());
  if (!rpa.success()) shape_ok = false;
  head.print(std::cout);
  std::cout << "\n";

  // RPA under every legal placement, both adversaries.
  const auto placements =
      enumerate_legal_placements(g, kSeparationT, kSeparationSource);
  std::cout << "exhaustive check: " << placements.size()
            << " legal placements x {silent, lying} adversaries\n";
  Table sweep({"placement", "adversary", "committed", "undecided", "wrong",
               "success"});
  int rpa_failures = 0;
  for (const auto& faults : placements) {
    std::string name = "{ ";
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (faults[static_cast<std::size_t>(v)]) {
        name += separation_node_name(v) + " ";
      }
    }
    name += "}";
    for (const GraphAdversary adversary :
         {GraphAdversary::kSilent, GraphAdversary::kLying}) {
      const auto res = run_graph_simulation(g, kSeparationSource,
                                            kSeparationT, GraphProtocol::kRpa,
                                            adversary, faults);
      sweep.row()
          .cell(name)
          .cell(adversary == GraphAdversary::kSilent ? "silent" : "lying")
          .cell(res.correct_commits)
          .cell(res.undecided)
          .cell(res.wrong_commits)
          .cell(res.success());
      if (!res.success()) {
        ++rpa_failures;
        shape_ok = false;
      }
    }
  }
  sweep.print(std::cout);

  std::cout << "\nRPA failures across all legal placements: " << rpa_failures
            << " (paper/[Pelc-Peleg05] predict 0)\n";
  std::cout << (shape_ok
                    ? "SHAPE MATCHES PAPER: CPA stalls, RPA achieves reliable "
                      "broadcast under every legal placement\n"
                    : "SHAPE MISMATCH — see rows above\n");
  return shape_ok ? 0 : 1;
}
