// E5 — Reproduces Theorem 6 and Figs 14-19: the simple protocol of [Koo04]
// (CPA) achieves t <= 2r^2/3 in L∞, asymptotically dominating Koo's own
// bound t < (r(r+sqrt(r/2)+1))/2; and the CPA ⊊ RPA separation (Section III):
// budgets where the indirect-report protocol succeeds but CPA stalls.
//
// Printed per radius:
//   * the two analytical bounds (Theorem 6 vs [Koo04]);
//   * measured CPA success at t = floor(2r^2/3) under barrier and random
//     placements (expected: success);
//   * measured CPA vs bv-2hop at t = ceil(r(2r+1)/2)-1 (expected: CPA may
//     stall, bv-2hop succeeds — the separation).

#include <algorithm>
#include <iostream>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/util/table.h"

namespace {

using namespace rbcast;

Aggregate run_cpa_case(std::int32_t r, std::int64_t t, ProtocolKind protocol,
                       PlacementKind placement_kind, int reps,
                       std::uint64_t seed) {
  SimConfig cfg;
  cfg.r = r;
  cfg.width = 8 * r + 4;
  cfg.height = (2 * r + 1) * 4;
  cfg.metric = Metric::kLInf;
  cfg.t = t;
  cfg.protocol = protocol;
  cfg.adversary = AdversaryKind::kSilent;
  cfg.seed = seed;
  PlacementConfig placement;
  placement.kind = placement_kind;
  placement.trim = true;
  return run_repeated(cfg, placement, reps);
}

}  // namespace

int main() {
  std::cout << "E5: CPA bound (Theorem 6 vs [Koo04]) and the CPA/RPA "
               "separation, L-infinity\n\n";
  bool shape_ok = true;

  std::cout << "Analytical bounds (Fig 14-19 machinery):\n";
  Table bounds({"r", "Thm 6: floor(2r^2/3)", "[Koo04]: r(r+sqrt(r/2)+1)/2",
                "Thm 6 dominates", "BV threshold (Thm 1)"});
  for (std::int32_t r = 2; r <= 12; ++r) {
    bounds.row()
        .cell(std::to_string(r))
        .cell(cpa_linf_achievable_max(r))
        .cell(koo_cpa_linf_bound(r), 2)
        .cell(static_cast<double>(cpa_linf_achievable_max(r)) >
              koo_cpa_linf_bound(r))
        .cell(byz_linf_achievable_max(r));
  }
  bounds.print(std::cout);
  std::cout << "(Theorem 6 is asymptotic: dominance sets in for large r; the "
               "paper claims it for all sufficiently large r.)\n\n";

  // The proof's staged counting lemmas (Figs 14-19), verified exactly.
  std::cout << "Theorem 6 stage counts vs the 2t+1 = 4r^2/3 + 1 requirement:\n";
  Table stages({"r", "stage-1 count", "stack rows floor(r/sqrt 6)",
                "worst row count", "stage-2 count", "all sufficient"});
  bool lemmas_ok = true;
  for (std::int32_t r = 2; r <= 12; ++r) {
    const std::int32_t depth = cpa_guaranteed_stack_rows(r);
    std::int64_t worst_row = cpa_stage1_committed_neighbors(r);
    bool rows_ok = true;
    for (std::int32_t i = 1; i <= depth; ++i) {
      const std::int64_t count = cpa_row_committed_neighbors(r, i);
      worst_row = std::min(worst_row, count);
      rows_ok = rows_ok && cpa_count_sufficient(count, r);
    }
    const bool ok = rows_ok &&
                    cpa_count_sufficient(cpa_stage1_committed_neighbors(r), r) &&
                    cpa_count_sufficient(cpa_stage2_committed_neighbors(r), r);
    lemmas_ok = lemmas_ok && ok;
    stages.row()
        .cell(std::to_string(r))
        .cell(cpa_stage1_committed_neighbors(r))
        .cell(depth)
        .cell(worst_row)
        .cell(cpa_stage2_committed_neighbors(r))
        .cell(ok);
  }
  stages.print(std::cout);
  shape_ok = shape_ok && lemmas_ok;
  std::cout << "\n";

  std::cout << "Measured CPA at its Theorem 6 budget:\n";
  Table meas({"r", "t", "placement", "success", "mean coverage",
              "wrong commits"});
  for (std::int32_t r = 2; r <= 3; ++r) {
    const std::int64_t t = cpa_linf_achievable_max(r);
    for (const PlacementKind pk :
         {PlacementKind::kCheckerboardStrip, PlacementKind::kRandomBounded}) {
      const int reps = pk == PlacementKind::kRandomBounded ? 3 : 1;
      const Aggregate agg =
          run_cpa_case(r, t, ProtocolKind::kCpa, pk, reps, 900);
      meas.row()
          .cell(std::to_string(r))
          .cell(t)
          .cell(to_string(pk))
          .cell(std::to_string(agg.successes) + "/" + std::to_string(agg.runs))
          .cell(agg.mean_coverage(), 4)
          .cell(agg.wrong_total);
      if (!agg.all_success() || agg.wrong_total != 0) shape_ok = false;
    }
  }
  meas.print(std::cout);

  std::cout << "\nCPA vs indirect reports at the exact Byzantine threshold "
               "(t above CPA's proven bound):\n";
  Table sep({"r", "t", "protocol", "guaranteed by paper", "success",
             "mean coverage", "wrong commits"});
  for (std::int32_t r = 2; r <= 3; ++r) {
    const std::int64_t t = byz_linf_achievable_max(r);
    const Aggregate cpa = run_cpa_case(
        r, t, ProtocolKind::kCpa, PlacementKind::kCheckerboardStrip, 1, 901);
    const Aggregate bv =
        run_cpa_case(r, t, ProtocolKind::kBvTwoHop,
                     PlacementKind::kCheckerboardStrip, 1, 901);
    sep.row()
        .cell(std::to_string(r))
        .cell(t)
        .cell("cpa")
        .cell("no (t > 2r^2/3)")
        .cell(cpa.all_success())
        .cell(cpa.mean_coverage(), 4)
        .cell(cpa.wrong_total);
    sep.row()
        .cell(std::to_string(r))
        .cell(t)
        .cell("bv-2hop")
        .cell("yes (Thm 1)")
        .cell(bv.all_success())
        .cell(bv.mean_coverage(), 4)
        .cell(bv.wrong_total);
    // The proven-guarantee gap: bv must succeed at t; CPA must stay safe
    // (the paper proves nothing about its liveness there — empirically, on
    // the grid it survives too, anticipating the authors' footnote-1 remark
    // and their later exact-threshold result for simple protocols; the
    // CPA ⊊ RPA liveness separation of [Pelc-Peleg05] uses non-grid graphs).
    if (!bv.all_success()) shape_ok = false;
    if (cpa.wrong_total != 0) shape_ok = false;
  }
  sep.print(std::cout);

  std::cout << "\n"
            << (shape_ok ? "SHAPE MATCHES PAPER: CPA sound at 2r^2/3 "
                           "(and safe beyond); indirect reports carry the "
                           "proven guarantee to the exact threshold\n"
                         : "SHAPE MISMATCH — see rows above\n");
  return shape_ok ? 0 : 1;
}
