// E9 — Staged propagation (Figs 9-10 for crash-stop, Figs 14-19 for CPA,
// and the inductive wave of Theorem 3 for the BV protocols).
//
// Every achievability proof in the paper is a staged-propagation argument:
// the committed region grows outward from the source, one pnbd layer (or one
// row stack, Figs 14-16) per constant number of rounds. That structure is
// directly observable: commit round as a function of L∞ distance from the
// source must be (weakly) monotone and roughly linear in distance/r.
//
// For each protocol, with faults at the protocol's sound budget, this prints
// the mean/max commit round per distance ring and the cumulative
// commits-per-round series, and checks the wavefront shape.

#include <algorithm>
#include <iostream>
#include <vector>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/util/table.h"

namespace {

using namespace rbcast;

struct WaveStats {
  std::vector<double> mean_round_by_ring;  // ring = linf distance / source
  std::vector<std::int64_t> max_round_by_ring;
  std::vector<std::int64_t> cumulative;  // commits by round
  bool success = false;
};

WaveStats measure(ProtocolKind protocol, std::int32_t r, std::int64_t t,
                  PlacementKind placement_kind) {
  SimConfig cfg;
  cfg.r = r;
  cfg.width = cfg.height = 8 * r + 4;
  cfg.metric = Metric::kLInf;
  cfg.t = t;
  cfg.protocol = protocol;
  cfg.adversary = AdversaryKind::kSilent;
  cfg.seed = 12345;
  Torus torus(cfg.width, cfg.height);
  Rng rng(cfg.seed);
  PlacementConfig placement;
  placement.kind = placement_kind;
  placement.trim = true;
  const FaultSet faults = make_faults(placement, torus, cfg.r, cfg.metric,
                                      cfg.t, cfg.source, rng);
  const SimResult res = run_simulation(cfg, faults);

  WaveStats stats;
  stats.success = res.success();
  stats.cumulative = res.commits_by_round();
  const std::int32_t max_ring = std::max(cfg.width, cfg.height) / 2;
  std::vector<double> sums(static_cast<std::size_t>(max_ring) + 1, 0.0);
  std::vector<std::int64_t> counts(static_cast<std::size_t>(max_ring) + 1, 0);
  std::vector<std::int64_t> maxima(static_cast<std::size_t>(max_ring) + 1, 0);
  for (const Coord c : torus.all_coords()) {
    const auto idx = static_cast<std::size_t>(torus.index(c));
    const std::int64_t round = res.commit_rounds[idx];
    if (round < 0) continue;
    const auto ring = static_cast<std::size_t>(
        linf_norm(torus.delta(cfg.source, c)));
    sums[ring] += static_cast<double>(round);
    counts[ring] += 1;
    maxima[ring] = std::max(maxima[ring], round);
  }
  for (std::size_t ring = 0; ring < sums.size(); ++ring) {
    if (counts[ring] == 0) break;
    stats.mean_round_by_ring.push_back(sums[ring] /
                                       static_cast<double>(counts[ring]));
    stats.max_round_by_ring.push_back(maxima[ring]);
  }
  return stats;
}

}  // namespace

int main() {
  std::cout << "E9: staged propagation of the committed region "
               "(Figs 9-10, 14-19, Theorem 3 wave)\n\n";

  bool shape_ok = true;
  const std::int32_t r = 2;

  struct Case {
    ProtocolKind protocol;
    std::int64_t t;
    PlacementKind placement;
    const char* figure;
  };
  const Case cases[] = {
      {ProtocolKind::kCrashFlood, crash_linf_achievable_max(r),
       PlacementKind::kPuncturedStrip, "Figs 9-10"},
      {ProtocolKind::kCpa, cpa_linf_achievable_max(r),
       PlacementKind::kCheckerboardStrip, "Figs 14-19"},
      {ProtocolKind::kBvTwoHop, byz_linf_achievable_max(r),
       PlacementKind::kCheckerboardStrip, "Theorem 3 induction"},
  };

  for (const Case& c : cases) {
    const WaveStats stats = measure(c.protocol, r, c.t, c.placement);
    std::cout << to_string(c.protocol) << " (t=" << c.t << ", " << c.figure
              << "): success=" << (stats.success ? "yes" : "no") << "\n";
    Table rings({"L-inf ring", "mean commit round", "max commit round"});
    for (std::size_t ring = 0; ring < stats.mean_round_by_ring.size();
         ++ring) {
      rings.row()
          .cell(static_cast<std::int64_t>(ring))
          .cell(stats.mean_round_by_ring[ring], 2)
          .cell(stats.max_round_by_ring[ring]);
    }
    rings.print(std::cout);

    Table cumulative({"round", "nodes committed (cumulative)"});
    for (std::size_t k = 0; k < stats.cumulative.size(); ++k) {
      cumulative.row()
          .cell(static_cast<std::int64_t>(k))
          .cell(stats.cumulative[k]);
    }
    cumulative.print(std::cout);
    std::cout << "\n";

    if (!stats.success) shape_ok = false;
    // Wavefront monotonicity: mean commit round weakly increases with ring
    // distance (a small slack absorbs barrier detours).
    for (std::size_t ring = 1; ring < stats.mean_round_by_ring.size();
         ++ring) {
      if (stats.mean_round_by_ring[ring] + 1.0 <
          stats.mean_round_by_ring[ring - 1]) {
        shape_ok = false;
      }
    }
    // The wave takes at least distance/r rounds to reach the farthest ring.
    const std::size_t rings_count = stats.mean_round_by_ring.size();
    if (rings_count > 0) {
      const auto last = static_cast<std::int64_t>(rings_count - 1);
      if (stats.max_round_by_ring.back() < last / (2 * r)) shape_ok = false;
    }
  }

  std::cout << (shape_ok
                    ? "SHAPE MATCHES PAPER: the committed region grows "
                      "outward in monotone stages\n"
                    : "SHAPE MISMATCH — see rows above\n");
  return shape_ok ? 0 : 1;
}
