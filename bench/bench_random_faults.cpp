// E7 — The random-failure model suggested in the paper's conclusion
// (Section XI): "each node has a probability of failure p_f ... in case of
// crash-stop failures, the problem is similar to the problem of site
// percolation."
//
// Sweeps p_f and reports the coverage of plain flooding under iid crash
// faults. Expected shape: an S-curve — near-full coverage at small p_f,
// collapse around the site-percolation regime of the r-ball adjacency graph
// (well below the 0.41 threshold of nearest-neighbor site percolation for
// r=1, higher connectivity pushes it up), near-zero coverage beyond.
//
// The Monte Carlo sweep runs through the campaign engine: all p_f cells of a
// radius execute concurrently on the worker pool with per-trial seeds fixed
// by (cell seed, rep), so the table is identical to the old serial sweep.

#include <iostream>
#include <vector>

#include "radiobcast/campaign/engine.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/reachability.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/fault/placement.h"
#include "radiobcast/util/table.h"

int main() {
  using namespace rbcast;
  std::cout << "E7: iid random crash faults (Section XI / site percolation)\n\n";

  bool shape_ok = true;
  for (std::int32_t r = 1; r <= 2; ++r) {
    std::cout << "r=" << r << " (flooding, coverage among honest nodes):\n";

    std::vector<CampaignCell> cells;
    for (const double p : {0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75,
                           0.85, 0.92, 0.97}) {
      CampaignCell cell;
      cell.sim.r = r;
      cell.sim.width = cell.sim.height = 8 * r + 4;
      cell.sim.metric = Metric::kLInf;
      cell.sim.protocol = ProtocolKind::kCrashFlood;
      cell.sim.adversary = AdversaryKind::kSilent;
      cell.sim.seed = 800 + static_cast<std::uint64_t>(p * 100);
      cell.placement.kind = PlacementKind::kIid;
      cell.placement.iid_p = p;
      cell.reps = 5;
      cells.push_back(cell);
    }
    const CampaignResult sweep = run_cells(cells);

    Table table({"p_f", "mean coverage", "min coverage",
                 "reachability prediction", "mean faults"});
    double first = -1, last = -1;
    for (const CellResult& cell : sweep.cells) {
      const Aggregate& agg = cell.aggregate;
      const double p = cell.cell.placement.iid_p;
      // Section VII: "the sole criterion for achievability is reachability".
      // Independent BFS prediction over the same placement distribution.
      double reach_sum = 0.0;
      {
        const Torus torus(cell.cell.sim.width, cell.cell.sim.height);
        for (int i = 0; i < 5; ++i) {
          Rng rng(hash_seeds(cell.cell.sim.seed,
                             static_cast<std::uint64_t>(i)));
          const FaultSet faults =
              iid_faults(torus, p, rng, cell.cell.sim.source);
          reach_sum += honest_reachability(torus, faults, cell.cell.sim.source,
                                           r, Metric::kLInf)
                           .fraction();
        }
      }
      table.row()
          .cell(p, 2)
          .cell(agg.mean_coverage(), 4)
          .cell(agg.min_coverage, 4)
          .cell(reach_sum / 5.0, 4)
          .cell(agg.mean_fault_count(), 1);
      if (first < 0) first = agg.mean_coverage();
      last = agg.mean_coverage();
    }
    table.print(std::cout);
    // Section XI percolation knee (bisection over reachability, 50% target).
    const double knee = estimate_percolation_knee(
        8 * r + 4, 8 * r + 4, r, Metric::kLInf, {0, 0}, 0.5, 5, 4242);
    std::cout << "estimated percolation knee (50% reachability): p_f ~ "
              << format_double(knee, 3) << "\n\n";
    // S-curve shape: full coverage at the left end, collapse at the right.
    // Richer neighborhoods (larger r) push the percolation knee toward
    // higher p_f, hence the generous right-end bound.
    if (first < 0.95 || last > 0.5) shape_ok = false;
  }

  std::cout << (shape_ok
                    ? "SHAPE MATCHES EXPECTATION: percolation-style coverage "
                      "collapse as p_f grows\n"
                    : "SHAPE MISMATCH — see rows above\n");
  return shape_ok ? 0 : 1;
}
