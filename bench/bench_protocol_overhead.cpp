// E6 — Reproduces the communication-overhead claim of Section VI-B / the
// Section III comparison with [Pelc-Peleg05]: the two-hop variant "localizes
// the circulation of indirect reports, and thus reduces communication
// overhead", and the earmarked 4-hop mode (the paper's state-reduction
// remark) collapses the flood.
//
// Fault-free runs on a common torus, all protocols; reported per protocol:
// transmissions total / per node, deliveries, rounds to quiescence.

#include <iostream>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/util/table.h"

int main() {
  using namespace rbcast;
  std::cout << "E6: message overhead by protocol (fault-free, L-infinity)\n\n";

  bool shape_ok = true;
  for (std::int32_t r = 1; r <= 2; ++r) {
    SimConfig base;
    base.r = r;
    base.width = base.height = 8 * r + 4;
    base.metric = Metric::kLInf;
    base.t = byz_linf_achievable_max(r);
    base.adversary = AdversaryKind::kSilent;
    base.seed = 3;

    const double nodes = static_cast<double>(base.width) * base.height;
    std::cout << "r=" << r << ", " << base.width << "x" << base.height
              << " torus (" << nodes << " nodes), t=" << base.t << "\n";
    Table table({"protocol", "rounds", "transmissions", "tx per node",
                 "payload units", "deliveries", "success"});

    double tx_crash = 0, tx_cpa = 0, tx_2hop = 0, tx_flood = 0, tx_earm = 0;
    std::vector<ProtocolKind> kinds = {ProtocolKind::kCrashFlood,
                                       ProtocolKind::kCpa,
                                       ProtocolKind::kBvTwoHop,
                                       ProtocolKind::kBvIndirectEarmarked};
    // The faithful flood is exponential in relays; keep it to r=1.
    if (r == 1) kinds.push_back(ProtocolKind::kBvIndirectFlood);

    for (const ProtocolKind kind : kinds) {
      SimConfig cfg = base;
      cfg.protocol = kind;
      // CPA and crash flood run with their own sound budgets.
      if (kind == ProtocolKind::kCrashFlood) cfg.t = 0;
      if (kind == ProtocolKind::kCpa) cfg.t = cpa_linf_achievable_max(r);
      const SimResult res = run_simulation(cfg, FaultSet{});
      const double tx = static_cast<double>(res.transmissions);
      table.row()
          .cell(to_string(kind))
          .cell(res.rounds)
          .cell(res.transmissions)
          .cell(tx / nodes, 2)
          .cell(res.payload_units)
          .cell(res.deliveries)
          .cell(res.success());
      if (!res.success()) shape_ok = false;
      switch (kind) {
        case ProtocolKind::kCrashFlood: tx_crash = tx; break;
        case ProtocolKind::kCpa: tx_cpa = tx; break;
        case ProtocolKind::kBvTwoHop: tx_2hop = tx; break;
        case ProtocolKind::kBvIndirectFlood: tx_flood = tx; break;
        case ProtocolKind::kBvIndirectEarmarked: tx_earm = tx; break;
      }
    }
    table.print(std::cout);

    // Expected ordering: crash <= cpa <= 2hop <= earmarked (<= flood at r=1).
    if (!(tx_crash <= tx_cpa && tx_cpa <= tx_2hop && tx_2hop <= tx_earm)) {
      shape_ok = false;
    }
    if (r == 1 && tx_flood < tx_earm) shape_ok = false;
    if (r == 1) {
      std::cout << "earmarked / flood transmission ratio: "
                << (tx_flood > 0 ? tx_earm / tx_flood : 0.0) << "\n";
    }
    std::cout << "\n";
  }

  std::cout << (shape_ok
                    ? "SHAPE MATCHES PAPER: indirect reports cost more than "
                      "CPA, earmarking collapses the 4-hop flood\n"
                    : "SHAPE MISMATCH — see rows above\n");
  return shape_ok ? 0 : 1;
}
