// E10 — Ablation for the Section II remark: the reliable local broadcast
// assumption "does not hold per se in real wireless networks, [but] it may
// be possible to implement a local broadcast primitive that can provide
// probabilistic guarantees (given that transmissions are successfully
// received with a certain probability)".
//
// We drop each (transmission, receiver) delivery independently with
// probability p_loss and let every broadcast be transmitted k times
// (net/channel.h + RadioNetwork::set_retransmissions — the probabilistic
// primitive). Swept: p_loss x k, for crash-stop flooding and the Byzantine
// two-hop protocol at their sound budgets.
//
// Expected shape: coverage collapses as p_loss grows at k=1, and is restored
// by increasing k (per-link success 1-(p_loss)^k); safety (zero wrong
// commits) holds throughout — loss breaks the no-duplicity argument of
// Section V, but the t+1-disjoint-confirmation commit rules never depended
// on it.

#include <iostream>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/util/table.h"

int main() {
  using namespace rbcast;
  std::cout << "E10: lossy channel + retransmission primitive "
               "(Section II remark)\n\n";

  bool shape_ok = true;
  struct ProtoCase {
    ProtocolKind protocol;
    AdversaryKind adversary;
    std::int64_t t;
    PlacementKind placement;
  };
  const std::int32_t r = 2;
  const ProtoCase protos[] = {
      {ProtocolKind::kCrashFlood, AdversaryKind::kSilent,
       crash_linf_achievable_max(r) / 2, PlacementKind::kRandomBounded},
      {ProtocolKind::kBvTwoHop, AdversaryKind::kLying,
       byz_linf_achievable_max(r), PlacementKind::kRandomBounded},
  };

  for (const ProtoCase& pc : protos) {
    std::cout << to_string(pc.protocol) << " vs " << to_string(pc.adversary)
              << " faults (t=" << pc.t << ", r=" << r << "):\n";
    Table table({"p_loss", "k=1 coverage", "k=2 coverage", "k=4 coverage",
                 "k=8 coverage", "wrong commits (all k)"});
    double k1_at_high_loss = 1.0, k8_at_high_loss = 0.0;
    for (const double p_loss : {0.0, 0.1, 0.3, 0.5, 0.8}) {
      std::int64_t wrong = 0;
      std::vector<double> coverages;
      for (const int k : {1, 2, 4, 8}) {
        SimConfig cfg;
        cfg.r = r;
        cfg.width = cfg.height = 8 * r + 4;
        cfg.metric = Metric::kLInf;
        cfg.t = pc.t;
        cfg.protocol = pc.protocol;
        cfg.adversary = pc.adversary;
        cfg.loss_p = p_loss;
        cfg.retransmissions = k;
        cfg.seed = 2200 + static_cast<std::uint64_t>(100 * p_loss) +
                   static_cast<std::uint64_t>(k);
        PlacementConfig placement;
        placement.kind = pc.placement;
        const Aggregate agg = run_repeated(cfg, placement, 3);
        coverages.push_back(agg.mean_coverage());
        wrong += agg.wrong_total;
      }
      table.row()
          .cell(p_loss, 2)
          .cell(coverages[0], 4)
          .cell(coverages[1], 4)
          .cell(coverages[2], 4)
          .cell(coverages[3], 4)
          .cell(wrong);
      if (wrong != 0) shape_ok = false;
      if (p_loss == 0.0) {
        // The lossless column must match the paper's model exactly.
        for (const double c : coverages) {
          if (c < 1.0) shape_ok = false;
        }
      }
      if (p_loss == 0.8) {
        k1_at_high_loss = coverages[0];
        k8_at_high_loss = coverages[3];
      }
    }
    table.print(std::cout);
    std::cout << "\n";
    // Retransmissions must repair what loss breaks.
    if (k8_at_high_loss < 0.99) shape_ok = false;
    if (k8_at_high_loss < k1_at_high_loss) shape_ok = false;
  }

  std::cout << (shape_ok
                    ? "SHAPE MATCHES EXPECTATION: loss degrades liveness "
                      "only; retransmissions restore it; safety unscathed\n"
                    : "SHAPE MISMATCH — see rows above\n");
  return shape_ok ? 0 : 1;
}
