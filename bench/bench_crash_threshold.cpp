// E3 — Reproduces Theorems 4 & 5 and Figs 8-10: the exact crash-stop
// threshold t = r(2r+1) in L∞.
//
// Sweeps t across r(2r+1) for r in {1,2,3} and runs plain flooding against:
//   * full width-r strips (the Fig 8 construction; legal exactly up to
//     t = r(2r+1)) — expected to partition the torus;
//   * punctured strips (densest legal barrier below the threshold) —
//     expected to leak, giving full coverage (the staged propagation of
//     Figs 9-10);
//   * random crash placements and mid-protocol crashes (crash-at-round).

#include <iostream>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/util/table.h"

int main() {
  using namespace rbcast;
  std::cout << "E3: crash-stop threshold in L-infinity (Theorems 4 & 5, "
               "Figs 8-10)\n\n";

  bool shape_ok = true;
  for (std::int32_t r = 1; r <= 3; ++r) {
    const std::int64_t n = r_2r_plus_1(r);
    std::cout << "r=" << r << ": paper threshold r(2r+1) = " << n
              << " (achievable up to " << n - 1 << ", impossible from " << n
              << ")\n";
    Table table({"t", "placement", "adversary", "success", "mean coverage",
                 "undecided frac", "paper verdict"});

    struct Case {
      std::int64_t t;
      PlacementKind placement;
      AdversaryKind adversary;
      bool trim;
      bool expect_success;
    };
    const Case cases[] = {
        {n - 2, PlacementKind::kPuncturedStrip, AdversaryKind::kSilent, true,
         true},
        {n - 1, PlacementKind::kPuncturedStrip, AdversaryKind::kSilent, true,
         true},
        {n - 1, PlacementKind::kRandomBounded, AdversaryKind::kSilent, true,
         true},
        {n - 1, PlacementKind::kPuncturedStrip, AdversaryKind::kCrashAtRound,
         true, true},
        {n, PlacementKind::kFullStrip, AdversaryKind::kSilent, false, false},
        {n + 2, PlacementKind::kFullStrip, AdversaryKind::kSilent, false,
         false},
    };
    for (const Case& c : cases) {
      SimConfig cfg;
      cfg.r = r;
      cfg.width = 8 * r + 4;
      cfg.height = (2 * r + 1) * 4;
      cfg.metric = Metric::kLInf;
      cfg.t = c.t;
      cfg.protocol = ProtocolKind::kCrashFlood;
      cfg.adversary = c.adversary;
      cfg.crash_round = 2;
      cfg.seed = 400 + static_cast<std::uint64_t>(c.t);
      PlacementConfig placement;
      placement.kind = c.placement;
      placement.trim = c.trim;
      const int reps = c.placement == PlacementKind::kRandomBounded ? 3 : 1;
      const Aggregate agg = run_repeated(cfg, placement, reps);
      table.row()
          .cell(c.t)
          .cell(to_string(c.placement))
          .cell(to_string(c.adversary))
          .cell(std::to_string(agg.successes) + "/" + std::to_string(agg.runs))
          .cell(agg.mean_coverage(), 4)
          .cell(1.0 - agg.mean_coverage(), 4)
          .cell(c.expect_success ? "achievable" : "impossible (partition)");
      if (agg.all_success() != c.expect_success) shape_ok = false;
      if (agg.wrong_total != 0) shape_ok = false;
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  std::cout << (shape_ok
                    ? "SHAPE MATCHES PAPER: partition appears exactly at "
                      "t = r(2r+1)\n"
                    : "SHAPE MISMATCH — see rows above\n");
  return shape_ok ? 0 : 1;
}
