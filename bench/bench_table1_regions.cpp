// E2 — Reproduces Table I and Figs 1-7: the constructive node-disjoint path
// families behind Theorem 3.
//
// For each radius this harness:
//   * prints Table I (the spatial extents of regions A, B1..D3) for the
//     paper's generic (p, q), instantiated at a representative (p, q);
//   * verifies, for EVERY valid (p, q), the region cardinalities, their
//     pairwise disjointness, containment in the single neighborhood, and
//     that the resulting family has exactly r(2r+1) node-disjoint paths of
//     at most 3 intermediates (Fig 5);
//   * does the same for the S1 families (Fig 6) and the reflected S2
//     families (Fig 7);
//   * checks the Section VI-A claim for every offset l of the decider P.

#include <iostream>
#include <string>

#include "radiobcast/core/analysis.h"
#include "radiobcast/paths/construction.h"
#include "radiobcast/util/table.h"

namespace {

using namespace rbcast;

std::string extent(const Rect& r) {
  if (r.empty()) return "(empty)";
  return std::to_string(r.x_lo) + " <= x <= " + std::to_string(r.x_hi) +
         " ; " + std::to_string(r.y_lo) + " <= y <= " + std::to_string(r.y_hi);
}

bool verify_family(const DisjointPathSet& family, std::int32_t r) {
  if (static_cast<std::int64_t>(family.paths.size()) != r_2r_plus_1(r)) {
    return false;
  }
  if (!validate(family, r, Metric::kLInf)) return false;
  for (const GridPath& p : family.paths) {
    if (p.intermediates() > 3) return false;
  }
  return true;
}

}  // namespace

int main() {
  std::cout << "E2: Table I & Figs 1-7 — constructive disjoint-path families "
               "(Theorem 3)\n\n";

  bool all_ok = true;
  for (std::int32_t r = 2; r <= 8; ++r) {
    // Representative Table I instantiation at the "middle" (p,q).
    const std::int32_t q = r;
    const std::int32_t p = (r + 1) / 2;
    const Table1Regions t = table1_regions(r, p, q);
    std::cout << "Table I for r=" << r << ", N=(p,q)=(" << p << "," << q
              << "), P=" << to_string(corner_P(r)) << ", single nbd centered "
              << to_string(center_for_U(r)) << ":\n";
    Table table({"Region", "extent", "count", "paper count", "match"});
    auto row = [&](const char* name, const Rect& rect, std::int64_t paper) {
      table.row().cell(name).cell(extent(rect)).cell(rect.count()).cell(paper)
          .cell(rect.count() == paper);
      all_ok = all_ok && rect.count() == paper;
    };
    row("A", t.A, static_cast<std::int64_t>(r - p + 1) * (r + q));
    row("B1", t.B1, static_cast<std::int64_t>(p - 1) * (r + q));
    row("B2", t.B2, static_cast<std::int64_t>(p - 1) * (r + q));
    row("C1", t.C1, static_cast<std::int64_t>(r - p) * (r - q + 1));
    row("C2", t.C2, static_cast<std::int64_t>(r - p) * (r - q + 1));
    row("D1", t.D1, static_cast<std::int64_t>(p) * (r - q + 1));
    row("D2", t.D2, static_cast<std::int64_t>(p) * (r - q + 1));
    row("D3", t.D3, static_cast<std::int64_t>(p) * (r - q + 1));
    table.print(std::cout);

    // Exhaustive verification across all cases.
    std::int64_t u_cases = 0, s1_cases = 0, s2_cases = 0;
    std::int64_t u_fail = 0, s1_fail = 0, s2_fail = 0;
    for (std::int32_t qq = 2; qq <= r; ++qq) {
      for (std::int32_t pp = 1; pp < qq; ++pp) {
        ++u_cases;
        if (!verify_family(family_for_U(r, pp, qq), r)) ++u_fail;
      }
    }
    for (std::int32_t pp = 0; pp <= r - 1; ++pp) {
      ++s1_cases;
      if (!verify_family(family_for_S1(r, pp), r)) ++s1_fail;
    }
    for (std::int32_t qq = 1; qq <= r - 1; ++qq) {
      for (std::int32_t pp = 0; pp < qq; ++pp) {
        ++s2_cases;
        if (!verify_family(family_for_S2(r, qq, pp), r)) ++s2_fail;
      }
    }
    // Section VI-A: arbitrary position of P.
    std::int64_t via_failures = 0;
    for (std::int32_t l = 0; l <= r; ++l) {
      if (arbitrary_p_connected_count(r, l) < r_2r_plus_1(r)) ++via_failures;
    }
    all_ok = all_ok && u_fail + s1_fail + s2_fail == 0 && via_failures == 0;

    Table summary({"check", "cases", "expected per case", "failures"});
    summary.row().cell("|M| = r(2r+1) (Fig 1)").cell(1)
        .cell(std::to_string(r_2r_plus_1(r)) + " nodes")
        .cell(static_cast<std::int64_t>(region_M(r).size()) == r_2r_plus_1(r)
                  ? 0 : 1);
    summary.row().cell("U families (Fig 5)").cell(u_cases)
        .cell(std::to_string(r_2r_plus_1(r)) + " disjoint paths").cell(u_fail);
    summary.row().cell("S1 families (Fig 6)").cell(s1_cases)
        .cell(std::to_string(r_2r_plus_1(r)) + " disjoint paths").cell(s1_fail);
    summary.row().cell("S2 families (Fig 7)").cell(s2_cases)
        .cell(std::to_string(r_2r_plus_1(r)) + " disjoint paths").cell(s2_fail);
    summary.row().cell("Sec VI-A connectivity >= r(2r+1)").cell(r + 1)
        .cell(">= " + std::to_string(r_2r_plus_1(r))).cell(via_failures);
    summary.print(std::cout);
    std::cout << "\n";
  }

  std::cout << (all_ok ? "ALL TABLE-I / FIG 1-7 CLAIMS VERIFIED\n"
                       : "SOME CLAIMS FAILED — see above\n");
  return all_ok ? 0 : 1;
}
