// E9 — Engineering micro-benchmarks of the networked runtime
// (google-benchmark): wire codec throughput, perfect-link message throughput
// over real UDP loopback sockets, and full scenario executions of the
// threaded harness. Like bench_engine_perf, these document the cost of the
// machinery — here the runtime/ stack a deployment runs on — rather than a
// paper claim.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "radiobcast/net/message.h"
#include "radiobcast/runtime/harness.h"
#include "radiobcast/runtime/perfect_link.h"
#include "radiobcast/runtime/transport.h"
#include "radiobcast/runtime/wire.h"

namespace {

using namespace rbcast;

Packet full_data_packet() {
  Packet packet;
  packet.sender = 1;
  for (std::size_t i = 0; i < kMaxBatch; ++i) {
    WireMessage wm;
    wm.kind = WireKind::kProtocol;
    wm.round = 12;
    wm.msg = make_heard({{1, 2}, {3, 4}, {5, 6}}, {0, 0}, 1);
    packet.entries.push_back(
        WireEntry{pack_message_id(1, static_cast<std::uint32_t>(i)), wm});
  }
  return packet;
}

// Encode + decode of a full kMaxBatch DATA datagram; items/s is link
// messages through the codec.
void BM_WireCodec(benchmark::State& state) {
  const Packet packet = full_data_packet();
  Packet decoded;
  for (auto _ : state) {
    const std::vector<std::uint8_t> bytes = encode_packet(packet);
    benchmark::DoNotOptimize(decode_packet(bytes, decoded));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(kMaxBatch));
}
BENCHMARK(BM_WireCodec);

// Headline runtime number: reliably-delivered messages per second through
// one PerfectLink over real UDP loopback sockets — batching, acking, dedup
// and FIFO release all on the hot path. Each iteration pushes a window of
// messages and pumps both endpoints until everything is delivered and acked.
void BM_RuntimeThroughput(benchmark::State& state) {
  const int window = static_cast<int>(state.range(0));
  UdpTransport ta(0), tb(0);
  const std::vector<std::uint16_t> ports = {ta.local_port(),
                                            tb.local_port()};
  ta.set_peers(ports);
  tb.set_peers(ports);
  PerfectLink a(0, ta);
  PerfectLink b(1, tb);

  WireMessage wm;
  wm.kind = WireKind::kProtocol;
  wm.msg = make_committed({3, 5}, 1);
  std::vector<ReceivedMessage> rx_a, rx_b;
  std::int64_t delivered = 0;
  for (auto _ : state) {
    for (int i = 0; i < window; ++i) {
      wm.round = delivered + i;
      a.send(1, wm);
    }
    a.flush();
    std::size_t got = 0;
    while (got < static_cast<std::size_t>(window) || !a.all_acked()) {
      rx_b.clear();
      b.poll(rx_b);
      got += rx_b.size();
      rx_a.clear();
      a.poll(rx_a);
      a.tick(std::chrono::steady_clock::now());
    }
    delivered += window;
  }
  state.SetItemsProcessed(delivered);
}
BENCHMARK(BM_RuntimeThroughput)->Arg(64)->Arg(512);

// Whole-deployment cost: one full threaded scenario run on a small torus —
// sockets bound, N node threads, every round barriered, verdicts scored.
// items/s is runtime rounds per second across the whole torus.
void BM_RuntimeScenario(benchmark::State& state) {
  Scenario scenario;
  scenario.sim.width = 3;
  scenario.sim.height = 3;
  scenario.sim.r = 1;
  scenario.sim.t = 0;
  scenario.sim.protocol = ProtocolKind::kCrashFlood;
  scenario.sim.max_rounds = 16;
  scenario.round_timeout_ms = 0;
  scenario.linger_timeout_ms = 2000;
  std::int64_t rounds = 0;
  for (auto _ : state) {
    const RuntimeResult result = run_scenario_threads(scenario);
    if (!result.success()) state.SkipWithError("broadcast failed");
    rounds += result.rounds;
  }
  state.SetItemsProcessed(rounds);
}
// Real time, not CPU time: the work happens on the nine node threads, not
// the timing thread, and rounds/s is a wall-clock claim.
BENCHMARK(BM_RuntimeScenario)->Unit(benchmark::kMillisecond)->UseRealTime();

// Backend round-rate comparison: the same 3x3 deployment as
// BM_RuntimeScenario, parametrized over the event backend, run long enough
// (128 rounds) that steady-state round rate dominates thread/socket setup.
// The poll row is bound by the 50us sleep cadence of the barrier chain and
// by per-datagram loopback syscalls; the plain epoll row trades naps for
// readiness wakeups but still pays the kernel for every datagram; the
// epoll_swarm row moves member traffic onto SwarmHub condvar mailboxes and
// is the headline: user-CPU bound, no kernel on the datagram path, >= 5x the
// poll row's rounds/s on the same machine (BENCH_pr9.json pins the ratio).
void BM_RuntimeRoundRate(benchmark::State& state, RuntimeBackend backend,
                         bool shared_socket) {
  Scenario scenario;
  scenario.sim.width = 3;
  scenario.sim.height = 3;
  scenario.sim.r = 1;
  scenario.sim.t = 0;
  scenario.sim.protocol = ProtocolKind::kCrashFlood;
  scenario.sim.max_rounds = 128;
  scenario.backend = backend;
  scenario.shared_socket = shared_socket;
  scenario.round_timeout_ms = 0;
  scenario.linger_timeout_ms = 2000;
  std::int64_t rounds = 0;
  for (auto _ : state) {
    const RuntimeResult result = run_scenario_threads(scenario);
    if (!result.success()) state.SkipWithError("broadcast failed");
    rounds += result.rounds;
  }
  state.SetItemsProcessed(rounds);
}
BENCHMARK_CAPTURE(BM_RuntimeRoundRate, poll, RuntimeBackend::kPoll, false)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_RuntimeRoundRate, epoll, RuntimeBackend::kEpoll, false)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK_CAPTURE(BM_RuntimeRoundRate, epoll_swarm, RuntimeBackend::kEpoll,
                  true)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Swarm scale: a 256-node (16x16) crash-flood deployment as in-process
// threads sharing ONE UDP socket (SwarmHub) under the epoll backend —
// member traffic moves through condvar mailboxes, never the kernel. items/s
// is runtime rounds per second across the whole swarm. One iteration is a
// whole deployment (~thousands of node-rounds), so a single iteration per
// measurement keeps the bench under control on shared runners.
void BM_RuntimeSwarm(benchmark::State& state) {
  Scenario scenario;
  scenario.sim.width = 16;
  scenario.sim.height = 16;
  scenario.sim.r = 1;
  scenario.sim.t = 3;
  scenario.sim.protocol = ProtocolKind::kCrashFlood;
  scenario.sim.max_rounds = 12;
  scenario.faults = {{4, 4}, {11, 3}, {7, 12}};
  scenario.backend = RuntimeBackend::kEpoll;
  scenario.shared_socket = true;
  scenario.round_timeout_ms = 0;
  scenario.linger_timeout_ms = 5000;
  std::int64_t rounds = 0;
  for (auto _ : state) {
    const RuntimeResult result = run_scenario_threads(scenario);
    if (!result.success()) state.SkipWithError("broadcast failed");
    rounds += result.rounds;
  }
  state.SetItemsProcessed(rounds);
}
BENCHMARK(BM_RuntimeSwarm)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

// Lossy-channel deployment cost: loss_p > 0 switches every node from the
// shared-broadcast fast path to the per-receiver fan-out (one pairwise loss
// draw and an individual link send per (message, receiver), plus a
// per-receiver ROUND_DONE marker). This is the runtime analogue of the
// simulator's lossy ablations; the interesting number is the overhead
// relative to BM_RuntimeScenario, not the absolute rounds/s.
void BM_RuntimeLossy(benchmark::State& state) {
  Scenario scenario;
  scenario.sim.width = 3;
  scenario.sim.height = 3;
  scenario.sim.r = 1;
  scenario.sim.t = 0;
  scenario.sim.protocol = ProtocolKind::kCrashFlood;
  scenario.sim.max_rounds = 16;
  scenario.sim.seed = 2026;
  scenario.sim.loss_p = 0.1;
  scenario.round_timeout_ms = 0;
  scenario.linger_timeout_ms = 2000;
  std::int64_t rounds = 0;
  for (auto _ : state) {
    const RuntimeResult result = run_scenario_threads(scenario);
    if (result.wrong_commits != 0) state.SkipWithError("wrong commit");
    benchmark::DoNotOptimize(result.counters.envelopes_dropped);
    rounds += result.rounds;
  }
  state.SetItemsProcessed(rounds);
}
BENCHMARK(BM_RuntimeLossy)->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
