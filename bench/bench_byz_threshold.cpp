// E1 — Reproduces the headline result: the exact Byzantine threshold
// t < r(2r+1)/2 in L∞ (Theorem 1 achievability + [Koo04] impossibility,
// which together close the gap left open in [Koo04]).
//
// For each radius, sweeps the fault budget t across the threshold and runs
// the Bhandari–Vaidya protocol (two-hop variant for the sweeps; Section VI-B
// proves it attains the same threshold; the 4-hop variant is cross-checked
// at r=1) against:
//   * the Koo-style half-density (checkerboard) strip barrier, silent;
//   * the same barrier, lying (wrong COMMITTED + forged HEARD reports);
//   * budget-respecting random placements (multiple seeds).
//
// Expected shape: success on every row with t <= ceil(r(2r+1)/2)-1, failure
// of the barrier rows at t >= ceil(r(2r+1)/2), and wrong-commits == 0
// everywhere (Theorem 2).

#include <algorithm>
#include <iostream>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/util/table.h"

namespace {

using namespace rbcast;

struct RowSpec {
  AdversaryKind adversary;
  PlacementKind placement;
  int reps;
  const char* label;
};

}  // namespace

int main() {
  std::cout
      << "E1: Byzantine threshold in L-infinity (Theorem 1 + [Koo04])\n"
      << "protocol: bv-2hop (Section VI-B; same exact threshold as Section "
         "VI)\n\n";

  bool shape_ok = true;
  for (std::int32_t r = 1; r <= 2; ++r) {
    const std::int64_t t_star = byz_linf_achievable_max(r);
    const std::int64_t t_imp = byz_linf_impossible_min(r);
    std::cout << "r=" << r << ": paper says achievable iff t < r(2r+1)/2 = "
              << r_2r_plus_1(r) << "/2, i.e. t <= " << t_star
              << "; impossible from t = " << t_imp << "\n";

    Table table({"t", "adversary", "placement", "runs", "success",
                 "mean coverage", "wrong commits", "paper verdict"});
    const RowSpec rows[] = {
        {AdversaryKind::kSilent, PlacementKind::kCheckerboardStrip, 1,
         "barrier"},
        {AdversaryKind::kLying, PlacementKind::kCheckerboardStrip, 1,
         "barrier"},
        {AdversaryKind::kLying, PlacementKind::kRandomBounded, 3, "random"},
    };
    for (std::int64_t t = std::max<std::int64_t>(0, t_star - 2);
         t <= t_imp + 1; ++t) {
      for (const RowSpec& spec : rows) {
        SimConfig cfg;
        cfg.r = r;
        cfg.width = 8 * r + 4;
        cfg.height = (2 * r + 1) * 4;
        cfg.metric = Metric::kLInf;
        cfg.t = t;
        cfg.protocol = ProtocolKind::kBvTwoHop;
        cfg.adversary = spec.adversary;
        cfg.seed = 1000 + static_cast<std::uint64_t>(t);
        PlacementConfig placement;
        placement.kind = spec.placement;
        placement.trim = true;
        const Aggregate agg = run_repeated(cfg, placement, spec.reps);
        const bool achievable = t <= t_star;
        table.row()
            .cell(t)
            .cell(to_string(spec.adversary))
            .cell(spec.label)
            .cell(agg.runs)
            .cell(std::to_string(agg.successes) + "/" +
                  std::to_string(agg.runs))
            .cell(agg.mean_coverage, 4)
            .cell(agg.wrong_total)
            .cell(achievable ? "achievable" : "impossible region");
        if (agg.wrong_total != 0) shape_ok = false;
        if (achievable && !agg.all_success()) shape_ok = false;
        // In the impossible region the *barrier* must stall the protocol.
        if (!achievable && spec.placement == PlacementKind::kCheckerboardStrip &&
            agg.all_success()) {
          shape_ok = false;
        }
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // r=3, barrier adversaries only (narrow sweep; the 28x28 two-hop runs are
  // the most expensive in this harness).
  {
    const std::int32_t r = 3;
    const std::int64_t t_star = byz_linf_achievable_max(r);
    std::cout << "r=" << r << ": achievable up to t = " << t_star
              << ", impossible from " << byz_linf_impossible_min(r) << "\n";
    Table table({"t", "adversary", "success", "mean coverage",
                 "wrong commits", "paper verdict"});
    for (std::int64_t t = t_star - 1; t <= t_star + 1; ++t) {
      for (const AdversaryKind adversary :
           {AdversaryKind::kSilent, AdversaryKind::kLying}) {
        SimConfig cfg;
        cfg.r = r;
        cfg.width = 8 * r + 4;
        cfg.height = (2 * r + 1) * 4;
        cfg.metric = Metric::kLInf;
        cfg.t = t;
        cfg.protocol = ProtocolKind::kBvTwoHop;
        cfg.adversary = adversary;
        cfg.seed = 3000 + static_cast<std::uint64_t>(t);
        PlacementConfig placement;
        placement.kind = PlacementKind::kCheckerboardStrip;
        placement.trim = true;
        const Aggregate agg = run_repeated(cfg, placement, 1);
        const bool achievable = t <= t_star;
        table.row()
            .cell(t)
            .cell(to_string(adversary))
            .cell(agg.all_success())
            .cell(agg.mean_coverage, 4)
            .cell(agg.wrong_total)
            .cell(achievable ? "achievable" : "impossible region");
        if (agg.wrong_total != 0) shape_ok = false;
        if (achievable != agg.all_success()) shape_ok = false;
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // Cross-check: the full 4-hop protocol (flood relays) flips at the same
  // budget for r=1.
  {
    std::cout << "cross-check: bv-4hop-flood at r=1\n";
    Table table({"t", "success", "mean coverage", "wrong commits",
                 "paper verdict"});
    for (std::int64_t t = byz_linf_achievable_max(1);
         t <= byz_linf_impossible_min(1); ++t) {
      SimConfig cfg;
      cfg.r = 1;
      cfg.width = 12;
      cfg.height = 12;
      cfg.metric = Metric::kLInf;
      cfg.t = t;
      cfg.protocol = ProtocolKind::kBvIndirectFlood;
      cfg.adversary = AdversaryKind::kSilent;
      cfg.seed = 7;
      PlacementConfig placement;
      placement.kind = PlacementKind::kCheckerboardStrip;
      placement.trim = true;
      const Aggregate agg = run_repeated(cfg, placement, 1);
      const bool achievable = t <= byz_linf_achievable_max(1);
      table.row()
          .cell(t)
          .cell(agg.all_success())
          .cell(agg.mean_coverage, 4)
          .cell(agg.wrong_total)
          .cell(achievable ? "achievable" : "impossible region");
      if (achievable != agg.all_success()) shape_ok = false;
    }
    table.print(std::cout);
  }

  std::cout << "\n"
            << (shape_ok
                    ? "SHAPE MATCHES PAPER: flip exactly at ceil(r(2r+1)/2), "
                      "zero wrong commits everywhere\n"
                    : "SHAPE MISMATCH — see rows above\n");
  return shape_ok ? 0 : 1;
}
