// E1 — Reproduces the headline result: the exact Byzantine threshold
// t < r(2r+1)/2 in L∞ (Theorem 1 achievability + [Koo04] impossibility,
// which together close the gap left open in [Koo04]).
//
// For each radius, sweeps the fault budget t across the threshold and runs
// the Bhandari–Vaidya protocol (two-hop variant for the sweeps; Section VI-B
// proves it attains the same threshold; the 4-hop variant is cross-checked
// at r=1) against:
//   * the Koo-style half-density (checkerboard) strip barrier, silent;
//   * the same barrier, lying (wrong COMMITTED + forged HEARD reports);
//   * budget-respecting random placements (multiple seeds).
//
// Expected shape: success on every row with t <= ceil(r(2r+1)/2)-1, failure
// of the barrier rows at t >= ceil(r(2r+1)/2), and wrong-commits == 0
// everywhere (Theorem 2).
//
// The sweeps are dispatched through the campaign engine (campaign/engine.h):
// all (t, adversary, placement) cells of one radius run concurrently on the
// worker pool, and the per-cell aggregates are identical to a serial run by
// the engine's determinism guarantee (each cell keeps its historical seed).

#include <algorithm>
#include <iostream>
#include <vector>

#include "radiobcast/campaign/engine.h"
#include "radiobcast/core/analysis.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/util/table.h"

namespace {

using namespace rbcast;

struct RowSpec {
  AdversaryKind adversary;
  PlacementKind placement;
  int reps;
  const char* label;
};

CampaignCell make_cell(std::int32_t r, std::int64_t t, const RowSpec& spec) {
  CampaignCell cell;
  cell.sim.r = r;
  cell.sim.width = 8 * r + 4;
  cell.sim.height = (2 * r + 1) * 4;
  cell.sim.metric = Metric::kLInf;
  cell.sim.t = t;
  cell.sim.protocol = ProtocolKind::kBvTwoHop;
  cell.sim.adversary = spec.adversary;
  cell.sim.seed = (r == 3 ? 3000 : 1000) + static_cast<std::uint64_t>(t);
  cell.placement.kind = spec.placement;
  cell.placement.trim = true;
  cell.reps = spec.reps;
  cell.label = spec.label;
  return cell;
}

}  // namespace

int main() {
  std::cout
      << "E1: Byzantine threshold in L-infinity (Theorem 1 + [Koo04])\n"
      << "protocol: bv-2hop (Section VI-B; same exact threshold as Section "
         "VI)\n\n";

  bool shape_ok = true;
  for (std::int32_t r = 1; r <= 2; ++r) {
    const std::int64_t t_star = byz_linf_achievable_max(r);
    const std::int64_t t_imp = byz_linf_impossible_min(r);
    std::cout << "r=" << r << ": paper says achievable iff t < r(2r+1)/2 = "
              << r_2r_plus_1(r) << "/2, i.e. t <= " << t_star
              << "; impossible from t = " << t_imp << "\n";

    const RowSpec rows[] = {
        {AdversaryKind::kSilent, PlacementKind::kCheckerboardStrip, 1,
         "barrier"},
        {AdversaryKind::kLying, PlacementKind::kCheckerboardStrip, 1,
         "barrier"},
        {AdversaryKind::kLying, PlacementKind::kRandomBounded, 3, "random"},
    };
    std::vector<CampaignCell> cells;
    for (std::int64_t t = std::max<std::int64_t>(0, t_star - 2);
         t <= t_imp + 1; ++t) {
      for (const RowSpec& spec : rows) cells.push_back(make_cell(r, t, spec));
    }
    const CampaignResult sweep = run_cells(cells);

    Table table({"t", "adversary", "placement", "runs", "success",
                 "mean coverage", "wrong commits", "paper verdict"});
    for (const CellResult& cell : sweep.cells) {
      const Aggregate& agg = cell.aggregate;
      const std::int64_t t = cell.cell.sim.t;
      const bool achievable = t <= t_star;
      table.row()
          .cell(t)
          .cell(to_string(cell.cell.sim.adversary))
          .cell(cell.cell.label)
          .cell(agg.runs)
          .cell(std::to_string(agg.successes) + "/" +
                std::to_string(agg.runs))
          .cell(agg.mean_coverage(), 4)
          .cell(agg.wrong_total)
          .cell(achievable ? "achievable" : "impossible region");
      if (agg.wrong_total != 0) shape_ok = false;
      if (achievable && !agg.all_success()) shape_ok = false;
      // In the impossible region the *barrier* must stall the protocol.
      if (!achievable &&
          cell.cell.placement.kind == PlacementKind::kCheckerboardStrip &&
          agg.all_success()) {
        shape_ok = false;
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // r=3, barrier adversaries only (narrow sweep; the 28x28 two-hop runs are
  // the most expensive in this harness).
  {
    const std::int32_t r = 3;
    const std::int64_t t_star = byz_linf_achievable_max(r);
    std::cout << "r=" << r << ": achievable up to t = " << t_star
              << ", impossible from " << byz_linf_impossible_min(r) << "\n";
    std::vector<CampaignCell> cells;
    for (std::int64_t t = t_star - 1; t <= t_star + 1; ++t) {
      for (const AdversaryKind adversary :
           {AdversaryKind::kSilent, AdversaryKind::kLying}) {
        cells.push_back(make_cell(
            r, t,
            {adversary, PlacementKind::kCheckerboardStrip, 1, "barrier"}));
      }
    }
    const CampaignResult sweep = run_cells(cells);

    Table table({"t", "adversary", "success", "mean coverage",
                 "wrong commits", "paper verdict"});
    for (const CellResult& cell : sweep.cells) {
      const Aggregate& agg = cell.aggregate;
      const std::int64_t t = cell.cell.sim.t;
      const bool achievable = t <= t_star;
      table.row()
          .cell(t)
          .cell(to_string(cell.cell.sim.adversary))
          .cell(agg.all_success())
          .cell(agg.mean_coverage(), 4)
          .cell(agg.wrong_total)
          .cell(achievable ? "achievable" : "impossible region");
      if (agg.wrong_total != 0) shape_ok = false;
      if (achievable != agg.all_success()) shape_ok = false;
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // Cross-check: the full 4-hop protocol (flood relays) flips at the same
  // budget for r=1.
  {
    std::cout << "cross-check: bv-4hop-flood at r=1\n";
    Table table({"t", "success", "mean coverage", "wrong commits",
                 "paper verdict"});
    for (std::int64_t t = byz_linf_achievable_max(1);
         t <= byz_linf_impossible_min(1); ++t) {
      SimConfig cfg;
      cfg.r = 1;
      cfg.width = 12;
      cfg.height = 12;
      cfg.metric = Metric::kLInf;
      cfg.t = t;
      cfg.protocol = ProtocolKind::kBvIndirectFlood;
      cfg.adversary = AdversaryKind::kSilent;
      cfg.seed = 7;
      PlacementConfig placement;
      placement.kind = PlacementKind::kCheckerboardStrip;
      placement.trim = true;
      const Aggregate agg = run_repeated(cfg, placement, 1);
      const bool achievable = t <= byz_linf_achievable_max(1);
      table.row()
          .cell(t)
          .cell(agg.all_success())
          .cell(agg.mean_coverage(), 4)
          .cell(agg.wrong_total)
          .cell(achievable ? "achievable" : "impossible region");
      if (achievable != agg.all_success()) shape_ok = false;
    }
    table.print(std::cout);
  }

  std::cout << "\n"
            << (shape_ok
                    ? "SHAPE MATCHES PAPER: flip exactly at ceil(r(2r+1)/2), "
                      "zero wrong commits everywhere\n"
                    : "SHAPE MISMATCH — see rows above\n");
  return shape_ok ? 0 : 1;
}
