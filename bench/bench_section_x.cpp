// E12 — Section X: the impact of address spoofing and collisions, plus the
// Section II TDMA schedule that the whole model presupposes.
//
//  (a) TDMA: "such schedules are easily determined for the grid network" —
//      we construct the canonical (2r+1)^2-slot schedule and verify, for
//      each radius, that no two same-slot transmitters can reach a common
//      receiver (exhaustively, both metrics).
//  (b) Spoofing: "if address spoofing is allowed, any malicious node may
//      attempt to impersonate any honest node" — negative control: the same
//      single-fault placement that is harmless under an ordinary liar
//      produces wrong commits once spoofing is enabled, for CPA and for the
//      BV protocol. Safety genuinely rests on the no-spoofing assumption.
//  (c) Collisions: "reliable broadcast is rendered impossible if the
//      adversary can cause an unbounded number of collisions ... when the
//      number of collisions is bounded ... trivially solved by
//      re-transmitting a sufficient number of times" — jam-budget ×
//      retransmission matrix.

#include <iostream>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/net/tdma.h"
#include "radiobcast/util/table.h"

int main() {
  using namespace rbcast;
  std::cout << "E12: Section X — spoofing, collisions; Section II TDMA\n\n";

  bool shape_ok = true;

  // --- (a) TDMA schedules --------------------------------------------------
  std::cout << "(a) canonical TDMA schedule, exhaustive validity:\n";
  Table tdma({"r", "slots (2r+1)^2", "torus", "Linf conflicts",
              "L2 conflicts"});
  for (std::int32_t r = 1; r <= 3; ++r) {
    const std::int32_t period = 2 * r + 1;
    const Torus torus(4 * period, 4 * period);
    const bool linf_ok = !find_tdma_violation(torus, r, Metric::kLInf);
    const bool l2_ok = !find_tdma_violation(torus, r, Metric::kL2);
    tdma.row()
        .cell(std::to_string(r))
        .cell(tdma_slot_count(r))
        .cell(std::to_string(torus.width()) + "x" +
              std::to_string(torus.height()))
        .cell(linf_ok ? "none" : "FOUND")
        .cell(l2_ok ? "none" : "FOUND");
    if (!linf_ok || !l2_ok) shape_ok = false;
  }
  tdma.print(std::cout);
  std::cout << "\n";

  // --- (b) Spoofing negative control ---------------------------------------
  std::cout << "(b) spoofing negative control (single fault at (6,6), t=1, "
               "12x12, r=1):\n";
  Table spoof({"protocol", "adversary", "wrong commits", "paper expectation"});
  for (const ProtocolKind protocol :
       {ProtocolKind::kCpa, ProtocolKind::kBvTwoHop}) {
    for (const AdversaryKind adversary :
         {AdversaryKind::kLying, AdversaryKind::kSpoofing}) {
      SimConfig cfg;
      cfg.width = cfg.height = 12;
      cfg.r = 1;
      cfg.metric = Metric::kLInf;
      cfg.t = 1;
      cfg.protocol = protocol;
      cfg.adversary = adversary;
      cfg.seed = 77;
      Torus torus(cfg.width, cfg.height);
      FaultSet faults(torus, {{6, 6}});
      const auto result = run_simulation(cfg, faults);
      const bool spoofing = adversary == AdversaryKind::kSpoofing;
      spoof.row()
          .cell(to_string(protocol))
          .cell(to_string(adversary))
          .cell(result.wrong_commits)
          .cell(spoofing ? "safety broken (> 0)" : "safe (= 0)");
      if (spoofing && result.wrong_commits == 0) shape_ok = false;
      if (!spoofing && result.wrong_commits != 0) shape_ok = false;
    }
  }
  spoof.print(std::cout);
  std::cout << "\n";

  // --- (c) Bounded collisions vs retransmissions ---------------------------
  std::cout << "(c) jamming: coverage under jam budget x retransmissions "
               "(crash flooding, two jammers, 12x12, r=1):\n";
  Table jam({"jam budget", "k=1", "k=4", "k=16", "paper expectation"});
  for (const std::int64_t budget : {std::int64_t{0}, std::int64_t{20},
                                    std::int64_t{200}, std::int64_t{-1}}) {
    std::vector<double> cov;
    for (const int k : {1, 4, 16}) {
      SimConfig cfg;
      cfg.width = cfg.height = 12;
      cfg.r = 1;
      cfg.metric = Metric::kLInf;
      cfg.protocol = ProtocolKind::kCrashFlood;
      cfg.adversary = AdversaryKind::kJamming;
      cfg.jam_budget = budget;
      cfg.retransmissions = k;
      cfg.seed = 99;
      Torus torus(cfg.width, cfg.height);
      FaultSet faults(torus, {{6, 6}, {2, 9}});
      const auto result = run_simulation(cfg, faults);
      cov.push_back(result.coverage());
    }
    const char* expectation =
        budget < 0 ? "impossible (vicinity deaf)"
                   : (budget == 0 ? "harmless" : "retransmissions win");
    jam.row()
        .cell(budget < 0 ? std::string("unbounded") : std::to_string(budget))
        .cell(cov[0], 4)
        .cell(cov[1], 4)
        .cell(cov[2], 4)
        .cell(expectation);
    if (budget == 0 && cov[0] < 1.0) shape_ok = false;
    if (budget > 0 && cov[2] < 1.0) shape_ok = false;  // k=16 beats budgets
    if (budget < 0 && cov[2] >= 1.0) shape_ok = false;  // unbounded: never
  }
  jam.print(std::cout);

  std::cout << "\n"
            << (shape_ok
                    ? "SHAPE MATCHES PAPER: TDMA valid; spoofing breaks "
                      "safety; bounded collisions lose to retransmission, "
                      "unbounded collisions win\n"
                    : "SHAPE MISMATCH — see rows above\n");
  return shape_ok ? 0 : 1;
}
