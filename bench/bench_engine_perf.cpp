// E8 — Engineering micro-benchmarks of the simulator substrate
// (google-benchmark): round-engine throughput, the Dinic disjoint-path
// verifier, the evidence set-packing solver, neighborhood tables and fault
// validators. These do not reproduce paper claims; they document the cost of
// the machinery the reproductions run on.

#include <benchmark/benchmark.h>

#include <memory>
#include <thread>

#include "radiobcast/campaign/engine.h"
#include "radiobcast/net/network.h"
#include "radiobcast/core/analysis.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/fault/placement.h"
#include "radiobcast/grid/neighborhood.h"
#include "radiobcast/paths/construction.h"
#include "radiobcast/paths/disjoint.h"
#include "radiobcast/paths/packing.h"
#include "radiobcast/protocols/determination.h"
#include "radiobcast/protocols/pool.h"
#include "radiobcast/util/rng.h"

namespace {

using namespace rbcast;

void BM_CrashFloodFullTorus(benchmark::State& state) {
  const auto r = static_cast<std::int32_t>(state.range(0));
  SimConfig cfg;
  cfg.r = r;
  cfg.width = cfg.height = 8 * r + 4;
  cfg.protocol = ProtocolKind::kCrashFlood;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_simulation(cfg, FaultSet{}));
  }
  state.SetItemsProcessed(state.iterations() * cfg.width * cfg.height);
}
BENCHMARK(BM_CrashFloodFullTorus)->Arg(1)->Arg(2)->Arg(3);

// The structure-of-arrays trial engine at scale: a full crash-flood trial on
// large toruses, behavior-backed (second Arg 0) vs SoA-pooled (second Arg 1).
// The interleaved rows are the before/after evidence for the SoA engine —
// bench/artifacts/BENCH_pr10.json curates them and scripts/bench_compare.py
// gates the speedup. 1024x1024 runs pooled only: it is the million-node
// headline row (the behavior engine's per-node heap objects make it
// pointlessly slow at that size).
void BM_CrashFloodLargeTorus(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const bool soa = state.range(1) != 0;
  const bool prev = soa_pools_enabled();
  set_soa_pools_enabled(soa);
  SimConfig cfg;
  cfg.r = 1;
  cfg.width = cfg.height = side;
  cfg.protocol = ProtocolKind::kCrashFlood;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_simulation(cfg, FaultSet{}));
  }
  set_soa_pools_enabled(prev);
  state.SetItemsProcessed(state.iterations() * cfg.width * cfg.height);
  state.counters["soa"] = soa ? 1 : 0;
}
BENCHMARK(BM_CrashFloodLargeTorus)
    ->Args({256, 0})
    ->Args({256, 1})
    ->Args({512, 0})
    ->Args({512, 1})
    ->Args({1024, 1})
    ->Unit(benchmark::kMillisecond);

// Same before/after shape for the two-hop Byzantine protocol, whose pool
// replaces per-node maps/sets with packed open-addressing tables. Smaller
// sides than crash-flood: the protocol does O(|2-hop nbd|) work per delivery.
void BM_BvTwoHopLargeTorus(benchmark::State& state) {
  const auto side = static_cast<std::int32_t>(state.range(0));
  const bool soa = state.range(1) != 0;
  const bool prev = soa_pools_enabled();
  set_soa_pools_enabled(soa);
  SimConfig cfg;
  cfg.r = 1;
  cfg.width = cfg.height = side;
  cfg.protocol = ProtocolKind::kBvTwoHop;
  cfg.t = byz_linf_achievable_max(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_simulation(cfg, FaultSet{}));
  }
  set_soa_pools_enabled(prev);
  state.SetItemsProcessed(state.iterations() * cfg.width * cfg.height);
  state.counters["soa"] = soa ? 1 : 0;
}
BENCHMARK(BM_BvTwoHopLargeTorus)
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMillisecond);

void BM_BvTwoHopFullTorus(benchmark::State& state) {
  const auto r = static_cast<std::int32_t>(state.range(0));
  SimConfig cfg;
  cfg.r = r;
  cfg.width = cfg.height = 8 * r + 4;
  cfg.protocol = ProtocolKind::kBvTwoHop;
  cfg.t = byz_linf_achievable_max(r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_simulation(cfg, FaultSet{}));
  }
  state.SetItemsProcessed(state.iterations() * cfg.width * cfg.height);
}
BENCHMARK(BM_BvTwoHopFullTorus)->Arg(1)->Arg(2);

// Pure delivery fan-out cost of the round engine: every node rebroadcasts a
// COMMITTED each round, so one run_round() is n transmissions x |nbd|
// deliveries with trivial behavior work. items/s is deliveries/s — the
// direct measure of the per-delivery hot path (CSR adjacency, behavior
// dispatch, counter upkeep) with protocol logic factored out.
void BM_RoundDeliveryFanout(benchmark::State& state) {
  class ChatterBehavior final : public NodeBehavior {
   public:
    void on_start(NodeContext& ctx) override {
      ctx.broadcast(make_committed(ctx.self(), 1));
    }
    void on_receive(NodeContext&, const Envelope&) override {}
    void on_round_end(NodeContext& ctx) override {
      ctx.broadcast(make_committed(ctx.self(), 1));
    }
  };
  const auto r = static_cast<std::int32_t>(state.range(0));
  const std::int32_t side = 8 * r + 4;
  RadioNetwork net(Torus(side, side), r, Metric::kLInf, 1);
  for (const Coord c : net.torus().all_coords()) {
    net.set_behavior(c, std::make_unique<ChatterBehavior>());
  }
  net.start();
  net.run_round();  // prime: buffers at steady-state capacity
  for (auto _ : state) {
    net.run_round();
  }
  const std::int64_t deliveries_per_round =
      net.torus().node_count() * NeighborhoodTable::get(r, Metric::kLInf).size();
  state.SetItemsProcessed(state.iterations() * deliveries_per_round);
}
BENCHMARK(BM_RoundDeliveryFanout)->Arg(1)->Arg(2)->Arg(3);

// HEARD-heavy evidence path: the faithful flooding relay mode generates the
// maximal report traffic (every plausible chain is relayed), so this pins the
// cost of HEARD dedup, evidence accumulation, and the per-round
// determination sweep.
void BM_HeardFlood(benchmark::State& state) {
  const auto r = static_cast<std::int32_t>(state.range(0));
  SimConfig cfg;
  cfg.r = r;
  // Deliberately smaller than the 8r+4 benchmark tori: flood-mode relay
  // traffic grows superlinearly in the node count, and the evidence-path
  // cost this benchmark isolates is already dominant at 4r+4.
  cfg.width = cfg.height = 4 * r + 4;
  cfg.protocol = ProtocolKind::kBvIndirectFlood;
  cfg.t = byz_linf_achievable_max(r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_simulation(cfg, FaultSet{}));
  }
  state.SetItemsProcessed(state.iterations() * cfg.width * cfg.height);
}
BENCHMARK(BM_HeardFlood)->Arg(1)->Arg(2);

// Isolated cost of the incremental determination engine
// (protocols/determination.h): a synthetic decider at r=2 / t=4 absorbing a
// seeded stream of plausible relayer chains, with the round-end evaluation
// every |nbd| reports. No network, no protocol dispatch — this pins
// add_report (bitset AND + digest update), the dirty-center sweep, and the
// packing memo, the three pieces BM_HeardFlood exercises end-to-end.
void BM_Determination(benchmark::State& state) {
  const std::int32_t r = 2;
  const std::int64_t t = byz_linf_achievable_max(r);
  const CenterTable& table = CenterTable::get(r, Metric::kLInf, 12, 12);
  // Pre-generate plausible chains (each hop <= r, nodes distinct, nonzero):
  // enough that the stream does not just saturate the dedup set.
  Rng rng(1234);
  struct Chain {
    std::array<Offset, 4> rel{};
    std::size_t n = 0;
    std::uint64_t key = 0;
  };
  std::vector<Chain> chains;
  while (chains.size() < 4096) {
    Chain c;
    c.n = 1 + rng.below(3);
    Offset at{0, 0};
    bool ok = true;
    for (std::size_t i = 0; i < c.n; ++i) {
      at.dx += static_cast<std::int32_t>(rng.below(2 * r + 1)) - r;
      at.dy += static_cast<std::int32_t>(rng.below(2 * r + 1)) - r;
      if (at == Offset{0, 0}) {
        ok = false;
        break;
      }
      c.rel[i] = at;
      for (std::size_t j = 0; j < i; ++j) {
        if (c.rel[j] == at) ok = false;
      }
    }
    if (!ok || !within_radius(c.rel[0], r, Metric::kLInf)) continue;
    c.key = c.n;
    for (std::size_t i = 0; i < c.n; ++i) {
      c.key = (c.key << 16) |
              (static_cast<std::uint64_t>(static_cast<std::uint8_t>(
                   c.rel[i].dx))
               << 8) |
              static_cast<std::uint64_t>(static_cast<std::uint8_t>(
                  c.rel[i].dy));
    }
    chains.push_back(c);
  }
  const std::uint64_t seed = det_digest_seed(r, Metric::kLInf, t);
  PackingMemo& memo = PackingMemo::thread_instance();
  std::int64_t reports = 0;
  for (auto _ : state) {
    IncrementalDetermination det(table, t, 8, seed);
    for (std::size_t i = 0; i < chains.size(); ++i) {
      const Chain& c = chains[i];
      if (det.add_report(std::span<const Offset>(c.rel.data(), c.n), c.key)) {
        ++reports;
      }
      if ((i & 31) == 31) benchmark::DoNotOptimize(det.evaluate(memo));
    }
    benchmark::DoNotOptimize(det.evaluate(memo));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(chains.size()));
  state.counters["accepted"] =
      static_cast<double>(reports) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_Determination);

void BM_BvEarmarkedFullTorus(benchmark::State& state) {
  const auto r = static_cast<std::int32_t>(state.range(0));
  SimConfig cfg;
  cfg.r = r;
  cfg.width = cfg.height = 8 * r + 4;
  cfg.protocol = ProtocolKind::kBvIndirectEarmarked;
  cfg.t = byz_linf_achievable_max(r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_simulation(cfg, FaultSet{}));
  }
}
BENCHMARK(BM_BvEarmarkedFullTorus)->Arg(1)->Arg(2);

void BM_DisjointPathsWorstCase(benchmark::State& state) {
  const auto r = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        best_disjoint_paths({0, 0}, {-r, r}, r, Metric::kLInf));
  }
}
BENCHMARK(BM_DisjointPathsWorstCase)->Arg(1)->Arg(2)->Arg(3)->Arg(4);

void BM_ConstructionPaths(benchmark::State& state) {
  // Worst covered indirect displacement: |d|_1 = 2r with |d|_inf > r.
  const auto r = static_cast<std::int32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        construction_paths(r, {0, 0}, {-(r + 1), r - 1}));
  }
}
BENCHMARK(BM_ConstructionPaths)->Arg(2)->Arg(4)->Arg(8);

void BM_SetPacking(benchmark::State& state) {
  // Adversarially overlapping masks, sized like a busy decider's evidence.
  const int n = static_cast<int>(state.range(0));
  Rng rng(42);
  std::vector<NodeMask> masks;
  for (int i = 0; i < n; ++i) {
    NodeMask m;
    for (int j = 0; j < 3; ++j) m.set(rng.below(24));
    masks.push_back(m);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(max_disjoint_packing(masks, 6));
  }
}
BENCHMARK(BM_SetPacking)->Arg(8)->Arg(32)->Arg(128);

void BM_NeighborhoodTable(benchmark::State& state) {
  const Torus torus(64, 64);
  const auto& table = NeighborhoodTable::get(3, Metric::kLInf);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.neighbors(torus, {5, 5}));
  }
}
BENCHMARK(BM_NeighborhoodTable);

void BM_LocalBoundValidator(benchmark::State& state) {
  const Torus torus(40, 40);
  Rng rng(7);
  const FaultSet faults = iid_faults(torus, 0.2, rng, {0, 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        max_closed_nbd_faults(torus, faults, 2, Metric::kLInf));
  }
}
BENCHMARK(BM_LocalBoundValidator);

void BM_CampaignParallelScaling(benchmark::State& state) {
  // A fixed 64-trial random-fault campaign; Arg = worker count. items/s is
  // trials/s, so the speedup over the Arg(1) row is the parallel scaling
  // factor (expected near-linear up to the physical core count: trials are
  // independent and the engine only serializes seed setup and the final
  // index-ordered fold).
  const int workers = static_cast<int>(state.range(0));
  CampaignSpec spec;
  spec.base.r = 2;
  spec.base.width = spec.base.height = 20;
  spec.base.protocol = ProtocolKind::kBvTwoHop;
  spec.base.adversary = AdversaryKind::kLying;
  spec.base.t = byz_linf_achievable_max(2);
  spec.placement.kind = PlacementKind::kRandomBounded;
  spec.placements = {PlacementKind::kRandomBounded};
  spec.reps = 64;
  spec.base_seed = 17;
  CampaignOptions options;
  options.workers = workers;
  for (auto _ : state) {
    const CampaignResult result = run_campaign(spec, options);
    benchmark::DoNotOptimize(result.cells.front().aggregate.runs);
  }
  state.SetItemsProcessed(state.iterations() * 64);
  state.counters["workers"] = workers;
}
BENCHMARK(BM_CampaignParallelScaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(static_cast<int>(std::thread::hardware_concurrency() == 0
                               ? 4
                               : std::thread::hardware_concurrency()))
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
