// E4 — Reproduces Section VIII and Figs 11-13: reliable broadcast in the
// Euclidean (L2) metric.
//
// The paper gives informal large-r estimates:
//   Byzantine:  achievable for t < 0.23*pi*r^2, impossible for t >= 0.3*pi*r^2
//   crash-stop: achievable ~ 0.46*pi*r^2,       impossible ~ 0.6*pi*r^2
//
// This harness (a) verifies the lattice-count approximation |nbd| ~ pi r^2
// that the whole section leans on, and (b) sweeps the fault fraction
// f = t/(pi r^2) for both failure modes, reporting measured success against
// the paper's estimated bands. Exact thresholds are NOT expected (the paper
// refrains from establishing them; all estimates carry ±O(r) slack that is
// material at laptop-scale radii) — the reproducible shape is: success at
// small fractions, failure above the impossibility band, crossover between.

#include <cmath>
#include <iostream>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/fault/placement.h"
#include "radiobcast/util/table.h"

namespace {
constexpr double kPi = 3.14159265358979323846;
}

int main() {
  using namespace rbcast;
  std::cout << "E4: Euclidean-metric thresholds (Section VIII, Figs 11-13)\n\n";

  std::cout << "Lattice-count approximation |nbd_L2(r)| ~ pi r^2 +/- O(r):\n";
  Table counts({"r", "|nbd| exact", "pi r^2", "error", "error / r"});
  for (std::int32_t r = 2; r <= 12; ++r) {
    const double pir2 = kPi * r * r;
    const auto exact = neighborhood_size(r, Metric::kL2);
    counts.row()
        .cell(std::to_string(r))
        .cell(exact)
        .cell(pir2, 1)
        .cell(static_cast<double>(exact) - pir2, 1)
        .cell((static_cast<double>(exact) - pir2) / r, 2);
  }
  counts.print(std::cout);
  std::cout << "\n";

  bool shape_ok = true;

  // --- Byzantine sweep -----------------------------------------------------
  std::cout << "Byzantine (bv-2hop, lying adversary, random bounded "
               "placement): paper bands 0.23 / 0.30\n";
  Table byz({"r", "fraction", "t", "success", "mean coverage",
             "wrong commits", "paper band"});
  for (std::int32_t r = 2; r <= 3; ++r) {
    double low_frac_coverage = -1.0, high_frac_coverage = -1.0;
    for (const double frac : {0.10, 0.17, 0.23, 0.30, 0.40}) {
      SimConfig cfg;
      cfg.r = r;
      cfg.width = cfg.height = 8 * r + 4;
      cfg.metric = Metric::kL2;
      cfg.t = static_cast<std::int64_t>(std::floor(frac * kPi * r * r));
      cfg.protocol = ProtocolKind::kBvTwoHop;
      cfg.adversary = AdversaryKind::kLying;
      cfg.seed = 600 + static_cast<std::uint64_t>(100 * frac);
      PlacementConfig placement;
      placement.kind = PlacementKind::kRandomBounded;
      const Aggregate agg = run_repeated(cfg, placement, 3);
      const char* band = frac < 0.23   ? "achievable (est.)"
                         : frac < 0.30 ? "uncertain"
                                       : "impossible (est.)";
      byz.row()
          .cell(std::to_string(r))
          .cell(frac, 2)
          .cell(cfg.t)
          .cell(std::to_string(agg.successes) + "/" + std::to_string(agg.runs))
          .cell(agg.mean_coverage(), 4)
          .cell(agg.wrong_total)
          .cell(band);
      if (agg.wrong_total != 0) shape_ok = false;
      if (frac == 0.10) low_frac_coverage = agg.mean_coverage();
      if (frac == 0.40) high_frac_coverage = agg.mean_coverage();
    }
    // Shape: low fractions must do at least as well as absurd ones.
    if (low_frac_coverage < high_frac_coverage) shape_ok = false;
    if (low_frac_coverage < 1.0) shape_ok = false;  // 0.10 band must succeed
  }
  byz.print(std::cout);
  std::cout << "\n";

  // --- Fig 13 geometry: the strip barrier under the L2 metric --------------
  // A full width-r strip's worst closed L2 neighborhood holds ~0.6*pi*r^2
  // faults (the paper's circled region in Fig 13); the half-density
  // checkerboard strip holds ~0.3*pi*r^2. Verify those counts exactly.
  std::cout << "Fig 13 counting argument (strip ∩ disc lattice counts):\n";
  Table fig13({"r", "full strip worst nbd", "0.6 pi r^2",
               "checkerboard worst nbd", "0.3 pi r^2"});
  for (std::int32_t r = 2; r <= 6; ++r) {
    const Torus torus(8 * r + 4, 8 * r + 4);
    const FaultSet full = full_strip(torus, 4 * r, r, {0, 0});
    const FaultSet half = checkerboard_strip(torus, 4 * r, r, 0, {0, 0});
    fig13.row()
        .cell(std::to_string(r))
        .cell(max_closed_nbd_faults(torus, full, r, Metric::kL2))
        .cell(0.6 * kPi * r * r, 1)
        .cell(max_closed_nbd_faults(torus, half, r, Metric::kL2))
        .cell(0.3 * kPi * r * r, 1);
  }
  fig13.print(std::cout);
  std::cout << "\n";

  // --- Crash-stop sweep against the Fig-13 strip barrier -------------------
  std::cout << "Crash-stop (flooding) vs the strip barrier, trimmed to "
               "budget: paper bands 0.46 / 0.60\n";
  Table crash({"r", "fraction", "t", "success", "mean coverage",
               "paper band"});
  for (std::int32_t r = 2; r <= 3; ++r) {
    double low_cov = -1.0, high_cov = -1.0;
    for (const double frac : {0.20, 0.35, 0.46, 0.60, 0.75}) {
      SimConfig cfg;
      cfg.r = r;
      cfg.width = cfg.height = 8 * r + 4;
      cfg.metric = Metric::kL2;
      cfg.t = static_cast<std::int64_t>(std::floor(frac * kPi * r * r));
      cfg.protocol = ProtocolKind::kCrashFlood;
      cfg.adversary = AdversaryKind::kSilent;
      cfg.seed = 700 + static_cast<std::uint64_t>(100 * frac);
      PlacementConfig placement;
      placement.kind = PlacementKind::kFullStrip;
      placement.trim = true;  // densest legal sub-barrier at budget t
      const Aggregate agg = run_repeated(cfg, placement, 1);
      const char* band = frac < 0.46   ? "achievable (est.)"
                         : frac < 0.60 ? "uncertain"
                                       : "impossible (est.)";
      crash.row()
          .cell(std::to_string(r))
          .cell(frac, 2)
          .cell(cfg.t)
          .cell(std::to_string(agg.successes) + "/" + std::to_string(agg.runs))
          .cell(agg.mean_coverage(), 4)
          .cell(band);
      if (frac == 0.20) low_cov = agg.mean_coverage();
      if (frac == 0.75) high_cov = agg.mean_coverage();
    }
    // The barrier must go from harmless to partitioning across the sweep.
    if (low_cov < 1.0 || high_cov > 0.8) shape_ok = false;
  }
  crash.print(std::cout);

  std::cout << "\nNote: the small-r crossover sits above the asymptotic "
               "0.46/0.60 bands because the lattice O(r) corrections favor "
               "the flood at laptop-scale radii.\n";
  std::cout << (shape_ok
                    ? "SHAPE MATCHES PAPER: clean success in the achievable "
                      "band, no wrong commits\n"
                    : "SHAPE MISMATCH — see rows above\n");
  return shape_ok ? 0 : 1;
}
