#include "radiobcast/protocols/earmark.h"

#include <gtest/gtest.h>

#include "radiobcast/grid/metric.h"
#include "radiobcast/paths/construction.h"

namespace rbcast {
namespace {

TEST(Earmark, PlanIsCachedPerRadius) {
  const auto& a = EarmarkPlan::get(2);
  const auto& b = EarmarkPlan::get(2);
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &EarmarkPlan::get(1));
}

TEST(Earmark, PlanIsNonEmpty) {
  for (std::int32_t r = 1; r <= 3; ++r) {
    EXPECT_GT(EarmarkPlan::get(r).prefix_count(), 0u) << "r=" << r;
  }
}

TEST(Earmark, AllowsEveryPrefixOfEveryConstructionPath) {
  const std::int32_t r = 2;
  const auto& plan = EarmarkPlan::get(r);
  const Coord origin{0, 0};
  for (std::int32_t dx = -2 * r; dx <= 2 * r; ++dx) {
    for (std::int32_t dy = -2 * r; dy <= 2 * r; ++dy) {
      const Offset d{dx, dy};
      const std::int32_t l1 = std::abs(dx) + std::abs(dy);
      if (l1 < 1 || l1 > 2 * r) continue;
      if (linf_norm(d) <= r) continue;
      const auto family = construction_paths(r, origin, origin + d);
      for (const GridPath& path : family.paths) {
        std::vector<Offset> prefix;
        for (std::size_t i = 1; i + 1 < path.nodes.size(); ++i) {
          prefix.push_back(path.nodes[i] - origin);
          EXPECT_TRUE(plan.allows(prefix));
        }
      }
    }
  }
}

TEST(Earmark, RejectsUnrelatedChains) {
  const auto& plan = EarmarkPlan::get(2);
  // A chain wandering away from any committer is never designated.
  EXPECT_FALSE(plan.allows({{7, 7}}));
  EXPECT_FALSE(plan.allows({{1, 0}, {7, 7}}));
  EXPECT_FALSE(plan.allows({}));
}

TEST(Earmark, PrefixCountIsBoundedByFamilies) {
  // At most (#indirect displacements) * r(2r+1) * 3 prefixes; plans must stay
  // small — that is their whole point.
  const std::int32_t r = 2;
  const auto& plan = EarmarkPlan::get(r);
  EXPECT_LT(plan.prefix_count(), 1000u);
}

}  // namespace
}  // namespace rbcast
