#include "radiobcast/net/channel.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "radiobcast/core/simulation.h"
#include "radiobcast/net/network.h"

namespace rbcast {
namespace {

TEST(Channel, PerfectDeliversEverything) {
  PerfectChannel channel;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(channel.delivers({0, 0}, {1, 1}, rng));
  }
}

TEST(Channel, IidLossMatchesProbability) {
  IidLossChannel channel(0.3);
  Rng rng(7);
  int delivered = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    delivered += channel.delivers({0, 0}, {1, 1}, rng) ? 1 : 0;
  }
  EXPECT_NEAR(delivered / static_cast<double>(kTrials), 0.7, 0.02);
  EXPECT_DOUBLE_EQ(channel.loss_probability(), 0.3);
}

TEST(Channel, IidLossExtremes) {
  Rng rng(3);
  IidLossChannel never(1.0);
  IidLossChannel always(0.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(never.delivers({0, 0}, {1, 0}, rng));
    EXPECT_TRUE(always.delivers({0, 0}, {1, 0}, rng));
  }
}

TEST(Channel, IidLossRejectsOutOfRangeProbability) {
  EXPECT_THROW(IidLossChannel(-0.1), std::invalid_argument);
  EXPECT_THROW(IidLossChannel(1.1), std::invalid_argument);
  EXPECT_THROW(IidLossChannel(std::numeric_limits<double>::quiet_NaN()),
               std::invalid_argument);
  EXPECT_NO_THROW(IidLossChannel(0.0));
  EXPECT_NO_THROW(IidLossChannel(1.0));
}

/// Counts deliveries it receives.
class Counter : public NodeBehavior {
 public:
  void on_receive(NodeContext&, const Envelope&) override { ++received; }
  int received = 0;
};

/// Broadcasts one message at start.
class OneShot : public NodeBehavior {
 public:
  void on_start(NodeContext& ctx) override {
    ctx.broadcast(make_committed(ctx.self(), 1));
  }
  void on_receive(NodeContext&, const Envelope&) override {}
};

TEST(Network, ChannelDropsAreCounted) {
  RadioNetwork net(Torus(8, 8), 1, Metric::kLInf, 1);
  net.set_channel(std::make_unique<IidLossChannel>(1.0));
  for (const Coord c : net.torus().all_coords()) {
    if (c == Coord{4, 4}) {
      net.set_behavior(c, std::make_unique<OneShot>());
    } else {
      net.set_behavior(c, std::make_unique<Counter>());
    }
  }
  net.start();
  net.run_round();
  EXPECT_EQ(net.stats().transmissions, 1u);
  EXPECT_EQ(net.stats().deliveries, 0u);
  EXPECT_EQ(net.stats().drops, 8u);
}

TEST(Network, RetransmissionsRepeatAcrossRounds) {
  RadioNetwork net(Torus(8, 8), 1, Metric::kLInf, 1);
  net.set_retransmissions(3);
  for (const Coord c : net.torus().all_coords()) {
    if (c == Coord{4, 4}) {
      net.set_behavior(c, std::make_unique<OneShot>());
    } else {
      net.set_behavior(c, std::make_unique<Counter>());
    }
  }
  net.start();
  const auto rounds = net.run_until_quiescent(100);
  EXPECT_EQ(rounds, 3);  // one delivery round per copy
  EXPECT_EQ(net.stats().transmissions, 3u);
  EXPECT_EQ(net.stats().deliveries, 24u);
  const auto* counter = dynamic_cast<const Counter*>(net.behavior({4, 5}));
  EXPECT_EQ(counter->received, 3);
}

TEST(Network, RetransmissionValidation) {
  RadioNetwork net(Torus(8, 8), 1, Metric::kLInf, 1);
  EXPECT_THROW(net.set_retransmissions(0), std::invalid_argument);
  EXPECT_THROW(net.set_channel(nullptr), std::invalid_argument);
}

TEST(Simulation, LossZeroMatchesPerfectModel) {
  SimConfig a;
  a.width = a.height = 12;
  a.r = 1;
  a.protocol = ProtocolKind::kCrashFlood;
  SimConfig b = a;
  b.loss_p = 0.0;
  b.retransmissions = 1;
  const auto ra = run_simulation(a, FaultSet{});
  const auto rb = run_simulation(b, FaultSet{});
  EXPECT_EQ(ra.transmissions, rb.transmissions);
  EXPECT_EQ(ra.outcomes, rb.outcomes);
}

TEST(Simulation, HeavyLossBreaksFloodingLiveness) {
  SimConfig cfg;
  cfg.width = cfg.height = 12;
  cfg.r = 1;
  cfg.protocol = ProtocolKind::kCrashFlood;
  cfg.loss_p = 0.9;
  cfg.seed = 5;
  const auto result = run_simulation(cfg, FaultSet{});
  EXPECT_FALSE(result.success());
  EXPECT_EQ(result.wrong_commits, 0);
}

TEST(Simulation, RetransmissionsRestoreCoverageUnderLoss) {
  SimConfig cfg;
  cfg.width = cfg.height = 12;
  cfg.r = 1;
  cfg.protocol = ProtocolKind::kCrashFlood;
  cfg.loss_p = 0.5;
  cfg.retransmissions = 8;
  cfg.seed = 5;
  const auto result = run_simulation(cfg, FaultSet{});
  EXPECT_TRUE(result.success());
}

TEST(Simulation, ByzantineSafetySurvivesLoss) {
  // Loss breaks Section V's no-duplicity argument, but the commit rule's
  // safety never relied on it: zero wrong commits under loss + liars.
  SimConfig cfg;
  cfg.width = cfg.height = 12;
  cfg.r = 1;
  cfg.protocol = ProtocolKind::kBvTwoHop;
  cfg.adversary = AdversaryKind::kLying;
  cfg.t = 1;
  cfg.loss_p = 0.3;
  cfg.retransmissions = 4;
  Torus torus(cfg.width, cfg.height);
  FaultSet faults(torus, {{5, 5}, {9, 2}});
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    cfg.seed = seed;
    const auto result = run_simulation(cfg, faults);
    EXPECT_EQ(result.wrong_commits, 0) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace rbcast
