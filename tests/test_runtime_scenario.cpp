// Scenario-file and verdict-file tests (runtime/scenario.h,
// runtime/harness.h): parse/write roundtrips, line-numbered parse errors,
// the shared node-option recipe, and the runtime's rejection of
// configurations it cannot realize.

#include "radiobcast/runtime/scenario.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "radiobcast/runtime/harness.h"
#include "radiobcast/runtime/node.h"
#include "radiobcast/runtime/transport.h"

namespace rbcast {
namespace {

TEST(Scenario, ParsesEveryKey) {
  const Scenario s = parse_scenario_string(R"(# comment line
protocol bv-2hop
adversary crash-at-round
metric l2
width 10
height 12
r 2
t 1
value 0
source 3 4
seed 99
crash_round 5
max_rounds 30
round_timeout_ms 123
linger_timeout_ms 456
base_port 48000
fault 7 7
fault 1 2
)");
  EXPECT_EQ(s.sim.protocol, ProtocolKind::kBvTwoHop);
  EXPECT_EQ(s.sim.adversary, AdversaryKind::kCrashAtRound);
  EXPECT_EQ(s.sim.metric, Metric::kL2);
  EXPECT_EQ(s.sim.width, 10);
  EXPECT_EQ(s.sim.height, 12);
  EXPECT_EQ(s.sim.r, 2);
  EXPECT_EQ(s.sim.t, 1);
  EXPECT_EQ(s.sim.value, 0);
  EXPECT_EQ(s.sim.source, (Coord{3, 4}));
  EXPECT_EQ(s.sim.seed, 99u);
  EXPECT_EQ(s.sim.crash_round, 5);
  EXPECT_EQ(s.sim.max_rounds, 30);
  EXPECT_EQ(s.round_timeout_ms, 123);
  EXPECT_EQ(s.linger_timeout_ms, 456);
  EXPECT_EQ(s.base_port, 48000);
  ASSERT_EQ(s.faults.size(), 2u);
  EXPECT_EQ(s.faults[0], (Coord{7, 7}));
  EXPECT_EQ(s.faults[1], (Coord{1, 2}));
}

TEST(Scenario, WriteParseRoundtrips) {
  Scenario s;
  s.sim.width = 8;
  s.sim.height = 8;
  s.sim.r = 1;
  s.sim.t = 1;
  s.sim.protocol = ProtocolKind::kBvIndirectFlood;
  s.sim.adversary = AdversaryKind::kLying;
  s.sim.value = 0;
  s.sim.source = {2, 2};
  s.sim.seed = 7;
  s.faults = {{5, 5}, {0, 7}};
  s.base_port = 50123;
  s.round_timeout_ms = 777;
  s.linger_timeout_ms = 888;

  std::ostringstream out;
  write_scenario(out, s);
  const Scenario back = parse_scenario_string(out.str());
  EXPECT_EQ(back.sim.protocol, s.sim.protocol);
  EXPECT_EQ(back.sim.adversary, s.sim.adversary);
  EXPECT_EQ(back.sim.width, s.sim.width);
  EXPECT_EQ(back.sim.source, s.sim.source);
  EXPECT_EQ(back.sim.seed, s.sim.seed);
  EXPECT_EQ(back.faults, s.faults);
  EXPECT_EQ(back.base_port, s.base_port);
  EXPECT_EQ(back.round_timeout_ms, s.round_timeout_ms);
  EXPECT_EQ(back.linger_timeout_ms, s.linger_timeout_ms);
}

TEST(Scenario, ErrorsCarryLineNumbers) {
  try {
    parse_scenario_string("width 8\nbogus_key 1\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(parse_scenario_string("width\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario_string("protocol no-such\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_string("fault 1\n"), std::invalid_argument);
}

TEST(Scenario, NodeOptionsAssignsRoles) {
  Scenario s;
  s.sim.width = 6;
  s.sim.height = 6;
  s.sim.r = 1;
  s.sim.source = {0, 0};
  s.faults = {{3, 3}};
  const Torus torus(6, 6);

  EXPECT_EQ(node_options(s, torus.index({0, 0})).role, NodeRole::kSource);
  EXPECT_EQ(node_options(s, torus.index({3, 3})).role, NodeRole::kFaulty);
  EXPECT_EQ(node_options(s, torus.index({1, 1})).role, NodeRole::kHonest);
  EXPECT_EQ(node_options(s, torus.index({1, 1})).round_timeout.count(),
            s.round_timeout_ms);
}

TEST(Verdict, WriteParseRoundtrips) {
  RuntimeVerdict v;
  v.index = 17;
  v.self = {2, 3};
  v.role = NodeRole::kHonest;
  v.committed = 1;
  v.commit_round = 4;
  v.rounds = 40;
  v.lingered_clean = true;
  v.interrupted = false;
  v.counters.commits = 1;
  v.counters.broadcasts_queued = 9;
  v.counters.envelopes_delivered = 123;
  v.counters.packets_sent = 456;
  v.counters.packets_retransmitted = 7;
  v.counters.packets_acked = 455;
  v.counters.duplicates_dropped = 3;
  v.counters.barrier_timeouts = 0;
  v.counters.barrier_wait_us = 98765;
  v.counters.last_commit_round = 4;

  std::stringstream io;
  write_verdict(io, v);
  const RuntimeVerdict back = parse_verdict(io);
  EXPECT_EQ(back.index, v.index);
  EXPECT_EQ(back.self, v.self);
  EXPECT_EQ(back.role, v.role);
  EXPECT_EQ(back.committed, v.committed);
  EXPECT_EQ(back.commit_round, v.commit_round);
  EXPECT_EQ(back.rounds, v.rounds);
  EXPECT_EQ(back.lingered_clean, v.lingered_clean);
  EXPECT_EQ(back.interrupted, v.interrupted);
  EXPECT_EQ(back.counters.commits, v.counters.commits);
  EXPECT_EQ(back.counters.broadcasts_queued, v.counters.broadcasts_queued);
  EXPECT_EQ(back.counters.envelopes_delivered,
            v.counters.envelopes_delivered);
  EXPECT_EQ(back.counters.packets_sent, v.counters.packets_sent);
  EXPECT_EQ(back.counters.packets_retransmitted,
            v.counters.packets_retransmitted);
  EXPECT_EQ(back.counters.packets_acked, v.counters.packets_acked);
  EXPECT_EQ(back.counters.duplicates_dropped,
            v.counters.duplicates_dropped);
  EXPECT_EQ(back.counters.barrier_wait_us, v.counters.barrier_wait_us);
  EXPECT_EQ(back.counters.last_commit_round, v.counters.last_commit_round);
}

TEST(Verdict, UncommittedSerializesAsMinusOne) {
  RuntimeVerdict v;
  v.index = 0;
  std::stringstream io;
  write_verdict(io, v);
  EXPECT_NE(io.str().find("committed -1"), std::string::npos);
  const RuntimeVerdict back = parse_verdict(io);
  EXPECT_FALSE(back.committed.has_value());
}

TEST(Verdict, ParseRejectsMalformedInput) {
  {
    std::istringstream in("role honest\n");  // no index
    EXPECT_THROW(parse_verdict(in), std::invalid_argument);
  }
  {
    std::istringstream in("index 0\nrole emperor\n");
    EXPECT_THROW(parse_verdict(in), std::invalid_argument);
  }
  {
    std::istringstream in("index 0\nwat 1\n");
    EXPECT_THROW(parse_verdict(in), std::invalid_argument);
  }
}

TEST(RuntimeNode, RejectsConfigurationsWithoutASocketAnalogue) {
  FaultInjectionTransport transport(0, {});
  RuntimeNode::Options opts;
  opts.sim.width = 6;
  opts.sim.height = 6;
  opts.sim.r = 1;

  opts.sim.loss_p = 0.1;
  EXPECT_THROW(RuntimeNode(opts, transport), std::invalid_argument);
  opts.sim.loss_p = 0.0;

  opts.sim.retransmissions = 3;
  EXPECT_THROW(RuntimeNode(opts, transport), std::invalid_argument);
  opts.sim.retransmissions = 1;

  opts.sim.adversary = AdversaryKind::kSpoofing;
  EXPECT_THROW(RuntimeNode(opts, transport), std::invalid_argument);
  opts.sim.adversary = AdversaryKind::kJamming;
  EXPECT_THROW(RuntimeNode(opts, transport), std::invalid_argument);
}

}  // namespace
}  // namespace rbcast
