// Scenario-file and verdict-file tests (runtime/scenario.h,
// runtime/harness.h): parse/write roundtrips, line-numbered parse errors,
// the shared node-option recipe, and the runtime's rejection of
// configurations it cannot realize.

#include "radiobcast/runtime/scenario.h"

#include <gtest/gtest.h>

#include <iterator>
#include <sstream>
#include <stdexcept>

#include "radiobcast/runtime/harness.h"
#include "radiobcast/util/rng.h"
#include "radiobcast/runtime/node.h"
#include "radiobcast/runtime/transport.h"

namespace rbcast {
namespace {

TEST(Scenario, ParsesEveryKey) {
  const Scenario s = parse_scenario_string(R"(# comment line
protocol bv-2hop
adversary crash-at-round
metric l2
width 10
height 12
r 2
t 1
value 0
source 3 4
seed 99
crash_round 5
max_rounds 30
round_timeout_ms 123
linger_timeout_ms 456
base_port 48000
fault 7 7
fault 1 2
)");
  EXPECT_EQ(s.sim.protocol, ProtocolKind::kBvTwoHop);
  EXPECT_EQ(s.sim.adversary, AdversaryKind::kCrashAtRound);
  EXPECT_EQ(s.sim.metric, Metric::kL2);
  EXPECT_EQ(s.sim.width, 10);
  EXPECT_EQ(s.sim.height, 12);
  EXPECT_EQ(s.sim.r, 2);
  EXPECT_EQ(s.sim.t, 1);
  EXPECT_EQ(s.sim.value, 0);
  EXPECT_EQ(s.sim.source, (Coord{3, 4}));
  EXPECT_EQ(s.sim.seed, 99u);
  EXPECT_EQ(s.sim.crash_round, 5);
  EXPECT_EQ(s.sim.max_rounds, 30);
  EXPECT_EQ(s.round_timeout_ms, 123);
  EXPECT_EQ(s.linger_timeout_ms, 456);
  EXPECT_EQ(s.base_port, 48000);
  ASSERT_EQ(s.faults.size(), 2u);
  EXPECT_EQ(s.faults[0], (Coord{7, 7}));
  EXPECT_EQ(s.faults[1], (Coord{1, 2}));
}

TEST(Scenario, WriteParseRoundtrips) {
  Scenario s;
  s.sim.width = 8;
  s.sim.height = 8;
  s.sim.r = 1;
  s.sim.t = 1;
  s.sim.protocol = ProtocolKind::kBvIndirectFlood;
  s.sim.adversary = AdversaryKind::kLying;
  s.sim.value = 0;
  s.sim.source = {2, 2};
  s.sim.seed = 7;
  s.faults = {{5, 5}, {0, 7}};
  s.base_port = 50123;
  s.round_timeout_ms = 777;
  s.linger_timeout_ms = 888;
  s.sim.loss_p = 0.125;  // exactly representable — also checks the format
  s.sim.jam_budget = -1;
  s.suspect_after = 4;
  s.chaos.drop_p = 0.1;
  s.chaos.duplicate_p = 0.0625;
  s.chaos.delay_p = 0.33;
  s.chaos.delay_ms = 12;
  s.chaos.seed = 424242;
  s.chaos.partitions = {{{1, 1}, {2, 1}, 0, -1}, {{3, 3}, {4, 3}, 50, 200}};
  s.crash_node = Coord{6, 6};
  s.crash_at_round = 2;
  s.restart_after_ms = 150;
  s.state_dir = "state";
  s.backend = RuntimeBackend::kEpoll;
  s.shared_socket = true;

  std::ostringstream out;
  write_scenario(out, s);
  const Scenario back = parse_scenario_string(out.str());
  EXPECT_EQ(back.sim.protocol, s.sim.protocol);
  EXPECT_EQ(back.sim.adversary, s.sim.adversary);
  EXPECT_EQ(back.sim.width, s.sim.width);
  EXPECT_EQ(back.sim.source, s.sim.source);
  EXPECT_EQ(back.sim.seed, s.sim.seed);
  EXPECT_EQ(back.faults, s.faults);
  EXPECT_EQ(back.base_port, s.base_port);
  EXPECT_EQ(back.round_timeout_ms, s.round_timeout_ms);
  EXPECT_EQ(back.linger_timeout_ms, s.linger_timeout_ms);
  EXPECT_DOUBLE_EQ(back.sim.loss_p, s.sim.loss_p);
  EXPECT_EQ(back.sim.jam_budget, s.sim.jam_budget);
  EXPECT_EQ(back.suspect_after, s.suspect_after);
  EXPECT_DOUBLE_EQ(back.chaos.drop_p, s.chaos.drop_p);
  EXPECT_DOUBLE_EQ(back.chaos.duplicate_p, s.chaos.duplicate_p);
  EXPECT_DOUBLE_EQ(back.chaos.delay_p, s.chaos.delay_p);
  EXPECT_EQ(back.chaos.delay_ms, s.chaos.delay_ms);
  EXPECT_EQ(back.chaos.seed, s.chaos.seed);
  ASSERT_EQ(back.chaos.partitions.size(), 2u);
  EXPECT_EQ(back.chaos.partitions[1].from, s.chaos.partitions[1].from);
  EXPECT_EQ(back.chaos.partitions[1].start_ms, 50);
  EXPECT_EQ(back.chaos.partitions[1].end_ms, 200);
  EXPECT_EQ(back.crash_node, s.crash_node);
  EXPECT_EQ(back.crash_at_round, s.crash_at_round);
  EXPECT_EQ(back.restart_after_ms, s.restart_after_ms);
  EXPECT_EQ(back.state_dir, s.state_dir);
  EXPECT_EQ(back.backend, s.backend);
  EXPECT_EQ(back.shared_socket, s.shared_socket);
}

TEST(Scenario, ParsesBackendAndRejectsUnknownNames) {
  const Scenario s = parse_scenario_string(
      "width 3\nheight 3\nr 1\nbackend epoll\nshared_socket 1\n");
  EXPECT_EQ(s.backend, RuntimeBackend::kEpoll);
  EXPECT_TRUE(s.shared_socket);
  EXPECT_EQ(parse_scenario_string("width 3\nheight 3\nr 1\n").backend,
            RuntimeBackend::kPoll);  // default stays the reference loop
  EXPECT_THROW(parse_scenario_string("backend kqueue\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_string("shared_socket 2\n"),
               std::invalid_argument);
}

TEST(Scenario, ParsesChaosAndRecoveryKeys) {
  const Scenario s = parse_scenario_string(R"(width 8
height 8
loss_p 0.25
jam_budget -1
suspect_after 3
chaos_drop_p 0.1
chaos_dup_p 0.05
chaos_delay_p 0.2
chaos_delay_ms 15
chaos_seed 77
partition 0 0 1 0
partition 2 2 9 9 100 500
crash_node 10 2
crash_at_round 4
restart_after_ms 250
state_dir /tmp/rb-state
)");
  EXPECT_DOUBLE_EQ(s.sim.loss_p, 0.25);
  EXPECT_EQ(s.sim.jam_budget, -1);
  EXPECT_EQ(s.suspect_after, 3);
  EXPECT_DOUBLE_EQ(s.chaos.drop_p, 0.1);
  EXPECT_DOUBLE_EQ(s.chaos.duplicate_p, 0.05);
  EXPECT_DOUBLE_EQ(s.chaos.delay_p, 0.2);
  EXPECT_EQ(s.chaos.delay_ms, 15);
  EXPECT_EQ(s.chaos.seed, 77u);
  EXPECT_EQ(s.chaos_seed(), 77u);
  ASSERT_EQ(s.chaos.partitions.size(), 2u);
  EXPECT_EQ(s.chaos.partitions[0].from, (Coord{0, 0}));
  EXPECT_EQ(s.chaos.partitions[0].to, (Coord{1, 0}));
  EXPECT_EQ(s.chaos.partitions[0].end_ms, -1);
  EXPECT_EQ(s.chaos.partitions[1].start_ms, 100);
  EXPECT_EQ(s.chaos.partitions[1].end_ms, 500);
  // Coordinates are canonicalized onto the torus at parse time.
  EXPECT_EQ(s.chaos.partitions[1].to, (Coord{1, 1}));
  ASSERT_TRUE(s.crash_node.has_value());
  EXPECT_EQ(*s.crash_node, (Coord{2, 2}));
  EXPECT_EQ(s.crash_at_round, 4);
  EXPECT_EQ(s.restart_after_ms, 250);
  EXPECT_EQ(s.state_dir, "/tmp/rb-state");
  EXPECT_TRUE(s.chaos.enabled());
}

TEST(Scenario, ChaosSeedDerivesFromSimSeedWhenUnset) {
  const Scenario a = parse_scenario_string("width 4\nheight 4\nseed 1\n");
  const Scenario b = parse_scenario_string("width 4\nheight 4\nseed 2\n");
  EXPECT_NE(a.chaos_seed(), b.chaos_seed());
  EXPECT_NE(a.chaos_seed(), a.sim.seed);  // hash-split, never the raw seed
}

TEST(Scenario, RejectsDuplicateScalarKeys) {
  try {
    parse_scenario_string("width 8\nheight 8\nwidth 9\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate key 'width'"), std::string::npos) << what;
    EXPECT_NE(what.find("first on line 1"), std::string::npos) << what;
  }
  // fault and partition are the repeatable keys.
  EXPECT_NO_THROW(parse_scenario_string(
      "width 8\nheight 8\nfault 1 1\nfault 2 2\npartition 0 0 1 0\n"
      "partition 1 0 0 0\n"));
}

TEST(Scenario, RejectsMalformedChaosValues) {
  EXPECT_THROW(parse_scenario_string("width 8\nheight 8\nloss_p 1.5\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_string("width 8\nheight 8\nchaos_drop_p -0.1\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_string("width 8\nheight 8\nchaos_delay_ms -5\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_string("width 8\nheight 8\ncrash_at_round -1\n"),
               std::invalid_argument);
  // A partition window needs both ends.
  EXPECT_THROW(
      parse_scenario_string("width 8\nheight 8\npartition 0 0 1 0 100\n"),
      std::invalid_argument);
  EXPECT_THROW(parse_scenario_string("width 8\nheight 8\nsuspect_after -1\n"),
               std::invalid_argument);
}

TEST(Scenario, FuzzedLinesThrowCleanlyOrParse) {
  // Fuzz-style parser hardening: every mutated input must either parse or
  // throw one of the two documented exception types — never crash, never
  // leave the parser wedged. Deterministic by construction.
  const std::string keys[] = {"width",        "height",     "loss_p",
                              "chaos_drop_p", "chaos_seed", "partition",
                              "crash_node",   "fault",      "state_dir",
                              "suspect_after"};
  const std::string values[] = {"", " 1", " -1", " 0.5", " 1e308", " nan",
                                " x", " 1 2", " 1 2 3 4 5", " 99999999999",
                                " 0 0 0 0 0 0 0"};
  Rng rng(20260809);
  for (int trial = 0; trial < 500; ++trial) {
    std::string text = "width 8\nheight 8\n";
    const int lines = 1 + static_cast<int>(rng.below(4));
    for (int l = 0; l < lines; ++l) {
      text += keys[rng.below(std::size(keys))];
      text += values[rng.below(std::size(values))];
      text += '\n';
    }
    try {
      const Scenario s = parse_scenario_string(text);
      (void)s.chaos_seed();  // derived values stay computable
    } catch (const std::invalid_argument&) {
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(Scenario, ErrorsCarryLineNumbers) {
  try {
    parse_scenario_string("width 8\nbogus_key 1\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(parse_scenario_string("width\n"), std::invalid_argument);
  EXPECT_THROW(parse_scenario_string("protocol no-such\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_scenario_string("fault 1\n"), std::invalid_argument);
}

TEST(Scenario, NodeOptionsAssignsRoles) {
  Scenario s;
  s.sim.width = 6;
  s.sim.height = 6;
  s.sim.r = 1;
  s.sim.source = {0, 0};
  s.faults = {{3, 3}};
  const Torus torus(6, 6);

  EXPECT_EQ(node_options(s, torus.index({0, 0})).role, NodeRole::kSource);
  EXPECT_EQ(node_options(s, torus.index({3, 3})).role, NodeRole::kFaulty);
  EXPECT_EQ(node_options(s, torus.index({1, 1})).role, NodeRole::kHonest);
  EXPECT_EQ(node_options(s, torus.index({1, 1})).round_timeout.count(),
            s.round_timeout_ms);
}

TEST(Scenario, NodeOptionsWiresChaosRecoveryConfig) {
  Scenario s;
  s.sim.width = 6;
  s.sim.height = 6;
  s.sim.r = 1;
  s.sim.source = {0, 0};
  s.faults = {{3, 3}};
  s.suspect_after = 3;
  s.crash_node = Coord{2, 2};
  s.crash_at_round = 5;
  s.state_dir = "statedir";
  const Torus torus(6, 6);

  const RuntimeNode::Options crasher = node_options(s, torus.index({2, 2}));
  EXPECT_EQ(crasher.crash_at_round, 5);
  EXPECT_EQ(crasher.suspect_after, 3);
  EXPECT_EQ(crasher.snapshot_path,
            "statedir/state-" + std::to_string(torus.index({2, 2})) + ".txt");
  // Only the crash_node gets the crash injection.
  EXPECT_EQ(node_options(s, torus.index({1, 1})).crash_at_round, -1);
  // Jammers are wired only under the jamming adversary.
  EXPECT_TRUE(node_options(s, torus.index({1, 1})).jammers.empty());
  s.sim.adversary = AdversaryKind::kJamming;
  s.sim.jam_budget = -1;
  EXPECT_EQ(node_options(s, torus.index({1, 1})).jammers, s.faults);
}

TEST(Verdict, WriteParseRoundtrips) {
  RuntimeVerdict v;
  v.index = 17;
  v.self = {2, 3};
  v.role = NodeRole::kHonest;
  v.committed = 1;
  v.commit_round = 4;
  v.rounds = 40;
  v.lingered_clean = true;
  v.interrupted = false;
  v.counters.commits = 1;
  v.counters.broadcasts_queued = 9;
  v.counters.envelopes_delivered = 123;
  v.counters.packets_sent = 456;
  v.counters.packets_retransmitted = 7;
  v.counters.packets_acked = 455;
  v.counters.duplicates_dropped = 3;
  v.counters.barrier_timeouts = 0;
  v.counters.barrier_wait_us = 98765;
  v.counters.last_commit_round = 4;
  v.crashed = true;
  v.counters.envelopes_dropped = 11;
  v.counters.chaos_drops = 5;
  v.counters.chaos_delays = 6;
  v.counters.chaos_duplicates = 7;
  v.counters.chaos_partition_drops = 8;
  v.counters.node_restarts = 1;
  v.counters.peers_suspected = 2;
  v.counters.degraded_rounds = 3;

  std::stringstream io;
  write_verdict(io, v);
  const RuntimeVerdict back = parse_verdict(io);
  EXPECT_EQ(back.index, v.index);
  EXPECT_EQ(back.self, v.self);
  EXPECT_EQ(back.role, v.role);
  EXPECT_EQ(back.committed, v.committed);
  EXPECT_EQ(back.commit_round, v.commit_round);
  EXPECT_EQ(back.rounds, v.rounds);
  EXPECT_EQ(back.lingered_clean, v.lingered_clean);
  EXPECT_EQ(back.interrupted, v.interrupted);
  EXPECT_EQ(back.counters.commits, v.counters.commits);
  EXPECT_EQ(back.counters.broadcasts_queued, v.counters.broadcasts_queued);
  EXPECT_EQ(back.counters.envelopes_delivered,
            v.counters.envelopes_delivered);
  EXPECT_EQ(back.counters.packets_sent, v.counters.packets_sent);
  EXPECT_EQ(back.counters.packets_retransmitted,
            v.counters.packets_retransmitted);
  EXPECT_EQ(back.counters.packets_acked, v.counters.packets_acked);
  EXPECT_EQ(back.counters.duplicates_dropped,
            v.counters.duplicates_dropped);
  EXPECT_EQ(back.counters.barrier_wait_us, v.counters.barrier_wait_us);
  EXPECT_EQ(back.counters.last_commit_round, v.counters.last_commit_round);
  EXPECT_EQ(back.crashed, v.crashed);
  EXPECT_EQ(back.counters.envelopes_dropped, v.counters.envelopes_dropped);
  EXPECT_EQ(back.counters.chaos_drops, v.counters.chaos_drops);
  EXPECT_EQ(back.counters.chaos_delays, v.counters.chaos_delays);
  EXPECT_EQ(back.counters.chaos_duplicates, v.counters.chaos_duplicates);
  EXPECT_EQ(back.counters.chaos_partition_drops,
            v.counters.chaos_partition_drops);
  EXPECT_EQ(back.counters.node_restarts, v.counters.node_restarts);
  EXPECT_EQ(back.counters.peers_suspected, v.counters.peers_suspected);
  EXPECT_EQ(back.counters.degraded_rounds, v.counters.degraded_rounds);
}

TEST(Verdict, UncommittedSerializesAsMinusOne) {
  RuntimeVerdict v;
  v.index = 0;
  std::stringstream io;
  write_verdict(io, v);
  EXPECT_NE(io.str().find("committed -1"), std::string::npos);
  const RuntimeVerdict back = parse_verdict(io);
  EXPECT_FALSE(back.committed.has_value());
}

TEST(Verdict, ParseRejectsMalformedInput) {
  {
    std::istringstream in("role honest\n");  // no index
    EXPECT_THROW(parse_verdict(in), std::invalid_argument);
  }
  {
    std::istringstream in("index 0\nrole emperor\n");
    EXPECT_THROW(parse_verdict(in), std::invalid_argument);
  }
  {
    std::istringstream in("index 0\nwat 1\n");
    EXPECT_THROW(parse_verdict(in), std::invalid_argument);
  }
}

TEST(RuntimeNode, RejectsConfigurationsWithoutASocketAnalogue) {
  FaultInjectionTransport transport(0, {});
  RuntimeNode::Options opts;
  opts.sim.width = 6;
  opts.sim.height = 6;
  opts.sim.r = 1;

  // Lossy channels are realized as deterministic message-level suppression
  // now — valid probabilities are accepted, junk still is not.
  opts.sim.loss_p = 0.1;
  EXPECT_NO_THROW(RuntimeNode(opts, transport));
  opts.sim.loss_p = 1.5;
  EXPECT_THROW(RuntimeNode(opts, transport), std::invalid_argument);
  opts.sim.loss_p = 0.0;

  opts.sim.retransmissions = 3;
  EXPECT_THROW(RuntimeNode(opts, transport), std::invalid_argument);
  opts.sim.retransmissions = 1;

  opts.sim.adversary = AdversaryKind::kSpoofing;
  EXPECT_THROW(RuntimeNode(opts, transport), std::invalid_argument);
  // Unbounded jamming has a static geometric analogue; a bounded budget is
  // a globally ordered ledger no distributed node can replicate.
  opts.sim.adversary = AdversaryKind::kJamming;
  opts.sim.jam_budget = 5;
  EXPECT_THROW(RuntimeNode(opts, transport), std::invalid_argument);
  opts.sim.jam_budget = -1;
  EXPECT_NO_THROW(RuntimeNode(opts, transport));
}

}  // namespace
}  // namespace rbcast
