// Streaming trace exporter (RoundTrace::set_stream, campaign
// --stream-traces): byte-identity with the ring path whenever the ring would
// not overflow, strictly-more-data when it would, and the bounded-memory
// contract — a streamed trial's allocation count must not scale with the
// number of trace events, because events go straight to the stream instead
// of accumulating in memory. The allocation assertion uses the same global
// operator-new counter as tests/test_alloc_free_delivery.cpp (the counter is
// per test binary).

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <new>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "radiobcast/campaign/engine.h"
#include "radiobcast/campaign/spec.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/fault/fault_set.h"
#include "radiobcast/obs/trace.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rbcast {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.width = cfg.height = 8;
  cfg.r = 1;
  cfg.t = 1;
  cfg.protocol = ProtocolKind::kCrashFlood;
  cfg.seed = 11;
  return cfg;
}

std::string run_with_ring(const SimConfig& cfg, const FaultSet& faults,
                          std::size_t capacity) {
  RoundTrace trace(capacity);
  ObsOptions obs;
  obs.trace = &trace;
  (void)run_simulation(cfg, faults, obs);
  std::ostringstream os;
  trace.write_jsonl(os);
  return os.str();
}

std::string run_with_stream(const SimConfig& cfg, const FaultSet& faults,
                            std::uint64_t* recorded = nullptr) {
  std::ostringstream os;
  RoundTrace trace(1);
  trace.set_stream(&os);
  ObsOptions obs;
  obs.trace = &trace;
  (void)run_simulation(cfg, faults, obs);
  if (recorded != nullptr) *recorded = trace.recorded();
  return os.str();
}

TEST(TraceStream, ByteIdenticalToRingWithoutOverflow) {
  const SimConfig cfg = small_config();
  const Torus torus(cfg.width, cfg.height);
  const FaultSet faults(torus, {{3, 3}});
  const std::string ring = run_with_ring(cfg, faults, 1 << 20);
  const std::string streamed = run_with_stream(cfg, faults);
  ASSERT_FALSE(streamed.empty());
  EXPECT_EQ(streamed, ring);
}

TEST(TraceStream, KeepsEventsTheRingWouldEvict) {
  const SimConfig cfg = small_config();
  const Torus torus(cfg.width, cfg.height);
  const FaultSet faults(torus, {{3, 3}});
  std::uint64_t recorded = 0;
  const std::string streamed = run_with_stream(cfg, faults, &recorded);
  // A 64-slot ring overflows on this trial; its dump is the SUFFIX of the
  // streamed bytes (the newest 64 events), which is exactly the eviction
  // semantics the streaming path exists to avoid.
  const std::string ring = run_with_ring(cfg, faults, 64);
  ASSERT_GT(recorded, 64u);
  ASSERT_LT(ring.size(), streamed.size());
  EXPECT_EQ(streamed.substr(streamed.size() - ring.size()), ring);
}

TEST(TraceStream, CampaignStreamedFilesMatchRingFiles) {
  // End-to-end through the campaign engine: --stream-traces produces
  // byte-identical trace files to the buffered path (capacity ample here).
  CampaignCell cell;
  cell.sim = small_config();
  cell.reps = 2;
  cell.label = "stream-test";
  const std::filesystem::path ring_dir =
      std::filesystem::path(testing::TempDir()) / "trace_ring";
  const std::filesystem::path stream_dir =
      std::filesystem::path(testing::TempDir()) / "trace_stream";
  std::filesystem::remove_all(ring_dir);
  std::filesystem::remove_all(stream_dir);

  CampaignOptions ring_options;
  ring_options.workers = 1;
  ring_options.trace_dir = ring_dir.string();
  ring_options.trace_capacity = 1 << 20;
  (void)run_cells({cell}, ring_options);

  CampaignOptions stream_options;
  stream_options.workers = 1;
  stream_options.trace_dir = stream_dir.string();
  stream_options.stream_traces = true;
  (void)run_cells({cell}, stream_options);

  int files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(ring_dir)) {
    ++files;
    const auto streamed_path = stream_dir / entry.path().filename();
    ASSERT_TRUE(std::filesystem::exists(streamed_path))
        << entry.path().filename();
    std::ifstream a(entry.path(), std::ios::binary);
    std::ifstream b(streamed_path, std::ios::binary);
    std::ostringstream sa, sb;
    sa << a.rdbuf();
    sb << b.rdbuf();
    ASSERT_FALSE(sa.str().empty());
    EXPECT_EQ(sa.str(), sb.str()) << entry.path().filename();
  }
  EXPECT_EQ(files, 2);
  std::filesystem::remove_all(ring_dir);
  std::filesystem::remove_all(stream_dir);
}

TEST(TraceStream, StreamedTrialMemoryIsBounded) {
  // The bounded-memory contract on a larger torus: a streamed 160x160 r=2
  // crash-flood trial with retransmissions records over a million
  // send/delivery events;
  // if any of them were buffered (ring slots, per-event strings, a growing
  // vector) the allocation count would scale with the event count. Assert it
  // stays orders of magnitude below: everything past engine setup reuses the
  // scratch line and the ofstream's fixed buffer.
  SimConfig cfg = small_config();
  cfg.width = cfg.height = 160;
  cfg.r = 2;
  cfg.retransmissions = 2;
  const Torus torus(cfg.width, cfg.height);
  const FaultSet faults(torus, {{9, 9}});

  const std::filesystem::path path =
      std::filesystem::path(testing::TempDir()) / "stream_bounded.jsonl";
  std::ofstream os(path, std::ios::binary);
  ASSERT_TRUE(os);
  RoundTrace trace(1);
  trace.set_stream(&os);
  ObsOptions obs;
  obs.trace = &trace;

  const std::uint64_t before = g_allocations.load();
  (void)run_simulation(cfg, faults, obs);
  const std::uint64_t allocations = g_allocations.load() - before;

  ASSERT_GT(trace.recorded(), 1'000'000u);
  EXPECT_LT(allocations, trace.recorded() / 1000)
      << "streamed-trace trial allocations scale with event count";
  os.close();
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace rbcast
