#include "radiobcast/protocols/crash_flood.h"

#include <gtest/gtest.h>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"

namespace rbcast {
namespace {

SimConfig base_config(std::int32_t r) {
  SimConfig cfg;
  cfg.width = cfg.height = 8 * r + 4;
  cfg.r = r;
  cfg.metric = Metric::kLInf;
  cfg.protocol = ProtocolKind::kCrashFlood;
  cfg.adversary = AdversaryKind::kSilent;
  cfg.seed = 5;
  return cfg;
}

TEST(CrashFlood, FaultFreeFullCoverage) {
  for (std::int32_t r = 1; r <= 3; ++r) {
    const auto result = run_simulation(base_config(r), FaultSet{});
    EXPECT_TRUE(result.success()) << "r=" << r;
    EXPECT_EQ(result.wrong_commits, 0);
    EXPECT_TRUE(result.reached_quiescence);
  }
}

TEST(CrashFlood, PropagatesValueZeroToo) {
  SimConfig cfg = base_config(1);
  cfg.value = 0;
  const auto result = run_simulation(cfg, FaultSet{});
  EXPECT_TRUE(result.success());
}

TEST(CrashFlood, RoundsScaleWithDiameter) {
  // Flooding crosses the torus in about (width/2)/r hops.
  const SimConfig cfg = base_config(2);  // 20x20, r=2
  const auto result = run_simulation(cfg, FaultSet{});
  EXPECT_GE(result.rounds, 5);
  EXPECT_LE(result.rounds, 9);
}

TEST(CrashFlood, EachNodeTransmitsAtMostOnce) {
  const SimConfig cfg = base_config(2);
  const auto result = run_simulation(cfg, FaultSet{});
  // n nodes, each transmits exactly once (source included).
  EXPECT_EQ(result.transmissions,
            static_cast<std::uint64_t>(cfg.width) * cfg.height);
}

TEST(CrashFlood, Theorem4FullStripPartitionsTheTorus) {
  // Two full strips (t = r(2r+1)) cut off the region between them.
  for (std::int32_t r = 1; r <= 3; ++r) {
    SimConfig cfg = base_config(r);
    cfg.t = crash_linf_impossible_min(r);
    PlacementConfig placement;
    placement.kind = PlacementKind::kFullStrip;
    placement.trim = false;
    Torus torus(cfg.width, cfg.height);
    Rng rng(1);
    const FaultSet faults = make_faults(placement, torus, r, cfg.metric,
                                        cfg.t, cfg.source, rng);
    EXPECT_EQ(max_closed_nbd_faults(torus, faults, r, cfg.metric),
              crash_linf_impossible_min(r));
    const auto result = run_simulation(cfg, faults);
    EXPECT_FALSE(result.success()) << "r=" << r;
    EXPECT_GT(result.undecided, 0);
    EXPECT_EQ(result.wrong_commits, 0);
    // Honest nodes on the source side still commit.
    EXPECT_GT(result.correct_commits, 0);
  }
}

TEST(CrashFlood, Theorem5PuncturedStripIsSurvivable) {
  // The densest legal barrier at t = r(2r+1) - 1 cannot stop the flood.
  for (std::int32_t r = 1; r <= 3; ++r) {
    SimConfig cfg = base_config(r);
    // Height must be a multiple of the puncture period for exact density.
    cfg.height = (2 * r + 1) * 4;
    cfg.t = crash_linf_achievable_max(r);
    PlacementConfig placement;
    placement.kind = PlacementKind::kPuncturedStrip;
    placement.trim = true;
    Torus torus(cfg.width, cfg.height);
    Rng rng(1);
    const FaultSet faults = make_faults(placement, torus, r, cfg.metric,
                                        cfg.t, cfg.source, rng);
    EXPECT_LE(max_closed_nbd_faults(torus, faults, r, cfg.metric), cfg.t);
    const auto result = run_simulation(cfg, faults);
    EXPECT_TRUE(result.success()) << "r=" << r;
  }
}

TEST(CrashFlood, RandomCrashesBelowThresholdSurvivable) {
  SimConfig cfg = base_config(2);
  cfg.t = crash_linf_achievable_max(2);
  PlacementConfig placement;
  placement.kind = PlacementKind::kRandomBounded;
  for (int rep = 0; rep < 3; ++rep) {
    Torus torus(cfg.width, cfg.height);
    Rng rng(100 + static_cast<std::uint64_t>(rep));
    const FaultSet faults = make_faults(placement, torus, cfg.r, cfg.metric,
                                        cfg.t, cfg.source, rng);
    const auto result = run_simulation(cfg, faults);
    EXPECT_TRUE(result.success()) << "rep=" << rep;
  }
}

TEST(CrashFlood, CrashAtRoundStillNeverWrong) {
  SimConfig cfg = base_config(2);
  cfg.adversary = AdversaryKind::kCrashAtRound;
  cfg.crash_round = 2;
  cfg.t = crash_linf_achievable_max(2);
  PlacementConfig placement;
  placement.kind = PlacementKind::kPuncturedStrip;
  Torus torus(cfg.width, cfg.height);
  Rng rng(1);
  const FaultSet faults = make_faults(placement, torus, cfg.r, cfg.metric,
                                      cfg.t, cfg.source, rng);
  const auto result = run_simulation(cfg, faults);
  EXPECT_EQ(result.wrong_commits, 0);
  // Nodes that relay before crashing only help: full coverage expected.
  EXPECT_TRUE(result.success());
}

TEST(CrashFlood, BehaviorUnitCommitOnFirstValue) {
  // Direct behavior-level check of the "first value wins" rule.
  RadioNetwork net(Torus(12, 12), 1, Metric::kLInf, 1);
  for (const Coord c : net.torus().all_coords()) {
    net.set_behavior(c, std::make_unique<CrashFloodBehavior>(ProtocolParams{}));
  }
  NodeContext ctx(net, {5, 5});
  auto* b = dynamic_cast<CrashFloodBehavior*>(net.behavior({5, 5}));
  b->on_receive(ctx, {{5, 6}, make_committed({5, 6}, 1)});
  EXPECT_EQ(b->committed_value(), std::optional<std::uint8_t>(1));
  b->on_receive(ctx, {{5, 4}, make_committed({5, 4}, 0)});
  EXPECT_EQ(b->committed_value(), std::optional<std::uint8_t>(1));
}

}  // namespace
}  // namespace rbcast
