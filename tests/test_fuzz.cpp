// Randomized integration sweep ("fuzz" with deterministic seeds): draws
// arbitrary combinations of torus size, radius, metric, protocol, adversary,
// placement and budget, and checks the three properties that must hold for
// EVERY configuration:
//   (1) safety      — zero honest wrong commits (under model-respecting
//                     adversaries; spoofing is exactly the documented
//                     exception and is excluded here),
//   (2) termination — quiescence within the default round bound,
//   (3) accounting  — commits + undecided == honest nodes, commit rounds
//                     consistent with outcomes.

#include <gtest/gtest.h>

#include <string>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/graph/graph_protocols.h"
#include "radiobcast/util/rng.h"

namespace rbcast {
namespace {

class GridFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridFuzz, SafetyTerminationAccounting) {
  Rng rng(hash_seeds(0xF00D, GetParam()));

  SimConfig cfg;
  cfg.r = static_cast<std::int32_t>(1 + rng.below(2));  // 1..2
  const std::int32_t min_side = 4 * cfg.r + 2;
  cfg.width = min_side + static_cast<std::int32_t>(rng.below(8));
  cfg.height = min_side + static_cast<std::int32_t>(rng.below(8));
  cfg.metric = rng.chance(0.3) ? Metric::kL2 : Metric::kLInf;
  const ProtocolKind protocols[] = {
      ProtocolKind::kCrashFlood, ProtocolKind::kCpa, ProtocolKind::kBvTwoHop,
      ProtocolKind::kBvIndirectEarmarked};
  cfg.protocol = protocols[rng.below(4)];
  if (cfg.protocol == ProtocolKind::kBvIndirectEarmarked) {
    cfg.metric = Metric::kLInf;  // earmarking is L∞-only
  }
  if (cfg.protocol == ProtocolKind::kCrashFlood) {
    // Section VII's protocol assumes crash-stop faults only; a lying
    // adversary is outside its model (it trusts the first value heard).
    const AdversaryKind crash_kinds[] = {AdversaryKind::kSilent,
                                         AdversaryKind::kCrashAtRound,
                                         AdversaryKind::kJamming};
    cfg.adversary = crash_kinds[rng.below(3)];
  } else {
    const AdversaryKind byz_kinds[] = {AdversaryKind::kSilent,
                                       AdversaryKind::kLying,
                                       AdversaryKind::kCrashAtRound,
                                       AdversaryKind::kJamming};
    cfg.adversary = byz_kinds[rng.below(4)];
  }
  cfg.crash_round = static_cast<std::int64_t>(rng.below(5));
  cfg.jam_budget = static_cast<std::int64_t>(rng.below(30));
  cfg.t = static_cast<std::int64_t>(rng.below(8));
  cfg.value = rng.chance(0.5) ? 1 : 0;
  cfg.seed = GetParam();
  if (rng.chance(0.25)) {
    cfg.loss_p = 0.2 * rng.unit();
    cfg.retransmissions = static_cast<int>(1 + rng.below(3));
  }
  cfg.source = {static_cast<std::int32_t>(rng.below(
                    static_cast<std::uint64_t>(cfg.width))),
                static_cast<std::int32_t>(rng.below(
                    static_cast<std::uint64_t>(cfg.height)))};

  PlacementConfig placement;
  const PlacementKind kinds[] = {PlacementKind::kNone,
                                 PlacementKind::kRandomBounded,
                                 PlacementKind::kCheckerboardStrip,
                                 PlacementKind::kPuncturedStrip,
                                 PlacementKind::kIid};
  placement.kind = kinds[rng.below(5)];
  placement.iid_p = 0.3 * rng.unit();
  placement.trim = true;

  Torus torus(cfg.width, cfg.height);
  Rng placement_rng(cfg.seed);
  const FaultSet faults = make_faults(placement, torus, cfg.r, cfg.metric,
                                      cfg.t, cfg.source, placement_rng);
  const SimResult result = run_simulation(cfg, faults);

  const std::string what = std::string(to_string(cfg.protocol)) + "/" +
                           to_string(cfg.adversary) + "/" +
                           to_string(placement.kind) + " r=" +
                           std::to_string(cfg.r) + " t=" +
                           std::to_string(cfg.t) + " " +
                           std::to_string(cfg.width) + "x" +
                           std::to_string(cfg.height);
  EXPECT_EQ(result.wrong_commits, 0) << what;
  EXPECT_TRUE(result.reached_quiescence) << what;
  EXPECT_EQ(result.correct_commits + result.wrong_commits + result.undecided,
            result.honest_nodes)
      << what;
  // Commit-round consistency.
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const bool committed = result.outcomes[i] == NodeOutcome::kCommitted0 ||
                           result.outcomes[i] == NodeOutcome::kCommitted1 ||
                           result.outcomes[i] == NodeOutcome::kSource;
    EXPECT_EQ(committed, result.commit_rounds[i] >= 0) << what << " idx " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridFuzz, ::testing::Range(std::uint64_t{1}, std::uint64_t{41}));

class GraphFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphFuzz, RandomGraphsSafeAndTerminate) {
  Rng rng(hash_seeds(0xBEEF, GetParam()));
  // Random connected graph: a spanning chain plus random chords.
  const std::int32_t n = 6 + static_cast<std::int32_t>(rng.below(10));
  RadioGraph g(n);
  for (NodeId v = 1; v < n; ++v) {
    g.add_edge(v, static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(v))));
  }
  const std::int64_t extra = static_cast<std::int64_t>(rng.below(
      static_cast<std::uint64_t>(2 * n)));
  for (std::int64_t e = 0; e < extra; ++e) {
    const auto a = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    const auto b = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    if (a != b) g.add_edge(a, b);
  }
  ASSERT_TRUE(g.connected());

  const std::int64_t t = static_cast<std::int64_t>(rng.below(3));
  // Random legal-ish fault set: sample nodes, keep while the bound holds.
  GraphFaultSet faults(static_cast<std::size_t>(n), false);
  for (int attempt = 0; attempt < n; ++attempt) {
    const auto v = static_cast<NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    if (v == 0) continue;  // source
    faults[static_cast<std::size_t>(v)] = true;
    if (!satisfies_local_bound(g, faults, t)) {
      faults[static_cast<std::size_t>(v)] = false;
    }
  }

  for (const GraphProtocol protocol :
       {GraphProtocol::kCpa, GraphProtocol::kRpa}) {
    for (const GraphAdversary adversary :
         {GraphAdversary::kSilent, GraphAdversary::kLying}) {
      const auto res =
          run_graph_simulation(g, 0, t, protocol, adversary, faults);
      EXPECT_EQ(res.wrong_commits, 0)
          << "n=" << n << " t=" << t << " seed=" << GetParam();
      EXPECT_EQ(res.correct_commits + res.wrong_commits + res.undecided,
                res.honest_nodes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphFuzz, ::testing::Range(std::uint64_t{1}, std::uint64_t{21}));

}  // namespace
}  // namespace rbcast
