// Zero-allocation contract of the optimized round engine (docs/PERF.md):
// once a RadioNetwork is started, the steady-state delivery path — CSR
// fan-out, small-buffer message copies, retransmission repeats, behavior
// dispatch — performs no heap allocation at all. Pinned with the same
// global-operator-new counter technique as the RoundTrace tests
// (tests/test_obs.cpp); the counter lives in this binary, so any allocation
// anywhere in the measured window trips the assertion.

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include <gtest/gtest.h>

#include "radiobcast/net/network.h"
#include "radiobcast/protocols/crash_flood.h"
#include "radiobcast/protocols/source.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rbcast {
namespace {

TEST(AllocFreeDelivery, MessageCopyDoesNotAllocate) {
  // Layer-2 contract: the relayer chain is inline, so copying a full HEARD
  // (the per-queued/copied/retransmitted-message cost) touches no heap.
  const Message heard = make_heard({{1, 1}, {2, 2}, {3, 3}}, {0, 0}, 1);
  const std::uint64_t before = g_allocations.load();
  Message copy = heard;
  Message moved = std::move(copy);
  Message assigned;
  assigned = moved;
  EXPECT_EQ(g_allocations.load(), before);
  EXPECT_EQ(assigned, heard);
}

TEST(AllocFreeDelivery, CrashFloodWholeRunIsAllocationFree) {
  // The acceptance criterion verbatim: zero heap allocations per delivered
  // envelope on the steady-state CrashFlood path — asserted in the strongest
  // form, zero allocations across the ENTIRE post-start() run (12x12 torus,
  // ~6.9k envelope deliveries), not just amortized-zero.
  RadioNetwork net(Torus(12, 12), 1, Metric::kLInf, 7);
  for (const Coord c : net.torus().all_coords()) {
    if (c == Coord{0, 0}) {
      net.set_behavior(c, std::make_unique<SourceBehavior>(1));
    } else {
      net.set_behavior(
          c, std::make_unique<CrashFloodBehavior>(ProtocolParams{0, {0, 0}}));
    }
  }
  net.start();
  const std::uint64_t before = g_allocations.load();
  net.run_until_quiescent(1000);
  EXPECT_EQ(g_allocations.load(), before);
  EXPECT_TRUE(net.quiescent());
  EXPECT_EQ(net.counters().commits, 12u * 12u);  // source commits at start too
  EXPECT_GT(net.counters().envelopes_delivered, 0u);
}

TEST(AllocFreeDelivery, HeardRetransmissionSteadyStateIsAllocationFree) {
  // The retransmission path copies each Pending (envelope included) into the
  // repeats scratch every round. With a full 3-relayer HEARD payload this
  // used to heap-allocate per copy; both the copy and the scratch buffer are
  // now allocation-free once primed.
  class HeardChatter final : public NodeBehavior {
   public:
    void on_start(NodeContext& ctx) override {
      ctx.broadcast(make_heard({{1, 0}, {2, 0}, {3, 0}}, {0, 0}, 1));
    }
    void on_receive(NodeContext&, const Envelope&) override {}
    void on_round_end(NodeContext& ctx) override {
      ctx.broadcast(make_heard({{1, 0}, {2, 0}, {3, 0}}, {0, 0}, 1));
    }
  };
  class Sink final : public NodeBehavior {
   public:
    void on_receive(NodeContext&, const Envelope&) override {}
  };
  RadioNetwork net(Torus(12, 12), 2, Metric::kLInf, 7);
  net.set_retransmissions(3);
  for (const Coord c : net.torus().all_coords()) {
    if (c == Coord{5, 5}) {
      net.set_behavior(c, std::make_unique<HeardChatter>());
    } else {
      net.set_behavior(c, std::make_unique<Sink>());
    }
  }
  net.start();
  net.run_round();  // prime the repeats scratch to steady-state capacity
  net.run_round();
  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 50; ++i) net.run_round();
  EXPECT_EQ(g_allocations.load(), before);
  EXPECT_GT(net.counters().envelopes_delivered, 0u);
}

}  // namespace
}  // namespace rbcast
