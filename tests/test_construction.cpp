#include "radiobcast/paths/construction.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <tuple>

#include "radiobcast/core/analysis.h"
#include "radiobcast/grid/metric.h"

namespace rbcast {
namespace {

// ---------------------------------------------------------------------------
// Region M (Fig 1) and the R/U/S1/S2 partition (Figs 2-3)
// ---------------------------------------------------------------------------

TEST(ConstructionRegions, MHasR2rPlus1Nodes) {
  for (std::int32_t r = 1; r <= 8; ++r) {
    EXPECT_EQ(static_cast<std::int64_t>(region_M(r).size()), r_2r_plus_1(r));
  }
}

TEST(ConstructionRegions, MIsTheHalfSquareAboveTheDiagonal) {
  for (std::int32_t r = 1; r <= 5; ++r) {
    for (const Coord c : region_M(r)) {
      EXPECT_LE(linf_norm(c - Coord{0, 0}), r);       // inside nbd(0,0)
      EXPECT_GT(c.y, c.x);                            // strictly above diag
    }
  }
}

TEST(ConstructionRegions, PartitionOfM) {
  // R ∪ U ∪ S1 ∪ S2 = M, pairwise disjoint (Fig 3).
  for (std::int32_t r = 1; r <= 6; ++r) {
    std::set<Coord> m;
    for (const Coord c : region_M(r)) m.insert(c);

    std::set<Coord> parts;
    auto add_unique = [&](Coord c) {
      EXPECT_TRUE(parts.insert(c).second) << "overlap at " << to_string(c);
      EXPECT_TRUE(m.count(c)) << to_string(c) << " not in M";
    };
    for (const Coord c : region_R(r).cells()) add_unique(c);
    for (std::int32_t q = 1; q <= r; ++q) {
      for (std::int32_t p = 1; p < q; ++p) add_unique({p, q});  // U
    }
    for (std::int32_t p = 0; p <= r - 1; ++p) add_unique({-r, -p});  // S1
    for (std::int32_t q = 1; q <= r - 1; ++q) {
      for (std::int32_t p = 0; p < q; ++p) add_unique({-q, -p});  // S2
    }
    EXPECT_EQ(parts.size(), m.size()) << "r=" << r;
  }
}

TEST(ConstructionRegions, RegionSizesMatchPaper) {
  for (std::int32_t r = 1; r <= 8; ++r) {
    EXPECT_EQ(region_R(r).count(), static_cast<std::int64_t>(r) * (r + 1));
    std::int64_t u = 0, s2 = 0;
    for (std::int32_t q = 1; q <= r; ++q) {
      for (std::int32_t p = 1; p < q; ++p) ++u;
    }
    for (std::int32_t q = 1; q <= r - 1; ++q) {
      for (std::int32_t p = 0; p < q; ++p) ++s2;
    }
    EXPECT_EQ(u, static_cast<std::int64_t>(r) * (r - 1) / 2);
    EXPECT_EQ(s2, static_cast<std::int64_t>(r) * (r - 1) / 2);
  }
}

TEST(ConstructionRegions, PHearsRDirectly) {
  for (std::int32_t r = 1; r <= 6; ++r) {
    const Coord p = corner_P(r);
    for (const Coord c : region_R(r).cells()) {
      EXPECT_LE(linf_norm(c - p), r) << "r=" << r << " " << to_string(c);
    }
  }
}

// ---------------------------------------------------------------------------
// Table I region cardinalities and structure
// ---------------------------------------------------------------------------

struct PQCase {
  std::int32_t r, p, q;
};

class Table1Param : public ::testing::TestWithParam<PQCase> {};

TEST_P(Table1Param, CardinalitiesMatchTheProof) {
  const auto [r, p, q] = GetParam();
  const Table1Regions t = table1_regions(r, p, q);
  EXPECT_EQ(t.A.count(), static_cast<std::int64_t>(r - p + 1) * (r + q));
  EXPECT_EQ(t.B1.count(), static_cast<std::int64_t>(p - 1) * (r + q));
  EXPECT_EQ(t.B2.count(), t.B1.count());
  EXPECT_EQ(t.C1.count(), static_cast<std::int64_t>(r - p) * (r - q + 1));
  EXPECT_EQ(t.C2.count(), t.C1.count());
  EXPECT_EQ(t.D1.count(), static_cast<std::int64_t>(p) * (r - q + 1));
  EXPECT_EQ(t.D2.count(), t.D1.count());
  EXPECT_EQ(t.D3.count(), t.D1.count());
  // Total path count = r(2r+1) (Theorem 3).
  EXPECT_EQ(t.A.count() + t.B1.count() + t.C1.count() + t.D1.count(),
            r_2r_plus_1(r));
}

TEST_P(Table1Param, RegionsArePairwiseDisjoint) {
  const auto [r, p, q] = GetParam();
  const Table1Regions t = table1_regions(r, p, q);
  const Rect all[] = {t.A, t.B1, t.B2, t.C1, t.C2, t.D1, t.D2, t.D3};
  for (std::size_t i = 0; i < std::size(all); ++i) {
    for (std::size_t j = i + 1; j < std::size(all); ++j) {
      EXPECT_TRUE(disjoint(all[i], all[j]))
          << "regions " << i << " and " << j << " overlap";
    }
  }
  // Neither N nor P lies in any intermediate region.
  const Coord n{p, q};
  const Coord pp = corner_P(r);
  for (const Rect& rect : all) {
    EXPECT_FALSE(rect.contains(n));
    EXPECT_FALSE(rect.contains(pp));
  }
}

TEST_P(Table1Param, RegionsLieInTheSingleNeighborhood) {
  const auto [r, p, q] = GetParam();
  const Table1Regions t = table1_regions(r, p, q);
  const Rect nbd = linf_ball(center_for_U(r), r);
  for (const Rect& rect : {t.A, t.B1, t.B2, t.C1, t.C2, t.D1, t.D2, t.D3}) {
    EXPECT_TRUE(contained_in(rect, nbd));
  }
  EXPECT_TRUE(nbd.contains({p, q}));
  EXPECT_TRUE(nbd.contains(corner_P(r)));
}

TEST_P(Table1Param, AdjacencyClaims) {
  const auto [r, p, q] = GetParam();
  const Table1Regions t = table1_regions(r, p, q);
  const Coord n{p, q};
  const Coord pp = corner_P(r);
  // A: common neighbors of N and P.
  for (const Coord c : t.A.cells()) {
    EXPECT_LE(linf_norm(c - n), r);
    EXPECT_LE(linf_norm(c - pp), r);
  }
  // B1 ⊆ nbd(N); its translate by (-r,0) ⊆ nbd(P) and pairs are adjacent.
  for (const Coord c : t.B1.cells()) {
    EXPECT_LE(linf_norm(c - n), r);
    EXPECT_LE(linf_norm((c + Offset{-r, 0}) - pp), r);
  }
  // C1 ⊆ nbd(N); its translate by (-r,r) ⊆ nbd(P).
  for (const Coord c : t.C1.cells()) {
    EXPECT_LE(linf_norm(c - n), r);
    EXPECT_LE(linf_norm((c + Offset{-r, r}) - pp), r);
  }
  // D1 ⊆ nbd(N); D2 fully cross-adjacent to D1; D3 = D2 - (r,0) ⊆ nbd(P).
  for (const Coord c : t.D1.cells()) EXPECT_LE(linf_norm(c - n), r);
  for (const Coord c1 : t.D1.cells()) {
    for (const Coord c2 : t.D2.cells()) {
      EXPECT_LE(linf_norm(c2 - c1), r)
          << to_string(c1) << " vs " << to_string(c2);
    }
  }
  for (const Coord c : t.D3.cells()) EXPECT_LE(linf_norm(c - pp), r);
}

std::vector<PQCase> all_pq_cases(std::int32_t r_max) {
  std::vector<PQCase> cases;
  for (std::int32_t r = 2; r <= r_max; ++r) {
    for (std::int32_t q = 2; q <= r; ++q) {
      for (std::int32_t p = 1; p < q; ++p) cases.push_back({r, p, q});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPQ, Table1Param,
                         ::testing::ValuesIn(all_pq_cases(7)),
                         [](const ::testing::TestParamInfo<PQCase>& info) {
                           return "r" + std::to_string(info.param.r) + "_p" +
                                  std::to_string(info.param.p) + "_q" +
                                  std::to_string(info.param.q);
                         });

TEST(Table1, RejectsInvalidPQ) {
  EXPECT_THROW(table1_regions(3, 0, 2), std::invalid_argument);
  EXPECT_THROW(table1_regions(3, 2, 2), std::invalid_argument);
  EXPECT_THROW(table1_regions(3, 1, 4), std::invalid_argument);
  EXPECT_THROW(table1_regions(0, 1, 2), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Path families (U, S1, S2): exactly r(2r+1) valid disjoint paths
// ---------------------------------------------------------------------------

void expect_family_valid(const DisjointPathSet& family, std::int32_t r) {
  EXPECT_EQ(static_cast<std::int64_t>(family.paths.size()), r_2r_plus_1(r));
  EXPECT_TRUE(validate(family, r, Metric::kLInf));
  for (const GridPath& path : family.paths) {
    EXPECT_LE(path.intermediates(), 3u);  // four hops max (Section VI)
    EXPECT_GE(path.intermediates(), 1u);
  }
}

TEST(PathFamilies, UFamiliesAreValid) {
  for (std::int32_t r = 2; r <= 6; ++r) {
    for (std::int32_t q = 2; q <= r; ++q) {
      for (std::int32_t p = 1; p < q; ++p) {
        SCOPED_TRACE("r=" + std::to_string(r) + " p=" + std::to_string(p) +
                     " q=" + std::to_string(q));
        const auto family = family_for_U(r, p, q);
        EXPECT_EQ(family.origin, (Coord{p, q}));
        EXPECT_EQ(family.dest, corner_P(r));
        EXPECT_EQ(family.center, center_for_U(r));
        expect_family_valid(family, r);
      }
    }
  }
}

TEST(PathFamilies, S1FamiliesAreValid) {
  for (std::int32_t r = 1; r <= 6; ++r) {
    for (std::int32_t p = 0; p <= r - 1; ++p) {
      SCOPED_TRACE("r=" + std::to_string(r) + " p=" + std::to_string(p));
      const auto family = family_for_S1(r, p);
      EXPECT_EQ(family.origin, (Coord{-r, -p}));
      EXPECT_EQ(family.center, center_for_S1(r));
      expect_family_valid(family, r);
    }
  }
}

TEST(PathFamilies, S2FamiliesAreValid) {
  for (std::int32_t r = 2; r <= 6; ++r) {
    for (std::int32_t q = 1; q <= r - 1; ++q) {
      for (std::int32_t p = 0; p < q; ++p) {
        SCOPED_TRACE("r=" + std::to_string(r) + " q=" + std::to_string(q) +
                     " p=" + std::to_string(p));
        const auto family = family_for_S2(r, q, p);
        EXPECT_EQ(family.origin, (Coord{-q, -p}));
        EXPECT_EQ(family.dest, corner_P(r));
        expect_family_valid(family, r);
      }
    }
  }
}

TEST(PathFamilies, S1PathCountsSplitAsJandK) {
  // (r-p)(2r+1) one-intermediate paths via J, p(2r+1) two-intermediate via K.
  for (std::int32_t r = 1; r <= 5; ++r) {
    for (std::int32_t p = 0; p <= r - 1; ++p) {
      const auto family = family_for_S1(r, p);
      std::int64_t one_hop = 0, two_hop = 0;
      for (const GridPath& path : family.paths) {
        if (path.intermediates() == 1) ++one_hop;
        if (path.intermediates() == 2) ++two_hop;
      }
      EXPECT_EQ(one_hop, static_cast<std::int64_t>(r - p) * (2 * r + 1));
      EXPECT_EQ(two_hop, static_cast<std::int64_t>(p) * (2 * r + 1));
    }
  }
}

// ---------------------------------------------------------------------------
// Displacement classification and the general entry point
// ---------------------------------------------------------------------------

TEST(Classify, CanonicalCases) {
  const std::int32_t r = 3;
  EXPECT_EQ(classify_canonical(r, {-1, 1}), FamilyKind::kDirect);
  EXPECT_EQ(classify_canonical(r, {-r, r}), FamilyKind::kDirect);
  EXPECT_EQ(classify_canonical(r, {0, r + 1}), FamilyKind::kS1);
  EXPECT_EQ(classify_canonical(r, {0, 2 * r}), FamilyKind::kS1);
  EXPECT_EQ(classify_canonical(r, {-1, r + 1}), FamilyKind::kS2);
  EXPECT_EQ(classify_canonical(r, {-(r + 1), 1}), FamilyKind::kU);
  EXPECT_EQ(classify_canonical(r, {-(2 * r - 1), 1}), FamilyKind::kU);
}

TEST(Classify, RejectsNonCanonical) {
  EXPECT_THROW(classify_canonical(2, {1, 1}), std::invalid_argument);
  EXPECT_THROW(classify_canonical(2, {-1, 0}), std::invalid_argument);
  EXPECT_THROW(classify_canonical(2, {-3, 2}), std::invalid_argument);  // L1=5
}

TEST(ConstructionPaths, AllCoveredDisplacementsYieldFullFamilies) {
  // For every displacement with 1 <= |d|_1 <= 2r the construction gives
  // r(2r+1) disjoint <= 4-hop paths in one neighborhood (direct pairs give
  // the trivial path).
  for (std::int32_t r = 1; r <= 4; ++r) {
    const Coord origin{100, 200};  // arbitrary anchor, exercises translation
    for (std::int32_t dx = -2 * r; dx <= 2 * r; ++dx) {
      for (std::int32_t dy = -2 * r; dy <= 2 * r; ++dy) {
        const std::int32_t l1 = std::abs(dx) + std::abs(dy);
        if (l1 < 1 || l1 > 2 * r) continue;
        SCOPED_TRACE("r=" + std::to_string(r) + " d=<" + std::to_string(dx) +
                     "," + std::to_string(dy) + ">");
        const Coord dest = origin + Offset{dx, dy};
        const auto family = construction_paths(r, origin, dest);
        EXPECT_EQ(family.origin, origin);
        EXPECT_EQ(family.dest, dest);
        if (linf_norm({dx, dy}) <= r) {
          ASSERT_EQ(family.paths.size(), 1u);
          EXPECT_EQ(family.paths[0].nodes.size(), 2u);
        } else {
          EXPECT_EQ(static_cast<std::int64_t>(family.paths.size()),
                    r_2r_plus_1(r));
          EXPECT_TRUE(validate(family, r, Metric::kLInf));
          for (const GridPath& path : family.paths) {
            EXPECT_LE(path.intermediates(), 3u);
          }
        }
      }
    }
  }
}

TEST(ConstructionPaths, RejectsUncoveredDisplacements) {
  EXPECT_THROW(construction_paths(2, {0, 0}, {0, 0}), std::invalid_argument);
  EXPECT_THROW(construction_paths(2, {0, 0}, {3, 3}), std::invalid_argument);
  EXPECT_THROW(construction_paths(2, {0, 0}, {5, 0}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Section VI-A: arbitrary position of P
// ---------------------------------------------------------------------------

TEST(ArbitraryP, ConnectedCountAtLeastR2rPlus1) {
  for (std::int32_t r = 1; r <= 8; ++r) {
    for (std::int32_t l = 0; l <= r; ++l) {
      EXPECT_GE(arbitrary_p_connected_count(r, l), r_2r_plus_1(r))
          << "r=" << r << " l=" << l;
    }
  }
}

TEST(ArbitraryP, WorstCaseEqualsR2rPlus1) {
  for (std::int32_t r = 1; r <= 8; ++r) {
    EXPECT_EQ(arbitrary_p_connected_count(r, 0), r_2r_plus_1(r));
  }
}

TEST(ArbitraryP, RejectsOutOfRange) {
  EXPECT_THROW(arbitrary_p_connected_count(3, -1), std::invalid_argument);
  EXPECT_THROW(arbitrary_p_connected_count(3, 4), std::invalid_argument);
}

TEST(FamilyKindNames, ToString) {
  EXPECT_STREQ(to_string(FamilyKind::kDirect), "direct");
  EXPECT_STREQ(to_string(FamilyKind::kU), "U");
  EXPECT_STREQ(to_string(FamilyKind::kS1), "S1");
  EXPECT_STREQ(to_string(FamilyKind::kS2), "S2");
}

}  // namespace
}  // namespace rbcast
