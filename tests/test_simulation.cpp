#include "radiobcast/core/simulation.h"

#include <gtest/gtest.h>

#include "radiobcast/core/analysis.h"

namespace rbcast {
namespace {

SimConfig tiny_config() {
  SimConfig cfg;
  cfg.width = cfg.height = 12;
  cfg.r = 1;
  cfg.metric = Metric::kLInf;
  cfg.protocol = ProtocolKind::kCrashFlood;
  return cfg;
}

TEST(Simulation, RejectsFaultySource) {
  const SimConfig cfg = tiny_config();
  Torus torus(cfg.width, cfg.height);
  FaultSet faults(torus, {{0, 0}});
  EXPECT_THROW(run_simulation(cfg, faults), std::invalid_argument);
}

TEST(Simulation, RejectsTooSmallTorus) {
  SimConfig cfg = tiny_config();
  cfg.width = 5;  // < 4r+2 = 6
  cfg.r = 1;
  EXPECT_THROW(run_simulation(cfg, FaultSet{}), std::invalid_argument);
}

TEST(Simulation, OutcomeVectorIsConsistent) {
  SimConfig cfg = tiny_config();
  Torus torus(cfg.width, cfg.height);
  FaultSet faults(torus, {{5, 5}, {6, 6}});
  const auto result = run_simulation(cfg, faults);
  ASSERT_EQ(result.outcomes.size(),
            static_cast<std::size_t>(torus.node_count()));
  EXPECT_EQ(result.outcomes[static_cast<std::size_t>(torus.index({0, 0}))],
            NodeOutcome::kSource);
  EXPECT_EQ(result.outcomes[static_cast<std::size_t>(torus.index({5, 5}))],
            NodeOutcome::kFaulty);
  // honest = total - source - faulty
  EXPECT_EQ(result.honest_nodes, torus.node_count() - 3);
  EXPECT_EQ(result.correct_commits + result.wrong_commits + result.undecided,
            result.honest_nodes);
}

TEST(Simulation, CoverageAndSuccessMath) {
  SimResult res;
  res.honest_nodes = 10;
  res.correct_commits = 10;
  EXPECT_DOUBLE_EQ(res.coverage(), 1.0);
  EXPECT_TRUE(res.success());
  res.correct_commits = 9;
  res.undecided = 1;
  EXPECT_DOUBLE_EQ(res.coverage(), 0.9);
  EXPECT_FALSE(res.success());
  res.wrong_commits = 1;
  res.correct_commits = 10;
  res.undecided = 0;
  EXPECT_FALSE(res.success());  // wrong commits always fail the run
}

TEST(Simulation, ValueZeroOutcomesMarkedCorrect) {
  SimConfig cfg = tiny_config();
  cfg.value = 0;
  const auto result = run_simulation(cfg, FaultSet{});
  EXPECT_TRUE(result.success());
  // Every honest node shows kCommitted0.
  int committed0 = 0;
  for (const NodeOutcome o : result.outcomes) {
    committed0 += (o == NodeOutcome::kCommitted0) ? 1 : 0;
  }
  EXPECT_EQ(committed0, result.honest_nodes);
}

TEST(Simulation, DeterministicForSeed) {
  SimConfig cfg = tiny_config();
  cfg.protocol = ProtocolKind::kBvTwoHop;
  cfg.t = 1;
  cfg.seed = 2718;
  Torus torus(cfg.width, cfg.height);
  FaultSet faults(torus, {{4, 4}, {8, 8}});
  const auto a = run_simulation(cfg, faults);
  const auto b = run_simulation(cfg, faults);
  EXPECT_EQ(a.correct_commits, b.correct_commits);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.outcomes, b.outcomes);
}

TEST(Simulation, MaxRoundsCapsExecution) {
  SimConfig cfg = tiny_config();
  cfg.max_rounds = 1;
  const auto result = run_simulation(cfg, FaultSet{});
  EXPECT_EQ(result.rounds, 1);
  EXPECT_FALSE(result.reached_quiescence);
  EXPECT_FALSE(result.success());
}

TEST(Simulation, SourceAtArbitraryPosition) {
  SimConfig cfg = tiny_config();
  cfg.source = {7, 7};
  const auto result = run_simulation(cfg, FaultSet{});
  EXPECT_TRUE(result.success());
  Torus torus(cfg.width, cfg.height);
  EXPECT_EQ(result.outcomes[static_cast<std::size_t>(torus.index({7, 7}))],
            NodeOutcome::kSource);
}

TEST(Simulation, ProtocolAndAdversaryNames) {
  EXPECT_STREQ(to_string(ProtocolKind::kCrashFlood), "crash-flood");
  EXPECT_STREQ(to_string(ProtocolKind::kCpa), "cpa");
  EXPECT_STREQ(to_string(ProtocolKind::kBvTwoHop), "bv-2hop");
  EXPECT_STREQ(to_string(ProtocolKind::kBvIndirectFlood), "bv-4hop-flood");
  EXPECT_STREQ(to_string(ProtocolKind::kBvIndirectEarmarked),
               "bv-4hop-earmarked");
  EXPECT_STREQ(to_string(AdversaryKind::kSilent), "silent");
  EXPECT_STREQ(to_string(AdversaryKind::kLying), "lying");
  EXPECT_STREQ(to_string(AdversaryKind::kCrashAtRound), "crash-at-round");
}

TEST(Simulation, ProtocolFromStringRoundTrip) {
  for (const ProtocolKind k :
       {ProtocolKind::kCrashFlood, ProtocolKind::kCpa, ProtocolKind::kBvTwoHop,
        ProtocolKind::kBvIndirectFlood,
        ProtocolKind::kBvIndirectEarmarked}) {
    const auto parsed = protocol_from_string(to_string(k));
    ASSERT_TRUE(parsed.has_value()) << to_string(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(protocol_from_string("bv-9hop").has_value());
  EXPECT_FALSE(protocol_from_string("").has_value());
}

TEST(Simulation, AdversaryFromStringRoundTrip) {
  for (const AdversaryKind k :
       {AdversaryKind::kSilent, AdversaryKind::kLying,
        AdversaryKind::kCrashAtRound, AdversaryKind::kSpoofing,
        AdversaryKind::kJamming}) {
    const auto parsed = adversary_from_string(to_string(k));
    ASSERT_TRUE(parsed.has_value()) << to_string(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(adversary_from_string("polite").has_value());
}

TEST(Simulation, AllProtocolsRunFaultFree) {
  for (const ProtocolKind kind :
       {ProtocolKind::kCrashFlood, ProtocolKind::kCpa, ProtocolKind::kBvTwoHop,
        ProtocolKind::kBvIndirectFlood, ProtocolKind::kBvIndirectEarmarked}) {
    SimConfig cfg = tiny_config();
    cfg.protocol = kind;
    cfg.t = (kind == ProtocolKind::kCrashFlood || kind == ProtocolKind::kCpa)
                ? 0
                : byz_linf_achievable_max(1);
    const auto result = run_simulation(cfg, FaultSet{});
    EXPECT_TRUE(result.success()) << to_string(kind);
  }
}

TEST(Simulation, CommitRoundsTrackTheWave) {
  SimConfig cfg = tiny_config();
  const auto result = run_simulation(cfg, FaultSet{});
  Torus torus(cfg.width, cfg.height);
  // The source commits at round 0; its direct neighbors at round 1; nodes
  // two hops out at round 2.
  EXPECT_EQ(result.commit_rounds[static_cast<std::size_t>(torus.index({0, 0}))],
            0);
  EXPECT_EQ(result.commit_rounds[static_cast<std::size_t>(torus.index({1, 1}))],
            1);
  EXPECT_EQ(result.commit_rounds[static_cast<std::size_t>(torus.index({2, 0}))],
            2);
  // Every honest node has a commit round, and it never exceeds the run.
  for (const std::int64_t round : result.commit_rounds) {
    EXPECT_GE(round, 0);
    EXPECT_LE(round, result.rounds);
  }
}

TEST(Simulation, CommitRoundsOfFaultyNodesAreUnset) {
  SimConfig cfg = tiny_config();
  Torus torus(cfg.width, cfg.height);
  FaultSet faults(torus, {{6, 6}});
  const auto result = run_simulation(cfg, faults);
  EXPECT_EQ(result.commit_rounds[static_cast<std::size_t>(torus.index({6, 6}))],
            -1);
}

TEST(Simulation, CommitsByRoundIsCumulativeAndComplete) {
  SimConfig cfg = tiny_config();
  const auto result = run_simulation(cfg, FaultSet{});
  const auto series = result.commits_by_round();
  ASSERT_EQ(series.size(), static_cast<std::size_t>(result.rounds) + 1);
  EXPECT_EQ(series.front(), 1);  // the source
  for (std::size_t k = 1; k < series.size(); ++k) {
    EXPECT_GE(series[k], series[k - 1]);
  }
  // Total = all honest nodes + source.
  EXPECT_EQ(series.back(), result.honest_nodes + 1);
}

TEST(Simulation, L2MetricRuns) {
  SimConfig cfg = tiny_config();
  cfg.metric = Metric::kL2;
  cfg.protocol = ProtocolKind::kBvTwoHop;
  cfg.t = 0;
  const auto result = run_simulation(cfg, FaultSet{});
  EXPECT_TRUE(result.success());
}

}  // namespace
}  // namespace rbcast
