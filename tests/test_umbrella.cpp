// Compile-and-touch test for the umbrella header: one use of each subsystem
// through a single include.

#include "radiobcast/radiobcast.h"

#include <gtest/gtest.h>

namespace rbcast {
namespace {

TEST(Umbrella, EverySubsystemReachable) {
  // util
  Rng rng(1);
  EXPECT_LT(rng.below(10), 10u);
  // grid
  const Torus torus(12, 12);
  EXPECT_EQ(linf_nbd_size(1), NeighborhoodTable::get(1, Metric::kLInf).size());
  // paths
  EXPECT_EQ(static_cast<std::int64_t>(region_M(2).size()), r_2r_plus_1(2));
  // fault
  FaultSet faults(torus, {{5, 5}});
  EXPECT_TRUE(satisfies_local_bound(torus, faults, 1, Metric::kLInf, 1));
  // net
  EXPECT_EQ(tdma_slot_count(1), 9);
  // protocols + core
  SimConfig cfg;
  cfg.width = cfg.height = 12;
  cfg.r = 1;
  cfg.protocol = ProtocolKind::kCrashFlood;
  const SimResult result = run_simulation(cfg, faults);
  EXPECT_TRUE(result.success());
  const auto reach =
      honest_reachability(torus, faults, cfg.source, cfg.r, cfg.metric);
  EXPECT_EQ(result.correct_commits, reach.reachable_honest);
  // graph
  const RadioGraph graph = make_separation_graph();
  EXPECT_TRUE(graph.connected());
}

}  // namespace
}  // namespace rbcast
