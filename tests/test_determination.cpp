#include "radiobcast/protocols/determination.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "radiobcast/grid/neighborhood.h"
#include "radiobcast/grid/torus.h"
#include "radiobcast/util/rng.h"

namespace rbcast {
namespace {

TEST(CenterSet, SetTestAndForEachAscending) {
  CenterSet s;
  EXPECT_FALSE(s.any());
  for (const int b : {0, 63, 64, 200, 255}) s.set(b);
  EXPECT_TRUE(s.any());
  std::vector<int> seen;
  s.for_each([&](int b) { seen.push_back(b); });
  EXPECT_EQ(seen, (std::vector<int>{0, 63, 64, 200, 255}));
  CenterSet mask;
  mask.set(63);
  mask.set(200);
  s &= mask;
  seen.clear();
  s.for_each([&](int b) { seen.push_back(b); });
  EXPECT_EQ(seen, (std::vector<int>{63, 200}));
  s.clear();
  EXPECT_FALSE(s.any());
}

TEST(CenterTable, SupportedExactlyWhenNeighborhoodFits) {
  EXPECT_TRUE(CenterTable::supported(1, Metric::kLInf));
  EXPECT_TRUE(CenterTable::supported(7, Metric::kLInf));   // 224 centers
  EXPECT_FALSE(CenterTable::supported(8, Metric::kLInf));  // 288 centers
  EXPECT_FALSE(CenterTable::supported(0, Metric::kLInf));
  EXPECT_TRUE(CenterTable::supported(8, Metric::kL2));  // L2 nbd is smaller
}

// Brute-force oracle: center bit k is set for delta d iff the node at
// origin+d lies in nbd(origin + off_k) on the actual torus.
void check_table_against_torus(std::int32_t r, Metric m, std::int32_t width,
                               std::int32_t height) {
  const Torus torus(width, height);
  const CenterTable& table = CenterTable::get(r, m, width, height);
  const NeighborhoodTable& nbd = NeighborhoodTable::get(r, m);
  const auto offs = nbd.offsets();
  ASSERT_EQ(table.num_centers(), static_cast<int>(offs.size()));
  const Coord origin = torus.wrap({0, 0});
  // Every node within three hops of the origin, by canonical delta.
  for (const Coord node : torus.all_coords()) {
    const Offset d = torus.delta(origin, node);
    if (d.dx < -3 * r || d.dx > 3 * r || d.dy < -3 * r || d.dy > 3 * r) {
      continue;  // outside the table's documented domain
    }
    if (node == origin) continue;
    const CenterSet& got = table.containing(d);
    for (std::size_t k = 0; k < offs.size(); ++k) {
      const Coord c = torus.wrap(origin + offs[k]);
      const bool expect = node != c && torus.within(c, node, r, m);
      EXPECT_EQ(got.test(static_cast<int>(k)), expect)
          << "r=" << r << " dims=" << width << "x" << height << " d=("
          << d.dx << "," << d.dy << ") k=" << k;
    }
  }
}

TEST(CenterTable, MatchesTorusContainmentLargeTorus) {
  check_table_against_torus(2, Metric::kLInf, 32, 32);  // fold-free
}

TEST(CenterTable, MatchesTorusContainmentFoldingTorus) {
  // 12 < 8r at r=2: deltas up to 4r wrap, the exact configuration
  // BM_HeardFlood/2 and the golden r=2 campaigns run.
  check_table_against_torus(2, Metric::kLInf, 12, 12);
}

TEST(CenterTable, MatchesTorusContainmentBoundaryFold) {
  check_table_against_torus(2, Metric::kLInf, 16, 16);  // width == 8r exactly
  check_table_against_torus(1, Metric::kLInf, 5, 7);    // odd, tiny
}

TEST(CenterTable, MatchesTorusContainmentL2) {
  check_table_against_torus(2, Metric::kL2, 12, 12);
}

TEST(CenterTable, OffsetIndexRoundTrips) {
  const CenterTable& table = CenterTable::get(2, Metric::kLInf, 32, 32);
  const auto offs = NeighborhoodTable::get(2, Metric::kLInf).offsets();
  for (std::size_t k = 0; k < offs.size(); ++k) {
    EXPECT_EQ(table.offset_index(offs[k]), static_cast<int>(k));
  }
  EXPECT_EQ(table.offset_index({0, 0}), -1);
  EXPECT_EQ(table.offset_index({3, 0}), -1);
  EXPECT_EQ(table.offset_index({-5, 2}), -1);
}

// Random plausible chains fed to IncrementalDetermination must certify
// exactly when the legacy recipe does: for some center, >= t+1 of the
// contained reports admit a node-disjoint packing.
TEST(IncrementalDetermination, AgreesWithDirectRecomputation) {
  const std::int32_t r = 2;
  const Metric m = Metric::kLInf;
  const CenterTable& table = CenterTable::get(r, m, 32, 32);
  const NeighborhoodTable& nbd = NeighborhoodTable::get(r, m);
  const auto offs = nbd.offsets();
  Rng rng(555);

  for (int trial = 0; trial < 40; ++trial) {
    const std::int64_t t = 1 + static_cast<std::int64_t>(rng.below(3));
    IncrementalDetermination det(table, t, /*first_cap=*/8,
                                 det_digest_seed(r, m, t));
    PackingMemo& memo = PackingMemo::thread_instance();
    struct Rep {
      std::vector<Offset> rel;
    };
    std::vector<Rep> accepted;
    bool fired = false;
    const int n_reports = 4 + static_cast<int>(rng.below(40));
    for (int i = 0; i < n_reports && !fired; ++i) {
      // Random plausible chain: 1-3 hops of L-inf step <= r, distinct,
      // nonzero, first hop a direct neighbor by construction.
      std::vector<Offset> rel;
      Offset at{0, 0};
      const std::size_t len = 1 + rng.below(3);
      bool ok = true;
      for (std::size_t h = 0; h < len; ++h) {
        at.dx += static_cast<std::int32_t>(rng.below(2 * r + 1)) - r;
        at.dy += static_cast<std::int32_t>(rng.below(2 * r + 1)) - r;
        if (at == Offset{0, 0} ||
            std::find(rel.begin(), rel.end(), at) != rel.end()) {
          ok = false;
          break;
        }
        rel.push_back(at);
      }
      if (!ok) continue;
      // Packed key mirroring pack_report_key in bv_indirect.cpp.
      std::uint64_t key = rel.size();
      for (const Offset o : rel) {
        key = (key << 16) |
              (static_cast<std::uint64_t>(static_cast<std::uint8_t>(o.dx))
               << 8) |
              static_cast<std::uint64_t>(static_cast<std::uint8_t>(o.dy));
      }
      if (det.add_report(std::span<const Offset>(rel.data(), rel.size()),
                         key)) {
        accepted.push_back({rel});
      }
      if ((i & 7) == 7) fired = det.evaluate(memo);
    }
    if (!fired) fired = det.evaluate(memo);

    // Oracle: per candidate center, filter contained reports and pack.
    bool expect = false;
    for (std::size_t k = 0; k < offs.size() && !expect; ++k) {
      const Offset off = offs[k];
      std::vector<Interior> contained;
      for (const Rep& rep : accepted) {
        bool inside = true;
        for (const Offset o : rep.rel) {
          if (o == off || !within_radius(o - off, r, m)) {
            inside = false;
            break;
          }
        }
        if (!inside) continue;
        Interior in;
        for (const Offset o : rep.rel) in.add(pack_delta_id(o));
        contained.push_back(in);
      }
      if (static_cast<std::int64_t>(contained.size()) < t + 1) continue;
      const PackingResult packing = max_disjoint_packing(
          std::span<const Interior>(contained), static_cast<int>(t + 1));
      if (packing.count >= t + 1) expect = true;
    }
    EXPECT_EQ(fired, expect) << "trial " << trial << " t=" << t << " accepted="
                             << accepted.size();
  }
}

TEST(IncrementalDetermination, DedupAndFirstRelayerCap) {
  const std::int32_t r = 2;
  const CenterTable& table = CenterTable::get(r, Metric::kLInf, 32, 32);
  IncrementalDetermination det(table, /*t=*/4, /*first_cap=*/2,
                               det_digest_seed(r, Metric::kLInf, 4));
  const Offset first{1, 0};
  // Distinct chains sharing a first relayer: the cap admits only two.
  int accepted = 0;
  for (std::int32_t dy = -2; dy <= 2; ++dy) {
    const std::array<Offset, 2> rel = {first, Offset{2, dy}};
    if (rel[0] == rel[1]) continue;
    const std::uint64_t key = 0x1000 + static_cast<std::uint64_t>(dy + 2);
    if (det.add_report(std::span<const Offset>(rel.data(), rel.size()), key)) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 2);
  // A duplicate key is rejected even under a fresh first relayer's cap.
  const std::array<Offset, 1> rel = {Offset{0, 1}};
  EXPECT_TRUE(det.add_report(std::span<const Offset>(rel.data(), 1), 77));
  EXPECT_FALSE(det.add_report(std::span<const Offset>(rel.data(), 1), 77));
  EXPECT_EQ(det.report_count(), 3u);
}

TEST(PackingMemo, StoresAndRecallsVerdictsPerSignature) {
  PackingMemo& memo = PackingMemo::thread_instance();
  // Signatures chosen not to collide in the direct-mapped table.
  const std::uint64_t d0 = det_mix64(0xABCDEF), d1 = det_mix64(0x123456);
  memo.store(d0, d1, true);
  const bool* hit = memo.lookup(d0, d1);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(*hit);
  // Same slot, different tag: must miss, then overwrite.
  EXPECT_EQ(memo.lookup(d0, d1 ^ 1), nullptr);
  memo.store(d0, d1 ^ 1, false);
  const bool* hit2 = memo.lookup(d0, d1 ^ 1);
  ASSERT_NE(hit2, nullptr);
  EXPECT_FALSE(*hit2);
  EXPECT_EQ(memo.lookup(d0, d1), nullptr);  // evicted
}

}  // namespace
}  // namespace rbcast
