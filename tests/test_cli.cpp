#include "radiobcast/util/cli.h"

#include <gtest/gtest.h>

namespace rbcast {
namespace {

CliArgs parse(std::vector<const char*> argv,
              std::vector<std::string> known) {
  argv.insert(argv.begin(), "prog");
  return CliArgs(static_cast<int>(argv.size()), argv.data(), known);
}

TEST(Cli, EqualsForm) {
  const auto args = parse({"--r=3", "--metric=l2"}, {"r", "metric"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args.get_int("r", 0), 3);
  EXPECT_EQ(args.get("metric", ""), "l2");
}

TEST(Cli, SpaceForm) {
  const auto args = parse({"--r", "5"}, {"r"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args.get_int("r", 0), 5);
}

TEST(Cli, BareFlagIsTrue) {
  const auto args = parse({"--verbose"}, {"verbose"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(Cli, UnknownFlagIsError) {
  const auto args = parse({"--nope=1"}, {"r"});
  EXPECT_FALSE(args.ok());
  EXPECT_NE(args.error().find("nope"), std::string::npos);
}

TEST(Cli, DefaultsWhenMissing) {
  const auto args = parse({}, {"r"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args.get_int("r", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.25), 0.25);
  EXPECT_EQ(args.get("s", "dflt"), "dflt");
  EXPECT_FALSE(args.get_bool("b", false));
  EXPECT_FALSE(args.has("r"));
}

TEST(Cli, Positional) {
  const auto args = parse({"one", "--r=2", "two"}, {"r"});
  ASSERT_TRUE(args.ok());
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "one");
  EXPECT_EQ(args.positional()[1], "two");
}

TEST(Cli, BoolSpellings) {
  const auto args =
      parse({"--a=true", "--b=1", "--c=yes", "--d=off"}, {"a", "b", "c", "d"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_TRUE(args.get_bool("b", false));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

TEST(Cli, DoubleParsing) {
  const auto args = parse({"--p=0.35"}, {"p"});
  ASSERT_TRUE(args.ok());
  EXPECT_DOUBLE_EQ(args.get_double("p", 0), 0.35);
}

}  // namespace
}  // namespace rbcast
