// Property-style parameterized sweeps across protocols, adversaries, metrics
// and seeds. The two global invariants:
//   (1) Safety — no honest node ever commits a wrong value, under ANY
//       adversary and ANY fault budget (Theorem 2 and the trivially-safe
//       commit rules of the other protocols).
//   (2) Determinism — identical configs yield identical outcomes.

#include <gtest/gtest.h>

#include <string>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/fault/placement.h"
#include "radiobcast/paths/construction.h"
#include "radiobcast/paths/disjoint.h"

namespace rbcast {
namespace {

struct SafetyCase {
  ProtocolKind protocol;
  AdversaryKind adversary;
  PlacementKind placement;
  std::int32_t r;
  std::int64_t t;
  std::uint64_t seed;
};

std::string case_name(const ::testing::TestParamInfo<SafetyCase>& info) {
  const SafetyCase& c = info.param;
  std::string s = std::string(to_string(c.protocol)) + "_" +
                  to_string(c.adversary) + "_" + to_string(c.placement) +
                  "_r" + std::to_string(c.r) + "_t" + std::to_string(c.t) +
                  "_s" + std::to_string(c.seed);
  for (char& ch : s) {
    if (ch == '-') ch = '_';
  }
  return s;
}

class SafetySweep : public ::testing::TestWithParam<SafetyCase> {};

TEST_P(SafetySweep, NoHonestNodeCommitsWrong) {
  const SafetyCase& c = GetParam();
  SimConfig cfg;
  cfg.width = cfg.height = 8 * c.r + 4;
  cfg.r = c.r;
  cfg.metric = Metric::kLInf;
  cfg.t = c.t;
  cfg.protocol = c.protocol;
  cfg.adversary = c.adversary;
  cfg.seed = c.seed;
  PlacementConfig placement;
  placement.kind = c.placement;
  placement.trim = true;
  Torus torus(cfg.width, cfg.height);
  Rng rng(c.seed);
  const FaultSet faults = make_faults(placement, torus, cfg.r, cfg.metric,
                                      cfg.t, cfg.source, rng);
  const SimResult result = run_simulation(cfg, faults);
  EXPECT_EQ(result.wrong_commits, 0);
  // And the run must terminate (quiescence) within the default bound.
  EXPECT_TRUE(result.reached_quiescence);
}

std::vector<SafetyCase> safety_cases() {
  std::vector<SafetyCase> cases;
  const ProtocolKind protocols[] = {ProtocolKind::kCpa,
                                    ProtocolKind::kBvTwoHop,
                                    ProtocolKind::kBvIndirectEarmarked};
  const AdversaryKind adversaries[] = {AdversaryKind::kSilent,
                                       AdversaryKind::kLying};
  const PlacementKind placements[] = {PlacementKind::kRandomBounded,
                                      PlacementKind::kCheckerboardStrip};
  for (const auto protocol : protocols) {
    for (const auto adversary : adversaries) {
      for (const auto placement : placements) {
        for (const std::int32_t r : {1, 2}) {
          // Configured bound and an over-budget bound: safety must not care.
          for (const std::int64_t t :
               {byz_linf_achievable_max(r), byz_linf_achievable_max(r) + 3}) {
            cases.push_back({protocol, adversary, placement, r, t, 11u});
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, SafetySweep,
                         ::testing::ValuesIn(safety_cases()), case_name);

// ---------------------------------------------------------------------------
// Construction-vs-flow cross-check: for every covered displacement the flow
// bound is at least the construction's family size (the construction is a
// witness, the flow is the optimum).
// ---------------------------------------------------------------------------

class FlowVsConstruction : public ::testing::TestWithParam<std::int32_t> {};

TEST_P(FlowVsConstruction, FlowAtLeastConstruction) {
  const std::int32_t r = GetParam();
  for (std::int32_t dx = -2 * r; dx <= 2 * r; ++dx) {
    for (std::int32_t dy = -2 * r; dy <= 2 * r; ++dy) {
      const std::int32_t l1 = std::abs(dx) + std::abs(dy);
      if (l1 < 1 || l1 > 2 * r) continue;
      if (linf_norm({dx, dy}) <= r) continue;
      const Coord origin{0, 0};
      const Coord dest{dx, dy};
      const auto constructed = construction_paths(r, origin, dest);
      const auto flow = best_disjoint_paths(origin, dest, r, Metric::kLInf);
      ASSERT_TRUE(flow.has_value());
      EXPECT_GE(flow->paths.size(), constructed.paths.size())
          << "d=<" << dx << "," << dy << ">";
      // And per Theorem 3 both give at least r(2r+1).
      EXPECT_GE(static_cast<std::int64_t>(constructed.paths.size()),
                r_2r_plus_1(r));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, FlowVsConstruction, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// Flood vs earmarked relays: identical commit outcomes across random fault
// placements (the earmark plan is complete).
// ---------------------------------------------------------------------------

class RelayModeEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RelayModeEquivalence, SameOutcomes) {
  const std::uint64_t seed = GetParam();
  SimConfig cfg;
  cfg.width = cfg.height = 12;
  cfg.r = 1;
  cfg.metric = Metric::kLInf;
  cfg.t = byz_linf_achievable_max(1);
  cfg.adversary = AdversaryKind::kSilent;
  cfg.seed = seed;
  PlacementConfig placement;
  placement.kind = PlacementKind::kRandomBounded;
  Torus torus(cfg.width, cfg.height);
  Rng rng(seed);
  const FaultSet faults = make_faults(placement, torus, cfg.r, cfg.metric,
                                      cfg.t, cfg.source, rng);
  cfg.protocol = ProtocolKind::kBvIndirectFlood;
  const auto flood = run_simulation(cfg, faults);
  cfg.protocol = ProtocolKind::kBvIndirectEarmarked;
  const auto earmarked = run_simulation(cfg, faults);
  EXPECT_EQ(flood.correct_commits, earmarked.correct_commits);
  EXPECT_EQ(flood.undecided, earmarked.undecided);
  EXPECT_EQ(flood.wrong_commits, 0);
  EXPECT_EQ(earmarked.wrong_commits, 0);
  EXPECT_LE(earmarked.transmissions, flood.transmissions);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelayModeEquivalence,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// Liveness monotonicity: if the protocol succeeds against a placement at
// budget t, it also succeeds with strictly fewer faults (prefix subsets).
// ---------------------------------------------------------------------------

TEST(Monotonicity, LaterCrashesNeverHurtFlooding) {
  // A crash-stop node that relays before dying only adds information:
  // coverage is nondecreasing in the crash round.
  SimConfig cfg;
  cfg.width = cfg.height = 14;
  cfg.r = 1;
  cfg.metric = Metric::kLInf;
  cfg.protocol = ProtocolKind::kCrashFlood;
  cfg.adversary = AdversaryKind::kCrashAtRound;
  cfg.seed = 8;
  Torus torus(cfg.width, cfg.height);
  Rng rng(8);
  const FaultSet faults = iid_faults(torus, 0.3, rng, cfg.source);
  double prev = -1.0;
  for (const std::int64_t crash_round : {0, 1, 2, 4, 8}) {
    cfg.crash_round = crash_round;
    const auto result = run_simulation(cfg, faults);
    EXPECT_GE(result.coverage(), prev) << "crash_round=" << crash_round;
    EXPECT_EQ(result.wrong_commits, 0);
    prev = result.coverage();
  }
  // Crashing after the flood has passed is indistinguishable from honesty.
  cfg.crash_round = 1000;
  EXPECT_TRUE(run_simulation(cfg, faults).success());
}

TEST(Regression, GoldenTransmissionCounts) {
  // Deterministic pin of a few engine-level numbers; any change here means
  // the round engine or a protocol changed behavior, intentionally or not.
  SimConfig cfg;
  cfg.width = cfg.height = 12;
  cfg.r = 1;
  cfg.metric = Metric::kLInf;
  cfg.seed = 1;

  cfg.protocol = ProtocolKind::kCrashFlood;
  const auto crash = run_simulation(cfg, FaultSet{});
  EXPECT_EQ(crash.transmissions, 144u);  // one broadcast per node
  EXPECT_EQ(crash.deliveries, 144u * 8u);
  EXPECT_EQ(crash.rounds, 7);  // 6 wave hops + a drain round

  cfg.protocol = ProtocolKind::kBvTwoHop;
  cfg.t = 1;
  const auto bv = run_simulation(cfg, FaultSet{});
  // Every node: 1 COMMITTED + one HEARD per neighbor's COMMITTED (8), except
  // boundary effects of ordering; pin the exact deterministic figure.
  EXPECT_EQ(bv.transmissions, 1288u);
  EXPECT_TRUE(bv.success());
}

TEST(Monotonicity, FewerFaultsNeverHurt) {
  SimConfig cfg;
  cfg.width = cfg.height = 20;
  cfg.r = 2;
  cfg.metric = Metric::kLInf;
  cfg.t = byz_linf_achievable_max(2);
  cfg.protocol = ProtocolKind::kBvTwoHop;
  cfg.adversary = AdversaryKind::kSilent;
  cfg.seed = 3;
  Torus torus(cfg.width, cfg.height);
  Rng rng(3);
  FaultSet full = random_bounded(torus, cfg.r, cfg.metric, cfg.t,
                                 /*target=*/30, /*attempts=*/4000, rng,
                                 cfg.source);
  const auto with_full = run_simulation(cfg, full);
  ASSERT_TRUE(with_full.success());
  // Remove half the faults: still success.
  FaultSet half;
  const auto sorted = full.sorted();
  for (std::size_t i = 0; i < sorted.size(); i += 2) half.add(torus, sorted[i]);
  const auto with_half = run_simulation(cfg, half);
  EXPECT_TRUE(with_half.success());
}

}  // namespace
}  // namespace rbcast
