// Golden determinism-across-refactor regression (the bit-identical contract
// of docs/PERF.md): a fixed-seed mini-campaign per protocol, run with
// counters and a per-trial trace sink, must serialize to byte-identical
// JSON / CSV / trace files forever — across refactors, optimization PRs, and
// worker counts. The SHA-256 digests below were recorded from the
// pre-optimization round engine (the PR 5 seed state); any hot-path change
// that alters a single byte of any export fails here.
//
// If a digest changes *intentionally* (schema bump, new counter), re-record
// by running this test and copying the "actual" digests from the failure
// output — but first make sure the change is a schema change, not an
// accidental loss of determinism: the w=1 and w=8 runs must at least agree
// with each other.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "radiobcast/campaign/engine.h"
#include "radiobcast/campaign/report.h"
#include "radiobcast/core/analysis.h"
#include "radiobcast/util/sha256.h"

namespace rbcast {
namespace {

/// Digest of every trace file in `dir`, folded in sorted-filename order as
/// "name\n<bytes>" — one digest pins the whole trace directory.
std::string hash_trace_dir(const std::filesystem::path& dir) {
  std::map<std::string, std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    files.emplace(entry.path().filename().string(), entry.path());
  }
  Sha256 hash;
  for (const auto& [name, path] : files) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    hash.update(name);
    hash.update("\n");
    hash.update(bytes.str());
  }
  return hash.hex_digest();
}

struct CampaignHashes {
  std::string json;
  std::string csv;
  std::string traces;
};

/// One deterministic mini-campaign for `protocol`: silent + lying (+spoofing
/// for bv-2hop) adversaries, a perfect and a lossy channel cell each, with
/// retransmissions so the repeat-delivery path is pinned too.
CampaignHashes run_golden_campaign(ProtocolKind protocol, std::int32_t r,
                                   std::int64_t t, std::int64_t reps,
                                   int workers, const std::string& tag) {
  CampaignSpec spec;
  // 12 for every r <= 2 (the historical golden geometry); the r = 3 row
  // needs the 4r+2 floor run_simulation enforces.
  spec.base.width = spec.base.height = std::max<std::int32_t>(12, 4 * r + 2);
  spec.base.r = r;
  spec.base.protocol = protocol;
  spec.base.t = t;
  spec.base.retransmissions = 2;
  spec.adversaries = {AdversaryKind::kSilent, AdversaryKind::kLying};
  if (protocol == ProtocolKind::kBvTwoHop) {
    // One protocol also pins the spoofed-broadcast queue path.
    spec.adversaries.push_back(AdversaryKind::kSpoofing);
  }
  spec.placements = {PlacementKind::kRandomBounded};
  spec.loss_ps = {0.0, 0.25};
  spec.reps = reps;
  spec.base_seed = 20260806;

  const std::filesystem::path trace_dir =
      std::filesystem::path(testing::TempDir()) /
      ("golden_" + tag + "_w" + std::to_string(workers));
  std::filesystem::remove_all(trace_dir);

  CampaignOptions options;
  options.workers = workers;
  options.trace_dir = trace_dir.string();
  const CampaignResult result = run_campaign(spec, options);

  CampaignHashes hashes;
  hashes.json = sha256_hex(to_json(result));
  hashes.csv = sha256_hex(to_csv(result));
  hashes.traces = hash_trace_dir(trace_dir);
  std::filesystem::remove_all(trace_dir);
  return hashes;
}

struct GoldenRow {
  ProtocolKind protocol;
  std::int32_t r;
  std::int64_t t;
  std::int64_t reps;
  const char* json_sha;
  const char* csv_sha;
  const char* trace_sha;
};

// JSON/CSV digests re-recorded when engine_bytes_peak joined the counter
// schema (campaign schema v4 -> v5, see header comment) — but only AFTER the
// structure-of-arrays trial engine had been landed against the v4 digests
// unchanged, proving the SoA refactor itself is byte-identical. Trace
// digests are unchanged since trace events carry no counters.
//
// The r = 2 rows (fewer reps: they are ~100x the work per trial) were
// recorded from the pre-incremental-determination engine (PR 7 parent
// commit); they pin the r >= 2 evidence/set-packing path that the r = 1 rows
// barely exercise. The r = 3 row pins the SoA two-hop pool on the larger
// (4r+2 = 14) geometry the HEARD-flood presets build on.
const GoldenRow kGolden[] = {
    {ProtocolKind::kCrashFlood, 1, 3, 3,
     "342eff9096f1ba65102a4dad5526bddac079710af4d79cd46155f7e7dc44b4b0",
     "579a6718884e0cbd4e5a6cd60c98062a0bb782e32efe8f33706b1bce123da578",
     "102189cc5240713ab49e6fb74e9a17a981d5ed4c02a5b3955408d5f9eff60ddc"},
    {ProtocolKind::kCpa, 1, 1, 3,
     "9dbc655b2bd84591d42e4b73e8856e807c19b385b2b891328e809c0051b3a6d3",
     "f0cf162bdbf39c762780d1793a347019b82854a239ff218f54750dceb8f2bfd6",
     "20df3a755dac1411923306328f544bedbdcbf59eb35bd7de496b74d6c3dca92b"},
    {ProtocolKind::kBvTwoHop, 1, 1, 3,
     "7e9ca651796e809e38f8095d3804ce6584f04c347b7fb64d4c016b26e4f300ec",
     "916d36cef96cb635b286b6236e0b053e2bf67db223114bbaa00c1fc8f6fc7e7b",
     "249ced1b5baa733926ca02b77c87fb2ea4da4e4ad05811eb3fd7b7863e68b8db"},
    {ProtocolKind::kBvIndirectFlood, 1, 1, 3,
     "ba228b4c71a281f78928ee1c45b7ea122b88e80f750ca4bd328767a75ee105b9",
     "09ce891919a1aad059e4a4605cecfdb9d4dfd0a075d26f6898ca9fa047ad481a",
     "dbcb5c458c2906f9585378a34857bd49b554dea3dd64149179d33d47d08058ad"},
    {ProtocolKind::kBvIndirectEarmarked, 1, 1, 3,
     "e9f205a66d90de915274f06004156d4eabb5a2c749de4941480af927596607a4",
     "6d51e8131f7be92db845ab007fdd3e3b042b6cc487913d4ae4e9f82bcd495239",
     "3dba37c6cee5ba895874b233b976532f3e29342b76ed70c9f3cbfcfd61599a95"},
    // r = 2 rows recorded from the pre-incremental (PR 5) engine; the
    // incremental rewrite must reproduce them byte-for-byte.
    {ProtocolKind::kBvTwoHop, 2, 4, 2,
     "3f03065ffbc81c5fbc2df82f2525e940a680f07d9d81629cbaaae77d93024e24",
     "820d36c4dd62f0ac693535ae49515e289f45477a9250d38329360489d64f74f2",
     "8d831c1ab43b66f9c194c65100aee8aae6d626625537e4ff4ec70e1c7531fbe0"},
    {ProtocolKind::kBvIndirectFlood, 2, 4, 2,
     "02f0b6b8f903f44c92329894330babdd6da957181892bf4933650a7086e5aec1",
     "1717c6325caa6b5419b5313a713c3805ad0f50c7982867797141661ed89e4dfc",
     "48ab91405ca0ef5e5ff4e2050fee11b1f6f4521ad90245418e8ba9f51ee0fa02"},
    {ProtocolKind::kBvIndirectEarmarked, 2, 4, 2,
     "acb14ff8ba985067c3dc833977ddff9ffe8d04baaf2d6b817ae3cb961f776b0b",
     "b876a0d26ca4d9faaf6dc345c224ed467ff89fa1d9dbd57ee79ff148a95408e8",
     "8e2be41f3e0aa0a0bcf65ee61720e2cfd863a36dd01ed4ed35e5525dd3999e91"},
    // r = 3 (t = byz_linf_achievable_max(3) = 10, torus 14x14): the SoA
    // two-hop pool at the radius the HEARD-flood presets start from.
    {ProtocolKind::kBvTwoHop, 3, 10, 1,
     "0fa7ce909e2d1ac01dff2c237d72386a36fc80dac6fbfd12d36766c59e05ad4b",
     "52b616da8502436d461ada39f04dc846322119dba573fe2d976102108c0c2993",
     "01e42ae8123468c0a394b97daba02cb9db41d3e3abaa2890ab058cd7853afab7"},
};

class GoldenDeterminism : public testing::TestWithParam<GoldenRow> {};

TEST_P(GoldenDeterminism, CampaignBytesMatchRecordedDigests) {
  const GoldenRow& row = GetParam();
  const std::string tag =
      std::string(to_string(row.protocol)) + "_r" + std::to_string(row.r);
  const CampaignHashes w1 =
      run_golden_campaign(row.protocol, row.r, row.t, row.reps, 1, tag);
  const CampaignHashes w8 =
      run_golden_campaign(row.protocol, row.r, row.t, row.reps, 8, tag);

  // Worker-count independence first: if these disagree, determinism itself
  // broke (worse than a schema change).
  EXPECT_EQ(w1.json, w8.json) << tag << ": JSON differs across worker counts";
  EXPECT_EQ(w1.csv, w8.csv) << tag << ": CSV differs across worker counts";
  EXPECT_EQ(w1.traces, w8.traces)
      << tag << ": trace bytes differ across worker counts";

  // Then the recorded goldens: byte-identical to the pre-optimization engine.
  EXPECT_EQ(w1.json, row.json_sha) << tag << ": JSON golden mismatch";
  EXPECT_EQ(w1.csv, row.csv_sha) << tag << ": CSV golden mismatch";
  EXPECT_EQ(w1.traces, row.trace_sha) << tag << ": trace golden mismatch";
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, GoldenDeterminism, testing::ValuesIn(kGolden),
    [](const testing::TestParamInfo<GoldenRow>& info) {
      std::string name = std::string(to_string(info.param.protocol)) + "_r" +
                         std::to_string(info.param.r);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Sha256, MatchesKnownVectors) {
  // FIPS 180-4 test vectors — guards the hasher the goldens depend on.
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // Incremental updates across block boundaries agree with one-shot hashing.
  Sha256 h;
  const std::string million_a(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(million_a);
  EXPECT_EQ(h.hex_digest(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

}  // namespace
}  // namespace rbcast
