// Golden determinism-across-refactor regression (the bit-identical contract
// of docs/PERF.md): a fixed-seed mini-campaign per protocol, run with
// counters and a per-trial trace sink, must serialize to byte-identical
// JSON / CSV / trace files forever — across refactors, optimization PRs, and
// worker counts. The SHA-256 digests below were recorded from the
// pre-optimization round engine (the PR 5 seed state); any hot-path change
// that alters a single byte of any export fails here.
//
// If a digest changes *intentionally* (schema bump, new counter), re-record
// by running this test and copying the "actual" digests from the failure
// output — but first make sure the change is a schema change, not an
// accidental loss of determinism: the w=1 and w=8 runs must at least agree
// with each other.

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "radiobcast/campaign/engine.h"
#include "radiobcast/campaign/report.h"
#include "radiobcast/core/analysis.h"
#include "radiobcast/util/sha256.h"

namespace rbcast {
namespace {

/// Digest of every trace file in `dir`, folded in sorted-filename order as
/// "name\n<bytes>" — one digest pins the whole trace directory.
std::string hash_trace_dir(const std::filesystem::path& dir) {
  std::map<std::string, std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    files.emplace(entry.path().filename().string(), entry.path());
  }
  Sha256 hash;
  for (const auto& [name, path] : files) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    hash.update(name);
    hash.update("\n");
    hash.update(bytes.str());
  }
  return hash.hex_digest();
}

struct CampaignHashes {
  std::string json;
  std::string csv;
  std::string traces;
};

/// One deterministic mini-campaign for `protocol`: silent + lying (+spoofing
/// for bv-2hop) adversaries, a perfect and a lossy channel cell each, with
/// retransmissions so the repeat-delivery path is pinned too.
CampaignHashes run_golden_campaign(ProtocolKind protocol, std::int32_t r,
                                   std::int64_t t, std::int64_t reps,
                                   int workers, const std::string& tag) {
  CampaignSpec spec;
  spec.base.width = spec.base.height = 12;
  spec.base.r = r;
  spec.base.protocol = protocol;
  spec.base.t = t;
  spec.base.retransmissions = 2;
  spec.adversaries = {AdversaryKind::kSilent, AdversaryKind::kLying};
  if (protocol == ProtocolKind::kBvTwoHop) {
    // One protocol also pins the spoofed-broadcast queue path.
    spec.adversaries.push_back(AdversaryKind::kSpoofing);
  }
  spec.placements = {PlacementKind::kRandomBounded};
  spec.loss_ps = {0.0, 0.25};
  spec.reps = reps;
  spec.base_seed = 20260806;

  const std::filesystem::path trace_dir =
      std::filesystem::path(testing::TempDir()) /
      ("golden_" + tag + "_w" + std::to_string(workers));
  std::filesystem::remove_all(trace_dir);

  CampaignOptions options;
  options.workers = workers;
  options.trace_dir = trace_dir.string();
  const CampaignResult result = run_campaign(spec, options);

  CampaignHashes hashes;
  hashes.json = sha256_hex(to_json(result));
  hashes.csv = sha256_hex(to_csv(result));
  hashes.traces = hash_trace_dir(trace_dir);
  std::filesystem::remove_all(trace_dir);
  return hashes;
}

struct GoldenRow {
  ProtocolKind protocol;
  std::int32_t r;
  std::int64_t t;
  std::int64_t reps;
  const char* json_sha;
  const char* csv_sha;
  const char* trace_sha;
};

// JSON/CSV digests re-recorded when the chaos/recovery counters were added
// to the counter schema (campaign schema v3 -> v4, see header comment);
// trace digests are unchanged since trace events carry no counters.
//
// The r = 2 rows (fewer reps: they are ~100x the work per trial) were
// recorded from the pre-incremental-determination engine (PR 7 parent
// commit); they pin the r >= 2 evidence/set-packing path that the r = 1 rows
// barely exercise.
const GoldenRow kGolden[] = {
    {ProtocolKind::kCrashFlood, 1, 3, 3,
     "3137293c847d53186ab3a98d6bc93f2a499d94755d1cac737e6a99f79bc8d57d",
     "d2cdfd898fb5d6671ab2a55a4b569ad046a4abf2c49509b9736402677431a240",
     "102189cc5240713ab49e6fb74e9a17a981d5ed4c02a5b3955408d5f9eff60ddc"},
    {ProtocolKind::kCpa, 1, 1, 3,
     "08c56706c4dc29ea21e53fb7ae7a51b11d6245ffbaca55b65ab8d5c1e38fc754",
     "4bbaa67d02d1966ee90c695eb767fb279ff1ff676cf14ed77ab49a5969f1518c",
     "20df3a755dac1411923306328f544bedbdcbf59eb35bd7de496b74d6c3dca92b"},
    {ProtocolKind::kBvTwoHop, 1, 1, 3,
     "5175dff29ac1ee302a4b21dfaf1cc14993287ed2267d33ac284c46820a68fcac",
     "f7570c6764d8699d09122bb88e17c0a961d1c109d0542e1436e074a12ac0fb81",
     "249ced1b5baa733926ca02b77c87fb2ea4da4e4ad05811eb3fd7b7863e68b8db"},
    {ProtocolKind::kBvIndirectFlood, 1, 1, 3,
     "c317c8a35a67f473b3b4fdcc1ced6e20b98fc925cb266f79fbbfa180367feb67",
     "5fadab5eba03dae3ea4d295e6b84c445c50c147db965161e4e24429fecc4adea",
     "dbcb5c458c2906f9585378a34857bd49b554dea3dd64149179d33d47d08058ad"},
    {ProtocolKind::kBvIndirectEarmarked, 1, 1, 3,
     "32ca426e58759cabbd86ba8157109be710ee00306450b96cca96d26336e5b8f3",
     "6fd5e75e8f026fa52ce145b128de1f0b946238dcc5757f980918ff729ce3b4e4",
     "3dba37c6cee5ba895874b233b976532f3e29342b76ed70c9f3cbfcfd61599a95"},
    // r = 2 rows recorded from the pre-incremental (PR 5) engine; the
    // incremental rewrite must reproduce them byte-for-byte.
    {ProtocolKind::kBvTwoHop, 2, 4, 2,
     "5e9826c0069a11bf68e43e68c28a582635e69438a386e2b48641a14d40ebae3c",
     "57790d77098a85a3a1aaeb4b3fae126ae3544ed513cfb216847d57b2d6249854",
     "8d831c1ab43b66f9c194c65100aee8aae6d626625537e4ff4ec70e1c7531fbe0"},
    {ProtocolKind::kBvIndirectFlood, 2, 4, 2,
     "530ee834d2fb999fab45c57ec737e9e2f7d18c94fb4a47a4e64fa1503ed2eb7d",
     "b1c13804bc29650e1d35bd30fabdb716609fe75e568afe6fc3a114192c2e4853",
     "48ab91405ca0ef5e5ff4e2050fee11b1f6f4521ad90245418e8ba9f51ee0fa02"},
    {ProtocolKind::kBvIndirectEarmarked, 2, 4, 2,
     "9c754c95f0af5e6c51df76b4c5ae913ab34b0642448bc8026ecc14a6fd3815c1",
     "93eb602e0c1101cea5f351cd95aa2c457fbe5afe65b35c8c2bc4febcabfb4a96",
     "8e2be41f3e0aa0a0bcf65ee61720e2cfd863a36dd01ed4ed35e5525dd3999e91"},
};

class GoldenDeterminism : public testing::TestWithParam<GoldenRow> {};

TEST_P(GoldenDeterminism, CampaignBytesMatchRecordedDigests) {
  const GoldenRow& row = GetParam();
  const std::string tag =
      std::string(to_string(row.protocol)) + "_r" + std::to_string(row.r);
  const CampaignHashes w1 =
      run_golden_campaign(row.protocol, row.r, row.t, row.reps, 1, tag);
  const CampaignHashes w8 =
      run_golden_campaign(row.protocol, row.r, row.t, row.reps, 8, tag);

  // Worker-count independence first: if these disagree, determinism itself
  // broke (worse than a schema change).
  EXPECT_EQ(w1.json, w8.json) << tag << ": JSON differs across worker counts";
  EXPECT_EQ(w1.csv, w8.csv) << tag << ": CSV differs across worker counts";
  EXPECT_EQ(w1.traces, w8.traces)
      << tag << ": trace bytes differ across worker counts";

  // Then the recorded goldens: byte-identical to the pre-optimization engine.
  EXPECT_EQ(w1.json, row.json_sha) << tag << ": JSON golden mismatch";
  EXPECT_EQ(w1.csv, row.csv_sha) << tag << ": CSV golden mismatch";
  EXPECT_EQ(w1.traces, row.trace_sha) << tag << ": trace golden mismatch";
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocols, GoldenDeterminism, testing::ValuesIn(kGolden),
    [](const testing::TestParamInfo<GoldenRow>& info) {
      std::string name = std::string(to_string(info.param.protocol)) + "_r" +
                         std::to_string(info.param.r);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Sha256, MatchesKnownVectors) {
  // FIPS 180-4 test vectors — guards the hasher the goldens depend on.
  EXPECT_EQ(sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      sha256_hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // Incremental updates across block boundaries agree with one-shot hashing.
  Sha256 h;
  const std::string million_a(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(million_a);
  EXPECT_EQ(h.hex_digest(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

}  // namespace
}  // namespace rbcast
