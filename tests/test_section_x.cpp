// Section X: address spoofing and adversarial collisions. These tests pin
// the paper's qualitative claims:
//   * with spoofing, safety genuinely breaks (the negative control showing
//     the no-spoofing assumption is load-bearing);
//   * unbounded collisions black out the jammers' vicinity;
//   * bounded collisions lose to sufficiently many retransmissions.

#include <gtest/gtest.h>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/net/jamming.h"
#include "radiobcast/net/network.h"

namespace rbcast {
namespace {

SimConfig base_config() {
  SimConfig cfg;
  cfg.width = cfg.height = 12;
  cfg.r = 1;
  cfg.metric = Metric::kLInf;
  cfg.seed = 77;
  return cfg;
}

// ---------------------------------------------------------------------------
// Spoofing
// ---------------------------------------------------------------------------

TEST(Spoofing, DisabledByDefault) {
  RadioNetwork net(Torus(8, 8), 1, Metric::kLInf, 1);
  NodeContext ctx(net, {3, 3});
  EXPECT_THROW(ctx.broadcast_as({4, 4}, make_committed({4, 4}, 1)),
               std::logic_error);
}

TEST(Spoofing, BreaksCpaSafety) {
  // One spoofing liar impersonating its neighbors feeds CPA t+1 forged
  // claims: some honest node commits the wrong value. This is the paper's
  // point — without the no-spoofing assumption the results collapse.
  SimConfig cfg = base_config();
  cfg.protocol = ProtocolKind::kCpa;
  cfg.adversary = AdversaryKind::kSpoofing;
  cfg.t = 1;
  Torus torus(cfg.width, cfg.height);
  FaultSet faults(torus, {{6, 6}});
  const auto result = run_simulation(cfg, faults);
  EXPECT_GT(result.wrong_commits, 0);
}

TEST(Spoofing, BreaksBvTwoHopSafety) {
  SimConfig cfg = base_config();
  cfg.protocol = ProtocolKind::kBvTwoHop;
  cfg.adversary = AdversaryKind::kSpoofing;
  cfg.t = 1;
  Torus torus(cfg.width, cfg.height);
  FaultSet faults(torus, {{6, 6}});
  const auto result = run_simulation(cfg, faults);
  EXPECT_GT(result.wrong_commits, 0);
}

TEST(Spoofing, SameBudgetWithoutSpoofingIsSafe) {
  // Control: the identical placement with an ordinary liar keeps safety.
  SimConfig cfg = base_config();
  cfg.protocol = ProtocolKind::kBvTwoHop;
  cfg.adversary = AdversaryKind::kLying;
  cfg.t = 1;
  Torus torus(cfg.width, cfg.height);
  FaultSet faults(torus, {{6, 6}});
  const auto result = run_simulation(cfg, faults);
  EXPECT_EQ(result.wrong_commits, 0);
}

// ---------------------------------------------------------------------------
// Jamming
// ---------------------------------------------------------------------------

TEST(Jamming, ChannelConsumesBudget) {
  const Torus torus(12, 12);
  JammingChannel channel(torus, 1, Metric::kLInf, {{5, 5}}, 2);
  Rng rng(1);
  // Deliveries to receivers near the jammer are destroyed while budget lasts.
  EXPECT_FALSE(channel.delivers({3, 5}, {4, 5}, rng));
  EXPECT_FALSE(channel.delivers({3, 5}, {4, 5}, rng));
  EXPECT_TRUE(channel.delivers({3, 5}, {4, 5}, rng));  // budget exhausted
  EXPECT_EQ(channel.jammed_count(), 2);
}

TEST(Jamming, DoesNotJamOutsideVicinity) {
  const Torus torus(12, 12);
  JammingChannel channel(torus, 1, Metric::kLInf, {{5, 5}}, 100);
  Rng rng(1);
  EXPECT_TRUE(channel.delivers({0, 0}, {1, 0}, rng));
  EXPECT_EQ(channel.jammed_count(), 0);
}

TEST(Jamming, NeverJamsFaultyTransmissions) {
  const Torus torus(12, 12);
  JammingChannel channel(torus, 1, Metric::kLInf, {{5, 5}, {5, 6}}, 100);
  Rng rng(1);
  // (5,6) transmits near jammer (5,5): delivered (the adversary coordinates).
  EXPECT_TRUE(channel.delivers({5, 6}, {4, 5}, rng));
}

TEST(Jamming, UnboundedBudgetBlacksOutVicinity) {
  SimConfig cfg = base_config();
  cfg.protocol = ProtocolKind::kCrashFlood;
  cfg.adversary = AdversaryKind::kJamming;
  cfg.jam_budget = -1;  // unbounded: "rendered impossible"
  Torus torus(cfg.width, cfg.height);
  // A jammer ring around (6,6) is not needed; even one jammer leaves its
  // whole vicinity deaf.
  FaultSet faults(torus, {{6, 6}});
  const auto result = run_simulation(cfg, faults);
  EXPECT_GT(result.undecided, 0);
  // The jammer's neighbors can never receive anything.
  for (const Coord c : torus.all_coords()) {
    if (torus.within(c, {6, 6}, 1, Metric::kLInf) && !(c == Coord{6, 6})) {
      EXPECT_EQ(result.outcomes[static_cast<std::size_t>(torus.index(c))],
                NodeOutcome::kUndecided);
    }
  }
}

TEST(Jamming, BoundedBudgetLosesToRetransmissions) {
  // "If the adversary uses collisions to merely disrupt communication, the
  // problem is trivially solved by re-transmitting a sufficient number of
  // times."
  SimConfig cfg = base_config();
  cfg.protocol = ProtocolKind::kCrashFlood;
  cfg.adversary = AdversaryKind::kJamming;
  cfg.jam_budget = 20;
  Torus torus(cfg.width, cfg.height);
  FaultSet faults(torus, {{6, 6}, {2, 9}});

  cfg.retransmissions = 1;
  const auto once = run_simulation(cfg, faults);
  cfg.retransmissions = 16;  // copies exceed every jammer's budget locally
  const auto many = run_simulation(cfg, faults);
  EXPECT_TRUE(many.success());
  EXPECT_GE(many.correct_commits, once.correct_commits);
}

TEST(Jamming, ZeroBudgetIsHarmless) {
  SimConfig cfg = base_config();
  cfg.protocol = ProtocolKind::kCrashFlood;
  cfg.adversary = AdversaryKind::kJamming;
  cfg.jam_budget = 0;
  Torus torus(cfg.width, cfg.height);
  FaultSet faults(torus, {{6, 6}});
  const auto result = run_simulation(cfg, faults);
  EXPECT_TRUE(result.success());
}

TEST(AdversaryNames, SectionXKinds) {
  EXPECT_STREQ(to_string(AdversaryKind::kSpoofing), "spoofing");
  EXPECT_STREQ(to_string(AdversaryKind::kJamming), "jamming");
}

}  // namespace
}  // namespace rbcast
