#include "radiobcast/protocols/bv_two_hop.h"

#include <gtest/gtest.h>

#include "radiobcast/core/analysis.h"
#include "radiobcast/core/experiment.h"
#include "radiobcast/core/simulation.h"

namespace rbcast {
namespace {

SimConfig base_config(std::int32_t r) {
  SimConfig cfg;
  cfg.width = cfg.height = 8 * r + 4;
  cfg.r = r;
  cfg.metric = Metric::kLInf;
  cfg.protocol = ProtocolKind::kBvTwoHop;
  cfg.adversary = AdversaryKind::kSilent;
  cfg.seed = 21;
  return cfg;
}

TEST(BvTwoHop, FaultFreeFullCoverage) {
  for (std::int32_t r = 1; r <= 3; ++r) {
    SimConfig cfg = base_config(r);
    cfg.t = byz_linf_achievable_max(r);
    const auto result = run_simulation(cfg, FaultSet{});
    EXPECT_TRUE(result.success()) << "r=" << r;
    EXPECT_TRUE(result.reached_quiescence);
  }
}

TEST(BvTwoHop, SurvivesCheckerboardBarrierAtExactThreshold) {
  // Koo's arrangement trimmed to the achievable budget t* = ceil(r(2r+1)/2)-1
  // must fail to stop the protocol (Theorem 1).
  for (std::int32_t r = 1; r <= 2; ++r) {
    SimConfig cfg = base_config(r);
    cfg.t = byz_linf_achievable_max(r);
    PlacementConfig placement;
    placement.kind = PlacementKind::kCheckerboardStrip;
    placement.trim = true;  // checkerboard is 1 over budget at t*
    Torus torus(cfg.width, cfg.height);
    Rng rng(1);
    const FaultSet faults = make_faults(placement, torus, cfg.r, cfg.metric,
                                        cfg.t, cfg.source, rng);
    ASSERT_LE(max_closed_nbd_faults(torus, faults, cfg.r, cfg.metric), cfg.t);
    const auto result = run_simulation(cfg, faults);
    EXPECT_TRUE(result.success()) << "r=" << r;
    EXPECT_EQ(result.wrong_commits, 0);
  }
}

TEST(BvTwoHop, StalledByCheckerboardAtImpossibilityBudget) {
  // At t = ceil(r(2r+1)/2) the untrimmed checkerboard strip starves deciders
  // beyond the barrier (the paper's impossibility region).
  for (std::int32_t r = 1; r <= 2; ++r) {
    SimConfig cfg = base_config(r);
    cfg.t = byz_linf_impossible_min(r);
    PlacementConfig placement;
    placement.kind = PlacementKind::kCheckerboardStrip;
    placement.trim = false;
    Torus torus(cfg.width, cfg.height);
    Rng rng(1);
    const FaultSet faults = make_faults(placement, torus, cfg.r, cfg.metric,
                                        cfg.t, cfg.source, rng);
    ASSERT_EQ(max_closed_nbd_faults(torus, faults, cfg.r, cfg.metric), cfg.t);
    const auto result = run_simulation(cfg, faults);
    EXPECT_FALSE(result.success()) << "r=" << r;
    EXPECT_GT(result.undecided, 0);
    EXPECT_EQ(result.wrong_commits, 0);  // safety holds regardless
  }
}

TEST(BvTwoHop, LyingBarrierNeverCausesWrongCommits) {
  for (std::int32_t r = 1; r <= 2; ++r) {
    SimConfig cfg = base_config(r);
    cfg.t = byz_linf_achievable_max(r);
    cfg.adversary = AdversaryKind::kLying;
    PlacementConfig placement;
    placement.kind = PlacementKind::kCheckerboardStrip;
    Torus torus(cfg.width, cfg.height);
    Rng rng(1);
    const FaultSet faults = make_faults(placement, torus, cfg.r, cfg.metric,
                                        cfg.t, cfg.source, rng);
    const auto result = run_simulation(cfg, faults);
    EXPECT_EQ(result.wrong_commits, 0) << "r=" << r;
    EXPECT_TRUE(result.success()) << "r=" << r;
  }
}

TEST(BvTwoHop, RandomLiarsAtThresholdAreHarmless) {
  SimConfig cfg = base_config(2);
  cfg.t = byz_linf_achievable_max(2);
  cfg.adversary = AdversaryKind::kLying;
  PlacementConfig placement;
  placement.kind = PlacementKind::kRandomBounded;
  for (int rep = 0; rep < 3; ++rep) {
    Torus torus(cfg.width, cfg.height);
    Rng rng(30 + static_cast<std::uint64_t>(rep));
    const FaultSet faults = make_faults(placement, torus, cfg.r, cfg.metric,
                                        cfg.t, cfg.source, rng);
    const auto result = run_simulation(cfg, faults);
    EXPECT_EQ(result.wrong_commits, 0) << "rep=" << rep;
    EXPECT_TRUE(result.success()) << "rep=" << rep;
  }
}

TEST(BvTwoHop, BehaviorUnitDirectDetermination) {
  const Torus torus(20, 20);
  RadioNetwork net(torus, 2, Metric::kLInf, 1);
  for (const Coord c : torus.all_coords()) {
    net.set_behavior(c, std::make_unique<BvTwoHopBehavior>(
                            ProtocolParams{1, {0, 0}}, torus, 2,
                            Metric::kLInf));
  }
  const Coord self{10, 10};
  NodeContext ctx(net, self);
  auto* b = dynamic_cast<BvTwoHopBehavior*>(net.behavior(self));
  EXPECT_EQ(b->determinations(), 0);
  b->on_receive(ctx, {{9, 9}, make_committed({9, 9}, 1)});
  EXPECT_EQ(b->determinations(), 1);
  // Duplicate and contradiction are both no-ops.
  b->on_receive(ctx, {{9, 9}, make_committed({9, 9}, 1)});
  b->on_receive(ctx, {{9, 9}, make_committed({9, 9}, 0)});
  EXPECT_EQ(b->determinations(), 1);
}

TEST(BvTwoHop, BehaviorUnitIndirectDeterminationNeedsTPlusOneReporters) {
  const Torus torus(20, 20);
  const std::int64_t t = 2;
  RadioNetwork net(torus, 2, Metric::kLInf, 1);
  for (const Coord c : torus.all_coords()) {
    net.set_behavior(c, std::make_unique<BvTwoHopBehavior>(
                            ProtocolParams{t, {0, 0}}, torus, 2,
                            Metric::kLInf));
  }
  const Coord self{10, 10};
  const Coord origin{13, 10};  // 3 away: not a direct neighbor (r=2)
  NodeContext ctx(net, self);
  auto* b = dynamic_cast<BvTwoHopBehavior*>(net.behavior(self));
  // Reporters adjacent to both the origin and us, clustered so that one
  // neighborhood (e.g. centered (12,10)) contains origin and all reporters.
  const Coord reporters[] = {{11, 10}, {11, 11}, {12, 9}};
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(b->determinations(), 0) << "after " << i << " reporters";
    b->on_receive(ctx, {reporters[i],
                        make_heard({reporters[i]}, origin, 1)});
  }
  EXPECT_EQ(b->determinations(), 1);  // t+1 = 3 disjoint chains in one nbd
}

TEST(BvTwoHop, BehaviorUnitRejectsMalformedHeard) {
  const Torus torus(20, 20);
  RadioNetwork net(torus, 2, Metric::kLInf, 1);
  for (const Coord c : torus.all_coords()) {
    net.set_behavior(c, std::make_unique<BvTwoHopBehavior>(
                            ProtocolParams{0, {0, 0}}, torus, 2,
                            Metric::kLInf));
  }
  const Coord self{10, 10};
  NodeContext ctx(net, self);
  auto* b = dynamic_cast<BvTwoHopBehavior*>(net.behavior(self));
  // Relayer field does not match the transmitter: spoofed, dropped.
  b->on_receive(ctx, {{9, 9}, make_heard({{8, 8}}, {13, 10}, 1)});
  EXPECT_EQ(b->determinations(), 0);
  // Reporter claims to have heard a node 4 away (impossible with r=2).
  b->on_receive(ctx, {{9, 9}, make_heard({{9, 9}}, {13, 10}, 1)});
  EXPECT_EQ(b->determinations(), 0);
  // Origin == reporter is nonsense.
  b->on_receive(ctx, {{9, 9}, make_heard({{9, 9}}, {9, 9}, 1)});
  EXPECT_EQ(b->determinations(), 0);
  // Two-relayer chains are not part of the two-hop protocol.
  b->on_receive(ctx, {{9, 9}, make_heard({{11, 10}, {9, 9}}, {12, 10}, 1)});
  EXPECT_EQ(b->determinations(), 0);
}

TEST(BvTwoHop, BehaviorUnitSourceNeighborCommitsDirectly) {
  const Torus torus(20, 20);
  RadioNetwork net(torus, 2, Metric::kLInf, 1);
  for (const Coord c : torus.all_coords()) {
    net.set_behavior(c, std::make_unique<BvTwoHopBehavior>(
                            ProtocolParams{4, {0, 0}}, torus, 2,
                            Metric::kLInf));
  }
  const Coord self{1, 1};
  NodeContext ctx(net, self);
  auto* b = dynamic_cast<BvTwoHopBehavior*>(net.behavior(self));
  b->on_receive(ctx, {{0, 0}, make_committed({0, 0}, 0)});
  EXPECT_EQ(b->committed_value(), std::optional<std::uint8_t>(0));
}

}  // namespace
}  // namespace rbcast
