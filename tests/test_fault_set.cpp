#include "radiobcast/fault/fault_set.h"

#include <gtest/gtest.h>

namespace rbcast {
namespace {

TEST(FaultSet, AddRemoveContains) {
  const Torus torus(10, 10);
  FaultSet f;
  EXPECT_TRUE(f.empty());
  EXPECT_TRUE(f.add(torus, {3, 4}));
  EXPECT_FALSE(f.add(torus, {3, 4}));
  EXPECT_TRUE(f.contains({3, 4}));
  EXPECT_EQ(f.size(), 1u);
  EXPECT_TRUE(f.remove(torus, {3, 4}));
  EXPECT_FALSE(f.remove(torus, {3, 4}));
  EXPECT_TRUE(f.empty());
}

TEST(FaultSet, CanonicalizesOnInsert) {
  const Torus torus(10, 10);
  FaultSet f;
  f.add(torus, {-1, 12});
  EXPECT_TRUE(f.contains({9, 2}));
  EXPECT_FALSE(f.add(torus, {9, 2}));  // same node
}

TEST(FaultSet, ConstructorDeduplicates) {
  const Torus torus(8, 8);
  FaultSet f(torus, {{0, 0}, {8, 8}, {1, 1}});
  EXPECT_EQ(f.size(), 2u);
}

TEST(FaultSet, SortedOrder) {
  const Torus torus(10, 10);
  FaultSet f(torus, {{5, 5}, {0, 1}, {0, 0}});
  const auto sorted = f.sorted();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0], (Coord{0, 0}));
  EXPECT_EQ(sorted[1], (Coord{0, 1}));
  EXPECT_EQ(sorted[2], (Coord{5, 5}));
}

TEST(LocalBound, EmptySetIsZero) {
  const Torus torus(12, 12);
  EXPECT_EQ(max_closed_nbd_faults(torus, FaultSet{}, 2, Metric::kLInf), 0);
  EXPECT_TRUE(satisfies_local_bound(torus, FaultSet{}, 2, Metric::kLInf, 0));
}

TEST(LocalBound, SingleFaultCountsInItsOwnClosedNeighborhood) {
  const Torus torus(12, 12);
  FaultSet f(torus, {{5, 5}});
  // Worst center: any node within r of the fault, or the fault itself.
  EXPECT_EQ(max_closed_nbd_faults(torus, f, 2, Metric::kLInf), 1);
  EXPECT_TRUE(satisfies_local_bound(torus, f, 2, Metric::kLInf, 1));
  EXPECT_FALSE(satisfies_local_bound(torus, f, 2, Metric::kLInf, 0));
}

TEST(LocalBound, ClusterCountsFully) {
  const Torus torus(14, 14);
  // A 2x2 block of faults, r=1 (L∞): center adjacent to all four sees 4;
  // each faulty node's own closed neighborhood also holds all 4.
  FaultSet f(torus, {{5, 5}, {6, 5}, {5, 6}, {6, 6}});
  EXPECT_EQ(max_closed_nbd_faults(torus, f, 1, Metric::kLInf), 4);
}

TEST(LocalBound, ClosedNeighborhoodSemantics) {
  // Paper: a faulty node may have up to t-1 faulty neighbors. Two adjacent
  // faults mean some closed neighborhood holds 2 — so t=1 must be violated.
  const Torus torus(12, 12);
  FaultSet f(torus, {{3, 3}, {4, 3}});
  EXPECT_FALSE(satisfies_local_bound(torus, f, 1, Metric::kLInf, 1));
  EXPECT_TRUE(satisfies_local_bound(torus, f, 1, Metric::kLInf, 2));
}

TEST(LocalBound, FarApartFaultsDoNotAccumulate) {
  const Torus torus(20, 20);
  // Distance > 2r apart: no closed neighborhood holds both.
  FaultSet f(torus, {{0, 0}, {10, 10}});
  EXPECT_EQ(max_closed_nbd_faults(torus, f, 2, Metric::kLInf), 1);
}

TEST(LocalBound, ExactlyTwoRApartAccumulates) {
  const Torus torus(20, 20);
  // Distance exactly 2r: the midpoint's neighborhood holds both.
  FaultSet f(torus, {{0, 0}, {4, 0}});
  EXPECT_EQ(max_closed_nbd_faults(torus, f, 2, Metric::kLInf), 2);
}

TEST(LocalBound, L2MetricRespectsCircles) {
  const Torus torus(20, 20);
  // (0,0) and (3,4) are exactly 5 apart; with r=5 some closed nbd holds both
  // (e.g. centered at either one); with r=2 none does.
  FaultSet f(torus, {{0, 0}, {3, 4}});
  EXPECT_EQ(max_closed_nbd_faults(torus, f, 5, Metric::kL2), 2);
  EXPECT_EQ(max_closed_nbd_faults(torus, f, 2, Metric::kL2), 1);
}

TEST(LocalBound, WrapsAroundTheSeam) {
  const Torus torus(12, 12);
  FaultSet f(torus, {{0, 0}, {11, 0}});  // adjacent across the seam
  EXPECT_EQ(max_closed_nbd_faults(torus, f, 1, Metric::kLInf), 2);
}

TEST(LocalBound, FullStripWorstCase) {
  // Theorem 4 sanity: a full vertical strip of width r has exactly r(2r+1)
  // faults in the worst closed neighborhood.
  const std::int32_t r = 2;
  const Torus torus(20, 20);
  FaultSet f;
  for (std::int32_t x = 8; x < 8 + r; ++x) {
    for (std::int32_t y = 0; y < 20; ++y) f.add(torus, {x, y});
  }
  EXPECT_EQ(max_closed_nbd_faults(torus, f, r, Metric::kLInf),
            static_cast<std::int64_t>(r) * (2 * r + 1));
}

}  // namespace
}  // namespace rbcast
