#include "radiobcast/core/analysis.h"

#include <gtest/gtest.h>

namespace rbcast {
namespace {

TEST(Analysis, NeighborhoodSizeLinf) {
  EXPECT_EQ(linf_nbd_size(1), 8);
  EXPECT_EQ(linf_nbd_size(2), 24);
  EXPECT_EQ(linf_nbd_size(3), 48);
}

TEST(Analysis, RTimes2RPlus1) {
  EXPECT_EQ(r_2r_plus_1(1), 3);
  EXPECT_EQ(r_2r_plus_1(2), 10);
  EXPECT_EQ(r_2r_plus_1(3), 21);
  EXPECT_EQ(r_2r_plus_1(10), 210);
}

TEST(Analysis, ByzantineThresholdIsExact) {
  // Achievable max and impossible min are adjacent for every r: the paper
  // establishes an exact threshold.
  for (std::int32_t r = 1; r <= 20; ++r) {
    EXPECT_EQ(byz_linf_achievable_max(r) + 1, byz_linf_impossible_min(r));
  }
}

TEST(Analysis, ByzantineKnownValues) {
  // r=1: n=3, t < 1.5 -> t_max = 1, impossible at 2.
  EXPECT_EQ(byz_linf_achievable_max(1), 1);
  EXPECT_EQ(byz_linf_impossible_min(1), 2);
  // r=2: n=10, t < 5 -> t_max = 4, impossible at 5.
  EXPECT_EQ(byz_linf_achievable_max(2), 4);
  EXPECT_EQ(byz_linf_impossible_min(2), 5);
  // r=3: n=21, t < 10.5 -> t_max = 10, impossible at 11.
  EXPECT_EQ(byz_linf_achievable_max(3), 10);
  EXPECT_EQ(byz_linf_impossible_min(3), 11);
}

TEST(Analysis, ByzantineIsAboutAQuarterOfTheNeighborhood) {
  // "slightly less than one-fourth fraction of nodes in any neighborhood":
  // the fraction approaches 1/4 from below as r grows.
  double prev = 0.0;
  for (std::int32_t r = 2; r <= 40; ++r) {
    const double frac = static_cast<double>(byz_linf_achievable_max(r)) /
                        static_cast<double>(linf_nbd_size(r));
    EXPECT_LT(frac, 0.25);
    EXPECT_GE(frac, prev);  // monotone approach
    prev = frac;
  }
  EXPECT_GT(prev, 0.24);  // close to 1/4 by r = 40
}

TEST(Analysis, CrashThresholdKnownValues) {
  EXPECT_EQ(crash_linf_achievable_max(2), 9);
  EXPECT_EQ(crash_linf_impossible_min(2), 10);
  for (std::int32_t r = 1; r <= 20; ++r) {
    EXPECT_EQ(crash_linf_achievable_max(r) + 1, crash_linf_impossible_min(r));
    EXPECT_EQ(crash_linf_impossible_min(r), r_2r_plus_1(r));
  }
}

TEST(Analysis, CrashIsAboutHalfTheNeighborhood) {
  // "slightly less than half the nodes in any given neighborhood": the
  // fraction approaches 1/2 from below as r grows.
  double prev = 0.0;
  for (std::int32_t r = 2; r <= 40; ++r) {
    const double frac = static_cast<double>(crash_linf_achievable_max(r)) /
                        static_cast<double>(linf_nbd_size(r));
    EXPECT_LT(frac, 0.5);
    EXPECT_GE(frac, prev);
    prev = frac;
  }
  EXPECT_GT(prev, 0.49);
}

TEST(Analysis, CpaBoundKnownValues) {
  EXPECT_EQ(cpa_linf_achievable_max(2), 2);   // floor(8/3)
  EXPECT_EQ(cpa_linf_achievable_max(3), 6);   // floor(18/3)
  EXPECT_EQ(cpa_linf_achievable_max(6), 24);  // floor(72/3)
}

TEST(Analysis, TheoremSixDominatesKooForLargeR) {
  // 2r^2/3 > (r(r+sqrt(r/2)+1))/2 for all sufficiently large r; the paper
  // says "asymptotically tighter". Find the crossover and check monotone
  // dominance beyond it.
  bool dominated_somewhere = false;
  for (std::int32_t r = 1; r <= 100; ++r) {
    if (static_cast<double>(cpa_linf_achievable_max(r)) >
        koo_cpa_linf_bound(r)) {
      dominated_somewhere = true;
    }
  }
  EXPECT_TRUE(dominated_somewhere);
  // Beyond r = 60 dominance must be strict and stay.
  for (std::int32_t r = 60; r <= 120; r += 10) {
    EXPECT_GT(static_cast<double>(cpa_linf_achievable_max(r)),
              koo_cpa_linf_bound(r))
        << "r=" << r;
  }
}

TEST(Analysis, CpaBoundBelowBvThreshold) {
  // CPA tolerates strictly less than the indirect-report protocol for all
  // r >= 2 (the CPA ⊊ RPA separation).
  for (std::int32_t r = 2; r <= 30; ++r) {
    EXPECT_LT(cpa_linf_achievable_max(r), byz_linf_achievable_max(r));
  }
}

TEST(Analysis, L2ApproxOrdering) {
  for (std::int32_t r = 2; r <= 20; ++r) {
    EXPECT_LT(l2_byz_achievable_approx(r), l2_byz_impossible_approx(r));
    EXPECT_LT(l2_crash_achievable_approx(r), l2_crash_impossible_approx(r));
    EXPECT_LT(l2_byz_impossible_approx(r), l2_crash_achievable_approx(r));
    // The crash estimate is exactly twice the Byzantine one (Section VIII).
    EXPECT_DOUBLE_EQ(l2_crash_achievable_approx(r),
                     2.0 * l2_byz_achievable_approx(r));
    EXPECT_DOUBLE_EQ(l2_crash_impossible_approx(r),
                     2.0 * l2_byz_impossible_approx(r));
  }
}

TEST(Analysis, KooL2BoundBelowLinfBound) {
  for (std::int32_t r = 2; r <= 20; ++r) {
    EXPECT_LT(koo_cpa_l2_bound(r), koo_cpa_linf_bound(r));
  }
}

// ---------------------------------------------------------------------------
// Theorem 6 internal counting lemmas (Figs 14-19)
// ---------------------------------------------------------------------------

TEST(Theorem6, Stage1CountDominatesTwoTPlusOne) {
  // "(r + 1 + r/2) r > 3/2 r^2 + r > 4/3 r^2 + 1 ... for all r > 1".
  for (std::int32_t r = 2; r <= 200; ++r) {
    EXPECT_TRUE(cpa_count_sufficient(cpa_stage1_committed_neighbors(r), r))
        << "r=" << r;
  }
}

TEST(Theorem6, RowConditionHoldsThroughGuaranteedStack) {
  // "Given that row (i-1) has committed, row i can commit if [the count]
  // >= 4/3 r^2 + 1. This condition holds for all i <= floor(r/sqrt(6)),
  // when r >= 2."
  for (std::int32_t r = 2; r <= 100; ++r) {
    const std::int32_t depth = cpa_guaranteed_stack_rows(r);
    for (std::int32_t i = 1; i <= depth; ++i) {
      EXPECT_TRUE(cpa_count_sufficient(cpa_row_committed_neighbors(r, i), r))
          << "r=" << r << " i=" << i;
    }
  }
}

TEST(Theorem6, GuaranteedStackReachesRThirds) {
  // "the stack can grow to at least r/3 rows, since sqrt(6) < 3".
  for (std::int32_t r = 3; r <= 200; ++r) {
    EXPECT_GE(cpa_guaranteed_stack_rows(r), r / 3 - 1) << "r=" << r;
    // And exactly floor(r/sqrt(6)):
    const auto k = cpa_guaranteed_stack_rows(r);
    EXPECT_LE(6 * static_cast<std::int64_t>(k) * k,
              static_cast<std::int64_t>(r) * r);
    EXPECT_GT(6 * static_cast<std::int64_t>(k + 1) * (k + 1),
              static_cast<std::int64_t>(r) * r);
  }
}

TEST(Theorem6, Stage2CountDominates) {
  // "(r + 1 + ceil(r/2)) r + 2 ceil(r/2) floor(r/3) >= 11 r^2 / 6 >= 4r^2/3
  // + 1 (for all r >= 2)".
  for (std::int32_t r = 2; r <= 200; ++r) {
    EXPECT_TRUE(cpa_count_sufficient(cpa_stage2_committed_neighbors(r), r))
        << "r=" << r;
  }
}

TEST(Theorem6, KnownSmallValues) {
  // r=2: stage1 = (2+1+1)*2 = 8; 3*8 = 24 >= 4*4+3 = 19.
  EXPECT_EQ(cpa_stage1_committed_neighbors(2), 8);
  EXPECT_TRUE(cpa_count_sufficient(8, 2));
  EXPECT_FALSE(cpa_count_sufficient(6, 2));  // 18 < 19
  // r=6: floor(6/sqrt(6)) = floor(2.449) = 2.
  EXPECT_EQ(cpa_guaranteed_stack_rows(6), 2);
  EXPECT_EQ(cpa_guaranteed_stack_rows(10), 4);  // 10/2.449 = 4.08
}

}  // namespace
}  // namespace rbcast
