#include "radiobcast/protocols/common.h"

#include <gtest/gtest.h>

namespace rbcast {
namespace {

TEST(OriginValueKey, DistinguishesOriginsAndValues) {
  EXPECT_NE(origin_value_key({1, 2}, 0), origin_value_key({1, 2}, 1));
  EXPECT_NE(origin_value_key({1, 2}, 0), origin_value_key({2, 1}, 0));
  EXPECT_EQ(origin_value_key({3, 4}, 1), origin_value_key({3, 4}, 1));
}

TEST(CommitCounter, FiresAtExactlyTPlusOneInOneNeighborhood) {
  const Torus torus(20, 20);
  const std::int64_t t = 2;
  NeighborhoodCommitCounter counter(torus, 2, Metric::kLInf, t);
  // Three committers clustered so one center (e.g. (10,10)) covers them all.
  EXPECT_FALSE(counter.record({9, 9}, 1).has_value());
  EXPECT_FALSE(counter.record({11, 11}, 1).has_value());
  const auto fired = counter.record({9, 11}, 1);
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(*fired, 1);
}

TEST(CommitCounter, SpreadOutCommittersDoNotFire) {
  const Torus torus(40, 40);
  NeighborhoodCommitCounter counter(torus, 2, Metric::kLInf, 2);
  // Pairwise distances > 2r: no single neighborhood holds even two of them.
  EXPECT_FALSE(counter.record({5, 5}, 1).has_value());
  EXPECT_FALSE(counter.record({15, 15}, 1).has_value());
  EXPECT_FALSE(counter.record({25, 25}, 1).has_value());
  EXPECT_FALSE(counter.record({35, 5}, 1).has_value());
}

TEST(CommitCounter, ValuesCountedSeparately) {
  const Torus torus(20, 20);
  NeighborhoodCommitCounter counter(torus, 2, Metric::kLInf, 1);
  EXPECT_FALSE(counter.record({9, 9}, 1).has_value());
  // A nearby '0' determination does not combine with the '1' above, and a
  // far-away '0' shares no neighborhood with it.
  EXPECT_FALSE(counter.record({10, 9}, 0).has_value());
  EXPECT_FALSE(counter.record({2, 2}, 0).has_value());
  // Second '1' committer in the same neighborhood fires for value 1.
  const auto fired = counter.record({10, 10}, 1);
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(*fired, 1);
}

TEST(CommitCounter, RecordIsIdempotent) {
  const Torus torus(20, 20);
  NeighborhoodCommitCounter counter(torus, 1, Metric::kLInf, 1);
  EXPECT_FALSE(counter.record({5, 5}, 1).has_value());
  // Recording the same determination again adds nothing.
  EXPECT_FALSE(counter.record({5, 5}, 1).has_value());
  EXPECT_FALSE(counter.record({5, 5}, 1).has_value());
  EXPECT_EQ(counter.determined_count(), 1);
  const auto fired = counter.record({5, 6}, 1);
  EXPECT_TRUE(fired.has_value());
}

TEST(CommitCounter, IsDeterminedTracksPairs) {
  const Torus torus(20, 20);
  NeighborhoodCommitCounter counter(torus, 1, Metric::kLInf, 3);
  EXPECT_FALSE(counter.is_determined({4, 4}, 1));
  counter.record({4, 4}, 1);
  EXPECT_TRUE(counter.is_determined({4, 4}, 1));
  EXPECT_FALSE(counter.is_determined({4, 4}, 0));
  // Canonicalization: the same node addressed through a wrap.
  EXPECT_TRUE(counter.is_determined({24, 24}, 1));
}

TEST(CommitCounter, TZeroFiresOnFirstDetermination) {
  const Torus torus(20, 20);
  NeighborhoodCommitCounter counter(torus, 2, Metric::kLInf, 0);
  const auto fired = counter.record({5, 5}, 0);
  ASSERT_TRUE(fired.has_value());
  EXPECT_EQ(*fired, 0);
}

TEST(CommitCounter, WrapsAcrossSeam) {
  const Torus torus(20, 20);
  NeighborhoodCommitCounter counter(torus, 1, Metric::kLInf, 1);
  EXPECT_FALSE(counter.record({0, 0}, 1).has_value());
  // (19,19) is diagonal-adjacent to (0,0) across the seam; both lie in
  // nbd((0,19)) (and nbd((19,0))).
  EXPECT_TRUE(counter.record({19, 19}, 1).has_value());
}

TEST(CommitCounter, L2MetricGeometry) {
  const Torus torus(20, 20);
  NeighborhoodCommitCounter counter(torus, 1, Metric::kL2, 1);
  EXPECT_FALSE(counter.record({10, 10}, 1).has_value());
  // (10,10) and (11,11) are not L2-neighbors at r=1, but the centers (10,11)
  // and (11,10) are within distance 1 of both, so a shared neighborhood
  // exists and the rule fires.
  EXPECT_TRUE(counter.record({11, 11}, 1).has_value());
  // But two nodes 3 apart never share one.
  NeighborhoodCommitCounter far_counter(torus, 1, Metric::kL2, 1);
  EXPECT_FALSE(far_counter.record({5, 5}, 1).has_value());
  EXPECT_FALSE(far_counter.record({8, 5}, 1).has_value());
}

}  // namespace
}  // namespace rbcast
