#include "radiobcast/grid/metric.h"

#include <gtest/gtest.h>

namespace rbcast {
namespace {

TEST(Metric, LinfNorm) {
  EXPECT_EQ(linf_norm({0, 0}), 0);
  EXPECT_EQ(linf_norm({3, -4}), 4);
  EXPECT_EQ(linf_norm({-5, 2}), 5);
  EXPECT_EQ(linf_norm({-7, -7}), 7);
}

TEST(Metric, L2NormSq) {
  EXPECT_EQ(l2_norm_sq({0, 0}), 0);
  EXPECT_EQ(l2_norm_sq({3, 4}), 25);
  EXPECT_EQ(l2_norm_sq({-3, 4}), 25);
  EXPECT_EQ(l2_norm_sq({1, 1}), 2);
}

TEST(Metric, WithinRadiusLinf) {
  EXPECT_TRUE(within_radius({2, 2}, 2, Metric::kLInf));
  EXPECT_TRUE(within_radius({-2, 1}, 2, Metric::kLInf));
  EXPECT_FALSE(within_radius({3, 0}, 2, Metric::kLInf));
  EXPECT_TRUE(within_radius({0, 0}, 0, Metric::kLInf));
}

TEST(Metric, WithinRadiusL2BoundaryExact) {
  // (3,4) is at distance exactly 5 — within, per "within distance r".
  EXPECT_TRUE(within_radius({3, 4}, 5, Metric::kL2));
  EXPECT_FALSE(within_radius({4, 4}, 5, Metric::kL2));
  // (2,2) has |.|^2 = 8 > 4 = 2^2.
  EXPECT_FALSE(within_radius({2, 2}, 2, Metric::kL2));
  EXPECT_TRUE(within_radius({2, 2}, 3, Metric::kL2));
}

TEST(Metric, L2TighterThanLinf) {
  // Every L2-neighbor is an L∞-neighbor, never the other way.
  for (std::int32_t r = 1; r <= 6; ++r) {
    for (std::int32_t dx = -r; dx <= r; ++dx) {
      for (std::int32_t dy = -r; dy <= r; ++dy) {
        if (within_radius({dx, dy}, r, Metric::kL2)) {
          EXPECT_TRUE(within_radius({dx, dy}, r, Metric::kLInf));
        }
      }
    }
  }
}

TEST(Metric, NeighborhoodSizeLinfClosedForm) {
  for (std::int32_t r = 0; r <= 10; ++r) {
    const std::int64_t side = 2 * r + 1;
    EXPECT_EQ(neighborhood_size(r, Metric::kLInf), side * side - 1) << r;
  }
}

TEST(Metric, NeighborhoodSizeL2KnownValues) {
  // Gauss circle lattice counts (including center): r=1 -> 5, r=2 -> 13,
  // r=3 -> 29, r=4 -> 49, r=5 -> 81. Minus 1 for the center.
  EXPECT_EQ(neighborhood_size(1, Metric::kL2), 4);
  EXPECT_EQ(neighborhood_size(2, Metric::kL2), 12);
  EXPECT_EQ(neighborhood_size(3, Metric::kL2), 28);
  EXPECT_EQ(neighborhood_size(4, Metric::kL2), 48);
  EXPECT_EQ(neighborhood_size(5, Metric::kL2), 80);
}

TEST(Metric, NeighborhoodSizeL2ApproachesPiRSquared) {
  // Section VIII leans on |nbd| ~ pi r^2 ± O(r); check the relative error
  // shrinks.
  for (std::int32_t r = 10; r <= 40; r += 10) {
    const double expected = 3.14159265358979 * r * r;
    const double actual =
        static_cast<double>(neighborhood_size(r, Metric::kL2));
    EXPECT_NEAR(actual / expected, 1.0, 10.0 / r) << r;
  }
}

TEST(Metric, NegativeRadiusEmpty) {
  EXPECT_EQ(neighborhood_size(-1, Metric::kLInf), 0);
  EXPECT_EQ(neighborhood_size(-1, Metric::kL2), 0);
}

TEST(Metric, ToStringNames) {
  EXPECT_STREQ(to_string(Metric::kLInf), "Linf");
  EXPECT_STREQ(to_string(Metric::kL2), "L2");
}

TEST(Metric, FromStringRoundTrip) {
  for (const Metric m : {Metric::kLInf, Metric::kL2}) {
    const auto parsed = metric_from_string(to_string(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_EQ(metric_from_string("linf"), Metric::kLInf);
  EXPECT_EQ(metric_from_string("l2"), Metric::kL2);
  EXPECT_FALSE(metric_from_string("manhattan").has_value());
}

TEST(Coord, ArithmeticAndComparison) {
  const Coord a{2, 3};
  const Offset o{-1, 4};
  EXPECT_EQ(a + o, (Coord{1, 7}));
  EXPECT_EQ(a - o, (Coord{3, -1}));
  EXPECT_EQ((Coord{5, 5}) - (Coord{2, 3}), (Offset{3, 2}));
  EXPECT_EQ(-o, (Offset{1, -4}));
  EXPECT_EQ((o + Offset{1, -4}), (Offset{0, 0}));
  EXPECT_LT((Coord{1, 5}), (Coord{2, 0}));
}

TEST(Coord, ToString) {
  EXPECT_EQ(to_string(Coord{-3, 7}), "(-3,7)");
  EXPECT_EQ(to_string(Offset{1, -2}), "<1,-2>");
}

TEST(Coord, HashDistinguishesNeighbors) {
  const std::hash<Coord> h;
  EXPECT_NE(h({0, 0}), h({0, 1}));
  EXPECT_NE(h({0, 0}), h({1, 0}));
  EXPECT_NE(h({2, 3}), h({3, 2}));
  EXPECT_EQ(h({5, -5}), h({5, -5}));
}

}  // namespace
}  // namespace rbcast
