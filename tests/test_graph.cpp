#include "radiobcast/graph/graph.h"

#include <gtest/gtest.h>

#include "radiobcast/grid/torus.h"

namespace rbcast {
namespace {

TEST(RadioGraph, EdgesAreUndirectedAndIdempotent) {
  RadioGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.adjacent(0, 1));
  EXPECT_TRUE(g.adjacent(1, 0));
  EXPECT_FALSE(g.adjacent(0, 2));
  EXPECT_EQ(g.edge_count(), 2);
  EXPECT_EQ(g.neighbors(1).size(), 2u);
}

TEST(RadioGraph, RejectsBadEdges) {
  RadioGraph g(3);
  EXPECT_THROW(g.add_edge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(g.add_edge(-1, 1), std::invalid_argument);
  EXPECT_THROW(RadioGraph(0), std::invalid_argument);
}

TEST(RadioGraph, NeighborsSorted) {
  RadioGraph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto& n = g.neighbors(2);
  EXPECT_EQ(n, (std::vector<NodeId>{0, 3, 4}));
}

TEST(RadioGraph, Connectivity) {
  RadioGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_FALSE(g.connected());
  g.add_edge(2, 3);
  EXPECT_TRUE(g.connected());
}

TEST(GraphFaults, ClosedNeighborhoodCounts) {
  RadioGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  GraphFaultSet faults(4, false);
  faults[1] = true;
  faults[3] = true;
  EXPECT_EQ(closed_nbd_faults(g, faults, 0), 1);  // neighbor 1
  EXPECT_EQ(closed_nbd_faults(g, faults, 1), 1);  // itself
  EXPECT_EQ(closed_nbd_faults(g, faults, 3), 1);  // isolated faulty node
  EXPECT_TRUE(satisfies_local_bound(g, faults, 1));
  faults[2] = true;
  EXPECT_EQ(closed_nbd_faults(g, faults, 1), 2);
  EXPECT_FALSE(satisfies_local_bound(g, faults, 1));
}

TEST(GraphFaults, EnumerateLegalPlacementsPath) {
  // Path 0-1-2, t=1, protecting node 0: legal sets are {}, {1}, {2} — not
  // {1,2} (node 1's closed nbd would hold 2).
  RadioGraph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto placements = enumerate_legal_placements(g, 1, 0);
  EXPECT_EQ(placements.size(), 3u);
  for (const auto& p : placements) {
    EXPECT_FALSE(p[0]);
    EXPECT_TRUE(satisfies_local_bound(g, p, 1));
  }
}

TEST(GraphFaults, EnumerateRefusesLargeGraphs) {
  RadioGraph g(30);
  EXPECT_THROW(enumerate_legal_placements(g, 1, 0), std::invalid_argument);
}

TEST(GraphFaults, MaxLegalFaultsWithin) {
  // Star: center 0, leaves 1..4. t=1: any single leaf is legal; two leaves
  // overload the center's closed neighborhood.
  RadioGraph g(5);
  for (NodeId leaf = 1; leaf <= 4; ++leaf) g.add_edge(0, leaf);
  EXPECT_EQ(max_legal_faults_within(g, {1, 2, 3, 4}, 1), 1);
  EXPECT_EQ(max_legal_faults_within(g, {1}, 1), 1);
  EXPECT_EQ(max_legal_faults_within(g, {}, 1), 0);
  EXPECT_EQ(max_legal_faults_within(g, {1, 2, 3, 4}, 3), 3);
  EXPECT_EQ(max_legal_faults_within(g, {1, 2, 3, 4}, 10), 4);
}

TEST(GraphFaults, MaxLegalFaultsDisconnectedSubset) {
  // Two disjoint edges: 0-1, 2-3. t=1: one fault per edge component.
  RadioGraph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_EQ(max_legal_faults_within(g, {0, 1, 2, 3}, 1), 2);
}

TEST(TorusGraph, MatchesNeighborhoodSizes) {
  const RadioGraph g = make_torus_graph(10, 10, 2, /*l2_metric=*/false);
  EXPECT_EQ(g.node_count(), 100);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(g.neighbors(v).size(), 24u);
  }
  const RadioGraph g2 = make_torus_graph(10, 10, 2, /*l2_metric=*/true);
  for (NodeId v = 0; v < g2.node_count(); ++v) {
    EXPECT_EQ(g2.neighbors(v).size(), 12u);
  }
}

TEST(TorusGraph, AdjacencyMatchesTorusDistance) {
  const RadioGraph g = make_torus_graph(12, 12, 2, false);
  const Torus torus(12, 12);
  EXPECT_TRUE(g.adjacent(torus.index({0, 0}), torus.index({10, 10})));
  EXPECT_FALSE(g.adjacent(torus.index({0, 0}), torus.index({3, 0})));
}

TEST(SeparationGraph, Structure) {
  const RadioGraph g = make_separation_graph();
  EXPECT_EQ(g.node_count(), 14);
  EXPECT_TRUE(g.connected());
  // s ~ a1, a2, a3 only (2t+1 = 3 disjoint outward routes).
  EXPECT_EQ(g.neighbors(kSeparationSource), (std::vector<NodeId>{1, 2, 3}));
  // u ~ all nine middlemen.
  EXPECT_EQ(g.neighbors(13),
            (std::vector<NodeId>{4, 5, 6, 7, 8, 9, 10, 11, 12}));
  // The a's are not adjacent to each other (else CPA would trivially work).
  EXPECT_FALSE(g.adjacent(1, 2));
  EXPECT_FALSE(g.adjacent(1, 3));
  EXPECT_FALSE(g.adjacent(2, 3));
  // Every middleman: its a, u, and two cross partners per other branch.
  for (NodeId w = 4; w <= 12; ++w) {
    EXPECT_EQ(g.neighbors(w).size(), 6u) << separation_node_name(w);
  }
}

TEST(SeparationGraph, LegalPlacementsAtTOneAreExactlySingletonsAndEmpty) {
  // Every pair of nodes shares a closed neighborhood in this graph, so the
  // locally bounded adversary with t=1 can place at most one fault.
  const RadioGraph g = make_separation_graph();
  const auto placements =
      enumerate_legal_placements(g, kSeparationT, kSeparationSource);
  EXPECT_EQ(placements.size(), 14u);  // empty + 13 singletons
}

TEST(SeparationGraph, NodeNames) {
  EXPECT_EQ(separation_node_name(0), "s");
  EXPECT_EQ(separation_node_name(1), "a1");
  EXPECT_EQ(separation_node_name(4), "w11");
  EXPECT_EQ(separation_node_name(12), "w33");
  EXPECT_EQ(separation_node_name(13), "u");
  EXPECT_EQ(separation_node_name(42), "n42");
}

}  // namespace
}  // namespace rbcast
