#include "radiobcast/paths/disjoint.h"

#include <gtest/gtest.h>

#include "radiobcast/core/analysis.h"

namespace rbcast {
namespace {

TEST(GridPath, IsRadioPath) {
  EXPECT_TRUE(is_radio_path(GridPath{{{0, 0}, {1, 1}}}, 1, Metric::kLInf));
  EXPECT_FALSE(is_radio_path(GridPath{{{0, 0}, {1, 1}}}, 1, Metric::kL2));
  EXPECT_TRUE(is_radio_path(GridPath{{{0, 0}, {2, 0}, {4, 0}}}, 2,
                            Metric::kLInf));
  EXPECT_FALSE(is_radio_path(GridPath{{{0, 0}, {3, 0}}}, 2, Metric::kLInf));
  EXPECT_FALSE(is_radio_path(GridPath{{{0, 0}}}, 2, Metric::kLInf));
}

TEST(GridPath, Intermediates) {
  EXPECT_EQ((GridPath{{{0, 0}, {1, 0}}}).intermediates(), 0u);
  EXPECT_EQ((GridPath{{{0, 0}, {1, 0}, {2, 0}}}).intermediates(), 1u);
  EXPECT_EQ((GridPath{{}}).intermediates(), 0u);
}

TEST(Disjoint, AdjacentNodesManyPaths) {
  // origin and dest adjacent, both in nbd(center): flow includes the direct
  // path plus one per common neighbor with spare capacity... at minimum the
  // direct path exists.
  const auto set =
      max_disjoint_paths_in_nbd({0, 0}, {1, 0}, {0, 0}, 2, Metric::kLInf);
  EXPECT_TRUE(validate(set, 2, Metric::kLInf));
  EXPECT_GE(set.paths.size(), 1u);
}

TEST(Disjoint, ValidateCatchesSharedInteriors) {
  DisjointPathSet bad{{0, 0}, {4, 0}, {2, 0}, {}};
  bad.paths.push_back(GridPath{{{0, 0}, {2, 0}, {4, 0}}});
  bad.paths.push_back(GridPath{{{0, 0}, {2, 0}, {4, 0}}});
  EXPECT_FALSE(validate(bad, 2, Metric::kLInf));
}

TEST(Disjoint, ValidateCatchesOutOfNeighborhood) {
  DisjointPathSet bad{{0, 0}, {2, 0}, {0, 0}, {}};
  bad.paths.push_back(GridPath{{{0, 0}, {1, 2}, {2, 0}}});
  // (1,2) is within r=2 of center (0,0) in L∞ but not in L2 (1+4=5 > 4).
  EXPECT_TRUE(validate(bad, 2, Metric::kLInf));
  EXPECT_FALSE(validate(bad, 2, Metric::kL2));
}

TEST(Disjoint, ValidateCatchesWrongEndpoints) {
  DisjointPathSet bad{{0, 0}, {2, 0}, {1, 0}, {}};
  bad.paths.push_back(GridPath{{{0, 0}, {1, 0}}});  // ends at wrong dest
  EXPECT_FALSE(validate(bad, 2, Metric::kLInf));
}

TEST(Disjoint, EndpointsMustBeInNeighborhood) {
  EXPECT_THROW(
      max_disjoint_paths_in_nbd({0, 0}, {5, 0}, {0, 0}, 2, Metric::kLInf),
      std::invalid_argument);
}

TEST(Disjoint, SameOriginAndDestIsEmpty) {
  const auto set =
      max_disjoint_paths_in_nbd({0, 0}, {0, 0}, {0, 0}, 2, Metric::kLInf);
  EXPECT_TRUE(set.paths.empty());
}

TEST(Disjoint, WorstCaseDisplacementMatchesTheorem) {
  // The paper's key quantity: for the worst-case committer/decider pairs used
  // in Theorem 3 (L1 displacement exactly 2r), some single-neighborhood
  // family has at least r(2r+1) node-disjoint paths.
  for (std::int32_t r = 1; r <= 3; ++r) {
    // Canonical worst pair: N = (0,0), P = (-r, r) has |d|_1 = 2r.
    const auto best =
        best_disjoint_paths({0, 0}, {-r, r}, r, Metric::kLInf);
    ASSERT_TRUE(best.has_value());
    EXPECT_GE(static_cast<std::int64_t>(best->paths.size()), r_2r_plus_1(r))
        << "r=" << r;
    EXPECT_TRUE(validate(*best, r, Metric::kLInf));
  }
}

TEST(Disjoint, NoCommonNeighborhoodReturnsNullopt) {
  EXPECT_FALSE(
      best_disjoint_paths({0, 0}, {5, 0}, 1, Metric::kLInf).has_value());
}

TEST(Disjoint, CornerToCornerHasFewerPaths) {
  // Diagonal displacement (2r, 2r): a common neighborhood exists but supports
  // far fewer disjoint paths than r(2r+1) (the protocol never needs these).
  const std::int32_t r = 2;
  const auto best = best_disjoint_paths({0, 0}, {2 * r, 2 * r}, r,
                                        Metric::kLInf);
  ASSERT_TRUE(best.has_value());
  EXPECT_GT(best->paths.size(), 0u);
  EXPECT_LT(static_cast<std::int64_t>(best->paths.size()), r_2r_plus_1(r));
}

TEST(Disjoint, L2PathsValidate) {
  const auto best = best_disjoint_paths({0, 0}, {0, 3}, 3, Metric::kL2);
  ASSERT_TRUE(best.has_value());
  EXPECT_GE(best->paths.size(), 1u);
  EXPECT_TRUE(validate(*best, 3, Metric::kL2));
}

TEST(Shortcut, ReducesHopsUsingOwnNodes) {
  // A needlessly long path along a line: shortcut should jump r at a time.
  GridPath p{{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}}};
  const GridPath s = shortcut(p, 2, Metric::kLInf);
  ASSERT_EQ(s.nodes.size(), 3u);
  EXPECT_EQ(s.nodes[0], (Coord{0, 0}));
  EXPECT_EQ(s.nodes[1], (Coord{2, 0}));
  EXPECT_EQ(s.nodes[2], (Coord{4, 0}));
  EXPECT_TRUE(is_radio_path(s, 2, Metric::kLInf));
}

TEST(Shortcut, AlreadyMinimalUnchanged) {
  GridPath p{{{0, 0}, {2, 0}, {4, 0}}};
  const GridPath s = shortcut(p, 2, Metric::kLInf);
  EXPECT_EQ(s.nodes, p.nodes);
}

TEST(Shortcut, DirectNeighborsCollapse) {
  GridPath p{{{0, 0}, {1, 0}, {1, 1}, {2, 1}}};
  const GridPath s = shortcut(p, 2, Metric::kLInf);
  ASSERT_EQ(s.nodes.size(), 2u);
}

TEST(Disjoint, FlowPathsShortcutToFourHops) {
  // After shortcutting, every flow-found path for a covered displacement has
  // at most 3 intermediates — matching what the 4-hop protocol can carry.
  const std::int32_t r = 2;
  const auto best = best_disjoint_paths({0, 0}, {-r, r}, r, Metric::kLInf);
  ASSERT_TRUE(best.has_value());
  for (const GridPath& p : best->paths) {
    EXPECT_LE(shortcut(p, r, Metric::kLInf).intermediates(), 3u);
  }
}

}  // namespace
}  // namespace rbcast
