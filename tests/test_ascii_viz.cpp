#include "radiobcast/core/ascii_viz.h"

#include <gtest/gtest.h>

#include <sstream>

namespace rbcast {
namespace {

TEST(AsciiViz, RendersAllStates) {
  const Torus torus(3, 2);
  SimResult result;
  result.outcomes.assign(6, NodeOutcome::kUndecided);
  result.outcomes[static_cast<std::size_t>(torus.index({0, 0}))] =
      NodeOutcome::kSource;
  result.outcomes[static_cast<std::size_t>(torus.index({1, 0}))] =
      NodeOutcome::kFaulty;
  result.outcomes[static_cast<std::size_t>(torus.index({2, 0}))] =
      NodeOutcome::kCommitted1;
  result.outcomes[static_cast<std::size_t>(torus.index({0, 1}))] =
      NodeOutcome::kCommitted0;
  const std::string s = render_outcomes(torus, result, /*correct_value=*/1);
  // Top line is y=1: committed0 (wrong since correct=1), undecided, undecided.
  // Bottom line is y=0: source, faulty, committed1 (correct).
  EXPECT_EQ(s, "X..\nS#+\n");
}

TEST(AsciiViz, CorrectValueZeroFlipsMarks) {
  const Torus torus(2, 1);
  SimResult result;
  result.outcomes = {NodeOutcome::kCommitted0, NodeOutcome::kCommitted1};
  EXPECT_EQ(render_outcomes(torus, result, 0), "+X\n");
  EXPECT_EQ(render_outcomes(torus, result, 1), "X+\n");
}

TEST(AsciiViz, DimensionsMatchTorus) {
  const Torus torus(7, 4);
  SimResult result;
  result.outcomes.assign(28, NodeOutcome::kUndecided);
  const std::string s = render_outcomes(torus, result, 1);
  std::istringstream is(s);
  std::string line;
  int lines = 0;
  while (std::getline(is, line)) {
    EXPECT_EQ(line.size(), 7u);
    ++lines;
  }
  EXPECT_EQ(lines, 4);
}

}  // namespace
}  // namespace rbcast
