#include "radiobcast/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace rbcast {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 50; ++i) seen.insert(rng());
  EXPECT_GT(seen.size(), 45u);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(1234);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) counts[rng.below(kBuckets)] += 1;
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, RangeSinglePoint) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.range(7, 7), 7);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.unit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkDivergesFromParent) {
  Rng parent(99);
  Rng child = parent.fork();
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() != child()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, HashSeedsOrderSensitive) {
  EXPECT_NE(hash_seeds(1, 2), hash_seeds(2, 1));
  EXPECT_EQ(hash_seeds(1, 2), hash_seeds(1, 2));
}

TEST(Rng, SplitMixAdvancesState) {
  std::uint64_t x = 0;
  const auto a = splitmix64(x);
  const auto b = splitmix64(x);
  EXPECT_NE(a, b);
  EXPECT_NE(x, 0u);
}

}  // namespace
}  // namespace rbcast
