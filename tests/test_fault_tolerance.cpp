// Fault-tolerance tests for the campaign engine: failure classification and
// the deterministic retry seed schedule, keep-going vs abort policies, the
// per-trial deadline watchdog, and the write-ahead journal — including the
// headline contract that a killed-and-resumed campaign emits JSON/CSV
// byte-identical to an uninterrupted run at any worker count.

#include "radiobcast/campaign/engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "radiobcast/campaign/journal.h"
#include "radiobcast/campaign/report.h"
#include "radiobcast/core/simulation.h"
#include "radiobcast/util/rng.h"

namespace rbcast {
namespace {

CampaignCell healthy_cell(std::uint64_t seed = 2026, int reps = 3) {
  CampaignCell cell;
  cell.label = "healthy";
  cell.sim.width = cell.sim.height = 12;
  cell.sim.r = 1;
  cell.sim.protocol = ProtocolKind::kCrashFlood;
  cell.sim.adversary = AdversaryKind::kSilent;
  cell.sim.t = 2;
  cell.sim.seed = seed;
  cell.placement.kind = PlacementKind::kRandomBounded;
  cell.reps = reps;
  return cell;
}

CampaignCell tiny_torus_cell(int reps = 1) {
  CampaignCell cell;  // 6 < 4r+2 for r=2: run_simulation rejects it
  cell.label = "tiny";
  cell.sim.width = cell.sim.height = 6;
  cell.sim.r = 2;
  cell.sim.seed = 7;
  cell.reps = reps;
  return cell;
}

std::filesystem::path temp_path(const std::string& name) {
  const auto path = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove(path);
  return path;
}

std::string read_file(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void write_file(const std::filesystem::path& path, const std::string& body) {
  std::ofstream os(path, std::ios::binary);
  os << body;
}

std::vector<std::string> file_lines(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(is, line)) lines.push_back(line);
  return lines;
}

// ---------------------------------------------------------------------------
// Retry seed schedule + failure classification

TEST(FaultTolerance, TrialSeedScheduleIsPureAndBackwardCompatible) {
  const std::uint64_t cell_seed = 0xfeedfacedeadbeefULL;
  // Attempt 0 keeps the historical stream: retry-free campaigns reproduce
  // pre-retry seeds bit for bit.
  for (int rep = 0; rep < 5; ++rep) {
    EXPECT_EQ(trial_seed(cell_seed, rep, 0),
              hash_seeds(cell_seed, static_cast<std::uint64_t>(rep)));
  }
  // Retries draw the 3-argument stream, a pure function of its inputs.
  EXPECT_EQ(trial_seed(cell_seed, 3, 2), hash_seeds(cell_seed, 3, 2));
  EXPECT_EQ(hash_seeds(cell_seed, 3, 2),
            hash_seeds(hash_seeds(cell_seed, 3), 2));
  // Distinct attempts get distinct seeds.
  EXPECT_NE(trial_seed(cell_seed, 3, 0), trial_seed(cell_seed, 3, 1));
  EXPECT_NE(trial_seed(cell_seed, 3, 1), trial_seed(cell_seed, 3, 2));
  // And distinct reps never collide with each other's retries here.
  EXPECT_NE(trial_seed(cell_seed, 0, 1), trial_seed(cell_seed, 1, 1));
}

TEST(FaultTolerance, ClassifyFailureByExceptionType) {
  const auto classify = [](auto&& e) {
    return classify_failure(std::make_exception_ptr(e));
  };
  EXPECT_EQ(classify(TraceIoError("disk")), FailureKind::kTransient);
  EXPECT_EQ(classify(std::bad_alloc()), FailureKind::kTransient);
  EXPECT_EQ(classify(std::ios_base::failure("io")), FailureKind::kTransient);
  EXPECT_EQ(classify(TrialTimeoutError("slow")), FailureKind::kTimeout);
  EXPECT_EQ(classify(std::invalid_argument("bad")), FailureKind::kPermanent);
  EXPECT_EQ(classify(std::logic_error("bug")), FailureKind::kPermanent);
}

TEST(FaultTolerance, FailureKindStringsRoundTrip) {
  for (const FailureKind k : {FailureKind::kTransient, FailureKind::kPermanent,
                              FailureKind::kTimeout}) {
    EXPECT_EQ(failure_kind_from_string(to_string(k)), k);
  }
  // Unknown names resume conservatively as permanent.
  EXPECT_EQ(failure_kind_from_string("cosmic-ray"), FailureKind::kPermanent);
}

// ---------------------------------------------------------------------------
// Keep-going vs abort

TEST(FaultTolerance, KeepGoingCompletesHealthyCellsAroundOneBadCell) {
  const std::vector<CampaignCell> cells = {healthy_cell(11, 3),
                                           tiny_torus_cell(1),
                                           healthy_cell(22, 2)};
  for (const int workers : {1, 4}) {
    CampaignOptions options;
    options.workers = workers;
    options.on_error = ErrorPolicy::kKeepGoing;
    const CampaignResult result = run_cells(cells, options);
    ASSERT_EQ(result.cells.size(), 3u);
    // Healthy cells are fully aggregated; the broken one records exactly one
    // structured failure and nothing else.
    EXPECT_EQ(result.cells[0].aggregate.runs, 3);
    EXPECT_EQ(result.cells[2].aggregate.runs, 2);
    EXPECT_EQ(result.failed_trials(), 1u);
    ASSERT_EQ(result.cells[1].failures.size(), 1u);
    const TrialFailure& failure = result.cells[1].failures.front();
    EXPECT_EQ(failure.cell, 1u);
    EXPECT_EQ(failure.rep, 0);
    EXPECT_EQ(failure.attempts, 1);  // permanent: no retries
    EXPECT_EQ(failure.kind, FailureKind::kPermanent);
    EXPECT_EQ(failure.what, "torus sides must be at least 4r+2");
    EXPECT_EQ(failure.seed, trial_seed(cells[1].sim.seed, 0, 0));
    EXPECT_EQ(result.total().counters_total.trial_failures, 1u);
    // The schema-v3 export carries the failure.
    const std::string json = to_json(result);
    EXPECT_NE(json.find("\"kind\":\"permanent\""), std::string::npos);
    EXPECT_NE(json.find("\"what\":\"torus sides must be at least 4r+2\""),
              std::string::npos);
  }
}

TEST(FaultTolerance, AbortStillThrowsAfterCompletingHealthyWork) {
  const std::vector<CampaignCell> cells = {healthy_cell(), tiny_torus_cell()};
  CampaignOptions options;
  options.workers = 4;
  EXPECT_THROW(run_cells(cells, options), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Retries

TEST(FaultTolerance, TransientFailureRetriesUnderDeterministicSeed) {
  const std::vector<CampaignCell> cells = {healthy_cell(2026, 3)};
  std::string reference_json;
  for (const int workers : {1, 4}) {
    CampaignOptions options;
    options.workers = workers;
    // Rep 1 fails its first attempt with a transient error, then recovers.
    options.fault_injection = [](std::size_t, int rep, int attempt) {
      if (rep == 1 && attempt == 0) throw TraceIoError("injected disk error");
    };
    const CampaignResult result = run_cells(cells, options);
    EXPECT_EQ(result.failed_trials(), 0u);
    EXPECT_EQ(result.cells[0].aggregate.runs, 3);
    // The retried trial ran under the attempt-1 seed; the others kept the
    // historical attempt-0 stream.
    ASSERT_EQ(result.cells[0].seeds.size(), 3u);
    EXPECT_EQ(result.cells[0].seeds[0], trial_seed(2026, 0, 0));
    EXPECT_EQ(result.cells[0].seeds[1], trial_seed(2026, 1, 1));
    EXPECT_EQ(result.cells[0].seeds[2], trial_seed(2026, 2, 0));
    EXPECT_EQ(result.total().counters_total.trial_retries, 1u);
    // Retried campaigns stay worker-count deterministic.
    const std::string json = to_json(result);
    if (reference_json.empty()) {
      reference_json = json;
    } else {
      EXPECT_EQ(json, reference_json);
    }
  }
}

TEST(FaultTolerance, TransientRetriesExhaustIntoRecordedFailure) {
  const std::vector<CampaignCell> cells = {healthy_cell(5, 2)};
  std::atomic<int> rep0_attempts{0};
  CampaignOptions options;
  options.workers = 2;
  options.on_error = ErrorPolicy::kKeepGoing;
  options.max_retries = 2;
  options.fault_injection = [&rep0_attempts](std::size_t, int rep, int) {
    if (rep == 0) {
      ++rep0_attempts;
      throw TraceIoError("injected disk error");
    }
  };
  const CampaignResult result = run_cells(cells, options);
  EXPECT_EQ(rep0_attempts.load(), 3);  // 1 try + max_retries
  ASSERT_EQ(result.cells[0].failures.size(), 1u);
  const TrialFailure& failure = result.cells[0].failures.front();
  EXPECT_EQ(failure.kind, FailureKind::kTransient);
  EXPECT_EQ(failure.attempts, 3);
  EXPECT_EQ(failure.seed, trial_seed(5, 0, 2));  // final attempt's seed
  EXPECT_EQ(result.total().counters_total.trial_retries, 2u);
  EXPECT_EQ(result.total().counters_total.trial_failures, 1u);
  EXPECT_EQ(result.cells[0].aggregate.runs, 1);  // rep 1 still aggregated
}

TEST(FaultTolerance, PermanentFailureIsNeverRetried) {
  const std::vector<CampaignCell> cells = {healthy_cell(5, 2)};
  std::atomic<int> rep0_attempts{0};
  CampaignOptions options;
  options.workers = 1;
  options.on_error = ErrorPolicy::kKeepGoing;
  options.max_retries = 5;
  options.fault_injection = [&rep0_attempts](std::size_t, int rep, int) {
    if (rep == 0) {
      ++rep0_attempts;
      throw std::invalid_argument("injected config error");
    }
  };
  const CampaignResult result = run_cells(cells, options);
  EXPECT_EQ(rep0_attempts.load(), 1);
  ASSERT_EQ(result.cells[0].failures.size(), 1u);
  EXPECT_EQ(result.cells[0].failures.front().kind, FailureKind::kPermanent);
  EXPECT_EQ(result.cells[0].failures.front().attempts, 1);
  EXPECT_EQ(result.total().counters_total.trial_retries, 0u);
}

// ---------------------------------------------------------------------------
// Deadline watchdog

TEST(FaultTolerance, RoundBudgetDeadlineThrowsTimeout) {
  SimConfig cfg;
  cfg.width = cfg.height = 12;
  cfg.r = 1;
  cfg.protocol = ProtocolKind::kCrashFlood;
  cfg.deadline_rounds = 1;  // flooding a 12x12 torus needs ~6 rounds
  EXPECT_THROW(run_simulation(cfg, FaultSet{}), TrialTimeoutError);
  cfg.deadline_rounds = 0;  // watchdog off: same config completes
  EXPECT_TRUE(run_simulation(cfg, FaultSet{}).success());
}

TEST(FaultTolerance, WallClockDeadlineThrowsTimeout) {
  SimConfig cfg;  // big enough that setup alone exceeds 1 ms
  cfg.width = cfg.height = 48;
  cfg.r = 2;
  cfg.protocol = ProtocolKind::kBvIndirectFlood;
  cfg.deadline_ms = 1;
  EXPECT_THROW(run_simulation(cfg, FaultSet{}), TrialTimeoutError);
}

TEST(FaultTolerance, TimeoutIsRecordedNotRetried) {
  CampaignCell slow = healthy_cell(9, 2);
  slow.sim.deadline_rounds = 1;
  CampaignOptions options;
  options.workers = 2;
  options.on_error = ErrorPolicy::kKeepGoing;
  options.max_retries = 3;
  const CampaignResult result = run_cells({slow}, options);
  ASSERT_EQ(result.cells[0].failures.size(), 2u);
  for (const TrialFailure& failure : result.cells[0].failures) {
    EXPECT_EQ(failure.kind, FailureKind::kTimeout);
    EXPECT_EQ(failure.attempts, 1);  // timeouts never retry
  }
  EXPECT_EQ(result.total().counters_total.trial_timeouts, 2u);
  EXPECT_EQ(result.total().counters_total.trial_failures, 2u);
  EXPECT_EQ(result.total().counters_total.trial_retries, 0u);
}

// ---------------------------------------------------------------------------
// Journal format

TEST(Journal, RecordJsonRoundTripsExactly) {
  JournalRecord rec;
  rec.trial = 17;
  rec.cell = 2;
  rec.rep = 5;
  rec.attempts = 2;
  rec.seed = 0xdeadbeefcafef00dULL;
  rec.ok = true;
  rec.outcome.honest_nodes = 143;
  rec.outcome.correct_commits = 141;
  rec.outcome.wrong_commits = 1;
  rec.outcome.rounds = 19;
  rec.outcome.transmissions = 1234;
  rec.outcome.fault_count = 6;
  rec.outcome.nbd_faults = 3;
  rec.outcome.success = false;
  rec.outcome.coverage = 141.0 / 143.0;  // non-terminating binary fraction
  rec.outcome.counters.broadcasts_queued = 9;
  rec.outcome.counters.commits = 141;
  rec.outcome.counters.trial_retries = 1;
  rec.outcome.counters.last_commit_round = 18;
  const auto parsed = parse_journal_record(to_json(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trial, rec.trial);
  EXPECT_EQ(parsed->cell, rec.cell);
  EXPECT_EQ(parsed->rep, rec.rep);
  EXPECT_EQ(parsed->attempts, rec.attempts);
  EXPECT_EQ(parsed->seed, rec.seed);
  EXPECT_TRUE(parsed->ok);
  EXPECT_EQ(parsed->outcome.honest_nodes, rec.outcome.honest_nodes);
  EXPECT_EQ(parsed->outcome.correct_commits, rec.outcome.correct_commits);
  EXPECT_EQ(parsed->outcome.wrong_commits, rec.outcome.wrong_commits);
  EXPECT_EQ(parsed->outcome.rounds, rec.outcome.rounds);
  EXPECT_EQ(parsed->outcome.transmissions, rec.outcome.transmissions);
  EXPECT_EQ(parsed->outcome.fault_count, rec.outcome.fault_count);
  EXPECT_EQ(parsed->outcome.nbd_faults, rec.outcome.nbd_faults);
  EXPECT_EQ(parsed->outcome.success, rec.outcome.success);
  // Bit-exact double round trip (%.17g out, strtod back).
  EXPECT_EQ(parsed->outcome.coverage, rec.outcome.coverage);
  EXPECT_EQ(parsed->outcome.counters.broadcasts_queued, 9u);
  EXPECT_EQ(parsed->outcome.counters.commits, 141u);
  EXPECT_EQ(parsed->outcome.counters.trial_retries, 1u);
  EXPECT_EQ(parsed->outcome.counters.last_commit_round, 18);
}

TEST(Journal, FailedRecordRoundTripsEscapedWhat) {
  JournalRecord rec;
  rec.trial = 3;
  rec.cell = 1;
  rec.rep = 0;
  rec.attempts = 3;
  rec.seed = 42;
  rec.ok = false;
  rec.kind = FailureKind::kTransient;
  rec.what = "cannot write \"trace\"\n\tpath\\x";
  rec.what += '\x01';
  const auto parsed = parse_journal_record(to_json(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->ok);
  EXPECT_EQ(parsed->kind, FailureKind::kTransient);
  EXPECT_EQ(parsed->what, rec.what);
}

TEST(Journal, MalformedLinesAreRejected) {
  EXPECT_FALSE(parse_journal_record("").has_value());
  EXPECT_FALSE(parse_journal_record("{\"trial\":1").has_value());
  EXPECT_FALSE(parse_journal_record("not json at all").has_value());
  // A record truncated mid-outcome (torn write) must not parse.
  JournalRecord rec;
  rec.ok = true;
  const std::string full = to_json(rec);
  EXPECT_FALSE(parse_journal_record(full.substr(0, full.size() / 2))
                   .has_value());
  std::uint64_t fp = 0;
  std::size_t trials = 0;
  EXPECT_FALSE(parse_journal_header("{\"journal\":\"other-v9\"}", &fp,
                                    &trials));
}

TEST(Journal, HeaderRoundTripAndFingerprintSensitivity) {
  const std::vector<CampaignCell> cells = {healthy_cell(), tiny_torus_cell()};
  const std::uint64_t fp = campaign_fingerprint(cells);
  std::uint64_t parsed_fp = 0;
  std::size_t parsed_trials = 0;
  ASSERT_TRUE(parse_journal_header(journal_header(fp, 4), &parsed_fp,
                                   &parsed_trials));
  EXPECT_EQ(parsed_fp, fp);
  EXPECT_EQ(parsed_trials, 4u);
  // Any trial-affecting edit moves the fingerprint.
  std::vector<CampaignCell> edited = cells;
  edited[0].sim.t += 1;
  EXPECT_NE(campaign_fingerprint(edited), fp);
  edited = cells;
  edited[1].reps += 1;
  EXPECT_NE(campaign_fingerprint(edited), fp);
  edited = cells;
  edited[0].sim.seed += 1;
  EXPECT_NE(campaign_fingerprint(edited), fp);
}

// ---------------------------------------------------------------------------
// Kill-and-resume equivalence

TEST(Journal, KillAndResumeEmitsByteIdenticalExports) {
  std::vector<CampaignCell> cells;
  for (int i = 0; i < 2; ++i) {
    CampaignCell cell = healthy_cell(100 + static_cast<std::uint64_t>(i), 6);
    cell.sim.t = 1 + i;
    cells.push_back(cell);
  }

  // Uninterrupted reference (no journal).
  CampaignOptions plain;
  plain.workers = 1;
  const CampaignResult reference = run_cells(cells, plain);
  const std::string ref_json = to_json(reference);
  const std::string ref_csv = to_csv(reference);

  // A complete journaled run, serial so records land in trial order.
  const auto full_path = temp_path("rbcast_ft_full.jsonl");
  CampaignOptions journaled = plain;
  journaled.journal_path = full_path.string();
  const CampaignResult full = run_cells(cells, journaled);
  EXPECT_EQ(to_json(full), ref_json);
  const std::vector<std::string> lines = file_lines(full_path);
  ASSERT_EQ(lines.size(), 13u);  // header + 12 trials

  // "SIGKILL" after 5 completed trials: header + 5 whole records, and a
  // second variant with a torn (half-written, unterminated) 6th record.
  std::string clean5, torn;
  for (std::size_t i = 0; i < 6; ++i) clean5 += lines[i] + "\n";
  torn = clean5 + lines[6].substr(0, lines[6].size() / 2);

  for (const bool torn_tail : {false, true}) {
    for (const int workers : {1, 8}) {
      const auto path = temp_path("rbcast_ft_resume.jsonl");
      write_file(path, torn_tail ? torn : clean5);
      CampaignOptions resume;
      resume.workers = workers;
      resume.journal_path = path.string();
      resume.resume = true;
      const CampaignResult resumed = run_cells(cells, resume);
      EXPECT_EQ(resumed.replayed_trials, 5u)
          << "workers=" << workers << " torn=" << torn_tail;
      EXPECT_EQ(to_json(resumed), ref_json)
          << "workers=" << workers << " torn=" << torn_tail;
      EXPECT_EQ(to_csv(resumed), ref_csv)
          << "workers=" << workers << " torn=" << torn_tail;
      // The resumed journal is complete again: a second resume replays
      // everything and still matches byte for byte.
      CampaignOptions resume_all = resume;
      resume_all.workers = 1;
      const CampaignResult replayed = run_cells(cells, resume_all);
      EXPECT_EQ(replayed.replayed_trials, 12u);
      EXPECT_EQ(to_json(replayed), ref_json);
      std::filesystem::remove(path);
    }
  }
  std::filesystem::remove(full_path);
}

// Cooperative cancellation (the campaign CLI wires a ShutdownGuard here):
// once the cancel hook fires, remaining trials are skipped — not failed, not
// journaled — and a resume completes exactly the trials the cancelled run
// never started, emitting byte-identical exports to an uninterrupted run.
TEST(Journal, CancelSkipsCleanlyAndResumeFinishesTheRest) {
  std::vector<CampaignCell> cells;
  for (int i = 0; i < 2; ++i) {
    CampaignCell cell = healthy_cell(300 + static_cast<std::uint64_t>(i), 6);
    cell.sim.t = 1 + i;
    cells.push_back(cell);
  }

  CampaignOptions plain;
  plain.workers = 1;
  const CampaignResult reference = run_cells(cells, plain);
  const std::string ref_json = to_json(reference);
  EXPECT_FALSE(reference.interrupted());

  const auto path = temp_path("rbcast_ft_cancel.jsonl");
  CampaignOptions cancelled = plain;
  cancelled.journal_path = path.string();
  std::size_t done = 0;
  cancelled.progress = [&](std::size_t, std::size_t) { ++done; };
  cancelled.cancel = [&] { return done >= 4; };  // "SIGINT" after 4 trials
  const CampaignResult partial = run_cells(cells, cancelled);
  EXPECT_TRUE(partial.interrupted());
  EXPECT_EQ(partial.skipped_trials, 8u);
  // Skipped trials are not journaled: header + the 4 completed records.
  EXPECT_EQ(file_lines(path).size(), 5u);

  CampaignOptions resume = plain;
  resume.journal_path = path.string();
  resume.resume = true;
  const CampaignResult resumed = run_cells(cells, resume);
  EXPECT_FALSE(resumed.interrupted());
  EXPECT_EQ(resumed.replayed_trials, 4u);
  EXPECT_EQ(to_json(resumed), ref_json);
  std::filesystem::remove(path);
}

TEST(Journal, ResumeReplaysRecordedFailuresByteIdentically) {
  const std::vector<CampaignCell> cells = {tiny_torus_cell(2),
                                           healthy_cell(77, 3)};
  CampaignOptions keep;
  keep.workers = 1;
  keep.on_error = ErrorPolicy::kKeepGoing;
  const std::string ref_json = to_json(run_cells(cells, keep));

  const auto path = temp_path("rbcast_ft_failures.jsonl");
  CampaignOptions journaled = keep;
  journaled.journal_path = path.string();
  EXPECT_EQ(to_json(run_cells(cells, journaled)), ref_json);

  // Truncate past the two failure records, resume, and the replayed failures
  // must reappear in the export exactly as fresh ones would.
  const std::vector<std::string> lines = file_lines(path);
  ASSERT_EQ(lines.size(), 6u);
  std::string head;
  for (std::size_t i = 0; i < 4; ++i) head += lines[i] + "\n";
  write_file(path, head);
  CampaignOptions resume = journaled;
  resume.resume = true;
  resume.workers = 8;
  const CampaignResult resumed = run_cells(cells, resume);
  EXPECT_EQ(resumed.replayed_trials, 3u);
  EXPECT_EQ(resumed.failed_trials(), 2u);
  EXPECT_EQ(to_json(resumed), ref_json);
  std::filesystem::remove(path);
}

TEST(Journal, FingerprintMismatchRefusesToResume) {
  const std::vector<CampaignCell> cells = {healthy_cell(1, 2)};
  const auto path = temp_path("rbcast_ft_mismatch.jsonl");
  CampaignOptions journaled;
  journaled.workers = 1;
  journaled.journal_path = path.string();
  run_cells(cells, journaled);

  std::vector<CampaignCell> edited = cells;
  edited[0].sim.t += 1;  // different campaign now
  CampaignOptions resume = journaled;
  resume.resume = true;
  EXPECT_THROW(run_cells(edited, resume), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Journal, ResumeFromMissingJournalRunsFresh) {
  const std::vector<CampaignCell> cells = {healthy_cell(3, 2)};
  CampaignOptions plain;
  plain.workers = 1;
  const std::string ref_json = to_json(run_cells(cells, plain));

  const auto path = temp_path("rbcast_ft_missing.jsonl");
  CampaignOptions resume = plain;
  resume.journal_path = path.string();
  resume.resume = true;
  const CampaignResult result = run_cells(cells, resume);
  EXPECT_EQ(result.replayed_trials, 0u);
  EXPECT_EQ(to_json(result), ref_json);
  // The fresh run wrote a full journal behind itself.
  EXPECT_EQ(file_lines(path).size(), 3u);
  std::filesystem::remove(path);
}

TEST(Journal, ResumeWithoutJournalPathIsAnError) {
  CampaignOptions options;
  options.resume = true;
  EXPECT_THROW(run_cells({healthy_cell()}, options), std::invalid_argument);
}

}  // namespace
}  // namespace rbcast
