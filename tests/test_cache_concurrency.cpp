// Concurrent first-access hammer for the process-wide geometry caches
// (Adjacency::get, CenterTable::get). Before the per-key once_flag fix the
// whole construction ran under one global mutex — correct but fully
// serialized; the fix lets distinct keys construct concurrently while racers
// on the SAME key still get exactly one instance at a stable address. This
// binary runs under TSan in scripts/check_tsan.sh, which is what actually
// proves the data-race freedom; the assertions here pin the semantics.

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "radiobcast/grid/adjacency.h"
#include "radiobcast/grid/metric.h"
#include "radiobcast/grid/neighborhood.h"
#include "radiobcast/grid/torus.h"
#include "radiobcast/protocols/determination.h"

namespace rbcast {
namespace {

constexpr int kThreads = 8;

TEST(CacheConcurrency, AdjacencySameKeyYieldsOneInstance) {
  // All threads race the first access of one fresh key (an odd geometry no
  // other test in this binary uses): every racer must see the same address.
  const Torus torus(23, 17);
  const NeighborhoodTable& table = NeighborhoodTable::get(2, Metric::kLInf);
  std::vector<const Adjacency*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back(
        [&, i] { seen[static_cast<std::size_t>(i)] = &Adjacency::get(torus,
                                                                     table); });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(seen[0], seen[static_cast<std::size_t>(i)]);
  }
  ASSERT_NE(seen[0], nullptr);
  EXPECT_EQ(static_cast<std::size_t>(seen[0]->degree()), table.size());
}

TEST(CacheConcurrency, AdjacencyDistinctKeysConstructConcurrently) {
  // Each thread owns a distinct fresh key; afterwards every key must resolve
  // to the address its thread created (map-node stability) and re-resolution
  // must be a pure cache hit.
  const NeighborhoodTable& table = NeighborhoodTable::get(1, Metric::kLInf);
  std::vector<const Adjacency*> built(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      const Torus torus(29 + 2 * i, 19);
      built[static_cast<std::size_t>(i)] = &Adjacency::get(torus, table);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kThreads; ++i) {
    const Torus torus(29 + 2 * i, 19);
    EXPECT_EQ(built[static_cast<std::size_t>(i)],
              &Adjacency::get(torus, table));
  }
}

TEST(CacheConcurrency, CenterTableSameKeyYieldsOneInstance) {
  std::vector<const CenterTable*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      seen[static_cast<std::size_t>(i)] =
          &CenterTable::get(3, Metric::kLInf, 15, 15);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(seen[0], seen[static_cast<std::size_t>(i)]);
  }
  ASSERT_NE(seen[0], nullptr);
  EXPECT_EQ(seen[0]->radius(), 3);
}

TEST(CacheConcurrency, CenterTableDistinctKeysConstructConcurrently) {
  std::vector<const CenterTable*> built(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      // Distinct folds: small tori fold per exact size, so each side is a
      // fresh key. r = 2 keeps construction cheap but non-trivial.
      built[static_cast<std::size_t>(i)] =
          &CenterTable::get(2, Metric::kLInf, 11 + i, 11 + i);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(built[static_cast<std::size_t>(i)],
              &CenterTable::get(2, Metric::kLInf, 11 + i, 11 + i));
  }
}

TEST(CacheConcurrency, MixedHammer) {
  // Everything at once: same-key racers and distinct-key builders on both
  // caches simultaneously — the pattern an 8-worker campaign's first round
  // of trials actually produces.
  std::vector<std::thread> threads;
  threads.reserve(kThreads * 2);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([i] {
      const Torus torus(31, 37 + (i % 2));
      const NeighborhoodTable& table = NeighborhoodTable::get(2,
                                                              Metric::kL2);
      (void)Adjacency::get(torus, table);
    });
    threads.emplace_back([i] {
      (void)CenterTable::get(1 + (i % 3), Metric::kL2, 200, 200);
    });
  }
  for (std::thread& t : threads) t.join();
  SUCCEED();
}

}  // namespace
}  // namespace rbcast
