#include "radiobcast/net/message.h"

#include <gtest/gtest.h>

namespace rbcast {
namespace {

TEST(Message, MakeCommitted) {
  const Message m = make_committed({2, 3}, 1);
  EXPECT_EQ(m.type, MsgType::kCommitted);
  EXPECT_EQ(m.value, 1);
  EXPECT_EQ(m.origin, (Coord{2, 3}));
  EXPECT_TRUE(m.relayers.empty());
}

TEST(Message, MakeHeard) {
  const Message m = make_heard({{1, 1}, {2, 2}}, {0, 0}, 0);
  EXPECT_EQ(m.type, MsgType::kHeard);
  EXPECT_EQ(m.value, 0);
  EXPECT_EQ(m.origin, (Coord{0, 0}));
  ASSERT_EQ(m.relayers.size(), 2u);
  EXPECT_EQ(m.relayers[0], (Coord{1, 1}));
  EXPECT_EQ(m.relayers[1], (Coord{2, 2}));
}

TEST(Message, Equality) {
  const Message a = make_heard({{1, 1}}, {0, 0}, 1);
  Message b = a;
  EXPECT_EQ(a, b);
  b.value = 0;
  EXPECT_NE(a, b);
  Message c = a;
  c.relayers.push_back({2, 2});
  EXPECT_NE(a, c);
}

TEST(Message, ToStringCommitted) {
  EXPECT_EQ(to_string(make_committed({1, 2}, 1)), "COMMITTED((1,2), 1)");
}

TEST(Message, ToStringHeardListsRelayersOutermostFirst) {
  // Paper notation HEARD(j, k, i, v): j is the latest relayer.
  const Message m = make_heard({{5, 5}, {6, 6}}, {0, 0}, 0);
  EXPECT_EQ(to_string(m), "HEARD((6,6), (5,5), (0,0), 0)");
}

}  // namespace
}  // namespace rbcast
