#include "radiobcast/grid/region.h"

#include <gtest/gtest.h>

namespace rbcast {
namespace {

TEST(Rect, EmptyAndCount) {
  const Rect empty{};
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.count(), 0);
  EXPECT_TRUE(empty.cells().empty());

  const Rect r{0, 2, 0, 3};
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.count(), 12);
}

TEST(Rect, SinglePoint) {
  const Rect r{5, 5, -2, -2};
  EXPECT_EQ(r.count(), 1);
  EXPECT_TRUE(r.contains({5, -2}));
  EXPECT_FALSE(r.contains({5, -1}));
}

TEST(Rect, ContainsBoundaries) {
  const Rect r{-1, 3, 2, 4};
  EXPECT_TRUE(r.contains({-1, 2}));
  EXPECT_TRUE(r.contains({3, 4}));
  EXPECT_FALSE(r.contains({-2, 3}));
  EXPECT_FALSE(r.contains({0, 5}));
}

TEST(Rect, Intersection) {
  const Rect a{0, 5, 0, 5};
  const Rect b{3, 8, -2, 2};
  const Rect i = a.intersect(b);
  EXPECT_EQ(i, (Rect{3, 5, 0, 2}));
  EXPECT_EQ(i.count(), 9);
  EXPECT_TRUE(disjoint(a, Rect{6, 7, 0, 5}));
  EXPECT_FALSE(disjoint(a, b));
}

TEST(Rect, Translate) {
  const Rect r{0, 2, 1, 1};
  EXPECT_EQ(r.translate({-3, 4}), (Rect{-3, -1, 5, 5}));
  EXPECT_EQ(r.translate({0, 0}), r);
}

TEST(Rect, CellsRowMajor) {
  const Rect r{1, 2, 10, 11};
  const auto cells = r.cells();
  ASSERT_EQ(cells.size(), 4u);
  EXPECT_EQ(cells[0], (Coord{1, 10}));
  EXPECT_EQ(cells[1], (Coord{2, 10}));
  EXPECT_EQ(cells[2], (Coord{1, 11}));
  EXPECT_EQ(cells[3], (Coord{2, 11}));
}

TEST(Rect, ContainedIn) {
  const Rect big{-5, 5, -5, 5};
  EXPECT_TRUE(contained_in({-5, 5, -5, 5}, big));
  EXPECT_TRUE(contained_in({0, 1, 0, 1}, big));
  EXPECT_FALSE(contained_in({0, 6, 0, 1}, big));
  // Empty is contained in everything.
  EXPECT_TRUE(contained_in(Rect{}, big));
  EXPECT_TRUE(contained_in(Rect{}, Rect{}));
}

TEST(Rect, LinfBall) {
  const Rect b = linf_ball({2, -1}, 3);
  EXPECT_EQ(b, (Rect{-1, 5, -4, 2}));
  EXPECT_EQ(b.count(), 49);
}

TEST(Rect, CountLargeNoOverflow) {
  const Rect r{0, 99999, 0, 99999};
  EXPECT_EQ(r.count(), 10000000000LL);
}

}  // namespace
}  // namespace rbcast
